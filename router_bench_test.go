package foodmatch

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/foodgraph"
	"repro/internal/pipeline"
	"repro/internal/roadnet"
)

// benchCity lazily memoises the CityB bench substrate so plain test runs
// pay nothing and a generation failure fails the requesting benchmark, not
// the whole binary.
var (
	benchCityOnce sync.Once
	benchCityVal  *City
	benchCityErr  error
)

func benchCity(b *testing.B) *City {
	b.Helper()
	benchCityOnce.Do(func() {
		benchCityVal, benchCityErr = LoadCity("CityB", 0.02, 1)
	})
	if benchCityErr != nil {
		b.Fatal(benchCityErr)
	}
	return benchCityVal
}

// BenchmarkRouter measures point-to-point query latency per Router backend
// on the CityB road network at the bench scale (dinner-slot weights, a
// fixed random query mix). The bounded backend amortises one single-source
// expansion per source; hub labels pay a label merge per query; the LRU
// decorator turns repeat queries into map hits.
func BenchmarkRouter(b *testing.B) {
	g := benchCity(b).G
	const t0 = 19 * 3600.0
	rng := rand.New(rand.NewSource(42))
	type pair struct{ from, to NodeID }
	pairs := make([]pair, 256)
	for i := range pairs {
		pairs[i] = pair{NodeID(rng.Intn(g.NumNodes())), NodeID(rng.Intn(g.NumNodes()))}
	}

	hub := NewHubLabels(g)
	hub.BuildSlot(19) // pay the label build outside the timed loop

	backends := []struct {
		name string
		r    Router
	}{
		{"dijkstra", NewDijkstraRouter(g)},
		{"bounded-sssp", NewBoundedRouter(g, 2*DefaultConfig().MaxFirstMile)},
		{"hub-labels", hub},
		{"lru+hub-labels", NewCachedRouter(hub, 1<<15)},
		{"lru+dijkstra", NewCachedRouter(NewDijkstraRouter(g), 1<<15)},
	}
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				be.r.Travel(p.from, p.to, t0)
			}
		})
	}
}

// benchWindow builds one representative dinner-peak assignment window:
// every order placed in [19:00, 19:00+∆) against the full fleet parked at
// its start nodes.
func benchWindow(b *testing.B) *pipeline.Input {
	b.Helper()
	city := benchCity(b)
	cfg := ExperimentConfig("CityB", 0.02)
	now := 19*3600 + cfg.Delta
	orders := OrderStreamWindow(city, 1, 19*3600, now)
	if len(orders) == 0 {
		b.Fatal("empty bench window")
	}
	router := roadnet.NewBoundedRouter(city.G, 2*cfg.MaxFirstMile)
	for _, o := range orders {
		o.SDT = o.Prep + router.Travel(o.Restaurant, o.Customer, o.PlacedAt)
	}
	var vss []*foodgraph.VehicleState
	for _, v := range city.Fleet(1.0, cfg.MaxO, 1) {
		vss = append(vss, &foodgraph.VehicleState{Vehicle: v, Node: v.Node, Dest: roadnet.Invalid})
	}
	return &pipeline.Input{
		G: city.G, Router: router, Now: now,
		Orders: orders, Vehicles: vss, Cfg: cfg,
	}
}

// BenchmarkPipelineStages isolates each stage of the default FOODMATCH
// composition on one dinner-peak window, so a stage-level perf regression
// shows up directly in -bench output (the CI smoke step runs this at
// -benchtime=1x).
func BenchmarkPipelineStages(b *testing.B) {
	ctx := context.Background()
	in := benchWindow(b)

	batcher := pipeline.ClusterBatcher{}
	batches := batcher.Batch(ctx, in)
	sparsifier := pipeline.BestFirstSparsifier{}
	bp := sparsifier.Sparsify(ctx, in, batches)
	matcher := &pipeline.KMMatcher{}

	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batcher.Batch(ctx, in)
		}
	})
	b.Run("sparsify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparsifier.Sparsify(ctx, in, batches)
		}
	})
	b.Run("match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matcher.Match(ctx, in, batches, bp)
		}
	})
	b.Run("full-assign", func(b *testing.B) {
		p := NewPipeline()
		for i := 0; i < b.N; i++ {
			p.Assign(ctx, in)
		}
		if s := p.LastStats(); s.Batches == 0 {
			b.Fatalf("pipeline did no work: %+v", s)
		}
	})
}
