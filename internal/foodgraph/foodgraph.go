// Package foodgraph builds the bipartite assignment graph of Section IV —
// order batches on one side, available vehicles on the other, edge weights
// the marginal cost mCost(π, v) of Eq. 7 — and its sparsified variant
// constructed by best-first search (Algorithm 2).
//
// The sparsified construction explores the road network outward from each
// vehicle in ascending order of the vehicle-sensitive edge weight α(v,e,t)
// (Eq. 8), which blends normalised travel time with the angular distance
// between a candidate node and the vehicle's current heading. Exploration
// stops as soon as the vehicle has acquired k true-weight edges; all other
// batches receive the rejection penalty Ω, pruning the quadratic edge-weight
// computation the paper identifies as the scalability bottleneck.
package foodgraph

import (
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// VehicleState is the assignment-relevant view of one available vehicle.
type VehicleState struct {
	Vehicle *model.Vehicle
	// Node is loc(v,t) approximated to the road network.
	Node roadnet.NodeID
	// Dest is the next node the vehicle is heading to (roadnet.Invalid when
	// idle); it provides the bearing for angular distance.
	Dest roadnet.NodeID
	// Onboard are picked-up orders (immutable dropoff obligations).
	Onboard []*model.Order
	// Keep are assigned-but-unpicked orders the vehicle retains (empty when
	// reshuffling returned them to the order pool).
	Keep []*model.Order
}

// BaseOrders returns the orders already tied to the vehicle for capacity
// accounting (Definition 4).
func (vs *VehicleState) BaseOrders() int { return len(vs.Onboard) + len(vs.Keep) }

// BaseItems returns the items already tied to the vehicle.
func (vs *VehicleState) BaseItems() int {
	n := 0
	for _, o := range vs.Onboard {
		n += o.Items
	}
	for _, o := range vs.Keep {
		n += o.Items
	}
	return n
}

// Options configures graph construction.
type Options struct {
	// K is the per-vehicle degree bound of Algorithm 2.
	K int
	// Gamma is the Eq. 8 blend: 1 = pure travel time, 0 = pure direction.
	Gamma float64
	// Angular enables the angular-distance term; disabled it degrades α to
	// γ-scaled normalised travel time (ordering identical to plain β).
	Angular bool
	// BestFirst selects the sparsified construction; false computes the full
	// quadratic FoodGraph (vanilla KM and the B&R-only ablation).
	BestFirst bool
	// Omega is the rejection penalty Ω used for absent edges.
	Omega float64
	// MaxFirstMile caps SP(loc(v,t), π[1]ʳ, t); beyond it the edge is Ω
	// (the 45-minute guarantee, Section V-B).
	MaxFirstMile float64
	// MaxO / MaxI are the capacity limits of Definition 4.
	MaxO, MaxI int
	// Now is the window-end clock.
	Now float64
	// AgeNeutral subtracts each order's sunk waiting age (Now − PlacedAt)
	// from the edge weight. The raw mCost of Eq. 7 embeds that constant, so
	// under overload (more batches than vehicles) a minimum-weight matching
	// systematically defers the *oldest* batches — deferral does not avoid
	// sunk cost, the per-window objective just mis-prices it — starving them
	// into rejection. Age-neutral weights change nothing when every batch is
	// matched (row constants cancel) and make the deferral choice
	// cost-to-serve-driven when not.
	AgeNeutral bool
}

// Bipartite is the constructed FOODGRAPH: rows are batches, columns are
// vehicles. Cost[i][j] = mCost(π_i, v_j) or Ω; Plan[i][j] is the vehicle's
// optimal route plan with the batch added (nil on Ω edges), so the
// simulator can apply a matching without recomputing routes.
type Bipartite struct {
	Cost [][]float64
	Plan [][]*model.RoutePlan
	// TrueEdges counts non-Ω edges (the construction-work measure that
	// best-first search reduces).
	TrueEdges int
}

// buildScratch pools the per-Build working set: the batch start index, the
// distinct first-pickup target list for many-to-many first-mile queries, and
// the per-vehicle best-first search state (epoch-stamped visited array and
// frontier heap) reused across every vehicle in the window.
type buildScratch struct {
	startIdx map[roadnet.NodeID][]int
	targets  []roadnet.NodeID // distinct first-pickup nodes, first-encounter order
	tpos     []int32          // per-batch index into targets
	visited  []uint32
	vepoch   uint32
	pq       nodeHeap
}

var scratchPool = sync.Pool{
	New: func() any { return &buildScratch{startIdx: make(map[roadnet.NodeID][]int)} },
}

// Build constructs the FOODGRAPH for one accumulation window. Distances
// come from the injected Router (any roadnet.SPFunc is one); backends
// implementing roadnet.ManyRouter serve each vehicle's first-mile distances
// to every distinct pickup node with one batched query.
func Build(g *roadnet.Graph, rt roadnet.Router, batches []*model.Batch, vehicles []*VehicleState, opt Options) *Bipartite {
	sp := roadnet.SPFunc(rt.Travel)
	nb, nv := len(batches), len(vehicles)
	// Flat backing arrays: one allocation per matrix instead of one per row,
	// and row slices carved with full-capacity bounds.
	costBack := make([]float64, nb*nv)
	for i := range costBack {
		costBack[i] = opt.Omega
	}
	planBack := make([]*model.RoutePlan, nb*nv)
	bp := &Bipartite{
		Cost: make([][]float64, nb),
		Plan: make([][]*model.RoutePlan, nb),
	}
	for i := 0; i < nb; i++ {
		bp.Cost[i] = costBack[i*nv : (i+1)*nv : (i+1)*nv]
		bp.Plan[i] = planBack[i*nv : (i+1)*nv : (i+1)*nv]
	}
	if nb == 0 || nv == 0 {
		return bp
	}

	sc := scratchPool.Get().(*buildScratch)
	defer scratchPool.Put(sc)

	// Index batches by their first pickup node (I(u) of Algorithm 2) and
	// assign each batch its slot in the distinct-target list.
	clear(sc.startIdx)
	sc.targets = sc.targets[:0]
	if cap(sc.tpos) < nb {
		sc.tpos = make([]int32, nb)
	}
	sc.tpos = sc.tpos[:nb]
	for i, b := range batches {
		u := b.FirstPickupNode()
		lst := sc.startIdx[u]
		if len(lst) == 0 {
			sc.tpos[i] = int32(len(sc.targets))
			sc.targets = append(sc.targets, u)
		} else {
			sc.tpos[i] = sc.tpos[lst[0]]
		}
		sc.startIdx[u] = append(lst, i)
	}

	// When the degree bound already admits every batch, best-first search
	// would explore the graph only to add every edge anyway; the full
	// construction is then strictly cheaper and produces the same graph.
	bestFirst := opt.BestFirst && opt.K < nb

	for j, vs := range vehicles {
		if bestFirst {
			bestFirstEdges(g, sp, batches, sc, vs, j, bp, opt)
		} else {
			fullEdges(rt, sp, batches, sc, vs, j, bp, opt)
		}
	}
	return bp
}

// fullEdges computes the true marginal cost against every batch — the
// quadratic construction of the unoptimised FOODGRAPH. One many-to-many
// query resolves the vehicle's first-mile distance to every distinct pickup
// node; batches sharing a pickup node share the answer.
func fullEdges(rt roadnet.Router, sp roadnet.SPFunc, batches []*model.Batch, sc *buildScratch, vs *VehicleState, j int, bp *Bipartite, opt Options) {
	fm := roadnet.TravelMany(rt, vs.Node, sc.targets, opt.Now)
	for i, b := range batches {
		setEdge(sp, b, vs, i, j, bp, opt, fm[sc.tpos[i]])
	}
}

// bestFirstEdges is Algorithm 2 for a single vehicle: explore the road
// network in ascending α-distance, attaching true-weight edges to batches
// whose first pickup is at each settled node, until the vehicle has degree k.
func bestFirstEdges(g *roadnet.Graph, sp roadnet.SPFunc, batches []*model.Batch, sc *buildScratch, vs *VehicleState, j int, bp *Bipartite, opt Options) {
	startIdx := sc.startIdx
	source := vs.Node
	locPt := g.Point(source)
	var destPt geo.Point
	hasDest := vs.Dest != roadnet.Invalid && vs.Dest != source
	if hasDest {
		destPt = g.Point(vs.Dest)
	}
	maxBeta := g.MaxBeta(opt.Now)

	// alphaWeight implements Eq. 8 for the edge (u, u') entered during the
	// search. Angular distance is measured from the vehicle's *current*
	// location towards the candidate node u', per Section IV-D1.
	alphaWeight := func(e roadnet.Edge) float64 {
		beta := g.EdgeTime(e, opt.Now) / maxBeta
		if !opt.Angular || !hasDest {
			// With no heading (idle vehicle) the directional term is 0; the
			// paper defines adist only for moving vehicles.
			return opt.Gamma * beta
		}
		ad := geo.AngularDistance(locPt, destPt, g.Point(e.To))
		return (1-opt.Gamma)*ad + opt.Gamma*beta
	}

	n := g.NumNodes()
	// Epoch-stamped visited array and frontier heap, reused across every
	// vehicle in the window (and across windows via the scratch pool).
	if len(sc.visited) < n {
		sc.visited = make([]uint32, n)
	}
	sc.vepoch++
	if sc.vepoch == 0 { // stamp wrap: re-zero once per 2^32 searches
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.vepoch = 1
	}
	visited, ep := sc.visited, sc.vepoch
	pq := &sc.pq
	pq.reset()
	pq.push(source, 0)
	degree := 0
	// Early exit once every batch-start node has been settled: nothing
	// further out can add an edge, so draining the frontier is wasted work.
	startsLeft := len(startIdx)
	for !pq.empty() && degree < opt.K && startsLeft > 0 {
		u, du := pq.pop()
		if visited[u] == ep {
			continue
		}
		visited[u] = ep
		if bis := startIdx[u]; len(bis) > 0 {
			startsLeft--
			for _, bi := range bis {
				if setEdge(sp, batches[bi], vs, bi, j, bp, opt, math.NaN()) {
					degree++
				}
			}
		}
		for _, e := range g.OutEdges(u) {
			if visited[e.To] != ep {
				pq.push(e.To, du+alphaWeight(e))
			}
		}
	}
}

// setEdge computes mCost(π, v) and installs the edge when feasible; returns
// whether a true (non-Ω) edge was added. fm is the precomputed first-mile
// distance SP(loc(v), π[1]ʳ, Now) from a batched query, or NaN to resolve it
// here (the best-first path, which must stay lazy to preserve its pruning).
func setEdge(sp roadnet.SPFunc, b *model.Batch, vs *VehicleState, i, j int, bp *Bipartite, opt Options, fm float64) bool {
	// Capacity feasibility (Definition 4).
	if vs.BaseOrders()+len(b.Orders) > opt.MaxO {
		return false
	}
	if vs.BaseItems()+b.Items() > opt.MaxI {
		return false
	}
	// The 45-minute first-mile guarantee.
	if math.IsNaN(fm) {
		fm = sp(vs.Node, b.FirstPickupNode(), opt.Now)
	}
	if fm > opt.MaxFirstMile {
		return false
	}
	plan, mc, ok := routing.MarginalCost(sp, vs.Node, opt.Now, vs.Onboard, vs.Keep, b.Orders)
	if !ok {
		return false
	}
	// w(o,v) = min(mCost, Ω) per the FOODGRAPH weight definition.
	if mc >= opt.Omega {
		bp.Cost[i][j] = opt.Omega
		return false
	}
	if opt.AgeNeutral {
		// Subtract the *full* waiting age. Beyond removing the sunk
		// constant (which fixes the starvation mis-pricing), the full-age
		// variant doubles as aging priority: when batches must be left
		// out, those carrying older orders are preferred for coverage —
		// FIFO-under-scarcity, which measurably beats the prep-slack-only
		// variant on peak workloads (see EXPERIMENTS.md X2). The batching
		// layer's detour budget uses the prep-slack definition instead;
		// the two roles differ.
		for _, o := range b.Orders {
			if d := opt.Now - o.PlacedAt; d > 0 {
				mc -= d
			}
		}
	}
	bp.Cost[i][j] = mc
	bp.Plan[i][j] = plan
	bp.TrueEdges++
	return true
}

// nodeHeap is a binary min-heap over (node, α-distance).
type nodeHeap struct {
	node []roadnet.NodeID
	dist []float64
}

func (h *nodeHeap) push(u roadnet.NodeID, d float64) {
	h.node = append(h.node, u)
	h.dist = append(h.dist, d)
	i := len(h.node) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dist[p] <= h.dist[i] {
			break
		}
		h.node[p], h.node[i] = h.node[i], h.node[p]
		h.dist[p], h.dist[i] = h.dist[i], h.dist[p]
		i = p
	}
}

func (h *nodeHeap) pop() (roadnet.NodeID, float64) {
	u, d := h.node[0], h.dist[0]
	last := len(h.node) - 1
	h.node[0], h.dist[0] = h.node[last], h.dist[last]
	h.node = h.node[:last]
	h.dist = h.dist[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.dist[l] < h.dist[s] {
			s = l
		}
		if r < last && h.dist[r] < h.dist[s] {
			s = r
		}
		if s == i {
			break
		}
		h.node[i], h.node[s] = h.node[s], h.node[i]
		h.dist[i], h.dist[s] = h.dist[s], h.dist[i]
		i = s
	}
	return u, d
}

func (h *nodeHeap) empty() bool { return len(h.node) == 0 }

func (h *nodeHeap) reset() {
	h.node = h.node[:0]
	h.dist = h.dist[:0]
}

// KFor computes the degree bound k = max(kmin, KFactor·|O|/|V|) of
// Section V-B, clamped to the number of batches.
func KFor(kFactor float64, kMin, numBatches, numVehicles int) int {
	if numVehicles == 0 || numBatches == 0 {
		return 0
	}
	k := int(math.Ceil(kFactor * float64(numBatches) / float64(numVehicles)))
	if k < kMin {
		k = kMin
	}
	if k > numBatches {
		k = numBatches
	}
	return k
}
