package foodgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/roadnet"
)

// The paper's scalability argument (Section IV-C): constructing the full
// bipartite FOODGRAPH costs Θ(n·m) marginal-cost evaluations, while the
// best-first construction pays k·m plus search overhead. These benchmarks
// measure exactly that crossover as the instance grows.

func benchInstance(nBatches, nVehicles int) (*roadnet.Graph, roadnet.SPFunc, []*model.Batch, []*VehicleState) {
	g, sp := gridGraph(20, 30) // 400 nodes
	rng := rand.New(rand.NewSource(13))
	var batches []*model.Batch
	for i := 0; i < nBatches; i++ {
		batches = append(batches, mkBatch(sp, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(rng.Intn(400)), roadnet.NodeID(rng.Intn(400)))))
	}
	var vehicles []*VehicleState
	for j := 0; j < nVehicles; j++ {
		vehicles = append(vehicles, idleVehicle(model.VehicleID(j+1), roadnet.NodeID(rng.Intn(400))))
	}
	return g, sp, batches, vehicles
}

func benchmarkBuild(b *testing.B, nBatches, nVehicles, k int, bestFirst bool) {
	g, sp, batches, vehicles := benchInstance(nBatches, nVehicles)
	opt := defaultOpts(k, bestFirst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, sp, batches, vehicles, opt)
	}
}

func BenchmarkAlg2Construction(b *testing.B) {
	for _, size := range []struct{ nb, nv int }{{40, 50}, {80, 100}, {160, 200}} {
		k := size.nb / 10 // the paper's ~top-10% degree
		b.Run(fmt.Sprintf("full/%dx%d", size.nb, size.nv), func(b *testing.B) {
			benchmarkBuild(b, size.nb, size.nv, size.nb, false)
		})
		b.Run(fmt.Sprintf("bestfirst/%dx%d/k=%d", size.nb, size.nv, k), func(b *testing.B) {
			benchmarkBuild(b, size.nb, size.nv, k, true)
		})
	}
}
