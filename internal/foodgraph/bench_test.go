package foodgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
	"repro/internal/workload"
)

// The paper's scalability argument (Section IV-C): constructing the full
// bipartite FOODGRAPH costs Θ(n·m) marginal-cost evaluations, while the
// best-first construction pays k·m plus search overhead. These benchmarks
// measure exactly that crossover as the instance grows.

func benchInstance(nBatches, nVehicles int) (*roadnet.Graph, roadnet.SPFunc, []*model.Batch, []*VehicleState) {
	g, sp := gridGraph(20, 30) // 400 nodes
	rng := rand.New(rand.NewSource(13))
	var batches []*model.Batch
	for i := 0; i < nBatches; i++ {
		batches = append(batches, mkBatch(sp, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(rng.Intn(400)), roadnet.NodeID(rng.Intn(400)))))
	}
	var vehicles []*VehicleState
	for j := 0; j < nVehicles; j++ {
		vehicles = append(vehicles, idleVehicle(model.VehicleID(j+1), roadnet.NodeID(rng.Intn(400))))
	}
	return g, sp, batches, vehicles
}

func benchmarkBuild(b *testing.B, nBatches, nVehicles, k int, bestFirst bool) {
	g, sp, batches, vehicles := benchInstance(nBatches, nVehicles)
	opt := defaultOpts(k, bestFirst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, sp, batches, vehicles, opt)
	}
}

// countingRouter wraps the exact Dijkstra backend and meters the node
// settles spent inside first-mile TravelMany calls only — the marginal-cost
// point queries both arms issue identically are excluded, so the reported
// settles/op isolates exactly what batching changes. The perpair arm
// answers TravelMany by looping single-pair Travel (the fallback every
// non-ManyRouter backend gets); the batched arm runs one shared search per
// source with target-set early termination.
type countingRouter struct {
	inner   *roadnet.DijkstraRouter
	batched bool
	settles int64
}

func (c *countingRouter) Travel(u, v roadnet.NodeID, t float64) float64 {
	return c.inner.Travel(u, v, t)
}

func (c *countingRouter) TravelMany(from roadnet.NodeID, targets []roadnet.NodeID, t float64) []float64 {
	s0 := c.inner.Settles()
	var out []float64
	if c.batched {
		out = c.inner.TravelMany(from, targets, t)
	} else {
		out = make([]float64, len(targets))
		for i, to := range targets {
			out[i] = c.inner.Travel(from, to, t)
		}
	}
	c.settles += c.inner.Settles() - s0
	return out
}

// BenchmarkFoodGraphBuild constructs the full FoodGraph for the CityB
// dinner-peak order slice against the whole fleet, comparing per-pair
// first-mile routing to the batched many-to-many path.
func BenchmarkFoodGraphBuild(b *testing.B) {
	city := workload.MustPreset("CityB", workload.DefaultScale, 1)
	start, end := 18.0*3600, 18.5*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	if len(orders) == 0 {
		b.Fatal("no orders in the dinner slice")
	}
	rt := roadnet.NewDijkstraRouter(city.G)
	sp := roadnet.SPFunc(rt.Travel)
	var batches []*model.Batch
	for _, o := range orders {
		o.SDT = o.PlacedAt + routing.SDT(sp, o)
		plan, cost, ok := routing.Optimize(sp, o.Restaurant, o.PlacedAt, nil, []*model.Order{o})
		if !ok {
			continue
		}
		batches = append(batches, &model.Batch{Orders: []*model.Order{o}, Plan: plan, Cost: cost})
	}
	rng := rand.New(rand.NewSource(7))
	n := city.G.NumNodes()
	var vehicles []*VehicleState
	for _, v := range city.Fleet(1.0, 3, 1) {
		vehicles = append(vehicles, idleVehicle(v.ID, roadnet.NodeID(rng.Intn(n))))
	}
	opt := defaultOpts(len(batches), false)
	opt.Now = end
	for _, arm := range []struct {
		name    string
		batched bool
	}{{"perpair", false}, {"batched", true}} {
		b.Run(arm.name, func(b *testing.B) {
			cr := &countingRouter{inner: rt, batched: arm.batched}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Build(city.G, cr, batches, vehicles, opt)
			}
			b.StopTimer()
			b.ReportMetric(float64(cr.settles)/float64(b.N), "settles/op")
		})
	}
}

func BenchmarkAlg2Construction(b *testing.B) {
	for _, size := range []struct{ nb, nv int }{{40, 50}, {80, 100}, {160, 200}} {
		k := size.nb / 10 // the paper's ~top-10% degree
		b.Run(fmt.Sprintf("full/%dx%d", size.nb, size.nv), func(b *testing.B) {
			benchmarkBuild(b, size.nb, size.nv, size.nb, false)
		})
		b.Run(fmt.Sprintf("bestfirst/%dx%d/k=%d", size.nb, size.nv, k), func(b *testing.B) {
			benchmarkBuild(b, size.nb, size.nv, k, true)
		})
	}
}
