package foodgraph

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// gridGraph builds an n×n bidirectional grid with weight w seconds per hop
// and geographically meaningful coordinates.
func gridGraph(n int, w float64) (*roadnet.Graph, roadnet.SPFunc) {
	b := roadnet.NewBuilder()
	origin := geo.Point{Lat: 12.9, Lon: 77.5}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*200, float64(c)*200))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				b.AddEdge(id(r, c), id(r, c+1), 200, w, 0)
				b.AddEdge(id(r, c+1), id(r, c), 200, w, 0)
			}
			if r+1 < n {
				b.AddEdge(id(r, c), id(r+1, c), 200, w, 0)
				b.AddEdge(id(r+1, c), id(r, c), 200, w, 0)
			}
		}
	}
	g := b.MustBuild()
	return g, roadnet.NewDistCache(g, math.Inf(1)).AsFunc()
}

func mkOrder(sp roadnet.SPFunc, id model.OrderID, r, c roadnet.NodeID) *model.Order {
	o := &model.Order{ID: id, Restaurant: r, Customer: c, PlacedAt: 0, Items: 1, Prep: 0}
	o.SDT = routing.SDT(sp, o)
	return o
}

func mkBatch(sp roadnet.SPFunc, orders ...*model.Order) *model.Batch {
	plan, cost, ok := routing.Optimize(sp, orders[0].Restaurant, 0, nil, orders)
	if !ok {
		panic("infeasible test batch")
	}
	return &model.Batch{Orders: orders, Plan: plan, Cost: cost}
}

func idleVehicle(id model.VehicleID, node roadnet.NodeID) *VehicleState {
	return &VehicleState{
		Vehicle: model.NewVehicle(id, node, 3),
		Node:    node,
		Dest:    roadnet.Invalid,
	}
}

func defaultOpts(k int, bestFirst bool) Options {
	return Options{
		K: k, Gamma: 0.5, Angular: true, BestFirst: bestFirst,
		Omega: 7200, MaxFirstMile: 2700, MaxO: 3, MaxI: 10, Now: 0,
	}
}

func TestBuildEmpty(t *testing.T) {
	g, sp := gridGraph(4, 30)
	bp := Build(g, sp, nil, nil, defaultOpts(5, true))
	if len(bp.Cost) != 0 {
		t.Fatalf("empty build produced %d rows", len(bp.Cost))
	}
	bp = Build(g, sp, []*model.Batch{}, []*VehicleState{idleVehicle(1, 0)}, defaultOpts(5, true))
	if len(bp.Cost) != 0 {
		t.Fatal("no batches should give no rows")
	}
}

func TestFullGraphCostsMatchMarginalCost(t *testing.T) {
	g, sp := gridGraph(5, 30)
	o1 := mkOrder(sp, 1, 6, 18)
	o2 := mkOrder(sp, 2, 12, 24)
	b1, b2 := mkBatch(sp, o1), mkBatch(sp, o2)
	v1 := idleVehicle(1, 0)
	v2 := idleVehicle(2, 20)
	bp := Build(g, sp, []*model.Batch{b1, b2}, []*VehicleState{v1, v2}, defaultOpts(2, false))
	for i, b := range []*model.Batch{b1, b2} {
		for j, vs := range []*VehicleState{v1, v2} {
			_, want, ok := routing.MarginalCost(sp, vs.Node, 0, nil, nil, b.Orders)
			if !ok {
				t.Fatal("infeasible pair on connected grid")
			}
			if got := bp.Cost[i][j]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("Cost[%d][%d] = %v, want %v", i, j, got, want)
			}
			if bp.Plan[i][j] == nil {
				t.Fatalf("Plan[%d][%d] missing", i, j)
			}
			if err := bp.Plan[i][j].Validate(); err != nil {
				t.Fatalf("Plan[%d][%d] invalid: %v", i, j, err)
			}
		}
	}
	if bp.TrueEdges != 4 {
		t.Fatalf("TrueEdges = %d, want 4", bp.TrueEdges)
	}
}

func TestBestFirstDegreeBound(t *testing.T) {
	g, sp := gridGraph(6, 30)
	var batches []*model.Batch
	for i := 0; i < 12; i++ {
		batches = append(batches, mkBatch(sp, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(i*3%36), roadnet.NodeID((i*5+7)%36))))
	}
	v := idleVehicle(1, 0)
	k := 4
	bp := Build(g, sp, batches, []*VehicleState{v}, defaultOpts(k, true))
	degree := 0
	for i := range batches {
		if bp.Cost[i][0] < 7200 {
			degree++
		}
	}
	if degree > k {
		t.Fatalf("vehicle degree %d exceeds k=%d", degree, k)
	}
	if degree == 0 {
		t.Fatal("best-first search found no edges at all")
	}
}

func TestLemma1TopKWithPureBeta(t *testing.T) {
	// Lemma 1: with γ=1 (pure travel time) the k true edges of a vehicle
	// are exactly the k closest batch start nodes by network distance.
	g, sp := gridGraph(6, 30)
	rng := rand.New(rand.NewSource(9))
	var batches []*model.Batch
	for i := 0; i < 15; i++ {
		r := roadnet.NodeID(rng.Intn(36))
		c := roadnet.NodeID(rng.Intn(36))
		batches = append(batches, mkBatch(sp, mkOrder(sp, model.OrderID(i+1), r, c)))
	}
	v := idleVehicle(1, 14)
	opt := defaultOpts(5, true)
	opt.Gamma = 1
	opt.Angular = false
	bp := Build(g, sp, batches, []*VehicleState{v}, opt)

	// Distances from the vehicle to each batch start.
	type bd struct {
		idx int
		d   float64
	}
	var ds []bd
	for i, b := range batches {
		ds = append(ds, bd{i, sp(v.Node, b.FirstPickupNode(), 0)})
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	kthDist := ds[opt.K-1].d
	for i := range batches {
		isTrue := bp.Cost[i][0] < opt.Omega
		d := sp(v.Node, batches[i].FirstPickupNode(), 0)
		if isTrue && d > kthDist+1e-9 {
			t.Fatalf("batch %d (dist %v) got a true edge but is beyond the k-th distance %v", i, d, kthDist)
		}
	}
}

func TestCapacityConstraintsForceOmega(t *testing.T) {
	g, sp := gridGraph(4, 30)
	o := mkOrder(sp, 1, 5, 10)
	b := mkBatch(sp, o)
	vs := idleVehicle(1, 0)
	// Fill the vehicle to MAXO.
	for i := 0; i < 3; i++ {
		oo := mkOrder(sp, model.OrderID(100+i), 1, 2)
		oo.State = model.OrderPickedUp
		vs.Onboard = append(vs.Onboard, oo)
	}
	bp := Build(g, sp, []*model.Batch{b}, []*VehicleState{vs}, defaultOpts(1, false))
	if bp.Cost[0][0] != 7200 {
		t.Fatalf("full vehicle cost = %v, want Ω", bp.Cost[0][0])
	}

	// MAXI: 10 items already on board.
	vs2 := idleVehicle(2, 0)
	heavy := mkOrder(sp, 200, 1, 2)
	heavy.Items = 10
	heavy.State = model.OrderPickedUp
	vs2.Onboard = []*model.Order{heavy}
	bp2 := Build(g, sp, []*model.Batch{b}, []*VehicleState{vs2}, defaultOpts(1, false))
	if bp2.Cost[0][0] != 7200 {
		t.Fatalf("item-full vehicle cost = %v, want Ω", bp2.Cost[0][0])
	}
}

func TestMaxFirstMileForcesOmega(t *testing.T) {
	g, sp := gridGraph(6, 1000) // 1000 s per hop
	o := mkOrder(sp, 1, 35, 30) // far corner
	b := mkBatch(sp, o)
	vs := idleVehicle(1, 0)
	opt := defaultOpts(1, false)
	opt.MaxFirstMile = 2700 // the corner is 10 hops = 10000 s away
	bp := Build(g, sp, []*model.Batch{b}, []*VehicleState{vs}, opt)
	if bp.Cost[0][0] != opt.Omega {
		t.Fatalf("beyond-45-min batch cost = %v, want Ω", bp.Cost[0][0])
	}
}

func TestAngularBiasPrefersHeadingDirection(t *testing.T) {
	// Vehicle at grid centre heading east; two equidistant batches, one east
	// one west. With strong angular weighting (γ small) and k=1, the east
	// batch gets the true edge.
	g, sp := gridGraph(7, 30)
	centre := roadnet.NodeID(3*7 + 3)
	east := roadnet.NodeID(3*7 + 6)
	west := roadnet.NodeID(3 * 7)
	be := mkBatch(sp, mkOrder(sp, 1, east, east-1))
	bw := mkBatch(sp, mkOrder(sp, 2, west, west+1))
	vs := idleVehicle(1, centre)
	vs.Dest = centre + 1 // next node east
	opt := defaultOpts(1, true)
	opt.Gamma = 0.1
	bp := Build(g, sp, []*model.Batch{be, bw}, []*VehicleState{vs}, opt)
	if bp.Cost[0][0] >= opt.Omega {
		t.Fatalf("east batch should receive the single true edge; east=%v west=%v",
			bp.Cost[0][0], bp.Cost[1][0])
	}
	if bp.Cost[1][0] < opt.Omega {
		t.Fatal("west batch should have been pruned at k=1")
	}
}

func TestKFor(t *testing.T) {
	cases := []struct {
		kf       float64
		kmin     int
		nb, nv   int
		expected int
	}{
		{200, 5, 100, 100, 200 * 100 / 100}, // clamped to nb below
		{200, 5, 10, 1000, 5},               // floor via kmin
		{200, 5, 0, 10, 0},
		{200, 5, 10, 0, 0},
		{2, 1, 30, 10, 6},
	}
	for i, c := range cases {
		got := KFor(c.kf, c.kmin, c.nb, c.nv)
		want := c.expected
		if want > c.nb {
			want = c.nb
		}
		if got != want {
			t.Errorf("case %d: KFor = %d, want %d", i, got, want)
		}
	}
}

func TestBestFirstAndFullAgreeOnTrueEdges(t *testing.T) {
	// Edges that best-first does compute must carry the same weight as the
	// full construction.
	g, sp := gridGraph(5, 30)
	rng := rand.New(rand.NewSource(31))
	var batches []*model.Batch
	for i := 0; i < 8; i++ {
		batches = append(batches, mkBatch(sp, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(rng.Intn(25)), roadnet.NodeID(rng.Intn(25)))))
	}
	vehicles := []*VehicleState{idleVehicle(1, 0), idleVehicle(2, 24), idleVehicle(3, 12)}
	full := Build(g, sp, batches, vehicles, defaultOpts(8, false))
	bf := Build(g, sp, batches, vehicles, defaultOpts(4, true))
	for i := range batches {
		for j := range vehicles {
			if bf.Cost[i][j] < 7200 && math.Abs(bf.Cost[i][j]-full.Cost[i][j]) > 1e-9 {
				t.Fatalf("edge (%d,%d): best-first %v != full %v", i, j, bf.Cost[i][j], full.Cost[i][j])
			}
		}
	}
}

func TestAgeNeutralSubtractsSunkAge(t *testing.T) {
	g, sp := gridGraph(5, 30)
	o := mkOrder(sp, 1, 6, 18)
	o.PlacedAt = -900 // 15 minutes old
	o.Prep = 300
	o.SDT = routing.SDT(sp, o)
	b := mkBatch(sp, o)
	vs := idleVehicle(1, 0)

	opt := defaultOpts(1, false)
	opt.Now = 0
	raw := Build(g, sp, []*model.Batch{b}, []*VehicleState{vs}, opt)

	opt.AgeNeutral = true
	neutral := Build(g, sp, []*model.Batch{b}, []*VehicleState{vs}, opt)

	// The neutral edge must be exactly the raw edge minus the full waiting
	// age (now - PlacedAt = 900 s); see foodgraph.Options.AgeNeutral for
	// why the full age (not just the post-prep slack) is subtracted.
	if diff := raw.Cost[0][0] - neutral.Cost[0][0]; math.Abs(diff-900) > 1e-9 {
		t.Fatalf("age-neutral subtracted %v, want 900", diff)
	}
}

func TestAgeNeutralIsRowConstant(t *testing.T) {
	// Subtracting the age must not change which vehicle is cheapest.
	g, sp := gridGraph(5, 30)
	o := mkOrder(sp, 1, 12, 18)
	o.PlacedAt = -1200
	o.SDT = routing.SDT(sp, o)
	b := mkBatch(sp, o)
	v1, v2 := idleVehicle(1, 0), idleVehicle(2, 24)
	opt := defaultOpts(2, false)
	raw := Build(g, sp, []*model.Batch{b}, []*VehicleState{v1, v2}, opt)
	opt.AgeNeutral = true
	neu := Build(g, sp, []*model.Batch{b}, []*VehicleState{v1, v2}, opt)
	rawPref := raw.Cost[0][0] < raw.Cost[0][1]
	neuPref := neu.Cost[0][0] < neu.Cost[0][1]
	if rawPref != neuPref {
		t.Fatal("age-neutral changed the preferred vehicle")
	}
}

func TestBestFirstBypassWhenKCoversAllBatches(t *testing.T) {
	// With k >= #batches, best-first and full construction must produce
	// identical graphs (the bypass fast path).
	g, sp := gridGraph(5, 30)
	var batches []*model.Batch
	for i := 0; i < 4; i++ {
		batches = append(batches, mkBatch(sp, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(i*6), roadnet.NodeID(24-i*6))))
	}
	vs := []*VehicleState{idleVehicle(1, 0), idleVehicle(2, 12)}
	bf := Build(g, sp, batches, vs, defaultOpts(10, true))
	full := Build(g, sp, batches, vs, defaultOpts(10, false))
	for i := range batches {
		for j := range vs {
			if bf.Cost[i][j] != full.Cost[i][j] {
				t.Fatalf("bypass mismatch at (%d,%d): %v vs %v", i, j, bf.Cost[i][j], full.Cost[i][j])
			}
		}
	}
}
