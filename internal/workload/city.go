// Package workload synthesises the paper's experimental substrate: road
// networks of Indian metropolitan cities, restaurant and customer
// geographies, per-restaurant Gaussian preparation times and the daily
// order stream with its lunch/dinner peaks (Table II, Fig. 6(a)).
//
// The real Swiggy logs and OpenStreetMap extracts are not redistributable,
// so every dataset is generated deterministically from a seed; the presets
// scale Table II's node/vehicle/order counts down to laptop size while
// preserving the ratios that drive the paper's results (order-to-vehicle
// ratio peaks, restaurant density, prep-time averages). See DESIGN.md §2.9
// for the substitution rationale.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
)

// CityParams drives the synthetic city generator.
type CityParams struct {
	Name string
	// Rows × Cols street grid; BlockM metres per block.
	Rows, Cols int
	BlockM     float64
	// ArterialEvery inserts a faster arterial every k-th row/column.
	ArterialEvery int
	// LocalSpeedMS / ArterialSpeedMS are free-flow speeds.
	LocalSpeedMS, ArterialSpeedMS float64
	// DiagonalFrac adds this fraction of extra one-way diagonal shortcuts.
	DiagonalFrac float64
	// Hotspots is the number of restaurant clusters.
	Hotspots int
	// Restaurants / Vehicles / OrdersPerDay set the city's scale.
	Restaurants  int
	Vehicles     int
	OrdersPerDay int
	// PrepMeanMin is the city-wide average food preparation time (minutes),
	// matching Table II's "Food prep. time (avg/min)".
	PrepMeanMin float64
	// Hourly is the relative order-rate profile over 24 slots (normalised
	// internally); zero value uses DefaultHourlyProfile.
	Hourly [24]float64
	// CustomerSpreadM is the Gaussian radius customers are drawn around
	// restaurants.
	CustomerSpreadM float64
	// TargetPeakRatio is the peak-hour order-to-vehicle ratio of Fig. 6(a)
	// that the shift plan aims for (City B ≈ 2.9); 0 defaults to 1.5.
	TargetPeakRatio float64
	// Seed makes the city reproducible.
	Seed int64
}

// City is a generated city: road network, restaurants with popularity and
// prep-time models, and a spatial index for coordinate snapping.
type City struct {
	Params      CityParams
	G           *roadnet.Graph
	Restaurants []roadnet.NodeID
	// Popularity are unnormalised Zipf-like sampling weights per restaurant.
	Popularity []float64
	popCum     []float64
	// PrepMeanSec / PrepStdSec are per-restaurant, per-slot Gaussian
	// parameters (Section V-A's N(μ_R,T, σ_R,T)).
	PrepMeanSec [][roadnet.SlotsPerDay]float64
	PrepStdSec  [][roadnet.SlotsPerDay]float64
	// Hourly is the normalised order-rate profile.
	Hourly [24]float64

	grid *nodeGrid
}

// DefaultHourlyProfile is shaped after Fig. 6(a): quiet overnight, a small
// breakfast bump, a pronounced lunch peak (12:00–14:59) and the day's
// highest dinner peak (19:00–21:59).
func DefaultHourlyProfile() [24]float64 {
	return [24]float64{
		0.4, 0.25, 0.15, 0.1, 0.1, 0.2, // 00–05
		0.5, 0.9, 1.3, 1.6, 1.8, 2.6, // 06–11
		4.4, 4.8, 3.4, 2.0, 1.7, 1.9, // 12–17
		2.6, 4.6, 5.4, 4.4, 2.6, 1.1, // 18–23
	}
}

// Generate builds the deterministic city for the parameters.
func Generate(p CityParams) (*City, error) {
	if p.Rows < 2 || p.Cols < 2 {
		return nil, fmt.Errorf("workload: grid %dx%d too small", p.Rows, p.Cols)
	}
	if p.Restaurants < 1 || p.Vehicles < 1 {
		return nil, fmt.Errorf("workload: need at least one restaurant and vehicle")
	}
	if p.BlockM <= 0 {
		p.BlockM = 220
	}
	if p.ArterialEvery <= 0 {
		p.ArterialEvery = 5
	}
	if p.LocalSpeedMS <= 0 {
		p.LocalSpeedMS = 7.5
	}
	if p.ArterialSpeedMS <= 0 {
		p.ArterialSpeedMS = 12.0
	}
	if p.Hotspots <= 0 {
		p.Hotspots = 1 + p.Restaurants/40
	}
	if p.CustomerSpreadM <= 0 {
		p.CustomerSpreadM = 2200
	}
	zero := [24]float64{}
	if p.Hourly == zero {
		p.Hourly = DefaultHourlyProfile()
	}

	rng := rand.New(rand.NewSource(p.Seed))
	c := &City{Params: p}

	if err := c.buildGraph(rng); err != nil {
		return nil, err
	}
	c.placeRestaurants(rng)
	c.buildPrepModels(rng)

	total := 0.0
	for _, h := range p.Hourly {
		total += h
	}
	for i, h := range p.Hourly {
		c.Hourly[i] = h / total
	}
	c.grid = newNodeGrid(c.G, p.BlockM)
	return c, nil
}

// MustGenerate panics on error; for presets with known-valid parameters.
func MustGenerate(p CityParams) *City {
	c, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return c
}

// buildGraph lays out the perturbed grid with arterials, one-way diagonal
// shortcuts and congestion zones.
func (c *City) buildGraph(rng *rand.Rand) error {
	p := c.Params
	b := roadnet.NewBuilder()
	origin := geo.Point{Lat: 12.90, Lon: 77.50}

	// Congestion zones: centre vs periphery × local vs arterial. Peak-hour
	// multipliers are strongest for central locals, mirroring metropolitan
	// congestion patterns.
	centreLocal := b.AddZone(congestionRow(1.9, 1.6))
	centreArterial := b.AddZone(congestionRow(1.6, 1.45))
	periphLocal := b.AddZone(congestionRow(1.45, 1.25))
	periphArterial := b.AddZone(congestionRow(1.3, 1.15))

	id := func(r, col int) roadnet.NodeID { return roadnet.NodeID(r*p.Cols + col) }
	pts := make([]geo.Point, p.Rows*p.Cols)
	for r := 0; r < p.Rows; r++ {
		for col := 0; col < p.Cols; col++ {
			jitterN := (rng.Float64() - 0.5) * 0.3 * p.BlockM
			jitterE := (rng.Float64() - 0.5) * 0.3 * p.BlockM
			pt := geo.Offset(origin, float64(r)*p.BlockM+jitterN, float64(col)*p.BlockM+jitterE)
			pts[int(id(r, col))] = pt
			b.AddNode(pt)
		}
	}

	central := func(r, col int) bool {
		return r > p.Rows/4 && r < 3*p.Rows/4 && col > p.Cols/4 && col < 3*p.Cols/4
	}
	addRoad := func(u, v roadnet.NodeID, arterial bool, r, col int) {
		lenM := geo.Haversine(pts[u], pts[v])
		speed := p.LocalSpeedMS
		zone := periphLocal
		if arterial {
			speed = p.ArterialSpeedMS
			zone = periphArterial
		}
		if central(r, col) {
			if arterial {
				zone = centreArterial
			} else {
				zone = centreLocal
			}
		}
		baseSec := lenM / speed
		if baseSec < 1 {
			baseSec = 1
		}
		b.AddEdge(u, v, lenM, baseSec, zone)
		b.AddEdge(v, u, lenM, baseSec, zone)
	}

	for r := 0; r < p.Rows; r++ {
		for col := 0; col < p.Cols; col++ {
			if col+1 < p.Cols {
				addRoad(id(r, col), id(r, col+1), r%p.ArterialEvery == 0, r, col)
			}
			if r+1 < p.Rows {
				addRoad(id(r, col), id(r+1, col), col%p.ArterialEvery == 0, r, col)
			}
		}
	}

	// One-way diagonal shortcuts (extra connectivity, directed asymmetry).
	nDiag := int(p.DiagonalFrac * float64(p.Rows*p.Cols))
	for i := 0; i < nDiag; i++ {
		r := rng.Intn(p.Rows - 1)
		col := rng.Intn(p.Cols - 1)
		u, v := id(r, col), id(r+1, col+1)
		if rng.Intn(2) == 0 {
			u, v = v, u
		}
		lenM := geo.Haversine(pts[u], pts[v])
		b.AddEdge(u, v, lenM, lenM/p.LocalSpeedMS, periphLocal)
	}

	g, err := b.Build()
	if err != nil {
		return err
	}
	if !roadnet.StronglyConnected(g) {
		return fmt.Errorf("workload: generated graph not strongly connected")
	}
	c.G = g
	return nil
}

// congestionRow builds a slot-multiplier row with the given lunch and
// evening peak factors over a 1.0 free-flow baseline.
func congestionRow(peakLunch, morning float64) [roadnet.SlotsPerDay]float64 {
	var row [roadnet.SlotsPerDay]float64
	for s := range row {
		switch {
		case s >= 8 && s <= 10: // morning commute
			row[s] = morning
		case s >= 12 && s <= 14: // lunch
			row[s] = peakLunch
		case s >= 17 && s <= 21: // evening commute + dinner
			row[s] = peakLunch*0.5 + morning*0.5 + 0.2
		case s >= 23 || s <= 5: // night
			row[s] = 0.85
		default:
			row[s] = 1.0
		}
	}
	return row
}

// placeRestaurants samples restaurant nodes clustered around hotspots with
// Zipf-like popularity weights.
func (c *City) placeRestaurants(rng *rand.Rand) {
	p := c.Params
	n := c.G.NumNodes()
	hot := make([]roadnet.NodeID, p.Hotspots)
	for i := range hot {
		hot[i] = roadnet.NodeID(rng.Intn(n))
	}
	seen := make(map[roadnet.NodeID]bool)
	for len(c.Restaurants) < p.Restaurants {
		h := hot[rng.Intn(len(hot))]
		pt := c.G.Point(h)
		cand := geo.Offset(pt, rng.NormFloat64()*1200, rng.NormFloat64()*1200)
		node := c.nearest(cand)
		if seen[node] {
			// Dense cities run out of distinct nodes; allow duplicates once
			// saturated.
			if len(seen) >= n || rng.Float64() < 0.3 {
				c.Restaurants = append(c.Restaurants, node)
			}
			continue
		}
		seen[node] = true
		c.Restaurants = append(c.Restaurants, node)
	}
	// Zipf-like popularity: weight_i ∝ 1 / rank^0.8.
	c.Popularity = make([]float64, p.Restaurants)
	for i := range c.Popularity {
		c.Popularity[i] = 1.0 / math.Pow(float64(i+1), 0.8)
	}
	rng.Shuffle(len(c.Popularity), func(i, j int) {
		c.Popularity[i], c.Popularity[j] = c.Popularity[j], c.Popularity[i]
	})
	c.popCum = make([]float64, len(c.Popularity))
	sum := 0.0
	for i, w := range c.Popularity {
		sum += w
		c.popCum[i] = sum
	}
}

// buildPrepModels draws the per-restaurant, per-slot Gaussian prep-time
// parameters around the city average.
func (c *City) buildPrepModels(rng *rand.Rand) {
	p := c.Params
	base := p.PrepMeanMin * 60
	c.PrepMeanSec = make([][roadnet.SlotsPerDay]float64, len(c.Restaurants))
	c.PrepStdSec = make([][roadnet.SlotsPerDay]float64, len(c.Restaurants))
	for i := range c.Restaurants {
		// Restaurant-level speed factor: some kitchens are simply slower.
		rf := math.Exp(rng.NormFloat64() * 0.25)
		for s := 0; s < roadnet.SlotsPerDay; s++ {
			busy := 1.0
			if s >= 12 && s <= 14 || s >= 19 && s <= 21 {
				busy = 1.25 // kitchens slow down at peak
			}
			mean := base * rf * busy
			c.PrepMeanSec[i][s] = mean
			c.PrepStdSec[i][s] = 0.3 * mean
		}
	}
}

// nearest snaps a coordinate to the closest road node via the spatial grid
// (falls back to linear scan before the grid exists, during generation).
func (c *City) nearest(pt geo.Point) roadnet.NodeID {
	if c.grid != nil {
		return c.grid.nearest(pt)
	}
	return c.G.NearestNode(pt)
}

// NearestNode snaps an arbitrary coordinate to the road network.
func (c *City) NearestNode(pt geo.Point) roadnet.NodeID { return c.nearest(pt) }

// sampleRestaurant draws a restaurant index by popularity.
func (c *City) sampleRestaurant(rng *rand.Rand) int {
	total := c.popCum[len(c.popCum)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(c.popCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.popCum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Fleet creates the city's vehicle fleet with rider shifts.
//
// Table II's vehicle counts are distinct riders over the whole day, not
// concurrent riders: Fig. 6(a)'s order-to-vehicle ratios only reach ~3 at
// peak because supply is a fraction of the roster at any instant. Fleet
// therefore synthesises a shift plan whose concurrent-active curve tracks
// the demand profile scaled to the city's TargetPeakRatio: the number of
// active vehicles in slot s is (expected orders in s) / ratio(s), riders
// starting and ending contiguous shifts as the target rises and falls.
//
// frac ∈ (0,1] subsamples the roster uniformly (Fig. 7's fleet sweeps),
// preserving the shift-shape. Vehicles park at deterministic random nodes —
// the paper seats riders at their first GPS ping.
func (c *City) Fleet(frac float64, maxO int, seed int64) []*model.Vehicle {
	if frac <= 0 {
		frac = 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	roster := c.Params.Vehicles

	// Target concurrent-active per slot.
	peakRatio := c.Params.TargetPeakRatio
	if peakRatio <= 0 {
		peakRatio = 1.5
	}
	maxH := 0.0
	for _, h := range c.Hourly {
		if h > maxH {
			maxH = h
		}
	}
	active := make([]int, 24)
	for s := 0; s < 24; s++ {
		ratio := peakRatio * c.Hourly[s] / maxH
		if ratio < 0.25 {
			ratio = 0.25
		}
		want := int(math.Ceil(c.Hourly[s] * float64(c.Params.OrdersPerDay) / ratio))
		if want < 1 {
			want = 1
		}
		if want > roster {
			want = roster
		}
		active[s] = want
	}

	// Synthesise contiguous shifts: activate new riders when the target
	// rises, retire the earliest-started when it falls, and rotate shifts
	// longer than maxShift while the roster allows — real fleets achieve
	// their distinct-rider counts through turnover, not marathon shifts.
	const maxShiftSec = 4.5 * 3600
	fleet := make([]*model.Vehicle, 0, roster)
	var live []int // indices into fleet, in activation order
	activate := func(s int) bool {
		if len(fleet) >= roster {
			return false
		}
		node := roadnet.NodeID(rng.Intn(c.G.NumNodes()))
		v := model.NewVehicle(model.VehicleID(len(fleet)+1), node, maxO)
		v.ActiveFrom = float64(s)*3600 - rng.Float64()*900
		if v.ActiveFrom < 0 {
			v.ActiveFrom = 0
		}
		v.ActiveTo = roadnet.SecondsPerDay + 3600
		fleet = append(fleet, v)
		live = append(live, len(fleet)-1)
		return true
	}
	retire := func(s int) {
		v := fleet[live[0]]
		v.ActiveTo = float64(s)*3600 + rng.Float64()*900
		live = live[1:]
	}
	for s := 0; s < 24; s++ {
		for len(live) > active[s] {
			retire(s)
		}
		// Rotate over-long shifts while replacements exist.
		for len(live) > 0 && len(fleet) < roster &&
			float64(s)*3600-fleet[live[0]].ActiveFrom > maxShiftSec {
			retire(s)
			activate(s)
		}
		for len(live) < active[s] {
			if !activate(s) {
				break // roster exhausted: demand goes unmet, scarcity rises
			}
		}
	}
	// Riders never retired work to end of day (already set).

	// Uniform subsample for fleet-size sweeps.
	if frac < 1 {
		n := int(math.Round(frac * float64(len(fleet))))
		if n < 1 {
			n = 1
		}
		rng.Shuffle(len(fleet), func(i, j int) { fleet[i], fleet[j] = fleet[j], fleet[i] })
		fleet = fleet[:n]
		for i, v := range fleet {
			v.ID = model.VehicleID(i + 1)
		}
	}
	return fleet
}

// ActiveAt counts fleet vehicles on shift at time t.
func ActiveAt(fleet []*model.Vehicle, t float64) int {
	n := 0
	for _, v := range fleet {
		if v.Active(t) {
			n++
		}
	}
	return n
}

// nodeGrid is a uniform spatial hash over node coordinates.
type nodeGrid struct {
	g          *roadnet.Graph
	minLat     float64
	minLon     float64
	cellLat    float64
	cellLon    float64
	rows, cols int
	cells      [][]roadnet.NodeID
}

func newNodeGrid(g *roadnet.Graph, blockM float64) *nodeGrid {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	minLat, minLon := math.Inf(1), math.Inf(1)
	maxLat, maxLon := math.Inf(-1), math.Inf(-1)
	for i := 0; i < n; i++ {
		pt := g.Point(roadnet.NodeID(i))
		minLat = math.Min(minLat, pt.Lat)
		maxLat = math.Max(maxLat, pt.Lat)
		minLon = math.Min(minLon, pt.Lon)
		maxLon = math.Max(maxLon, pt.Lon)
	}
	// Aim for ~2 blocks per cell.
	cellDeg := 2 * blockM / 111_000
	rows := int((maxLat-minLat)/cellDeg) + 1
	cols := int((maxLon-minLon)/cellDeg) + 1
	gr := &nodeGrid{
		g: g, minLat: minLat, minLon: minLon,
		cellLat: cellDeg, cellLon: cellDeg,
		rows: rows, cols: cols,
		cells: make([][]roadnet.NodeID, rows*cols),
	}
	for i := 0; i < n; i++ {
		pt := g.Point(roadnet.NodeID(i))
		ci := gr.cellIdx(pt)
		gr.cells[ci] = append(gr.cells[ci], roadnet.NodeID(i))
	}
	return gr
}

func (gr *nodeGrid) cellIdx(pt geo.Point) int {
	r := int((pt.Lat - gr.minLat) / gr.cellLat)
	c := int((pt.Lon - gr.minLon) / gr.cellLon)
	if r < 0 {
		r = 0
	}
	if r >= gr.rows {
		r = gr.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= gr.cols {
		c = gr.cols - 1
	}
	return r*gr.cols + c
}

// nearest searches outward ring by ring until a node is found.
func (gr *nodeGrid) nearest(pt geo.Point) roadnet.NodeID {
	r0 := int((pt.Lat - gr.minLat) / gr.cellLat)
	c0 := int((pt.Lon - gr.minLon) / gr.cellLon)
	best := roadnet.Invalid
	bestD := math.Inf(1)
	for ring := 0; ring < gr.rows+gr.cols; ring++ {
		found := false
		for r := r0 - ring; r <= r0+ring; r++ {
			if r < 0 || r >= gr.rows {
				continue
			}
			for c := c0 - ring; c <= c0+ring; c++ {
				if c < 0 || c >= gr.cols {
					continue
				}
				// Only the ring boundary.
				if ring > 0 && r != r0-ring && r != r0+ring && c != c0-ring && c != c0+ring {
					continue
				}
				for _, node := range gr.cells[r*gr.cols+c] {
					found = true
					if d := geo.Haversine(pt, gr.g.Point(node)); d < bestD {
						bestD = d
						best = node
					}
				}
			}
		}
		// One extra ring after the first hit guarantees correctness at cell
		// boundaries.
		if found && ring > 0 {
			break
		}
		if found && ring == 0 {
			continue
		}
	}
	if best == roadnet.Invalid {
		return gr.g.NearestNode(pt)
	}
	return best
}
