package workload

import "math"

// Paper-scale figures from Table II. Presets scale them down by a linear
// factor: counts (restaurants, vehicles, orders) scale by `scale`, the node
// count scales by `scale` with the grid dimension following its square
// root, so density — the property that drives algorithmic behaviour — is
// preserved.
const (
	// DefaultScale is the 1:50 laptop operating point used by the bench
	// harness; cmd/experiments accepts any scale.
	DefaultScale = 0.02
)

type paperCity struct {
	name         string
	nodes        int
	restaurants  int
	vehicles     int
	orders       int
	prepMin      float64
	hourlyPeaked float64 // dinner-peak multiplier tweak per city
	// peakRatio calibrates shift supply. Fig. 6(a) reports peak
	// order-to-vehicle ratios of ~3 (City B), ~1.6 (City C), ~1.1 (City A)
	// against a broader "available vehicles" denominator than our strictly
	// concurrent shift model, so our targets are scaled up ~1.9x. What the
	// calibration preserves is the *regime* every Section V result depends
	// on: at peak, demand exceeds what one-order-per-trip service can
	// clear, so batching is load-bearing rather than decorative. See
	// EXPERIMENTS.md for the calibration study.
	peakRatio float64
}

var paperCities = map[string]paperCity{
	// Table II: City A is the small city; City B has the highest
	// order-to-vehicle ratio; City C has the most restaurants.
	"CityA": {name: "CityA", nodes: 39_000, restaurants: 2085, vehicles: 2454, orders: 23_442, prepMin: 8.45, hourlyPeaked: 0.75, peakRatio: 2.2},
	"CityB": {name: "CityB", nodes: 116_000, restaurants: 6777, vehicles: 13_429, orders: 159_160, prepMin: 9.34, hourlyPeaked: 1.25, peakRatio: 5.5},
	"CityC": {name: "CityC", nodes: 183_000, restaurants: 8116, vehicles: 10_608, orders: 112_745, prepMin: 10.22, hourlyPeaked: 1.0, peakRatio: 3.5},
	// GrubHub (Reyes et al. instance): tiny, sparse, long prep times. The
	// original has no road network; we give it a coarse one and the Reyes
	// policy ignores it anyway (Haversine decisions).
	"GrubHub": {name: "GrubHub", nodes: 2_000, restaurants: 159, vehicles: 183, orders: 1046, prepMin: 19.55, hourlyPeaked: 0.9, peakRatio: 1.4},
}

// CityNames lists the available presets in canonical order.
func CityNames() []string { return []string{"CityA", "CityB", "CityC", "GrubHub"} }

// Preset builds one of the Table II cities at the given scale (1.0 = paper
// size; DefaultScale for laptop benches). Scale only shrinks counts — the
// profile shapes, prep averages and density stay faithful.
func Preset(name string, scale float64, seed int64) (*City, error) {
	pc, ok := paperCities[name]
	if !ok {
		return nil, errUnknownCity(name)
	}
	if scale <= 0 {
		scale = DefaultScale
	}
	// GrubHub is already tiny at paper scale (183 vehicles); scaling it
	// down 1:50 like the metros leaves nothing to simulate. Floor its
	// scale at 1:5.
	if pc.name == "GrubHub" && scale < 0.2 {
		scale = 0.2
	}
	// The street grid scales at one third of the count scale: batching
	// quality depends on the *density* of the order pool (how likely two
	// orders pair with a small detour), and shrinking the city as fast as
	// the order counts destroys exactly that. One third keeps per-km²
	// order density within ~3x of the paper's cities at laptop scales.
	nodes := int(float64(pc.nodes) * scale / 3)
	if nodes < 100 {
		nodes = 100
	}
	dim := int(math.Round(math.Sqrt(float64(nodes))))
	if dim < 6 {
		dim = 6
	}
	atLeast := func(v int, min int) int {
		if v < min {
			return min
		}
		return v
	}
	hourly := DefaultHourlyProfile()
	// Per-city peak character: City B's dinner peak is the sharpest in
	// Fig. 6(a); City A is flatter.
	hourly[19] *= pc.hourlyPeaked
	hourly[20] *= pc.hourlyPeaked
	hourly[21] *= pc.hourlyPeaked

	p := CityParams{
		Name:          pc.name,
		Rows:          dim,
		Cols:          dim,
		BlockM:        220,
		ArterialEvery: 5,
		// Speeds are tuned so the mean restaurant→customer leg takes
		// ~12–15 min free-flow (≈25 min under peak congestion) at the fixed
		// 2.2 km customer spread — the travel-time regime in which the
		// paper's 45-minute guarantee and peak scarcity actually bind.
		// Scaled-down street grids with realistic motorbike speeds would
		// make every leg trivially short and mask the batching trade-off.
		LocalSpeedMS:    4.0,
		ArterialSpeedMS: 6.5,
		DiagonalFrac:    0.06,
		// Restaurants are spatial entities like the street grid: scaling
		// them as fast as the order counts would thin each restaurant's
		// order flow to the point where the order graph has no good merges.
		Hotspots:        atLeast(int(float64(pc.restaurants)*scale/2)/12, 4),
		Restaurants:     atLeast(int(float64(pc.restaurants)*scale/2), 5),
		Vehicles:        atLeast(int(float64(pc.vehicles)*scale), 3),
		OrdersPerDay:    atLeast(int(float64(pc.orders)*scale), 20),
		PrepMeanMin:     pc.prepMin,
		Hourly:          hourly,
		CustomerSpreadM: 1600,
		TargetPeakRatio: pc.peakRatio,
		Seed:            seed,
	}
	if pc.name == "GrubHub" {
		p.CustomerSpreadM = 1200
		p.DiagonalFrac = 0
	}
	return Generate(p)
}

// MustPreset is Preset that panics on error.
func MustPreset(name string, scale float64, seed int64) *City {
	c, err := Preset(name, scale, seed)
	if err != nil {
		panic(err)
	}
	return c
}

type errUnknownCity string

func (e errUnknownCity) Error() string { return "workload: unknown city preset " + string(e) }
