package workload

import (
	"math"
	"testing"

	"repro/internal/roadnet"
)

func TestScenarioMultipliers(t *testing.T) {
	rain := Rain(1.3)
	for s := 0; s < roadnet.SlotsPerDay; s++ {
		if got := rain.Multiplier(s); math.Abs(got-1.3) > 1e-12 {
			t.Fatalf("rain slot %d: %v", s, got)
		}
	}
	rush := DinnerRush(1.5)
	if got := rush.Multiplier(19); got != 1.5 {
		t.Fatalf("rush dinner slot: %v", got)
	}
	if got := rush.Multiplier(10); got != 1.0 {
		t.Fatalf("rush off-peak slot: %v", got)
	}
	if !(Scenario{}).Zero() || Rain(1.3).Zero() {
		t.Fatal("Zero() misclassifies")
	}
}

func TestParseScenario(t *testing.T) {
	for _, tc := range []struct {
		in      string
		wantErr bool
		slot19  float64
	}{
		{"none", false, 1},
		{"", false, 1},
		{"rain:1.3", false, 1.3},
		{"rush:2", false, 2},
		{"rain:1.5,rush:2", false, 3},
		{"snow:2", true, 0},
		{"rain", true, 0},
		{"rain:zero", true, 0},
		{"rain:-1", true, 0},
		// Casing and whitespace are forgiven.
		{"NONE", false, 1},
		{"  none  ", false, 1},
		{"Rain:1.3", false, 1.3},
		{"RUSH:2", false, 2},
		{" rain:1.5 , Rush:2 ", false, 3},
		{"rain: 1.3", false, 1.3},
		// Malformed combinations are not.
		{"rain:1.3,", true, 0},
		{",rush:2", true, 0},
		{"rain:1.3,,rush:2", true, 0},
		{"rain:1.3;rush:2", true, 0},
		{"rain:", true, 0},
		{":1.3", true, 0},
		{"rain:1.3:2", true, 0},
		{"rain:NaN", true, 0},
		{"rain:+Inf", true, 0},
		{"rush:0", true, 0},
		{"fog:1.2,rain:1.3", true, 0},
	} {
		sc, err := ParseScenario(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("%q: no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if got := sc.Multiplier(19); math.Abs(got-tc.slot19) > 1e-12 {
			t.Fatalf("%q: slot-19 multiplier %v want %v", tc.in, got, tc.slot19)
		}
	}
}

func TestScenarioApplySlowsTravel(t *testing.T) {
	city := MustPreset("CityA", DefaultScale, 1)
	rainG := Rain(1.4).Apply(city.G)
	tAt := 19.5 * 3600
	from, to := roadnet.NodeID(0), roadnet.NodeID(city.G.NumNodes()-1)
	base := roadnet.ShortestPath(city.G, from, to, tAt)
	wet := roadnet.ShortestPath(rainG, from, to, tAt)
	if !(wet > base) {
		t.Fatalf("rain did not slow travel: %v vs %v", wet, base)
	}
	if ratio := wet / base; math.Abs(ratio-1.4) > 0.05 {
		// Uniform scaling within a slot scales every path by the factor
		// (up to slot-boundary crossings).
		t.Fatalf("rain ratio %v want ~1.4", ratio)
	}
	// Dinner rush leaves the morning untouched.
	rushG := DinnerRush(1.5).Apply(city.G)
	mAt := 10.5 * 3600
	if b, r := roadnet.ShortestPath(city.G, from, to, mAt), roadnet.ShortestPath(rushG, from, to, mAt); b != r {
		t.Fatalf("rush changed the morning: %v vs %v", b, r)
	}
}
