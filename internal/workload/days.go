package workload

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/roadnet"
)

// DayPlan describes one day of a multi-day replay: which scenario perturbs
// the true road network, how demand surges on top of the scenario's own
// coupling, and the seeds that make the day's order stream and fleet roster
// distinct from its neighbours while staying fully deterministic.
type DayPlan struct {
	// Day is the 0-based position in the schedule.
	Day int
	// Scenario perturbs the day's *true* travel times (and, through
	// DemandMultiplier, its order volume).
	Scenario Scenario
	// DemandFactor additionally scales the day's order volume uniformly;
	// 0 (or 1) = no extra scaling beyond the scenario coupling.
	DemandFactor float64
	// OrderSeed / FleetSeed drive the day's order stream and shift plan.
	// Distinct FleetSeeds across days are the churn model: each day a
	// different roster with different shifts and parking spots reports for
	// work, the way real fleets turn over between days.
	OrderSeed, FleetSeed int64
}

// DaySchedule is a deterministic multi-day replay plan over one city — the
// substrate of the paper's 5-day-learn / 1-day-test protocol (Section V-B).
// The last TestDays days are held out for evaluation; the days before them
// are learning days.
type DaySchedule struct {
	City     *City
	Days     []DayPlan
	TestDays int
}

// Learn5Test1 builds the canonical 6-day schedule: learnDays learning days
// (pass 5 for the paper's protocol) plus one held-out test day, every day
// under the same scenario — travel times must be learned from the same
// traffic regime the test day is driven on — with per-day order and fleet
// seeds derived from seed.
func Learn5Test1(c *City, sc Scenario, learnDays int, seed int64) DaySchedule {
	if learnDays < 1 {
		learnDays = 5
	}
	s := DaySchedule{City: c, TestDays: 1}
	for d := 0; d <= learnDays; d++ {
		s.Days = append(s.Days, DayPlan{
			Day:       d,
			Scenario:  sc,
			OrderSeed: seed + int64(d)*1_000_003,
			FleetSeed: seed + int64(d)*7_000_003,
		})
	}
	return s
}

// LearnDays returns the learning-day plans (everything before the held-out
// tail).
func (s DaySchedule) LearnDays() []DayPlan {
	n := len(s.Days) - s.TestDays
	if n < 0 {
		n = 0
	}
	return s.Days[:n]
}

// TestDay returns the first held-out day.
func (s DaySchedule) TestDay() (DayPlan, error) {
	n := len(s.Days) - s.TestDays
	if s.TestDays < 1 || n < 0 || n >= len(s.Days) {
		return DayPlan{}, fmt.Errorf("workload: schedule has no test day (%d days, %d held out)", len(s.Days), s.TestDays)
	}
	return s.Days[n], nil
}

// TrueGraph materialises the day's reality: the city's road network with
// the day's scenario applied. Policies are never shown this graph during
// learning — they discover it through GPS observations.
func (s DaySchedule) TrueGraph(p DayPlan) *roadnet.Graph {
	if p.Scenario.Zero() {
		return s.City.G
	}
	return p.Scenario.Apply(s.City.G)
}

// Orders generates the day's order stream in [from, to): the city's base
// volume scaled per slot by the scenario's demand surge and the plan's
// uniform DemandFactor.
func (s DaySchedule) Orders(p DayPlan, from, to float64) []*model.Order {
	factor := func(slot int) float64 {
		f := p.Scenario.DemandMultiplier(slot)
		if p.DemandFactor > 0 {
			f *= p.DemandFactor
		}
		return f
	}
	return OrderStreamScaled(s.City, p.OrderSeed, from, to, factor)
}

// Fleet synthesises the day's roster from the plan's fleet seed — a fresh
// shift plan per day, which is what makes vehicles churn across days.
func (s DaySchedule) Fleet(p DayPlan, frac float64, maxO int) []*model.Vehicle {
	return s.City.Fleet(frac, maxO, p.FleetSeed)
}
