package workload

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
)

func smallCity(t testing.TB, seed int64) *City {
	t.Helper()
	c, err := Generate(CityParams{
		Name: "test", Rows: 12, Cols: 12, Restaurants: 15, Vehicles: 10,
		OrdersPerDay: 200, PrepMeanMin: 9, Seed: seed,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return c
}

func TestGenerateValidations(t *testing.T) {
	if _, err := Generate(CityParams{Rows: 1, Cols: 5, Restaurants: 1, Vehicles: 1}); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := Generate(CityParams{Rows: 5, Cols: 5, Restaurants: 0, Vehicles: 1}); err == nil {
		t.Fatal("zero restaurants accepted")
	}
}

func TestGeneratedGraphIsStronglyConnected(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := smallCity(t, seed)
		if !roadnet.StronglyConnected(c.G) {
			t.Fatalf("seed %d: graph not strongly connected", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c1 := smallCity(t, 42)
	c2 := smallCity(t, 42)
	if c1.G.NumNodes() != c2.G.NumNodes() || c1.G.NumEdges() != c2.G.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	for i := range c1.Restaurants {
		if c1.Restaurants[i] != c2.Restaurants[i] {
			t.Fatal("same seed, different restaurants")
		}
	}
	o1 := OrderStream(c1, 7)
	o2 := OrderStream(c2, 7)
	if len(o1) != len(o2) {
		t.Fatalf("same seed, different order counts: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i].Restaurant != o2[i].Restaurant || o1[i].PlacedAt != o2[i].PlacedAt {
			t.Fatal("same seed, different orders")
		}
	}
}

func TestOrderStreamProperties(t *testing.T) {
	c := smallCity(t, 3)
	orders := OrderStream(c, 11)
	if len(orders) < 100 || len(orders) > 350 {
		t.Fatalf("order volume %d far from budget 200", len(orders))
	}
	restSet := make(map[roadnet.NodeID]bool)
	for _, r := range c.Restaurants {
		restSet[r] = true
	}
	var last float64 = -1
	ids := make(map[model.OrderID]bool)
	for _, o := range orders {
		if o.PlacedAt < last {
			t.Fatal("orders not sorted by placement time")
		}
		last = o.PlacedAt
		if o.PlacedAt < 0 || o.PlacedAt >= roadnet.SecondsPerDay {
			t.Fatalf("order placed at %v outside the day", o.PlacedAt)
		}
		if !restSet[o.Restaurant] {
			t.Fatalf("order from non-restaurant node %d", o.Restaurant)
		}
		if int(o.Customer) >= c.G.NumNodes() || o.Customer < 0 {
			t.Fatalf("invalid customer node %d", o.Customer)
		}
		if o.Prep < 60 {
			t.Fatalf("prep %v below the one-minute floor", o.Prep)
		}
		if o.Items < 1 || o.Items > 4 {
			t.Fatalf("items %d out of range", o.Items)
		}
		if ids[o.ID] {
			t.Fatalf("duplicate order id %d", o.ID)
		}
		ids[o.ID] = true
	}
}

func TestOrderStreamPeaks(t *testing.T) {
	// Lunch+dinner hours must clearly dominate the small hours.
	c, err := Generate(CityParams{
		Name: "peaky", Rows: 12, Cols: 12, Restaurants: 15, Vehicles: 10,
		OrdersPerDay: 3000, PrepMeanMin: 9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	orders := OrderStream(c, 11)
	h := HourlyCounts(orders)
	peak := h[12] + h[13] + h[19] + h[20]
	night := h[1] + h[2] + h[3] + h[4]
	if peak < 5*night {
		t.Fatalf("peak hours (%d) should dwarf night hours (%d)", peak, night)
	}
}

func TestOrderStreamWindowRestricts(t *testing.T) {
	c := smallCity(t, 9)
	from, to := 12*3600.0, 14*3600.0
	orders := OrderStreamWindow(c, 11, from, to)
	if len(orders) == 0 {
		t.Fatal("lunch window produced no orders")
	}
	for _, o := range orders {
		if o.PlacedAt < from || o.PlacedAt >= to {
			t.Fatalf("order at %v outside window [%v,%v)", o.PlacedAt, from, to)
		}
	}
}

func TestPrepModelAverageMatchesCity(t *testing.T) {
	c := smallCity(t, 13)
	// Off-peak slot 10: average of restaurant means should be near the
	// configured city average (lognormal factor has mean slightly above 1).
	sum := 0.0
	for i := range c.Restaurants {
		sum += c.PrepMeanSec[i][10]
	}
	avgMin := sum / float64(len(c.Restaurants)) / 60
	if avgMin < 0.7*c.Params.PrepMeanMin || avgMin > 1.5*c.Params.PrepMeanMin {
		t.Fatalf("prep mean %v min too far from configured %v", avgMin, c.Params.PrepMeanMin)
	}
}

func TestFleet(t *testing.T) {
	c := smallCity(t, 2)
	full := c.Fleet(1.0, 3, 1)
	if len(full) == 0 || len(full) > c.Params.Vehicles {
		t.Fatalf("full fleet = %d, roster %d", len(full), c.Params.Vehicles)
	}
	half := c.Fleet(0.5, 3, 1)
	if len(half) < len(full)/3 || len(half) > len(full)/2+1 {
		t.Fatalf("half fleet = %d of %d", len(half), len(full))
	}
	ids := make(map[model.VehicleID]bool)
	for _, v := range full {
		if int(v.Node) >= c.G.NumNodes() {
			t.Fatalf("vehicle parked off-network at %d", v.Node)
		}
		if ids[v.ID] {
			t.Fatalf("duplicate vehicle id %d", v.ID)
		}
		ids[v.ID] = true
		if v.ActiveTo <= v.ActiveFrom {
			t.Fatalf("degenerate shift [%v,%v)", v.ActiveFrom, v.ActiveTo)
		}
	}
	again := c.Fleet(1.0, 3, 1)
	for i := range full {
		if full[i].Node != again[i].Node || full[i].ActiveFrom != again[i].ActiveFrom {
			t.Fatal("fleet not deterministic in seed")
		}
	}
}

func TestFleetShiftsTrackDemand(t *testing.T) {
	c := MustPreset("CityB", DefaultScale, 1)
	fleet := c.Fleet(1.0, 3, 1)
	lunch := ActiveAt(fleet, 12.5*3600)
	dinner := ActiveAt(fleet, 20.5*3600)
	night := ActiveAt(fleet, 3.5*3600)
	if lunch <= night || dinner <= night {
		t.Fatalf("supply must track demand: lunch %d dinner %d night %d", lunch, dinner, night)
	}
	// Peak order-to-active-vehicle ratio should approach the city target
	// (within a generous band — integerisation and roster caps intervene).
	orders := OrderStream(c, 2)
	counts := HourlyCounts(orders)
	ratio := float64(counts[20]) / float64(dinner)
	want := c.Params.TargetPeakRatio
	if ratio < want*0.5 || ratio > want*2.0 {
		t.Fatalf("dinner ratio %.2f too far from target %.2f", ratio, want)
	}
}

func TestNearestNodeGrid(t *testing.T) {
	c := smallCity(t, 4)
	for i := 0; i < c.G.NumNodes(); i += 7 {
		pt := c.G.Point(roadnet.NodeID(i))
		got := c.NearestNode(pt)
		// The nearest node to a node's own coordinate is itself (or a
		// coincident node).
		if d := geo.Haversine(pt, c.G.Point(got)); d > 1 {
			t.Fatalf("node %d snapped %f m away", i, d)
		}
	}
	// Compare grid answer to brute force on offset points.
	for i := 0; i < 40; i++ {
		pt := geo.Offset(c.G.Point(0), float64(i)*97, float64(i)*61)
		got := c.NearestNode(pt)
		want := c.G.NearestNode(pt)
		dg := geo.Haversine(pt, c.G.Point(got))
		dw := geo.Haversine(pt, c.G.Point(want))
		if dg > dw+1 {
			t.Fatalf("grid nearest %f m vs brute %f m", dg, dw)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range CityNames() {
		c, err := Preset(name, DefaultScale, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.G.NumNodes() < 100 {
			t.Fatalf("%s: only %d nodes", name, c.G.NumNodes())
		}
		if !roadnet.StronglyConnected(c.G) {
			t.Fatalf("%s: not strongly connected", name)
		}
		if len(c.Restaurants) < 5 || c.Params.Vehicles < 3 {
			t.Fatalf("%s: degenerate scale", name)
		}
	}
	if _, err := Preset("Atlantis", 1, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetRelativeScale(t *testing.T) {
	a := MustPreset("CityA", DefaultScale, 1)
	b := MustPreset("CityB", DefaultScale, 1)
	cc := MustPreset("CityC", DefaultScale, 1)
	// Table II orderings that the experiments rely on.
	if !(b.Params.OrdersPerDay > cc.Params.OrdersPerDay && cc.Params.OrdersPerDay > a.Params.OrdersPerDay) {
		t.Fatal("order volumes must follow B > C > A")
	}
	if !(b.Params.Vehicles > cc.Params.Vehicles && cc.Params.Vehicles > a.Params.Vehicles) {
		t.Fatal("fleet sizes must follow B > C > A")
	}
	if !(cc.Params.Restaurants > b.Params.Restaurants) {
		t.Fatal("City C must have the most restaurants")
	}
	// Order-to-vehicle ratio is highest in City B (Fig. 6(a)).
	ra := float64(a.Params.OrdersPerDay) / float64(a.Params.Vehicles)
	rb := float64(b.Params.OrdersPerDay) / float64(b.Params.Vehicles)
	rc := float64(cc.Params.OrdersPerDay) / float64(cc.Params.Vehicles)
	if !(rb > rc && rb > ra) {
		t.Fatalf("City B ratio %v must exceed A %v and C %v", rb, ra, rc)
	}
}

func TestOrderVehicleRatioPeaks(t *testing.T) {
	c := MustPreset("CityB", DefaultScale, 1)
	orders := OrderStream(c, 2)
	r := OrderVehicleRatio(c, orders)
	if r[20] <= r[3] {
		t.Fatalf("dinner ratio %v should exceed 3 AM ratio %v", r[20], r[3])
	}
}

func TestPoissonMoments(t *testing.T) {
	c := smallCity(t, 1)
	_ = c
	rngSeeds := []int64{1, 2, 3}
	for _, s := range rngSeeds {
		rng := newRand(s)
		const lambda = 12.0
		n := 4000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.5 {
			t.Fatalf("poisson mean %v, want ~%v", mean, lambda)
		}
	}
	rng := newRand(1)
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
	if v := poisson(rng, 100); v < 50 || v > 150 {
		t.Fatalf("poisson(100) = %d implausible", v)
	}
}
