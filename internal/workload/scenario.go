package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/roadnet"
)

// Scenario perturbs a city's *true* travel-time profile — the live-traffic
// conditions the decision plane has to discover through GPS learning
// rather than being told. Applying a scenario produces a new road network
// (the "reality" graph the simulator moves vehicles on / the engine is
// built over), while policies keep planning on the unperturbed graph until
// the speed learner closes the gap.
type Scenario struct {
	Name string
	// RainMultiplier scales every slot's congestion multiplier uniformly;
	// 1 (or 0) = dry. Light rain ≈ 1.15, a proper downpour ≈ 1.4+.
	RainMultiplier float64
	// RushFactor additionally scales the slots in [RushFromHour,
	// RushToHour); 1 (or 0) = no extra rush.
	RushFactor               float64
	RushFromHour, RushToHour int
}

// Rain returns a uniform all-day slowdown scenario.
func Rain(mult float64) Scenario {
	return Scenario{Name: fmt.Sprintf("rain:%g", mult), RainMultiplier: mult}
}

// DinnerRush returns a scenario slowing the dinner window (18:00–22:00) by
// the given factor — the Fig. 6(a) peak turned up past what the preset's
// congestion zones already encode.
func DinnerRush(factor float64) Scenario {
	return Scenario{
		Name:       fmt.Sprintf("rush:%g", factor),
		RushFactor: factor, RushFromHour: 18, RushToHour: 22,
	}
}

// Multiplier returns the scenario's combined slot scale factor.
func (sc Scenario) Multiplier(slot int) float64 {
	m := 1.0
	if sc.RainMultiplier > 0 {
		m *= sc.RainMultiplier
	}
	if sc.RushFactor > 0 && slot >= sc.RushFromHour && slot < sc.RushToHour {
		m *= sc.RushFactor
	}
	return m
}

// Demand-coupling strengths: how much of a scenario's slowdown shows up as
// extra order volume. Rain keeps people home and ordering in (a broad surge
// across every slot); a rush hour concentrates extra dinner demand into the
// rush window itself.
const (
	rainDemandCoupling = 0.4
	rushDemandCoupling = 0.5
)

// DemandMultiplier returns the order-rate surge factor the scenario implies
// for a slot — the demand side of the same weather/rush event that slows the
// roads. Always ≥ 1, and exactly 1 for a Zero scenario or outside the rush
// window of a rush-only scenario.
func (sc Scenario) DemandMultiplier(slot int) float64 {
	m := 1.0
	if sc.RainMultiplier > 1 {
		m *= 1 + rainDemandCoupling*(sc.RainMultiplier-1)
	}
	if sc.RushFactor > 1 && slot >= sc.RushFromHour && slot < sc.RushToHour {
		m *= 1 + rushDemandCoupling*(sc.RushFactor-1)
	}
	return m
}

// Apply materialises the scenario over a road network: a new graph sharing
// g's edges whose congestion rows are scaled per slot.
func (sc Scenario) Apply(g *roadnet.Graph) *roadnet.Graph {
	return g.ScaleSlotMultipliers(sc.Multiplier)
}

// Zero reports whether the scenario leaves the graph untouched.
func (sc Scenario) Zero() bool {
	return (sc.RainMultiplier == 0 || sc.RainMultiplier == 1) &&
		(sc.RushFactor == 0 || sc.RushFactor == 1)
}

// ParseScenario parses the CLI scenario syntax: "none", "rain:<mult>",
// "rush:<factor>", or a comma-joined combination ("rain:1.3,rush:1.5").
// Kinds are case-insensitive and whitespace around parts is ignored.
func ParseScenario(s string) (Scenario, error) {
	sc := Scenario{Name: s}
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "none") {
		sc.Name = "none"
		return sc, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return sc, fmt.Errorf("workload: scenario %q: empty part", s)
		}
		kind, arg, ok := strings.Cut(part, ":")
		if !ok {
			return sc, fmt.Errorf("workload: scenario %q: want kind:value", part)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
		if err != nil || math.IsNaN(val) || math.IsInf(val, 0) || val <= 0 {
			return sc, fmt.Errorf("workload: scenario %q: bad factor %q", part, arg)
		}
		switch strings.ToLower(strings.TrimSpace(kind)) {
		case "rain":
			sc.RainMultiplier = val
		case "rush":
			sc.RushFactor = val
			sc.RushFromHour, sc.RushToHour = 18, 22
		default:
			return sc, fmt.Errorf("workload: unknown scenario kind %q (want rain|rush)", kind)
		}
	}
	return sc, nil
}
