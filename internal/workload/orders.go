package workload

import (
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
)

// OrderStream generates one day (86 400 s) of orders for the city: a
// non-homogeneous Poisson process whose hourly intensity follows the city's
// Fig. 6(a)-style profile, restaurants drawn by popularity, customers drawn
// Gaussian around their restaurant, prep times from the restaurant's
// per-slot Gaussian (floored at one minute), and 1–4 items per order.
//
// The stream is deterministic in (city seed, stream seed) and sorted by
// placement time.
func OrderStream(c *City, seed int64) []*model.Order {
	return OrderStreamWindow(c, seed, 0, roadnet.SecondsPerDay)
}

// OrderStreamWindow restricts generation to placement times in [from, to).
// The full-day volume is budgeted first so a window carries exactly the
// load the city would see at that time of day.
func OrderStreamWindow(c *City, seed int64, from, to float64) []*model.Order {
	return OrderStreamScaled(c, seed, from, to, nil)
}

// OrderStreamScaled is OrderStreamWindow with a per-slot demand scale: the
// hourly Poisson intensity is multiplied by slotFactor(hour) (nil = 1
// everywhere — exactly OrderStreamWindow's stream, draw for draw). This is
// the demand half of a scenario: a rainy day both slows the roads
// (Scenario.Apply) and surges orders (Scenario.DemandMultiplier fed here).
// Non-finite or non-positive factors are treated as 1.
func OrderStreamScaled(c *City, seed int64, from, to float64, slotFactor func(slot int) float64) []*model.Order {
	rng := rand.New(rand.NewSource(seed ^ 0x0bde5))
	var orders []*model.Order
	var id model.OrderID
	for hour := 0; hour < 24; hour++ {
		// Expected orders this hour; Poisson-jittered around the budget.
		lambda := c.Hourly[hour] * float64(c.Params.OrdersPerDay)
		if slotFactor != nil {
			if f := slotFactor(hour); f > 0 && !math.IsInf(f, 1) && !math.IsNaN(f) {
				lambda *= f
			}
		}
		count := poisson(rng, lambda)
		for i := 0; i < count; i++ {
			t := (float64(hour) + rng.Float64()) * 3600
			if t < from || t >= to {
				continue
			}
			id++
			orders = append(orders, c.NewOrder(rng, id, t))
		}
	}
	sortOrders(orders)
	return orders
}

// NewOrder draws a single order placed at time t.
func (c *City) NewOrder(rng *rand.Rand, id model.OrderID, t float64) *model.Order {
	ri := c.sampleRestaurant(rng)
	rest := c.Restaurants[ri]
	restPt := c.G.Point(rest)

	// Customer: Gaussian spread around the restaurant, snapped to the
	// network, re-drawn if it collapses onto the restaurant itself.
	var cust roadnet.NodeID
	for tries := 0; ; tries++ {
		pt := geo.Offset(restPt,
			rng.NormFloat64()*c.Params.CustomerSpreadM,
			rng.NormFloat64()*c.Params.CustomerSpreadM)
		cust = c.NearestNode(pt)
		if cust != rest || tries >= 4 {
			break
		}
	}

	slot := roadnet.Slot(t)
	prep := c.PrepMeanSec[ri][slot] + rng.NormFloat64()*c.PrepStdSec[ri][slot]
	if prep < 60 {
		prep = 60
	}

	items := 1 + rng.Intn(4)
	return &model.Order{
		ID:         id,
		Restaurant: rest,
		Customer:   cust,
		PlacedAt:   t,
		Items:      items,
		Prep:       prep,
		AssignedTo: -1,
	}
}

// poisson draws a Poisson variate (Knuth for small λ, normal approximation
// above 30 to stay O(1)).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func sortOrders(orders []*model.Order) {
	// Insertion-friendly: orders are near-sorted (hour by hour).
	for i := 1; i < len(orders); i++ {
		for j := i; j > 0 && orders[j].PlacedAt < orders[j-1].PlacedAt; j-- {
			orders[j], orders[j-1] = orders[j-1], orders[j]
		}
	}
}

// HourlyCounts histograms an order stream by hour of placement — the
// Fig. 6(a) numerator.
func HourlyCounts(orders []*model.Order) [24]int {
	var h [24]int
	for _, o := range orders {
		h[roadnet.Slot(o.PlacedAt)]++
	}
	return h
}

// OrderVehicleRatio computes Fig. 6(a)'s per-slot #orders/#vehicles with the
// full configured fleet.
func OrderVehicleRatio(c *City, orders []*model.Order) [24]float64 {
	counts := HourlyCounts(orders)
	var r [24]float64
	for s := range r {
		r[s] = float64(counts[s]) / float64(c.Params.Vehicles)
	}
	return r
}

// newRand is a test seam for deterministic random sources.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
