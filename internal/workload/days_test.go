package workload

import (
	"testing"
)

func TestLearn5Test1Schedule(t *testing.T) {
	city := MustPreset("CityA", DefaultScale, 1)
	sched := Learn5Test1(city, Rain(1.5), 5, 7)
	if len(sched.Days) != 6 {
		t.Fatalf("want 6 days, got %d", len(sched.Days))
	}
	if got := len(sched.LearnDays()); got != 5 {
		t.Fatalf("want 5 learn days, got %d", got)
	}
	test, err := sched.TestDay()
	if err != nil {
		t.Fatal(err)
	}
	if test.Day != 5 {
		t.Fatalf("test day index %d, want 5", test.Day)
	}
	seenOrder := map[int64]bool{}
	seenFleet := map[int64]bool{}
	for _, p := range sched.Days {
		if seenOrder[p.OrderSeed] || seenFleet[p.FleetSeed] {
			t.Fatalf("day %d reuses a seed (order=%d fleet=%d)", p.Day, p.OrderSeed, p.FleetSeed)
		}
		seenOrder[p.OrderSeed] = true
		seenFleet[p.FleetSeed] = true
	}
	if _, err := (DaySchedule{City: city}).TestDay(); err == nil {
		t.Fatal("empty schedule should have no test day")
	}
}

// TestDayScheduleChurnAndDeterminism pins the churn model: distinct days
// field different rosters and different order streams, while the same plan
// regenerates identically.
func TestDayScheduleChurnAndDeterminism(t *testing.T) {
	city := MustPreset("CityA", DefaultScale, 1)
	sched := Learn5Test1(city, DinnerRush(1.5), 2, 42)
	d0, d1 := sched.Days[0], sched.Days[1]

	f0 := sched.Fleet(d0, 1.0, 3)
	f1 := sched.Fleet(d1, 1.0, 3)
	churned := len(f0) != len(f1)
	for i := 0; !churned && i < len(f0) && i < len(f1); i++ {
		if f0[i].Node != f1[i].Node || f0[i].ActiveFrom != f1[i].ActiveFrom {
			churned = true
		}
	}
	if !churned {
		t.Fatal("consecutive days produced identical rosters — no churn")
	}

	o0 := sched.Orders(d0, 18*3600, 20*3600)
	o0b := sched.Orders(d0, 18*3600, 20*3600)
	if len(o0) == 0 || len(o0) != len(o0b) {
		t.Fatalf("day-0 stream not deterministic: %d vs %d orders", len(o0), len(o0b))
	}
	for i := range o0 {
		if o0[i].PlacedAt != o0b[i].PlacedAt || o0[i].Restaurant != o0b[i].Restaurant {
			t.Fatalf("day-0 stream diverges at order %d", i)
		}
	}
	o1 := sched.Orders(d1, 18*3600, 20*3600)
	same := len(o0) == len(o1)
	for i := 0; same && i < len(o0); i++ {
		same = o0[i].PlacedAt == o1[i].PlacedAt
	}
	if same {
		t.Fatal("consecutive days produced identical order streams")
	}
}

// TestScenarioDemandSurge pins the scenario-coupled surge invariants: a
// rush scenario surges only its window, rain surges every slot, and the
// surged stream carries measurably more orders than the base stream.
func TestScenarioDemandSurge(t *testing.T) {
	rush := DinnerRush(1.8)
	for s := 0; s < 24; s++ {
		m := rush.DemandMultiplier(s)
		inWindow := s >= rush.RushFromHour && s < rush.RushToHour
		if inWindow && m <= 1 {
			t.Fatalf("rush slot %d: demand multiplier %v, want > 1", s, m)
		}
		if !inWindow && m != 1 {
			t.Fatalf("off-rush slot %d: demand multiplier %v, want 1", s, m)
		}
	}
	rain := Rain(1.5)
	for s := 0; s < 24; s++ {
		if m := rain.DemandMultiplier(s); m <= 1 {
			t.Fatalf("rain slot %d: demand multiplier %v, want > 1", s, m)
		}
	}
	if m := (Scenario{}).DemandMultiplier(12); m != 1 {
		t.Fatalf("zero scenario demand multiplier %v, want 1", m)
	}
	// Stronger scenarios surge harder.
	if Rain(1.8).DemandMultiplier(12) <= Rain(1.2).DemandMultiplier(12) {
		t.Fatal("rain demand surge not monotone in the multiplier")
	}

	city := MustPreset("CityA", DefaultScale, 1)
	base := OrderStreamWindow(city, 3, 18*3600, 22*3600)
	surged := OrderStreamScaled(city, 3, 18*3600, 22*3600, Rain(2.0).DemandMultiplier)
	if len(surged) <= len(base) {
		t.Fatalf("rain 2.0 stream has %d orders vs %d base — no surge", len(surged), len(base))
	}
	// nil factor must reproduce OrderStreamWindow draw for draw.
	plain := OrderStreamScaled(city, 3, 18*3600, 22*3600, nil)
	if len(plain) != len(base) {
		t.Fatalf("nil-factor stream %d orders vs %d", len(plain), len(base))
	}
	for i := range base {
		if base[i].PlacedAt != plain[i].PlacedAt || base[i].Customer != plain[i].Customer {
			t.Fatalf("nil-factor stream diverges at %d", i)
		}
	}
}
