// Package routing computes quickest route plans (Definition 3) and the cost
// semantics built on them: expected delivery time (Definition 5), shortest
// delivery time (Definition 6), extra delivery time (Definition 7), the
// aggregate Cost(v, O) of Eq. 4 and the marginal cost of Eq. 3 / Eq. 7.
//
// Because MAXO is small (3 for Swiggy), the number of feasible stop
// sequences is tiny and the paper's "try all permutations" strategy is
// exact and cheap; we add branch-and-bound pruning on the partial cost for
// good measure.
package routing

import (
	"math"

	"repro/internal/model"
	"repro/internal/roadnet"
)

// SDT computes the shortest delivery time oᵖ + SP(oʳ,oᶜ,oᵗ) (Definition 6).
func SDT(sp roadnet.SPFunc, o *model.Order) float64 {
	return o.Prep + sp(o.Restaurant, o.Customer, o.PlacedAt)
}

// Evaluate simulates a route plan stop by stop, starting at `start` at time
// `startTime`, and returns the total extra delivery time of every order
// dropped off by the plan (Eq. 4 over the plan's orders).
//
// Semantics, matching Definitions 5–7: travel between consecutive stops
// takes SP(·,·,departure time); arriving at a restaurant before the food is
// ready (o.ReadyAt) blocks the vehicle until it is — that idle span is
// exactly the driver waiting time of the WT metric; the delivery time of an
// order is its dropoff clock time minus its placement time, and XDT
// subtracts the precomputed SDT.
//
// The second return value is false when any leg is unreachable (+Inf).
func Evaluate(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, plan *model.RoutePlan) (float64, bool) {
	cost, _, ok := evaluate(sp, start, startTime, plan.Stops)
	return cost, ok
}

// EvaluateDetailed is Evaluate plus the per-order delivery instants and the
// total waiting time incurred at restaurants, used by tests and by the
// batching layer's diagnostics.
func EvaluateDetailed(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, plan *model.RoutePlan) (cost, waitSec float64, dropTimes map[model.OrderID]float64, ok bool) {
	dropTimes = make(map[model.OrderID]float64, len(plan.Stops)/2)
	t := startTime
	node := start
	for _, s := range plan.Stops {
		leg := sp(node, s.Node, t)
		if math.IsInf(leg, 1) {
			return 0, 0, nil, false
		}
		t += leg
		node = s.Node
		switch s.Kind {
		case model.Pickup:
			if ready := s.Order.ReadyAt(); t < ready {
				waitSec += ready - t
				t = ready
			}
		case model.Dropoff:
			dropTimes[s.Order.ID] = t
			cost += t - s.Order.PlacedAt - s.Order.SDT
		}
	}
	return cost, waitSec, dropTimes, true
}

func evaluate(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, stops []model.Stop) (cost, endTime float64, ok bool) {
	t := startTime
	node := start
	for _, s := range stops {
		leg := sp(node, s.Node, t)
		if math.IsInf(leg, 1) {
			return 0, 0, false
		}
		t += leg
		node = s.Node
		switch s.Kind {
		case model.Pickup:
			if ready := s.Order.ReadyAt(); t < ready {
				t = ready
			}
		case model.Dropoff:
			cost += t - s.Order.PlacedAt - s.Order.SDT
		}
	}
	return cost, t, true
}

// Optimize finds the quickest (minimum ΣXDT) route plan for a vehicle at
// `start` at `startTime` that drops off every order in `onboard` (already
// picked up — dropoff-only stops) and picks up and drops off every order in
// `toPickup`. Returns the plan and its cost, or ok=false when no feasible
// plan exists (some leg unreachable).
//
// The search enumerates all stop sequences respecting pickup-before-dropoff
// with branch-and-bound pruning: XDT contributions accrue per dropoff and
// are non-decreasing in time, so a partial cost already exceeding the best
// complete plan can be cut.
func Optimize(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, onboard, toPickup []*model.Order) (*model.RoutePlan, float64, bool) {
	n := len(onboard) + len(toPickup)
	if n == 0 {
		return &model.RoutePlan{}, 0, true
	}

	// Minimising ΣXDT = Σ(dropTime − PlacedAt − SDT) is the same as
	// minimising Σ dropTime, because the placement and SDT terms are
	// constants of the order set. Branch-and-bound on the partial
	// Σ dropTime is admissible: dropoff instants are positive and every
	// remaining dropoff happens after the current clock, so
	// partial + remaining·now lower-bounds any completion.
	type searchState struct {
		node    roadnet.NodeID
		t       float64
		dropSum float64
	}
	best := math.Inf(1) // best complete Σ dropTime
	var bestSeq []model.Stop
	seq := make([]model.Stop, 0, 2*n)

	droppedOnboard := make([]bool, len(onboard))
	picked := make([]bool, len(toPickup))
	dropped := make([]bool, len(toPickup))
	remaining := n // dropoffs still owed

	var dfs func(st searchState)
	dfs = func(st searchState) {
		if st.dropSum+float64(remaining)*st.t >= best {
			return
		}
		if remaining == 0 {
			best = st.dropSum
			bestSeq = append(bestSeq[:0], seq...)
			return
		}
		tryStop := func(s model.Stop, undo func()) {
			leg := sp(st.node, s.Node, st.t)
			if math.IsInf(leg, 1) {
				undo()
				return
			}
			nt := st.t + leg
			nd := st.dropSum
			if s.Kind == model.Pickup {
				if ready := s.Order.ReadyAt(); nt < ready {
					nt = ready
				}
			} else {
				nd += nt
			}
			seq = append(seq, s)
			dfs(searchState{node: s.Node, t: nt, dropSum: nd})
			seq = seq[:len(seq)-1]
			undo()
		}
		for i, o := range onboard {
			if droppedOnboard[i] {
				continue
			}
			droppedOnboard[i] = true
			remaining--
			tryStop(model.Stop{Node: o.Customer, Order: o, Kind: model.Dropoff}, func() {
				droppedOnboard[i] = false
				remaining++
			})
		}
		for i, o := range toPickup {
			if dropped[i] {
				continue
			}
			if !picked[i] {
				picked[i] = true
				tryStop(model.Stop{Node: o.Restaurant, Order: o, Kind: model.Pickup}, func() {
					picked[i] = false
				})
			} else {
				dropped[i] = true
				remaining--
				tryStop(model.Stop{Node: o.Customer, Order: o, Kind: model.Dropoff}, func() {
					dropped[i] = false
					remaining++
				})
			}
		}
	}
	dfs(searchState{node: start, t: startTime})

	if math.IsInf(best, 1) {
		return nil, 0, false
	}
	constTerm := 0.0
	for _, o := range onboard {
		constTerm += o.PlacedAt + o.SDT
	}
	for _, o := range toPickup {
		constTerm += o.PlacedAt + o.SDT
	}
	return &model.RoutePlan{Stops: bestSeq}, best - constTerm, true
}

// Cost computes Cost(v, O) (Eq. 4): the total XDT of the vehicle's order set
// under its quickest route plan, with the vehicle at `start` at `startTime`.
// Returns +Inf when infeasible.
func Cost(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, onboard, toPickup []*model.Order) float64 {
	_, c, ok := Optimize(sp, start, startTime, onboard, toPickup)
	if !ok {
		return math.Inf(1)
	}
	return c
}

// MarginalCost computes mCost(π, v) (Eq. 3 generalised to batches, Eq. 7):
// the increase in total XDT when the orders `add` join a vehicle currently
// at `start` carrying `onboard` (picked up) and `pending` (assigned, not
// picked up). The base cost covers onboard+pending; the extended cost adds
// the batch. Returns the new optimal plan alongside; ok=false when the
// extended set is infeasible.
func MarginalCost(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, onboard, pending, add []*model.Order) (*model.RoutePlan, float64, bool) {
	base := Cost(sp, start, startTime, onboard, pending)
	if math.IsInf(base, 1) {
		// The vehicle's existing workload is already unreachable (should not
		// happen on strongly connected networks); treat extension as
		// infeasible.
		return nil, 0, false
	}
	extended := make([]*model.Order, 0, len(pending)+len(add))
	extended = append(extended, pending...)
	extended = append(extended, add...)
	plan, total, ok := Optimize(sp, start, startTime, onboard, extended)
	if !ok {
		return nil, 0, false
	}
	return plan, total - base, true
}

// EDT computes the expected delivery time of a single order assigned to a
// vehicle at `start` (Definition 5) under the plan returned by Optimize for
// just that order: max(firstMile, prep-remaining) + lastMile, expressed as
// the dropoff instant minus placement time.
func EDT(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, o *model.Order) float64 {
	_, _, drops, ok := EvaluateDetailed(sp, start, startTime, &model.RoutePlan{Stops: []model.Stop{
		{Node: o.Restaurant, Order: o, Kind: model.Pickup},
		{Node: o.Customer, Order: o, Kind: model.Dropoff},
	}})
	if !ok {
		return math.Inf(1)
	}
	return drops[o.ID] - o.PlacedAt
}
