package routing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
)

// paperGraph reproduces Fig. 1 (0-indexed nodes u1..u10 -> 0..9, weights in
// "minutes" treated as seconds for convenience).
func paperGraph(t testing.TB) (*roadnet.Graph, roadnet.SPFunc) {
	b := roadnet.NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode(geo.Point{Lat: float64(i) * 0.01})
	}
	und := func(u, v roadnet.NodeID, w float64) {
		b.AddEdge(u, v, w*500, w, 0)
		b.AddEdge(v, u, w*500, w, 0)
	}
	und(0, 1, 8)
	und(0, 4, 5)
	und(1, 2, 5)
	und(1, 3, 6)
	und(2, 6, 8)
	und(3, 4, 3)
	und(3, 5, 4)
	und(4, 5, 7)
	und(5, 8, 7)
	und(6, 8, 5)
	und(6, 7, 12)
	und(7, 8, 3)
	und(7, 9, 3)
	und(8, 9, 2)
	g := b.MustBuild()
	c := roadnet.NewDistCache(g, math.Inf(1))
	return g, c.AsFunc()
}

// order1 is o1 of the paper: restaurant u2 (1), customer u7 (6), prep 5.
func order1(sp roadnet.SPFunc) *model.Order {
	o := &model.Order{ID: 1, Restaurant: 1, Customer: 6, PlacedAt: 0, Items: 1, Prep: 5}
	o.SDT = SDT(sp, o)
	return o
}

// order2 is o2: restaurant u6 (5), customer u9 (8), prep 5.
func order2(sp roadnet.SPFunc) *model.Order {
	o := &model.Order{ID: 2, Restaurant: 5, Customer: 8, PlacedAt: 0, Items: 1, Prep: 5}
	o.SDT = SDT(sp, o)
	return o
}

// order3 is o3: restaurant u3 (2), customer u8 (7), prep 10.
func order3(sp roadnet.SPFunc) *model.Order {
	o := &model.Order{ID: 3, Restaurant: 2, Customer: 7, PlacedAt: 0, Items: 1, Prep: 10}
	o.SDT = SDT(sp, o)
	return o
}

func TestSDTPaperExample(t *testing.T) {
	_, sp := paperGraph(t)
	o1 := order1(sp)
	// SDT(o1) = prep 5 + SP(u2,u7) = 5 + 13 = 18.
	if o1.SDT != 18 {
		t.Fatalf("SDT(o1) = %v, want 18", o1.SDT)
	}
	o2 := order2(sp)
	// SDT(o2) = 5 + SP(u6,u9)=7 → 12.
	if o2.SDT != 12 {
		t.Fatalf("SDT(o2) = %v, want 12", o2.SDT)
	}
}

func TestEDTExample2(t *testing.T) {
	_, sp := paperGraph(t)
	// Example 2: v1 at u1 assigned o1. EDT = max{8,5} + 13 = 21.
	o1 := order1(sp)
	if got := EDT(sp, 0, 0, o1); got != 21 {
		t.Fatalf("EDT(o1,v1) = %v, want 21", got)
	}
	// v2 at u4 assigned o2: quickest plan u4->u6->u9, EDT = max{4,5}+7 = 12.
	o2 := order2(sp)
	if got := EDT(sp, 3, 0, o2); got != 12 {
		t.Fatalf("EDT(o2,v2) = %v, want 12", got)
	}
}

func TestXDTExample3(t *testing.T) {
	_, sp := paperGraph(t)
	o1, o2 := order1(sp), order2(sp)
	// Example 3: XDT(o1,v1)=3, XDT(o2,v2)=0.
	if got := Cost(sp, 0, 0, nil, []*model.Order{o1}); got != 3 {
		t.Fatalf("Cost(v1,{o1}) = %v, want 3", got)
	}
	if got := Cost(sp, 3, 0, nil, []*model.Order{o2}); got != 0 {
		t.Fatalf("Cost(v2,{o2}) = %v, want 0", got)
	}
}

func TestMarginalCostExample4(t *testing.T) {
	_, sp := paperGraph(t)
	o1 := order1(sp)
	// Example 4: mCost(o1, v1) = 3 with empty vehicle.
	_, mc, ok := MarginalCost(sp, 0, 0, nil, nil, []*model.Order{o1})
	if !ok || mc != 3 {
		t.Fatalf("mCost(o1,v1) = %v (ok=%v), want 3", mc, ok)
	}
}

func TestGreedyExample5Batching(t *testing.T) {
	_, sp := paperGraph(t)
	o1, o3 := order1(sp), order3(sp)
	// Example 5: after assigning o1 to v1 (cost 3), adding o3 to v1 costs
	// another 3 units.
	plan1, _, ok := MarginalCost(sp, 0, 0, nil, nil, []*model.Order{o1})
	if !ok {
		t.Fatal("infeasible o1->v1")
	}
	if err := plan1.Validate(); err != nil {
		t.Fatalf("plan1 invalid: %v", err)
	}
	_, mc3, ok := MarginalCost(sp, 0, 0, nil, []*model.Order{o1}, []*model.Order{o3})
	if !ok {
		t.Fatal("infeasible o3 addition")
	}
	if mc3 != 3 {
		t.Fatalf("mCost(o3, v1 carrying o1) = %v, want 3", mc3)
	}
}

func TestOptimizeEmpty(t *testing.T) {
	_, sp := paperGraph(t)
	plan, cost, ok := Optimize(sp, 0, 0, nil, nil)
	if !ok || cost != 0 || !plan.Empty() {
		t.Fatalf("empty optimize = (%v, %v, %v)", plan, cost, ok)
	}
}

func TestOptimizePlanIsValid(t *testing.T) {
	_, sp := paperGraph(t)
	o1, o2, o3 := order1(sp), order2(sp), order3(sp)
	plan, _, ok := Optimize(sp, 0, 0, nil, []*model.Order{o1, o2, o3})
	if !ok {
		t.Fatal("3-order plan infeasible on connected graph")
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("optimal plan invalid: %v", err)
	}
	if len(plan.Stops) != 6 {
		t.Fatalf("3 orders need 6 stops, got %d", len(plan.Stops))
	}
}

func TestOptimizeWithOnboard(t *testing.T) {
	_, sp := paperGraph(t)
	o1, o2 := order1(sp), order2(sp)
	o1.State = model.OrderPickedUp
	plan, _, ok := Optimize(sp, 0, 0, []*model.Order{o1}, []*model.Order{o2})
	if !ok {
		t.Fatal("infeasible")
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan with onboard order invalid: %v", err)
	}
	if len(plan.Stops) != 3 {
		t.Fatalf("onboard+new should have 3 stops, got %d", len(plan.Stops))
	}
	// o1 must not be picked up again.
	for _, s := range plan.Stops {
		if s.Order.ID == 1 && s.Kind == model.Pickup {
			t.Fatal("onboard order re-picked")
		}
	}
}

// bruteForce enumerates all valid stop sequences without pruning.
func bruteForce(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, onboard, toPickup []*model.Order) float64 {
	var stops []model.Stop
	for _, o := range onboard {
		stops = append(stops, model.Stop{Node: o.Customer, Order: o, Kind: model.Dropoff})
	}
	for _, o := range toPickup {
		stops = append(stops,
			model.Stop{Node: o.Restaurant, Order: o, Kind: model.Pickup},
			model.Stop{Node: o.Customer, Order: o, Kind: model.Dropoff})
	}
	best := math.Inf(1)
	used := make([]bool, len(stops))
	seq := make([]model.Stop, 0, len(stops))
	pickedIdx := func(o *model.Order) int {
		for i, s := range stops {
			if s.Order.ID == o.ID && s.Kind == model.Pickup {
				return i
			}
		}
		return -1
	}
	var rec func()
	rec = func() {
		if len(seq) == len(stops) {
			cost, _, ok := func() (float64, float64, bool) {
				t := startTime
				node := start
				c := 0.0
				for _, s := range seq {
					leg := sp(node, s.Node, t)
					if math.IsInf(leg, 1) {
						return 0, 0, false
					}
					t += leg
					node = s.Node
					if s.Kind == model.Pickup {
						if r := s.Order.ReadyAt(); t < r {
							t = r
						}
					} else {
						c += t - s.Order.PlacedAt - s.Order.SDT
					}
				}
				return c, t, true
			}()
			if ok && cost < best {
				best = cost
			}
			return
		}
		for i, s := range stops {
			if used[i] {
				continue
			}
			if s.Kind == model.Dropoff {
				if pi := pickedIdx(s.Order); pi >= 0 && !used[pi] {
					continue
				}
			}
			used[i] = true
			seq = append(seq, s)
			rec()
			seq = seq[:len(seq)-1]
			used[i] = false
		}
	}
	rec()
	return best
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	g, sp := paperGraph(t)
	rng := rand.New(rand.NewSource(21))
	n := g.NumNodes()
	for trial := 0; trial < 120; trial++ {
		numOrders := 1 + rng.Intn(3)
		numOnboard := rng.Intn(2)
		var onboard, toPickup []*model.Order
		id := model.OrderID(1)
		for i := 0; i < numOnboard; i++ {
			o := &model.Order{
				ID: id, Restaurant: roadnet.NodeID(rng.Intn(n)), Customer: roadnet.NodeID(rng.Intn(n)),
				PlacedAt: float64(rng.Intn(100)), Items: 1, Prep: float64(rng.Intn(20)),
				State: model.OrderPickedUp,
			}
			o.SDT = SDT(sp, o)
			onboard = append(onboard, o)
			id++
		}
		for i := 0; i < numOrders; i++ {
			o := &model.Order{
				ID: id, Restaurant: roadnet.NodeID(rng.Intn(n)), Customer: roadnet.NodeID(rng.Intn(n)),
				PlacedAt: float64(rng.Intn(100)), Items: 1, Prep: float64(rng.Intn(20)),
			}
			o.SDT = SDT(sp, o)
			toPickup = append(toPickup, o)
			id++
		}
		start := roadnet.NodeID(rng.Intn(n))
		startTime := float64(rng.Intn(200))
		_, got, ok := Optimize(sp, start, startTime, onboard, toPickup)
		want := bruteForce(sp, start, startTime, onboard, toPickup)
		if !ok {
			t.Fatalf("trial %d: optimize infeasible, brute force = %v", trial, want)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: optimize = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestMarginalCostNonNegative(t *testing.T) {
	// Adding an order can never decrease total XDT (superset plans include
	// at least the same stops).
	_, sp := paperGraph(t)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 80; trial++ {
		mk := func(id model.OrderID) *model.Order {
			o := &model.Order{
				ID: id, Restaurant: roadnet.NodeID(rng.Intn(10)), Customer: roadnet.NodeID(rng.Intn(10)),
				PlacedAt: 0, Items: 1, Prep: float64(rng.Intn(15)),
			}
			o.SDT = SDT(sp, o)
			return o
		}
		o1, o2 := mk(1), mk(2)
		_, mc, ok := MarginalCost(sp, roadnet.NodeID(rng.Intn(10)), 0, nil, []*model.Order{o1}, []*model.Order{o2})
		if !ok {
			t.Fatalf("trial %d infeasible", trial)
		}
		if mc < -1e-9 {
			t.Fatalf("trial %d: negative marginal cost %v", trial, mc)
		}
	}
}

func TestEvaluateDetailedWaiting(t *testing.T) {
	_, sp := paperGraph(t)
	// v at u1 (0) picking up at u2 (1): travel 8, prep 20 → waits 12.
	o := &model.Order{ID: 1, Restaurant: 1, Customer: 6, PlacedAt: 0, Items: 1, Prep: 20}
	o.SDT = SDT(sp, o)
	plan := &model.RoutePlan{Stops: []model.Stop{
		{Node: 1, Order: o, Kind: model.Pickup},
		{Node: 6, Order: o, Kind: model.Dropoff},
	}}
	cost, wait, drops, ok := EvaluateDetailed(sp, 0, 0, plan)
	if !ok {
		t.Fatal("infeasible")
	}
	if wait != 12 {
		t.Fatalf("wait = %v, want 12", wait)
	}
	if drops[1] != 33 { // ready at 20, drive 13
		t.Fatalf("dropoff at %v, want 33", drops[1])
	}
	if cost != 33-o.SDT {
		t.Fatalf("cost = %v, want %v", cost, 33-o.SDT)
	}
}

func TestEvaluateUnreachable(t *testing.T) {
	b := roadnet.NewBuilder()
	u := b.AddNode(geo.Point{})
	v := b.AddNode(geo.Point{Lat: 1})
	b.AddEdge(u, v, 10, 10, 0)
	g := b.MustBuild()
	c := roadnet.NewDistCache(g, math.Inf(1))
	sp := c.AsFunc()
	o := &model.Order{ID: 1, Restaurant: v, Customer: u, PlacedAt: 0, Items: 1}
	plan := &model.RoutePlan{Stops: []model.Stop{
		{Node: v, Order: o, Kind: model.Pickup},
		{Node: u, Order: o, Kind: model.Dropoff},
	}}
	if _, ok := Evaluate(sp, u, 0, plan); ok {
		t.Fatal("unreachable leg accepted")
	}
	if _, _, ok := Optimize(sp, u, 0, nil, []*model.Order{o}); ok {
		t.Fatal("unreachable optimize accepted")
	}
	if got := Cost(sp, u, 0, nil, []*model.Order{o}); !math.IsInf(got, 1) {
		t.Fatalf("Cost = %v, want +Inf", got)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	_, sp := paperGraph(t)
	o1, o2, o3 := order1(sp), order2(sp), order3(sp)
	p1, c1, _ := Optimize(sp, 0, 0, nil, []*model.Order{o1, o2, o3})
	p2, c2, _ := Optimize(sp, 0, 0, nil, []*model.Order{o1, o2, o3})
	if c1 != c2 || len(p1.Stops) != len(p2.Stops) {
		t.Fatal("Optimize is non-deterministic")
	}
	for i := range p1.Stops {
		if p1.Stops[i] != p2.Stops[i] {
			t.Fatal("Optimize stop sequences differ between runs")
		}
	}
}
