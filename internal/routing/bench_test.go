package routing

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/roadnet"
)

func benchInstance(n int) (roadnet.SPFunc, roadnet.NodeID, []*model.Order) {
	_, sp := heuristicTestGraph()
	rng := rand.New(rand.NewSource(7))
	orders := randomOrders(rng, sp, n, false)
	return sp, roadnet.NodeID(rng.Intn(64)), orders
}

func BenchmarkOptimizeExact2(b *testing.B) { benchmarkExact(b, 2) }
func BenchmarkOptimizeExact3(b *testing.B) { benchmarkExact(b, 3) }
func BenchmarkOptimizeExact4(b *testing.B) { benchmarkExact(b, 4) }

func benchmarkExact(b *testing.B, n int) {
	sp, start, orders := benchInstance(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(sp, start, 0, nil, orders)
	}
}

func BenchmarkHeuristic6(b *testing.B) {
	sp, start, orders := benchInstance(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimizeHeuristic(sp, start, 0, nil, orders)
	}
}

func BenchmarkMarginalCost(b *testing.B) {
	sp, start, orders := benchInstance(3)
	pending := orders[:2]
	add := orders[2:3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MarginalCost(sp, start, 0, nil, pending, add)
	}
}
