package routing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
)

func heuristicTestGraph() (*roadnet.Graph, roadnet.SPFunc) {
	b := roadnet.NewBuilder()
	const n = 8
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Point{Lat: float64(r) * 0.002, Lon: float64(c) * 0.002})
		}
	}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				b.AddEdge(id(r, c), id(r, c+1), 200, 60, 0)
				b.AddEdge(id(r, c+1), id(r, c), 200, 60, 0)
			}
			if r+1 < n {
				b.AddEdge(id(r, c), id(r+1, c), 200, 60, 0)
				b.AddEdge(id(r+1, c), id(r, c), 200, 60, 0)
			}
		}
	}
	g := b.MustBuild()
	return g, roadnet.NewDistCache(g, math.Inf(1)).AsFunc()
}

func randomOrders(rng *rand.Rand, sp roadnet.SPFunc, n int, picked bool) []*model.Order {
	var out []*model.Order
	for i := 0; i < n; i++ {
		o := &model.Order{
			ID:         model.OrderID(i + 1),
			Restaurant: roadnet.NodeID(rng.Intn(64)),
			Customer:   roadnet.NodeID(rng.Intn(64)),
			PlacedAt:   float64(rng.Intn(120)),
			Items:      1,
			Prep:       float64(rng.Intn(400)),
		}
		o.SDT = SDT(sp, o)
		if picked {
			o.State = model.OrderPickedUp
		}
		out = append(out, o)
	}
	return out
}

func TestHeuristicValidAndNearExactSmall(t *testing.T) {
	_, sp := heuristicTestGraph()
	rng := rand.New(rand.NewSource(19))
	worst := 1.0
	for trial := 0; trial < 50; trial++ {
		orders := randomOrders(rng, sp, 1+rng.Intn(3), false)
		start := roadnet.NodeID(rng.Intn(64))
		hp, hc, ok := OptimizeHeuristic(sp, start, 0, nil, orders)
		if !ok {
			t.Fatalf("trial %d: heuristic infeasible", trial)
		}
		if err := hp.Validate(); err != nil {
			t.Fatalf("trial %d: invalid heuristic plan: %v", trial, err)
		}
		_, ec, ok := Optimize(sp, start, 0, nil, orders)
		if !ok {
			t.Fatal("exact infeasible")
		}
		if hc < ec-1e-6 {
			t.Fatalf("trial %d: heuristic %v beat exact %v — exact is broken", trial, hc, ec)
		}
		// Compare via plan *makespans* proxy: allow 25% or 120 s slack.
		if hc > ec+math.Max(0.25*math.Abs(ec), 120) {
			worst = math.Max(worst, (hc+1)/(ec+1))
			t.Logf("trial %d: heuristic %v vs exact %v", trial, hc, ec)
		}
	}
	if worst > 2 {
		t.Fatalf("heuristic strayed %.2fx from exact", worst)
	}
}

func TestHeuristicLargeBatchValid(t *testing.T) {
	_, sp := heuristicTestGraph()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		onboard := randomOrders(rng, sp, rng.Intn(3), true)
		// Re-id to avoid collisions with pickups.
		for i, o := range onboard {
			o.ID = model.OrderID(100 + i)
		}
		orders := randomOrders(rng, sp, 5+rng.Intn(4), false) // beyond ExactLimit
		start := roadnet.NodeID(rng.Intn(64))
		plan, cost, ok := OptimizeHeuristic(sp, start, 0, onboard, orders)
		if !ok {
			t.Fatalf("trial %d: infeasible", trial)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
		if len(plan.Stops) != len(onboard)+2*len(orders) {
			t.Fatalf("trial %d: stop count %d", trial, len(plan.Stops))
		}
		// The reported cost must equal re-evaluation of the plan.
		rc, ok := Evaluate(sp, start, 0, plan)
		if !ok || math.Abs(rc-cost) > 1e-6 {
			t.Fatalf("trial %d: reported cost %v, re-evaluated %v", trial, cost, rc)
		}
	}
}

func TestOptimizeAutoSwitches(t *testing.T) {
	_, sp := heuristicTestGraph()
	rng := rand.New(rand.NewSource(31))
	small := randomOrders(rng, sp, 3, false)
	start := roadnet.NodeID(10)
	_, autoCost, ok := OptimizeAuto(sp, start, 0, nil, small)
	if !ok {
		t.Fatal("auto infeasible on small instance")
	}
	_, exactCost, _ := Optimize(sp, start, 0, nil, small)
	if autoCost != exactCost {
		t.Fatalf("auto (small) = %v, exact = %v — must use exact path", autoCost, exactCost)
	}

	big := randomOrders(rng, sp, 7, false)
	plan, _, ok := OptimizeAuto(sp, start, 0, nil, big)
	if !ok {
		t.Fatal("auto infeasible on large instance")
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("auto large plan invalid: %v", err)
	}
}

func TestHeuristicUnreachable(t *testing.T) {
	b := roadnet.NewBuilder()
	u := b.AddNode(geo.Point{})
	v := b.AddNode(geo.Point{Lat: 1})
	b.AddEdge(u, v, 10, 10, 0)
	g := b.MustBuild()
	sp := roadnet.NewDistCache(g, math.Inf(1)).AsFunc()
	o := &model.Order{ID: 1, Restaurant: v, Customer: u, PlacedAt: 0, Items: 1}
	if _, _, ok := OptimizeHeuristic(sp, u, 0, nil, []*model.Order{o}); ok {
		t.Fatal("unreachable instance accepted")
	}
	ob := &model.Order{ID: 2, Restaurant: u, Customer: u, PlacedAt: 0, Items: 1, State: model.OrderPickedUp}
	ob.Customer = v
	ob2 := &model.Order{ID: 3, Restaurant: v, Customer: u, PlacedAt: 0, Items: 1, State: model.OrderPickedUp}
	if _, _, ok := OptimizeHeuristic(sp, v, 0, []*model.Order{ob, ob2}, nil); ok {
		t.Fatal("unreachable onboard dropoff accepted")
	}
}
