package routing

import (
	"math"

	"repro/internal/model"
	"repro/internal/roadnet"
)

// ExactLimit is the largest total order count for which OptimizeAuto uses
// exhaustive branch-and-bound; beyond it the number of precedence-feasible
// stop sequences ((2m)!/2^m) makes enumeration impractical and the
// insertion heuristic takes over. The paper caps MAXO at 3, where
// enumeration is trivially cheap; supporting larger batches is listed as
// the "batch size 3 or more" extension its clustering enables.
const ExactLimit = 4

// OptimizeAuto picks the exact planner for small instances and the
// cheapest-insertion heuristic (with or-opt improvement) for large ones.
// The returned plan always satisfies the precedence invariant.
func OptimizeAuto(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, onboard, toPickup []*model.Order) (*model.RoutePlan, float64, bool) {
	if len(onboard)+len(toPickup) <= ExactLimit {
		return Optimize(sp, start, startTime, onboard, toPickup)
	}
	return OptimizeHeuristic(sp, start, startTime, onboard, toPickup)
}

// OptimizeHeuristic builds a route plan by cheapest insertion — orders are
// inserted one by one, each at the (pickup, dropoff) position pair that
// minimises the plan's ΣXDT — followed by a pairwise or-opt improvement
// pass that relocates single stops while preserving precedence. Quality is
// typically within a few percent of exact on MAXO≤4 instances (asserted
// under test) and the cost is polynomial, O(m³) plan evaluations.
func OptimizeHeuristic(sp roadnet.SPFunc, start roadnet.NodeID, startTime float64, onboard, toPickup []*model.Order) (*model.RoutePlan, float64, bool) {
	stops := make([]model.Stop, 0, len(onboard)+2*len(toPickup))
	// Seed with onboard dropoffs in nearest-neighbour order.
	remaining := append([]*model.Order{}, onboard...)
	node := start
	t := startTime
	for len(remaining) > 0 {
		bi, bd := -1, math.Inf(1)
		for i, o := range remaining {
			if d := sp(node, o.Customer, t); d < bd {
				bd = d
				bi = i
			}
		}
		if bi < 0 || math.IsInf(bd, 1) {
			return nil, 0, false
		}
		o := remaining[bi]
		stops = append(stops, model.Stop{Node: o.Customer, Order: o, Kind: model.Dropoff})
		node = o.Customer
		t += bd
		remaining = append(remaining[:bi], remaining[bi+1:]...)
	}

	evalStops := func(ss []model.Stop) (float64, bool) {
		cost, _, ok := evaluate(sp, start, startTime, ss)
		return cost, ok
	}

	// Cheapest insertion of each new order's pickup+dropoff pair.
	for _, o := range toPickup {
		bestCost := math.Inf(1)
		var best []model.Stop
		for pi := 0; pi <= len(stops); pi++ {
			for di := pi; di <= len(stops); di++ {
				cand := make([]model.Stop, 0, len(stops)+2)
				cand = append(cand, stops[:pi]...)
				cand = append(cand, model.Stop{Node: o.Restaurant, Order: o, Kind: model.Pickup})
				cand = append(cand, stops[pi:di]...)
				cand = append(cand, model.Stop{Node: o.Customer, Order: o, Kind: model.Dropoff})
				cand = append(cand, stops[di:]...)
				if c, ok := evalStops(cand); ok && c < bestCost {
					bestCost = c
					best = cand
				}
			}
		}
		if best == nil {
			return nil, 0, false
		}
		stops = best
	}

	// Or-opt: relocate single stops to better positions until no move
	// improves. Precedence is preserved by bounding the target range.
	cost, ok := evalStops(stops)
	if !ok {
		return nil, 0, false
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(stops); i++ {
			lo, hi := 0, len(stops)-1
			s := stops[i]
			// A pickup may not move past its dropoff; a dropoff not before
			// its pickup.
			for j, other := range stops {
				if other.Order.ID != s.Order.ID || j == i {
					continue
				}
				if s.Kind == model.Pickup {
					hi = min(hi, j-1)
				} else if other.Kind == model.Pickup {
					lo = max(lo, j+1)
				}
			}
			for pos := lo; pos <= hi; pos++ {
				if pos == i {
					continue
				}
				cand := relocate(stops, i, pos)
				if c, ok := evalStops(cand); ok && c < cost-1e-9 {
					stops = cand
					cost = c
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
	}
	return &model.RoutePlan{Stops: stops}, cost, true
}

// relocate moves stops[i] to index pos, shifting the rest.
func relocate(stops []model.Stop, i, pos int) []model.Stop {
	out := make([]model.Stop, 0, len(stops))
	s := stops[i]
	rest := append(append([]model.Stop{}, stops[:i]...), stops[i+1:]...)
	out = append(out, rest[:pos]...)
	out = append(out, s)
	out = append(out, rest[pos:]...)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
