package policy

import (
	"context"
	"math"
	"testing"

	"repro/internal/foodgraph"
	"repro/internal/geo"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// gridCity builds an n×n grid, w seconds per hop.
func gridCity(n int, w float64) (*roadnet.Graph, roadnet.SPFunc) {
	b := roadnet.NewBuilder()
	origin := geo.Point{Lat: 12.9, Lon: 77.5}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*250, float64(c)*250))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				b.AddEdge(id(r, c), id(r, c+1), 250, w, 0)
				b.AddEdge(id(r, c+1), id(r, c), 250, w, 0)
			}
			if r+1 < n {
				b.AddEdge(id(r, c), id(r+1, c), 250, w, 0)
				b.AddEdge(id(r+1, c), id(r, c), 250, w, 0)
			}
		}
	}
	g := b.MustBuild()
	return g, roadnet.NewDistCache(g, math.Inf(1)).AsFunc()
}

func mkOrder(sp roadnet.SPFunc, id model.OrderID, r, c roadnet.NodeID, prep float64) *model.Order {
	o := &model.Order{ID: id, Restaurant: r, Customer: c, PlacedAt: 0, Items: 1, Prep: prep, AssignedTo: -1}
	o.SDT = routing.SDT(sp, o)
	return o
}

func vehicleAt(id model.VehicleID, node roadnet.NodeID) *foodgraph.VehicleState {
	return &foodgraph.VehicleState{
		Vehicle: model.NewVehicle(id, node, 3),
		Node:    node,
		Dest:    roadnet.Invalid,
	}
}

func windowInput(g *roadnet.Graph, sp roadnet.SPFunc, orders []*model.Order, vehicles []*foodgraph.VehicleState) *WindowInput {
	return &WindowInput{G: g, Router: sp, Now: 0, Orders: orders, Vehicles: vehicles, Cfg: model.DefaultConfig()}
}

// checkAssignments validates the structural sanity of a policy's output.
func checkAssignments(t *testing.T, in *WindowInput, asg []Assignment) {
	t.Helper()
	seenOrder := make(map[model.OrderID]bool)
	seenVehicle := make(map[model.VehicleID]bool)
	for _, a := range asg {
		if seenVehicle[a.Vehicle.ID] {
			t.Fatalf("vehicle %d assigned twice in one window", a.Vehicle.ID)
		}
		seenVehicle[a.Vehicle.ID] = true
		if len(a.Orders) == 0 {
			t.Fatal("assignment with no orders")
		}
		for _, o := range a.Orders {
			if seenOrder[o.ID] {
				t.Fatalf("order %d assigned twice", o.ID)
			}
			seenOrder[o.ID] = true
		}
		if a.Plan.Empty() {
			t.Fatal("assignment with empty plan")
		}
		if err := a.Plan.Validate(); err != nil {
			t.Fatalf("invalid plan: %v", err)
		}
		// The plan must cover every newly assigned order.
		covered := make(map[model.OrderID]bool)
		for _, s := range a.Plan.Stops {
			covered[s.Order.ID] = true
		}
		for _, o := range a.Orders {
			if !covered[o.ID] {
				t.Fatalf("plan does not cover assigned order %d", o.ID)
			}
		}
	}
}

func TestFoodMatchAssignsAll(t *testing.T) {
	g, sp := gridCity(8, 30)
	orders := []*model.Order{
		mkOrder(sp, 1, 10, 50, 300),
		mkOrder(sp, 2, 11, 51, 300),
		mkOrder(sp, 3, 40, 20, 300),
	}
	vehicles := []*foodgraph.VehicleState{vehicleAt(1, 0), vehicleAt(2, 63), vehicleAt(3, 32)}
	in := windowInput(g, sp, orders, vehicles)
	asg := NewFoodMatch().Assign(context.Background(), in)
	checkAssignments(t, in, asg)
	total := 0
	for _, a := range asg {
		total += len(a.Orders)
	}
	if total != 3 {
		t.Fatalf("assigned %d of 3 orders", total)
	}
}

func TestFoodMatchEmptyInputs(t *testing.T) {
	g, sp := gridCity(4, 30)
	p := NewFoodMatch()
	if asg := p.Assign(context.Background(), windowInput(g, sp, nil, []*foodgraph.VehicleState{vehicleAt(1, 0)})); asg != nil {
		t.Fatal("no orders must yield no assignments")
	}
	o := mkOrder(sp, 1, 1, 2, 60)
	if asg := p.Assign(context.Background(), windowInput(g, sp, []*model.Order{o}, nil)); asg != nil {
		t.Fatal("no vehicles must yield no assignments")
	}
}

func TestFoodMatchBeatsGreedyOnCraftedInstance(t *testing.T) {
	// Classic greedy trap: two orders, two vehicles. Greedy gives the
	// shared best vehicle to the wrong order.
	g, sp := gridCity(10, 60)
	// Order A: restaurant at node 5, instant prep — cares a lot about
	// first mile. Order B: restaurant at node 9, long prep — tolerant.
	oa := mkOrder(sp, 1, 5, 25, 0)
	ob := mkOrder(sp, 2, 9, 29, 900)
	// Vehicle 1 at node 4 (next to both-ish), vehicle 2 at node 0 (far).
	v1 := vehicleAt(1, 4)
	v2 := vehicleAt(2, 0)
	in := windowInput(g, sp, []*model.Order{oa, ob}, []*foodgraph.VehicleState{v1, v2})

	costOf := func(asg []Assignment) float64 {
		total := 0.0
		for _, a := range asg {
			c, ok := routing.Evaluate(sp, a.Vehicle.Node, 0, a.Plan)
			if !ok {
				t.Fatal("infeasible plan")
			}
			total += c
		}
		return total
	}
	gw := costOf(NewGreedy().Assign(context.Background(), in))
	fm := costOf(NewFoodMatch().Assign(context.Background(), in))
	if fm > gw+1e-9 {
		t.Fatalf("FoodMatch total XDT %v exceeds Greedy %v", fm, gw)
	}
}

func TestGreedyImplicitBatching(t *testing.T) {
	// One vehicle, two cheap same-area orders: greedy stacks both on it
	// across iterations (Example 5 behaviour).
	g, sp := gridCity(8, 30)
	o1 := mkOrder(sp, 1, 10, 11, 600)
	o2 := mkOrder(sp, 2, 10, 12, 600)
	v := vehicleAt(1, 2)
	in := windowInput(g, sp, []*model.Order{o1, o2}, []*foodgraph.VehicleState{v})
	asg := NewGreedy().Assign(context.Background(), in)
	checkAssignments(t, in, asg)
	if len(asg) != 1 || len(asg[0].Orders) != 2 {
		t.Fatalf("greedy should stack both orders on the single vehicle: %+v", asg)
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	g, sp := gridCity(8, 30)
	var orders []*model.Order
	for i := 0; i < 6; i++ {
		orders = append(orders, mkOrder(sp, model.OrderID(i+1), 10, roadnet.NodeID(11+i), 600))
	}
	v := vehicleAt(1, 2)
	in := windowInput(g, sp, orders, []*foodgraph.VehicleState{v})
	asg := NewGreedy().Assign(context.Background(), in)
	checkAssignments(t, in, asg)
	if len(asg) == 1 && len(asg[0].Orders) > in.Cfg.MaxO {
		t.Fatalf("greedy exceeded MAXO: %d orders", len(asg[0].Orders))
	}
}

func TestGreedyHonoursFirstMileCap(t *testing.T) {
	g, sp := gridCity(10, 1000)
	o := mkOrder(sp, 1, 99, 88, 60) // far corner
	v := vehicleAt(1, 0)
	in := windowInput(g, sp, []*model.Order{o}, []*foodgraph.VehicleState{v})
	in.Cfg.MaxFirstMile = 2700
	if asg := NewGreedy().Assign(context.Background(), in); len(asg) != 0 {
		t.Fatal("greedy assigned beyond the 45-minute first mile")
	}
}

func TestReyesSameRestaurantBatchingOnly(t *testing.T) {
	g, sp := gridCity(8, 30)
	// Two adjacent-but-different restaurants: Reyes must NOT batch them.
	o1 := mkOrder(sp, 1, 10, 50, 300)
	o2 := mkOrder(sp, 2, 11, 51, 300)
	// Two same-restaurant orders: Reyes batches them.
	o3 := mkOrder(sp, 3, 20, 52, 300)
	o4 := mkOrder(sp, 4, 20, 53, 300)
	vehicles := []*foodgraph.VehicleState{vehicleAt(1, 0), vehicleAt(2, 63), vehicleAt(3, 32)}
	in := windowInput(g, sp, []*model.Order{o1, o2, o3, o4}, vehicles)
	asg := NewReyes().Assign(context.Background(), in)
	checkAssignments(t, in, asg)
	byVehicle := make(map[model.VehicleID][]model.OrderID)
	for _, a := range asg {
		for _, o := range a.Orders {
			byVehicle[a.Vehicle.ID] = append(byVehicle[a.Vehicle.ID], o.ID)
		}
	}
	for vid, ids := range byVehicle {
		if len(ids) < 2 {
			continue
		}
		// Any multi-order assignment must be single-restaurant.
		rest := make(map[roadnet.NodeID]bool)
		for _, id := range ids {
			for _, o := range in.Orders {
				if o.ID == id {
					rest[o.Restaurant] = true
				}
			}
		}
		if len(rest) > 1 {
			t.Fatalf("vehicle %d batched orders from %d restaurants", vid, len(rest))
		}
	}
}

func TestRankObserver(t *testing.T) {
	g, sp := gridCity(8, 30)
	var ranks []float64
	p := &FoodMatch{RankObserver: func(r float64) { ranks = append(ranks, r) }}
	var orders []*model.Order
	for i := 0; i < 6; i++ {
		orders = append(orders, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(i*9%64), roadnet.NodeID((i*13+5)%64), 300))
	}
	vehicles := []*foodgraph.VehicleState{vehicleAt(1, 0), vehicleAt(2, 63), vehicleAt(3, 32), vehicleAt(4, 7)}
	in := windowInput(g, sp, orders, vehicles)
	asg := p.Assign(context.Background(), in)
	if len(asg) == 0 {
		t.Fatal("no assignments")
	}
	if len(ranks) != len(asg) {
		t.Fatalf("observer fired %d times for %d assignments", len(ranks), len(asg))
	}
	for _, r := range ranks {
		if r < 0 || r > 100 {
			t.Fatalf("rank %v outside [0,100]", r)
		}
	}
}

func TestVanillaKMNoBatchingNoBFS(t *testing.T) {
	g, sp := gridCity(8, 30)
	cfg := ConfigureVanillaKM(model.DefaultConfig())
	o1 := mkOrder(sp, 1, 10, 50, 300)
	o2 := mkOrder(sp, 2, 10, 51, 300)
	in := windowInput(g, sp, []*model.Order{o1, o2}, []*foodgraph.VehicleState{vehicleAt(1, 0)})
	in.Cfg = cfg
	asg := NewVanillaKM().Assign(context.Background(), in)
	checkAssignments(t, in, asg)
	// One vehicle, no batching: exactly one order assigned.
	if len(asg) != 1 || len(asg[0].Orders) != 1 {
		t.Fatalf("vanilla KM should assign exactly one singleton, got %+v", asg)
	}
}

func TestPolicyNames(t *testing.T) {
	if NewFoodMatch().Name() != "FoodMatch" {
		t.Error("FoodMatch name")
	}
	if NewVanillaKM().Name() != "KM" {
		t.Error("KM label")
	}
	if NewGreedy().Name() != "Greedy" {
		t.Error("Greedy name")
	}
	if NewReyes().Name() != "Reyes" {
		t.Error("Reyes name")
	}
	if !NewFoodMatch().Reshuffles() || NewGreedy().Reshuffles() || NewReyes().Reshuffles() {
		t.Error("reshuffle flags wrong")
	}
}

// TestGreedyMatchesPaperExampleCosts rebuilds the Fig. 1 instance and
// checks Greedy's characteristic first move: the zero-marginal-cost pair
// (o2, v2) is taken first.
func TestGreedyMatchesPaperExampleCosts(t *testing.T) {
	b := roadnet.NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode(geo.Point{Lat: float64(i) * 0.01})
	}
	und := func(u, v roadnet.NodeID, w float64) {
		b.AddEdge(u, v, w*500, w, 0)
		b.AddEdge(v, u, w*500, w, 0)
	}
	und(0, 1, 8)
	und(0, 4, 5)
	und(1, 2, 5)
	und(1, 3, 6)
	und(2, 6, 8)
	und(3, 4, 3)
	und(3, 5, 4)
	und(4, 5, 7)
	und(5, 8, 7)
	und(6, 8, 5)
	und(6, 7, 12)
	und(7, 8, 3)
	und(7, 9, 3)
	und(8, 9, 2)
	g := b.MustBuild()
	sp := roadnet.NewDistCache(g, math.Inf(1)).AsFunc()

	o2 := mkOrder(sp, 2, 5, 8, 5) // restaurant u6, customer u9, prep 5
	v2 := vehicleAt(2, 3)         // at u4
	_, mc, ok := routing.MarginalCost(sp, v2.Node, 0, nil, nil, []*model.Order{o2})
	if !ok || mc != 0 {
		t.Fatalf("mCost(o2,v2) = %v, want 0 (Example 5)", mc)
	}
}

// TestMatchingBeatsGreedyGlobally reproduces the paper's Section III/IV
// claim on the Fig. 2 cost structure: KM total 5 < greedy total 6.
func TestMatchingBeatsGreedyGlobally(t *testing.T) {
	cost := [][]float64{
		{3, 1, 7},
		{17, 0, 1},
		{3, 5, 7},
	}
	mate := matching.Solve(cost)
	km := matching.TotalCost(cost, mate)

	// Greedy on the same matrix: repeatedly take the global min pair.
	usedR := make([]bool, 3)
	usedC := make([]bool, 3)
	greedy := 0.0
	for it := 0; it < 3; it++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !usedR[i] && !usedC[j] && cost[i][j] < best {
					best = cost[i][j]
					bi, bj = i, j
				}
			}
		}
		usedR[bi], usedC[bj] = true, true
		greedy += best
	}
	if km >= greedy {
		t.Fatalf("KM %v should beat greedy %v on the crafted matrix", km, greedy)
	}
}
