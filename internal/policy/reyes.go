package policy

import (
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// Reyes re-implements the strategy of Reyes et al. [5] with the two
// simplifications the paper criticises (Section I-A):
//
//  1. distances are straight-line Haversine at an assumed constant speed,
//     ignoring the road network, and
//  2. orders may be batched only when they come from the same restaurant.
//
// Same-restaurant orders in the window are greedily grouped up to the
// capacity limits, then batches are assigned to vehicles by minimum-weight
// matching under the Haversine cost model (standing in for the original
// linear-programming assignment, which optimises the same objective). The
// *returned plans* are genuine road-network route plans — the simulator
// executes reality; only the decision procedure is distance-naive, which is
// exactly the deficiency Fig. 6(b) exposes.
type Reyes struct {
	// SpeedMS is the assumed straight-line travel speed (m/s) used to turn
	// Haversine metres into seconds. Zero defaults to 8.33 m/s (30 km/h).
	SpeedMS float64
}

// NewReyes returns the baseline with the default speed assumption.
func NewReyes() *Reyes { return &Reyes{} }

// Name implements Policy.
func (*Reyes) Name() string { return "Reyes" }

// Reshuffles implements Policy; Reyes never reshuffles.
func (*Reyes) Reshuffles() bool { return false }

// SingleOrderMode implements Policy: Reyes batches same-restaurant orders,
// so vehicles may carry several; availability stays capacity-based.
func (*Reyes) SingleOrderMode(*model.Config) bool { return false }

// Assign implements Policy.
func (p *Reyes) Assign(in *WindowInput) []Assignment {
	cfg := in.Cfg
	if len(in.Orders) == 0 || len(in.Vehicles) == 0 {
		return nil
	}
	speed := p.SpeedMS
	if speed <= 0 {
		speed = 8.33
	}
	// Haversine pseudo-shortest-path: straight-line seconds between nodes.
	hsp := func(from, to roadnet.NodeID, _ float64) float64 {
		return geo.Haversine(in.G.Point(from), in.G.Point(to)) / speed
	}

	// Step 1: same-restaurant batching, in arrival order, respecting MAXO
	// and MAXI.
	byRest := make(map[roadnet.NodeID][]*model.Order)
	var restaurants []roadnet.NodeID
	for _, o := range in.Orders {
		if len(byRest[o.Restaurant]) == 0 {
			restaurants = append(restaurants, o.Restaurant)
		}
		byRest[o.Restaurant] = append(byRest[o.Restaurant], o)
	}
	sort.Slice(restaurants, func(a, b int) bool { return restaurants[a] < restaurants[b] })
	var groups [][]*model.Order
	for _, r := range restaurants {
		orders := byRest[r]
		sort.Slice(orders, func(a, b int) bool { return orders[a].PlacedAt < orders[b].PlacedAt })
		var cur []*model.Order
		items := 0
		for _, o := range orders {
			if len(cur) >= cfg.MaxO || (len(cur) > 0 && items+o.Items > cfg.MaxI) {
				groups = append(groups, cur)
				cur, items = nil, 0
			}
			cur = append(cur, o)
			items += o.Items
		}
		if len(cur) > 0 {
			groups = append(groups, cur)
		}
	}

	// Step 2: assignment by minimum-weight matching under the Haversine
	// cost model.
	nb, nv := len(groups), len(in.Vehicles)
	cost := make([][]float64, nb)
	for i, grp := range groups {
		cost[i] = make([]float64, nv)
		for j, vs := range in.Vehicles {
			cost[i][j] = math.Inf(1)
			if vs.BaseOrders()+len(grp) > cfg.MaxO {
				continue
			}
			items := 0
			for _, o := range grp {
				items += o.Items
			}
			if vs.BaseItems()+items > cfg.MaxI {
				continue
			}
			if hsp(vs.Node, grp[0].Restaurant, in.Now) > cfg.MaxFirstMile {
				continue
			}
			// Marginal cost in the Haversine world. SDTs cached on orders
			// are network-based; the decision rule only needs relative
			// costs, and constant offsets cancel inside the matching.
			_, mc, ok := routing.MarginalCost(hsp, vs.Node, in.Now, vs.Onboard, vs.Keep, grp)
			if !ok || mc >= cfg.Omega {
				continue
			}
			cost[i][j] = mc
		}
	}
	mate := matching.Solve(cost)

	var out []Assignment
	for bi, vj := range mate {
		if vj < 0 {
			continue
		}
		vs := in.Vehicles[vj]
		// Execute on the real network: recompute the optimal plan with the
		// true shortest-path oracle.
		plan, _, ok := routing.MarginalCost(in.SP, vs.Node, in.Now, vs.Onboard, vs.Keep, groups[bi])
		if !ok {
			continue
		}
		out = append(out, Assignment{
			Vehicle: vs.Vehicle,
			Orders:  groups[bi],
			Plan:    plan,
		})
	}
	return out
}
