// Package policy implements the order-assignment strategies benchmarked in
// the paper: FOODMATCH (Section IV) with its ablation switches, vanilla
// Kuhn–Munkres matching, the Greedy baseline (Section III) and a
// re-implementation of the Reyes et al. [5] strategy.
//
// A policy receives one accumulation window — the unassigned orders O(ℓ)
// and the available vehicles V(ℓ) — and returns the set of (vehicle, batch,
// route plan) assignments. The simulator owns order/vehicle lifecycle; the
// policy is pure decision logic.
//
// # Concurrency contract
//
// A Policy instance is driven by one window loop at a time: Assign is never
// called concurrently on the same instance, so implementations may keep
// per-call scratch state without synchronisation. The online engine runs K
// zone shards in parallel by constructing one instance per shard through a
// factory (engine.Config.NewPolicy) — implementations must therefore not
// share mutable package-level state across instances, and everything
// reachable from WindowInput (graph, SP oracle, config) is read-only during
// Assign. Observer callbacks (e.g. FoodMatch.RankObserver) are invoked on
// the calling shard's goroutine and must synchronise internally if they
// aggregate across shards.
package policy

import (
	"repro/internal/foodgraph"
	"repro/internal/model"
	"repro/internal/roadnet"
)

// WindowInput is everything a policy may look at for one window.
type WindowInput struct {
	G  *roadnet.Graph
	SP roadnet.SPFunc
	// Now is the window-end clock (assignment time).
	Now float64
	// Orders is O(ℓ): unassigned orders plus — when the policy reshuffles —
	// assigned-but-unpicked orders returned to the pool.
	Orders []*model.Order
	// Vehicles is V(ℓ): available vehicles with spare capacity. VehicleState
	// reflects reshuffling: pooled pending orders do not appear in Keep.
	Vehicles []*foodgraph.VehicleState
	// Incumbent maps reshuffled orders to the vehicle they were assigned to
	// before being pooled. While food is still cooking, many vehicles tie at
	// near-zero marginal cost; policies use this to break such ties toward
	// the incumbent instead of churning assignments every window.
	Incumbent map[model.OrderID]model.VehicleID
	Cfg       *model.Config
}

// Assignment is one policy decision: attach Orders to Vehicle and replace
// its route plan with Plan (which also covers the vehicle's onboard and
// kept orders).
type Assignment struct {
	Vehicle *model.Vehicle
	Orders  []*model.Order
	Plan    *model.RoutePlan
}

// Policy is an assignment strategy. Instances are confined to a single
// window loop (one simulator, or one engine zone shard); see the package
// comment for the full concurrency contract.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reshuffles reports whether assigned-but-unpicked orders should be
	// returned to the pool each window (Section IV-D2).
	Reshuffles() bool
	// SingleOrderMode reports whether vehicles serve one order at a time
	// under this policy and config. The paper's vanilla KM baseline cannot
	// batch ("no two edges will be incident on the same node... hence,
	// batching is not feasible", Section IV-A): a vehicle re-enters V(ℓ)
	// only once empty. Greedy stacks orders explicitly (Example 5) and
	// FOODMATCH serves multi-order batches, so both use capacity-based
	// availability.
	SingleOrderMode(cfg *model.Config) bool
	// Assign decides the window's assignments.
	Assign(in *WindowInput) []Assignment
}

// singletonBatches wraps each order in its own batch (used when batching is
// disabled). Orders whose own delivery leg is unreachable get an infeasible
// batch which no vehicle will accept.
func singletonBatches(sp roadnet.SPFunc, now float64, orders []*model.Order) []*model.Batch {
	batches := make([]*model.Batch, 0, len(orders))
	for _, o := range orders {
		plan := &model.RoutePlan{Stops: []model.Stop{
			{Node: o.Restaurant, Order: o, Kind: model.Pickup},
			{Node: o.Customer, Order: o, Kind: model.Dropoff},
		}}
		batches = append(batches, &model.Batch{Orders: []*model.Order{o}, Plan: plan})
	}
	return batches
}
