// Package policy provides the order-assignment strategies benchmarked in
// the paper as canned compositions of the pipeline stages: FOODMATCH
// (Section IV) with its ablation switches, vanilla Kuhn–Munkres matching,
// the Greedy baseline (Section III) and a re-implementation of the Reyes
// et al. [5] strategy.
//
// The stage interfaces and the composition machinery live in
// internal/pipeline; this package pins the four named operating points the
// experiments sweep. Policy, WindowInput and Assignment are aliases of the
// pipeline types, so custom compositions built with pipeline.New drop into
// every driver (simulator, online engine, experiment harness) that accepts
// a policy. See the pipeline package for the concurrency contract.
package policy

import (
	"repro/internal/pipeline"
)

// WindowInput is everything a policy may look at for one window (alias of
// pipeline.Input; the distance oracle is the injected Router).
type WindowInput = pipeline.Input

// Assignment is one policy decision: attach Orders to Vehicle and replace
// its route plan with Plan (alias of pipeline.Assignment).
type Assignment = pipeline.Assignment

// Policy is an assignment strategy (alias of pipeline.Policy). Instances
// are confined to a single window loop (one simulator, or one engine zone
// shard); see the pipeline package comment for the full concurrency
// contract.
type Policy = pipeline.Policy

// NewGreedy returns the Greedy baseline of Section III: singleton batches
// fed to the iterative minimum-marginal-cost matcher — no order-graph
// clustering, no sparsification, no reshuffling. A vehicle may accumulate
// several orders across matcher rounds (implicit batching, Example 5).
func NewGreedy() *pipeline.Pipeline {
	return pipeline.New(
		pipeline.WithLabel("Greedy"),
		pipeline.WithBatcher(pipeline.SingletonBatcher{}),
		pipeline.WithSparsifier(nil),
		pipeline.WithReshuffler(nil),
		pipeline.WithMatcher(pipeline.GreedyMatcher{}),
		pipeline.WithSingleOrderWhen(nil),
	)
}

// NewReyes returns the Reyes et al. [5] baseline with the two
// simplifications the paper criticises (Section I-A): same-restaurant-only
// batching and straight-line Haversine costs at an assumed constant speed
// (8.33 m/s). The returned *plans* are genuine road-network route plans —
// the simulator executes reality; only the decision procedure is
// distance-naive, which is exactly the deficiency Fig. 6(b) exposes.
func NewReyes() *pipeline.Pipeline {
	return pipeline.New(
		pipeline.WithLabel("Reyes"),
		pipeline.WithBatcher(pipeline.SameRestaurantBatcher{}),
		pipeline.WithSparsifier(pipeline.HaversineSparsifier{}),
		pipeline.WithReshuffler(nil),
		pipeline.WithMatcher(pipeline.ReyesMatcher{}),
		pipeline.WithSingleOrderWhen(nil),
	)
}
