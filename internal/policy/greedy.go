package policy

import (
	"math"

	"repro/internal/model"
	"repro/internal/routing"
)

// Greedy is the baseline of Section III: at each window it repeatedly picks
// the unassigned order–vehicle pair with the minimum marginal cost (Eq. 3)
// and assigns it, until no feasible pair remains. A vehicle may accumulate
// several orders across iterations (implicit batching, Example 5), but no
// dedicated batching, sparsification or reshuffling is performed.
type Greedy struct{}

// NewGreedy returns the Greedy baseline.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Policy.
func (Greedy) Name() string { return "Greedy" }

// Reshuffles implements Policy; Greedy never reshuffles.
func (Greedy) Reshuffles() bool { return false }

// SingleOrderMode implements Policy: Greedy stacks orders onto partially
// loaded vehicles (Example 5), so availability is capacity-based.
func (Greedy) SingleOrderMode(*model.Config) bool { return false }

// vehicleWork tracks a vehicle's evolving workload during the greedy rounds.
type vehicleWork struct {
	idx     int // index into in.Vehicles
	onboard []*model.Order
	pending []*model.Order
	items   int
	plan    *model.RoutePlan
	touched bool
}

// Assign implements Policy.
func (Greedy) Assign(in *WindowInput) []Assignment {
	cfg := in.Cfg
	n := len(in.Orders)
	m := len(in.Vehicles)
	if n == 0 || m == 0 {
		return nil
	}

	works := make([]*vehicleWork, m)
	for j, vs := range in.Vehicles {
		w := &vehicleWork{idx: j, onboard: vs.Onboard, items: vs.BaseItems()}
		w.pending = append(w.pending, vs.Keep...)
		works[j] = w
	}

	// cost[i][j] is the cached mCost of order i on vehicle j under the
	// vehicle's *current* workload; plans[i][j] the corresponding plan.
	// A column is recomputed after its vehicle wins an assignment.
	cost := make([][]float64, n)
	plans := make([][]*model.RoutePlan, n)
	assigned := make([]bool, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		plans[i] = make([]*model.RoutePlan, m)
	}

	compute := func(i, j int) {
		o := in.Orders[i]
		vs := in.Vehicles[j]
		w := works[j]
		cost[i][j] = math.Inf(1)
		plans[i][j] = nil
		if len(w.onboard)+len(w.pending)+1 > cfg.MaxO {
			return
		}
		if w.items+o.Items > cfg.MaxI {
			return
		}
		if fm := in.SP(vs.Node, o.Restaurant, in.Now); fm > cfg.MaxFirstMile {
			return
		}
		plan, mc, ok := routing.MarginalCost(in.SP, vs.Node, in.Now, w.onboard, w.pending, []*model.Order{o})
		if !ok || mc >= cfg.Omega {
			return
		}
		cost[i][j] = mc
		plans[i][j] = plan
	}

	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			compute(i, j)
		}
	}

	for {
		// Find the global minimum pair.
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			for j := 0; j < m; j++ {
				if cost[i][j] < best {
					best = cost[i][j]
					bi, bj = i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		o := in.Orders[bi]
		w := works[bj]
		assigned[bi] = true
		w.pending = append(w.pending, o)
		w.items += o.Items
		w.plan = plans[bi][bj]
		w.touched = true
		// The winning vehicle's workload changed: refresh its column.
		for i := 0; i < n; i++ {
			if !assigned[i] {
				compute(i, bj)
			}
		}
	}

	var out []Assignment
	for j, w := range works {
		if !w.touched {
			continue
		}
		newOrders := w.pending[len(in.Vehicles[j].Keep):]
		out = append(out, Assignment{
			Vehicle: in.Vehicles[j].Vehicle,
			Orders:  newOrders,
			Plan:    w.plan,
		})
	}
	return out
}
