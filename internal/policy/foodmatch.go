package policy

import (
	"context"

	"repro/internal/model"
	"repro/internal/pipeline"
)

// FoodMatch is the full pipeline of Section IV: batching by iterative
// clustering, sparsified FOODGRAPH construction via best-first search with
// angular distance, Kuhn–Munkres minimum-weight matching, and reshuffling.
// It is the default stage composition of pipeline.New, kept as a named
// struct so the ablation drivers can label variants and hook the matching
// observer. The Config ablation switches individually disable each
// optimisation, yielding the Fig. 7(a) variants (and, with everything off,
// vanilla KM).
type FoodMatch struct {
	// Label overrides Name() when non-empty (used by ablation reports).
	Label string

	// RankObserver, when set, receives the percentile rank of each matched
	// vehicle-batch pair (Fig. 4(a) instrumentation): for the matched pair,
	// rank is the fraction of batches strictly closer to the vehicle than
	// the assigned batch, by network distance to the first pickup.
	// May be set or cleared between Assign calls.
	RankObserver func(percentile float64)

	pipe *pipeline.Pipeline
}

// pipeline composes the stages lazily so Label and RankObserver may be set
// by struct literal after construction (Assign is never concurrent on one
// instance, so no synchronisation is needed). The matcher observer is
// always bound; observeRank reads RankObserver per call, so toggling it
// between Assigns keeps working.
func (p *FoodMatch) pipeline() *pipeline.Pipeline {
	if p.pipe == nil {
		p.pipe = pipeline.New(
			pipeline.WithLabel(p.Name()),
			pipeline.WithMatcher(&pipeline.KMMatcher{PairObserver: p.observeRank}),
		)
	}
	return p.pipe
}

// Name implements Policy.
func (p *FoodMatch) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "FoodMatch"
}

// Reshuffles implements Policy: governed by the config switch, read by the
// simulator via the window input; the default config enables it.
func (p *FoodMatch) Reshuffles() bool { return true }

// SingleOrderMode implements Policy: with batching disabled this pipeline
// degenerates to the paper's vanilla KM, whose matching cannot put two
// orders on one vehicle — vehicles then serve a single order at a time.
func (p *FoodMatch) SingleOrderMode(cfg *model.Config) bool { return !cfg.Batching }

// Assign implements Policy.
func (p *FoodMatch) Assign(ctx context.Context, in *WindowInput) []Assignment {
	return p.pipeline().Assign(ctx, in)
}

// LastStats implements pipeline.StatsSource: per-stage timings of the most
// recent Assign (the engine publishes them on its round-stats path).
func (p *FoodMatch) LastStats() pipeline.Stats { return p.pipeline().LastStats() }

// observeRank records where the assigned batch ranks among all batches by
// network distance from the vehicle (Fig. 4(a)).
func (p *FoodMatch) observeRank(in *pipeline.Input, batches []*model.Batch, bi, vj int) {
	if p.RankObserver == nil { // no observer installed right now
		return
	}
	if len(batches) < 2 {
		p.RankObserver(0)
		return
	}
	vs := in.Vehicles[vj]
	d := in.Router.Travel(vs.Node, batches[bi].FirstPickupNode(), in.Now)
	closer := 0
	for i, b := range batches {
		if i == bi {
			continue
		}
		if in.Router.Travel(vs.Node, b.FirstPickupNode(), in.Now) < d {
			closer++
		}
	}
	p.RankObserver(100 * float64(closer) / float64(len(batches)-1))
}

// NewFoodMatch returns the full FOODMATCH policy.
func NewFoodMatch() *FoodMatch { return &FoodMatch{} }

// NewVanillaKM returns a policy that is FOODMATCH with every optimisation
// disabled — plain Kuhn–Munkres on the full bipartite graph. The caller's
// config must also disable the switches; ConfigureVanillaKM does that.
func NewVanillaKM() *FoodMatch { return &FoodMatch{Label: "KM"} }

// ConfigureVanillaKM flips every optimisation off in cfg, in place, and
// returns it (helper for the ablation experiments).
func ConfigureVanillaKM(cfg *model.Config) *model.Config {
	cfg.Batching = false
	cfg.Reshuffle = false
	cfg.BestFirst = false
	cfg.Angular = false
	return cfg
}

var (
	_ Policy               = (*FoodMatch)(nil)
	_ pipeline.StatsSource = (*FoodMatch)(nil)
)
