package policy

import (
	"repro/internal/batching"
	"repro/internal/foodgraph"
	"repro/internal/matching"
	"repro/internal/model"
)

// FoodMatch is the full pipeline of Section IV: batching by iterative
// clustering, sparsified FOODGRAPH construction via best-first search with
// angular distance, Kuhn–Munkres minimum-weight matching, and reshuffling.
// The Config ablation switches individually disable each optimisation,
// yielding the Fig. 7(a) variants (and, with everything off, vanilla KM).
type FoodMatch struct {
	// Label overrides Name() when non-empty (used by ablation reports).
	Label string

	// RankObserver, when set, receives the percentile rank of each matched
	// vehicle-batch pair (Fig. 4(a) instrumentation): for the matched pair,
	// rank is the fraction of batches strictly closer to the vehicle than
	// the assigned batch, by network distance to the first pickup.
	RankObserver func(percentile float64)
}

// Name implements Policy.
func (p *FoodMatch) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "FoodMatch"
}

// Reshuffles implements Policy: governed by the config switch, read by the
// simulator via the window input; the default config enables it.
func (p *FoodMatch) Reshuffles() bool { return true }

// SingleOrderMode implements Policy: with batching disabled this pipeline
// degenerates to the paper's vanilla KM, whose matching cannot put two
// orders on one vehicle — vehicles then serve a single order at a time.
func (p *FoodMatch) SingleOrderMode(cfg *model.Config) bool { return !cfg.Batching }

// Assign implements Policy.
func (p *FoodMatch) Assign(in *WindowInput) []Assignment {
	cfg := in.Cfg
	if len(in.Orders) == 0 || len(in.Vehicles) == 0 {
		return nil
	}

	// Step 1: batching (Algorithm 1) — or singleton batches when disabled.
	var batches []*model.Batch
	if cfg.Batching {
		res := batching.Run(in.SP, in.Orders, batching.Options{
			Eta:        cfg.Eta,
			AgeNeutral: cfg.AgeNeutralEdges,
			MaxO:       cfg.MaxO,
			MaxI:       cfg.MaxI,
			Radius:     cfg.BatchRadius,
			Now:        in.Now,
		})
		batches = res.Batches
	} else {
		batches = singletonBatches(in.SP, in.Now, in.Orders)
	}

	// Step 2: FOODGRAPH construction (Algorithm 2 when BestFirst).
	k := foodgraph.KFor(cfg.KFactor, cfg.KMin, len(batches), len(in.Vehicles))
	bp := foodgraph.Build(in.G, in.SP, batches, in.Vehicles, foodgraph.Options{
		K:            k,
		Gamma:        cfg.Gamma,
		Angular:      cfg.Angular,
		BestFirst:    cfg.BestFirst,
		Omega:        cfg.Omega,
		MaxFirstMile: cfg.MaxFirstMile,
		MaxO:         cfg.MaxO,
		MaxI:         cfg.MaxI,
		Now:          in.Now,
		AgeNeutral:   cfg.AgeNeutralEdges,
	})

	// Reshuffling adjustments, applied to true edges only:
	//
	//  1. Priority tier: every order that already had a vehicle discounts
	//     its batch's edges by a constant ≫ Ω. Serviceability is
	//     non-negotiable (Section I); when batches outnumber vehicles the
	//     matching's leave-out decision must fall on never-assigned orders,
	//     not strand one that had a ride. Being a row constant, the
	//     discount never changes *which* vehicle a covered batch gets.
	//  2. Incumbent tie-break: an infinitesimal extra discount when the
	//     order would stay on its previous vehicle, so equal-cost
	//     alternatives don't churn assignments window after window.
	if len(in.Incumbent) > 0 {
		priority := 10 * cfg.Omega
		for bi, b := range batches {
			for vj, vs := range in.Vehicles {
				if bp.Plan[bi][vj] == nil {
					continue
				}
				for _, o := range b.Orders {
					if prev, had := in.Incumbent[o.ID]; had {
						bp.Cost[bi][vj] -= priority
						if prev == vs.Vehicle.ID {
							bp.Cost[bi][vj] -= 0.001
						}
					}
				}
			}
		}
	}

	// Step 3: minimum-weight perfect matching (Kuhn–Munkres).
	mate := matching.Solve(bp.Cost)

	// Step 4: emit assignments; Ω-weight matches mean "leave unassigned for
	// the next window".
	var out []Assignment
	for bi, vj := range mate {
		if vj < 0 || bp.Cost[bi][vj] >= cfg.Omega || bp.Plan[bi][vj] == nil {
			continue
		}
		vs := in.Vehicles[vj]
		out = append(out, Assignment{
			Vehicle: vs.Vehicle,
			Orders:  batches[bi].Orders,
			Plan:    bp.Plan[bi][vj],
		})
		if p.RankObserver != nil {
			p.observeRank(in, batches, bi, vj)
		}
	}
	return out
}

// observeRank records where the assigned batch ranks among all batches by
// network distance from the vehicle (Fig. 4(a)).
func (p *FoodMatch) observeRank(in *WindowInput, batches []*model.Batch, bi, vj int) {
	if len(batches) < 2 {
		p.RankObserver(0)
		return
	}
	vs := in.Vehicles[vj]
	d := in.SP(vs.Node, batches[bi].FirstPickupNode(), in.Now)
	closer := 0
	for i, b := range batches {
		if i == bi {
			continue
		}
		if in.SP(vs.Node, b.FirstPickupNode(), in.Now) < d {
			closer++
		}
	}
	p.RankObserver(100 * float64(closer) / float64(len(batches)-1))
}

// NewFoodMatch returns the full FOODMATCH policy.
func NewFoodMatch() *FoodMatch { return &FoodMatch{} }

// NewVanillaKM returns a policy that is FOODMATCH with every optimisation
// disabled — plain Kuhn–Munkres on the full bipartite graph. The caller's
// config must also disable the switches; ConfigureVanillaKM does that.
func NewVanillaKM() *FoodMatch { return &FoodMatch{Label: "KM"} }

// ConfigureVanillaKM flips every optimisation off in cfg, in place, and
// returns it (helper for the ablation experiments).
func ConfigureVanillaKM(cfg *model.Config) *model.Config {
	cfg.Batching = false
	cfg.Reshuffle = false
	cfg.BestFirst = false
	cfg.Angular = false
	return cfg
}
