package sim

import (
	"math"

	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
	"repro/internal/trace"
)

// advance moves one vehicle through simulated time [t0, t1): drive the
// current leg edge by edge (each edge at its entry-time β), wait at
// restaurants when the food is not ready, pick up, drop off, then start the
// next leg.
func (s *Simulator) advance(vr *vehicleRt, t0, t1 float64) {
	v := vr.v
	t := t0
	for t < t1 {
		if v.Plan.Empty() {
			return // idle: vehicles park in place
		}
		stop := v.Plan.Stops[0]

		// At the stop node with no residual path: service the stop.
		if v.Node == stop.Node && len(vr.path) == 0 {
			var done bool
			t, done = s.serviceStop(vr, stop, t, t1)
			if !done {
				return // waiting for food past the window boundary
			}
			continue
		}

		// Need a path for the current leg?
		if len(vr.path) == 0 {
			p := roadnet.Path(s.g, v.Node, stop.Node, t)
			if p == nil {
				// The stop became unreachable (pathological graphs /
				// failure injection): abandon the stop.
				s.abandonStop(vr, stop)
				continue
			}
			vr.path = append(vr.path[:0], p.Nodes[1:]...)
			vr.edgeRemaining = 0
		}

		// Ensure the current edge is initialised.
		if vr.edgeRemaining <= 0 {
			if len(vr.path) == 0 {
				continue // already at stop node; loop back to service it
			}
			e, ok := edgeBetween(s.g, v.Node, vr.path[0])
			if !ok {
				// Path invalidated (cannot happen on immutable graphs, but
				// guard anyway): recompute next iteration.
				vr.path = nil
				continue
			}
			vr.edgeTotal = s.g.EdgeTime(e, t)
			vr.edgeRemaining = vr.edgeTotal
			vr.edgeLenM = float64(e.LenM)
			v.EdgeTo = vr.path[0]
		}

		// Drive as much of the edge as the window allows.
		dt := t1 - t
		if vr.edgeRemaining <= dt {
			t += vr.edgeRemaining
			s.accrueDistance(v, vr.edgeLenM*vr.edgeRemaining/vr.edgeTotal, t)
			v.Node = vr.path[0]
			vr.path = vr.path[1:]
			vr.edgeRemaining = 0
			v.EdgeTo = roadnet.Invalid
			v.EdgeProgress = 0
		} else {
			s.accrueDistance(v, vr.edgeLenM*dt/vr.edgeTotal, t1)
			vr.edgeRemaining -= dt
			v.EdgeProgress = vr.edgeTotal - vr.edgeRemaining
			t = t1
		}
	}
}

// serviceStop handles a pickup or dropoff at the current node. It returns
// the advanced clock and whether the stop completed (false: still waiting
// for food at the window boundary).
func (s *Simulator) serviceStop(vr *vehicleRt, stop model.Stop, t, t1 float64) (float64, bool) {
	v := vr.v
	o := stop.Order
	switch stop.Kind {
	case model.Pickup:
		if o.State != model.OrderAssigned || o.AssignedTo != v.ID {
			// The order was reshuffled away or rejected after this plan was
			// made; skip the stale stop.
			s.popStop(v)
			return t, true
		}
		ready := o.ReadyAt()
		if t < ready {
			wait := math.Min(ready, t1) - t
			v.WaitSec += wait
			s.metrics.WaitSec += wait
			s.metrics.SlotWaitSec[roadnet.Slot(t)] += wait
			if ready > t1 {
				return t1, false
			}
			t = ready
		}
		o.State = model.OrderPickedUp
		o.PickedUpAt = t
		removeOrder(&v.Pending, o.ID)
		v.Onboard = append(v.Onboard, o)
		s.popStop(v)
		s.opts.Trace.Emit(trace.Event{Kind: trace.OrderPickedUp, T: t, Order: o.ID, Vehicle: v.ID})
		return t, true

	case model.Dropoff:
		if o.State != model.OrderPickedUp || o.AssignedTo != v.ID {
			s.popStop(v)
			return t, true
		}
		o.State = model.OrderDelivered
		o.DeliveredAt = t
		removeOrder(&v.Onboard, o.ID)
		s.popStop(v)
		m := s.metrics
		m.Delivered++
		m.DeliverySec += o.DeliveryTime()
		xdt := o.XDT()
		m.XDTSec += xdt
		slot := roadnet.Slot(o.PlacedAt)
		m.SlotXDTSec[slot] += xdt
		m.SlotDelivered[slot]++
		s.opts.Trace.Emit(trace.Event{Kind: trace.OrderDelivered, T: t, Order: o.ID, Vehicle: v.ID})
		return t, true
	}
	s.popStop(v)
	return t, true
}

// abandonStop drops an unreachable stop, stranding its order when that was
// the order's only delivery hope.
func (s *Simulator) abandonStop(vr *vehicleRt, stop model.Stop) {
	v := vr.v
	o := stop.Order
	s.popStop(v)
	switch stop.Kind {
	case model.Pickup:
		removeOrder(&v.Pending, o.ID)
		// Also remove the matching dropoff from the plan.
		if v.Plan != nil {
			stops := v.Plan.Stops[:0]
			for _, st := range v.Plan.Stops {
				if st.Order.ID != o.ID {
					stops = append(stops, st)
				}
			}
			v.Plan.Stops = stops
		}
		o.State = model.OrderRejected
		o.AssignedTo = -1
		s.metrics.Stranded++
	case model.Dropoff:
		removeOrder(&v.Onboard, o.ID)
		o.State = model.OrderRejected
		s.metrics.Stranded++
	}
	vr.path = nil
	vr.edgeRemaining = 0
}

func (s *Simulator) popStop(v *model.Vehicle) {
	v.Plan.Stops = v.Plan.Stops[1:]
}

// accrueDistance books metres driven at the vehicle's current load.
func (s *Simulator) accrueDistance(v *model.Vehicle, meters, t float64) {
	if meters <= 0 {
		return
	}
	load := len(v.Onboard)
	if load >= len(v.DistByLoad) {
		load = len(v.DistByLoad) - 1
	}
	v.DistM += meters
	v.DistByLoad[load] += meters
	m := s.metrics
	m.DistM += meters
	if load < len(m.LoadDistM) {
		m.LoadDistM[load] += meters
	}
	slot := roadnet.Slot(t)
	m.SlotDistM[slot] += meters
	m.SlotLoadDistM[slot] += float64(load) * meters
}

// edgeBetween finds the cheapest edge u -> w (parallel edges resolved by
// free-flow time).
func edgeBetween(g *roadnet.Graph, u, w roadnet.NodeID) (roadnet.Edge, bool) {
	var best roadnet.Edge
	found := false
	for _, e := range g.OutEdges(u) {
		if e.To == w && (!found || e.BaseSec < best.BaseSec) {
			best = e
			found = true
		}
	}
	return best, found
}

func removeOrder(list *[]*model.Order, id model.OrderID) {
	ls := *list
	for i, o := range ls {
		if o.ID == id {
			*list = append(ls[:i], ls[i+1:]...)
			return
		}
	}
}

// optimizeDropoffs plans the remaining dropoffs for a vehicle's onboard
// orders (used after reshuffling strips its pending pickups).
func optimizeDropoffs(sp roadnet.SPFunc, node roadnet.NodeID, now float64, onboard []*model.Order) (*model.RoutePlan, float64, bool) {
	return routing.Optimize(sp, node, now, onboard, nil)
}

// optimizePlan rebuilds a vehicle's full quickest plan over its onboard
// dropoffs and pending pickups (used when restoring reshuffled orders).
func optimizePlan(sp roadnet.SPFunc, node roadnet.NodeID, now float64, onboard, pending []*model.Order) (*model.RoutePlan, float64, bool) {
	return routing.Optimize(sp, node, now, onboard, pending)
}
