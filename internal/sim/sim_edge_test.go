package sim

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/roadnet"
)

// TestMultiWindowPrepWait: the vehicle reaches the restaurant long before
// the food is ready and must idle across several accumulation windows.
func TestMultiWindowPrepWait(t *testing.T) {
	g := lineCity(10, 30)
	o := mkOrder(1, 1, 5, 0, 900) // 15 min prep
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig() // 60 s windows
	m := runSim(t, g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 3600)
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	if o.PickedUpAt != 900 {
		t.Fatalf("picked up at %v, want 900 (ReadyAt across many windows)", o.PickedUpAt)
	}
	// Arrived at 90 (assigned at 60, one hop 30 s); waited 810 s.
	if math.Abs(m.WaitSec-810) > 1e-6 {
		t.Fatalf("wait = %v, want 810", m.WaitSec)
	}
}

// TestShiftEndMidDelivery: a vehicle whose shift ends while carrying an
// order still completes the delivery, but takes no new work.
func TestShiftEndMidDelivery(t *testing.T) {
	g := lineCity(30, 60)
	o1 := mkOrder(1, 2, 20, 0, 60)
	o2 := mkOrder(2, 2, 21, 700, 60) // placed after the shift ends
	v := model.NewVehicle(1, 0, 3)
	v.ActiveTo = 600 // shift ends during o1's delivery
	cfg := testConfig()
	m := runSim(t, g, []*model.Order{o1, o2}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 3600)
	if o1.State != model.OrderDelivered {
		t.Fatalf("in-flight order not completed after shift end: %v", o1.State)
	}
	if o2.State == model.OrderDelivered {
		t.Fatal("off-shift vehicle accepted new work")
	}
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1 (the post-shift order)", m.Rejected)
	}
}

// TestStrandedOrderOnOneWayTrap: failure injection — the customer is
// reachable for assignment purposes (within SPBound) but the graph traps
// the vehicle. Here the customer is genuinely unreachable from the
// restaurant; the order must be counted stranded/rejected, never delivered,
// and the simulator must not wedge.
func TestStrandedOrderOnOneWayTrap(t *testing.T) {
	b := roadnet.NewBuilder()
	a := b.AddNode(geo.Point{Lat: 0})
	r := b.AddNode(geo.Point{Lat: 0.001})
	c := b.AddNode(geo.Point{Lat: 0.002})
	b.AddEdge(a, r, 100, 30, 0)
	b.AddEdge(r, a, 100, 30, 0)
	b.AddEdge(c, r, 100, 30, 0) // one-way: c -> r only
	g := b.MustBuild()
	o := &model.Order{ID: 1, Restaurant: r, Customer: c, PlacedAt: 0, Items: 1, Prep: 30, AssignedTo: -1}
	v := model.NewVehicle(1, a, 3)
	cfg := testConfig()
	s, err := New(g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, Options{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run(0, 3600)
	if o.State == model.OrderDelivered {
		t.Fatal("undeliverable order delivered")
	}
	if m.Delivered != 0 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	if m.Rejected+m.Stranded != 1 {
		t.Fatalf("order unaccounted: rejected=%d stranded=%d", m.Rejected, m.Stranded)
	}
}

// TestSingleOrderModeVehiclesServeOneAtATime verifies the vanilla-KM
// availability rule end to end: with two orders and one vehicle, the
// second order is only assigned after the first is delivered.
func TestSingleOrderModeVehiclesServeOneAtATime(t *testing.T) {
	g := lineCity(20, 30)
	o1 := mkOrder(1, 2, 6, 0, 60)
	o2 := mkOrder(2, 2, 7, 0, 60)
	v := model.NewVehicle(1, 0, 3)
	cfg := policy.ConfigureVanillaKM(testConfig())
	m := runSim(t, g, []*model.Order{o1, o2}, []*model.Vehicle{v}, policy.NewVanillaKM(), cfg, 7200)
	if m.Delivered != 2 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	first, second := o1, o2
	if o2.AssignedAt < o1.AssignedAt {
		first, second = o2, o1
	}
	if second.AssignedAt < first.DeliveredAt {
		t.Fatalf("single-order KM overlapped deliveries: second assigned %v before first delivered %v",
			second.AssignedAt, first.DeliveredAt)
	}
}

// TestIncumbentStickinessUnderTies: with reshuffling on and two equally
// good vehicles, the assignment must not bounce between them.
func TestIncumbentStickinessUnderTies(t *testing.T) {
	g := lineCity(41, 60)
	// Restaurant exactly midway between two vehicles; long prep keeps the
	// order pending across many windows.
	o := mkOrder(1, 20, 25, 0, 1500)
	v1 := model.NewVehicle(1, 0, 3)
	v2 := model.NewVehicle(2, 40, 3)
	cfg := testConfig()
	s, err := New(g, []*model.Order{o}, []*model.Vehicle{v1, v2}, policy.NewFoodMatch(), cfg, Options{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run(0, 2*3600)
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	if m.Reassignments > 1 {
		t.Fatalf("tie-churn: %d reassignments for a symmetric instance", m.Reassignments)
	}
}

// TestOrdersAccountedAcrossPolicies fuzzes a moderate scenario per policy
// and checks global conservation: every admitted order ends delivered,
// rejected, or stranded.
func TestOrdersAccountedAcrossPolicies(t *testing.T) {
	for _, mk := range []func() policy.Policy{
		func() policy.Policy { return policy.NewFoodMatch() },
		func() policy.Policy { return policy.NewGreedy() },
		func() policy.Policy { return policy.NewReyes() },
		func() policy.Policy { return policy.NewVanillaKM() },
	} {
		pol := mk()
		g := lineCity(50, 45)
		var orders []*model.Order
		for i := 0; i < 30; i++ {
			orders = append(orders, mkOrder(model.OrderID(i+1),
				roadnet.NodeID(5+(i*7)%40), roadnet.NodeID(3+(i*11)%45),
				float64(i*45), float64(120+(i*60)%600)))
		}
		var fleet []*model.Vehicle
		for i := 0; i < 4; i++ {
			fleet = append(fleet, model.NewVehicle(model.VehicleID(i+1), roadnet.NodeID(i*12), 3))
		}
		cfg := testConfig()
		if pol.Name() == "KM" {
			policy.ConfigureVanillaKM(cfg)
		}
		m := runSim(t, g, orders, fleet, pol, cfg, 3*3600)
		if m.Delivered+m.Rejected+m.Stranded != m.TotalOrders {
			t.Fatalf("%s: conservation broken: %s", pol.Name(), m.Summary())
		}
		for _, o := range orders {
			if o.State == model.OrderDelivered {
				if o.DeliveredAt < o.PickedUpAt || o.PickedUpAt < o.ReadyAt()-1e-9 {
					t.Fatalf("%s: causality broken for order %d: picked %v ready %v delivered %v",
						pol.Name(), o.ID, o.PickedUpAt, o.ReadyAt(), o.DeliveredAt)
				}
			}
		}
	}
}

// TestDistanceMonotoneInLoad: the O/Km numerator can never exceed
// MAXO times the denominator.
func TestDistanceLoadBound(t *testing.T) {
	g := lineCity(40, 45)
	var orders []*model.Order
	for i := 0; i < 20; i++ {
		orders = append(orders, mkOrder(model.OrderID(i+1),
			roadnet.NodeID(10+(i*3)%20), roadnet.NodeID(15+(i*7)%25), float64(i*30), 300))
	}
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	m := runSim(t, g, orders, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 3*3600)
	if okm := m.OrdersPerKm(); okm > float64(cfg.MaxO) {
		t.Fatalf("O/Km %v exceeds MAXO %d", okm, cfg.MaxO)
	}
	for load, d := range m.LoadDistM {
		if load > cfg.MaxO && d > 0 {
			t.Fatalf("distance recorded at impossible load %d", load)
		}
	}
}

// TestDecisionGraphSeparation: the policy decides on a slower decision
// graph while execution runs on the true one — deliveries still complete
// and realised XDT reflects the true network.
func TestDecisionGraphSeparation(t *testing.T) {
	g := lineCity(20, 30)
	slow := lineCity(20, 90) // pessimistic decision weights, same topology
	o := mkOrder(1, 5, 10, 10, 120)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	s, err := New(g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg,
		Options{Quiet: true, DecisionGraph: slow})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run(0, 3600)
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	// Realised timings come from the true 30 s/hop graph: same as the
	// baseline scenario in TestSingleOrderDelivered.
	if o.DeliveredAt != 360 {
		t.Fatalf("delivered at %v, want 360 (true-graph execution)", o.DeliveredAt)
	}
}

func TestDecisionGraphMismatchRejected(t *testing.T) {
	g := lineCity(20, 30)
	other := lineCity(5, 30)
	if _, err := New(g, nil, nil, policy.NewFoodMatch(), testConfig(),
		Options{DecisionGraph: other}); err == nil {
		t.Fatal("mismatched decision graph accepted")
	}
}

// TestMetricsReportingPaths exercises the summary/report helpers.
func TestMetricsReportingPaths(t *testing.T) {
	g := lineCity(20, 30)
	o := mkOrder(1, 5, 10, 12*3600, 120) // noon = peak slot
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	cfg.ComputeBudget = 1e-12
	s, err := New(g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, Options{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run(12*3600, 13*3600)
	if m.Summary() == "" {
		t.Fatal("empty summary")
	}
	if m.PeakOverflowRate() <= 0 {
		t.Fatal("noon windows should overflow the impossible budget")
	}
	if m.MeanDeliveryMin() <= 0 || m.MeanXDTMin() < -60 {
		t.Fatalf("delivery stats implausible: %v / %v", m.MeanDeliveryMin(), m.MeanXDTMin())
	}
	if m.SlotOrdersPerKm(12) < 0 {
		t.Fatal("negative slot O/Km")
	}
	if m.AssignSecMax < 0 {
		t.Fatal("negative max assign time")
	}
}
