package sim

import (
	"testing"

	"repro/internal/gps"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// TestScenarioWeightsMoveMetrics is the acceptance check that slot-varying
// true weights change outcomes measurably: the same order stream under the
// same policy delivers slower (higher mean XDT) when the true city is
// slowed by a dinner-rush scenario the decision plane knows nothing about.
func TestScenarioWeightsMoveMetrics(t *testing.T) {
	city := workload.MustPreset("CityA", workload.DefaultScale, 1)
	start, end := 18.5*3600, 19.5*3600

	run := func(trueG *roadnet.Graph, opts Options) *Metrics {
		orders := workload.OrderStreamWindow(city, 1, start, end)
		fleet := city.Fleet(1.0, 3, 1)
		cfg := testConfig()
		opts.Quiet = true
		s, err := New(trueG, orders, fleet, policy.NewFoodMatch(), cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(start, end)
	}

	base := run(city.G, Options{})
	rushG := workload.DinnerRush(1.8).Apply(city.G)
	// The policy still *believes* the dry profile: decisions on city.G,
	// movement on the rushed reality — stale-weight operation.
	rushed := run(rushG, Options{DecisionGraph: city.G})

	if base.Delivered == 0 || rushed.Delivered == 0 {
		t.Fatalf("degenerate runs: delivered %d vs %d", base.Delivered, rushed.Delivered)
	}
	baseXDT := base.XDTSec / float64(base.Delivered)
	rushXDT := rushed.XDTSec / float64(rushed.Delivered)
	t.Logf("mean XDT: dry %.0fs, dinner-rush(1.8, stale weights) %.0fs; delivered %d vs %d",
		baseXDT, rushXDT, base.Delivered, rushed.Delivered)
	if !(rushXDT > baseXDT*1.05) {
		t.Fatalf("dinner rush did not move XDT measurably: %.1f vs %.1f", rushXDT, baseXDT)
	}
}

// TestSimLearnerClosesLoop runs the offline form of the live pipeline: a
// replay on a rained-on reality with Options.Learner collecting edge
// traversals, whose exported weights — applied to the dry prior via
// Reweighted — must reproduce the rained-on β on every observed cell.
func TestSimLearnerClosesLoop(t *testing.T) {
	city := workload.MustPreset("CityA", workload.DefaultScale, 1)
	start, end := 19.0*3600, 19.5*3600
	rainG := workload.Rain(1.5).Apply(city.G)
	learner := gps.NewStreamLearner(rainG, gps.StreamOptions{})

	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, 3, 1)
	s, err := New(rainG, orders, fleet, policy.NewFoodMatch(), testConfig(),
		Options{Quiet: true, DecisionGraph: city.G, Learner: learner})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(start, end)

	st := learner.Stats()
	if st.Samples == 0 {
		t.Fatal("simulator fed the learner nothing")
	}
	w := learner.Weights(1)
	if w.Cells() == 0 {
		t.Fatal("no learned cells")
	}
	learned := city.G.Reweighted(w)
	checked := 0
	for u := 0; u < rainG.NumNodes(); u++ {
		rEdges := rainG.OutEdges(roadnet.NodeID(u))
		lEdges := learned.OutEdges(roadnet.NodeID(u))
		for i := range rEdges {
			for slot := 0; slot < roadnet.SlotsPerDay; slot++ {
				if _, ok := w.Get(roadnet.NodeID(u), rEdges[i].To, slot); !ok {
					continue
				}
				trueBeta := rainG.EdgeTimeSlot(rEdges[i], slot)
				got := learned.EdgeTimeSlot(lEdges[i], slot)
				if diff := got - trueBeta; diff > 1e-6*trueBeta+1e-9 || diff < -(1e-6*trueBeta+1e-9) {
					t.Fatalf("cell %d->%d slot %d: learned %v, true %v",
						u, rEdges[i].To, slot, got, trueBeta)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("nothing verified")
	}
	t.Logf("verified %d learned cells against the rained-on reality (samples=%d)", checked, st.Samples)
}
