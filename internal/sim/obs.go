package sim

import (
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// RoundTelemetry summarises one simulator window for Options.OnRound: the
// offline mirror of the engine's RoundStats span tree. Phases names the
// window's phase vocabulary — inject, advance, assign (with per-stage
// pipeline children when the policy implements pipeline.StatsSource),
// apply, replan.
type RoundTelemetry struct {
	// T is the simulation clock the window closed at.
	T float64 `json:"t"`
	// PoolSize / Vehicles / Assigned are |O(ℓ)|, |V(ℓ)| and the number of
	// assignment decisions of the window.
	PoolSize int `json:"pool"`
	Vehicles int `json:"vehicles"`
	Assigned int `json:"assigned"`
	// LatencySec is the policy's Assign wall time (the window's dominant
	// cost; the full phase breakdown is in Phases).
	LatencySec float64 `json:"latency_sec"`
	// Phases is the window's span tree.
	Phases []obs.Phase `json:"phases"`
}

// assignSpan builds the assign phase with per-stage children when the
// policy records pipeline stage stats.
func assignSpan(assignSec float64, pol any) obs.Phase {
	span := obs.Phase{Name: "assign", DurSec: assignSec}
	if src, ok := pol.(pipeline.StatsSource); ok {
		st := src.LastStats()
		if st.TotalSec() > 0 {
			span.Children = []obs.Phase{
				{Name: "batch", DurSec: st.BatchSec},
				{Name: "sparsify", DurSec: st.SparsifySec},
				{Name: "reshuffle", DurSec: st.ReshuffleSec},
				{Name: "match", DurSec: st.MatchSec},
			}
		}
	}
	return span
}
