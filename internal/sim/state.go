package sim

import (
	"fmt"

	"repro/internal/roadnet"
)

// MotionState is the serialisable form of a Motion's movement bookkeeping:
// the residual node path of the current leg and the vehicle's progress along
// the edge it is currently driving. Together with the Vehicle's own fields
// (Node, Plan, Onboard, Pending) it is everything needed to resume movement
// mid-leg after an engine restart — a restored vehicle finishes the edge it
// was on instead of snapping back to its last node.
type MotionState struct {
	// Path is the remaining node path of the current leg; Path[0] is the
	// node being driven towards. Empty when parked or between legs.
	Path []roadnet.NodeID `json:"path,omitempty"`
	// EdgeRemaining/EdgeTotal/EdgeLenM describe progress on the edge
	// V.Node -> Path[0]; EdgeFrom/EdgeEnterT record where and when the
	// vehicle entered it.
	EdgeRemaining float64        `json:"edge_remaining,omitempty"`
	EdgeTotal     float64        `json:"edge_total,omitempty"`
	EdgeLenM      float64        `json:"edge_len_m,omitempty"`
	EdgeFrom      roadnet.NodeID `json:"edge_from,omitempty"`
	EdgeEnterT    float64        `json:"edge_enter_t,omitempty"`
}

// ExportState snapshots the motion's movement bookkeeping. The caller must
// not be advancing the motion concurrently (the engine exports at the round
// barrier, where each motion is quiescent).
func (mo *Motion) ExportState() MotionState {
	st := MotionState{
		EdgeRemaining: mo.edgeRemaining,
		EdgeTotal:     mo.edgeTotal,
		EdgeLenM:      mo.edgeLenM,
		EdgeFrom:      mo.edgeFrom,
		EdgeEnterT:    mo.edgeEnterT,
	}
	if len(mo.path) > 0 {
		st.Path = append([]roadnet.NodeID(nil), mo.path...)
	}
	return st
}

// ImportState restores movement bookkeeping exported by ExportState. Nodes
// are validated against g (the graph the motion will be advanced on) so a
// checkpoint from a different city cannot install an undrivable path.
func (mo *Motion) ImportState(st MotionState, g *roadnet.Graph) error {
	for _, n := range st.Path {
		if n < 0 || int(n) >= g.NumNodes() {
			return fmt.Errorf("sim: motion state for vehicle %d: path node %d out of range", mo.V.ID, n)
		}
	}
	if st.EdgeRemaining < 0 || st.EdgeTotal < 0 || st.EdgeRemaining > st.EdgeTotal {
		return fmt.Errorf("sim: motion state for vehicle %d: edge progress %v/%v invalid",
			mo.V.ID, st.EdgeRemaining, st.EdgeTotal)
	}
	mo.path = append(mo.path[:0], st.Path...)
	mo.edgeRemaining = st.EdgeRemaining
	mo.edgeTotal = st.EdgeTotal
	mo.edgeLenM = st.EdgeLenM
	mo.edgeFrom = st.EdgeFrom
	mo.edgeEnterT = st.EdgeEnterT
	return nil
}
