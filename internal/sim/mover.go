package sim

import (
	"math"

	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
	"repro/internal/trace"
)

// Motion tracks one vehicle's progress along its route plan: the residual
// node path of the current leg and how far along the current edge the
// vehicle is. It is the movement state shared by the offline Simulator and
// the online dispatch engine.
type Motion struct {
	V *model.Vehicle
	// path holds the remaining nodes of the current leg; path[0] is the node
	// currently being driven towards.
	path []roadnet.NodeID
	// edgeRemaining/edgeTotal/edgeLenM describe progress on the edge
	// V.Node -> path[0]; edgeFrom/edgeEnterT record where and when the
	// vehicle entered it (for the Edge hook's traversal report).
	edgeRemaining float64
	edgeTotal     float64
	edgeLenM      float64
	edgeFrom      roadnet.NodeID
	edgeEnterT    float64
}

// NewMotion wraps a vehicle in a fresh (parked) movement state.
func NewMotion(v *model.Vehicle) *Motion { return &Motion{V: v} }

// NextNode returns the node the vehicle is currently heading towards
// (roadnet.Invalid when idle) — the `dest` of the angular-distance model.
func (mo *Motion) NextNode() roadnet.NodeID {
	if len(mo.path) > 0 {
		return mo.path[0]
	}
	if mo.V.Plan != nil && !mo.V.Plan.Empty() {
		return mo.V.Plan.Stops[0].Node
	}
	return roadnet.Invalid
}

// MidEdge reports whether the vehicle is partway along a road segment.
func (mo *Motion) MidEdge() bool { return mo.edgeRemaining > 0 && len(mo.path) > 0 }

// MoveHooks receives the side effects of vehicle movement. Nil funcs are
// skipped; the callbacks run on whatever goroutine calls Mover.Advance.
type MoveHooks struct {
	// Wait is called when a vehicle idles at a restaurant for sec seconds
	// starting at time t (food not ready).
	Wait func(v *model.Vehicle, sec, t float64)
	// Deliver is called when an order is dropped off at time t.
	Deliver func(o *model.Order, v *model.Vehicle, t float64)
	// Distance is called when a vehicle accrues meters driven while
	// carrying `load` onboard orders, ending at time t.
	Distance func(v *model.Vehicle, meters float64, load int, t float64)
	// Strand is called when an order's route became unreachable and the
	// order was abandoned.
	Strand func(o *model.Order)
	// Edge is called when a vehicle finishes traversing a road segment
	// from -> to, entered at tEnter and taking sec seconds of simulated
	// time. This is the movement plane's GPS analogue — a perfectly
	// map-matched trajectory segment — and is what feeds the online speed
	// learner of the dynamic road network.
	Edge func(v *model.Vehicle, from, to roadnet.NodeID, tEnter, sec float64)
}

// Mover advances vehicles through simulated time on a road network: it
// drives the current leg edge by edge (each edge traversed at the β(e,t) of
// its entry time), waits at restaurants when food is not ready, picks up and
// drops off. Both the offline Simulator and the online engine own one.
//
// A Mover is stateless apart from its configuration; concurrent Advance
// calls on *distinct* Motions are safe as long as the hooks and trace sink
// are safe.
type Mover struct {
	G     *roadnet.Graph
	Trace trace.Sink
	Hooks MoveHooks
}

// NewMover builds a mover over g emitting to sink (nil = discard).
func NewMover(g *roadnet.Graph, sink trace.Sink) *Mover {
	if sink == nil {
		sink = trace.Discard
	}
	return &Mover{G: g, Trace: sink}
}

// Advance moves one vehicle through simulated time [t0, t1).
func (m *Mover) Advance(mo *Motion, t0, t1 float64) {
	v := mo.V
	t := t0
	for t < t1 {
		if v.Plan.Empty() {
			return // idle: vehicles park in place
		}
		stop := v.Plan.Stops[0]

		// At the stop node with no residual path: service the stop.
		if v.Node == stop.Node && len(mo.path) == 0 {
			var done bool
			t, done = m.serviceStop(mo, stop, t, t1)
			if !done {
				return // waiting for food past the window boundary
			}
			continue
		}

		// Need a path for the current leg?
		if len(mo.path) == 0 {
			p := roadnet.Path(m.G, v.Node, stop.Node, t)
			if p == nil {
				// The stop became unreachable (pathological graphs /
				// failure injection): abandon the stop.
				m.abandonStop(mo, stop)
				continue
			}
			mo.path = append(mo.path[:0], p.Nodes[1:]...)
			mo.edgeRemaining = 0
		}

		// Ensure the current edge is initialised.
		if mo.edgeRemaining <= 0 {
			if len(mo.path) == 0 {
				continue // already at stop node; loop back to service it
			}
			e, ok := edgeBetween(m.G, v.Node, mo.path[0])
			if !ok {
				// Path invalidated (cannot happen on immutable graphs, but
				// guard anyway): recompute next iteration.
				mo.path = nil
				continue
			}
			mo.edgeTotal = m.G.EdgeTime(e, t)
			mo.edgeRemaining = mo.edgeTotal
			mo.edgeLenM = float64(e.LenM)
			mo.edgeFrom = v.Node
			mo.edgeEnterT = t
			v.EdgeTo = mo.path[0]
		}

		// Drive as much of the edge as the window allows.
		dt := t1 - t
		if mo.edgeRemaining <= dt {
			t += mo.edgeRemaining
			m.accrueDistance(v, mo.edgeLenM*mo.edgeRemaining/mo.edgeTotal, t)
			v.Node = mo.path[0]
			mo.path = mo.path[1:]
			mo.edgeRemaining = 0
			v.EdgeTo = roadnet.Invalid
			v.EdgeProgress = 0
			if m.Hooks.Edge != nil {
				// Report the time spent *driving* the segment (edgeTotal),
				// not t-edgeEnterT: a reshuffle can freeze a vehicle
				// mid-edge with an empty plan, and the idle gap until its
				// next assignment is not traffic. The slot is attributed at
				// entry, matching the β(e, t) the edge was priced at.
				m.Hooks.Edge(v, mo.edgeFrom, v.Node, mo.edgeEnterT, mo.edgeTotal)
			}
		} else {
			m.accrueDistance(v, mo.edgeLenM*dt/mo.edgeTotal, t1)
			mo.edgeRemaining -= dt
			v.EdgeProgress = mo.edgeTotal - mo.edgeRemaining
			t = t1
		}
	}
}

// SetPlan replaces the vehicle's route plan. A vehicle mid-edge finishes
// that road segment before rerouting (it cannot teleport back to the
// segment's start); resetting its progress every window would systematically
// slow every reshuffled vehicle.
func (m *Mover) SetPlan(mo *Motion, plan *model.RoutePlan) {
	v := mo.V
	v.Plan = plan.Clone()
	if mo.MidEdge() {
		// Keep only the in-progress edge; the leg to the new first stop is
		// recomputed from its far end.
		mo.path = mo.path[:1]
		v.EdgeTo = mo.path[0]
	} else {
		mo.path = nil
		mo.edgeRemaining = 0
		mo.edgeTotal = 0
		mo.edgeLenM = 0
		v.EdgeTo = roadnet.Invalid
		v.EdgeProgress = 0
	}
}

// Relocate teleports an idle vehicle to a node (GPS ping snap). It refuses
// to move a vehicle that has a live plan — position then comes from
// movement, not pings — and resets any stale edge progress.
func (m *Mover) Relocate(mo *Motion, node roadnet.NodeID) bool {
	v := mo.V
	if !v.Plan.Empty() || len(mo.path) > 0 {
		return false
	}
	v.Node = node
	v.EdgeTo = roadnet.Invalid
	v.EdgeProgress = 0
	mo.edgeRemaining = 0
	mo.edgeTotal = 0
	mo.edgeLenM = 0
	return true
}

// serviceStop handles a pickup or dropoff at the current node. It returns
// the advanced clock and whether the stop completed (false: still waiting
// for food at the window boundary).
func (m *Mover) serviceStop(mo *Motion, stop model.Stop, t, t1 float64) (float64, bool) {
	v := mo.V
	o := stop.Order
	switch stop.Kind {
	case model.Pickup:
		if o.State != model.OrderAssigned || o.AssignedTo != v.ID {
			// The order was reshuffled away or rejected after this plan was
			// made; skip the stale stop.
			popStop(v)
			return t, true
		}
		ready := o.ReadyAt()
		if t < ready {
			wait := math.Min(ready, t1) - t
			v.WaitSec += wait
			if m.Hooks.Wait != nil {
				m.Hooks.Wait(v, wait, t)
			}
			if ready > t1 {
				return t1, false
			}
			t = ready
		}
		o.State = model.OrderPickedUp
		o.PickedUpAt = t
		removeOrder(&v.Pending, o.ID)
		v.Onboard = append(v.Onboard, o)
		popStop(v)
		m.Trace.Emit(trace.Event{Kind: trace.OrderPickedUp, T: t, Order: o.ID, Vehicle: v.ID})
		return t, true

	case model.Dropoff:
		if o.State != model.OrderPickedUp || o.AssignedTo != v.ID {
			popStop(v)
			return t, true
		}
		o.State = model.OrderDelivered
		o.DeliveredAt = t
		removeOrder(&v.Onboard, o.ID)
		popStop(v)
		if m.Hooks.Deliver != nil {
			m.Hooks.Deliver(o, v, t)
		}
		m.Trace.Emit(trace.Event{Kind: trace.OrderDelivered, T: t, Order: o.ID, Vehicle: v.ID})
		return t, true
	}
	popStop(v)
	return t, true
}

// abandonStop drops an unreachable stop, stranding its order when that was
// the order's only delivery hope.
func (m *Mover) abandonStop(mo *Motion, stop model.Stop) {
	v := mo.V
	o := stop.Order
	popStop(v)
	switch stop.Kind {
	case model.Pickup:
		removeOrder(&v.Pending, o.ID)
		// Also remove the matching dropoff from the plan.
		if v.Plan != nil {
			stops := v.Plan.Stops[:0]
			for _, st := range v.Plan.Stops {
				if st.Order.ID != o.ID {
					stops = append(stops, st)
				}
			}
			v.Plan.Stops = stops
		}
		o.State = model.OrderRejected
		o.AssignedTo = -1
		if m.Hooks.Strand != nil {
			m.Hooks.Strand(o)
		}
	case model.Dropoff:
		removeOrder(&v.Onboard, o.ID)
		o.State = model.OrderRejected
		if m.Hooks.Strand != nil {
			m.Hooks.Strand(o)
		}
	}
	mo.path = nil
	mo.edgeRemaining = 0
}

func popStop(v *model.Vehicle) {
	v.Plan.Stops = v.Plan.Stops[1:]
}

// accrueDistance books metres driven at the vehicle's current load.
func (m *Mover) accrueDistance(v *model.Vehicle, meters, t float64) {
	if meters <= 0 {
		return
	}
	load := len(v.Onboard)
	if load >= len(v.DistByLoad) {
		load = len(v.DistByLoad) - 1
	}
	v.DistM += meters
	v.DistByLoad[load] += meters
	if m.Hooks.Distance != nil {
		m.Hooks.Distance(v, meters, load, t)
	}
}

// edgeBetween finds the cheapest edge u -> w (parallel edges resolved by
// free-flow time).
func edgeBetween(g *roadnet.Graph, u, w roadnet.NodeID) (roadnet.Edge, bool) {
	var best roadnet.Edge
	found := false
	for _, e := range g.OutEdges(u) {
		if e.To == w && (!found || e.BaseSec < best.BaseSec) {
			best = e
			found = true
		}
	}
	return best, found
}

func removeOrder(list *[]*model.Order, id model.OrderID) {
	ls := *list
	for i, o := range ls {
		if o.ID == id {
			*list = append(ls[:i], ls[i+1:]...)
			return
		}
	}
}

// OptimizeDropoffs plans the remaining dropoffs for a vehicle's onboard
// orders (used after reshuffling strips its pending pickups).
func OptimizeDropoffs(sp roadnet.SPFunc, node roadnet.NodeID, now float64, onboard []*model.Order) (*model.RoutePlan, float64, bool) {
	return routing.Optimize(sp, node, now, onboard, nil)
}

// OptimizePlan rebuilds a vehicle's full quickest plan over its onboard
// dropoffs and pending pickups (used when restoring reshuffled orders).
func OptimizePlan(sp roadnet.SPFunc, node roadnet.NodeID, now float64, onboard, pending []*model.Order) (*model.RoutePlan, float64, bool) {
	return routing.Optimize(sp, node, now, onboard, pending)
}
