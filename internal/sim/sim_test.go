package sim

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// lineCity builds a 1-D road: nodes 0..n-1, hop time w seconds, hop length
// w*8 metres (≈ 8 m/s).
func lineCity(n int, w float64) *roadnet.Graph {
	b := roadnet.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{Lat: 12.9 + float64(i)*0.001, Lon: 77.5})
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(roadnet.NodeID(i), roadnet.NodeID(i+1), w*8, w, 0)
		b.AddEdge(roadnet.NodeID(i+1), roadnet.NodeID(i), w*8, w, 0)
	}
	return b.MustBuild()
}

func testConfig() *model.Config {
	cfg := model.DefaultConfig()
	cfg.Delta = 60
	return cfg
}

func mkOrder(id model.OrderID, r, c roadnet.NodeID, placed, prep float64) *model.Order {
	return &model.Order{ID: id, Restaurant: r, Customer: c, PlacedAt: placed, Items: 1, Prep: prep, AssignedTo: -1}
}

func runSim(t *testing.T, g *roadnet.Graph, orders []*model.Order, vehicles []*model.Vehicle, pol policy.Policy, cfg *model.Config, horizon float64) *Metrics {
	t.Helper()
	s, err := New(g, orders, vehicles, pol, cfg, Options{Quiet: true})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	m := s.Run(0, horizon)
	if err := m.Validate(); err != nil {
		t.Fatalf("metrics inconsistent: %v", err)
	}
	return m
}

func TestSingleOrderDelivered(t *testing.T) {
	g := lineCity(20, 30) // 30 s per hop
	o := mkOrder(1, 5, 10, 10, 120)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	m := runSim(t, g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 3600)

	if m.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (state=%v)", m.Delivered, o.State)
	}
	if o.State != model.OrderDelivered {
		t.Fatalf("order state = %v", o.State)
	}
	// Assignment at first window end (t=60); vehicle drives 5 hops = 150 s
	// to the restaurant, food ready at 130 → no wait; 5 hops to customer.
	if o.PickedUpAt != 210 {
		t.Fatalf("picked up at %v, want 210", o.PickedUpAt)
	}
	if o.DeliveredAt != 360 {
		t.Fatalf("delivered at %v, want 360", o.DeliveredAt)
	}
	// SDT = 120 + 150 = 270; delivery time = 350; XDT = 80.
	if math.Abs(o.XDT()-80) > 1e-9 {
		t.Fatalf("XDT = %v, want 80", o.XDT())
	}
	if math.Abs(m.XDTSec-80) > 1e-9 {
		t.Fatalf("metrics XDT = %v, want 80", m.XDTSec)
	}
	// Distance: 10 hops × 240 m. First 5 hops empty, last 5 loaded with 1.
	if math.Abs(m.DistM-2400) > 1 {
		t.Fatalf("distance = %v, want 2400", m.DistM)
	}
	if math.Abs(m.LoadDistM[0]-1200) > 1 || math.Abs(m.LoadDistM[1]-1200) > 1 {
		t.Fatalf("load split = %v", m.LoadDistM)
	}
	if math.Abs(m.OrdersPerKm()-0.5) > 1e-9 {
		t.Fatalf("O/Km = %v, want 0.5", m.OrdersPerKm())
	}
}

func TestWaitingTimeAccrues(t *testing.T) {
	g := lineCity(10, 30)
	// Vehicle adjacent to the restaurant; long prep forces a wait.
	o := mkOrder(1, 1, 5, 0, 600)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	m := runSim(t, g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 3600)
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	// Assigned at 60, arrives at 90, food ready at 600 → waits 510 s.
	if math.Abs(m.WaitSec-510) > 1e-6 {
		t.Fatalf("wait = %v, want 510", m.WaitSec)
	}
	if o.PickedUpAt != 600 {
		t.Fatalf("picked up at %v, want 600 (ReadyAt)", o.PickedUpAt)
	}
}

func TestRejectionAfterDeadline(t *testing.T) {
	g := lineCity(10, 300) // 5 min per hop
	// The restaurant is 4 hops = 20 min from the only vehicle; with a
	// first-mile cap of 10 min no vehicle may take the order, so it rots
	// past the 30-minute deadline and is rejected.
	o := mkOrder(1, 4, 8, 0, 60)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	cfg.MaxFirstMile = 600
	m := runSim(t, g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 3600)
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1 (state %v)", m.Rejected, o.State)
	}
	if o.State != model.OrderRejected {
		t.Fatalf("state = %v, want rejected", o.State)
	}
	if m.RejectionPenaltySec != cfg.Omega {
		t.Fatalf("penalty = %v, want Ω", m.RejectionPenaltySec)
	}
}

func TestBatchingSharesVehicle(t *testing.T) {
	g := lineCity(30, 30)
	// Two same-restaurant orders to neighbouring customers; one distant
	// vehicle: both should ride together.
	o1 := mkOrder(1, 10, 20, 0, 300)
	o2 := mkOrder(2, 10, 21, 5, 300)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	m := runSim(t, g, []*model.Order{o1, o2}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 7200)
	if m.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", m.Delivered)
	}
	if o1.AssignedTo != o2.AssignedTo {
		t.Fatal("orders not batched onto the same vehicle")
	}
	if m.OrdersPerKm() <= 0.5 {
		t.Fatalf("O/Km = %v; batching should beat the solo 0.5", m.OrdersPerKm())
	}
}

func TestGreedyDeliversToo(t *testing.T) {
	g := lineCity(30, 30)
	o1 := mkOrder(1, 10, 20, 0, 300)
	o2 := mkOrder(2, 12, 25, 5, 300)
	v1 := model.NewVehicle(1, 0, 3)
	v2 := model.NewVehicle(2, 29, 3)
	cfg := testConfig()
	m := runSim(t, g, []*model.Order{o1, o2}, []*model.Vehicle{v1, v2}, policy.NewGreedy(), cfg, 7200)
	if m.Delivered != 2 {
		t.Fatalf("Greedy delivered %d of 2", m.Delivered)
	}
}

func TestReyesDeliversToo(t *testing.T) {
	g := lineCity(30, 30)
	o1 := mkOrder(1, 10, 20, 0, 300)
	o2 := mkOrder(2, 10, 25, 5, 300)
	v1 := model.NewVehicle(1, 0, 3)
	v2 := model.NewVehicle(2, 29, 3)
	cfg := testConfig()
	m := runSim(t, g, []*model.Order{o1, o2}, []*model.Vehicle{v1, v2}, policy.NewReyes(), cfg, 7200)
	if m.Delivered != 2 {
		t.Fatalf("Reyes delivered %d of 2", m.Delivered)
	}
}

func TestReshuffleImprovesAssignment(t *testing.T) {
	// An order is assigned to a distant vehicle; a much closer vehicle
	// frees up in the next window (new vehicle shift) — reshuffling should
	// let the order switch vehicles before pickup.
	g := lineCity(60, 60) // 1 min per hop
	o := mkOrder(1, 30, 35, 0, 1200)
	far := model.NewVehicle(1, 0, 3)
	near := model.NewVehicle(2, 29, 3)
	near.ActiveFrom = 90 // appears after the first assignment round
	cfg := testConfig()
	m := runSim(t, g, []*model.Order{o}, []*model.Vehicle{far, near}, policy.NewFoodMatch(), cfg, 2*3600)
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	if o.AssignedTo != near.ID {
		t.Fatalf("order stuck on far vehicle %d; reshuffle failed", o.AssignedTo)
	}
}

func TestNoReshuffleKeepsFirstAssignment(t *testing.T) {
	g := lineCity(60, 60)
	o := mkOrder(1, 30, 35, 0, 1200)
	far := model.NewVehicle(1, 0, 3)
	near := model.NewVehicle(2, 29, 3)
	near.ActiveFrom = 90
	cfg := testConfig()
	cfg.Reshuffle = false
	m := runSim(t, g, []*model.Order{o}, []*model.Vehicle{far, near}, policy.NewFoodMatch(), cfg, 2*3600)
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	if o.AssignedTo != far.ID {
		t.Fatalf("order moved to %d despite reshuffling disabled", o.AssignedTo)
	}
}

func TestVehicleCapacityNeverExceeded(t *testing.T) {
	g := lineCity(30, 20)
	var orders []*model.Order
	for i := 0; i < 12; i++ {
		orders = append(orders, mkOrder(model.OrderID(i+1), roadnet.NodeID(10+i%5), roadnet.NodeID(20+i%5), float64(i*10), 300))
	}
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	s, err := New(g, orders, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, Options{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	// Step manually and check the invariant after every window.
	done := make(chan *Metrics, 1)
	go func() { done <- s.Run(0, 3600) }()
	m := <-done
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.OrderCount() != 0 {
		t.Fatalf("vehicle still carries %d orders after drain", v.OrderCount())
	}
	if m.Delivered+m.Rejected+m.Stranded != len(orders) {
		t.Fatalf("orders unaccounted: delivered %d rejected %d stranded %d of %d",
			m.Delivered, m.Rejected, m.Stranded, len(orders))
	}
}

func TestOverflowAccounting(t *testing.T) {
	g := lineCity(20, 30)
	o := mkOrder(1, 5, 10, 10, 120)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	cfg.ComputeBudget = 1e-12 // everything overflows
	m := runSim(t, g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, 1800)
	if m.OverflownWindows == 0 {
		t.Fatal("no overflow recorded with an impossible budget")
	}
	if m.OverflowRate() <= 0 || m.OverflowRate() > 1 {
		t.Fatalf("overflow rate = %v", m.OverflowRate())
	}
}

func TestInvalidVehicleNode(t *testing.T) {
	g := lineCity(5, 30)
	v := model.NewVehicle(1, 99, 3)
	if _, err := New(g, nil, []*model.Vehicle{v}, policy.NewFoodMatch(), testConfig(), Options{}); err == nil {
		t.Fatal("off-graph vehicle accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	g := lineCity(5, 30)
	cfg := testConfig()
	cfg.Delta = 0
	if _, err := New(g, nil, nil, policy.NewFoodMatch(), cfg, Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestZeroVehiclesRejectsEverything(t *testing.T) {
	g := lineCity(10, 30)
	orders := []*model.Order{mkOrder(1, 1, 5, 0, 60), mkOrder(2, 2, 6, 0, 60)}
	cfg := testConfig()
	m := runSim(t, g, orders, nil, policy.NewFoodMatch(), cfg, 7200)
	if m.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", m.Rejected)
	}
	if m.Delivered != 0 {
		t.Fatalf("delivered = %d with no vehicles", m.Delivered)
	}
}

func TestVanillaKMDisablesBatching(t *testing.T) {
	g := lineCity(30, 30)
	// Two same-restaurant orders, one vehicle: KM can serve only one at a
	// time (no batching), the other waits for reshuffle-less next windows.
	o1 := mkOrder(1, 10, 20, 0, 300)
	o2 := mkOrder(2, 10, 21, 0, 300)
	v := model.NewVehicle(1, 0, 3)
	cfg := policy.ConfigureVanillaKM(testConfig())
	m := runSim(t, g, []*model.Order{o1, o2}, []*model.Vehicle{v}, policy.NewVanillaKM(), cfg, 7200)
	if m.Delivered != 2 {
		t.Fatalf("KM delivered %d", m.Delivered)
	}
	// Without batching the first window can assign only one order.
	if o1.AssignedAt == o2.AssignedAt {
		t.Fatal("vanilla KM assigned both orders in one window to one vehicle (batching leaked)")
	}
}

func TestMetricsSlotAttribution(t *testing.T) {
	g := lineCity(20, 30)
	// Order placed at 13:00 (slot 13).
	o := mkOrder(1, 5, 10, 13*3600+10, 120)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	s, err := New(g, []*model.Order{o}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, Options{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run(13*3600, 14*3600)
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	if m.SlotDelivered[13] != 1 || m.SlotOrders[13] != 1 {
		t.Fatalf("slot attribution wrong: delivered %v orders %v", m.SlotDelivered, m.SlotOrders)
	}
	if m.SlotXDTSec[13] != m.XDTSec {
		t.Fatalf("slot XDT %v != total %v", m.SlotXDTSec[13], m.XDTSec)
	}
}

func TestDeterministicRuns(t *testing.T) {
	build := func() *Metrics {
		g := lineCity(40, 30)
		var orders []*model.Order
		for i := 0; i < 10; i++ {
			orders = append(orders, mkOrder(model.OrderID(i+1),
				roadnet.NodeID(5+i*3%30), roadnet.NodeID(8+i*7%30), float64(i*30), 300))
		}
		vs := []*model.Vehicle{model.NewVehicle(1, 0, 3), model.NewVehicle(2, 39, 3)}
		cfg := testConfig()
		s, err := New(g, orders, vs, policy.NewFoodMatch(), cfg, Options{Quiet: true})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(0, 3600)
	}
	m1, m2 := build(), build()
	if m1.XDTSec != m2.XDTSec || m1.DistM != m2.DistM || m1.WaitSec != m2.WaitSec {
		t.Fatalf("simulation not deterministic: %v vs %v", m1.Summary(), m2.Summary())
	}
}

func TestTraceIntegration(t *testing.T) {
	g := lineCity(30, 30)
	o1 := mkOrder(1, 10, 20, 0, 300)
	o2 := mkOrder(2, 10, 21, 5, 300)
	v := model.NewVehicle(1, 0, 3)
	cfg := testConfig()
	rec := trace.NewRecorder()
	s, err := New(g, []*model.Order{o1, o2}, []*model.Vehicle{v}, policy.NewFoodMatch(), cfg, Options{Quiet: true, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run(0, 7200)
	if m.Delivered != 2 {
		t.Fatalf("delivered = %d", m.Delivered)
	}
	sum := rec.Summarise(2700)
	if sum.Orders != 2 || sum.Delivered != 2 {
		t.Fatalf("trace summary = %+v", sum)
	}
	// Timelines must agree with the order structs.
	for _, tl := range rec.Timelines() {
		var o *model.Order
		if tl.Order == 1 {
			o = o1
		} else {
			o = o2
		}
		if tl.PlacedAt != o.PlacedAt || tl.DeliveredAt != o.DeliveredAt || tl.PickedUpAt != o.PickedUpAt {
			t.Fatalf("trace timeline disagrees with order %d: %+v vs %+v", o.ID, tl, o)
		}
		if tl.FinalVehicle() != o.AssignedTo {
			t.Fatalf("final vehicle mismatch for order %d", o.ID)
		}
	}
	// Window events must be present and carry assignment durations.
	found := false
	for _, e := range rec.Snapshot() {
		if e.Kind == trace.WindowClosed && e.Assignments > 0 {
			found = true
			if e.AssignSec < 0 {
				t.Fatal("negative assignment duration")
			}
		}
	}
	if !found {
		t.Fatal("no productive window event recorded")
	}
}
