package sim

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// Metrics aggregates every quantity the paper's evaluation reports, both
// city-wide and per hourly slot.
type Metrics struct {
	// Orders.
	TotalOrders int
	Delivered   int
	Rejected    int
	Stranded    int // orders whose route became unreachable mid-flight (failure injection)

	// XDTSec is Σ extra delivery time over delivered orders (Problem 1's
	// objective without the rejection term); RejectionPenaltySec adds Ω per
	// rejection.
	XDTSec              float64
	RejectionPenaltySec float64
	// DeliverySec is Σ realised delivery times (for mean delivery time).
	DeliverySec float64

	// WaitSec is Σ vehicle idle time at restaurants (the WT metric).
	WaitSec float64

	// SLAViolations counts deliveries that exceeded Options.SLASec
	// (0 when the threshold is disabled).
	SLAViolations int

	// DistM is total metres driven; LoadDistM[k] metres driven while
	// carrying k orders (k ≤ MAXO), the O/Km ingredients.
	DistM     float64
	LoadDistM []float64

	// Reassignments counts reshuffle events where an assigned-but-unpicked
	// order moved to a different vehicle.
	Reassignments int

	// Windows.
	Windows          int
	OverflownWindows int
	AssignSecTotal   float64 // wall-clock seconds spent in policy.Assign
	AssignSecMax     float64

	// Per-slot series (index = hour of day).
	SlotXDTSec       [roadnet.SlotsPerDay]float64
	SlotRejectionSec [roadnet.SlotsPerDay]float64 // Ω attributed to the placement slot
	SlotWaitSec      [roadnet.SlotsPerDay]float64
	SlotDistM        [roadnet.SlotsPerDay]float64
	SlotLoadDistM    [roadnet.SlotsPerDay]float64 // Σ k·distance for O/Km per slot
	SlotDelivered    [roadnet.SlotsPerDay]int
	SlotOrders       [roadnet.SlotsPerDay]int
	SlotWindows      [roadnet.SlotsPerDay]int
	SlotOverflown    [roadnet.SlotsPerDay]int
	SlotAssignSecSum [roadnet.SlotsPerDay]float64
}

// NewMetrics allocates a metrics sink for vehicles carrying up to maxO
// orders.
func NewMetrics(maxO int) *Metrics {
	return &Metrics{LoadDistM: make([]float64, maxO+1)}
}

// XDTHours returns total extra delivery time in hours (the Fig. 6(c) unit).
func (m *Metrics) XDTHours() float64 { return m.XDTSec / 3600 }

// ObjectiveHours returns the Problem 1 objective (XDT + Ω per rejection) in
// hours.
func (m *Metrics) ObjectiveHours() float64 {
	return (m.XDTSec + m.RejectionPenaltySec) / 3600
}

// WaitHours returns total restaurant waiting time in hours (Fig. 6(e)).
func (m *Metrics) WaitHours() float64 { return m.WaitSec / 3600 }

// OrdersPerKm returns Σ k·D_k / Σ D_k (Section V-B's O/Km definition).
func (m *Metrics) OrdersPerKm() float64 {
	num, den := 0.0, 0.0
	for k, d := range m.LoadDistM {
		num += float64(k) * d
		den += d
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// SLAViolationRate returns the fraction of delivered orders that breached
// the Options.SLASec threshold.
func (m *Metrics) SLAViolationRate() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.SLAViolations) / float64(m.Delivered)
}

// RejectionRate returns the fraction of orders rejected.
func (m *Metrics) RejectionRate() float64 {
	if m.TotalOrders == 0 {
		return 0
	}
	return float64(m.Rejected) / float64(m.TotalOrders)
}

// MeanDeliveryMin returns the average realised delivery time in minutes.
func (m *Metrics) MeanDeliveryMin() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return m.DeliverySec / float64(m.Delivered) / 60
}

// MeanXDTMin returns the average per-order XDT in minutes.
func (m *Metrics) MeanXDTMin() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return m.XDTSec / float64(m.Delivered) / 60
}

// OverflowRate returns the fraction of windows whose assignment exceeded the
// compute budget (Fig. 6(f)).
func (m *Metrics) OverflowRate() float64 {
	if m.Windows == 0 {
		return 0
	}
	return float64(m.OverflownWindows) / float64(m.Windows)
}

// PeakOverflowRate restricts OverflowRate to the lunch (12–15) and dinner
// (19–22) slots (Fig. 6(g)).
func (m *Metrics) PeakOverflowRate() float64 {
	wins, over := 0, 0
	for s := 0; s < roadnet.SlotsPerDay; s++ {
		if isPeakSlot(s) {
			wins += m.SlotWindows[s]
			over += m.SlotOverflown[s]
		}
	}
	if wins == 0 {
		return 0
	}
	return float64(over) / float64(wins)
}

// MeanAssignSec returns the average wall-clock seconds per window spent in
// the assignment policy (Fig. 6(h)).
func (m *Metrics) MeanAssignSec() float64 {
	if m.Windows == 0 {
		return 0
	}
	return m.AssignSecTotal / float64(m.Windows)
}

// SlotObjectiveSec returns the per-slot Problem 1 objective: delivered XDT
// plus Ω per rejection, attributed to the placement slot (Fig. 6(i)).
func (m *Metrics) SlotObjectiveSec(slot int) float64 {
	return m.SlotXDTSec[slot] + m.SlotRejectionSec[slot]
}

// SlotOrdersPerKm returns the per-slot O/Km series (Fig. 6(j) ingredient).
func (m *Metrics) SlotOrdersPerKm(slot int) float64 {
	if m.SlotDistM[slot] == 0 {
		return 0
	}
	return m.SlotLoadDistM[slot] / m.SlotDistM[slot]
}

// isPeakSlot marks the lunch and dinner hours the paper calls peak.
func isPeakSlot(s int) bool {
	return (s >= 12 && s <= 14) || (s >= 19 && s <= 21)
}

// Improvement computes the paper's Eq. 9 improvement of `ours` over `base`
// for a lower-is-better metric, in percent.
func Improvement(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - ours) / base * 100
}

// ImprovementHigherBetter is Eq. 9 with the numerator flipped, for
// higher-is-better metrics such as O/Km.
func ImprovementHigherBetter(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return (ours - base) / base * 100
}

// Summary renders a one-line digest for logs.
func (m *Metrics) Summary() string {
	return fmt.Sprintf(
		"orders=%d delivered=%d rejected=%d xdt=%.1fh wt=%.1fh o/km=%.3f overflow=%.0f%% assign=%.0fms/window",
		m.TotalOrders, m.Delivered, m.Rejected, m.XDTHours(), m.WaitHours(),
		m.OrdersPerKm(), 100*m.OverflowRate(), 1000*m.MeanAssignSec())
}

// Validate performs internal consistency checks (used by integration tests).
func (m *Metrics) Validate() error {
	if m.Delivered+m.Rejected+m.Stranded > m.TotalOrders {
		return fmt.Errorf("metrics: delivered %d + rejected %d + stranded %d exceeds total %d",
			m.Delivered, m.Rejected, m.Stranded, m.TotalOrders)
	}
	sum := 0.0
	for _, d := range m.LoadDistM {
		sum += d
	}
	if math.Abs(sum-m.DistM) > 1e-3 {
		return fmt.Errorf("metrics: Σ LoadDistM %.3f != DistM %.3f", sum, m.DistM)
	}
	if m.OverflownWindows > m.Windows {
		return fmt.Errorf("metrics: overflown %d > windows %d", m.OverflownWindows, m.Windows)
	}
	return nil
}
