package sim

import (
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// RoundWorld bundles the mutable world state the end-of-window application
// phase operates on: pooling pending orders for reshuffle, applying the
// policy's assignments, restoring unplaced orders to their incumbents and
// replanning stripped vehicles. The offline Simulator and the online engine
// share this logic so their decisions stay identical round for round; only
// how the policy itself is invoked (single loop vs parallel zone shards)
// differs between them.
type RoundWorld struct {
	ByID    map[model.VehicleID]*Motion
	Motions []*Motion
	Mover   *Mover
	Cfg     *model.Config
	Trace   trace.Sink
	// SPFor returns the distance oracle for planning around a node. The
	// simulator answers every query with one oracle; the engine answers
	// with the node's zone-shard cache.
	SPFor func(roadnet.NodeID) roadnet.SPFunc
}

// ReleasePending implements the reshuffle release (Section IV-D2) for one
// vehicle: its assigned-but-unpicked orders return to the pool, their
// incumbents recorded. Returns the extended order slice and whether
// anything was released. Shared by the offline round (StripPending) and the
// online engine's parallel per-shard phase, so release semantics cannot
// drift between the two.
func ReleasePending(v *model.Vehicle, now float64, sink trace.Sink, orders []*model.Order,
	incumbent map[model.OrderID]model.VehicleID) ([]*model.Order, bool) {
	if len(v.Pending) == 0 {
		return orders, false
	}
	for _, o := range v.Pending {
		o.State = model.OrderPlaced
		incumbent[o.ID] = o.AssignedTo
		o.AssignedTo = -1
		orders = append(orders, o)
		sink.Emit(trace.Event{Kind: trace.OrderReleased, T: now, Order: o.ID, Vehicle: incumbent[o.ID]})
	}
	v.Pending = v.Pending[:0]
	return orders, true
}

// StripPending implements the reshuffle release (Section IV-D2): every
// vehicle's assigned-but-unpicked orders return to the pool. It appends the
// released orders to `orders` and returns the extended slice, the incumbent
// map (order -> vehicle it was stripped from) and the stripped-vehicle set.
func (w *RoundWorld) StripPending(now float64, orders []*model.Order) ([]*model.Order, map[model.OrderID]model.VehicleID, map[model.VehicleID]bool) {
	incumbent := make(map[model.OrderID]model.VehicleID)
	stripped := make(map[model.VehicleID]bool)
	for _, mo := range w.Motions {
		var released bool
		orders, released = ReleasePending(mo.V, now, w.Trace, orders, incumbent)
		if released {
			stripped[mo.V.ID] = true
		}
	}
	return orders, incumbent, stripped
}

// Applied describes one applied assignment decision.
type Applied struct {
	Vehicle *model.Vehicle
	Orders  []model.OrderID
	// ReassignedOrders counts orders that moved off a different incumbent.
	ReassignedOrders int
}

// ApplyAssignments attaches each assignment's orders to its vehicle,
// replaces the vehicle's plan, and records the touched orders/vehicles in
// the provided sets. It returns the applied decisions in input order.
func (w *RoundWorld) ApplyAssignments(now float64, as []policy.Assignment,
	incumbent map[model.OrderID]model.VehicleID,
	assignedOrders map[model.OrderID]bool, assignedVehicles map[model.VehicleID]bool) []Applied {
	applied := make([]Applied, 0, len(as))
	for _, a := range as {
		v := a.Vehicle
		assignedVehicles[v.ID] = true
		ap := Applied{Vehicle: v, Orders: make([]model.OrderID, 0, len(a.Orders))}
		for _, o := range a.Orders {
			o.State = model.OrderAssigned
			if prev, had := incumbent[o.ID]; had && prev != v.ID {
				ap.ReassignedOrders++
			}
			o.AssignedTo = v.ID
			o.AssignedAt = now
			assignedOrders[o.ID] = true
			v.Pending = append(v.Pending, o)
			ap.Orders = append(ap.Orders, o.ID)
			w.Trace.Emit(trace.Event{Kind: trace.OrderAssigned, T: now, Order: o.ID, Vehicle: v.ID})
		}
		w.setPlan(v, a.Plan)
		applied = append(applied, ap)
	}
	return applied
}

// RestoreToIncumbent gives a reshuffled order the matching did not place
// anywhere back to its previous vehicle — reshuffling looks for *better*
// vehicles, it never strands an order that already had one. The incumbent
// may have received a new batch this round; restore only while capacity
// allows, replanning each restored vehicle with the restored pickups
// included. Returns the restored-vehicle set.
func (w *RoundWorld) RestoreToIncumbent(now float64, orders []*model.Order,
	incumbent map[model.OrderID]model.VehicleID, assignedOrders map[model.OrderID]bool) map[model.VehicleID]bool {
	restored := w.DecideRestores(now, orders, incumbent, assignedOrders)
	for _, mo := range w.Motions {
		if restored[mo.V.ID] {
			ReplanAfterRound(w.SPFor(mo.V.Node), w.Mover, mo, now, true)
		}
	}
	return restored
}

// ReplanAfterRound rebuilds one vehicle's plan after the application phase:
// a restored vehicle gets a full quickest plan over its onboard dropoffs
// and (restored) pending pickups; a stripped-but-unmatched vehicle gets a
// dropoff-only plan — or an empty one when nothing is onboard — keeping its
// old dropoff order as the fallback when optimisation fails. Shared by the
// offline round and the online engine's parallel per-zone replan.
func ReplanAfterRound(sp roadnet.SPFunc, m *Mover, mo *Motion, now float64, restored bool) {
	v := mo.V
	switch {
	case restored:
		if plan, _, ok := OptimizePlan(sp, v.Node, now, v.Onboard, v.Pending); ok {
			m.SetPlan(mo, plan)
		}
	case len(v.Onboard) == 0:
		m.SetPlan(mo, &model.RoutePlan{})
	default:
		if plan, _, ok := OptimizeDropoffs(sp, v.Node, now, v.Onboard); ok {
			m.SetPlan(mo, plan)
		}
	}
}

// DecideRestores is the decision half of RestoreToIncumbent: it re-attaches
// unplaced reshuffled orders to their incumbents and returns the
// restored-vehicle set, leaving the (independent, Dijkstra-heavy) per-vehicle
// replanning to the caller — the online engine fans that part out per zone
// shard while the offline simulator runs it inline.
func (w *RoundWorld) DecideRestores(now float64, orders []*model.Order,
	incumbent map[model.OrderID]model.VehicleID, assignedOrders map[model.OrderID]bool) map[model.VehicleID]bool {
	restored := make(map[model.VehicleID]bool)
	for _, o := range orders {
		if assignedOrders[o.ID] || o.State != model.OrderPlaced {
			continue
		}
		prev, had := incumbent[o.ID]
		if !had {
			continue
		}
		mo := w.ByID[prev]
		if mo == nil || !mo.V.Active(now) {
			continue
		}
		v := mo.V
		if v.OrderCount()+1 > w.Cfg.MaxO || v.ItemCount()+o.Items > w.Cfg.MaxI {
			continue
		}
		o.State = model.OrderAssigned
		o.AssignedTo = v.ID
		v.Pending = append(v.Pending, o)
		assignedOrders[o.ID] = true
		restored[v.ID] = true
		w.Trace.Emit(trace.Event{Kind: trace.OrderAssigned, T: now, Order: o.ID, Vehicle: v.ID})
	}
	return restored
}

// ReplanStripped rebuilds dropoff-only plans for vehicles whose pending
// orders were pooled by reshuffling but which received no new assignment.
// Vehicles that had orders restored to them already got a full plan (with
// the restored pickups) and must keep it.
func (w *RoundWorld) ReplanStripped(now float64, stripped, assigned, restored map[model.VehicleID]bool) {
	if len(stripped) == 0 {
		return
	}
	for _, mo := range w.Motions {
		v := mo.V
		if !stripped[v.ID] || assigned[v.ID] || restored[v.ID] {
			continue
		}
		ReplanAfterRound(w.SPFor(v.Node), w.Mover, mo, now, false)
	}
}

// PoolCarry reports whether an order stays in the pool after a round — the
// single carry predicate shared by the offline RebuildPool and the online
// engine's per-zone pool rebuild, so the two paths cannot drift.
func PoolCarry(o *model.Order, assignedOrders map[model.OrderID]bool) bool {
	return !assignedOrders[o.ID] && o.State == model.OrderPlaced
}

// RebuildPool keeps the orders not assigned anywhere, reusing dst's storage.
func RebuildPool(orders []*model.Order, assignedOrders map[model.OrderID]bool, dst []*model.Order) []*model.Order {
	for _, o := range orders {
		if PoolCarry(o, assignedOrders) {
			dst = append(dst, o)
		}
	}
	return dst
}

func (w *RoundWorld) setPlan(v *model.Vehicle, plan *model.RoutePlan) {
	if mo := w.ByID[v.ID]; mo != nil {
		w.Mover.SetPlan(mo, plan)
	}
}
