package sim

import (
	"testing"

	"repro/internal/model"
	"repro/internal/policy"
)

// TestSLAViolationCounting pins Options.SLASec: a delivery slower than the
// threshold counts, a fast one does not, and a zero threshold disables the
// counter entirely.
func TestSLAViolationCounting(t *testing.T) {
	g := lineCity(20, 30) // 30 s per hop
	run := func(slaSec float64) *Metrics {
		// Vehicle starts at node 0, restaurant 5, customer 10: ~5 hops first
		// mile + 5 hops delivery ≈ 300 s driving + 120 s prep.
		o := mkOrder(1, 5, 10, 10, 120)
		v := model.NewVehicle(1, 0, 3)
		s, err := New(g, []*model.Order{o}, []*model.Vehicle{v},
			policy.NewFoodMatch(), testConfig(), Options{Quiet: true, SLASec: slaSec})
		if err != nil {
			t.Fatal(err)
		}
		m := s.Run(0, 3600)
		if m.Delivered != 1 {
			t.Fatalf("delivered %d, want 1", m.Delivered)
		}
		return m
	}

	if m := run(60); m.SLAViolations != 1 {
		t.Fatalf("tight SLA: %d violations, want 1", m.SLAViolations)
	}
	if m := run(3600); m.SLAViolations != 0 {
		t.Fatalf("loose SLA: %d violations, want 0", m.SLAViolations)
	}
	if m := run(0); m.SLAViolations != 0 {
		t.Fatalf("disabled SLA: %d violations, want 0", m.SLAViolations)
	}
	if m := run(60); m.SLAViolationRate() != 1 {
		t.Fatalf("violation rate %v, want 1", m.SLAViolationRate())
	}
}
