// Package sim is the discrete-event food-delivery simulator: it replays an
// order stream against a fleet of vehicles on a time-dependent road network,
// invoking an assignment policy at the end of every accumulation window
// (Section II / Fig. 5 pipeline) and collecting the paper's evaluation
// metrics.
//
// Within a window the simulator moves every vehicle continuously along its
// route plan — edge by edge, each edge traversed at the β(e,t) of its entry
// time — handling restaurant waits (food not ready), pickups and dropoffs.
// At the window boundary it rejects stale orders, optionally reshuffles
// assigned-but-unpicked orders back into the pool, builds the policy input
// and applies the returned assignments.
package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/foodgraph"
	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// Options tunes simulator behaviour beyond the model.Config.
type Options struct {
	// SPBound caps single-source expansions of the shared distance cache in
	// seconds; 0 defaults to 2×MaxFirstMile.
	SPBound float64
	// DrainCap bounds the post-stream drain phase in seconds (how long the
	// simulator keeps running windows after the last order to let in-flight
	// deliveries finish); 0 defaults to 2 h.
	DrainCap float64
	// Quiet suppresses progress output (always true in tests).
	Quiet bool
	// Trace receives the simulation event stream (nil = discard).
	Trace trace.Sink
	// DecisionGraph, when set, is the network the *policy* sees: its edge
	// weights answer every marginal-cost and batching query, while vehicle
	// movement and SDT (the metric lower bound) stay on the true graph.
	// This models the paper's evaluation protocol, where travel times are
	// learned from five days of GPS pings and the sixth day is driven on
	// reality (Section V-B); pair it with the gps package's SpeedLearner.
	DecisionGraph *roadnet.Graph
	// Router, when set, is the shortest-path backend the *policy* queries
	// (hub labels, plain Dijkstra, an LRU decorator, …); nil defaults to a
	// bounded-SSSP distance cache (SPBound) over the decision graph.
	// Vehicle movement and SDT always stay on the true graph. The router is
	// driven from the simulation goroutine only.
	Router roadnet.Router
	// Learner, when set, receives every finished edge traversal on the
	// true graph (via the mover's Edge hook) — the offline form of the
	// Section V-A learn-from-driving loop. Run a day, export
	// Learner.Weights, reweight a graph, and replay the next day with it
	// as DecisionGraph.
	Learner *gps.StreamLearner
	// SLASec, when positive, counts every delivery whose realised duration
	// exceeds it as an SLA violation (Metrics.SLAViolations) — the
	// service-level lens the multi-day experiment harness reports next to
	// XDT. 0 disables the counter.
	SLASec float64
	// OnRound, when set, receives one RoundTelemetry per window — the
	// offline span tree (inject/advance/assign/apply/replan, with
	// pipeline-stage children under assign when the policy records stage
	// stats). The callback runs on the simulation goroutine; phase timing
	// is only measured when it is non-nil, so the default run pays nothing.
	OnRound func(RoundTelemetry)
}

// Simulator replays one day of orders under a policy.
type Simulator struct {
	g *roadnet.Graph
	// cache/sp answer metric queries (SDT) on the true graph; decRouter
	// answers the policy's queries, possibly on a learned graph (decCache
	// is its backing store when the backend is the internal bounded cache).
	cache     *roadnet.DistCache
	sp        roadnet.SPFunc
	decCache  *roadnet.DistCache
	decRouter roadnet.Router
	decG      *roadnet.Graph
	pol       policy.Policy
	cfg       *model.Config
	opts      Options
	orders    []*model.Order // sorted by PlacedAt
	mover     *Mover
	vrts      []*Motion
	byID      map[model.VehicleID]*Motion

	pool    []*model.Order // placed, unassigned
	nextOrd int
	clock   float64 // last processed simulation instant (for event stamps)
	metrics *Metrics
}

// New builds a simulator. Orders must carry PlacedAt/Items/Prep; SDT is
// computed at injection. Vehicles should be parked at valid nodes.
func New(g *roadnet.Graph, orders []*model.Order, vehicles []*model.Vehicle, pol policy.Policy, cfg *model.Config, opts Options) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.SPBound <= 0 {
		opts.SPBound = 2 * cfg.MaxFirstMile
	}
	if opts.DrainCap <= 0 {
		opts.DrainCap = 7200
	}
	if opts.Trace == nil {
		opts.Trace = trace.Discard
	}
	sorted := make([]*model.Order, len(orders))
	copy(sorted, orders)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].PlacedAt < sorted[j].PlacedAt })
	cache := roadnet.NewDistCache(g, opts.SPBound)
	s := &Simulator{
		g:       g,
		cache:   cache,
		sp:      cache.AsFunc(),
		pol:     pol,
		cfg:     cfg,
		opts:    opts,
		orders:  sorted,
		metrics: NewMetrics(cfg.MaxO),
	}
	s.decCache, s.decG = cache, g
	if opts.DecisionGraph != nil {
		if opts.DecisionGraph.NumNodes() != g.NumNodes() {
			return nil, fmt.Errorf("sim: decision graph has %d nodes, true graph %d",
				opts.DecisionGraph.NumNodes(), g.NumNodes())
		}
		s.decG = opts.DecisionGraph
		if opts.Router == nil {
			s.decCache = roadnet.NewDistCache(opts.DecisionGraph, opts.SPBound)
		}
	}
	s.decRouter = s.decCache
	if opts.Router != nil {
		// Injected backend: the policy's distance substrate is the caller's
		// (over the decision graph when one is set — the caller builds the
		// router over whichever graph it wants the policy to see).
		s.decRouter = opts.Router
		s.decCache = nil
	}
	s.mover = NewMover(g, opts.Trace)
	s.mover.Hooks = MoveHooks{
		Wait: func(_ *model.Vehicle, sec, t float64) {
			s.metrics.WaitSec += sec
			s.metrics.SlotWaitSec[roadnet.Slot(t)] += sec
		},
		Deliver: func(o *model.Order, _ *model.Vehicle, _ float64) {
			m := s.metrics
			m.Delivered++
			m.DeliverySec += o.DeliveryTime()
			if opts.SLASec > 0 && o.DeliveryTime() > opts.SLASec {
				m.SLAViolations++
			}
			xdt := o.XDT()
			m.XDTSec += xdt
			slot := roadnet.Slot(o.PlacedAt)
			m.SlotXDTSec[slot] += xdt
			m.SlotDelivered[slot]++
		},
		Distance: func(_ *model.Vehicle, meters float64, load int, t float64) {
			m := s.metrics
			m.DistM += meters
			if load < len(m.LoadDistM) {
				m.LoadDistM[load] += meters
			}
			slot := roadnet.Slot(t)
			m.SlotDistM[slot] += meters
			m.SlotLoadDistM[slot] += float64(load) * meters
		},
		Strand: func(*model.Order) { s.metrics.Stranded++ },
	}
	if opts.Learner != nil {
		s.mover.Hooks.Edge = func(_ *model.Vehicle, from, to roadnet.NodeID, tEnter, sec float64) {
			opts.Learner.ObserveEdge(from, to, tEnter, sec)
		}
	}
	s.byID = make(map[model.VehicleID]*Motion, len(vehicles))
	for _, v := range vehicles {
		if int(v.Node) >= g.NumNodes() || v.Node < 0 {
			return nil, fmt.Errorf("sim: vehicle %d parked at invalid node %d", v.ID, v.Node)
		}
		if len(v.DistByLoad) < cfg.MaxO+1 {
			v.DistByLoad = make([]float64, cfg.MaxO+1)
		}
		mo := NewMotion(v)
		s.vrts = append(s.vrts, mo)
		s.byID[v.ID] = mo
	}
	return s, nil
}

// Metrics exposes the metric sink (live during Run).
func (s *Simulator) Metrics() *Metrics { return s.metrics }

// Run simulates [start, end) plus a drain phase and returns the metrics.
func (s *Simulator) Run(start, end float64) *Metrics {
	return s.RunContext(context.Background(), start, end)
}

// RunContext is Run with cancellation/deadline propagation: the context is
// checked at every window boundary and threaded into every policy stage
// call. On cancellation the loop stops early and the metrics account every
// unfinished order as stranded — partial but internally consistent.
func (s *Simulator) RunContext(ctx context.Context, start, end float64) *Metrics {
	if ctx == nil {
		ctx = context.Background()
	}
	now := start
	drainEnd := end + s.opts.DrainCap
	slot := roadnet.Slot(now)
	for now < drainEnd && ctx.Err() == nil {
		wEnd := now + s.cfg.Delta
		// Weights change at slot boundaries; old-slot cache rows are never
		// consulted again, so drop them to bound memory on long runs.
		if ns := roadnet.Slot(now); ns != slot {
			slot = ns
			s.cache.Reset()
			if s.decCache != nil && s.decCache != s.cache {
				s.decCache.Reset()
			} else if s.decCache == nil {
				if r, ok := s.decRouter.(roadnet.Resettable); ok {
					r.Reset()
				}
			}
		}
		var phT time.Time
		var injectSec, advanceSec float64
		if s.opts.OnRound != nil {
			phT = time.Now()
		}
		s.injectOrders(wEnd)
		if s.opts.OnRound != nil {
			injectSec = time.Since(phT).Seconds()
			phT = time.Now()
		}
		for _, vr := range s.vrts {
			s.mover.Advance(vr, now, wEnd)
		}
		if s.opts.OnRound != nil {
			advanceSec = time.Since(phT).Seconds()
		}
		s.clock = wEnd
		s.rejectStale(wEnd)
		s.window(ctx, wEnd, injectSec, advanceSec)
		now = wEnd
		if now >= end && s.idle() {
			break
		}
	}
	// Anything still undelivered at drain end was never served.
	for _, o := range s.pool {
		s.reject(o)
	}
	s.pool = nil
	for _, vr := range s.vrts {
		for _, o := range append(append([]*model.Order{}, vr.V.Onboard...), vr.V.Pending...) {
			if o.State != model.OrderDelivered {
				o.State = model.OrderRejected
				s.metrics.Stranded++
			}
		}
	}
	return s.metrics
}

// idle reports whether no work remains anywhere.
func (s *Simulator) idle() bool {
	if len(s.pool) > 0 || s.nextOrd < len(s.orders) {
		return false
	}
	for _, vr := range s.vrts {
		if vr.V.OrderCount() > 0 {
			return false
		}
	}
	return true
}

// injectOrders admits orders placed before wEnd into the pool, computing
// their SDT lower bound on admission.
func (s *Simulator) injectOrders(wEnd float64) {
	for s.nextOrd < len(s.orders) && s.orders[s.nextOrd].PlacedAt < wEnd {
		o := s.orders[s.nextOrd]
		s.nextOrd++
		o.State = model.OrderPlaced
		o.AssignedTo = -1
		o.SDT = o.Prep + s.sp(o.Restaurant, o.Customer, o.PlacedAt)
		s.metrics.TotalOrders++
		s.metrics.SlotOrders[roadnet.Slot(o.PlacedAt)]++
		s.pool = append(s.pool, o)
		s.opts.Trace.Emit(trace.Event{Kind: trace.OrderPlaced, T: o.PlacedAt, Order: o.ID})
	}
}

// rejectStale drops orders unallocated longer than RejectAfter.
func (s *Simulator) rejectStale(now float64) {
	keep := s.pool[:0]
	for _, o := range s.pool {
		if now-o.PlacedAt > s.cfg.RejectAfter {
			s.reject(o)
		} else {
			keep = append(keep, o)
		}
	}
	s.pool = keep
}

func (s *Simulator) reject(o *model.Order) {
	o.State = model.OrderRejected
	s.metrics.Rejected++
	s.metrics.RejectionPenaltySec += s.cfg.Omega
	s.metrics.SlotRejectionSec[roadnet.Slot(o.PlacedAt)] += s.cfg.Omega
	s.opts.Trace.Emit(trace.Event{Kind: trace.OrderRejected, T: s.clock, Order: o.ID})
}

// world returns the shared round-application view of the simulator state
// (the logic in window.go that the online engine reuses).
func (s *Simulator) world() *RoundWorld {
	return &RoundWorld{
		ByID:    s.byID,
		Motions: s.vrts,
		Mover:   s.mover,
		Cfg:     s.cfg,
		Trace:   s.opts.Trace,
		SPFor:   func(roadnet.NodeID) roadnet.SPFunc { return s.decRouter.Travel },
	}
}

// window performs the end-of-window assignment round at time now.
// injectSec/advanceSec are the already-measured leading phases of the
// window's telemetry span tree (0 when Options.OnRound is unset).
func (s *Simulator) window(ctx context.Context, now float64, injectSec, advanceSec float64) {
	w := s.world()

	// Build O(ℓ): the pool plus — when reshuffling — every vehicle's
	// assigned-but-unpicked orders, returned to the pool (Section IV-D2).
	orders := make([]*model.Order, 0, len(s.pool))
	orders = append(orders, s.pool...)
	var stripped map[model.VehicleID]bool
	prevVehicle := make(map[model.OrderID]model.VehicleID)
	if s.cfg.Reshuffle && s.pol.Reshuffles() {
		orders, prevVehicle, stripped = w.StripPending(now, orders)
	}
	if len(orders) == 0 {
		s.recordWindow(now, 0)
		w.ReplanStripped(now, stripped, nil, nil)
		if s.opts.OnRound != nil {
			s.opts.OnRound(RoundTelemetry{T: now, Phases: []obs.Phase{
				{Name: "inject", DurSec: injectSec},
				{Name: "advance", DurSec: advanceSec},
			}})
		}
		return
	}

	// Build V(ℓ). Single-order policies (the paper's vanilla KM) admit a
	// vehicle only once it is empty; everything else admits any on-shift
	// vehicle with spare MAXO/MAXI capacity (Definition 4).
	singleOrder := s.pol.SingleOrderMode(s.cfg)
	var vss []*foodgraph.VehicleState
	for _, vr := range s.vrts {
		v := vr.V
		if !v.Active(now) {
			continue
		}
		if singleOrder && v.OrderCount() > 0 {
			continue
		}
		if v.OrderCount() >= s.cfg.MaxO || v.ItemCount() >= s.cfg.MaxI {
			continue
		}
		vss = append(vss, &foodgraph.VehicleState{
			Vehicle: v,
			Node:    v.Node,
			Dest:    vr.NextNode(),
			Onboard: v.Onboard,
			Keep:    v.Pending,
		})
	}

	in := &policy.WindowInput{
		G:         s.decG,
		Router:    s.decRouter,
		Now:       now,
		Orders:    orders,
		Vehicles:  vss,
		Incumbent: prevVehicle,
		Cfg:       s.cfg,
	}
	t0 := time.Now()
	assignments := s.pol.Assign(ctx, in)
	assignSec := time.Since(t0).Seconds()
	s.recordWindow(now, assignSec)
	s.opts.Trace.Emit(trace.Event{
		Kind: trace.WindowClosed, T: now,
		PoolSize: len(orders), Vehicles: len(vss),
		Assignments: len(assignments), AssignSec: assignSec,
	})

	var phT time.Time
	if s.opts.OnRound != nil {
		phT = time.Now()
	}
	assignedVehicles := make(map[model.VehicleID]bool, len(assignments))
	assignedOrders := make(map[model.OrderID]bool)
	for _, ap := range w.ApplyAssignments(now, assignments, prevVehicle, assignedOrders, assignedVehicles) {
		s.metrics.Reassignments += ap.ReassignedOrders
	}
	restored := w.RestoreToIncumbent(now, orders, prevVehicle, assignedOrders)
	s.pool = RebuildPool(orders, assignedOrders, s.pool[:0])
	var applySec float64
	if s.opts.OnRound != nil {
		applySec = time.Since(phT).Seconds()
		phT = time.Now()
	}
	w.ReplanStripped(now, stripped, assignedVehicles, restored)
	if s.opts.OnRound != nil {
		s.opts.OnRound(RoundTelemetry{
			T: now, PoolSize: len(orders), Vehicles: len(vss),
			Assigned: len(assignments), LatencySec: assignSec,
			Phases: []obs.Phase{
				{Name: "inject", DurSec: injectSec},
				{Name: "advance", DurSec: advanceSec},
				assignSpan(assignSec, s.pol),
				{Name: "apply", DurSec: applySec},
				{Name: "replan", DurSec: time.Since(phT).Seconds()},
			},
		})
	}
}

func (s *Simulator) recordWindow(now, assignSec float64) {
	m := s.metrics
	slot := roadnet.Slot(now - s.cfg.Delta/2) // attribute to the window's interior
	m.Windows++
	m.SlotWindows[slot]++
	m.AssignSecTotal += assignSec
	m.SlotAssignSecSum[slot] += assignSec
	if assignSec > m.AssignSecMax {
		m.AssignSecMax = assignSec
	}
	if s.cfg.ComputeBudget > 0 && assignSec > s.cfg.ComputeBudget {
		m.OverflownWindows++
		m.SlotOverflown[slot]++
	}
}
