// Package sim is the discrete-event food-delivery simulator: it replays an
// order stream against a fleet of vehicles on a time-dependent road network,
// invoking an assignment policy at the end of every accumulation window
// (Section II / Fig. 5 pipeline) and collecting the paper's evaluation
// metrics.
//
// Within a window the simulator moves every vehicle continuously along its
// route plan — edge by edge, each edge traversed at the β(e,t) of its entry
// time — handling restaurant waits (food not ready), pickups and dropoffs.
// At the window boundary it rejects stale orders, optionally reshuffles
// assigned-but-unpicked orders back into the pool, builds the policy input
// and applies the returned assignments.
package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/foodgraph"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// Options tunes simulator behaviour beyond the model.Config.
type Options struct {
	// SPBound caps single-source expansions of the shared distance cache in
	// seconds; 0 defaults to 2×MaxFirstMile.
	SPBound float64
	// DrainCap bounds the post-stream drain phase in seconds (how long the
	// simulator keeps running windows after the last order to let in-flight
	// deliveries finish); 0 defaults to 2 h.
	DrainCap float64
	// Quiet suppresses progress output (always true in tests).
	Quiet bool
	// Trace receives the simulation event stream (nil = discard).
	Trace trace.Sink
	// DecisionGraph, when set, is the network the *policy* sees: its edge
	// weights answer every marginal-cost and batching query, while vehicle
	// movement and SDT (the metric lower bound) stay on the true graph.
	// This models the paper's evaluation protocol, where travel times are
	// learned from five days of GPS pings and the sixth day is driven on
	// reality (Section V-B); pair it with the gps package's SpeedLearner.
	DecisionGraph *roadnet.Graph
}

// Simulator replays one day of orders under a policy.
type Simulator struct {
	g *roadnet.Graph
	// cache/sp answer metric queries (SDT) on the true graph; decCache/
	// decSP answer the policy's queries, possibly on a learned graph.
	cache    *roadnet.DistCache
	sp       roadnet.SPFunc
	decCache *roadnet.DistCache
	decSP    roadnet.SPFunc
	decG     *roadnet.Graph
	pol      policy.Policy
	cfg      *model.Config
	opts     Options
	orders   []*model.Order // sorted by PlacedAt
	vrts     []*vehicleRt

	pool    []*model.Order // placed, unassigned
	nextOrd int
	clock   float64 // last processed simulation instant (for event stamps)
	metrics *Metrics
}

// vehicleRt wraps a vehicle with the simulator's movement state.
type vehicleRt struct {
	v *model.Vehicle
	// path holds the remaining nodes of the current leg; path[0] is the node
	// currently being driven towards.
	path []roadnet.NodeID
	// edgeRemaining/edgeTotal/edgeLenM describe progress on the edge
	// v.Node -> path[0].
	edgeRemaining float64
	edgeTotal     float64
	edgeLenM      float64
}

// New builds a simulator. Orders must carry PlacedAt/Items/Prep; SDT is
// computed at injection. Vehicles should be parked at valid nodes.
func New(g *roadnet.Graph, orders []*model.Order, vehicles []*model.Vehicle, pol policy.Policy, cfg *model.Config, opts Options) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.SPBound <= 0 {
		opts.SPBound = 2 * cfg.MaxFirstMile
	}
	if opts.DrainCap <= 0 {
		opts.DrainCap = 7200
	}
	if opts.Trace == nil {
		opts.Trace = trace.Discard
	}
	sorted := make([]*model.Order, len(orders))
	copy(sorted, orders)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].PlacedAt < sorted[j].PlacedAt })
	cache := roadnet.NewDistCache(g, opts.SPBound)
	s := &Simulator{
		g:       g,
		cache:   cache,
		sp:      cache.AsFunc(),
		pol:     pol,
		cfg:     cfg,
		opts:    opts,
		orders:  sorted,
		metrics: NewMetrics(cfg.MaxO),
	}
	s.decCache, s.decSP, s.decG = cache, s.sp, g
	if opts.DecisionGraph != nil {
		if opts.DecisionGraph.NumNodes() != g.NumNodes() {
			return nil, fmt.Errorf("sim: decision graph has %d nodes, true graph %d",
				opts.DecisionGraph.NumNodes(), g.NumNodes())
		}
		s.decG = opts.DecisionGraph
		s.decCache = roadnet.NewDistCache(opts.DecisionGraph, opts.SPBound)
		s.decSP = s.decCache.AsFunc()
	}
	for _, v := range vehicles {
		if int(v.Node) >= g.NumNodes() || v.Node < 0 {
			return nil, fmt.Errorf("sim: vehicle %d parked at invalid node %d", v.ID, v.Node)
		}
		if len(v.DistByLoad) < cfg.MaxO+1 {
			v.DistByLoad = make([]float64, cfg.MaxO+1)
		}
		s.vrts = append(s.vrts, &vehicleRt{v: v})
	}
	return s, nil
}

// Metrics exposes the metric sink (live during Run).
func (s *Simulator) Metrics() *Metrics { return s.metrics }

// Run simulates [start, end) plus a drain phase and returns the metrics.
func (s *Simulator) Run(start, end float64) *Metrics {
	now := start
	drainEnd := end + s.opts.DrainCap
	slot := roadnet.Slot(now)
	for now < drainEnd {
		wEnd := now + s.cfg.Delta
		// Weights change at slot boundaries; old-slot cache rows are never
		// consulted again, so drop them to bound memory on long runs.
		if ns := roadnet.Slot(now); ns != slot {
			slot = ns
			s.cache.Reset()
			if s.decCache != s.cache {
				s.decCache.Reset()
			}
		}
		s.injectOrders(wEnd)
		for _, vr := range s.vrts {
			s.advance(vr, now, wEnd)
		}
		s.clock = wEnd
		s.rejectStale(wEnd)
		s.window(wEnd)
		now = wEnd
		if now >= end && s.idle() {
			break
		}
	}
	// Anything still undelivered at drain end was never served.
	for _, o := range s.pool {
		s.reject(o)
	}
	s.pool = nil
	for _, vr := range s.vrts {
		for _, o := range append(append([]*model.Order{}, vr.v.Onboard...), vr.v.Pending...) {
			if o.State != model.OrderDelivered {
				o.State = model.OrderRejected
				s.metrics.Stranded++
			}
		}
	}
	return s.metrics
}

// idle reports whether no work remains anywhere.
func (s *Simulator) idle() bool {
	if len(s.pool) > 0 || s.nextOrd < len(s.orders) {
		return false
	}
	for _, vr := range s.vrts {
		if vr.v.OrderCount() > 0 {
			return false
		}
	}
	return true
}

// injectOrders admits orders placed before wEnd into the pool, computing
// their SDT lower bound on admission.
func (s *Simulator) injectOrders(wEnd float64) {
	for s.nextOrd < len(s.orders) && s.orders[s.nextOrd].PlacedAt < wEnd {
		o := s.orders[s.nextOrd]
		s.nextOrd++
		o.State = model.OrderPlaced
		o.AssignedTo = -1
		o.SDT = o.Prep + s.sp(o.Restaurant, o.Customer, o.PlacedAt)
		s.metrics.TotalOrders++
		s.metrics.SlotOrders[roadnet.Slot(o.PlacedAt)]++
		s.pool = append(s.pool, o)
		s.opts.Trace.Emit(trace.Event{Kind: trace.OrderPlaced, T: o.PlacedAt, Order: o.ID})
	}
}

// rejectStale drops orders unallocated longer than RejectAfter.
func (s *Simulator) rejectStale(now float64) {
	keep := s.pool[:0]
	for _, o := range s.pool {
		if now-o.PlacedAt > s.cfg.RejectAfter {
			s.reject(o)
		} else {
			keep = append(keep, o)
		}
	}
	s.pool = keep
}

func (s *Simulator) reject(o *model.Order) {
	o.State = model.OrderRejected
	s.metrics.Rejected++
	s.metrics.RejectionPenaltySec += s.cfg.Omega
	s.metrics.SlotRejectionSec[roadnet.Slot(o.PlacedAt)] += s.cfg.Omega
	s.opts.Trace.Emit(trace.Event{Kind: trace.OrderRejected, T: s.clock, Order: o.ID})
}

// window performs the end-of-window assignment round at time now.
func (s *Simulator) window(now float64) {
	reshuffle := s.cfg.Reshuffle && s.pol.Reshuffles()

	// Build O(ℓ).
	orders := make([]*model.Order, 0, len(s.pool))
	orders = append(orders, s.pool...)
	stripped := make(map[model.VehicleID]bool)
	prevVehicle := make(map[model.OrderID]model.VehicleID)
	if reshuffle {
		for _, vr := range s.vrts {
			if len(vr.v.Pending) == 0 {
				continue
			}
			for _, o := range vr.v.Pending {
				o.State = model.OrderPlaced
				prevVehicle[o.ID] = o.AssignedTo
				o.AssignedTo = -1
				orders = append(orders, o)
				s.opts.Trace.Emit(trace.Event{Kind: trace.OrderReleased, T: now, Order: o.ID, Vehicle: prevVehicle[o.ID]})
			}
			vr.v.Pending = vr.v.Pending[:0]
			stripped[vr.v.ID] = true
		}
	}
	if len(orders) == 0 {
		s.recordWindow(now, 0)
		s.replanStripped(stripped, nil, now)
		return
	}

	// Build V(ℓ). Single-order policies (the paper's vanilla KM) admit a
	// vehicle only once it is empty; everything else admits any on-shift
	// vehicle with spare MAXO/MAXI capacity (Definition 4).
	singleOrder := s.pol.SingleOrderMode(s.cfg)
	var vss []*foodgraph.VehicleState
	for _, vr := range s.vrts {
		v := vr.v
		if !v.Active(now) {
			continue
		}
		if singleOrder && v.OrderCount() > 0 {
			continue
		}
		if v.OrderCount() >= s.cfg.MaxO || v.ItemCount() >= s.cfg.MaxI {
			continue
		}
		vss = append(vss, &foodgraph.VehicleState{
			Vehicle: v,
			Node:    v.Node,
			Dest:    vr.nextNode(),
			Onboard: v.Onboard,
			Keep:    v.Pending,
		})
	}

	in := &policy.WindowInput{
		G:         s.decG,
		SP:        s.decSP,
		Now:       now,
		Orders:    orders,
		Vehicles:  vss,
		Incumbent: prevVehicle,
		Cfg:       s.cfg,
	}
	t0 := time.Now()
	assignments := s.pol.Assign(in)
	assignSec := time.Since(t0).Seconds()
	s.recordWindow(now, assignSec)
	s.opts.Trace.Emit(trace.Event{
		Kind: trace.WindowClosed, T: now,
		PoolSize: len(orders), Vehicles: len(vss),
		Assignments: len(assignments), AssignSec: assignSec,
	})

	assignedVehicles := make(map[model.VehicleID]bool, len(assignments))
	assignedOrders := make(map[model.OrderID]bool)
	for _, a := range assignments {
		assignedVehicles[a.Vehicle.ID] = true
		v := a.Vehicle
		for _, o := range a.Orders {
			o.State = model.OrderAssigned
			if prev, had := prevVehicle[o.ID]; had && prev != v.ID {
				s.metrics.Reassignments++
			}
			o.AssignedTo = v.ID
			o.AssignedAt = now
			assignedOrders[o.ID] = true
			v.Pending = append(v.Pending, o)
			s.opts.Trace.Emit(trace.Event{Kind: trace.OrderAssigned, T: now, Order: o.ID, Vehicle: v.ID})
		}
		s.setPlan(v, a.Plan)
	}

	// Restore-to-incumbent: a reshuffled order the matching did not place
	// anywhere keeps its previous assignment — reshuffling looks for
	// *better* vehicles (Section IV-D2), it never strands an order that
	// already had one. The incumbent may have received a new batch this
	// window; restore only while capacity allows, replanning the vehicle
	// with the restored pickups included.
	restored := make(map[model.VehicleID]bool)
	for _, o := range orders {
		if assignedOrders[o.ID] || o.State != model.OrderPlaced {
			continue
		}
		prev, had := prevVehicle[o.ID]
		if !had {
			continue
		}
		v := s.vehicleByID(prev)
		if v == nil || !v.Active(now) {
			continue
		}
		if v.OrderCount()+1 > s.cfg.MaxO || v.ItemCount()+o.Items > s.cfg.MaxI {
			continue
		}
		o.State = model.OrderAssigned
		o.AssignedTo = v.ID
		v.Pending = append(v.Pending, o)
		assignedOrders[o.ID] = true
		restored[v.ID] = true
		s.opts.Trace.Emit(trace.Event{Kind: trace.OrderAssigned, T: now, Order: o.ID, Vehicle: v.ID})
	}
	for _, vr := range s.vrts {
		if !restored[vr.v.ID] {
			continue
		}
		plan, _, ok := optimizePlan(s.decSP, vr.v.Node, now, vr.v.Onboard, vr.v.Pending)
		if ok {
			s.setPlan(vr.v, plan)
		}
	}

	// Rebuild the pool: orders not assigned anywhere stay (or return) in it.
	newPool := s.pool[:0]
	for _, o := range orders {
		if !assignedOrders[o.ID] && o.State == model.OrderPlaced {
			newPool = append(newPool, o)
		}
	}
	s.pool = newPool

	s.replanStripped(stripped, assignedVehicles, now)
}

// replanStripped rebuilds dropoff-only plans for vehicles whose pending
// orders were pooled by reshuffling but which received no new assignment.
func (s *Simulator) replanStripped(stripped map[model.VehicleID]bool, assigned map[model.VehicleID]bool, now float64) {
	if len(stripped) == 0 {
		return
	}
	for _, vr := range s.vrts {
		v := vr.v
		if !stripped[v.ID] || assigned[v.ID] {
			continue
		}
		if len(v.Onboard) == 0 {
			s.setPlan(v, &model.RoutePlan{})
			continue
		}
		plan, _, ok := optimizeDropoffs(s.decSP, v.Node, now, v.Onboard)
		if !ok {
			// Keep the old plan's dropoffs in order as a fallback.
			continue
		}
		s.setPlan(v, plan)
	}
}

// setPlan replaces a vehicle's route plan. A vehicle mid-edge finishes that
// road segment before rerouting (it cannot teleport back to the segment's
// start); resetting its progress every window would systematically slow
// every reshuffled vehicle.
func (s *Simulator) setPlan(v *model.Vehicle, plan *model.RoutePlan) {
	v.Plan = plan.Clone()
	for _, vr := range s.vrts {
		if vr.v != v {
			continue
		}
		if vr.edgeRemaining > 0 && len(vr.path) > 0 {
			// Keep only the in-progress edge; the leg to the new first stop
			// is recomputed from its far end.
			vr.path = vr.path[:1]
			v.EdgeTo = vr.path[0]
		} else {
			vr.path = nil
			vr.edgeRemaining = 0
			vr.edgeTotal = 0
			vr.edgeLenM = 0
			v.EdgeTo = roadnet.Invalid
			v.EdgeProgress = 0
		}
		break
	}
}

func (s *Simulator) recordWindow(now, assignSec float64) {
	m := s.metrics
	slot := roadnet.Slot(now - s.cfg.Delta/2) // attribute to the window's interior
	m.Windows++
	m.SlotWindows[slot]++
	m.AssignSecTotal += assignSec
	m.SlotAssignSecSum[slot] += assignSec
	if assignSec > m.AssignSecMax {
		m.AssignSecMax = assignSec
	}
	if s.cfg.ComputeBudget > 0 && assignSec > s.cfg.ComputeBudget {
		m.OverflownWindows++
		m.SlotOverflown[slot]++
	}
}

// nextNode returns the node the vehicle is currently heading towards
// (roadnet.Invalid when idle) — the `dest` of the angular-distance model.
func (vr *vehicleRt) nextNode() roadnet.NodeID {
	if len(vr.path) > 0 {
		return vr.path[0]
	}
	if vr.v.Plan != nil && !vr.v.Plan.Empty() {
		return vr.v.Plan.Stops[0].Node
	}
	return roadnet.Invalid
}

// vehicleByID finds a vehicle in the fleet.
func (s *Simulator) vehicleByID(id model.VehicleID) *model.Vehicle {
	for _, vr := range s.vrts {
		if vr.v.ID == id {
			return vr.v
		}
	}
	return nil
}
