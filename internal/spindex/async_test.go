package spindex

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// countingRouter wraps a Router and counts Travel calls (to observe when the
// AsyncRouter stops consulting its fallback).
type countingRouter struct {
	inner  roadnet.Router
	calls  int
	resets int
}

func (c *countingRouter) Travel(from, to roadnet.NodeID, t float64) float64 {
	c.calls++
	return c.inner.Travel(from, to, t)
}
func (c *countingRouter) Reset() {
	c.resets++
	if in, ok := c.inner.(roadnet.Resettable); ok {
		in.Reset()
	}
}

func TestAsyncRouterFallsBackThenServesLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 200, true)
	fb := &countingRouter{inner: roadnet.NewDijkstraRouter(g)}
	r := NewAsyncRouter(g, fb, false)

	tAt := 9.5 * 3600
	want := roadnet.ShortestPath(g, 3, 41, tAt)
	if got := r.Travel(3, 41, tAt); math.Abs(got-want) > 1e-3 {
		t.Fatalf("fallback answer %v, want %v", got, want)
	}
	if fb.calls == 0 {
		t.Fatal("first query did not use the fallback")
	}

	r.Wait()
	if !r.Ready(9) {
		t.Fatal("slot 9 labels not ready after Wait")
	}
	// Prefetch: querying slot 9 must also have built slot 10.
	if !r.Ready(10) {
		t.Fatal("next slot (10) not pre-built")
	}
	calls := fb.calls
	if got := r.Travel(3, 41, tAt); math.Abs(got-want) > 1e-3 {
		t.Fatalf("label answer %v, want %v", got, want)
	}
	if fb.calls != calls {
		t.Fatal("labels ready but the fallback was still consulted")
	}

	// Label answers agree with Dijkstra across sampled pairs and slots.
	for i := 0; i < 40; i++ {
		u := roadnet.NodeID(rng.Intn(g.NumNodes()))
		v := roadnet.NodeID(rng.Intn(g.NumNodes()))
		want := roadnet.ShortestPath(g, u, v, tAt)
		got := r.Travel(u, v, tAt)
		if math.IsInf(want, 1) != math.IsInf(got, 1) ||
			(!math.IsInf(want, 1) && math.Abs(got-want) > 1e-3*want+1e-3) {
			t.Fatalf("async labels (%d->%d) = %v, Dijkstra = %v", u, v, got, want)
		}
	}
}

// TestAsyncRouterMidnightPrefetch is the 23 → 0 rollover regression for the
// engine's hub-label choice: a query late in slot 23 must pre-build slot 0,
// not a non-existent slot 24.
func TestAsyncRouterMidnightPrefetch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 40, 120, true)
	r := NewAsyncRouter(g, roadnet.NewDijkstraRouter(g), false)
	r.Travel(1, 17, 86390) // 23:59:50
	r.Wait()
	if !r.Ready(23) {
		t.Fatal("slot 23 not built")
	}
	if !r.Ready(0) {
		t.Fatal("slot 0 not pre-built from a slot-23 query — midnight rollover broken")
	}
	if r.Ready(24%roadnet.SlotsPerDay) != r.Ready(0) {
		t.Fatal("inconsistent rollover state")
	}
}

func TestAsyncRouterSyncMode(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 50, 150, true)
	fb := &countingRouter{inner: roadnet.NewDijkstraRouter(g)}
	r := NewAsyncRouter(g, fb, true)
	tAt := 19.25 * 3600
	want := roadnet.ShortestPath(g, 2, 33, tAt)
	if got := r.Travel(2, 33, tAt); math.Abs(got-want) > 1e-3 {
		t.Fatalf("sync answer %v, want %v", got, want)
	}
	if fb.calls != 0 {
		t.Fatal("sync mode consulted the fallback")
	}
	if !r.Ready(19) {
		t.Fatal("sync mode did not mark the slot ready")
	}
}

func TestAsyncRouterResetForwards(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 30, 90, false)
	fb := &countingRouter{inner: roadnet.NewDijkstraRouter(g)}
	r := NewAsyncRouter(g, fb, false)
	r.Reset()
	if fb.resets != 1 {
		t.Fatalf("reset not forwarded (%d)", fb.resets)
	}
}
