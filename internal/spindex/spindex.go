// Package spindex implements a pruned landmark labeling (PLL) index for
// exact point-to-point shortest-path distance queries on a road network.
//
// The paper indexes shortest-path queries with hierarchical hub labeling
// (Delling et al. [18]); PLL is the standard openly reproducible member of
// the same family: both compute, for every node v, a label L(v) of
// (hub, distance) pairs such that every shortest path u→w is "covered" by a
// hub appearing in both L(u) and L(w), making a distance query a linear merge
// of two sorted labels.
//
// Edge weights in the road network are time-dependent per hourly slot but
// static *within* a slot, so the index is built per slot — lazily, since a
// simulation rarely touches all 24 profiles. Directed graphs need two labels
// per node: a forward label (distances from hubs reached by forward edges)
// and a backward label.
package spindex

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/roadnet"
)

// labelEntry is one (hub, distance) pair. The hub is stored by its *rank*
// in the processing order: hubs are processed rank-ascending, so appends keep
// every label sorted by rank and queries are a sorted-merge with no explicit
// sort step.
type labelEntry struct {
	hubRank int32
	dist    float32
}

// slotIndex is the PLL structure for a single time slot.
type slotIndex struct {
	fwd [][]labelEntry // fwd[v]: hubs h with dist(h → v)
	bwd [][]labelEntry // bwd[v]: hubs h with dist(v → h)
}

// Index answers exact SP(u,v,t) queries against a fixed Graph. Slot indexes
// are built lazily on first use and cached; concurrent queries are safe.
// Queries against an already-built slot are lock-free (one atomic load), so
// a long build of one slot never stalls queries in another — the property
// AsyncRouter's fallback-while-building design rests on. Builds themselves
// serialise on a mutex.
type Index struct {
	g     *roadnet.Graph
	order []roadnet.NodeID // vertex processing order (importance-descending)

	mu    sync.Mutex // serialises builds
	slots [roadnet.SlotsPerDay]atomic.Pointer[slotIndex]
}

// New prepares an index for g. No labels are built until the first query;
// use BuildSlot to pre-build.
func New(g *roadnet.Graph) *Index {
	n := g.NumNodes()
	// Order vertices by degree (in+out) descending — the classic PLL
	// heuristic: high-degree "hub-like" vertices first keeps labels small.
	order := make([]roadnet.NodeID, n)
	for i := range order {
		order[i] = roadnet.NodeID(i)
	}
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = len(g.OutEdges(roadnet.NodeID(i))) + len(g.InEdges(roadnet.NodeID(i)))
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := deg[order[a]], deg[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return &Index{g: g, order: order}
}

// BuildSlot constructs (or returns the cached) index for one hourly slot.
func (ix *Index) BuildSlot(slot int) {
	ix.slotIndex(slot)
}

func (ix *Index) slotIndex(slot int) *slotIndex {
	if si := ix.slots[slot].Load(); si != nil {
		return si
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if si := ix.slots[slot].Load(); si != nil {
		return si
	}
	si := ix.build(slot)
	ix.slots[slot].Store(si)
	return si
}

// build runs pruned forward+backward Dijkstras from each vertex in order.
// For directed graphs, a forward search from hub h adds (h, d) to fwd labels
// of reached vertices (h can reach them); a backward search adds to bwd
// labels (they can reach h).
func (ix *Index) build(slot int) *slotIndex {
	n := ix.g.NumNodes()
	si := &slotIndex{
		fwd: make([][]labelEntry, n),
		bwd: make([][]labelEntry, n),
	}
	dist := make([]float64, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	// rank[v] = position of v in the processing order; used for pruning by
	// hub priority.
	rank := make([]int, n)
	for i, v := range ix.order {
		rank[v] = i
	}

	type outFn func(roadnet.NodeID) []roadnet.Edge
	prunedDijkstra := func(h roadnet.NodeID, adj outFn, addTo [][]labelEntry, queryOther func(a, b roadnet.NodeID) float64) {
		var heap nodeHeap
		var touched []roadnet.NodeID
		dist[h] = 0
		touched = append(touched, h)
		heap.push(h, 0)
		for !heap.empty() {
			u, du := heap.pop()
			if settled[u] {
				continue
			}
			settled[u] = true
			// Prune: if an existing label pair already certifies a distance
			// ≤ du via a more important hub, u (and everything behind it)
			// does not need hub h.
			if queryOther(h, u) <= du {
				continue
			}
			addTo[u] = append(addTo[u], labelEntry{hubRank: int32(rank[h]), dist: float32(du)})
			for _, e := range adj(u) {
				if settled[e.To] || rank[e.To] < rank[h] {
					// Vertices more important than h already have their own
					// hub labels; do not route through them.
					continue
				}
				nd := du + ix.g.EdgeTimeSlot(e, slot)
				if nd < dist[e.To] {
					if math.IsInf(dist[e.To], 1) {
						touched = append(touched, e.To)
					}
					dist[e.To] = nd
					heap.push(e.To, nd)
				}
			}
		}
		for _, v := range touched {
			dist[v] = math.Inf(1)
			settled[v] = false
		}
	}

	queryFwd := func(h, u roadnet.NodeID) float64 { // dist h→u via existing labels
		return mergeQuery(si.bwd[h], si.fwd[u])
	}
	queryBwd := func(h, u roadnet.NodeID) float64 { // dist u→h via existing labels
		return mergeQuery(si.bwd[u], si.fwd[h])
	}

	for _, h := range ix.order {
		// Forward search: distances from h; populates fwd labels.
		prunedDijkstra(h, ix.g.OutEdges, si.fwd, queryFwd)
		// Backward search: distances to h; populates bwd labels.
		prunedDijkstra(h, ix.g.InEdges, si.bwd, queryBwd)
	}
	return si
}

// mergeQuery returns min over common hubs of bwdU.dist + fwdV.dist: the
// length of the best u→hub→v path certified by the labels. Labels are sorted
// by hub rank by construction.
func mergeQuery(bwdU, fwdV []labelEntry) float64 {
	best := math.Inf(1)
	i, j := 0, 0
	for i < len(bwdU) && j < len(fwdV) {
		switch {
		case bwdU[i].hubRank == fwdV[j].hubRank:
			if d := float64(bwdU[i].dist) + float64(fwdV[j].dist); d < best {
				best = d
			}
			i++
			j++
		case bwdU[i].hubRank < fwdV[j].hubRank:
			i++
		default:
			j++
		}
	}
	return best
}

// Dist returns the exact SP(u,v,t) for the slot containing t, or +Inf if v
// is unreachable from u.
func (ix *Index) Dist(u, v roadnet.NodeID, t float64) float64 {
	if u == v {
		return 0
	}
	si := ix.slotIndex(roadnet.Slot(t))
	return mergeQuery(si.bwd[u], si.fwd[v])
}

// Travel implements roadnet.Router: the index is the hub-label backend of
// the unified shortest-path substrate, safe for concurrent use (slot builds
// are internally synchronised).
func (ix *Index) Travel(from, to roadnet.NodeID, t float64) float64 {
	return ix.Dist(from, to, t)
}

// TravelMany implements roadnet.ManyRouter: one slot-index load and one
// backward-label fetch serve the entire target set.
func (ix *Index) TravelMany(from roadnet.NodeID, targets []roadnet.NodeID, t float64) []float64 {
	out := make([]float64, len(targets))
	if len(targets) == 0 {
		return out
	}
	si := ix.slotIndex(roadnet.Slot(t))
	bwd := si.bwd[from]
	for i, to := range targets {
		if to == from {
			out[i] = 0
			continue
		}
		out[i] = mergeQuery(bwd, si.fwd[to])
	}
	return out
}

// AsFunc adapts the index to the SPFunc oracle interface.
func (ix *Index) AsFunc() roadnet.SPFunc {
	return func(from, to roadnet.NodeID, t float64) float64 { return ix.Dist(from, to, t) }
}

var (
	_ roadnet.Router     = (*Index)(nil)
	_ roadnet.ManyRouter = (*Index)(nil)
)

// LabelStats reports the average and maximum label size for a built slot —
// the usual quality measure of a hub labeling.
func (ix *Index) LabelStats(slot int) (avg float64, max int) {
	si := ix.slotIndex(slot)
	total := 0
	for v := range si.fwd {
		s := len(si.fwd[v]) + len(si.bwd[v])
		total += s
		if s > max {
			max = s
		}
	}
	if len(si.fwd) > 0 {
		avg = float64(total) / float64(len(si.fwd))
	}
	return avg, max
}

// nodeHeap is a local binary min-heap (same layout as roadnet's, duplicated
// to keep the packages decoupled and the hot loop monomorphic).
type nodeHeap struct {
	node []roadnet.NodeID
	dist []float64
}

func (h *nodeHeap) push(u roadnet.NodeID, d float64) {
	h.node = append(h.node, u)
	h.dist = append(h.dist, d)
	i := len(h.node) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dist[p] <= h.dist[i] {
			break
		}
		h.node[p], h.node[i] = h.node[i], h.node[p]
		h.dist[p], h.dist[i] = h.dist[i], h.dist[p]
		i = p
	}
}

func (h *nodeHeap) pop() (roadnet.NodeID, float64) {
	u, d := h.node[0], h.dist[0]
	last := len(h.node) - 1
	h.node[0], h.dist[0] = h.node[last], h.dist[last]
	h.node = h.node[:last]
	h.dist = h.dist[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.dist[l] < h.dist[s] {
			s = l
		}
		if r < last && h.dist[r] < h.dist[s] {
			s = r
		}
		if s == i {
			break
		}
		h.node[i], h.node[s] = h.node[s], h.node[i]
		h.dist[i], h.dist[s] = h.dist[s], h.dist[i]
		i = s
	}
	return u, d
}

func (h *nodeHeap) empty() bool { return len(h.node) == 0 }
