package spindex

import (
	"sync"
	"sync/atomic"

	"repro/internal/roadnet"
)

// swapIdx pairs an epoch with the Index serving it.
type swapIdx struct {
	epoch uint64
	ix    *Index
}

// SwapIndex is the hub-label backend of the dynamic road network: an
// epoch-versioned Index whose rebuilds run off the query path. A hub-label
// index is expensive to construct — pruned Dijkstras from every vertex, per
// slot — so unlike the cheap DistCache the engine rebuilds synchronously at
// each epoch swap, a new hub labeling is built asynchronously, slot by
// slot, while queries keep hitting the previous epoch's labels. Only when
// the requested slots are fully built does the new index swap in (one
// atomic store); a publish that is superseded by a newer epoch mid-build is
// abandoned rather than swapped, so the served epoch is monotonic.
//
// Queries (Travel/Dist) are safe from any goroutine; Publish may be called
// concurrently with queries and with other publishes.
type SwapIndex struct {
	cur atomic.Pointer[swapIdx]
	mu  sync.Mutex // guards swap-in ordering decisions
	wg  sync.WaitGroup
}

// NewSwapIndex returns a SwapIndex serving epoch 0 over g. Slots of the
// epoch-0 index build lazily on first query, exactly like a plain Index;
// pre-build with Publish or Index.BuildSlot when query latency matters.
func NewSwapIndex(g *roadnet.Graph) *SwapIndex {
	s := &SwapIndex{}
	s.cur.Store(&swapIdx{epoch: 0, ix: New(g)})
	return s
}

// Epoch returns the epoch currently answering queries.
func (s *SwapIndex) Epoch() uint64 { return s.cur.Load().epoch }

// Index returns the Index currently answering queries.
func (s *SwapIndex) Index() *Index { return s.cur.Load().ix }

// Dist answers SP(u,v,t) from the current epoch's labels.
func (s *SwapIndex) Dist(u, v roadnet.NodeID, t float64) float64 {
	return s.cur.Load().ix.Dist(u, v, t)
}

// Travel implements roadnet.Router.
func (s *SwapIndex) Travel(from, to roadnet.NodeID, t float64) float64 {
	return s.cur.Load().ix.Dist(from, to, t)
}

// Publish starts an asynchronous rebuild for a new weight epoch: a fresh
// Index over g whose labels for the given slots are built in a background
// goroutine (no slots = nothing pre-built, labels build lazily after the
// swap). The returned channel closes when the build finishes — whether the
// index swapped in or was abandoned because a newer epoch landed first; the
// previous epoch serves every query in between. Queries for slots outside
// the pre-built set pay the usual lazy build cost after the swap.
func (s *SwapIndex) Publish(epoch uint64, g *roadnet.Graph, slots ...int) <-chan struct{} {
	done := make(chan struct{})
	if g == nil || epoch <= s.Epoch() {
		close(done)
		return done
	}
	s.wg.Add(1)
	go func() {
		defer close(done)
		defer s.wg.Done()
		ix := New(g)
		for _, slot := range slots {
			if slot < 0 || slot >= roadnet.SlotsPerDay {
				continue
			}
			if epoch <= s.Epoch() {
				return // superseded mid-build; stop wasting the CPU
			}
			ix.BuildSlot(slot)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if cur := s.cur.Load(); epoch > cur.epoch {
			s.cur.Store(&swapIdx{epoch: epoch, ix: ix})
		}
	}()
	return done
}

// Wait blocks until every in-flight build has finished (tests and orderly
// shutdown).
func (s *SwapIndex) Wait() { s.wg.Wait() }

var _ roadnet.Router = (*SwapIndex)(nil)
