package spindex

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// swapTestGraph builds a small two-way grid.
func swapTestGraph(tb testing.TB) *roadnet.Graph {
	tb.Helper()
	b := roadnet.NewBuilder()
	const dim = 5
	origin := geo.Point{Lat: 12.90, Lon: 77.50}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*200, float64(c)*200))
		}
	}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*dim + c) }
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if c+1 < dim {
				b.AddEdge(id(r, c), id(r, c+1), 200, 50, 0)
				b.AddEdge(id(r, c+1), id(r, c), 200, 50, 0)
			}
			if r+1 < dim {
				b.AddEdge(id(r, c), id(r+1, c), 200, 50, 0)
				b.AddEdge(id(r+1, c), id(r, c), 200, 50, 0)
			}
		}
	}
	return b.MustBuild()
}

func TestSwapIndexServesOldEpochUntilBuilt(t *testing.T) {
	g := swapTestGraph(t)
	s := NewSwapIndex(g)
	tAt := 10.5 * 3600
	slot := roadnet.Slot(tAt)
	base := s.Dist(0, 24, tAt)
	if math.IsInf(base, 1) {
		t.Fatal("base graph disconnected in test")
	}

	w := roadnet.NewSlotWeights()
	for u := 0; u < g.NumNodes(); u++ {
		for _, e := range g.OutEdges(roadnet.NodeID(u)) {
			if err := w.Set(roadnet.NodeID(u), e.To, slot, 500); err != nil {
				t.Fatal(err)
			}
		}
	}
	slowed := g.Reweighted(w)

	done := s.Publish(1, slowed, slot)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publish build never finished")
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch after build %d want 1", s.Epoch())
	}
	after := s.Dist(0, 24, tAt)
	if after <= base {
		t.Fatalf("new epoch invisible: %v <= %v", after, base)
	}
	if want := roadnet.ShortestPath(slowed, 0, 24, tAt); math.Abs(after-want) > 1e-6 {
		t.Fatalf("hub labels diverge from Dijkstra on new epoch: %v want %v", after, want)
	}

	// Stale publish: rejected immediately.
	select {
	case <-s.Publish(1, g, slot):
	case <-time.After(time.Second):
		t.Fatal("stale publish did not resolve immediately")
	}
	if s.Epoch() != 1 {
		t.Fatalf("stale publish moved epoch to %d", s.Epoch())
	}
	if s.Publish(2, nil, slot); s.Epoch() != 1 {
		t.Fatal("nil graph publish moved the epoch")
	}
}

// TestSwapIndexConcurrentPublish queries continuously while several epochs
// publish concurrently; every answer must match some published epoch's
// exact distance, and the final epoch must be the newest. Run under -race.
func TestSwapIndexConcurrentPublish(t *testing.T) {
	g := swapTestGraph(t)
	tAt := 9.25 * 3600
	slot := roadnet.Slot(tAt)

	graphs := []*roadnet.Graph{g}
	valid := map[float64]bool{roadnet.ShortestPath(g, 0, 24, tAt): true}
	for i := 1; i <= 4; i++ {
		w := roadnet.NewSlotWeights()
		for u := 0; u < g.NumNodes(); u++ {
			for _, e := range g.OutEdges(roadnet.NodeID(u)) {
				if err := w.Set(roadnet.NodeID(u), e.To, slot, 50+float64(i)*25); err != nil {
					t.Fatal(err)
				}
			}
		}
		ng := g.Reweighted(w)
		graphs = append(graphs, ng)
		valid[roadnet.ShortestPath(ng, 0, 24, tAt)] = true
	}

	s := NewSwapIndex(g)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if d := s.Dist(0, 24, tAt); !valid[d] {
					select {
					case errs <- "distance from no published epoch":
					default:
					}
					return
				}
			}
		}()
	}
	var dones []<-chan struct{}
	for i := 1; i < len(graphs); i++ {
		dones = append(dones, s.Publish(uint64(i), graphs[i], slot))
	}
	for _, d := range dones {
		<-d
	}
	close(stop)
	wg.Wait()
	s.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if got := s.Epoch(); got != uint64(len(graphs)-1) {
		t.Fatalf("final epoch %d want %d", got, len(graphs)-1)
	}
}
