package spindex

import (
	"sync"
	"sync/atomic"

	"repro/internal/roadnet"
)

// Per-slot build states of an AsyncRouter.
const (
	slotIdle int32 = iota
	slotBuilding
	slotReady
)

// AsyncRouter is the hub-label Router built for the engine's epoch-swapped
// decision plane: exact hub-label queries once a slot's labels exist, a
// fallback Router (typically the bounded-SSSP cache) while they build. The
// first query that touches a slot kicks off a background build of that slot
// AND the next one — `(slot+1) % SlotsPerDay`, so a replay crossing
// midnight pre-builds slot 0 while still answering in slot 23 — and keeps
// answering from the fallback until the labels land. Constructing an
// AsyncRouter is cheap (no labels are built), which is exactly what
// roadnet.SwapRouter.Publish needs: every weight epoch gets a fresh
// AsyncRouter and the expensive per-slot label builds happen off the
// query path.
//
// SyncBuild flips the router into a deterministic mode for replays and
// golden tests: the first query of a slot builds its labels synchronously
// (no fallback answers, no build/query race on when answers switch
// backend).
//
// Concurrency: like the bounded cache it wraps, Travel is meant to be
// driven by one goroutine at a time (the engine keeps one Router per zone
// shard); the background builds synchronise internally and may overlap
// queries freely.
type AsyncRouter struct {
	ix       *Index
	fallback roadnet.Router
	sync     bool
	state    [roadnet.SlotsPerDay]atomic.Int32
	wg       sync.WaitGroup
}

// NewAsyncRouter returns an AsyncRouter over g. fallback answers queries
// while labels build; syncBuild trades first-query latency for determinism
// (see type docs).
func NewAsyncRouter(g *roadnet.Graph, fallback roadnet.Router, syncBuild bool) *AsyncRouter {
	return &AsyncRouter{ix: New(g), fallback: fallback, sync: syncBuild}
}

// Travel implements roadnet.Router.
func (r *AsyncRouter) Travel(from, to roadnet.NodeID, t float64) float64 {
	slot := roadnet.Slot(t)
	if r.state[slot].Load() == slotReady {
		return r.ix.Dist(from, to, t)
	}
	if r.sync {
		r.ix.BuildSlot(slot)
		r.state[slot].Store(slotReady)
		return r.ix.Dist(from, to, t)
	}
	r.ensureBuilding(slot)
	// Pre-warm the next slot too: by the time the replay clock crosses the
	// boundary (including 23 → 0 at midnight) its labels are usually ready.
	r.ensureBuilding((slot + 1) % roadnet.SlotsPerDay)
	return r.fallback.Travel(from, to, t)
}

// TravelMany implements roadnet.ManyRouter: the same readiness routing as
// Travel, decided once for the whole batch (one slot, one epoch of labels
// or one fallback pass — never a mix).
func (r *AsyncRouter) TravelMany(from roadnet.NodeID, targets []roadnet.NodeID, t float64) []float64 {
	slot := roadnet.Slot(t)
	if r.state[slot].Load() == slotReady {
		return r.ix.TravelMany(from, targets, t)
	}
	if r.sync {
		r.ix.BuildSlot(slot)
		r.state[slot].Store(slotReady)
		return r.ix.TravelMany(from, targets, t)
	}
	r.ensureBuilding(slot)
	r.ensureBuilding((slot + 1) % roadnet.SlotsPerDay)
	return roadnet.TravelMany(r.fallback, from, targets, t)
}

// RouterKind implements roadnet.Kinded.
func (r *AsyncRouter) RouterKind() string { return "hublabel" }

// ensureBuilding starts one background label build for a slot, exactly once.
func (r *AsyncRouter) ensureBuilding(slot int) {
	if !r.state[slot].CompareAndSwap(slotIdle, slotBuilding) {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.ix.BuildSlot(slot)
		r.state[slot].Store(slotReady)
	}()
}

// Ready reports whether a slot's labels are serving queries.
func (r *AsyncRouter) Ready(slot int) bool {
	return slot >= 0 && slot < roadnet.SlotsPerDay && r.state[slot].Load() == slotReady
}

// Wait blocks until every in-flight label build has finished (tests,
// orderly shutdown).
func (r *AsyncRouter) Wait() { r.wg.Wait() }

// Reset implements roadnet.Resettable by forwarding to the fallback: the
// engine resets its shard routers at slot boundaries to drop stale memoised
// rows, and the labels themselves are per slot already.
func (r *AsyncRouter) Reset() {
	if in, ok := r.fallback.(roadnet.Resettable); ok {
		in.Reset()
	}
}

// Interface conformance.
var (
	_ roadnet.Router     = (*AsyncRouter)(nil)
	_ roadnet.Resettable = (*AsyncRouter)(nil)
)
