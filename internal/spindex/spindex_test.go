package spindex

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func randomGraph(rng *rand.Rand, n, extra int, timeDep bool) *roadnet.Graph {
	b := roadnet.NewBuilder()
	var zone uint32
	if timeDep {
		var mult [roadnet.SlotsPerDay]float64
		for i := range mult {
			mult[i] = 1 + 0.5*math.Sin(float64(i))
			if mult[i] < 0.6 {
				mult[i] = 0.6
			}
		}
		zone = b.AddZone(mult)
	}
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{Lat: rng.Float64(), Lon: rng.Float64()})
	}
	for i := 0; i < n; i++ {
		w := 1 + rng.Float64()*10
		b.AddEdge(roadnet.NodeID(i), roadnet.NodeID((i+1)%n), w*10, w, zone)
	}
	for i := 0; i < extra; i++ {
		u := roadnet.NodeID(rng.Intn(n))
		v := roadnet.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		w := 1 + rng.Float64()*10
		b.AddEdge(u, v, w*10, w, zone)
	}
	return b.MustBuild()
}

func TestIndexMatchesDijkstraAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 70, 250, false)
	ix := New(g)
	e := roadnet.NewSSSP(g)
	for u := 0; u < g.NumNodes(); u++ {
		view := e.FromSource(roadnet.NodeID(u), 0, math.Inf(1))
		for v := 0; v < g.NumNodes(); v++ {
			want := view.Get(roadnet.NodeID(v))
			got := ix.Dist(roadnet.NodeID(u), roadnet.NodeID(v), 0)
			if math.Abs(got-want) > 1e-3 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("PLL(%d,%d) = %v, Dijkstra = %v", u, v, got, want)
			}
		}
	}
}

func TestIndexSelfDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 20, 40, false)
	ix := New(g)
	for u := 0; u < g.NumNodes(); u++ {
		if d := ix.Dist(roadnet.NodeID(u), roadnet.NodeID(u), 0); d != 0 {
			t.Fatalf("self distance = %v", d)
		}
	}
}

func TestIndexUnreachable(t *testing.T) {
	b := roadnet.NewBuilder()
	u := b.AddNode(geo.Point{})
	v := b.AddNode(geo.Point{Lat: 1})
	w := b.AddNode(geo.Point{Lat: 2})
	b.AddEdge(u, v, 10, 5, 0)
	b.AddEdge(v, u, 10, 5, 0)
	g := b.MustBuild()
	ix := New(g)
	if d := ix.Dist(u, w, 0); !math.IsInf(d, 1) {
		t.Fatalf("unreachable distance = %v, want +Inf", d)
	}
	if d := ix.Dist(w, u, 0); !math.IsInf(d, 1) {
		t.Fatalf("unreachable (reverse) distance = %v, want +Inf", d)
	}
}

func TestIndexDirectedAsymmetry(t *testing.T) {
	// u -> v cheap, v -> u expensive via ring; the index must preserve the
	// asymmetry of directed shortest paths.
	b := roadnet.NewBuilder()
	var ids []roadnet.NodeID
	for i := 0; i < 5; i++ {
		ids = append(ids, b.AddNode(geo.Point{Lat: float64(i)}))
	}
	for i := 0; i < 5; i++ {
		b.AddEdge(ids[i], ids[(i+1)%5], 10, 10, 0)
	}
	g := b.MustBuild()
	ix := New(g)
	if d := ix.Dist(ids[0], ids[1], 0); d != 10 {
		t.Fatalf("forward dist = %v, want 10", d)
	}
	if d := ix.Dist(ids[1], ids[0], 0); d != 40 {
		t.Fatalf("around-the-ring dist = %v, want 40", d)
	}
}

func TestIndexTimeSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 40, 120, true)
	ix := New(g)
	e := roadnet.NewSSSP(g)
	for _, hour := range []int{0, 8, 13, 20} {
		tt := float64(hour) * 3600
		for trial := 0; trial < 60; trial++ {
			u := roadnet.NodeID(rng.Intn(40))
			v := roadnet.NodeID(rng.Intn(40))
			want := e.Distance(u, v, tt)
			got := ix.Dist(u, v, tt)
			if math.Abs(got-want) > 1e-3 {
				t.Fatalf("slot %d: PLL(%d,%d)=%v, want %v", hour, u, v, got, want)
			}
		}
	}
}

func TestIndexConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 30, 60, false)
	ix := New(g)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				u := roadnet.NodeID(r.Intn(30))
				v := roadnet.NodeID(r.Intn(30))
				_ = ix.Dist(u, v, float64(r.Intn(24))*3600)
			}
			done <- true
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestLabelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 50, 150, false)
	ix := New(g)
	avg, max := ix.LabelStats(0)
	if avg <= 0 || max <= 0 {
		t.Fatalf("label stats avg=%v max=%d", avg, max)
	}
	if avg > float64(2*g.NumNodes()) {
		t.Fatalf("average label size %v exceeds trivial bound", avg)
	}
}

func BenchmarkPLLQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 500, 1500, false)
	ix := New(g)
	ix.BuildSlot(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := roadnet.NodeID(i % 500)
		v := roadnet.NodeID((i * 7) % 500)
		_ = ix.Dist(u, v, 0)
	}
}

func BenchmarkDijkstraQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 500, 1500, false)
	e := roadnet.NewSSSP(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := roadnet.NodeID(i % 500)
		v := roadnet.NodeID((i * 7) % 500)
		_ = e.Distance(u, v, 0)
	}
}
