package engine

import (
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// sharder partitions the road network into K contiguous geographic zones by
// recursive median splits of the node coordinates (a KD partition): at each
// level the node set is cut along its wider axis at the quantile that keeps
// the shard sizes balanced for any K, not just powers of two. Each zone runs
// its own policy instance, so FoodGraph construction and KM matching for
// disjoint zones proceed in parallel.
type sharder struct {
	k     int
	of    []int32 // node -> shard
	boxes []bbox  // shard -> geographic bounding box
}

// bbox is a lat/lon-aligned bounding box in degrees.
type bbox struct {
	minLat, minLon, maxLat, maxLon float64
}

func emptyBox() bbox {
	return bbox{
		minLat: math.Inf(1), minLon: math.Inf(1),
		maxLat: math.Inf(-1), maxLon: math.Inf(-1),
	}
}

func (b *bbox) extend(p geo.Point) {
	b.minLat = math.Min(b.minLat, p.Lat)
	b.maxLat = math.Max(b.maxLat, p.Lat)
	b.minLon = math.Min(b.minLon, p.Lon)
	b.maxLon = math.Max(b.maxLon, p.Lon)
}

// distM approximates the distance in metres from p to the box (0 inside).
// An equirectangular approximation is plenty at city scale.
func (b *bbox) distM(p geo.Point) float64 {
	dLat := 0.0
	switch {
	case p.Lat < b.minLat:
		dLat = b.minLat - p.Lat
	case p.Lat > b.maxLat:
		dLat = p.Lat - b.maxLat
	}
	dLon := 0.0
	switch {
	case p.Lon < b.minLon:
		dLon = b.minLon - p.Lon
	case p.Lon > b.maxLon:
		dLon = p.Lon - b.maxLon
	}
	mPerDegLat := 111_000.0
	mPerDegLon := 111_000.0 * math.Cos(geo.Rad(p.Lat))
	return math.Hypot(dLat*mPerDegLat, dLon*mPerDegLon)
}

// newSharder builds a K-way partition of g's nodes.
func newSharder(g *roadnet.Graph, k int) *sharder {
	n := g.NumNodes()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	sh := &sharder{k: k, of: make([]int32, n), boxes: make([]bbox, k)}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sh.split(g, idx, k, 0)
	for i := range sh.boxes {
		sh.boxes[i] = emptyBox()
	}
	for i := 0; i < n; i++ {
		b := &sh.boxes[sh.of[i]]
		b.extend(g.Point(roadnet.NodeID(i)))
	}
	return sh
}

// split recursively assigns idx's nodes to shards [base, base+k).
func (sh *sharder) split(g *roadnet.Graph, idx []int, k, base int) {
	if k <= 1 {
		for _, i := range idx {
			sh.of[i] = int32(base)
		}
		return
	}
	// Wider axis in metres decides the cut direction.
	box := emptyBox()
	for _, i := range idx {
		box.extend(g.Point(roadnet.NodeID(i)))
	}
	midLat := (box.minLat + box.maxLat) / 2
	latExtent := (box.maxLat - box.minLat) * 111_000
	lonExtent := (box.maxLon - box.minLon) * 111_000 * math.Cos(geo.Rad(midLat))
	byLat := latExtent >= lonExtent
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := g.Point(roadnet.NodeID(idx[a])), g.Point(roadnet.NodeID(idx[b]))
		if byLat {
			if pa.Lat != pb.Lat {
				return pa.Lat < pb.Lat
			}
			return pa.Lon < pb.Lon
		}
		if pa.Lon != pb.Lon {
			return pa.Lon < pb.Lon
		}
		return pa.Lat < pb.Lat
	})
	kl := k / 2
	cut := len(idx) * kl / k
	sh.split(g, idx[:cut], kl, base)
	sh.split(g, idx[cut:], k-kl, base+kl)
}

// shardOf returns the home shard of a node.
func (sh *sharder) shardOf(n roadnet.NodeID) int { return int(sh.of[n]) }

// nearShards appends to dst the shards other than `own` whose zone lies
// within marginM metres of p — the candidates for cross-shard handoff of a
// boundary-straddling order.
func (sh *sharder) nearShards(dst []int, p geo.Point, own int, marginM float64) []int {
	for s := 0; s < sh.k; s++ {
		if s == own {
			continue
		}
		if sh.boxes[s].distM(p) <= marginM {
			dst = append(dst, s)
		}
	}
	return dst
}
