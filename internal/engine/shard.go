package engine

import (
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// sharder partitions the road network into K contiguous geographic zones by
// recursive median splits of the node coordinates (a KD partition): at each
// level the node set is cut along its wider axis at the quantile that keeps
// the shard sizes balanced for any K, not just powers of two. Each zone runs
// its own policy instance, so FoodGraph construction and KM matching for
// disjoint zones proceed in parallel.
type sharder struct {
	k     int
	of    []int32 // node -> shard
	boxes []bbox  // shard -> geographic bounding box
}

// bbox is a lat/lon-aligned bounding box in degrees.
type bbox struct {
	minLat, minLon, maxLat, maxLon float64
}

func emptyBox() bbox {
	return bbox{
		minLat: math.Inf(1), minLon: math.Inf(1),
		maxLat: math.Inf(-1), maxLon: math.Inf(-1),
	}
}

func (b *bbox) extend(p geo.Point) {
	b.minLat = math.Min(b.minLat, p.Lat)
	b.maxLat = math.Max(b.maxLat, p.Lat)
	b.minLon = math.Min(b.minLon, p.Lon)
	b.maxLon = math.Max(b.maxLon, p.Lon)
}

// distM approximates the distance in metres from p to the box (0 inside).
// An equirectangular approximation is plenty at city scale.
func (b *bbox) distM(p geo.Point) float64 {
	dLat := 0.0
	switch {
	case p.Lat < b.minLat:
		dLat = b.minLat - p.Lat
	case p.Lat > b.maxLat:
		dLat = p.Lat - b.maxLat
	}
	dLon := 0.0
	switch {
	case p.Lon < b.minLon:
		dLon = b.minLon - p.Lon
	case p.Lon > b.maxLon:
		dLon = p.Lon - b.maxLon
	}
	mPerDegLat := 111_000.0
	mPerDegLon := 111_000.0 * math.Cos(geo.Rad(p.Lat))
	return math.Hypot(dLat*mPerDegLat, dLon*mPerDegLon)
}

// newSharder builds a K-way partition of g's nodes balanced by node count.
func newSharder(g *roadnet.Graph, k int) *sharder {
	return newSharderWeighted(g, k, nil)
}

// newSharderWeighted builds a K-way partition of g's nodes where each
// recursive cut balances total node weight instead of node count. Weights
// are indexed by node id; nil means uniform, which reproduces newSharder's
// partition exactly (the weighted cut degenerates to the same integer
// quantile). Every shard is guaranteed at least one node regardless of how
// degenerate the weight vector is: the cut is clamped so each side keeps at
// least as many nodes as shards it still has to produce.
func newSharderWeighted(g *roadnet.Graph, k int, w []float64) *sharder {
	n := g.NumNodes()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	sh := &sharder{k: k, of: make([]int32, n), boxes: make([]bbox, k)}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sh.split(g, idx, k, 0, w)
	for i := range sh.boxes {
		sh.boxes[i] = emptyBox()
	}
	for i := 0; i < n; i++ {
		b := &sh.boxes[sh.of[i]]
		b.extend(g.Point(roadnet.NodeID(i)))
	}
	return sh
}

// relabelToMatch permutes sh's zone ids to maximise node overlap with ref's
// zones (greedy max-overlap matching; ties break to the lowest new id, then
// the lowest ref id — fully deterministic). Without this, a re-split whose
// geometry barely moved can still relabel every zone wholesale — migrating
// the whole fleet and orphaning every zone's warm distance cache for what
// is substantively the same partition. Relabelling against the *canonical*
// node-balanced partition (not the previous demand split) keeps the result
// a pure function of (graph, k, weights), which is what lets checkpoint
// restore rebuild the identical partition from the persisted demand vector.
// No-op when the zone counts differ.
func (sh *sharder) relabelToMatch(ref *sharder) {
	k := sh.k
	if ref == nil || ref.k != k || k < 2 {
		return
	}
	overlap := make([][]int, k) // [new zone][ref zone] -> shared nodes
	for n := range overlap {
		overlap[n] = make([]int, k)
	}
	for node, nz := range sh.of {
		overlap[nz][ref.of[node]]++
	}
	perm := make([]int, k) // new zone id -> relabelled id
	for n := range perm {
		perm[n] = -1
	}
	used := make([]bool, k)
	for assigned := 0; assigned < k; assigned++ {
		bestN, bestO, best := -1, -1, -1
		for n := 0; n < k; n++ {
			if perm[n] >= 0 {
				continue
			}
			for o := 0; o < k; o++ {
				if used[o] {
					continue
				}
				if overlap[n][o] > best {
					best, bestN, bestO = overlap[n][o], n, o
				}
			}
		}
		perm[bestN] = bestO
		used[bestO] = true
	}
	for i, z := range sh.of {
		sh.of[i] = int32(perm[z])
	}
	boxes := make([]bbox, k)
	for n, o := range perm {
		boxes[o] = sh.boxes[n]
	}
	sh.boxes = boxes
}

// split recursively assigns idx's nodes to shards [base, base+k).
func (sh *sharder) split(g *roadnet.Graph, idx []int, k, base int, w []float64) {
	if k <= 1 {
		for _, i := range idx {
			sh.of[i] = int32(base)
		}
		return
	}
	// Wider axis in metres decides the cut direction.
	box := emptyBox()
	for _, i := range idx {
		box.extend(g.Point(roadnet.NodeID(i)))
	}
	midLat := (box.minLat + box.maxLat) / 2
	latExtent := (box.maxLat - box.minLat) * 111_000
	lonExtent := (box.maxLon - box.minLon) * 111_000 * math.Cos(geo.Rad(midLat))
	byLat := latExtent >= lonExtent
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := g.Point(roadnet.NodeID(idx[a])), g.Point(roadnet.NodeID(idx[b]))
		if byLat {
			if pa.Lat != pb.Lat {
				return pa.Lat < pb.Lat
			}
			return pa.Lon < pb.Lon
		}
		if pa.Lon != pb.Lon {
			return pa.Lon < pb.Lon
		}
		return pa.Lat < pb.Lat
	})
	kl := k / 2
	cut := len(idx) * kl / k
	if w != nil {
		// Weighted quantile: the left side takes the longest prefix whose
		// weight stays within kl/k of the total. Exact division keeps the
		// uniform case identical to the integer quantile above.
		total := 0.0
		for _, i := range idx {
			total += w[i]
		}
		target := total * float64(kl) / float64(k)
		acc := 0.0
		cut = 0
		for cut < len(idx) && acc+w[idx[cut]] <= target {
			acc += w[idx[cut]]
			cut++
		}
	}
	// Each side must keep at least one node per shard it still produces.
	if lo := kl; cut < lo {
		cut = lo
	}
	if hi := len(idx) - (k - kl); cut > hi {
		cut = hi
	}
	sh.split(g, idx[:cut], kl, base, w)
	sh.split(g, idx[cut:], k-kl, base+kl, w)
}

// shardOf returns the home shard of a node.
func (sh *sharder) shardOf(n roadnet.NodeID) int { return int(sh.of[n]) }

// nearShards appends to dst the shards other than `own` whose zone lies
// within marginM metres of p — the candidates for cross-shard handoff of a
// boundary-straddling order.
func (sh *sharder) nearShards(dst []int, p geo.Point, own int, marginM float64) []int {
	for s := 0; s < sh.k; s++ {
		if s == own {
			continue
		}
		if sh.boxes[s].distM(p) <= marginM {
			dst = append(dst, s)
		}
	}
	return dst
}
