//go:build race

package engine

// raceEnabled reports whether the race detector is compiled in; heavyweight
// value-identity replays use it to stay inside the package test timeout.
const raceEnabled = true
