package engine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// BenchmarkStepParallel measures a short streamed replay — several
// consecutive ∆ rounds with orders arriving between them — at increasing
// zone-shard counts. Where BenchmarkEngineRound stresses one cold
// maximum-pressure round, this is the steady-state shape: warm distance
// caches, pools carried between rounds, and the phased round's parallel
// sections (per-shard advance, match, replan) running against each other.
// Elastic re-splitting runs at its daemon-default cadence, so the replay
// pays (and measures) the demand-weighted re-split plus cache warm-up, and
// the reported balance-max/mean metric — per-shard pool totals over loaded
// post-re-split rounds — lands in CI's BENCH_step.json artifact next to the
// timings.
//
//	go test ./internal/engine -bench StepParallel -benchtime 3x
func BenchmarkStepParallel(b *testing.B) {
	city := workload.MustPreset("CityB", workload.DefaultScale, 1)
	start := 19.0 * 3600
	const rounds = 20
	cfg := model.DefaultConfig()
	end := start + float64(rounds)*cfg.Delta
	orders := workload.OrderStreamWindow(city, 1, start, end)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(len(orders)), "orders/replay")
			var loads []roundLoad
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := workload.OrderStreamWindow(city, 1, start, end)
				fleet := city.Fleet(1.0, cfg.MaxO, 1)
				e, err := New(city.G, fleet, Config{
					Pipeline: cfg, Shards: shards, QueueSize: len(fresh) + 1,
					ResplitSec: 900,
				})
				if err != nil {
					b.Fatal(err)
				}
				e.roundMu.Lock()
				e.clock = start
				e.clockBits.Store(math.Float64bits(start))
				e.roundMu.Unlock()
				next := 0
				loads = loads[:0]
				b.StartTimer()
				for now := start + cfg.Delta; now <= end; now += cfg.Delta {
					for next < len(fresh) && fresh[next].PlacedAt < now {
						if err := e.SubmitOrder(fresh[next]); err != nil {
							b.Fatal(err)
						}
						next++
					}
					stats := e.Step(now)
					load := roundLoad{epoch: stats.ShardEpoch}
					for _, s := range stats.Shards {
						load.shards = append(load.shards, s.Orders)
					}
					loads = append(loads, load)
				}
			}
			if shards > 1 {
				if ratio, measured := shardBalanceRatio(loads); measured > 0 {
					b.ReportMetric(ratio, "balance-max/mean")
				}
			}
		})
	}
}

// BenchmarkObsOverhead pins the cost of the observability plane: the same
// loaded CityB dinner round as BenchmarkEngineRound, run with the full
// instrumentation (histograms, lifecycle tracer, span tree; obs=on) and
// with Config.DisableObs (obs=off). The acceptance bar is < 2% between the
// arms — recording is lock-free atomic adds plus a handful of time.Now()
// calls per round, so the two arms should be statistically
// indistinguishable. CI persists this as BENCH_obs.json.
//
//	go test ./internal/engine -bench ObsOverhead -benchtime 5x
func BenchmarkObsOverhead(b *testing.B) {
	city := workload.MustPreset("CityB", workload.DefaultScale, 1)
	start := 19.0 * 3600
	wEnd := start + 1200
	orders := workload.OrderStreamWindow(city, 1, start, wEnd)
	for _, arm := range []struct {
		name    string
		disable bool
	}{{"obs=on", false}, {"obs=off", true}} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := model.DefaultConfig()
			b.ReportMetric(float64(len(orders)), "orders/round")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := workload.OrderStreamWindow(city, 1, start, wEnd)
				fleet := city.Fleet(1.0, cfg.MaxO, 1)
				e, err := New(city.G, fleet, Config{
					Pipeline: cfg, Shards: 1,
					QueueSize:  len(fresh) + 1,
					DisableObs: arm.disable,
					TraceRing:  4096,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, o := range fresh {
					if err := e.SubmitOrder(o); err != nil {
						b.Fatal(err)
					}
				}
				e.roundMu.Lock()
				e.clock = wEnd - cfg.Delta
				e.clockBits.Store(math.Float64bits(e.clock))
				e.roundMu.Unlock()
				b.StartTimer()
				stats := e.Step(wEnd)
				if stats.AssignedOrders == 0 && len(fresh) > 0 && stats.AvailableVehicles > 0 {
					b.Fatalf("round assigned nothing (pool %d, vehicles %d)", stats.PoolSize, stats.AvailableVehicles)
				}
			}
		})
	}
}

// BenchmarkEngineRound measures one loaded dinner-peak assignment round —
// queue drain, vehicle advancement, zone partition, parallel per-shard
// batching→FoodGraph→KM, application — at 1 shard vs K shards on the
// Table II cities. The pool accumulates 20 minutes of peak orders so the
// round carries production-shaped pressure; each iteration rebuilds the
// engine and fleet (under StopTimer) because a round consumes its pool.
//
//	go test ./internal/engine -bench EngineRound -benchtime 5x
func BenchmarkEngineRound(b *testing.B) {
	for _, cityName := range []string{"CityA", "CityB", "CityC"} {
		city := workload.MustPreset(cityName, workload.DefaultScale, 1)
		start := 19.0 * 3600
		wEnd := start + 1200
		orders := workload.OrderStreamWindow(city, 1, start, wEnd)
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", cityName, shards), func(b *testing.B) {
				cfg := model.DefaultConfig()
				if cityName == "CityA" {
					cfg.Delta = 60
				}
				b.ReportMetric(float64(len(orders)), "orders/round")
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fresh := workload.OrderStreamWindow(city, 1, start, wEnd)
					fleet := city.Fleet(1.0, cfg.MaxO, 1)
					e, err := New(city.G, fleet, Config{Pipeline: cfg, Shards: shards, QueueSize: len(fresh) + 1})
					if err != nil {
						b.Fatal(err)
					}
					for _, o := range fresh {
						if err := e.SubmitOrder(o); err != nil {
							b.Fatal(err)
						}
					}
					// Park the clock at the window start so the measured
					// Step spans exactly one ∆ of movement plus the round.
					e.roundMu.Lock()
					e.clock = wEnd - cfg.Delta
					e.clockBits.Store(math.Float64bits(e.clock))
					e.roundMu.Unlock()
					b.StartTimer()
					stats := e.Step(wEnd)
					if stats.AssignedOrders == 0 && len(fresh) > 0 && stats.AvailableVehicles > 0 {
						b.Fatalf("round assigned nothing (pool %d, vehicles %d)", stats.PoolSize, stats.AvailableVehicles)
					}
				}
			})
		}
	}
}
