package engine

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// BenchmarkEngineRound measures one loaded dinner-peak assignment round —
// queue drain, vehicle advancement, zone partition, parallel per-shard
// batching→FoodGraph→KM, application — at 1 shard vs K shards on the
// Table II cities. The pool accumulates 20 minutes of peak orders so the
// round carries production-shaped pressure; each iteration rebuilds the
// engine and fleet (under StopTimer) because a round consumes its pool.
//
//	go test ./internal/engine -bench EngineRound -benchtime 5x
func BenchmarkEngineRound(b *testing.B) {
	for _, cityName := range []string{"CityA", "CityB", "CityC"} {
		city := workload.MustPreset(cityName, workload.DefaultScale, 1)
		start := 19.0 * 3600
		wEnd := start + 1200
		orders := workload.OrderStreamWindow(city, 1, start, wEnd)
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", cityName, shards), func(b *testing.B) {
				cfg := model.DefaultConfig()
				if cityName == "CityA" {
					cfg.Delta = 60
				}
				b.ReportMetric(float64(len(orders)), "orders/round")
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fresh := workload.OrderStreamWindow(city, 1, start, wEnd)
					fleet := city.Fleet(1.0, cfg.MaxO, 1)
					e, err := New(city.G, fleet, Config{Pipeline: cfg, Shards: shards, QueueSize: len(fresh) + 1})
					if err != nil {
						b.Fatal(err)
					}
					for _, o := range fresh {
						if err := e.SubmitOrder(o); err != nil {
							b.Fatal(err)
						}
					}
					// Park the clock at the window start so the measured
					// Step spans exactly one ∆ of movement plus the round.
					e.mu.Lock()
					e.clock = wEnd - cfg.Delta
					e.mu.Unlock()
					b.StartTimer()
					stats := e.Step(wEnd)
					if stats.AssignedOrders == 0 && len(fresh) > 0 && stats.AvailableVehicles > 0 {
						b.Fatalf("round assigned nothing (pool %d, vehicles %d)", stats.PoolSize, stats.AvailableVehicles)
					}
				}
			})
		}
	}
}
