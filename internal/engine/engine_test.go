package engine

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"

	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newTestPolicy() policy.Policy { return policy.NewFoodMatch() }

// testCity memoises the CityB test substrate (generation dominates test
// time otherwise).
var testCityB = func() *workload.City {
	return workload.MustPreset("CityB", workload.DefaultScale, 1)
}()

func testConfig() *model.Config {
	cfg := model.DefaultConfig()
	return cfg
}

// replay drives an order stream through the engine API window by window —
// the deterministic analogue of the simulator's Run loop — and returns the
// distinct orders ever assigned plus the engine itself.
func replay(t testing.TB, city *workload.City, orders []*model.Order, fleet []*model.Vehicle,
	cfg Config, start, end float64) (*Engine, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder()
	cfg.Trace = rec
	if cfg.QueueSize == 0 {
		cfg.QueueSize = len(orders) + 16
	}
	e, err := New(city.G, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	delta := e.cfg.Pipeline.Delta
	drainEnd := end + 7200
	next := 0
	for now := start + delta; now < drainEnd; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatalf("submit order %d: %v", orders[next].ID, err)
			}
			next++
		}
		e.Step(now)
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	return e, rec
}

func distinctAssigned(rec *trace.Recorder) int {
	seen := make(map[model.OrderID]bool)
	for _, e := range rec.Filter(trace.OrderAssigned) {
		seen[e.Order] = true
	}
	return len(seen)
}

// TestEngineMatchesSimulator replays the CityB dinner peak through the
// Engine API and checks assignment counts against the offline simulator
// under the same policy, config and seed (the acceptance bar is 5%).
func TestEngineMatchesSimulator(t *testing.T) {
	city := testCityB
	start, end := 18.0*3600, 20.0*3600

	// Offline reference.
	simRec := trace.NewRecorder()
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	s, err := sim.New(city.G, orders, fleet, newTestPolicy(), testConfig(), sim.Options{Quiet: true, Trace: simRec})
	if err != nil {
		t.Fatal(err)
	}
	simMetrics := s.Run(start, end)
	simAssigned := distinctAssigned(simRec)
	if simAssigned == 0 {
		t.Fatal("offline simulator assigned nothing; workload broken")
	}

	for _, shards := range []int{1, 4} {
		orders := workload.OrderStreamWindow(city, 1, start, end)
		fleet := city.Fleet(1.0, testConfig().MaxO, 1)
		e, rec := replay(t, city, orders, fleet,
			Config{Pipeline: testConfig(), Shards: shards}, start, end)
		engAssigned := distinctAssigned(rec)
		snap := e.Snapshot()
		t.Logf("shards=%d: assigned %d (sim %d), delivered %d (sim %d), rejected %d (sim %d), handoffs %d",
			shards, engAssigned, simAssigned, snap.Delivered, simMetrics.Delivered,
			snap.Rejected, simMetrics.Rejected, snap.Handoffs)
		if relDiff(float64(engAssigned), float64(simAssigned)) > 0.05 {
			t.Errorf("shards=%d: assigned %d, offline sim %d — diverges more than 5%%",
				shards, engAssigned, simAssigned)
		}
		if relDiff(float64(snap.Delivered), float64(simMetrics.Delivered)) > 0.05 {
			t.Errorf("shards=%d: delivered %d, offline sim %d — diverges more than 5%%",
				shards, snap.Delivered, simMetrics.Delivered)
		}
		if int(snap.OrdersAdmitted) != len(orders) {
			t.Errorf("shards=%d: admitted %d of %d orders", shards, snap.OrdersAdmitted, len(orders))
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / b
}

func TestSharderPartition(t *testing.T) {
	g := testCityB.G
	for _, k := range []int{1, 2, 4, 7} {
		sh := newSharder(g, k)
		counts := make([]int, k)
		for i := 0; i < g.NumNodes(); i++ {
			s := sh.shardOf(roadnet.NodeID(i))
			if s < 0 || s >= k {
				t.Fatalf("k=%d: node %d in out-of-range shard %d", k, i, s)
			}
			counts[s]++
		}
		lo, hi := g.NumNodes(), 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if lo == 0 {
			t.Fatalf("k=%d: empty shard (counts %v)", k, counts)
		}
		if float64(hi) > 1.5*float64(lo)+1 {
			t.Fatalf("k=%d: unbalanced shards (counts %v)", k, counts)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	city := testCityB
	fleet := city.Fleet(0.2, 3, 1)
	e, err := New(city.G, fleet, Config{Pipeline: testConfig(), QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id model.OrderID) *model.Order {
		return &model.Order{ID: id, Restaurant: city.Restaurants[0], Customer: 1, PlacedAt: 100, Items: 1, Prep: 300}
	}
	if err := e.SubmitOrder(mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitOrder(mk(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitOrder(mk(3)); err != ErrQueueFull {
		t.Fatalf("third submit: got %v, want ErrQueueFull", err)
	}
	if shed := e.Snapshot().OrdersShed; shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
	// A round drains the queue; ingestion is accepted again.
	e.Step(200)
	if err := e.SubmitOrder(mk(4)); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if err := e.SubmitOrder(nil); err == nil {
		t.Fatal("nil order accepted")
	}
	bad := mk(5)
	bad.Restaurant = roadnet.NodeID(city.G.NumNodes())
	if err := e.SubmitOrder(bad); err == nil {
		t.Fatal("out-of-range restaurant accepted")
	}
}

func TestAssignmentStream(t *testing.T) {
	city := testCityB
	start := 19.0 * 3600
	orders := workload.OrderStreamWindow(city, 1, start, start+120)
	if len(orders) == 0 {
		t.Skip("no orders in the slice")
	}
	fleet := city.Fleet(1.0, 3, 1)
	e, err := New(city.G, fleet, Config{Pipeline: testConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe(256)
	defer sub.Cancel()
	for _, o := range orders {
		if err := e.SubmitOrder(o); err != nil {
			t.Fatal(err)
		}
	}
	stats := e.Step(start + 180)
	if stats.AssignedOrders == 0 {
		t.Fatalf("round assigned nothing from %d orders", len(orders))
	}
	var decisions, rounds int
	for {
		select {
		case ev := <-sub.C:
			switch {
			case ev.Decision != nil:
				decisions++
				if len(ev.Decision.Orders) == 0 {
					t.Fatal("decision without orders")
				}
				if ev.Decision.Shard < 0 || ev.Decision.Shard >= 2 {
					t.Fatalf("decision from unknown shard %d", ev.Decision.Shard)
				}
			case ev.Round != nil:
				rounds++
				if ev.Round.AssignedOrders != stats.AssignedOrders {
					t.Fatalf("round event: assigned %d, want %d", ev.Round.AssignedOrders, stats.AssignedOrders)
				}
			}
		default:
			if decisions == 0 || rounds != 1 {
				t.Fatalf("stream saw %d decisions, %d rounds", decisions, rounds)
			}
			if sub.Dropped() != 0 {
				t.Fatalf("dropped %d events with a roomy buffer", sub.Dropped())
			}
			// A cancelled subscription no longer receives.
			sub.Cancel()
			e.Step(start + 360)
			if _, open := <-sub.C; open {
				t.Fatal("cancelled subscription channel still open")
			}
			return
		}
	}
}

func TestCrossShardHandoff(t *testing.T) {
	city := testCityB
	e, err := New(city.G, nil, Config{Pipeline: testConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Find a restaurant in shard 1 and park every vehicle in shard 0; the
	// starved home zone must hand the order off to the supplied one.
	var rest roadnet.NodeID = roadnet.Invalid
	for _, r := range city.Restaurants {
		if e.sh.shardOf(r) == 1 {
			rest = r
			break
		}
	}
	if rest == roadnet.Invalid {
		t.Skip("no restaurant in shard 1")
	}
	// Park in shard 0 as close to the restaurant as possible so the first
	// mile stays feasible and only the zone boundary separates them.
	var park roadnet.NodeID = roadnet.Invalid
	bestD := math.Inf(1)
	restPt := city.G.Point(rest)
	for i := 0; i < city.G.NumNodes(); i++ {
		n := roadnet.NodeID(i)
		if e.sh.shardOf(n) != 0 {
			continue
		}
		if d := geo.Haversine(restPt, city.G.Point(n)); d < bestD {
			bestD = d
			park = n
		}
	}
	fleet := []*model.Vehicle{model.NewVehicle(1, park, 3), model.NewVehicle(2, park, 3)}
	e, err = New(city.G, fleet, Config{Pipeline: testConfig(), Shards: 2, BoundaryM: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	o := &model.Order{ID: 1, Restaurant: rest, Customer: park, PlacedAt: 100, Items: 1, Prep: 300}
	if err := e.SubmitOrder(o); err != nil {
		t.Fatal(err)
	}
	stats := e.Step(300)
	if stats.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", stats.Handoffs)
	}
	if stats.AssignedOrders != 1 {
		t.Fatalf("handed-off order not assigned (stats %+v)", stats)
	}
	if o.AssignedTo != 1 && o.AssignedTo != 2 {
		t.Fatalf("order assigned to %d", o.AssignedTo)
	}
}

func TestPingRelocatesOnlyIdleVehicles(t *testing.T) {
	city := testCityB
	fleet := []*model.Vehicle{model.NewVehicle(1, 0, 3)}
	e, err := New(city.G, fleet, Config{Pipeline: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PingVehicle(1, 5); err != nil {
		t.Fatal(err)
	}
	e.Step(60)
	if fleet[0].Node != 5 {
		t.Fatalf("idle vehicle not relocated: node %d", fleet[0].Node)
	}
	if err := e.PingVehicle(99, 5); err == nil {
		t.Fatal("ping for unknown vehicle accepted")
	}
	// Give the vehicle work, then ping: position must come from movement.
	o := &model.Order{ID: 1, Restaurant: city.Restaurants[0], Customer: 10, PlacedAt: 70, Items: 1, Prep: 600}
	if err := e.SubmitOrder(o); err != nil {
		t.Fatal(err)
	}
	e.Step(240)
	if o.AssignedTo != 1 {
		t.Skipf("order not assigned (%v), cannot exercise busy ping", o.State)
	}
	if err := e.PingVehicle(1, 0); err != nil {
		t.Fatal(err)
	}
	e.Step(241)
	if fleet[0].Node == 0 && fleet[0].Plan != nil && !fleet[0].Plan.Empty() {
		t.Fatal("busy vehicle teleported by ping")
	}
}

func TestStartStop(t *testing.T) {
	city := testCityB
	fleet := city.Fleet(0.3, 3, 1)
	cfg := testConfig()
	cfg.Delta = 60
	e, err := New(city.G, fleet, Config{Pipeline: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	start := 19.0 * 3600
	orders := workload.OrderStreamWindow(testCityB, 1, start, start+600)
	for _, o := range orders {
		if err := e.SubmitOrder(o); err != nil {
			t.Fatal(err)
		}
	}
	// 60 sim-seconds per ~5ms wall tick.
	if err := e.Start(start, 12000); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(start, 12000); err != ErrRunning {
		t.Fatalf("double start: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for e.Snapshot().Rounds < 5 {
		select {
		case <-deadline:
			t.Fatal("engine made no progress under the real-time clock")
		case <-time.After(10 * time.Millisecond):
		}
	}
	e.Stop()
	e.Stop() // idempotent
	snap := e.Snapshot()
	if snap.Rounds < 5 || snap.Clock <= start {
		t.Fatalf("snapshot after stop: %+v", snap)
	}
	if len(orders) > 0 && snap.OrdersAdmitted == 0 {
		t.Fatal("no orders admitted by the running engine")
	}
}
