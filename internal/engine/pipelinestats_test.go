package engine

import (
	"context"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/workload"
)

// TestRoundPipelineStats checks that the per-stage pipeline breakdown
// reaches the round-stats path: aggregate totals on the round, per-zone
// breakdowns on the shards that ran.
func TestRoundPipelineStats(t *testing.T) {
	city := testCityB
	start, end := 18.0*3600, 18.5*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	e, _ := replay(t, city, orders, fleet, Config{Pipeline: testConfig(), Shards: 2}, start, end)

	if m := e.Snapshot(); m.Assigned == 0 {
		t.Fatal("replay assigned nothing; workload broken")
	}

	// Drive a fresh engine one loaded step for deterministic assertions
	// (not every replay round matches orders, so assert on a round that
	// certainly carries the whole stream).
	stream := workload.OrderStreamWindow(city, 2, start, end)
	e2, err := New(city.G, city.Fleet(1.0, testConfig().MaxO, 2), Config{Pipeline: testConfig(), Shards: 2, QueueSize: len(stream) + 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range stream {
		if err := e2.SubmitOrder(o); err != nil {
			t.Fatal(err)
		}
	}
	rs := e2.StepContext(context.Background(), end)
	if rs.Pipeline.Orders == 0 || rs.Pipeline.Batches == 0 {
		t.Fatalf("loaded round recorded no pipeline work: %+v", rs.Pipeline)
	}
	if rs.Pipeline.Assigned != rs.AssignedOrders {
		t.Fatalf("pipeline assigned %d != round assigned %d", rs.Pipeline.Assigned, rs.AssignedOrders)
	}
	ranShards := 0
	var sum int
	for _, sh := range rs.Shards {
		if sh.Pipeline != nil {
			ranShards++
			sum += sh.Pipeline.Batches
		}
	}
	if ranShards == 0 {
		t.Fatal("no shard published a pipeline breakdown")
	}
	if sum != rs.Pipeline.Batches {
		t.Fatalf("shard batches sum %d != aggregate %d", sum, rs.Pipeline.Batches)
	}
}

// TestEngineCustomRouter swaps the per-shard Router backend via the single
// NewRouter option and checks the replay still assigns (hub labels are
// exact, so decisions are unchanged vs the default bounded cache within
// the city's diameter; the engine-vs-simulator identity test covers exact
// decision equality for the default).
func TestEngineCustomRouter(t *testing.T) {
	city := testCityB
	start, end := 18.0*3600, 19.0*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)

	base, _ := replay(t, city, orders, fleet, Config{Pipeline: testConfig(), Shards: 1}, start, end)
	baseAssigned := base.Snapshot().Assigned

	orders2 := workload.OrderStreamWindow(city, 1, start, end)
	fleet2 := city.Fleet(1.0, testConfig().MaxO, 1)
	custom, _ := replay(t, city, orders2, fleet2, Config{
		Pipeline: testConfig(),
		Shards:   1,
		NewRouter: func(g *roadnet.Graph) roadnet.Router {
			return roadnet.NewLRURouter(roadnet.NewDijkstraRouter(g), 1<<16)
		},
	}, start, end)
	if got := custom.Snapshot().Assigned; got != baseAssigned {
		t.Fatalf("LRU-Dijkstra router assigned %d, default assigned %d", got, baseAssigned)
	}
}
