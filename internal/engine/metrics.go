package engine

import (
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// PipelineStats is the per-stage timing/size breakdown of an assignment
// round (alias of pipeline.Stats): batching, FoodGraph construction,
// reshuffle weighting and matching, with the intermediate cardinalities.
// The paper's Section V ablations fall out of these numbers directly.
type PipelineStats = pipeline.Stats

// counters is the engine's internal mutable statistics, guarded by statMu.
// Movement-plane counters (deliveries, wait, distance) live per shard (see
// shardState.hooks) so the parallel advance phase never contends here.
type counters struct {
	ingested      int64 // accepted into the order queue
	admitted      int64 // moved from queue to pool
	shedOrders    int64 // rejected with ErrQueueFull
	pingsIngested int64 // accepted into the ping queue
	shedPings     int64
	assigned      int64 // assignment decisions applied (order count)
	reassigned    int64 // reshuffle moves across vehicles
	rejected      int64 // unallocated past RejectAfter
	handoffs      int64 // orders served by a neighbouring zone
	vehHandoffs   int64 // vehicles re-homed across a zone boundary
	resplits      int64 // demand-driven shard re-splits executed
	resplitMoves  int64 // vehicles migrated across re-split boundaries

	rounds        int64
	roundSecTotal float64
	roundSecMax   float64
	simStart      float64 // clock before the first round (for throughput)
	lastRound     RoundStats
}

// ShardRoundStats is one zone's share of a round.
type ShardRoundStats struct {
	Orders      int     `json:"orders"`
	Vehicles    int     `json:"vehicles"`
	Assignments int     `json:"assignments"`
	AssignSec   float64 `json:"assign_sec"`
	// AdvanceSec is the zone's movement-phase wall time this round (the
	// parallel advance of its resident vehicles).
	AdvanceSec float64 `json:"advance_sec"`
	// Epoch is the weight epoch the shard's round pinned (0 when the
	// shard was skipped or the road network is static).
	Epoch uint64 `json:"epoch,omitempty"`
	// Pipeline is the zone's per-stage breakdown (nil when the zone was
	// skipped this round or its policy does not record stage stats).
	Pipeline *PipelineStats `json:"pipeline,omitempty"`
}

// RoundStats summarises one assignment round.
type RoundStats struct {
	// T is the simulation clock the round closed at.
	T float64 `json:"t"`
	// Epoch is the road-network weight epoch the round ran under (the
	// newest epoch any shard pinned; 0 = static base weights).
	Epoch uint64 `json:"epoch,omitempty"`
	// PoolSize is |O(ℓ)|: pooled plus reshuffled orders matched this round.
	PoolSize int `json:"pool"`
	// PoolCarried is how many orders stayed unassigned into the next round.
	PoolCarried int `json:"pool_carried"`
	// AvailableVehicles is |V(ℓ)| across every zone.
	AvailableVehicles int `json:"vehicles"`
	// AssignedOrders counts orders attached to vehicles this round.
	AssignedOrders int `json:"assigned"`
	// Rejected counts orders dropped for staleness this round.
	Rejected int `json:"rejected"`
	// Handoffs counts orders served by a neighbouring zone this round;
	// VehicleHandoffs counts vehicles that crossed a zone boundary and were
	// re-homed onto the neighbouring shard at the round barrier.
	Handoffs        int `json:"handoffs"`
	VehicleHandoffs int `json:"vehicle_handoffs"`
	// ShardEpoch is the shard-partition generation the round ran on (bumped
	// by every demand-driven re-split; 0 = the initial node-balanced
	// partition). ResplitMoves counts vehicles migrated by a re-split that
	// executed at this round's barrier (0 on rounds without one).
	ShardEpoch   uint64 `json:"shard_epoch,omitempty"`
	ResplitMoves int    `json:"resplit_moves,omitempty"`
	// LatencySec is the full wall-clock cost of the round (movement,
	// partition, matching, application); AssignSecMax is the slowest
	// zone's matching time — the critical path of the parallel section.
	LatencySec   float64 `json:"latency_sec"`
	AssignSecMax float64 `json:"assign_sec_max"`
	// OrderQueueDepth / PingQueueDepth sample the ingestion backlog at the
	// end of the round.
	OrderQueueDepth int `json:"order_queue"`
	PingQueueDepth  int `json:"ping_queue"`
	// Pipeline aggregates the per-stage timing/size stats across every zone
	// that ran (stage seconds sum over shards; the parallel-section critical
	// path remains AssignSecMax).
	Pipeline PipelineStats `json:"pipeline"`
	// Shards is the per-zone breakdown.
	Shards []ShardRoundStats `json:"shards"`
	// Phases is the round's span tree — one entry per phase of the phased
	// round (drain, advance, handoff, match, apply, replan, rebuild), with
	// per-shard children and, under match, per-stage pipeline grandchildren.
	// Nil when Config.DisableObs. The slow-round structured log and the
	// experiments harness' -obs-out JSONL serialise exactly this.
	Phases []obs.Phase `json:"phases,omitempty"`
}

// ShardMetrics is one zone's resident-state summary on the metrics plane:
// what lives in the shard right now and what its rounds cost. Served by
// Snapshot (and so foodmatchd's GET /metrics) without touching the round
// lock.
type ShardMetrics struct {
	Shard int `json:"shard"`
	// Vehicles / PoolDepth are the shard-resident populations (sampled
	// lock-free; mid-round they reflect the last barrier).
	Vehicles  int `json:"vehicles"`
	PoolDepth int `json:"pool"`
	// Epoch is the weight epoch the shard's router currently serves.
	Epoch uint64 `json:"epoch"`
	// ShardEpoch is the partition generation the zone's geometry belongs to
	// (engine-wide; repeated per shard so each zone row is self-describing).
	ShardEpoch uint64 `json:"shard_epoch,omitempty"`
	// Rounds and the advance/assign timings describe the shard's share of
	// the phased round (totals and most recent round).
	Rounds          int64   `json:"rounds"`
	AdvanceSecTotal float64 `json:"advance_sec_total"`
	AssignSecTotal  float64 `json:"assign_sec_total"`
	LastAdvanceSec  float64 `json:"last_advance_sec"`
	LastAssignSec   float64 `json:"last_assign_sec"`
	// Movement-plane counters accumulated by the shard's own mover hooks.
	Delivered int64   `json:"delivered"`
	Stranded  int64   `json:"stranded"`
	XDTSec    float64 `json:"xdt_sec"`
	WaitSec   float64 `json:"wait_sec"`
	DistKm    float64 `json:"dist_km"`
}

// Metrics is a point-in-time snapshot of engine health and throughput.
type Metrics struct {
	Clock  float64 `json:"clock"`
	Shards int     `json:"shards"`
	// WeightEpoch / WeightPublishes summarise the dynamic road network
	// plane (both 0 for a static engine; see Engine.Roadnet for detail).
	WeightEpoch     uint64 `json:"weight_epoch,omitempty"`
	WeightPublishes int64  `json:"weight_publishes,omitempty"`

	// Order lifecycle totals.
	OrdersIngested int64 `json:"orders_ingested"`
	OrdersAdmitted int64 `json:"orders_admitted"`
	OrdersShed     int64 `json:"orders_shed"`
	// PingsIngested / PingsShed are the ping-queue totals — together they
	// make the ping shed ratio computable, symmetrically with orders.
	PingsIngested int64 `json:"pings_ingested"`
	PingsShed     int64 `json:"pings_shed"`
	Assigned      int64 `json:"assigned"`
	Reassigned    int64 `json:"reassigned"`
	Delivered     int64 `json:"delivered"`
	Rejected      int64 `json:"rejected"`
	Stranded      int64 `json:"stranded"`
	Handoffs      int64 `json:"handoffs"`
	// VehicleHandoffs counts vehicles re-homed across zone boundaries.
	VehicleHandoffs int64 `json:"vehicle_handoffs"`
	// ShardEpoch is the current shard-partition generation; Resplits /
	// ResplitMoves total the demand-driven re-splits executed and the
	// vehicles they migrated.
	ShardEpoch   uint64 `json:"shard_epoch,omitempty"`
	Resplits     int64  `json:"resplits,omitempty"`
	ResplitMoves int64  `json:"resplit_moves,omitempty"`

	// Quality aggregates (the paper's metrics, online).
	XDTSec  float64 `json:"xdt_sec"`
	WaitSec float64 `json:"wait_sec"`
	DistKm  float64 `json:"dist_km"`

	// Round latency.
	Rounds          int64   `json:"rounds"`
	RoundSecMean    float64 `json:"round_sec_mean"`
	RoundSecMax     float64 `json:"round_sec_max"`
	OrdersPerSimSec float64 `json:"orders_per_sim_sec"`

	// Queue depths sampled now. ScheduledDepth counts admitted orders whose
	// placement time is still in the future (the scheduled buffer) — after a
	// crash-recovery boot it shows how much replayed work is waiting to open.
	OrderQueueDepth int `json:"order_queue"`
	PingQueueDepth  int `json:"ping_queue"`
	PoolDepth       int `json:"pool"`
	ScheduledDepth  int `json:"scheduled"`

	// PerShard is the zone-by-zone breakdown of the shard-resident state.
	PerShard []ShardMetrics `json:"per_shard"`

	// LastRound echoes the most recent round's statistics.
	LastRound RoundStats `json:"last_round"`
}

// Snapshot captures current engine metrics. It never takes the round lock:
// counters come from the stats mutexes, populations from lock-free
// per-shard mirrors, the clock from its atomic mirror — so /metrics stays
// responsive even while a long round is in flight.
func (e *Engine) Snapshot() Metrics {
	e.statMu.Lock()
	c := e.stats
	e.statMu.Unlock()
	m := Metrics{
		Clock:           e.Clock(),
		Shards:          e.cfg.Shards,
		OrdersIngested:  c.ingested,
		OrdersAdmitted:  c.admitted,
		OrdersShed:      c.shedOrders,
		PingsIngested:   c.pingsIngested,
		PingsShed:       c.shedPings,
		Assigned:        c.assigned,
		Reassigned:      c.reassigned,
		Rejected:        c.rejected,
		Handoffs:        c.handoffs,
		VehicleHandoffs: c.vehHandoffs,
		ShardEpoch:      e.shardEpoch.Load(),
		Resplits:        c.resplits,
		ResplitMoves:    c.resplitMoves,
		Rounds:          c.rounds,
		RoundSecMax:     c.roundSecMax,
		LastRound:       c.lastRound,
		OrderQueueDepth: len(e.orderCh),
		PingQueueDepth:  len(e.pingCh),
		ScheduledDepth:  int(e.futureLen.Load()),
		PerShard:        make([]ShardMetrics, len(e.shards)),
	}
	for i, s := range e.shards {
		sm := ShardMetrics{
			Shard:      s.id,
			Vehicles:   int(s.vehLen.Load()),
			PoolDepth:  int(s.poolLen.Load()),
			Epoch:      s.router.Epoch(),
			ShardEpoch: m.ShardEpoch,
		}
		s.hookMu.Lock()
		sm.Delivered = s.hooks.delivered
		sm.Stranded = s.hooks.stranded
		sm.XDTSec = s.hooks.xdtSec
		sm.WaitSec = s.hooks.waitSec
		sm.DistKm = s.hooks.distM / 1000
		sm.Rounds = s.timing.rounds
		sm.AdvanceSecTotal = s.timing.advanceSecTotal
		sm.AssignSecTotal = s.timing.assignSecTotal
		sm.LastAdvanceSec = s.timing.lastAdvanceSec
		sm.LastAssignSec = s.timing.lastAssignSec
		s.hookMu.Unlock()
		m.PerShard[i] = sm
		m.Delivered += sm.Delivered
		m.Stranded += sm.Stranded
		m.XDTSec += sm.XDTSec
		m.WaitSec += sm.WaitSec
		m.DistKm += sm.DistKm
		m.PoolDepth += sm.PoolDepth
	}
	if c.rounds > 0 {
		m.RoundSecMean = c.roundSecTotal / float64(c.rounds)
	}
	if e.dyn != nil {
		e.dyn.mu.Lock()
		m.WeightEpoch = e.dyn.epoch
		m.WeightPublishes = e.dyn.publishes
		e.dyn.mu.Unlock()
	}
	if span := c.lastRound.T - c.simStart; span > 0 && c.admitted > 0 {
		// Ingest throughput against simulated time; wall-clock throughput
		// depends on the Start time-scale.
		m.OrdersPerSimSec = float64(c.admitted) / span
	}
	return m
}
