package engine

import "repro/internal/pipeline"

// PipelineStats is the per-stage timing/size breakdown of an assignment
// round (alias of pipeline.Stats): batching, FoodGraph construction,
// reshuffle weighting and matching, with the intermediate cardinalities.
// The paper's Section V ablations fall out of these numbers directly.
type PipelineStats = pipeline.Stats

// counters is the engine's internal mutable statistics, guarded by statMu.
type counters struct {
	ingested   int64 // accepted into the order queue
	admitted   int64 // moved from queue to pool
	shedOrders int64 // rejected with ErrQueueFull
	shedPings  int64
	assigned   int64 // assignment decisions applied (order count)
	reassigned int64 // reshuffle moves across vehicles
	rejected   int64 // unallocated past RejectAfter
	delivered  int64
	stranded   int64
	handoffs   int64 // orders served by a neighbouring zone

	xdtSec  float64
	waitSec float64
	distM   float64

	rounds        int64
	roundSecTotal float64
	roundSecMax   float64
	simStart      float64 // clock before the first round (for throughput)
	lastRound     RoundStats
}

// ShardRoundStats is one zone's share of a round.
type ShardRoundStats struct {
	Orders      int     `json:"orders"`
	Vehicles    int     `json:"vehicles"`
	Assignments int     `json:"assignments"`
	AssignSec   float64 `json:"assign_sec"`
	// Epoch is the weight epoch the shard's round pinned (0 when the
	// shard was skipped or the road network is static).
	Epoch uint64 `json:"epoch,omitempty"`
	// Pipeline is the zone's per-stage breakdown (nil when the zone was
	// skipped this round or its policy does not record stage stats).
	Pipeline *PipelineStats `json:"pipeline,omitempty"`
}

// RoundStats summarises one assignment round.
type RoundStats struct {
	// T is the simulation clock the round closed at.
	T float64 `json:"t"`
	// Epoch is the road-network weight epoch the round ran under (the
	// newest epoch any shard pinned; 0 = static base weights).
	Epoch uint64 `json:"epoch,omitempty"`
	// PoolSize is |O(ℓ)|: pooled plus reshuffled orders matched this round.
	PoolSize int `json:"pool"`
	// PoolCarried is how many orders stayed unassigned into the next round.
	PoolCarried int `json:"pool_carried"`
	// AvailableVehicles is |V(ℓ)| across every zone.
	AvailableVehicles int `json:"vehicles"`
	// AssignedOrders counts orders attached to vehicles this round.
	AssignedOrders int `json:"assigned"`
	// Rejected counts orders dropped for staleness this round.
	Rejected int `json:"rejected"`
	// Handoffs counts orders served by a neighbouring zone this round.
	Handoffs int `json:"handoffs"`
	// LatencySec is the full wall-clock cost of the round (movement,
	// partition, matching, application); AssignSecMax is the slowest
	// zone's matching time — the critical path of the parallel section.
	LatencySec   float64 `json:"latency_sec"`
	AssignSecMax float64 `json:"assign_sec_max"`
	// OrderQueueDepth / PingQueueDepth sample the ingestion backlog at the
	// end of the round.
	OrderQueueDepth int `json:"order_queue"`
	PingQueueDepth  int `json:"ping_queue"`
	// Pipeline aggregates the per-stage timing/size stats across every zone
	// that ran (stage seconds sum over shards; the parallel-section critical
	// path remains AssignSecMax).
	Pipeline PipelineStats `json:"pipeline"`
	// Shards is the per-zone breakdown.
	Shards []ShardRoundStats `json:"shards"`
}

// Metrics is a point-in-time snapshot of engine health and throughput.
type Metrics struct {
	Clock  float64 `json:"clock"`
	Shards int     `json:"shards"`
	// WeightEpoch / WeightPublishes summarise the dynamic road network
	// plane (both 0 for a static engine; see Engine.Roadnet for detail).
	WeightEpoch     uint64 `json:"weight_epoch,omitempty"`
	WeightPublishes int64  `json:"weight_publishes,omitempty"`

	// Order lifecycle totals.
	OrdersIngested int64 `json:"orders_ingested"`
	OrdersAdmitted int64 `json:"orders_admitted"`
	OrdersShed     int64 `json:"orders_shed"`
	PingsShed      int64 `json:"pings_shed"`
	Assigned       int64 `json:"assigned"`
	Reassigned     int64 `json:"reassigned"`
	Delivered      int64 `json:"delivered"`
	Rejected       int64 `json:"rejected"`
	Stranded       int64 `json:"stranded"`
	Handoffs       int64 `json:"handoffs"`

	// Quality aggregates (the paper's metrics, online).
	XDTSec  float64 `json:"xdt_sec"`
	WaitSec float64 `json:"wait_sec"`
	DistKm  float64 `json:"dist_km"`

	// Round latency.
	Rounds          int64   `json:"rounds"`
	RoundSecMean    float64 `json:"round_sec_mean"`
	RoundSecMax     float64 `json:"round_sec_max"`
	OrdersPerSimSec float64 `json:"orders_per_sim_sec"`

	// Queue depths sampled now.
	OrderQueueDepth int `json:"order_queue"`
	PingQueueDepth  int `json:"ping_queue"`
	PoolDepth       int `json:"pool"`

	// LastRound echoes the most recent round's statistics.
	LastRound RoundStats `json:"last_round"`
}

// Snapshot captures current engine metrics. Safe to call concurrently with
// rounds; the snapshot is internally consistent for the counter block but
// queue depths are instantaneous samples.
func (e *Engine) Snapshot() Metrics {
	e.statMu.Lock()
	c := e.stats
	e.statMu.Unlock()
	m := Metrics{
		Shards:          e.cfg.Shards,
		OrdersIngested:  c.ingested,
		OrdersAdmitted:  c.admitted,
		OrdersShed:      c.shedOrders,
		PingsShed:       c.shedPings,
		Assigned:        c.assigned,
		Reassigned:      c.reassigned,
		Delivered:       c.delivered,
		Rejected:        c.rejected,
		Stranded:        c.stranded,
		Handoffs:        c.handoffs,
		XDTSec:          c.xdtSec,
		WaitSec:         c.waitSec,
		DistKm:          c.distM / 1000,
		Rounds:          c.rounds,
		RoundSecMax:     c.roundSecMax,
		LastRound:       c.lastRound,
		OrderQueueDepth: len(e.orderCh),
		PingQueueDepth:  len(e.pingCh),
	}
	if c.rounds > 0 {
		m.RoundSecMean = c.roundSecTotal / float64(c.rounds)
	}
	if e.dyn != nil {
		e.dyn.mu.Lock()
		m.WeightEpoch = e.dyn.epoch
		m.WeightPublishes = e.dyn.publishes
		e.dyn.mu.Unlock()
	}
	e.mu.Lock()
	m.Clock = e.clock
	m.PoolDepth = len(e.pool)
	e.mu.Unlock()
	if span := c.lastRound.T - c.simStart; span > 0 && c.admitted > 0 {
		// Ingest throughput against simulated time; wall-clock throughput
		// depends on the Start time-scale.
		m.OrdersPerSimSec = float64(c.admitted) / span
	}
	return m
}
