package engine

import (
	"testing"

	"repro/internal/gps"
	"repro/internal/roadnet"
	"repro/internal/spindex"
	"repro/internal/workload"
)

// TestEngineHubLabelRouterMatchesDijkstra pins the first-class hub-label
// NewRouter choice against the exact per-query Dijkstra backend: hub labels
// are an exact method, so a sync-built replay must assign and reject
// exactly like the Dijkstra replay, decision for decision.
func TestEngineHubLabelRouterMatchesDijkstra(t *testing.T) {
	city := testCityB
	start, end := 18.0*3600, 18.5*3600

	runWith := func(newRouter func(*roadnet.Graph) roadnet.Router) *Engine {
		orders := workload.OrderStreamWindow(city, 1, start, end)
		fleet := city.Fleet(1.0, testConfig().MaxO, 1)
		e, _ := replay(t, city, orders, fleet, Config{
			Pipeline:  testConfig(),
			Shards:    1,
			NewRouter: newRouter,
		}, start, end)
		return e
	}

	dij := runWith(func(g *roadnet.Graph) roadnet.Router { return roadnet.NewDijkstraRouter(g) })
	hub := runWith(NewHubLabelRouter(0, true))

	ds, hs := dij.Snapshot(), hub.Snapshot()
	if ds.Assigned != hs.Assigned || ds.Rejected != hs.Rejected || ds.Delivered != hs.Delivered {
		t.Fatalf("hub-label replay diverges from Dijkstra: assigned %d/%d rejected %d/%d delivered %d/%d",
			hs.Assigned, ds.Assigned, hs.Rejected, ds.Rejected, hs.Delivered, ds.Delivered)
	}
	if hs.Assigned == 0 {
		t.Fatal("degenerate replay: nothing assigned")
	}
}

// TestEngineHubLabelRouterEpochRebuild covers the dynamic plane with the
// hub-label choice: every weight-epoch publish rebuilds a fresh AsyncRouter
// through SwapRouter, labels build off the query path (bounded-cache
// fallback meanwhile), and the replay keeps assigning across the swaps.
func TestEngineHubLabelRouterEpochRebuild(t *testing.T) {
	city := testCityB
	const rain = 1.5
	trueG := city.G.ScaleSlotMultipliers(func(int) float64 { return rain })
	learner := gps.NewStreamLearner(trueG, gps.StreamOptions{})

	start, end := 18.0*3600, 19.0*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	e, err := New(trueG, fleet, Config{
		Pipeline:         testConfig(),
		Shards:           2,
		QueueSize:        len(orders) + 16,
		DecisionGraph:    city.G,
		Learner:          learner,
		WeightRefreshSec: 300,
		MinSamples:       1,
		NewRouter:        NewHubLabelRouter(0, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	delta := e.cfg.Pipeline.Delta
	next := 0
	for now := start + delta; now < end+7200; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		e.Step(now)
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	st := e.Roadnet()
	if st.Epoch == 0 {
		t.Fatalf("no epoch published under the hub-label router: %+v", st)
	}
	if e.Snapshot().Assigned == 0 {
		t.Fatal("nothing assigned across epoch swaps")
	}
	// Each shard's current epoch serves an AsyncRouter built over the
	// published graph; after Wait its touched slots answer from labels.
	for _, sr := range e.shards {
		snap, router := sr.router.Acquire()
		if tw, ok := router.(*timedRouter); ok {
			router = tw.Unwrap() // observability decorator wraps every epoch build
		}
		ar, ok := router.(*spindex.AsyncRouter)
		if !ok {
			t.Fatalf("shard %d inner router is %T, want *spindex.AsyncRouter", sr.id, router)
		}
		if snap.Epoch != st.Epoch {
			t.Fatalf("shard %d pinned epoch %d, engine %d", sr.id, snap.Epoch, st.Epoch)
		}
		ar.Wait()
	}
}
