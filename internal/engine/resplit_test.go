package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/foodgraph"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// TestAdvanceShares pins the largest-remainder worker allocation. The old
// per-shard floor Workers*len/total could lose most of the budget to
// truncation (budget 7 over fleets 3/3/3/3 ran only 4 movement workers);
// shares must now always sum to min(budget, total fleet).
func TestAdvanceShares(t *testing.T) {
	cases := []struct {
		name   string
		budget int
		sizes  []int
		want   []int
	}{
		// The motivating bug: floors alone allocate 1/1/1/1 = 4 of 7.
		{"remainder-loss", 7, []int{3, 3, 3, 3}, []int{2, 2, 2, 1}},
		// The ISSUE's skewed CityB fleet: leftover lands on the largest
		// fractional remainder (shard 2), not the biggest fleet.
		{"skewed-fleet", 8, []int{46, 48, 8, 20}, []int{3, 3, 1, 1}},
		// Budget above the fleet clamps to the fleet.
		{"budget-exceeds-fleet", 10, []int{2, 3}, []int{2, 3}},
		// Ties on fractional remainder break to the lowest shard id.
		{"tie-break-low-id", 3, []int{2, 2, 2, 2}, []int{1, 1, 1, 0}},
		// A share never exceeds its shard's fleet even when remainders
		// would prefer it.
		{"cap-at-fleet", 5, []int{1, 10}, []int{0, 5}},
		{"empty-fleet", 4, []int{0, 0}, []int{0, 0}},
		{"zero-budget", 0, []int{5, 5}, []int{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := advanceShares(tc.budget, tc.sizes)
			if len(got) != len(tc.want) {
				t.Fatalf("advanceShares(%d, %v) = %v, want %v", tc.budget, tc.sizes, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("advanceShares(%d, %v) = %v, want %v", tc.budget, tc.sizes, got, tc.want)
				}
			}
		})
	}

	// Property sweep: for every budget/fleet shape, shares sum to
	// min(budget, Σsizes) and never exceed per-shard fleets.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		sizes := make([]int, 1+rng.Intn(8))
		total := 0
		for i := range sizes {
			sizes[i] = rng.Intn(50)
			total += sizes[i]
		}
		budget := rng.Intn(64)
		shares := advanceShares(budget, sizes)
		sum := 0
		for i, s := range shares {
			if s < 0 || s > sizes[i] {
				t.Fatalf("advanceShares(%d, %v) = %v: share %d out of [0, %d]", budget, sizes, shares, s, sizes[i])
			}
			sum += s
		}
		want := budget
		if total < want {
			want = total
		}
		if want < 0 {
			want = 0
		}
		if sum != want {
			t.Fatalf("advanceShares(%d, %v) = %v sums to %d, want %d", budget, sizes, shares, sum, want)
		}
	}
}

// TestPartitionOrdersPermutationInvariant pins the determinism fix for the
// order partitioner: the handoff rule's pressure feedback made a pool's
// shard assignment depend on the slice order phase 1 happened to collect it
// in. Partitioning now visits orders in canonical (ascending id) sequence,
// so any permutation of an equal pool must produce the identical
// order→shard assignment — and must leave the caller's slice untouched.
func TestPartitionOrdersPermutationInvariant(t *testing.T) {
	city := testCityB
	e, err := New(city.G, city.Fleet(1.0, testConfig().MaxO, 1), Config{
		Pipeline:  testConfig(),
		Shards:    4,
		QueueSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := 18.0 * 3600
	orders := workload.OrderStreamWindow(city, 1, start, start+900)
	if len(orders) < 8 {
		t.Fatalf("need a meaningful pool, got %d orders", len(orders))
	}

	// Uneven dummy fleets per zone so the pressure rule actually fires:
	// shard 2 is starved outright, shard 0 saturates quickly.
	fleets := []int{1, 6, 0, 3}
	mkWork := func() []shardWork {
		work := make([]shardWork, 4)
		for s := range work {
			for i := 0; i < fleets[s]; i++ {
				work[s].vehicles = append(work[s].vehicles, &foodgraph.VehicleState{})
			}
		}
		return work
	}
	assign := func(pool []*model.Order) (map[model.OrderID]int, int) {
		work := mkWork()
		handoffs := e.partitionOrders(pool, work)
		got := make(map[model.OrderID]int, len(pool))
		for s := range work {
			for _, o := range work[s].orders {
				if prev, dup := got[o.ID]; dup {
					t.Fatalf("order %d assigned to shards %d and %d", o.ID, prev, s)
				}
				got[o.ID] = s
			}
		}
		if len(got) != len(pool) {
			t.Fatalf("partitioned %d of %d orders", len(got), len(pool))
		}
		return got, handoffs
	}

	base, baseHandoffs := assign(orders)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		perm := make([]*model.Order, len(orders))
		copy(perm, orders)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		before := make([]model.OrderID, len(perm))
		for i, o := range perm {
			before[i] = o.ID
		}

		got, handoffs := assign(perm)
		if handoffs != baseHandoffs {
			t.Fatalf("trial %d: %d handoffs, want %d", trial, handoffs, baseHandoffs)
		}
		for id, s := range base {
			if got[id] != s {
				t.Fatalf("trial %d: order %d went to shard %d, want %d", trial, id, got[id], s)
			}
		}
		// The partitioner must not reorder the caller's pool slice.
		for i, o := range perm {
			if o.ID != before[i] {
				t.Fatalf("trial %d: caller's slice was reordered at %d", trial, i)
			}
		}
	}
}

// TestSharderWeighted pins the weighted KD split: nil and uniform weights
// must reproduce the node-balanced partition exactly (so goldens and every
// existing caller are untouched), and a skewed weight vector must balance
// per-shard *weight* where the unweighted split cannot.
func TestSharderWeighted(t *testing.T) {
	g := testCityB.G
	n := g.NumNodes()
	base := newSharder(g, 4)

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1.0
	}
	for name, w := range map[string][]float64{"nil": nil, "uniform": uniform} {
		sh := newSharderWeighted(g, 4, w)
		for i := 0; i < n; i++ {
			if sh.of[i] != base.of[i] {
				t.Fatalf("%s weights: node %d in shard %d, unweighted split has %d", name, i, sh.of[i], base.of[i])
			}
		}
	}

	// Skew: nodes east of the median longitude carry 9x the demand.
	lons := make([]float64, n)
	for i := 0; i < n; i++ {
		lons[i] = g.Point(roadnet.NodeID(i)).Lon
	}
	sorted := append([]float64(nil), lons...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0
		if lons[i] > median {
			w[i] = 10.0
		}
	}

	shardWeight := func(sh *sharder) []float64 {
		ws := make([]float64, sh.k)
		for i := 0; i < n; i++ {
			ws[sh.of[i]] += w[i]
		}
		return ws
	}
	ratio := func(ws []float64) float64 {
		mean, max := 0.0, 0.0
		for _, x := range ws {
			mean += x
			max = math.Max(max, x)
		}
		mean /= float64(len(ws))
		return max / mean
	}

	weighted := newSharderWeighted(g, 4, w)
	for s := 0; s < 4; s++ {
		nodes := 0
		for i := 0; i < n; i++ {
			if int(weighted.of[i]) == s {
				nodes++
			}
		}
		if nodes == 0 {
			t.Fatalf("weighted split left shard %d empty", s)
		}
	}
	wr, br := ratio(shardWeight(weighted)), ratio(shardWeight(base))
	if wr > 1.3 {
		t.Fatalf("weighted split max/mean weight ratio %.3f, want <= 1.3 (per-shard weights %v)", wr, shardWeight(weighted))
	}
	if wr >= br {
		t.Fatalf("weighted split (ratio %.3f) no better than node-balanced (ratio %.3f)", wr, br)
	}
}

// resplitReplay drives the CityB dinner peak through a resplit-enabled
// engine, invoking check after every Step, and returns the engine and the
// order count. Workers=1 keeps the run deterministic.
func resplitReplay(t *testing.T, cfg Config, check func(e *Engine, now float64)) (*Engine, int) {
	t.Helper()
	city := testCityB
	start, end := 18.0*3600, 18.5*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	if len(orders) == 0 {
		t.Fatal("no orders in the dinner slice")
	}
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	if cfg.QueueSize == 0 {
		cfg.QueueSize = len(orders) + 16
	}
	e, err := New(city.G, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	delta := e.cfg.Pipeline.Delta
	next := 0
	for now := start + delta; now < end+7200; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatalf("submit order %d: %v", orders[next].ID, err)
			}
			next++
		}
		e.Step(now)
		if check != nil {
			check(e, now)
		}
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	return e, len(orders)
}

// TestResplitExactlyOnce forces frequent demand-driven re-splits through a
// full CityB dinner replay and asserts the residency invariants after every
// round: each vehicle lives in exactly one shard (the one owning its
// current node, per the *current* partition), the index back-references are
// consistent, pools hold each order at most once in its restaurant's home
// zone, and the lock-free population mirrors agree. At the end the order
// lifecycle must conserve: every submitted order is delivered or rejected.
func TestResplitExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full dinner replay with forced re-splits")
	}
	check := func(e *Engine, now float64) {
		seenVeh := make(map[model.VehicleID]bool, len(e.motions))
		for s, st := range e.shards {
			if got := int(st.vehLen.Load()); got != len(st.motions) {
				t.Fatalf("t=%.0f shard %d: vehLen mirror %d != %d residents", now, s, got, len(st.motions))
			}
			if got := int(st.poolLen.Load()); got != len(st.pool) {
				t.Fatalf("t=%.0f shard %d: poolLen mirror %d != %d pooled", now, s, got, len(st.pool))
			}
			for i, rt := range st.motions {
				if int(rt.shard) != s || int(rt.pos) != i {
					t.Fatalf("t=%.0f shard %d: resident %d has back-reference shard=%d pos=%d",
						now, s, i, rt.shard, rt.pos)
				}
				if home := e.sh.shardOf(rt.mo.V.Node); home != s {
					t.Fatalf("t=%.0f shard %d: vehicle %d at node %d belongs to zone %d",
						now, s, rt.mo.V.ID, rt.mo.V.Node, home)
				}
				if seenVeh[rt.mo.V.ID] {
					t.Fatalf("t=%.0f: vehicle %d resident in two shards", now, rt.mo.V.ID)
				}
				seenVeh[rt.mo.V.ID] = true
			}
		}
		if len(seenVeh) != len(e.motions) {
			t.Fatalf("t=%.0f: %d resident vehicles, fleet has %d — vehicles lost by migration",
				now, len(seenVeh), len(e.motions))
		}
		seenOrd := make(map[model.OrderID]bool)
		for s, st := range e.shards {
			for _, o := range st.pool {
				if seenOrd[o.ID] {
					t.Fatalf("t=%.0f: order %d pooled twice", now, o.ID)
				}
				seenOrd[o.ID] = true
				if home := e.sh.shardOf(o.Restaurant); home != s {
					t.Fatalf("t=%.0f shard %d: pooled order %d homes in zone %d", now, s, o.ID, home)
				}
			}
		}
		for _, o := range e.future {
			if seenOrd[o.ID] {
				t.Fatalf("t=%.0f: order %d both pooled and scheduled", now, o.ID)
			}
			seenOrd[o.ID] = true
		}
	}
	e, total := resplitReplay(t, Config{
		Pipeline:   testConfig(),
		Shards:     4,
		Workers:    1,
		ResplitSec: 300,
	}, check)

	snap := e.Snapshot()
	if snap.Resplits < 2 {
		t.Fatalf("replay executed %d re-splits; the forced cadence should fire repeatedly", snap.Resplits)
	}
	if snap.ShardEpoch != uint64(snap.Resplits) {
		t.Fatalf("shard epoch %d != resplits %d", snap.ShardEpoch, snap.Resplits)
	}
	if snap.Delivered+snap.Rejected != int64(total) {
		t.Fatalf("lifecycle not conserved across re-splits: %d delivered + %d rejected != %d submitted",
			snap.Delivered, snap.Rejected, total)
	}
}

// TestGoldenTraceCityBDinnerResplit replays the golden fixture with elastic
// re-splitting enabled. At Shards=1 a re-split is definitionally a no-op,
// so the decision trace must stay byte-identical to the committed fixture —
// the guard that the re-split plumbing (demand accounting, barrier hook,
// share allocation) perturbs nothing when it has nothing to do.
func TestGoldenTraceCityBDinnerResplit(t *testing.T) {
	got := goldenReplay(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.ResplitSec = 300
	})
	checkGolden(t, got, "golden_cityb_dinner.trace")
}

// TestShardBalanceCityBDinner is the load-balance acceptance gate (and the
// CI bench-smoke guard): with demand-weighted re-splitting on, the 4-shard
// CityB dinner peak must partition its round pools within 1.5x of the
// per-shard mean — the seed's node-balanced split ran it at roughly
// 46/48/8/20. Measured over loaded rounds after the first re-split.
func TestShardBalanceCityBDinner(t *testing.T) {
	if testing.Short() {
		t.Skip("full dinner replay")
	}
	var rounds []roundLoad
	e, _ := resplitReplay(t, Config{
		Pipeline:   testConfig(),
		Shards:     4,
		Workers:    1,
		ResplitSec: 600,
	}, func(e *Engine, _ float64) {
		rs := e.Snapshot().LastRound
		load := roundLoad{epoch: rs.ShardEpoch}
		for _, s := range rs.Shards {
			load.shards = append(load.shards, s.Orders)
		}
		rounds = append(rounds, load)
	})
	if e.Snapshot().Resplits == 0 {
		t.Fatal("no re-split executed; the balance gate measured nothing")
	}

	ratio, measured := shardBalanceRatio(rounds)
	if measured == 0 {
		t.Fatal("no loaded post-resplit rounds to measure")
	}
	t.Logf("balance: max/mean pool ratio %.3f over %d loaded post-resplit rounds", ratio, measured)
	if ratio > 1.5 {
		t.Fatalf("per-shard pool imbalance %.3f exceeds the 1.5x gate", ratio)
	}
}

// shardBalanceRatio aggregates per-shard round loads into the balance
// metric the CI gate enforces: total orders per shard, summed over loaded
// (>= 2 orders/shard on average) rounds that ran on a re-split partition,
// expressed as max/mean. Aggregating before the ratio keeps the metric
// stable against single thin rounds.
// roundLoad is one round's per-shard pool sizes and the partition
// generation it ran on.
type roundLoad struct {
	epoch  uint64
	shards []int
}

func shardBalanceRatio(rounds []roundLoad) (float64, int) {
	var totals []float64
	measured := 0
	for _, r := range rounds {
		if r.epoch == 0 || len(r.shards) == 0 {
			continue
		}
		sum := 0
		for _, n := range r.shards {
			sum += n
		}
		if sum < 2*len(r.shards) {
			continue
		}
		if totals == nil {
			totals = make([]float64, len(r.shards))
		}
		for s, n := range r.shards {
			totals[s] += float64(n)
		}
		measured++
	}
	if measured == 0 {
		return 0, 0
	}
	mean, max := 0.0, 0.0
	for _, x := range totals {
		mean += x
		max = math.Max(max, x)
	}
	mean /= float64(len(totals))
	return max / mean, measured
}

// TestResplitQuietPeriod pins the low-signal guard: with the cadence due
// but almost no demand observed, the engine must keep the node-balanced
// partition (epoch stays 0) instead of re-splitting on noise.
func TestResplitQuietPeriod(t *testing.T) {
	city := testCityB
	start := 18.0 * 3600
	orders := workload.OrderStreamWindow(city, 1, start, start+3600)
	if len(orders) < 4 {
		t.Fatal("need a few orders")
	}
	e, err := New(city.G, city.Fleet(1.0, testConfig().MaxO, 1), Config{
		Pipeline:   testConfig(),
		Shards:     4,
		Workers:    1,
		ResplitSec: 60,
		QueueSize:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fewer admissions than the 4*K signal floor, many due cadences.
	delta := e.cfg.Pipeline.Delta
	for i := 0; i < 3; i++ {
		if err := e.SubmitOrder(orders[i]); err != nil {
			t.Fatal(err)
		}
	}
	for now := orders[2].PlacedAt + delta; now < orders[2].PlacedAt+20*delta; now += delta {
		e.Step(now)
	}
	if got := e.Snapshot().Resplits; got != 0 {
		t.Fatalf("quiet engine executed %d re-splits on %d admitted orders", got, 3)
	}
	if got := e.Snapshot().ShardEpoch; got != 0 {
		t.Fatalf("quiet engine bumped shard epoch to %d", got)
	}
}

// TestRoadnetStatusResplit pins the /roadnet surface for the elastic
// sharding plane: epoch, executed count and configured cadence.
func TestRoadnetStatusResplit(t *testing.T) {
	e, _ := resplitReplay(t, Config{
		Pipeline:   testConfig(),
		Shards:     4,
		Workers:    1,
		ResplitSec: 300,
	}, nil)
	st := e.Roadnet()
	if st.ResplitSec != 300 {
		t.Fatalf("RoadnetStatus.ResplitSec = %v, want 300", st.ResplitSec)
	}
	if st.Resplits == 0 || st.ShardEpoch == 0 {
		t.Fatalf("RoadnetStatus shows no re-splits (resplits=%d epoch=%d) after a forced-cadence replay",
			st.Resplits, st.ShardEpoch)
	}
	if st.ShardEpoch != uint64(st.Resplits) {
		t.Fatalf("RoadnetStatus epoch %d != resplits %d", st.ShardEpoch, st.Resplits)
	}
	m := e.Snapshot()
	if m.ShardEpoch != st.ShardEpoch || m.Resplits != st.Resplits {
		t.Fatalf("metrics surface (epoch=%d resplits=%d) disagrees with roadnet (epoch=%d resplits=%d)",
			m.ShardEpoch, m.Resplits, st.ShardEpoch, st.Resplits)
	}
}
