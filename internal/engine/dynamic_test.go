package engine

import (
	"math"
	"testing"

	"repro/internal/gps"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// TestEngineDynamicWeightsLearnAndSwap runs the full live loop: the true
// city is slowed by a uniform "rain" multiplier the decision graph knows
// nothing about; driving on the true graph feeds the streaming learner;
// periodic publishes swap every shard onto learned epochs. By the end the
// engine must have published epochs, stamped them into round stats
// monotonically, and learned weights that match the *true* (rained-on)
// β rather than the stale decision prior.
func TestEngineDynamicWeightsLearnAndSwap(t *testing.T) {
	city := testCityB
	const rain = 1.6
	trueG := city.G.ScaleSlotMultipliers(func(int) float64 { return rain })
	learner := gps.NewStreamLearner(trueG, gps.StreamOptions{})

	start, end := 18.0*3600, 19.0*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	e, err := New(trueG, fleet, Config{
		Pipeline:         testConfig(),
		Shards:           2,
		QueueSize:        len(orders) + 16,
		DecisionGraph:    city.G,
		Learner:          learner,
		WeightRefreshSec: 300,
		MinSamples:       1,
	})
	if err != nil {
		t.Fatal(err)
	}

	delta := e.cfg.Pipeline.Delta
	next := 0
	lastEpoch := uint64(0)
	for now := start + delta; now < end+7200; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		stats := e.Step(now)
		if stats.Epoch < lastEpoch {
			t.Fatalf("round epoch went backwards: %d after %d", stats.Epoch, lastEpoch)
		}
		lastEpoch = stats.Epoch
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}

	st := e.Roadnet()
	if !st.Dynamic {
		t.Fatal("dynamic engine reports static road network")
	}
	if st.Epoch == 0 || st.Publishes == 0 {
		t.Fatalf("no weight epoch published: %+v", st)
	}
	if st.Learner == nil || st.Learner.Samples == 0 {
		t.Fatalf("learner saw no samples: %+v", st.Learner)
	}
	if st.LearnedCells == 0 {
		t.Fatalf("published epoch carries no learned cells: %+v", st)
	}
	if lastEpoch == 0 {
		t.Fatal("no round ever ran under a learned epoch")
	}
	snap := e.Snapshot()
	if snap.WeightEpoch != st.Epoch || snap.WeightPublishes != st.Publishes {
		t.Fatalf("metrics/roadnet disagree: %d/%d vs %d/%d",
			snap.WeightEpoch, snap.WeightPublishes, st.Epoch, st.Publishes)
	}

	// Every shard serves the newest epoch, and its graph carries weights
	// matching the TRUE β on learned cells (mover traversals are exact).
	w := learner.Weights(1)
	if w.Cells() == 0 {
		t.Fatal("learner exports no cells")
	}
	for _, sr := range e.shards {
		shSnap, _ := sr.router.Acquire()
		if shSnap.Epoch != st.Epoch {
			t.Fatalf("shard %d serves epoch %d, engine %d", sr.id, shSnap.Epoch, st.Epoch)
		}
		checked := 0
		for u := 0; u < trueG.NumNodes() && checked < 50; u++ {
			tEdges := trueG.OutEdges(roadnet.NodeID(u))
			sEdges := shSnap.Graph.OutEdges(roadnet.NodeID(u))
			for i := range tEdges {
				for s := 0; s < roadnet.SlotsPerDay; s++ {
					if _, ok := w.Get(roadnet.NodeID(u), tEdges[i].To, s); !ok {
						continue
					}
					trueBeta := trueG.EdgeTimeSlot(tEdges[i], s)
					served := shSnap.Graph.EdgeTimeSlot(sEdges[i], s)
					if math.Abs(served-trueBeta) > 1e-6*trueBeta+1e-9 {
						t.Fatalf("learned cell %d->%d slot %d serves %v, true β %v",
							u, tEdges[i].To, s, served, trueBeta)
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatal("no learned cell found to verify")
		}
	}
}

// TestQuietRefreshSkipsIdenticalEpochs pins the periodic-refresh skip: once
// an epoch is published, a due refresh with nothing learned since — or with
// only cells still below the MinSamples floor — must not mint a
// weight-identical epoch (which would cold-rebuild every shard's router for
// zero change). The sample that finally tips a cell over the floor
// publishes again.
func TestQuietRefreshSkipsIdenticalEpochs(t *testing.T) {
	city := testCityB
	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	e, err := New(city.G, city.Fleet(0.2, 3, 1), Config{
		Pipeline: testConfig(), Shards: 2,
		Learner: learner, WeightRefreshSec: 100, MinSamples: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e0 := city.G.OutEdges(0)[0]
	e1 := city.G.OutEdges(1)[0]

	// Three samples on edge 0: the first due refresh publishes epoch 1.
	for i := 0; i < 3; i++ {
		learner.ObserveEdge(0, e0.To, 10*3600+float64(i*10), 40)
	}
	e.Step(10*3600 + 200)
	if st := e.Roadnet(); st.Epoch != 1 || st.Publishes != 1 {
		t.Fatalf("first refresh: %+v", st)
	}

	// One below-floor sample on edge 1: the next due refresh must skip.
	learner.ObserveEdge(1, e1.To, 10*3600+300, 55)
	e.Step(10*3600 + 400)
	if st := e.Roadnet(); st.Epoch != 1 || st.Publishes != 1 {
		t.Fatalf("below-floor refresh minted an epoch: %+v", st)
	}

	// Nothing at all learned: still skipped.
	e.Step(10*3600 + 600)
	if st := e.Roadnet(); st.Epoch != 1 || st.Publishes != 1 {
		t.Fatalf("empty refresh minted an epoch: %+v", st)
	}

	// Tip edge 1 over the floor: the withheld cell re-marked itself dirty,
	// so the next due refresh publishes it.
	learner.ObserveEdge(1, e1.To, 10*3600+700, 65)
	learner.ObserveEdge(1, e1.To, 10*3600+710, 60)
	e.Step(10*3600 + 900)
	st := e.Roadnet()
	if st.Epoch != 2 || st.Publishes != 2 {
		t.Fatalf("tipping refresh: %+v", st)
	}
	if st.PatchedPublishes != 1 {
		t.Fatalf("second epoch should be a patched publish: %+v", st)
	}
	for _, sr := range e.shards {
		snap, _ := sr.router.Acquire()
		if got := snap.Graph.EdgeTimeSlot(snap.Graph.OutEdges(1)[0], 10); math.Abs(got-60) > 1e-9 {
			t.Fatalf("shard %d serves %v for the tipped cell, want 60", sr.id, got)
		}
	}

	// A *forced* refresh publishes regardless — even when the only dirty
	// cells are below the floor (the skip is a periodic-path optimisation,
	// not a change to the RefreshWeights contract).
	e2 := city.G.OutEdges(2)[0]
	learner.ObserveEdge(2, e2.To, 10*3600+1000, 70)
	if ep, ok := e.RefreshWeights(); !ok || ep != 3 {
		t.Fatalf("forced refresh with below-floor dirt: epoch %d (%v), want 3 (true)", ep, ok)
	}
}

// TestRefreshWeights covers the forced-publish path: static engines refuse,
// dynamic engines publish exactly when the learner has admissible cells.
func TestRefreshWeights(t *testing.T) {
	city := testCityB
	fleet := city.Fleet(0.2, 3, 1)

	static, err := New(city.G, fleet, Config{Pipeline: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if ep, ok := static.RefreshWeights(); ep != 0 || ok {
		t.Fatalf("static engine published epoch %d (%v)", ep, ok)
	}
	if st := static.Roadnet(); st.Dynamic || st.Epoch != 0 {
		t.Fatalf("static roadnet status %+v", st)
	}

	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	dyn, err := New(city.G, fleet, Config{Pipeline: testConfig(), Learner: learner, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing learned yet: refresh runs but publishes no epoch.
	if ep, ok := dyn.RefreshWeights(); ep != 0 || ok {
		t.Fatalf("empty learner published epoch %d (%v)", ep, ok)
	}
	var u roadnet.NodeID
	e0 := city.G.OutEdges(0)[0]
	learner.ObserveEdge(u, e0.To, 12*3600, 123)
	if ep, ok := dyn.RefreshWeights(); ep != 1 || !ok {
		t.Fatalf("refresh after a sample: epoch %d (%v), want 1 (true)", ep, ok)
	}
	// Published epoch is visible on every shard immediately.
	for _, sr := range dyn.shards {
		if sr.router.Epoch() != 1 {
			t.Fatalf("shard %d epoch %d after forced refresh", sr.id, sr.router.Epoch())
		}
	}
	if ep, ok := dyn.RefreshWeights(); !ok || ep != 2 {
		// A second refresh with the same cells still publishes a fresh
		// epoch (estimates may have moved; the engine does not diff).
		t.Fatalf("second refresh: epoch %d (%v)", ep, ok)
	}
}
