package engine

import (
	"math"
	"testing"

	"repro/internal/gps"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// TestEngineDynamicWeightsLearnAndSwap runs the full live loop: the true
// city is slowed by a uniform "rain" multiplier the decision graph knows
// nothing about; driving on the true graph feeds the streaming learner;
// periodic publishes swap every shard onto learned epochs. By the end the
// engine must have published epochs, stamped them into round stats
// monotonically, and learned weights that match the *true* (rained-on)
// β rather than the stale decision prior.
func TestEngineDynamicWeightsLearnAndSwap(t *testing.T) {
	city := testCityB
	const rain = 1.6
	trueG := city.G.ScaleSlotMultipliers(func(int) float64 { return rain })
	learner := gps.NewStreamLearner(trueG, gps.StreamOptions{})

	start, end := 18.0*3600, 19.0*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	e, err := New(trueG, fleet, Config{
		Pipeline:         testConfig(),
		Shards:           2,
		QueueSize:        len(orders) + 16,
		DecisionGraph:    city.G,
		Learner:          learner,
		WeightRefreshSec: 300,
		MinSamples:       1,
	})
	if err != nil {
		t.Fatal(err)
	}

	delta := e.cfg.Pipeline.Delta
	next := 0
	lastEpoch := uint64(0)
	for now := start + delta; now < end+7200; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		stats := e.Step(now)
		if stats.Epoch < lastEpoch {
			t.Fatalf("round epoch went backwards: %d after %d", stats.Epoch, lastEpoch)
		}
		lastEpoch = stats.Epoch
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}

	st := e.Roadnet()
	if !st.Dynamic {
		t.Fatal("dynamic engine reports static road network")
	}
	if st.Epoch == 0 || st.Publishes == 0 {
		t.Fatalf("no weight epoch published: %+v", st)
	}
	if st.Learner == nil || st.Learner.Samples == 0 {
		t.Fatalf("learner saw no samples: %+v", st.Learner)
	}
	if st.LearnedCells == 0 {
		t.Fatalf("published epoch carries no learned cells: %+v", st)
	}
	if lastEpoch == 0 {
		t.Fatal("no round ever ran under a learned epoch")
	}
	snap := e.Snapshot()
	if snap.WeightEpoch != st.Epoch || snap.WeightPublishes != st.Publishes {
		t.Fatalf("metrics/roadnet disagree: %d/%d vs %d/%d",
			snap.WeightEpoch, snap.WeightPublishes, st.Epoch, st.Publishes)
	}

	// Every shard serves the newest epoch, and its graph carries weights
	// matching the TRUE β on learned cells (mover traversals are exact).
	w := learner.Weights(1)
	if w.Cells() == 0 {
		t.Fatal("learner exports no cells")
	}
	for _, sr := range e.shards {
		shSnap, _ := sr.router.Acquire()
		if shSnap.Epoch != st.Epoch {
			t.Fatalf("shard %d serves epoch %d, engine %d", sr.id, shSnap.Epoch, st.Epoch)
		}
		checked := 0
		for u := 0; u < trueG.NumNodes() && checked < 50; u++ {
			tEdges := trueG.OutEdges(roadnet.NodeID(u))
			sEdges := shSnap.Graph.OutEdges(roadnet.NodeID(u))
			for i := range tEdges {
				for s := 0; s < roadnet.SlotsPerDay; s++ {
					if _, ok := w.Get(roadnet.NodeID(u), tEdges[i].To, s); !ok {
						continue
					}
					trueBeta := trueG.EdgeTimeSlot(tEdges[i], s)
					served := shSnap.Graph.EdgeTimeSlot(sEdges[i], s)
					if math.Abs(served-trueBeta) > 1e-6*trueBeta+1e-9 {
						t.Fatalf("learned cell %d->%d slot %d serves %v, true β %v",
							u, tEdges[i].To, s, served, trueBeta)
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatal("no learned cell found to verify")
		}
	}
}

// TestRefreshWeights covers the forced-publish path: static engines refuse,
// dynamic engines publish exactly when the learner has admissible cells.
func TestRefreshWeights(t *testing.T) {
	city := testCityB
	fleet := city.Fleet(0.2, 3, 1)

	static, err := New(city.G, fleet, Config{Pipeline: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if ep, ok := static.RefreshWeights(); ep != 0 || ok {
		t.Fatalf("static engine published epoch %d (%v)", ep, ok)
	}
	if st := static.Roadnet(); st.Dynamic || st.Epoch != 0 {
		t.Fatalf("static roadnet status %+v", st)
	}

	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	dyn, err := New(city.G, fleet, Config{Pipeline: testConfig(), Learner: learner, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing learned yet: refresh runs but publishes no epoch.
	if ep, ok := dyn.RefreshWeights(); ep != 0 || ok {
		t.Fatalf("empty learner published epoch %d (%v)", ep, ok)
	}
	var u roadnet.NodeID
	e0 := city.G.OutEdges(0)[0]
	learner.ObserveEdge(u, e0.To, 12*3600, 123)
	if ep, ok := dyn.RefreshWeights(); ep != 1 || !ok {
		t.Fatalf("refresh after a sample: epoch %d (%v), want 1 (true)", ep, ok)
	}
	// Published epoch is visible on every shard immediately.
	for _, sr := range dyn.shards {
		if sr.router.Epoch() != 1 {
			t.Fatalf("shard %d epoch %d after forced refresh", sr.id, sr.router.Epoch())
		}
	}
	if ep, ok := dyn.RefreshWeights(); !ok || ep != 2 {
		// A second refresh with the same cells still publishes a fresh
		// epoch (estimates may have moved; the engine does not diff).
		t.Fatalf("second refresh: epoch %d (%v)", ep, ok)
	}
}
