package engine

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gps"
	"repro/internal/workload"
)

// updateGolden regenerates the committed golden fixtures:
//
//	go test ./internal/engine/ -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace fixtures")

// goldenReplay drives the CityB dinner-peak order slice through a 1-shard
// engine with the static road network (no learner) and renders every
// assignment decision and rejection as one canonical line. One shard and
// Step-driven time make the run fully deterministic, so the rendered trace
// is byte-stable across machines. mutate (optional) adjusts the Config
// before construction — the observability guard uses it to crank every
// telemetry feature up against the same fixture.
func goldenReplay(t *testing.T, mutate func(*Config)) string {
	t.Helper()
	city := testCityB
	start, end := 18.0*3600, 18.5*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	if len(orders) == 0 {
		t.Fatal("golden: no orders in the dinner slice")
	}
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	cfg := Config{
		Pipeline:  testConfig(),
		Shards:    1,
		QueueSize: len(orders) + 16,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(city.G, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe(4*len(orders) + 4096)
	defer sub.Cancel()

	delta := e.cfg.Pipeline.Delta
	next := 0
	drainEnd := end + 7200
	for now := start + delta; now < drainEnd; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatalf("submit order %d: %v", orders[next].ID, err)
			}
			next++
		}
		e.Step(now)
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("golden: subscription dropped %d events; raise the buffer", sub.Dropped())
	}

	var b strings.Builder
	for {
		select {
		case ev := <-sub.C:
			switch {
			case ev.Decision != nil:
				d := ev.Decision
				ids := make([]string, len(d.Orders))
				for i, id := range d.Orders {
					ids[i] = fmt.Sprintf("%d", id)
				}
				fmt.Fprintf(&b, "assign t=%.0f v=%d orders=%s reshuffled=%t\n",
					d.T, d.Vehicle, strings.Join(ids, ","), d.Reassigned)
			case ev.Rejection != nil:
				fmt.Fprintf(&b, "reject t=%.0f order=%d\n", ev.Rejection.T, ev.Rejection.Order)
			}
		default:
			return b.String()
		}
	}
}

// goldenLearnerReplay drives the same CityB dinner slice through the
// *dynamic* plane: the true city is slowed by rain the decision graph does
// not know, the streaming learner ingests every finished edge traversal,
// and weight epochs publish mid-replay, hot-swapping the shard router. One
// shard and Workers=1 make the run fully deterministic — vehicle movement
// (and so the learner's float accumulation order) is sequential, epochs
// publish at fixed round boundaries, and Reweighted is a pure function of
// the learned table — so decisions, rejections AND epoch transitions pin
// byte-for-byte.
func goldenLearnerReplay(t *testing.T) string {
	t.Helper()
	city := testCityB
	start, end := 18.0*3600, 18.5*3600
	trueG := workload.Rain(1.4).Apply(city.G)
	learner := gps.NewStreamLearner(trueG, gps.StreamOptions{})
	orders := workload.OrderStreamWindow(city, 1, start, end)
	if len(orders) == 0 {
		t.Fatal("golden: no orders in the dinner slice")
	}
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	e, err := New(trueG, fleet, Config{
		Pipeline:         testConfig(),
		Shards:           1,
		Workers:          1,
		QueueSize:        len(orders) + 16,
		DecisionGraph:    city.G,
		Learner:          learner,
		WeightRefreshSec: 600,
		MinSamples:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Subscribe(8*len(orders) + 8192)
	defer sub.Cancel()

	delta := e.cfg.Pipeline.Delta
	next := 0
	drainEnd := end + 7200
	for now := start + delta; now < drainEnd; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatalf("submit order %d: %v", orders[next].ID, err)
			}
			next++
		}
		e.Step(now)
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("golden: subscription dropped %d events; raise the buffer", sub.Dropped())
	}

	var b strings.Builder
	epoch := uint64(0)
	for {
		select {
		case ev := <-sub.C:
			switch {
			case ev.Decision != nil:
				d := ev.Decision
				ids := make([]string, len(d.Orders))
				for i, id := range d.Orders {
					ids[i] = fmt.Sprintf("%d", id)
				}
				fmt.Fprintf(&b, "assign t=%.0f v=%d orders=%s reshuffled=%t\n",
					d.T, d.Vehicle, strings.Join(ids, ","), d.Reassigned)
			case ev.Rejection != nil:
				fmt.Fprintf(&b, "reject t=%.0f order=%d\n", ev.Rejection.T, ev.Rejection.Order)
			case ev.Round != nil && ev.Round.Epoch != epoch:
				epoch = ev.Round.Epoch
				fmt.Fprintf(&b, "epoch t=%.0f e=%d\n", ev.Round.T, epoch)
			}
		default:
			if epoch == 0 {
				t.Fatal("golden learner replay never swapped a weight epoch — the fixture is not exercising the dynamic plane")
			}
			return b.String()
		}
	}
}

// TestGoldenTraceCityBDinner pins the engine's assignment decisions on the
// CityB dinner-peak replay byte-for-byte. PR 1 and PR 2 each claimed
// decision-identical refactors; this fixture is that claim as a test — any
// change to batching, matching, routing or the round loop that shifts even
// one decision shows up as a fixture diff. Regenerate deliberately with
// -update-golden when a behaviour change is intended.
func TestGoldenTraceCityBDinner(t *testing.T) {
	checkGolden(t, goldenReplay(t, nil), "golden_cityb_dinner.trace")
}

// TestGoldenTraceCityBDinnerObs replays the same fixture with every
// observability feature turned up — lifecycle event ring, slow-round
// logging at an always-firing threshold — and requires the decision trace
// to stay byte-identical. Instrumentation only reads decisions; if it ever
// perturbs one, this fixture diff is the tripwire. It also proves the
// slow-round callback fires and carries the span tree.
func TestGoldenTraceCityBDinnerObs(t *testing.T) {
	var slow int
	got := goldenReplay(t, func(cfg *Config) {
		cfg.TraceRing = 4096
		cfg.SlowRoundSec = 1e-12 // every round is "slow": fire on all of them
		cfg.OnSlowRound = func(rs RoundStats) {
			if len(rs.Phases) == 0 {
				t.Error("slow-round callback got no span tree")
			}
			slow++
		}
	})
	if slow == 0 {
		t.Fatal("slow-round callback never fired")
	}
	checkGolden(t, got, "golden_cityb_dinner.trace")
}

// TestGoldenTraceCityBDinnerLearner pins the *dynamic* plane the same way:
// the learner-enabled replay's decisions, rejections and mid-replay epoch
// swaps are byte-stable. Any change to the learner's admission rules, the
// weight-publish cadence, Reweighted, or the swap layer that shifts one
// decision or one epoch boundary shows up as a fixture diff. Regenerate
// deliberately with -update-golden when a behaviour change is intended.
func TestGoldenTraceCityBDinnerLearner(t *testing.T) {
	checkGolden(t, goldenLearnerReplay(t), "golden_cityb_dinner_learner.trace")
}

// checkGolden compares a rendered trace against (or, with -update-golden,
// rewrites) a committed fixture.
func checkGolden(t *testing.T, got, file string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %d bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for i := 0; i < n; i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("golden trace diverges at line %d:\n got: %s\nwant: %s\n(%d got lines vs %d want lines)",
					i+1, gotLines[i], wantLines[i], len(gotLines), len(wantLines))
			}
		}
		t.Fatalf("golden trace length diverges: %d got lines vs %d want lines", len(gotLines), len(wantLines))
	}
}
