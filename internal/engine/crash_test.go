package engine

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/wal"
	"repro/internal/workload"
)

// crashPanic is the fault injector's sentinel: the phaseHook throws it when
// the target (round, phase) is reached, simulating a process kill at an
// arbitrary point inside the phased round. Only what reached disk — the WAL
// and the last checkpoint — survives into the resumed engine.
type crashPanic struct{ phase string }

// crashOutcome is what a full run (crashed+resumed or golden) ends with.
type crashOutcome struct {
	delivered, rejected, assigned int64
	resplits                      int64
	total                         int
}

// crashGoldenRun drives the uncrashed CityB reference replay. mutate
// (optional) adjusts the engine Config — the re-split composition test uses
// it to run the same fault-injection harness on a multi-shard elastic
// engine.
func crashGoldenRun(mutate func(*Config)) crashOutcome {
	city := testCityB
	start, end := 18.0*3600, 18.5*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	cfg := Config{
		Pipeline: testConfig(), Shards: 1, Workers: 1, QueueSize: len(orders) + 16,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(city.G, fleet, cfg)
	if err != nil {
		panic(err)
	}
	delta := e.cfg.Pipeline.Delta
	next := 0
	for now := start + delta; now < end+7200; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				panic(err)
			}
			next++
		}
		e.Step(now)
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	snap := e.Snapshot()
	return crashOutcome{
		delivered: snap.Delivered, rejected: snap.Rejected,
		assigned: snap.Assigned, resplits: snap.Resplits, total: len(orders),
	}
}

// goldenCrashOutcome memoises the uncrashed CityB reference run shared by
// every fault-injection subtest.
var goldenCrashOutcome = sync.OnceValue(func() crashOutcome {
	return crashGoldenRun(nil)
})

// resplitCrashCfg is the elastic-sharding configuration the re-split
// composition tests share: two zones, deterministic Workers=1, and a
// cadence that fires a demand-driven re-split a handful of rounds into the
// dinner replay.
func resplitCrashCfg(cfg *Config) {
	cfg.Shards = 2
	cfg.ResplitSec = 300
}

// goldenResplitOutcome memoises the uncrashed reference run for the
// re-split configuration.
var goldenResplitOutcome = sync.OnceValue(func() crashOutcome {
	return crashGoldenRun(resplitCrashCfg)
})

// crashResumeTrial drives the CityB dinner slice through a WAL-backed
// engine, kills it (by injected panic) at targetPhase of round crashRound,
// then boots a second engine from the last durable checkpoint plus the WAL
// tail — exactly the daemon's recovery path — and finishes the replay on
// it. ckptEvery is the checkpoint cadence in rounds; 0 disables
// checkpointing entirely, so recovery runs from the WAL alone.
func crashResumeTrial(t *testing.T, targetPhase string, crashRound, ckptEvery int) crashOutcome {
	return crashResumeTrialCfg(t, targetPhase, crashRound, ckptEvery, nil)
}

// crashResumeTrialCfg is crashResumeTrial with a Config mutator applied to
// both the crashed engine and the recovery engine (the daemon reboots with
// the same flags it crashed under). crashRound < 0 kills at the *first*
// occurrence of targetPhase — the only usable targeting for phases that run
// on a cadence rather than every round, like "resplit".
func crashResumeTrialCfg(t *testing.T, targetPhase string, crashRound, ckptEvery int, mutate func(*Config)) crashOutcome {
	t.Helper()
	city := testCityB
	start, end := 18.0*3600, 18.5*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	dir := t.TempDir()

	wlog, recovered, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh WAL dir recovered %d records", len(recovered))
	}
	cfg := Config{
		Pipeline: testConfig(), Shards: 1, Workers: 1,
		QueueSize: len(orders) + 16, WAL: wlog,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	round := 0
	crashed := false
	cfg.phaseHook = func(ph string) {
		if ph == "drain" {
			round++
		}
		if crashed {
			return // the dead engine's hook: the trial crashes once
		}
		if (round == crashRound || crashRound < 0) && ph == targetPhase {
			crashed = true
			panic(crashPanic{ph})
		}
	}
	e, err := New(city.G, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// lastCkpt holds the newest durable checkpoint document (the bytes the
	// daemon would have renamed into checkpoint.json); resumeClock is the
	// window it was cut at.
	var lastCkpt []byte
	var resumeClock float64
	checkpoint := func() {
		var buf bytes.Buffer
		doc, err := e.WriteCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		lastCkpt = buf.Bytes()
		resumeClock = float64(doc.Clock)
		if err := wlog.Rotate(); err != nil {
			t.Fatal(err)
		}
		if _, err := wlog.TruncateThrough(doc.WALTruncateSeq()); err != nil {
			t.Fatal(err)
		}
	}

	step := func(now float64) (crashed bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashPanic); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		e.Step(now)
		return false
	}

	delta := e.cfg.Pipeline.Delta
	next := 0
	win := 0
	for now := start + delta; now < end+7200; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatalf("submit order %d: %v", orders[next].ID, err)
			}
			next++
		}
		if step(now) {
			// The process is dead: only the WAL segments and lastCkpt
			// survive. Reopen the log (the dead engine's handle is simply
			// abandoned, like a real kill) and rebuild.
			wlog2, recs, err := wal.Open(dir, wal.Options{SyncEvery: 1})
			if err != nil {
				t.Fatalf("reopen wal: %v", err)
			}
			fleet2 := city.Fleet(1.0, testConfig().MaxO, 1)
			cfg2 := Config{
				Pipeline: testConfig(), Shards: 1, Workers: 1,
				QueueSize: len(orders) + 16, WAL: wlog2,
			}
			if mutate != nil {
				mutate(&cfg2)
			}
			e2, err := New(city.G, fleet2, cfg2)
			if err != nil {
				t.Fatal(err)
			}
			from := start
			if lastCkpt != nil {
				doc, err := ReadCheckpoint(bytes.NewReader(lastCkpt))
				if err != nil {
					t.Fatal(err)
				}
				if err := e2.RestoreCheckpoint(doc); err != nil {
					t.Fatal(err)
				}
				from = resumeClock
			}
			ro, rp, err := e2.ReplayWAL(recs)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("phase=%s: crashed round %d, restored clock=%.0f, replayed %d orders %d pings",
				targetPhase, crashRound, from, ro, rp)
			assertNoDoubleAssignment(t, e2)
			e = e2
			wlog = wlog2
			// Re-run the windows the crash erased, then the crashed window
			// itself. Replayed orders sit in the future buffer and re-admit
			// at their original windows, so the rounds reproduce exactly.
			for tw := from + delta; tw < now; tw += delta {
				e.Step(tw)
			}
			e.Step(now)
		}
		win++
		if ckptEvery > 0 && win%ckptEvery == 0 {
			checkpoint()
		}
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	assertNoDoubleAssignment(t, e)
	snap := e.Snapshot()
	return crashOutcome{
		delivered: snap.Delivered, rejected: snap.Rejected,
		assigned: snap.Assigned, resplits: snap.Resplits, total: len(orders),
	}
}

// assertNoDoubleAssignment walks the engine's world state and fails if any
// order rides on two vehicles, or disagrees with its vehicle about the
// assignment. The engine must be quiescent (between Steps).
func assertNoDoubleAssignment(t *testing.T, e *Engine) {
	t.Helper()
	owner := make(map[model.OrderID]model.VehicleID)
	for _, mo := range e.motions {
		v := mo.V
		for _, o := range v.Pending {
			if prev, dup := owner[o.ID]; dup {
				t.Fatalf("order %d pending on vehicle %d and already on %d", o.ID, v.ID, prev)
			}
			owner[o.ID] = v.ID
			if o.AssignedTo != v.ID {
				t.Errorf("order %d pending on vehicle %d but AssignedTo=%d", o.ID, v.ID, o.AssignedTo)
			}
		}
		for _, o := range v.Onboard {
			if prev, dup := owner[o.ID]; dup {
				t.Fatalf("order %d onboard vehicle %d and already on %d", o.ID, v.ID, prev)
			}
			owner[o.ID] = v.ID
			if o.AssignedTo != v.ID {
				t.Errorf("order %d onboard vehicle %d but AssignedTo=%d", o.ID, v.ID, o.AssignedTo)
			}
		}
	}
}

// TestCrashResumeAtEveryPhase kills the engine at each phase of the phased
// round during a CityB replay and checks the recovered run converges to the
// golden (uncrashed) outcome: zero lost orders, zero double assignments, and
// — because the single-shard Step-driven replay is deterministic — exactly
// the golden delivered/rejected/assigned counts.
func TestCrashResumeAtEveryPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("CityB fault-injection replays are slow")
	}
	golden := goldenCrashOutcome()
	if golden.delivered == 0 {
		t.Fatal("golden run delivered nothing; workload broken")
	}
	for _, phase := range []string{"drain", "advance", "handoff", "match", "apply"} {
		t.Run(phase, func(t *testing.T) {
			got := crashResumeTrial(t, phase, 5, 3)
			if got != golden {
				t.Errorf("resumed outcome %+v, golden %+v", got, golden)
			}
			if got.delivered+got.rejected != int64(got.total) {
				t.Errorf("delivered %d + rejected %d != %d submitted orders (lost or stuck)",
					got.delivered, got.rejected, got.total)
			}
		})
	}
	t.Run("no-checkpoint", func(t *testing.T) {
		// Crash before any checkpoint exists: recovery replays the WAL alone
		// into a fresh engine from the start of time.
		got := crashResumeTrial(t, "match", 3, 0)
		if got != golden {
			t.Errorf("WAL-only resumed outcome %+v, golden %+v", got, golden)
		}
	})
}

// TestCrashResumeAtResplit extends the phase-kill walker to the elastic
// sharding plane: a two-shard engine with a forced re-split cadence is
// killed inside (and around) the "resplit" barrier phase, recovered from
// checkpoint+WAL — so the restored engine rebuilds the demand-weighted
// partition, replays, and re-executes the erased re-split — and must
// converge to the uncrashed run's exact lifecycle counts, including the
// re-split count itself.
func TestCrashResumeAtResplit(t *testing.T) {
	if testing.Short() {
		t.Skip("CityB fault-injection replays are slow")
	}
	golden := goldenResplitOutcome()
	if golden.delivered == 0 {
		t.Fatal("golden resplit run delivered nothing; workload broken")
	}
	if golden.resplits == 0 {
		t.Fatal("golden resplit run never re-split; the composition test measures nothing")
	}
	cases := []struct {
		name       string
		phase      string
		crashRound int
		ckptEvery  int
	}{
		// Killed inside the re-split itself, with checkpoints every window:
		// recovery restores a pre-re-split cut and must re-execute the
		// re-split during the erased-window replay.
		{"resplit-ckpt", "resplit", -1, 1},
		// Killed inside the re-split with no checkpoint at all: recovery
		// replays the WAL from the start of time and re-splits on the way.
		{"resplit-wal-only", "resplit", -1, 0},
		// Killed at the barrier and match phases of a round after the first
		// re-split: the checkpoint restored here carries a re-split
		// partition (PartDemand), composing restore → re-split → replay.
		{"handoff-post-resplit", "handoff", 6, 3},
		{"match-post-resplit", "match", 6, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := crashResumeTrialCfg(t, tc.phase, tc.crashRound, tc.ckptEvery, resplitCrashCfg)
			if got != golden {
				t.Errorf("resumed outcome %+v, golden %+v", got, golden)
			}
			if got.delivered+got.rejected != int64(got.total) {
				t.Errorf("delivered %d + rejected %d != %d submitted orders (lost or stuck)",
					got.delivered, got.rejected, got.total)
			}
		})
	}
}

// TestCheckpointRoundTripDeterministic checkpoints a mid-replay engine,
// restores the document into a fresh engine, and re-exports: the bytes must
// match exactly (same orders, same pool/future order, same vehicle motion,
// same counters), and the restored engine must keep replaying to the same
// final outcome as the original.
func TestCheckpointRoundTripDeterministic(t *testing.T) {
	city := testCityB
	start, end := 18.0*3600, 18.4*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	mk := func() *Engine {
		// A 5% fleet cannot keep up with the dinner slice, so the cut
		// catches a real backlog: pooled orders, assigned-but-unpicked
		// orders, and (below) scheduled future orders.
		e, err := New(city.G, city.Fleet(0.05, testConfig().MaxO, 1), Config{
			Pipeline: testConfig(), Shards: 2, Workers: 1, QueueSize: len(orders) + 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e := mk()
	delta := e.cfg.Pipeline.Delta
	next := 0
	mid := start + 12*delta
	var now float64
	for now = start + delta; now <= mid; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		e.Step(now)
	}
	// Park a few scheduled orders in the future buffer so the cut covers it.
	for i := 0; i < 3; i++ {
		if err := e.SubmitOrder(&model.Order{
			ID: model.OrderID(900_001 + i), Restaurant: 5, Customer: 700,
			PlacedAt: end + 1800 + float64(i), Items: 1, Prep: 300, AssignedTo: -1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Step(now)
	now += delta

	var b1 bytes.Buffer
	doc1, err := e.WriteCheckpoint(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc1.Orders) == 0 || len(doc1.Pool) == 0 || len(doc1.Future) < 3 {
		t.Fatalf("mid-replay checkpoint missing coverage: %d orders, %d pool, %d future",
			len(doc1.Orders), len(doc1.Pool), len(doc1.Future))
	}

	r := mk()
	doc, err := ReadCheckpoint(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreCheckpoint(doc); err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if _, err := r.WriteCheckpoint(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("restore+re-export changed the document:\n%s\nvs\n%s", b1.String(), b2.String())
	}

	// Both engines finish the replay; the restored one must land on the
	// identical outcome (decision-identical continuation). The restored
	// engine gets its own copy of the remaining orders — the original
	// engine mutates the ones it is handed.
	finish := func(e *Engine, rest []*model.Order) Metrics {
		n := 0
		for nw := now; nw < end+7200; nw += delta {
			for n < len(rest) && rest[n].PlacedAt < nw {
				if err := e.SubmitOrder(rest[n]); err != nil {
					t.Fatal(err)
				}
				n++
			}
			e.Step(nw)
			if nw >= end && n == len(rest) && e.Idle() {
				break
			}
		}
		return e.Snapshot()
	}
	orders2 := workload.OrderStreamWindow(city, 1, start, end)
	s1 := finish(e, orders[next:])
	s2 := finish(r, orders2[next:])
	if s1.Delivered != s2.Delivered || s1.Rejected != s2.Rejected || s1.Assigned != s2.Assigned {
		t.Errorf("restored continuation diverged: delivered %d/%d rejected %d/%d assigned %d/%d",
			s1.Delivered, s2.Delivered, s1.Rejected, s2.Rejected, s1.Assigned, s2.Assigned)
	}
}

// TestReplayWALIdempotent submits orders and pings through a WAL-backed
// engine without draining them, then replays the recovered records into a
// fresh engine twice: the first pass applies everything, the second is a
// no-op because the high-waters have advanced past every sequence.
func TestReplayWALIdempotent(t *testing.T) {
	city := testCityB
	fleet := city.Fleet(0.2, testConfig().MaxO, 1)
	dir := t.TempDir()
	wlog, _, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(city.G, fleet, Config{Pipeline: testConfig(), Shards: 1, WAL: wlog})
	if err != nil {
		t.Fatal(err)
	}
	const nOrders = 7
	for i := 0; i < nOrders; i++ {
		if err := e.SubmitOrder(&model.Order{
			ID: model.OrderID(i + 1), Restaurant: 10, Customer: 500,
			PlacedAt: 65_000 + float64(i), Items: 1, Prep: 300, AssignedTo: -1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	v := fleet[0]
	if err := e.PingVehicle(v.ID, v.Node); err != nil {
		t.Fatal(err)
	}
	if err := e.SetVehicleShift(fleet[1].ID, math.NaN(), 90_000); err != nil {
		t.Fatal(err)
	}

	_, recs, err := wal.Open(dir, wal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != nOrders+2 {
		t.Fatalf("recovered %d records, want %d", len(recs), nOrders+2)
	}

	e2, err := New(city.G, city.Fleet(0.2, testConfig().MaxO, 1), Config{Pipeline: testConfig(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ro, rp, err := e2.ReplayWAL(recs)
	if err != nil {
		t.Fatal(err)
	}
	if ro != nOrders || rp != 2 {
		t.Fatalf("first replay applied %d orders %d pings, want %d and 2", ro, rp, nOrders)
	}
	if got := e2.Snapshot().ScheduledDepth; got != nOrders {
		t.Fatalf("scheduled depth %d after replay, want %d", got, nOrders)
	}
	if to := e2.byID[fleet[1].ID].V.ActiveTo; to != 90_000 {
		t.Errorf("replayed shift ActiveTo=%v, want 90000", to)
	}
	ro, rp, err = e2.ReplayWAL(recs)
	if err != nil {
		t.Fatal(err)
	}
	if ro != 0 || rp != 0 {
		t.Fatalf("second replay applied %d orders %d pings, want 0 and 0 (not idempotent)", ro, rp)
	}
}

// TestRestoreCheckpointGuards pins the restore preconditions: version
// mismatches, used engines, fleet mismatches and dangling references are
// rejected with the document untouched.
func TestRestoreCheckpointGuards(t *testing.T) {
	city := testCityB
	mk := func() *Engine {
		e, err := New(city.G, city.Fleet(0.2, testConfig().MaxO, 1), Config{Pipeline: testConfig(), Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	e := mk()
	doc := e.CheckpointState()

	t.Run("version", func(t *testing.T) {
		bad := *doc
		bad.Version = 99
		if err := mk().RestoreCheckpoint(&bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("used engine", func(t *testing.T) {
		used := mk()
		used.Step(66_000)
		if err := used.RestoreCheckpoint(doc); err != ErrEngineUsed {
			t.Fatalf("want ErrEngineUsed, got %v", err)
		}
	})
	t.Run("fleet mismatch", func(t *testing.T) {
		small, err := New(city.G, city.Fleet(0.1, testConfig().MaxO, 1), Config{Pipeline: testConfig(), Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := small.RestoreCheckpoint(doc); err == nil || !strings.Contains(err.Error(), "vehicles") {
			t.Fatalf("want fleet-size error, got %v", err)
		}
	})
	t.Run("dangling order ref", func(t *testing.T) {
		bad := *doc
		bad.Pool = append(append([]int64{}, doc.Pool...), 424242)
		if err := mk().RestoreCheckpoint(&bad); err == nil || !strings.Contains(err.Error(), "424242") {
			t.Fatalf("want dangling-reference error, got %v", err)
		}
	})
	t.Run("truncated document", func(t *testing.T) {
		var b bytes.Buffer
		if _, err := e.WriteCheckpoint(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(bytes.NewReader(b.Bytes()[:b.Len()/2])); err == nil {
			t.Fatal("truncated checkpoint parsed without error")
		}
	})
}

// TestCheckpointF64Specials pins the ±Inf/NaN encoding: open shifts
// (ActiveTo=+Inf) and unreachable SDTs must survive the JSON round-trip.
func TestCheckpointF64Specials(t *testing.T) {
	for _, v := range []float64{math.Inf(1), math.Inf(-1), 0, 1.5, -2.25} {
		b, err := F64(v).MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back F64
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("%v: %v (json %s)", v, err, b)
		}
		if float64(back) != v {
			t.Errorf("%v round-tripped to %v via %s", v, float64(back), b)
		}
	}
	b, err := F64(math.NaN()).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back F64
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back)) {
		t.Errorf("NaN round-tripped to %v via %s", float64(back), b)
	}
	if err := back.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("bogus float string accepted")
	}
}

// BenchmarkCheckpoint measures the full capture+marshal cost on a mid-replay
// CityB engine — the round-latency overhead budget for periodic checkpoints.
func BenchmarkCheckpoint(b *testing.B) {
	city := testCityB
	start, end := 18.0*3600, 18.4*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	e, err := New(city.G, fleet, Config{Pipeline: testConfig(), Shards: 4, QueueSize: len(orders) + 16})
	if err != nil {
		b.Fatal(err)
	}
	delta := e.cfg.Pipeline.Delta
	next := 0
	for now := start + delta; now <= start+10*delta; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				b.Fatal(err)
			}
			next++
		}
		e.Step(now)
	}
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		doc, err := e.WriteCheckpoint(&buf)
		if err != nil {
			b.Fatal(err)
		}
		sink += len(doc.Orders) + buf.Len()
	}
	if sink == 0 {
		b.Fatal("checkpoints were empty")
	}
	_ = fmt.Sprintf("%d", sink)
}
