package engine

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/roadnet"
)

// engineObs bundles the engine's observability instruments: direct pointers
// into an obs.Registry, resolved once at construction so hot-path recording
// is a handful of atomic adds with no registry lookups and no new locks on
// the round path. A nil *engineObs (Config.DisableObs) disables recording
// entirely — every obs instrument method is nil-receiver-safe, but the
// engine still guards with `if eo != nil` to skip the time.Now() calls too.
type engineObs struct {
	reg    *obs.Registry
	tracer *obs.OrderTracer

	// Round plane.
	roundLatency *obs.Histogram
	phase        map[string]*obs.Histogram // drain/advance/handoff/match/apply/replan/rebuild
	stage        map[string]*obs.Histogram // batch/sparsify/reshuffle/match
	shardAdvance []*obs.Histogram
	shardAssign  []*obs.Histogram
	shardNames   []string

	// Dynamic weight plane.
	pubFull    *obs.Histogram
	pubPatched *obs.Histogram

	// Router query plane (sampled; see timedRouter).
	routerHist func(kind string) *obs.Histogram

	// Counter mirrors of the engine's lifecycle totals.
	cIngested, cAdmitted, cShedOrders *obs.Counter
	cPingsIngested, cPingsShed        *obs.Counter
	cAssigned, cReassigned, cRejected *obs.Counter
	cDelivered, cStranded             *obs.Counter
	cHandoffs, cVehHandoffs, cRounds  *obs.Counter
	cPublishes, cPublishesPatched     *obs.Counter
	cResplits, cResplitMoves          *obs.Counter

	// Queue/pool gauges, sampled at the end of every round.
	gOrderQueue, gPingQueue, gPool *obs.Gauge
	gClock, gEpoch, gShardEpoch    *obs.Gauge
}

// roundPhases and pipelineStages are the fixed phase/stage vocabularies of
// the phased round (round.go) — histogram label values and span names. The
// resplit step is a child span under handoff (like weight publishes), not a
// top-level phase.
var roundPhases = []string{"drain", "advance", "handoff", "match", "apply", "replan", "rebuild"}

var pipelineStages = []string{"batch", "sparsify", "reshuffle", "match"}

func newEngineObs(reg *obs.Registry, shards, traceRing int) *engineObs {
	eo := &engineObs{reg: reg}
	eo.tracer = obs.NewOrderTracer(reg, traceRing)

	eo.roundLatency = reg.Histogram("foodmatch_round_latency_seconds",
		"Wall-clock latency of one full assignment round.", obs.DurationBuckets, nil)
	eo.phase = make(map[string]*obs.Histogram, len(roundPhases))
	for _, p := range roundPhases {
		eo.phase[p] = reg.Histogram("foodmatch_round_phase_seconds",
			"Wall-clock latency of one phase of the phased round.",
			obs.DurationBuckets, obs.Labels{"phase": p})
	}
	eo.stage = make(map[string]*obs.Histogram, len(pipelineStages))
	for _, st := range pipelineStages {
		eo.stage[st] = reg.Histogram("foodmatch_pipeline_stage_seconds",
			"Wall-clock latency of one assignment-pipeline stage (per shard-round).",
			obs.DurationBuckets, obs.Labels{"stage": st})
	}
	for s := 0; s < shards; s++ {
		label := obs.Labels{"shard": fmt.Sprintf("%d", s)}
		eo.shardNames = append(eo.shardNames, fmt.Sprintf("shard%d", s))
		eo.shardAdvance = append(eo.shardAdvance, reg.Histogram("foodmatch_shard_advance_seconds",
			"Per-shard movement-advance critical path.", obs.DurationBuckets, label))
		eo.shardAssign = append(eo.shardAssign, reg.Histogram("foodmatch_shard_assign_seconds",
			"Per-shard matching critical path (rounds where the shard ran).", obs.DurationBuckets, label))
	}

	eo.pubFull = reg.Histogram("foodmatch_weight_publish_seconds",
		"Weight-epoch publish duration, split full rebuild vs incremental patch.",
		obs.DurationBuckets, obs.Labels{"mode": "full"})
	eo.pubPatched = reg.Histogram("foodmatch_weight_publish_seconds", "",
		obs.DurationBuckets, obs.Labels{"mode": "patched"})

	eo.routerHist = func(kind string) *obs.Histogram {
		return reg.Histogram("foodmatch_router_query_seconds",
			"Sampled router Travel() latency by backend kind (1 in 64 queries).",
			obs.QueryBuckets, obs.Labels{"kind": kind})
	}

	orders := func(event string) *obs.Counter {
		return reg.Counter("foodmatch_orders_total",
			"Order lifecycle totals by event.", obs.Labels{"event": event})
	}
	eo.cIngested = orders("ingested")
	eo.cAdmitted = orders("admitted")
	eo.cShedOrders = orders("shed")
	eo.cAssigned = orders("assigned")
	eo.cReassigned = orders("reassigned")
	eo.cRejected = orders("rejected")
	eo.cDelivered = orders("delivered")
	eo.cStranded = orders("stranded")
	eo.cHandoffs = orders("handoff")
	pings := func(event string) *obs.Counter {
		return reg.Counter("foodmatch_pings_total",
			"Vehicle ping totals by event.", obs.Labels{"event": event})
	}
	eo.cPingsIngested = pings("ingested")
	eo.cPingsShed = pings("shed")
	eo.cVehHandoffs = reg.Counter("foodmatch_vehicle_handoffs_total",
		"Vehicles re-homed across a zone boundary.", nil)
	eo.cRounds = reg.Counter("foodmatch_rounds_total",
		"Completed assignment rounds.", nil)
	eo.cPublishes = reg.Counter("foodmatch_weight_publishes_total",
		"Published weight epochs by publish mode.", obs.Labels{"mode": "full"})
	eo.cPublishesPatched = reg.Counter("foodmatch_weight_publishes_total", "",
		obs.Labels{"mode": "patched"})
	eo.cResplits = reg.Counter("foodmatch_resplits_total",
		"Demand-driven shard re-splits executed at the handoff barrier.", nil)
	eo.cResplitMoves = reg.Counter("foodmatch_resplit_moves_total",
		"Vehicles migrated across zone boundaries by shard re-splits.", nil)

	eo.gOrderQueue = reg.Gauge("foodmatch_queue_depth",
		"Ingestion queue depth sampled at the end of the last round.",
		obs.Labels{"queue": "orders"})
	eo.gPingQueue = reg.Gauge("foodmatch_queue_depth", "", obs.Labels{"queue": "pings"})
	eo.gPool = reg.Gauge("foodmatch_pool_depth",
		"Unassigned orders pooled across all zone shards.", nil)
	eo.gClock = reg.Gauge("foodmatch_clock_sim_seconds",
		"Engine simulation clock (seconds since midnight).", nil)
	eo.gEpoch = reg.Gauge("foodmatch_weight_epoch",
		"Currently served weight epoch (0 = static base weights).", nil)
	eo.gShardEpoch = reg.Gauge("foodmatch_shard_epoch",
		"Current shard-partition generation (0 = initial node-balanced KD split).", nil)
	return eo
}

// recordPhases observes the round's phase, per-shard and pipeline-stage
// histograms and builds the span tree published on RoundStats.Phases.
// Called once per round after every duration is measured; recording is
// atomic adds only, and the span tree is a handful of small allocations
// whose names are the static phase vocabulary.
func (eo *engineObs) recordPhases(ph []phase1Out, work []shardWork,
	drainSec, advanceSec, handoffSec, pubSec, resplitSec, matchSec, applySec, replanSec, rebuildSec float64) []obs.Phase {

	eo.phase["drain"].Observe(drainSec)
	eo.phase["advance"].Observe(advanceSec)
	eo.phase["handoff"].Observe(handoffSec)
	eo.phase["match"].Observe(matchSec)
	eo.phase["apply"].Observe(applySec)
	eo.phase["replan"].Observe(replanSec)
	eo.phase["rebuild"].Observe(rebuildSec)

	advance := obs.Phase{Name: "advance", DurSec: advanceSec}
	for si := range ph {
		eo.shardAdvance[si].Observe(ph[si].advanceSec)
		advance.Children = append(advance.Children,
			obs.Phase{Name: eo.shardNames[si], DurSec: ph[si].advanceSec})
	}
	handoff := obs.Phase{Name: "handoff", DurSec: handoffSec}
	if pubSec > 0 {
		handoff.Children = append(handoff.Children, obs.Phase{Name: "publish", DurSec: pubSec})
	}
	if resplitSec > 0 {
		handoff.Children = append(handoff.Children, obs.Phase{Name: "resplit", DurSec: resplitSec})
	}
	match := obs.Phase{Name: "match", DurSec: matchSec}
	for si := range work {
		sw := &work[si]
		if len(sw.orders) == 0 || len(sw.vehicles) == 0 {
			continue // shard skipped this round: no assign critical path
		}
		eo.shardAssign[si].Observe(sw.sec)
		child := obs.Phase{Name: eo.shardNames[si], DurSec: sw.sec}
		if ps := sw.pstats; ps != nil {
			eo.stage["batch"].Observe(ps.BatchSec)
			eo.stage["sparsify"].Observe(ps.SparsifySec)
			eo.stage["reshuffle"].Observe(ps.ReshuffleSec)
			eo.stage["match"].Observe(ps.MatchSec)
			child.Children = []obs.Phase{
				{Name: "batch", DurSec: ps.BatchSec},
				{Name: "sparsify", DurSec: ps.SparsifySec},
				{Name: "reshuffle", DurSec: ps.ReshuffleSec},
				{Name: "match", DurSec: ps.MatchSec},
			}
		}
		match.Children = append(match.Children, child)
	}
	return []obs.Phase{
		{Name: "drain", DurSec: drainSec},
		advance,
		handoff,
		match,
		{Name: "apply", DurSec: applySec},
		{Name: "replan", DurSec: replanSec},
		{Name: "rebuild", DurSec: rebuildSec},
	}
}

// timedRouter decorates a shard's Router with sampled query timing: every
// 64th Travel() is bracketed with time.Now(). Router instances are driven by
// a single shard goroutine at a time (the engine's ownership contract), so
// the sample counter needs no atomics; the histogram it feeds is atomic.
type timedRouter struct {
	inner roadnet.Router
	hist  *obs.Histogram
	n     uint32
}

const routerSampleEvery = 64

func (t *timedRouter) Travel(from, to roadnet.NodeID, at float64) float64 {
	t.n++
	if t.n%routerSampleEvery != 0 {
		return t.inner.Travel(from, to, at)
	}
	start := time.Now()
	d := t.inner.Travel(from, to, at)
	t.hist.Observe(time.Since(start).Seconds())
	return d
}

// TravelMany forwards the batched query path (sampled like Travel, one
// observation per batch) so the decorator never degrades a many-to-many
// backend to per-pair queries.
func (t *timedRouter) TravelMany(from roadnet.NodeID, targets []roadnet.NodeID, at float64) []float64 {
	t.n++
	if t.n%routerSampleEvery != 0 {
		return roadnet.TravelMany(t.inner, from, targets, at)
	}
	start := time.Now()
	d := roadnet.TravelMany(t.inner, from, targets, at)
	t.hist.Observe(time.Since(start).Seconds())
	return d
}

// Reset forwards to the inner router's cache reset (slot boundaries).
func (t *timedRouter) Reset() {
	if r, ok := t.inner.(roadnet.Resettable); ok {
		r.Reset()
	}
}

// RouterKind forwards the inner backend's kind.
func (t *timedRouter) RouterKind() string { return routerKind(t.inner) }

// Unwrap exposes the decorated backend (tests, diagnostics).
func (t *timedRouter) Unwrap() roadnet.Router { return t.inner }

// routerKind names a router backend for the query-latency label set.
func routerKind(r roadnet.Router) string {
	if k, ok := r.(roadnet.Kinded); ok {
		return k.RouterKind()
	}
	return fmt.Sprintf("%T", r)
}

// timeRouter wraps a freshly built shard router (including every epoch
// rebuild through SwapRouter's factory) with the sampled timing decorator.
func (eo *engineObs) timeRouter(r roadnet.Router) roadnet.Router {
	return &timedRouter{inner: r, hist: eo.routerHist(routerKind(r))}
}

// Obs returns the engine's metrics registry (the one behind foodmatchd's
// GET /metrics.prom), or nil when Config.DisableObs was set.
func (e *Engine) Obs() *obs.Registry {
	if e.eo == nil {
		return nil
	}
	return e.eo.reg
}

// TraceTail returns up to n of the most recent order-lifecycle events from
// the bounded event ring, oldest first. Nil unless Config.TraceRing > 0.
func (e *Engine) TraceTail(n int) []obs.OrderEvent {
	if e.eo == nil {
		return nil
	}
	return e.eo.tracer.Tail(n)
}

// Ready reports whether the engine has started its window clock and
// completed at least one assignment round — foodmatchd's readiness
// condition. Lock-free on the round path.
func (e *Engine) Ready() bool {
	e.runMu.Lock()
	running := e.stopCh != nil
	e.runMu.Unlock()
	if !running {
		return false
	}
	e.statMu.Lock()
	rounds := e.stats.rounds
	e.statMu.Unlock()
	return rounds > 0
}
