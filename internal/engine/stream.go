package engine

import (
	"sync"

	"repro/internal/model"
)

// Decision is one published assignment: Orders were attached to Vehicle by
// the round at time T, computed by zone shard Shard. Reassigned marks a
// reshuffle that moved at least one of the orders off another vehicle.
type Decision struct {
	T          float64         `json:"t"`
	Vehicle    model.VehicleID `json:"vehicle"`
	Orders     []model.OrderID `json:"orders"`
	Shard      int             `json:"shard"`
	Reassigned bool            `json:"reassigned,omitempty"`
}

// Rejection is one published rejection (order unallocated past RejectAfter).
type Rejection struct {
	T     float64       `json:"t"`
	Order model.OrderID `json:"order"`
}

// StreamEvent is one message on the assignment stream; exactly one field is
// non-nil.
type StreamEvent struct {
	Decision  *Decision   `json:"decision,omitempty"`
	Rejection *Rejection  `json:"rejection,omitempty"`
	Round     *RoundStats `json:"round,omitempty"`
}

// Subscription is one consumer of the assignment stream. Events are
// delivered on C; a consumer that falls behind loses events rather than
// stalling the engine (Dropped counts them). Cancel releases the
// subscription and closes C.
type Subscription struct {
	C <-chan StreamEvent

	owner  *subscribers
	id     int
	ch     chan StreamEvent
	closed bool

	mu      sync.Mutex
	dropped int64
}

// Cancel detaches the subscription; C is closed. Safe to call twice.
func (s *Subscription) Cancel() { s.owner.cancel(s) }

// Dropped reports how many events were lost to a full buffer.
func (s *Subscription) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// subscribers is the engine's fan-out registry.
type subscribers struct {
	mu   sync.Mutex
	next int
	subs map[int]*Subscription
}

// Subscribe attaches a consumer to the assignment stream with the given
// channel buffer (min 1). Events published while the buffer is full are
// dropped for that consumer only.
func (e *Engine) Subscribe(buffer int) *Subscription {
	return e.subs.add(buffer)
}

func (r *subscribers) add(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.subs == nil {
		r.subs = make(map[int]*Subscription)
	}
	ch := make(chan StreamEvent, buffer)
	s := &Subscription{C: ch, ch: ch, owner: r, id: r.next}
	r.subs[r.next] = s
	r.next++
	return s
}

func (r *subscribers) cancel(s *Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(r.subs, s.id)
	close(s.ch)
}

func (r *subscribers) publish(ev StreamEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.subs {
		select {
		case s.ch <- ev:
		default:
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
		}
	}
}

func (r *subscribers) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, s := range r.subs {
		s.closed = true
		close(s.ch)
		delete(r.subs, id)
	}
}
