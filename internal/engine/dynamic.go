package engine

import (
	"errors"
	"io"
	"math"
	"sync"

	"repro/internal/gps"
	"repro/internal/roadnet"
)

// ErrStaticRoadnet is returned by the weight checkpoint hooks when the
// engine runs without a learner (no dynamic plane to checkpoint or restore).
var ErrStaticRoadnet = errors.New("engine: static road network (no learner configured)")

// dynamicState is the engine side of the live traffic plane: bookkeeping
// for the periodic weight publishes that turn the streaming learner's
// estimates into router epochs. Guarded by its own mutex so a forced
// RefreshWeights never has to wait out a round holding the world lock —
// that is what makes genuinely mid-round epoch swaps possible (and safe:
// shard rounds pin their epoch via SwapRouter.Acquire).
type dynamicState struct {
	learner    *gps.StreamLearner
	refresh    float64
	minSamples int

	mu           sync.Mutex
	epoch        uint64
	lastT        float64 // sim clock of the last publish attempt
	publishes    int64
	learnedEdges int
	learnedCells int
}

// maybeRefreshWeights publishes a new weight epoch when the refresh period
// has elapsed; called once per round with the round clock.
func (e *Engine) maybeRefreshWeights(now float64) {
	if e.dyn == nil {
		return
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	if now-e.dyn.lastT < e.dyn.refresh {
		return
	}
	e.publishWeightsLocked(now)
}

// RefreshWeights forces an immediate weight publish at the current engine
// clock, regardless of the refresh period. It returns the served epoch and
// whether a *new* epoch was published (false when the engine is static or
// the learner has no cells above MinSamples yet). Safe to call from any
// goroutine, including concurrently with running rounds: shard queries keep
// hitting their pinned epoch until the next round acquires the new one.
func (e *Engine) RefreshWeights() (uint64, bool) {
	if e.dyn == nil {
		return 0, false
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	before := e.dyn.epoch
	after := e.publishWeightsLocked(math.Float64frombits(e.clockBits.Load()))
	return after, after > before
}

// publishWeightsLocked materialises the learner's current estimates over
// the decision graph and swaps every zone shard onto the new epoch. Called
// with dyn.mu held. Returns the served epoch; publishing is skipped while
// the learner has nothing above the sample floor.
func (e *Engine) publishWeightsLocked(now float64) uint64 {
	d := e.dyn
	d.lastT = now
	w := d.learner.Weights(d.minSamples)
	if w.Cells() == 0 {
		return d.epoch
	}
	g2 := e.decG.Reweighted(w)
	d.epoch++
	snap := roadnet.Snapshot{
		Epoch:        d.epoch,
		Graph:        g2,
		LearnedEdges: w.Edges(),
		LearnedCells: w.Cells(),
		PublishedAt:  now,
	}
	for _, sr := range e.shards {
		sr.router.Publish(snap)
	}
	d.publishes++
	d.learnedEdges = w.Edges()
	d.learnedCells = w.Cells()
	return d.epoch
}

// CheckpointWeights writes the streaming learner's accumulated travel-time
// state (deterministic JSON) — the engine side of multi-day weight
// persistence. Checkpoint after a learning day, feed the bytes to a fresh
// engine's RestoreWeights the next day (or after a restart) and the learner
// resumes averaging exactly where it stopped. Safe to call from any
// goroutine, concurrently with rounds and publishes.
func (e *Engine) CheckpointWeights(w io.Writer) error {
	if e.dyn == nil {
		return ErrStaticRoadnet
	}
	return e.dyn.learner.SaveState(w)
}

// RestoreWeights merges a CheckpointWeights document into the engine's
// learner and forces an immediate epoch publish, so the restored knowledge
// reaches every zone shard's router before the next round instead of
// waiting out a refresh period. Returns the served epoch and whether a new
// epoch was actually published — false when every restored cell is still
// below the engine's MinSamples floor, in which case shards keep serving
// their current weights until further observations tip a cell over.
func (e *Engine) RestoreWeights(r io.Reader) (uint64, bool, error) {
	if e.dyn == nil {
		return 0, false, ErrStaticRoadnet
	}
	if err := e.dyn.learner.LoadState(r); err != nil {
		return 0, false, err
	}
	epoch, published := e.RefreshWeights()
	return epoch, published, nil
}

// ImportWeights publishes an externally learned weight table as a fresh
// epoch on every zone shard — bootstrapping decisions from persisted
// weights without feeding the learner. Note the learner's own periodic
// publishes replace imported epochs wholesale; when the engine should keep
// accumulating on top of the imported knowledge, restore the learner state
// with RestoreWeights instead.
func (e *Engine) ImportWeights(w *roadnet.SlotWeights) (uint64, error) {
	if e.dyn == nil {
		return 0, ErrStaticRoadnet
	}
	if w == nil || w.Cells() == 0 {
		return 0, errors.New("engine: no weight cells to import")
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	d := e.dyn
	g2 := e.decG.Reweighted(w)
	d.epoch++
	snap := roadnet.Snapshot{
		Epoch:        d.epoch,
		Graph:        g2,
		LearnedEdges: w.Edges(),
		LearnedCells: w.Cells(),
		PublishedAt:  math.Float64frombits(e.clockBits.Load()),
	}
	for _, sr := range e.shards {
		sr.router.Publish(snap)
	}
	d.publishes++
	d.learnedEdges = w.Edges()
	d.learnedCells = w.Cells()
	return d.epoch, nil
}

// currentEpoch reports the weight epoch the engine currently serves (0 for
// a static road network).
func (e *Engine) currentEpoch() uint64 {
	if e.dyn == nil {
		return 0
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	return e.dyn.epoch
}

// RoadnetStatus is a point-in-time view of the dynamic road network plane,
// served by foodmatchd's GET /roadnet.
type RoadnetStatus struct {
	// Dynamic reports whether a learner is attached; a static engine
	// serves epoch 0 forever.
	Dynamic bool `json:"dynamic"`
	// Epoch is the current weight epoch; Slot the current hourly slot.
	Epoch uint64  `json:"epoch"`
	Slot  int     `json:"slot"`
	Clock float64 `json:"clock"`
	// LearnedEdges / LearnedCells describe the last published epoch.
	LearnedEdges int `json:"learned_edges"`
	LearnedCells int `json:"learned_cells"`
	// Publishes counts epochs ever published; LastPublish is the sim clock
	// of the most recent publish attempt (-1 before the first).
	Publishes   int64   `json:"publishes"`
	LastPublish float64 `json:"last_publish"`
	RefreshSec  float64 `json:"refresh_sec"`
	MinSamples  int     `json:"min_samples"`
	// Learner is the streaming learner's throughput (nil when static).
	Learner *gps.StreamStats `json:"learner,omitempty"`
}

// Roadnet snapshots the dynamic road network plane. Safe to call from any
// goroutine, concurrently with rounds and publishes.
func (e *Engine) Roadnet() RoadnetStatus {
	clock := math.Float64frombits(e.clockBits.Load())
	st := RoadnetStatus{
		Clock: clock,
		Slot:  roadnet.Slot(clock),
	}
	if e.dyn == nil {
		return st
	}
	e.dyn.mu.Lock()
	st.Dynamic = true
	st.Epoch = e.dyn.epoch
	st.LearnedEdges = e.dyn.learnedEdges
	st.LearnedCells = e.dyn.learnedCells
	st.Publishes = e.dyn.publishes
	st.LastPublish = e.dyn.lastT
	if math.IsInf(st.LastPublish, -1) {
		st.LastPublish = -1 // lastT's internal sentinel is not JSON-encodable
	}
	st.RefreshSec = e.dyn.refresh
	st.MinSamples = e.dyn.minSamples
	e.dyn.mu.Unlock()
	ls := e.dyn.learner.Stats()
	st.Learner = &ls
	return st
}
