package engine

import (
	"errors"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/gps"
	"repro/internal/roadnet"
)

// ErrStaticRoadnet is returned by the weight checkpoint hooks when the
// engine runs without a learner (no dynamic plane to checkpoint or restore).
var ErrStaticRoadnet = errors.New("engine: static road network (no learner configured)")

// dynamicState is the engine side of the live traffic plane: bookkeeping
// for the periodic weight publishes that turn the streaming learner's
// estimates into router epochs. Guarded by its own mutex so a forced
// RefreshWeights never has to wait out a round holding the world lock —
// that is what makes genuinely mid-round epoch swaps possible (and safe:
// shard rounds pin their epoch via SwapRouter.Acquire).
type dynamicState struct {
	learner    *gps.StreamLearner
	refresh    float64
	minSamples int

	mu           sync.Mutex
	epoch        uint64
	lastT        float64 // sim clock of the last publish attempt
	publishes    int64
	patched      int64 // publishes that went through the incremental path
	learnedEdges int
	learnedCells int
	// lastGraph / lastW anchor the incremental publish chain: the graph of
	// the newest learner-built epoch and the cumulative SlotWeights table
	// it serves. Nil means the chain is broken (nothing published yet, or
	// an external ImportWeights replaced the table wholesale) and the next
	// learner publish must be a full rebuild.
	lastGraph *roadnet.Graph
	lastW     *roadnet.SlotWeights
}

// maybeRefreshWeights publishes a new weight epoch when the refresh period
// has elapsed; called once per round with the round clock. A due refresh
// with nothing learned since the last publish (the dirty set is empty) is
// skipped outright — minting a weight-identical epoch would only force
// every shard to rebuild its router caches for zero change. Forced
// RefreshWeights calls keep the publish-regardless contract. Returns the
// publish's wall-clock cost (0 when nothing was published) — the handoff
// barrier's "publish" span child.
func (e *Engine) maybeRefreshWeights(now float64) float64 {
	if e.dyn == nil {
		return 0
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	if now-e.dyn.lastT < e.dyn.refresh {
		return 0
	}
	if e.dyn.lastGraph != nil && e.dyn.learner.DirtyCells() == 0 {
		e.dyn.lastT = now // quiet period: try again a full period later
		return 0
	}
	start := time.Now()
	before := e.dyn.epoch
	e.publishWeightsLocked(now, true)
	if e.dyn.epoch == before {
		return 0
	}
	return time.Since(start).Seconds()
}

// RefreshWeights forces an immediate weight publish at the current engine
// clock, regardless of the refresh period. It returns the served epoch and
// whether a *new* epoch was published (false when the engine is static or
// the learner has no cells above MinSamples yet). Safe to call from any
// goroutine, including concurrently with running rounds: shard queries keep
// hitting their pinned epoch until the next round acquires the new one.
func (e *Engine) RefreshWeights() (uint64, bool) {
	if e.dyn == nil {
		return 0, false
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	before := e.dyn.epoch
	after := e.publishWeightsLocked(math.Float64frombits(e.clockBits.Load()), false)
	return after, after > before
}

// publishWeightsLocked materialises the learner's current estimates over
// the decision graph and swaps every zone shard onto the new epoch. Called
// with dyn.mu held. Returns the served epoch; publishing is skipped while
// the learner has nothing above the sample floor.
//
// Only the first learner epoch (or the first after an external import broke
// the chain) pays a full O(|E|·slots) Reweighted. Every later publish takes
// the learner's dirty set — the cells touched since the previous publish —
// and patches the previous epoch's graph, copying only the touched slot
// rows and sharing everything else, so steady-state publish cost scales
// with how much the city actually changed.
//
// skipIdentity declines to mint an epoch whose weights would be identical
// to the served one (periodic refreshes pass true — routers should not
// cold-rebuild for zero change); forced RefreshWeights passes false and
// publishes regardless.
func (e *Engine) publishWeightsLocked(now float64, skipIdentity bool) uint64 {
	d := e.dyn
	d.lastT = now
	start := time.Now()

	var (
		g2      *roadnet.Graph
		patched bool
		dirtyN  int
	)
	if d.lastGraph == nil {
		// (Re)start the chain: full table, full rebuild.
		w := d.learner.WeightsFull(d.minSamples)
		if w.Cells() == 0 {
			return d.epoch
		}
		g2 = e.decG.Reweighted(w)
		d.lastW = w
	} else {
		delta, dirty := d.learner.WeightsDirty(d.minSamples)
		dirtyN = dirty.Cells()
		if skipIdentity && (dirtyN == 0 || deltaMatchesPublished(delta, dirty, d.lastW)) {
			// Nothing touched, or every touched cell is either still below
			// the sample floor or left its published mean unchanged — the
			// patch would be an identity. Don't mint a weight-identical
			// epoch (withheld cells re-mark themselves dirty on the sample
			// that tips them over).
			return d.epoch
		}
		var err error
		g2, err = e.decG.PatchReweighted(d.lastGraph, delta, dirty)
		if err != nil {
			// Defensive: the chain anchor went stale (cannot happen through
			// this code path, but a full rebuild is always correct).
			full := d.learner.WeightsFull(d.minSamples)
			g2 = e.decG.Reweighted(full)
			d.lastW = full
		} else {
			patched = true
			// Fold the delta rows into the cumulative table so the
			// learned-cell provenance stays exact at O(dirty) cost.
			dirty.Range(func(u, v roadnet.NodeID, _ uint32) {
				if row, ok := delta.Row(u, v); ok {
					_ = d.lastW.PutRow(u, v, row)
				}
			})
		}
	}
	d.lastGraph = g2
	d.epoch++
	snap := roadnet.Snapshot{
		Epoch:        d.epoch,
		Graph:        g2,
		LearnedEdges: d.lastW.Edges(),
		LearnedCells: d.lastW.Cells(),
		PublishedAt:  now,
		Patched:      patched,
		DirtyCells:   dirtyN,
	}
	for _, sr := range e.shards {
		sr.router.Publish(snap)
	}
	d.publishes++
	if patched {
		d.patched++
	}
	d.learnedEdges = d.lastW.Edges()
	d.learnedCells = d.lastW.Cells()
	if eo := e.eo; eo != nil {
		dur := time.Since(start).Seconds()
		if patched {
			eo.pubPatched.Observe(dur)
			eo.cPublishesPatched.Inc()
		} else {
			eo.pubFull.Observe(dur)
			eo.cPublishes.Inc()
		}
		eo.gEpoch.Set(float64(d.epoch))
	}
	return d.epoch
}

// deltaMatchesPublished reports whether every dirty edge's delta row is
// identical to its row in the cumulative published table — i.e. the patch
// would change nothing a router can observe. O(dirty) row compares.
func deltaMatchesPublished(delta *roadnet.SlotWeights, dirty *roadnet.DirtyCells, published *roadnet.SlotWeights) bool {
	same := true
	dirty.Range(func(u, v roadnet.NodeID, _ uint32) {
		if !same {
			return
		}
		dRow, dOK := delta.Row(u, v)
		pRow, pOK := published.Row(u, v)
		if dOK != pOK || dRow != pRow {
			same = false
		}
	})
	return same
}

// CheckpointWeights writes the streaming learner's accumulated travel-time
// state (deterministic JSON) — the engine side of multi-day weight
// persistence. Checkpoint after a learning day, feed the bytes to a fresh
// engine's RestoreWeights the next day (or after a restart) and the learner
// resumes averaging exactly where it stopped. Safe to call from any
// goroutine, concurrently with rounds and publishes.
func (e *Engine) CheckpointWeights(w io.Writer) error {
	if e.dyn == nil {
		return ErrStaticRoadnet
	}
	return e.dyn.learner.SaveState(w)
}

// RestoreWeights merges a CheckpointWeights document into the engine's
// learner and publishes an immediate epoch, so the restored knowledge
// reaches every zone shard's router before the next round instead of
// waiting out a refresh period. Returns the served epoch and whether a new
// epoch was actually published — false when every restored cell is still
// below the engine's MinSamples floor (or changes nothing the routers can
// observe), in which case shards keep serving their current weights until
// further observations tip a cell over.
func (e *Engine) RestoreWeights(r io.Reader) (uint64, bool, error) {
	if e.dyn == nil {
		return 0, false, ErrStaticRoadnet
	}
	if err := e.dyn.learner.LoadState(r); err != nil {
		return 0, false, err
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	before := e.dyn.epoch
	// skipIdentity: a restore whose cells are all withheld (or identical to
	// the published table) must not mint a weight-identical epoch — that is
	// the documented "nothing published" outcome.
	after := e.publishWeightsLocked(math.Float64frombits(e.clockBits.Load()), true)
	return after, after > before, nil
}

// ImportWeights publishes an externally learned weight table as a fresh
// epoch on every zone shard — bootstrapping decisions from persisted
// weights without feeding the learner. Note the learner's own periodic
// publishes replace imported epochs wholesale (the import breaks the
// incremental patch chain, so the next learner publish is a full rebuild);
// when the engine should keep accumulating on top of the imported
// knowledge, restore the learner state with RestoreWeights instead.
func (e *Engine) ImportWeights(w *roadnet.SlotWeights) (uint64, error) {
	if e.dyn == nil {
		return 0, ErrStaticRoadnet
	}
	if w == nil || w.Cells() == 0 {
		return 0, errors.New("engine: no weight cells to import")
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	d := e.dyn
	start := time.Now()
	g2 := e.decG.Reweighted(w)
	d.lastGraph, d.lastW = nil, nil
	d.epoch++
	snap := roadnet.Snapshot{
		Epoch:        d.epoch,
		Graph:        g2,
		LearnedEdges: w.Edges(),
		LearnedCells: w.Cells(),
		PublishedAt:  math.Float64frombits(e.clockBits.Load()),
	}
	for _, sr := range e.shards {
		sr.router.Publish(snap)
	}
	d.publishes++
	d.learnedEdges = w.Edges()
	d.learnedCells = w.Cells()
	if eo := e.eo; eo != nil {
		// Imports are always whole-table rebuilds: count them as full.
		eo.pubFull.Observe(time.Since(start).Seconds())
		eo.cPublishes.Inc()
		eo.gEpoch.Set(float64(d.epoch))
	}
	return d.epoch, nil
}

// currentEpoch reports the weight epoch the engine currently serves (0 for
// a static road network).
func (e *Engine) currentEpoch() uint64 {
	if e.dyn == nil {
		return 0
	}
	e.dyn.mu.Lock()
	defer e.dyn.mu.Unlock()
	return e.dyn.epoch
}

// RoadnetStatus is a point-in-time view of the dynamic road network plane,
// served by foodmatchd's GET /roadnet.
type RoadnetStatus struct {
	// Dynamic reports whether a learner is attached; a static engine
	// serves epoch 0 forever.
	Dynamic bool `json:"dynamic"`
	// Epoch is the current weight epoch; Slot the current hourly slot.
	Epoch uint64  `json:"epoch"`
	Slot  int     `json:"slot"`
	Clock float64 `json:"clock"`
	// LearnedEdges / LearnedCells describe the last published epoch.
	LearnedEdges int `json:"learned_edges"`
	LearnedCells int `json:"learned_cells"`
	// Publishes counts epochs ever published; PatchedPublishes how many of
	// them went through the incremental O(dirty) patch path rather than a
	// full O(|E|·slots) rebuild. LastPublish is the sim clock of the most
	// recent publish attempt (-1 before the first).
	Publishes        int64   `json:"publishes"`
	PatchedPublishes int64   `json:"patched_publishes"`
	LastPublish      float64 `json:"last_publish"`
	RefreshSec       float64 `json:"refresh_sec"`
	MinSamples       int     `json:"min_samples"`
	// ShardEpoch counts demand-driven re-splits of the zone sharder since
	// boot (0 = the initial node-balanced KD split is still live); Resplits
	// is the same event as a monotone counter, and ResplitSec the configured
	// cadence (0 = elastic re-splitting disabled). Sharding is a property of
	// the decision plane, not the learner, so these are populated for static
	// engines too.
	ShardEpoch uint64  `json:"shard_epoch"`
	Resplits   int64   `json:"resplits"`
	ResplitSec float64 `json:"resplit_sec"`
	// Learner is the streaming learner's throughput (nil when static).
	Learner *gps.StreamStats `json:"learner,omitempty"`
	// Router names the active shortest-path backend kind serving shard 0's
	// current epoch ("bounded", "dijkstra", "hublabel", "cch", …).
	Router string `json:"router"`
	// Metric carries the backend's customization counters when the backend
	// tracks them (the CCH router: full vs incremental re-customizations).
	Metric *roadnet.MetricStats `json:"metric,omitempty"`
}

// metricStatser unwraps decorator layers (timedRouter et al.) until it finds
// a backend reporting customization stats.
func metricStatser(r roadnet.Router) (roadnet.MetricStatser, bool) {
	for {
		if ms, ok := r.(roadnet.MetricStatser); ok {
			return ms, true
		}
		u, ok := r.(interface{ Unwrap() roadnet.Router })
		if !ok {
			return nil, false
		}
		r = u.Unwrap()
	}
}

// Roadnet snapshots the dynamic road network plane. Safe to call from any
// goroutine, concurrently with rounds and publishes.
func (e *Engine) Roadnet() RoadnetStatus {
	clock := math.Float64frombits(e.clockBits.Load())
	st := RoadnetStatus{
		Clock:      clock,
		Slot:       roadnet.Slot(clock),
		ShardEpoch: e.shardEpoch.Load(),
		ResplitSec: e.cfg.ResplitSec,
	}
	e.statMu.Lock()
	st.Resplits = e.stats.resplits
	e.statMu.Unlock()
	if len(e.shards) > 0 {
		_, r := e.shards[0].router.Acquire()
		st.Router = routerKind(r)
		if ms, ok := metricStatser(r); ok {
			m := ms.MetricStats()
			st.Metric = &m
		}
	}
	if e.dyn == nil {
		return st
	}
	e.dyn.mu.Lock()
	st.Dynamic = true
	st.Epoch = e.dyn.epoch
	st.LearnedEdges = e.dyn.learnedEdges
	st.LearnedCells = e.dyn.learnedCells
	st.Publishes = e.dyn.publishes
	st.PatchedPublishes = e.dyn.patched
	st.LastPublish = e.dyn.lastT
	if math.IsInf(st.LastPublish, -1) {
		st.LastPublish = -1 // lastT's internal sentinel is not JSON-encodable
	}
	st.RefreshSec = e.dyn.refresh
	st.MinSamples = e.dyn.minSamples
	e.dyn.mu.Unlock()
	ls := e.dyn.learner.Stats()
	st.Learner = &ls
	return st
}
