// Package engine is the online dispatch engine: a concurrent, long-running
// assignment service that wraps the offline FOODMATCH pipeline (batching →
// FoodGraph → KM matching → reshuffling) behind an event-driven API.
//
// Where the offline Simulator replays a pre-generated order stream under a
// replayed clock, the Engine ingests live order placements and vehicle
// location pings through bounded queues, accumulates them into ∆-second
// assignment windows, and at every window boundary runs the assignment
// round — partitioned into K geographic zone shards, each with its own
// policy instance and distance cache, matched in parallel. Assignment and
// reshuffle decisions are published on a channel-based AssignmentStream
// together with per-round engine metrics (queue depth, round latency,
// orders/sec).
//
// The Engine can be driven two ways: Start launches the real-time window
// clock (wall-clock ticks mapped onto simulation seconds by a time-scale
// factor), while Step advances the engine to an explicit instant — the mode
// replay drivers and tests use for determinism.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/spindex"
	"repro/internal/trace"
	"repro/internal/wal"
)

// NewHubLabelRouter returns a Config.NewRouter factory for the hub-label
// backend: each zone shard (and each published weight epoch — SwapRouter
// rebuilds through the same factory) gets a spindex.AsyncRouter whose
// per-slot labels build in the background while a bounded-SSSP cache
// answers in the meantime. spBound caps that fallback's expansions in
// seconds; 0 defaults to 2×DefaultConfig().MaxFirstMile — when the engine
// runs a non-default Pipeline.MaxFirstMile, pass its SPBound explicitly so
// the fallback's reachability horizon matches the rest of the engine. The
// first query of a slot also pre-builds the next slot — wrapping 23 → 0 at
// midnight — so label builds stay ahead of the replay clock.
//
// syncBuild builds labels synchronously on first touch instead: replays
// become deterministic (no fallback-to-label switchover mid-window) at the
// cost of one build stall per (epoch, slot).
func NewHubLabelRouter(spBound float64, syncBuild bool) func(*roadnet.Graph) roadnet.Router {
	return func(g *roadnet.Graph) roadnet.Router {
		bound := spBound
		if bound <= 0 {
			bound = 2 * model.DefaultConfig().MaxFirstMile
		}
		return spindex.NewAsyncRouter(g, roadnet.NewBoundedRouter(g, bound), syncBuild)
	}
}

// NewCCHRouter returns a Config.NewRouter factory for the customizable
// contraction hierarchy backend. One stateful factory backs every shard and
// every published weight epoch: topology preprocessing runs once, each
// epoch's metric customizes lazily per slot, and epochs produced by the
// learner's incremental PatchReweighted publishes re-customize only the
// arcs their dirty cells reach (Graph.PatchProvenance) instead of the whole
// hierarchy. Shards publishing the same snapshot share one metric, so the
// customization cost is per epoch, not per shard.
func NewCCHRouter() func(*roadnet.Graph) roadnet.Router {
	f := roadnet.NewCCHFactory()
	return f.NewRouter
}

// Errors surfaced to producers. A full queue is backpressure, not failure:
// callers decide whether to retry, shed, or block.
var (
	ErrQueueFull  = errors.New("engine: ingestion queue full")
	ErrStopped    = errors.New("engine: stopped")
	ErrNotRunning = errors.New("engine: not running")
	ErrRunning    = errors.New("engine: already running")
)

// Config tunes the online engine.
type Config struct {
	// Pipeline is the assignment-pipeline operating point (∆, MAXO, …).
	Pipeline *model.Config
	// NewPolicy constructs one policy instance per shard; policies are not
	// required to be internally synchronised (see policy.Policy), so the
	// engine never shares an instance across shards. Nil = full FOODMATCH.
	NewPolicy func() policy.Policy
	// Shards is the zone-shard count K; values < 2 run unsharded.
	Shards int
	// QueueSize bounds each ingestion queue (orders, vehicle pings);
	// 0 defaults to 4096. Producers get ErrQueueFull beyond it.
	QueueSize int
	// BoundaryM is the cross-shard handoff margin in metres: an order whose
	// restaurant lies within this distance of a neighbouring zone may be
	// handed to that zone when it is under less pressure (see round.go).
	// 0 defaults to 800 m.
	BoundaryM float64
	// SPBound caps single-source expansions of the per-shard distance
	// caches in seconds; 0 defaults to 2×MaxFirstMile.
	SPBound float64
	// NewRouter constructs the shortest-path backend one zone shard's
	// pipeline consumes (called once per shard, so instances need not be
	// safe for concurrent use). Nil defaults to a bounded-SSSP distance
	// cache capped at SPBound — swap in hub labels, plain Dijkstra or an
	// LRU decorator per workload. SDT metric queries always use an internal
	// bounded cache regardless.
	NewRouter func(g *roadnet.Graph) roadnet.Router
	// Workers bounds the goroutines advancing vehicle movement between
	// rounds; 0 defaults to GOMAXPROCS. The budget is split across zone
	// shards in proportion to their resident fleets by largest-remainder
	// allocation (shares sum to min(Workers, fleet) — a hotspot zone gets
	// the workers its share warrants, and no share is silently lost to
	// flooring); Workers=1 makes movement — and so the learner's
	// observation order — fully deterministic.
	Workers int
	// Trace receives the engine event stream (nil = discard). The sink must
	// be safe for concurrent use: shards emit from their own goroutines.
	Trace trace.Sink

	// DecisionGraph, when set, is the road network the assignment pipeline
	// *believes*: every shard Router and pipeline stage runs over it, while
	// vehicle movement and SDT admission stay on the true graph — the
	// online analogue of sim.Options.DecisionGraph and the paper's protocol
	// of learning weights on past days and driving on reality. Must share
	// the true graph's topology. Nil = the true graph.
	DecisionGraph *roadnet.Graph
	// Learner, when set, turns on the live traffic plane: every finished
	// edge traversal streams into it (the mover's Edge hook — the
	// simulated analogue of driver GPS pings), node-snapped vehicle pings
	// feed it at drain time, and every WeightRefreshSec of simulation time
	// the engine materialises the learned estimates over the decision
	// graph and hot-swaps each zone shard's Router onto the new epoch.
	Learner *gps.StreamLearner
	// WeightRefreshSec is the simulation-time period between weight-epoch
	// publishes; 0 defaults to 900 (one publish per quarter hour).
	WeightRefreshSec float64
	// MinSamples withholds learned cells with fewer observations from a
	// published epoch (they fall back to the decision graph's prior);
	// 0 defaults to 3.
	MinSamples int
	// ResplitSec is the simulation-time cadence of demand-driven shard
	// re-splits: every ResplitSec the handoff barrier rebuilds the KD
	// partition weighted by observed order arrivals per node and migrates
	// vehicles, pools, caches and policies onto the new zones exactly-once
	// (see round.go's maybeResplit). 0 (the default) disables re-splitting
	// and keeps the static node-balanced partition; values < 2 shards
	// always no-op.
	ResplitSec float64

	// Obs is the metrics registry the engine records into (round latency
	// histograms, per-phase spans, pipeline-stage timings, router query
	// latency, lifecycle counters — see internal/obs). Nil creates a private
	// registry; either way it is served by Engine.Obs() and foodmatchd's
	// GET /metrics.prom. Pass a shared registry to co-expose several
	// components on one scrape endpoint.
	Obs *obs.Registry
	// DisableObs turns the observability plane off entirely: no registry,
	// no lifecycle tracer, no per-round recording. The baseline arm of
	// BenchmarkObsOverhead; production keeps it on.
	DisableObs bool
	// TraceRing bounds the order-lifecycle NDJSON event ring served by
	// Engine.TraceTail / foodmatchd's GET /trace/orders; 0 (the default)
	// disables the ring while keeping the transition histograms.
	TraceRing int
	// SlowRoundSec is the slow-round log threshold: a round whose wall-clock
	// latency exceeds it triggers OnSlowRound with the full round stats —
	// span tree included — so a single slow round can be reconstructed
	// post-hoc. 0 disables.
	SlowRoundSec float64
	// OnSlowRound receives threshold-exceeding rounds. Called synchronously
	// at the end of the round (after stats are final, outside any engine
	// lock the callback could want); keep it cheap or hand off.
	OnSlowRound func(RoundStats)

	// WAL, when set, is the ingestion write-ahead log: every accepted order
	// and ping is appended (durably, per the log's sync policy) *before* it
	// is enqueued, so a crash between acceptance and the next checkpoint
	// loses nothing — ReplayWAL re-delivers the tail past the checkpoint's
	// drained high-waters. The engine owns the append path but not the log's
	// lifecycle: callers Open/Rotate/TruncateThrough/Close it (see
	// Engine.CheckpointState for the truncation bound).
	WAL *wal.Log

	// phaseHook, when set (in-package tests only), is called at the start of
	// each round phase with its name (drain, advance, handoff, resplit,
	// match, apply, replan, rebuild; resplit fires only when a demand-driven
	// re-split actually executes) — the fault-injection seam: a hook that panics
	// simulates a crash at exactly that phase, with roundMu released by
	// StepContext's deferred unlock and only the on-disk WAL + checkpoint
	// surviving.
	phaseHook func(phase string)
}

// vehiclePing is one queued location/status update.
type vehiclePing struct {
	id   model.VehicleID
	node roadnet.NodeID
	// shift updates, seconds since midnight; NaN = leave unchanged.
	activeFrom, activeTo float64
	// seq is the ping's WAL sequence number (0 when no WAL is configured).
	seq uint64
}

// queuedOrder is one queued order placement with its WAL sequence number
// (0 when no WAL is configured).
type queuedOrder struct {
	o   *model.Order
	seq uint64
}

// motionRt wraps one vehicle's movement state with its shard residency: the
// zone shard currently owning it and its index in that shard's motion list
// (swap-removal bookkeeping for O(1) cross-shard handoff).
type motionRt struct {
	mo    *sim.Motion
	shard int32
	pos   int32
}

// hookCounters are the movement-plane statistics one shard accumulates from
// its own mover hooks — shard-resident so the parallel advance phase never
// contends on a global mutex.
type hookCounters struct {
	delivered int64
	stranded  int64
	xdtSec    float64
	waitSec   float64
	distM     float64
}

// shardTiming tracks one shard's per-round wall-clock costs (written at the
// round barrier, read by Snapshot).
type shardTiming struct {
	rounds          int64
	advanceSecTotal float64
	assignSecTotal  float64
	lastAdvanceSec  float64
	lastAssignSec   float64
}

// shardState is the per-shard resident world state: the vehicles currently
// homed in the zone, the zone's order pool, its own policy instance, mover
// and epoch-swapped Router. During a round's parallel phases each shard's
// state is owned exclusively by its own goroutine; cross-shard movement
// happens only in the serial handoff barrier, so the hot path needs no
// locks at all. The small mutex below guards only the statistics surfaces
// concurrent readers (Snapshot, /metrics) sample mid-round.
type shardState struct {
	id     int
	pol    policy.Policy
	router *roadnet.SwapRouter
	slot   int // slot the router's memoised rows belong to

	motions []*motionRt    // vehicles homed in this zone
	pool    []*model.Order // placed, unassigned orders homed in this zone
	mover   *sim.Mover     // per-shard mover: hooks write the counters below

	// newOrders holds this round's freshly admitted orders awaiting their
	// SDT lower bound, computed in the shard's parallel phase on sdt (a
	// per-shard bounded distance cache over the true graph) — admission-time
	// Dijkstra work stays off the serial drain path.
	newOrders []*model.Order
	sdt       *roadnet.DistCache
	sdtSlot   int
	// sdtOrders / sdtTargets are round-scratch for grouping newOrders by
	// (restaurant, slot) so each group's SDTs resolve through one batched
	// row query; retained across rounds to keep the hot path alloc-free.
	sdtOrders  []*model.Order
	sdtTargets []roadnet.NodeID

	// poolLen / vehLen mirror len(pool) / len(motions) for lock-free
	// Snapshot reads while a round is mutating the real slices.
	poolLen atomic.Int64
	vehLen  atomic.Int64

	// hookMu guards hooks (written by this shard's movement workers) and
	// timing (written at the round barrier); both are read by Snapshot.
	hookMu sync.Mutex
	hooks  hookCounters
	timing shardTiming
}

// Engine is the online dispatcher. All exported methods are safe for
// concurrent use.
type Engine struct {
	g *roadnet.Graph
	// decG is the decision plane's base graph (what epoch 0 serves);
	// see Config.DecisionGraph.
	decG *roadnet.Graph
	dyn  *dynamicState // nil = static road network
	cfg  Config
	sh   *sharder
	// canonSh is the boot-time node-balanced partition, kept as the fixed
	// relabelling reference for demand-driven re-splits (see
	// sharder.relabelToMatch): every rebuilt partition names its zones to
	// maximise overlap with this one, so re-splits migrate only the nodes
	// whose zone genuinely changed.
	canonSh *sharder
	mover   *sim.Mover // hook-less: plan swaps, relocations, RoundWorld
	shards  []*shardState
	// pol is the prototype instance answering Reshuffles/SingleOrderMode
	// (identical across shards by construction).
	pol policy.Policy

	orderCh chan queuedOrder
	pingCh  chan vehiclePing

	// walMu makes WAL-append + channel-send atomic per producer: with the
	// consumer only ever shrinking the channels, a capacity check under the
	// mutex guarantees the send cannot block, and the atomicity guarantees
	// channel order equals WAL sequence order per kind — the invariant the
	// drained high-waters (walOrderSeq/walPingSeq, owned by roundMu) rely on
	// for exact-once replay.
	walMu sync.Mutex
	// walOrderSeq / walPingSeq are the per-kind drained high-waters: every
	// WAL record of that kind with seq <= the high-water has been applied to
	// engine state. Owned by roundMu (updated at drain, captured by
	// CheckpointState, advanced by ReplayWAL).
	walOrderSeq uint64
	walPingSeq  uint64

	// roundMu serialises rounds and whole-world reads (Idle). World state is
	// shard-resident: during a round's parallel phases each shard goroutine
	// owns its shardState outright, and roundMu is what keeps the serial
	// sections (queue drain, cross-shard handoff barrier, application) from
	// interleaving with another round. Unlike the old engine-wide world
	// mutex, nothing on the metrics plane (Snapshot, Clock, Roadnet,
	// RefreshWeights) ever takes it.
	roundMu sync.Mutex
	motions []*sim.Motion // stable fleet order (owned by roundMu)
	byID    map[model.VehicleID]*sim.Motion
	rtByID  map[model.VehicleID]*motionRt
	future  []*model.Order // ingested with PlacedAt beyond the clock
	clock   float64
	slot    int
	// pingHandoffs counts ping relocations that re-homed a vehicle across a
	// zone boundary since the last round closed (folded into that round's
	// VehicleHandoffs; owned by roundMu).
	pingHandoffs int

	// demand counts order admissions per restaurant node since the last
	// re-split (halved, not zeroed, at each re-split so the signal tracks a
	// moving average of recent load); demandTotal is its sum. partDemand is
	// the demand vector the *current* partition was built from (nil while
	// the initial node-balanced partition stands) — checkpointed so restore
	// rebuilds the identical sharder. lastResplitT is the simulation time of
	// the last re-split decision (-Inf before the first). All owned by
	// roundMu.
	demand       []int64
	demandTotal  int64
	partDemand   []int64
	lastResplitT float64

	// shardEpoch counts executed re-splits; atomic so Snapshot and the
	// /roadnet surface read it lock-free.
	shardEpoch atomic.Uint64

	// clockBits mirrors clock for lock-free readers (RefreshWeights and
	// Roadnet must not wait out a round).
	clockBits atomic.Uint64
	// futureLen mirrors len(future) for lock-free Snapshot reads
	// (Metrics.ScheduledDepth).
	futureLen atomic.Int64

	// statMu guards the engine-global counters (ingestion, admission, round
	// aggregates); the movement-plane counters live per shard.
	statMu sync.Mutex
	stats  counters

	// eo is the observability plane (nil when Config.DisableObs): instrument
	// pointers resolved once at New, recorded into with atomics only.
	eo *engineObs

	subs subscribers

	// runMu serialises Start/Stop.
	runMu  sync.Mutex
	stopCh chan struct{}
	doneCh chan struct{}
}

// New builds an engine over a road network and a fleet. The fleet is owned
// by the engine from here on: callers must not mutate the vehicles while the
// engine runs.
func New(g *roadnet.Graph, fleet []*model.Vehicle, cfg Config) (*Engine, error) {
	if cfg.Pipeline == nil {
		cfg.Pipeline = model.DefaultConfig()
	}
	if err := cfg.Pipeline.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewPolicy == nil {
		cfg.NewPolicy = func() policy.Policy { return policy.NewFoodMatch() }
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4096
	}
	if cfg.BoundaryM <= 0 {
		cfg.BoundaryM = 800
	}
	if cfg.SPBound <= 0 {
		cfg.SPBound = 2 * cfg.Pipeline.MaxFirstMile
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.Discard
	}
	if cfg.NewRouter == nil {
		bound := cfg.SPBound
		cfg.NewRouter = func(g *roadnet.Graph) roadnet.Router {
			return roadnet.NewBoundedRouter(g, bound)
		}
	}
	decG := cfg.DecisionGraph
	if decG == nil {
		decG = g
	} else if decG.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("engine: decision graph has %d nodes, true graph %d",
			decG.NumNodes(), g.NumNodes())
	}
	if cfg.WeightRefreshSec <= 0 {
		cfg.WeightRefreshSec = 900
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 3
	}

	var eo *engineObs
	if !cfg.DisableObs {
		reg := cfg.Obs
		if reg == nil {
			reg = obs.NewRegistry()
		}
		eo = newEngineObs(reg, cfg.Shards, cfg.TraceRing)
		// Chain the lifecycle tracer in front of the caller's sink (shards
		// emit concurrently; the tracer stripes its locks) and decorate every
		// shard router — including SwapRouter's per-epoch rebuilds — with
		// sampled query timing. Both are read-only observers: neither can
		// perturb a decision, which the golden-trace guard pins.
		cfg.Trace = trace.NewLifecycleSink(eo.tracer, cfg.Trace)
		innerNR := cfg.NewRouter
		cfg.NewRouter = func(g *roadnet.Graph) roadnet.Router {
			return eo.timeRouter(innerNR(g))
		}
	}

	e := &Engine{
		g:            g,
		decG:         decG,
		cfg:          cfg,
		sh:           newSharder(g, cfg.Shards),
		canonSh:      newSharder(g, cfg.Shards),
		pol:          cfg.NewPolicy(),
		orderCh:      make(chan queuedOrder, cfg.QueueSize),
		pingCh:       make(chan vehiclePing, cfg.QueueSize),
		byID:         make(map[model.VehicleID]*sim.Motion, len(fleet)),
		rtByID:       make(map[model.VehicleID]*motionRt, len(fleet)),
		slot:         -1,
		demand:       make([]int64, g.NumNodes()),
		lastResplitT: math.Inf(-1),
		eo:           eo,
	}
	if cfg.Learner != nil {
		e.dyn = &dynamicState{
			learner:    cfg.Learner,
			refresh:    cfg.WeightRefreshSec,
			minSamples: cfg.MinSamples,
			lastT:      math.Inf(-1),
		}
	}
	// Movement-plane counter mirrors for the mover hooks below: nil (inert)
	// when the observability plane is off — obs instruments are
	// nil-receiver-safe, so the hooks stay unconditional.
	var cDelivered, cStranded *obs.Counter
	if eo != nil {
		cDelivered, cStranded = eo.cDelivered, eo.cStranded
	}
	for s := 0; s < cfg.Shards; s++ {
		st := &shardState{
			id:      s,
			pol:     cfg.NewPolicy(),
			router:  roadnet.NewSwapRouter(decG, cfg.NewRouter),
			slot:    -1,
			sdt:     roadnet.NewDistCache(g, cfg.SPBound),
			sdtSlot: -1,
		}
		// Each shard advances its own vehicles with its own mover: the
		// hooks below write shard-resident counters, so the parallel
		// movement phase shares no statistics mutex across zones.
		st.mover = sim.NewMover(g, cfg.Trace)
		st.mover.Hooks = sim.MoveHooks{
			Wait: func(_ *model.Vehicle, sec, _ float64) {
				st.hookMu.Lock()
				st.hooks.waitSec += sec
				st.hookMu.Unlock()
			},
			Deliver: func(o *model.Order, _ *model.Vehicle, _ float64) {
				st.hookMu.Lock()
				st.hooks.delivered++
				st.hooks.xdtSec += o.XDT()
				st.hookMu.Unlock()
				cDelivered.Inc()
			},
			Distance: func(_ *model.Vehicle, meters float64, _ int, _ float64) {
				st.hookMu.Lock()
				st.hooks.distM += meters
				st.hookMu.Unlock()
			},
			Strand: func(*model.Order) {
				st.hookMu.Lock()
				st.hooks.stranded++
				st.hookMu.Unlock()
				cStranded.Inc()
			},
		}
		if cfg.Learner != nil {
			// Finished edge traversals are the engine's GPS plane: each one
			// is a perfectly map-matched sample of the *true* graph's β. The
			// hook runs on the shard's movement workers; the learner
			// synchronises internally.
			st.mover.Hooks.Edge = func(_ *model.Vehicle, from, to roadnet.NodeID, tEnter, sec float64) {
				cfg.Learner.ObserveEdge(from, to, tEnter, sec)
			}
		}
		e.shards = append(e.shards, st)
	}
	e.mover = sim.NewMover(g, cfg.Trace)
	for _, v := range fleet {
		if v.Node < 0 || int(v.Node) >= g.NumNodes() {
			return nil, fmt.Errorf("engine: vehicle %d parked at invalid node %d", v.ID, v.Node)
		}
		if _, dup := e.byID[v.ID]; dup {
			return nil, fmt.Errorf("engine: duplicate vehicle id %d", v.ID)
		}
		if len(v.DistByLoad) < cfg.Pipeline.MaxO+1 {
			v.DistByLoad = make([]float64, cfg.Pipeline.MaxO+1)
		}
		mo := sim.NewMotion(v)
		e.motions = append(e.motions, mo)
		e.byID[v.ID] = mo
		rt := &motionRt{mo: mo}
		e.rtByID[v.ID] = rt
		e.homeMotion(rt, e.sh.shardOf(v.Node))
	}
	return e, nil
}

// homeMotion appends a motion to a shard's resident list (initial homing and
// the receiving half of a cross-shard handoff).
func (e *Engine) homeMotion(rt *motionRt, shard int) {
	st := e.shards[shard]
	rt.shard = int32(shard)
	rt.pos = int32(len(st.motions))
	st.motions = append(st.motions, rt)
	st.vehLen.Store(int64(len(st.motions)))
}

// unhomeMotion removes a motion from its current shard's list in O(1)
// (swap-removal; residency order within a shard is not semantically
// meaningful across handoffs).
func (e *Engine) unhomeMotion(rt *motionRt) {
	st := e.shards[rt.shard]
	last := len(st.motions) - 1
	moved := st.motions[last]
	st.motions[rt.pos] = moved
	moved.pos = rt.pos
	st.motions = st.motions[:last]
	st.vehLen.Store(int64(last))
}

// Shards returns the zone-shard count K.
func (e *Engine) Shards() int { return e.cfg.Shards }

// SubmitOrder enqueues an order placement. Orders with PlacedAt <= 0 are
// stamped with the engine clock at admission; orders with PlacedAt beyond
// the clock are held until the window that covers them (scheduled orders).
// Returns ErrQueueFull when the bounded queue is saturated — callers should
// shed or retry with backoff.
func (e *Engine) SubmitOrder(o *model.Order) error {
	if o == nil {
		return errors.New("engine: nil order")
	}
	if o.Restaurant < 0 || int(o.Restaurant) >= e.g.NumNodes() {
		return fmt.Errorf("engine: order %d restaurant at invalid node %d", o.ID, o.Restaurant)
	}
	if o.Customer < 0 || int(o.Customer) >= e.g.NumNodes() {
		return fmt.Errorf("engine: order %d customer at invalid node %d", o.ID, o.Customer)
	}
	if e.cfg.WAL != nil {
		return e.submitOrderWAL(o)
	}
	select {
	case e.orderCh <- queuedOrder{o: o}:
		e.countOrderAccepted()
		return nil
	default:
		e.countOrderShed()
		return ErrQueueFull
	}
}

// submitOrderWAL is the durable accept path: under walMu the bounded queue's
// free capacity is checked first (the round drain only ever shrinks it, so a
// send after a successful check cannot block), then the order is appended to
// the log, then enqueued. Append-before-enqueue means an acknowledged order
// is on disk; the capacity pre-check means a shed order is *not* (no ghost
// replays of placements the client saw rejected).
func (e *Engine) submitOrderWAL(o *model.Order) error {
	e.walMu.Lock()
	if len(e.orderCh) == cap(e.orderCh) {
		e.walMu.Unlock()
		e.countOrderShed()
		return ErrQueueFull
	}
	seq, err := e.cfg.WAL.AppendOrder(wal.OrderRecord{
		ID:         int64(o.ID),
		Restaurant: int64(o.Restaurant),
		Customer:   int64(o.Customer),
		PlacedAt:   o.PlacedAt,
		Items:      o.Items,
		PrepSec:    o.Prep,
	})
	if err != nil {
		e.walMu.Unlock()
		return fmt.Errorf("engine: order %d wal append: %w", o.ID, err)
	}
	e.orderCh <- queuedOrder{o: o, seq: seq}
	e.walMu.Unlock()
	e.countOrderAccepted()
	return nil
}

func (e *Engine) countOrderAccepted() {
	e.statMu.Lock()
	e.stats.ingested++
	e.statMu.Unlock()
	if e.eo != nil {
		e.eo.cIngested.Inc()
	}
}

func (e *Engine) countOrderShed() {
	e.statMu.Lock()
	e.stats.shedOrders++
	e.statMu.Unlock()
	if e.eo != nil {
		e.eo.cShedOrders.Inc()
	}
}

// PingVehicle enqueues a location update for a vehicle. The engine owns
// movement while a vehicle executes a plan, so pings relocate only idle
// vehicles; they always refresh liveness.
func (e *Engine) PingVehicle(id model.VehicleID, node roadnet.NodeID) error {
	return e.ping(vehiclePing{id: id, node: node, activeFrom: math.NaN(), activeTo: math.NaN()})
}

// SetVehicleShift enqueues a shift-window update (seconds since midnight);
// pass NaN to leave a bound unchanged.
func (e *Engine) SetVehicleShift(id model.VehicleID, from, to float64) error {
	return e.ping(vehiclePing{id: id, node: roadnet.Invalid, activeFrom: from, activeTo: to})
}

func (e *Engine) ping(p vehiclePing) error {
	if _, ok := e.byID[p.id]; !ok { // byID is immutable after New
		return fmt.Errorf("engine: unknown vehicle %d", p.id)
	}
	if p.node != roadnet.Invalid && (p.node < 0 || int(p.node) >= e.g.NumNodes()) {
		return fmt.Errorf("engine: vehicle %d ping at invalid node %d", p.id, p.node)
	}
	if e.cfg.WAL != nil {
		return e.pingWAL(p)
	}
	select {
	case e.pingCh <- p:
		e.countPingAccepted()
		return nil
	default:
		e.countPingShed()
		return ErrQueueFull
	}
}

// pingWAL is the durable accept path for vehicle updates; same protocol as
// submitOrderWAL (capacity check, append, enqueue — atomically under walMu).
func (e *Engine) pingWAL(p vehiclePing) error {
	rec := wal.PingRecord{Vehicle: int64(p.id), Node: int64(p.node)}
	if !math.IsNaN(p.activeFrom) {
		v := p.activeFrom
		rec.ActiveFrom = &v
	}
	if !math.IsNaN(p.activeTo) {
		v := p.activeTo
		rec.ActiveTo = &v
	}
	e.walMu.Lock()
	if len(e.pingCh) == cap(e.pingCh) {
		e.walMu.Unlock()
		e.countPingShed()
		return ErrQueueFull
	}
	seq, err := e.cfg.WAL.AppendPing(rec)
	if err != nil {
		e.walMu.Unlock()
		return fmt.Errorf("engine: vehicle %d wal append: %w", p.id, err)
	}
	p.seq = seq
	e.pingCh <- p
	e.walMu.Unlock()
	e.countPingAccepted()
	return nil
}

func (e *Engine) countPingAccepted() {
	e.statMu.Lock()
	e.stats.pingsIngested++
	e.statMu.Unlock()
	if e.eo != nil {
		e.eo.cPingsIngested.Inc()
	}
}

func (e *Engine) countPingShed() {
	e.statMu.Lock()
	e.stats.shedPings++
	e.statMu.Unlock()
	if e.eo != nil {
		e.eo.cPingsShed.Inc()
	}
}

// VehicleIDs lists the fleet (stable after New).
func (e *Engine) VehicleIDs() []model.VehicleID {
	ids := make([]model.VehicleID, 0, len(e.motions))
	for _, mo := range e.motions {
		ids = append(ids, mo.V.ID)
	}
	return ids
}

// Clock returns the engine's simulation clock (the end of the last round).
// Lock-free: reads the atomic clock mirror, so it never waits out a round.
func (e *Engine) Clock() float64 {
	return math.Float64frombits(e.clockBits.Load())
}

// Idle reports whether no work remains anywhere: ingestion queues drained,
// no pooled or scheduled orders, and every vehicle empty. Replay drivers use
// it to decide when the post-stream drain phase may stop. It takes the round
// mutex (a consistent whole-world read), so it waits out an in-flight round.
func (e *Engine) Idle() bool {
	if len(e.orderCh) > 0 || len(e.pingCh) > 0 {
		return false
	}
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	if len(e.future) > 0 {
		return false
	}
	for _, s := range e.shards {
		if len(s.pool) > 0 {
			return false
		}
	}
	for _, mo := range e.motions {
		if mo.V.OrderCount() > 0 {
			return false
		}
	}
	return true
}

// Start launches the real-time window clock at simulation time startSim
// (seconds since midnight). Every ∆/timeScale wall seconds the engine
// advances the simulation clock by ∆ and runs an assignment round;
// timeScale 60 replays a minute of city time per wall second. Stop halts
// the loop.
func (e *Engine) Start(startSim, timeScale float64) error {
	return e.StartContext(context.Background(), startSim, timeScale)
}

// StartContext is Start with cancellation/deadline propagation: the context
// halts the window clock when it is done and is threaded into every round
// (and from there into every pipeline stage). Cancellation stops ticking
// but leaves the engine state intact — call Stop to close the assignment
// streams and release subscribers, typically after draining them.
func (e *Engine) StartContext(ctx context.Context, startSim, timeScale float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if e.stopCh != nil {
		return ErrRunning
	}
	e.roundMu.Lock()
	e.clock = startSim
	e.clockBits.Store(math.Float64bits(startSim))
	e.roundMu.Unlock()
	e.stopCh = make(chan struct{})
	e.doneCh = make(chan struct{})
	period := time.Duration(float64(time.Second) * e.cfg.Pipeline.Delta / timeScale)
	if period <= 0 {
		period = time.Millisecond
	}
	go e.run(ctx, startSim, period, e.stopCh, e.doneCh)
	return nil
}

func (e *Engine) run(ctx context.Context, startSim float64, period time.Duration, stopCh <-chan struct{}, doneCh chan<- struct{}) {
	defer close(doneCh)
	tick := time.NewTicker(period)
	defer tick.Stop()
	now := startSim
	for {
		select {
		case <-stopCh:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
			now += e.cfg.Pipeline.Delta
			e.StepContext(ctx, now)
		}
	}
}

// Stop halts the window clock (no-op when not running) and closes every
// subscription stream.
func (e *Engine) Stop() {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if e.stopCh == nil {
		return
	}
	close(e.stopCh)
	<-e.doneCh
	e.stopCh, e.doneCh = nil, nil
	e.subs.closeAll()
}
