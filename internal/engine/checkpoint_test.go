package engine

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/gps"
	"repro/internal/roadnet"
)

// TestEngineWeightCheckpointRestore pins the engine's weight persistence
// loop: learn, checkpoint, restore into a fresh engine, and the restored
// engine both serves a published epoch immediately and re-exports an
// identical checkpoint.
func TestEngineWeightCheckpointRestore(t *testing.T) {
	city := testCityB
	fleet := city.Fleet(0.2, 3, 1)

	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	day1, err := New(city.G, fleet, Config{Pipeline: testConfig(), Learner: learner, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	e0 := city.G.OutEdges(0)[0]
	e1 := city.G.OutEdges(1)[0]
	learner.ObserveEdge(0, e0.To, 19*3600, 111)
	learner.ObserveEdge(0, e0.To, 19*3600+60, 129)
	learner.ObserveEdge(1, e1.To, 86390, 55) // slot 23, just before midnight

	var ckpt bytes.Buffer
	if err := day1.CheckpointWeights(&ckpt); err != nil {
		t.Fatal(err)
	}
	saved := ckpt.String()
	if saved == "" {
		t.Fatal("empty checkpoint")
	}

	fresh := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	day2, err := New(city.G, city.Fleet(0.2, 3, 2), Config{Pipeline: testConfig(), Learner: fresh, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	epoch, published, err := day2.RestoreWeights(strings.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || !published {
		t.Fatalf("restore published epoch %d (%v), want 1 (true)", epoch, published)
	}
	// Every shard serves the restored knowledge: the learned mean of the
	// slot-19 cell, and the slot-23 cell written just before midnight.
	for _, sr := range day2.shards {
		snap, _ := sr.router.Acquire()
		if snap.Epoch != 1 {
			t.Fatalf("shard %d serves epoch %d after restore", sr.id, snap.Epoch)
		}
		served := snap.Graph.EdgeTimeSlot(snap.Graph.OutEdges(0)[0], 19)
		if math.Abs(served-120) > 1e-9 {
			t.Fatalf("restored slot-19 cell serves %v, want 120", served)
		}
		if got := snap.Graph.EdgeTimeSlot(snap.Graph.OutEdges(1)[0], 23); math.Abs(got-55) > 1e-9 {
			t.Fatalf("restored slot-23 cell serves %v, want 55", got)
		}
	}
	// The restored learner checkpoints back to identical bytes.
	var again bytes.Buffer
	if err := day2.CheckpointWeights(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != saved {
		t.Fatalf("checkpoint round trip not byte-stable:\n%s\nvs\n%s", again.String(), saved)
	}

	// A checkpoint whose cells are all below the MinSamples floor restores
	// the learner but publishes nothing — and says so.
	sparse := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	day3, err := New(city.G, city.Fleet(0.2, 3, 3), Config{Pipeline: testConfig(), Learner: sparse, MinSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	epoch, published, err = day3.RestoreWeights(strings.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if published || epoch != 0 {
		t.Fatalf("sparse restore claims a publish (epoch %d, %v)", epoch, published)
	}
}

// TestEngineImportWeights covers the bootstrap path: an externally learned
// table becomes a served epoch without touching the learner.
func TestEngineImportWeights(t *testing.T) {
	city := testCityB
	fleet := city.Fleet(0.2, 3, 1)
	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	e, err := New(city.G, fleet, Config{Pipeline: testConfig(), Learner: learner, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := e.ImportWeights(roadnet.NewSlotWeights()); err == nil {
		t.Fatal("empty table imported")
	}

	w := roadnet.NewSlotWeights()
	e0 := city.G.OutEdges(0)[0]
	if err := w.Set(0, e0.To, 20, 321); err != nil {
		t.Fatal(err)
	}
	epoch, err := e.ImportWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("import published epoch %d, want 1", epoch)
	}
	for _, sr := range e.shards {
		snap, _ := sr.router.Acquire()
		if got := snap.Graph.EdgeTimeSlot(snap.Graph.OutEdges(0)[0], 20); math.Abs(got-321) > 1e-9 {
			t.Fatalf("imported cell serves %v, want 321", got)
		}
	}
	if st := e.Roadnet(); st.Epoch != 1 || st.LearnedCells != 1 || st.Publishes != 1 {
		t.Fatalf("roadnet status after import: %+v", st)
	}
	// The learner stayed untouched.
	if learner.Weights(1).Cells() != 0 {
		t.Fatal("import leaked into the learner")
	}
}

// TestCheckpointHooksStaticEngine pins the error contract on engines
// without a dynamic plane.
func TestCheckpointHooksStaticEngine(t *testing.T) {
	city := testCityB
	e, err := New(city.G, city.Fleet(0.2, 3, 1), Config{Pipeline: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.CheckpointWeights(&buf); !errors.Is(err, ErrStaticRoadnet) {
		t.Fatalf("checkpoint on static engine: %v", err)
	}
	if _, _, err := e.RestoreWeights(strings.NewReader("{}")); !errors.Is(err, ErrStaticRoadnet) {
		t.Fatalf("restore on static engine: %v", err)
	}
	if _, err := e.ImportWeights(roadnet.NewSlotWeights()); !errors.Is(err, ErrStaticRoadnet) {
		t.Fatalf("import on static engine: %v", err)
	}
}
