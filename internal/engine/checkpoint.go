package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/wal"
)

// CheckpointVersion guards the full-checkpoint document format.
const CheckpointVersion = 1

// F64 is a float64 that survives JSON round-trips: ±Inf and NaN are legal
// engine values (open-ended shifts carry ActiveTo=+Inf, unreachable SDTs are
// +Inf) but not legal JSON numbers, so they encode as the strings "+Inf",
// "-Inf" and "NaN".
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = F64(math.Inf(1))
		case "-Inf":
			*f = F64(math.Inf(-1))
		case "NaN":
			*f = F64(math.NaN())
		default:
			return fmt.Errorf("engine: checkpoint float %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = F64(v)
	return nil
}

// CheckpointOrder is one live order in the checkpoint: placed (pooled or
// still scheduled in the future buffer), assigned-but-unpicked (reshuffle
// state included via AssignedTo), or on board. Delivered and rejected orders
// have left the engine's world state and are not captured.
type CheckpointOrder struct {
	ID         int64 `json:"id"`
	Restaurant int64 `json:"restaurant"`
	Customer   int64 `json:"customer"`
	PlacedAt   F64   `json:"placed_at"`
	Items      int   `json:"items"`
	Prep       F64   `json:"prep"`
	SDT        F64   `json:"sdt"`
	State      int8  `json:"state"`
	AssignedTo int32 `json:"assigned_to"`
	AssignedAt F64   `json:"assigned_at,omitempty"`
	PickedUpAt F64   `json:"picked_up_at,omitempty"`
}

// CheckpointDemand is one node's order-arrival count — the sparse encoding
// of the demand vectors (nodes ascending, zero counts omitted).
type CheckpointDemand struct {
	Node int64 `json:"node"`
	N    int64 `json:"n"`
}

// CheckpointStop is one route-plan stop (order referenced by ID).
type CheckpointStop struct {
	Node  int64 `json:"node"`
	Order int64 `json:"order"`
	Kind  int8  `json:"kind"`
}

// CheckpointMotion is the vehicle's mid-leg movement bookkeeping
// (sim.MotionState in document form).
type CheckpointMotion struct {
	Path          []int64 `json:"path,omitempty"`
	EdgeRemaining F64     `json:"edge_remaining,omitempty"`
	EdgeTotal     F64     `json:"edge_total,omitempty"`
	EdgeLenM      F64     `json:"edge_len_m,omitempty"`
	EdgeFrom      int64   `json:"edge_from,omitempty"`
	EdgeEnterT    F64     `json:"edge_enter_t,omitempty"`
}

// CheckpointVehicle is one vehicle's full runtime state.
type CheckpointVehicle struct {
	ID           int32            `json:"id"`
	Node         int64            `json:"node"`
	EdgeTo       int64            `json:"edge_to"`
	EdgeProgress F64              `json:"edge_progress,omitempty"`
	Plan         []CheckpointStop `json:"plan,omitempty"`
	Onboard      []int64          `json:"onboard,omitempty"`
	Pending      []int64          `json:"pending,omitempty"`
	ActiveFrom   F64              `json:"active_from"`
	ActiveTo     F64              `json:"active_to"`
	DistM        F64              `json:"dist_m,omitempty"`
	DistByLoad   []F64            `json:"dist_by_load,omitempty"`
	WaitSec      F64              `json:"wait_sec,omitempty"`
	Motion       CheckpointMotion `json:"motion"`
}

// CheckpointCounters carries the engine-global statistics so a restored
// engine's /metrics continues where the killed one stopped. The movement
// plane (delivered, stranded, XDT, wait, distance) is aggregated across
// shards here and restored into shard 0 — totals are exact, the per-shard
// split is not (shard counts may even differ across the restart).
type CheckpointCounters struct {
	Ingested      int64 `json:"ingested"`
	Admitted      int64 `json:"admitted"`
	ShedOrders    int64 `json:"shed_orders"`
	PingsIngested int64 `json:"pings_ingested"`
	ShedPings     int64 `json:"shed_pings"`
	Assigned      int64 `json:"assigned"`
	Reassigned    int64 `json:"reassigned"`
	Rejected      int64 `json:"rejected"`
	Handoffs      int64 `json:"handoffs"`
	VehHandoffs   int64 `json:"veh_handoffs"`
	Rounds        int64 `json:"rounds"`
	Resplits      int64 `json:"resplits,omitempty"`
	ResplitMoves  int64 `json:"resplit_moves,omitempty"`
	RoundSecTotal F64   `json:"round_sec_total,omitempty"`
	RoundSecMax   F64   `json:"round_sec_max,omitempty"`
	SimStart      F64   `json:"sim_start,omitempty"`
	Delivered     int64 `json:"delivered"`
	Stranded      int64 `json:"stranded"`
	XDTSec        F64   `json:"xdt_sec,omitempty"`
	WaitSec       F64   `json:"wait_sec,omitempty"`
	DistM         F64   `json:"dist_m,omitempty"`
}

// Checkpoint is the full engine state as one versioned document: every live
// order, every vehicle's position/plan/motion, the clock, the weight epoch
// and learner accumulators, the engine counters, and the WAL drained
// high-waters that anchor replay. It is captured under the round lock — a
// consistent cut at a round boundary, where shard pools are final, no SDT
// computation is pending and vehicle residency matches vehicle position.
//
// Orders are sorted by ID; Future and Pool list order IDs in their exact
// buffer order (future buffer and zone-pool order feed matching inputs, so
// preserving them keeps a restored replay decision-identical). Vehicles are
// in fleet order. Identical engine states serialise to identical bytes.
type Checkpoint struct {
	Version int    `json:"version"`
	Clock   F64    `json:"clock"`
	Slot    int    `json:"slot"`
	Epoch   uint64 `json:"epoch,omitempty"`
	// WALOrderSeq / WALPingSeq: every WAL record of that kind with sequence
	// <= the high-water is reflected in this checkpoint; replay applies only
	// records past them (see Engine.ReplayWAL, Checkpoint.WALTruncateSeq).
	WALOrderSeq  uint64 `json:"wal_order_seq,omitempty"`
	WALPingSeq   uint64 `json:"wal_ping_seq,omitempty"`
	PingHandoffs int    `json:"ping_handoffs,omitempty"`
	// Elastic-sharding plane: the partition generation, the simulation time
	// of the last re-split decision (absent = never), the live per-node
	// demand accumulator, and the demand vector the current partition was
	// built from (absent while the initial node-balanced partition stands).
	// Restore rebuilds the identical weighted sharder from PartDemand before
	// re-homing pools and vehicles, so a crashed-after-re-split engine
	// resumes on the same zones. All omitempty: pre-elastic documents parse
	// as a never-re-split engine.
	ShardEpoch  uint64              `json:"shard_epoch,omitempty"`
	LastResplit *F64                `json:"last_resplit,omitempty"`
	Demand      []CheckpointDemand  `json:"demand,omitempty"`
	PartDemand  []CheckpointDemand  `json:"part_demand,omitempty"`
	Orders      []CheckpointOrder   `json:"orders"`
	Future      []int64             `json:"future,omitempty"`
	Pool        []int64             `json:"pool,omitempty"`
	Vehicles    []CheckpointVehicle `json:"vehicles"`
	Counters    CheckpointCounters  `json:"counters"`
	Learner     *gps.LearnerState   `json:"learner,omitempty"`
}

// WALTruncateSeq is the highest WAL sequence this checkpoint provably
// covers regardless of record kind — the safe TruncateThrough bound. Both
// high-waters advance to the newest assigned sequence whenever their queue
// drains empty, so the bound stays tight even when one kind is idle.
func (c *Checkpoint) WALTruncateSeq() uint64 {
	if c.WALOrderSeq < c.WALPingSeq {
		return c.WALOrderSeq
	}
	return c.WALPingSeq
}

// CheckpointState captures a full engine checkpoint. It takes the round
// lock, so the cut is consistent (between rounds, or blocking until an
// in-flight round's barrier work completes); the capture itself is a plain
// struct build — marshalling happens on the caller's time, outside the lock.
// Safe to call on a running engine.
func (e *Engine) CheckpointState() *Checkpoint {
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	c := e.checkpointLocked()

	// Counters and learner state have their own locks, but they are read
	// here under roundMu so no round can land between the world capture and
	// the bookkeeping capture (the established lock order is roundMu →
	// statMu/hookMu/dyn.mu, the same nesting the round itself uses).
	e.statMu.Lock()
	st := e.stats
	e.statMu.Unlock()
	c.Counters = CheckpointCounters{
		Ingested:      st.ingested,
		Admitted:      st.admitted,
		ShedOrders:    st.shedOrders,
		PingsIngested: st.pingsIngested,
		ShedPings:     st.shedPings,
		Assigned:      st.assigned,
		Reassigned:    st.reassigned,
		Rejected:      st.rejected,
		Handoffs:      st.handoffs,
		VehHandoffs:   st.vehHandoffs,
		Rounds:        st.rounds,
		Resplits:      st.resplits,
		ResplitMoves:  st.resplitMoves,
		RoundSecTotal: F64(st.roundSecTotal),
		RoundSecMax:   F64(st.roundSecMax),
		SimStart:      F64(st.simStart),
	}
	for _, s := range e.shards {
		s.hookMu.Lock()
		h := s.hooks
		s.hookMu.Unlock()
		c.Counters.Delivered += h.delivered
		c.Counters.Stranded += h.stranded
		c.Counters.XDTSec += F64(h.xdtSec)
		c.Counters.WaitSec += F64(h.waitSec)
		c.Counters.DistM += F64(h.distM)
	}
	if e.dyn != nil {
		e.dyn.mu.Lock()
		c.Epoch = e.dyn.epoch
		e.dyn.mu.Unlock()
		c.Learner = e.dyn.learner.State()
	}
	return c
}

// sparseDemand encodes a dense per-node demand vector sparsely (nodes
// ascending, zero counts omitted); nil in, nil out.
func sparseDemand(demand []int64) []CheckpointDemand {
	var out []CheckpointDemand
	for n, d := range demand {
		if d != 0 {
			out = append(out, CheckpointDemand{Node: int64(n), N: d})
		}
	}
	return out
}

// checkpointLocked builds the world-state half of the document. roundMu held.
func (e *Engine) checkpointLocked() *Checkpoint {
	c := &Checkpoint{
		Version:      CheckpointVersion,
		Clock:        F64(e.clock),
		Slot:         e.slot,
		WALOrderSeq:  e.walOrderSeq,
		WALPingSeq:   e.walPingSeq,
		PingHandoffs: e.pingHandoffs,
		ShardEpoch:   e.shardEpoch.Load(),
		Demand:       sparseDemand(e.demand),
		PartDemand:   sparseDemand(e.partDemand),
	}
	if !math.IsInf(e.lastResplitT, -1) {
		lr := F64(e.lastResplitT)
		c.LastResplit = &lr
	}
	seen := make(map[model.OrderID]bool)
	addOrder := func(o *model.Order) {
		if seen[o.ID] {
			return
		}
		seen[o.ID] = true
		c.Orders = append(c.Orders, CheckpointOrder{
			ID:         int64(o.ID),
			Restaurant: int64(o.Restaurant),
			Customer:   int64(o.Customer),
			PlacedAt:   F64(o.PlacedAt),
			Items:      o.Items,
			Prep:       F64(o.Prep),
			SDT:        F64(o.SDT),
			State:      int8(o.State),
			AssignedTo: int32(o.AssignedTo),
			AssignedAt: F64(o.AssignedAt),
			PickedUpAt: F64(o.PickedUpAt),
		})
	}
	for _, o := range e.future {
		addOrder(o)
		c.Future = append(c.Future, int64(o.ID))
	}
	for _, s := range e.shards {
		for _, o := range s.pool {
			addOrder(o)
			c.Pool = append(c.Pool, int64(o.ID))
		}
	}
	for _, mo := range e.motions {
		for _, o := range mo.V.Pending {
			addOrder(o)
		}
		for _, o := range mo.V.Onboard {
			addOrder(o)
		}
	}
	sort.Slice(c.Orders, func(i, j int) bool { return c.Orders[i].ID < c.Orders[j].ID })

	for _, mo := range e.motions {
		v := mo.V
		cv := CheckpointVehicle{
			ID:           int32(v.ID),
			Node:         int64(v.Node),
			EdgeTo:       int64(v.EdgeTo),
			EdgeProgress: F64(v.EdgeProgress),
			ActiveFrom:   F64(v.ActiveFrom),
			ActiveTo:     F64(v.ActiveTo),
			DistM:        F64(v.DistM),
			WaitSec:      F64(v.WaitSec),
		}
		if v.Plan != nil {
			for _, st := range v.Plan.Stops {
				cv.Plan = append(cv.Plan, CheckpointStop{
					Node: int64(st.Node), Order: int64(st.Order.ID), Kind: int8(st.Kind),
				})
			}
		}
		for _, o := range v.Onboard {
			cv.Onboard = append(cv.Onboard, int64(o.ID))
		}
		for _, o := range v.Pending {
			cv.Pending = append(cv.Pending, int64(o.ID))
		}
		for _, d := range v.DistByLoad {
			cv.DistByLoad = append(cv.DistByLoad, F64(d))
		}
		ms := mo.ExportState()
		for _, n := range ms.Path {
			cv.Motion.Path = append(cv.Motion.Path, int64(n))
		}
		cv.Motion.EdgeRemaining = F64(ms.EdgeRemaining)
		cv.Motion.EdgeTotal = F64(ms.EdgeTotal)
		cv.Motion.EdgeLenM = F64(ms.EdgeLenM)
		cv.Motion.EdgeFrom = int64(ms.EdgeFrom)
		cv.Motion.EdgeEnterT = F64(ms.EdgeEnterT)
		c.Vehicles = append(c.Vehicles, cv)
	}
	return c
}

// WriteCheckpoint captures a full checkpoint and writes it as one JSON
// document (newline-terminated; identical states produce identical bytes).
// The returned document carries the WAL high-waters the caller needs to
// truncate the log (wal.Log.TruncateThrough(c.WALTruncateSeq())). The round
// lock is held only for the in-memory capture, never for the I/O.
func (e *Engine) WriteCheckpoint(w io.Writer) (*Checkpoint, error) {
	c := e.CheckpointState()
	b, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadCheckpoint parses a WriteCheckpoint document.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("engine: checkpoint: %w", err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("engine: checkpoint version %d (want %d)", c.Version, CheckpointVersion)
	}
	return &c, nil
}

// ErrEngineUsed rejects a restore into an engine that has already run.
var ErrEngineUsed = errors.New("engine: restore requires a fresh engine (no rounds run, not started)")

// RestoreCheckpoint loads a full checkpoint into a freshly built engine —
// same graph, same fleet roster, before Start and before any Step. The
// engine resumes exactly where the checkpoint was cut: shard pools, the
// future buffer, vehicle positions/plans/motion, in-flight assignments,
// clock, counters, the learner's accumulators and the weight-epoch floor.
// Call ReplayWAL afterwards to apply the ingestion tail past the
// checkpoint's high-waters.
//
// Structural problems (unknown vehicles, dangling order references, nodes
// outside the graph) fail before any state is modified; on a later error the
// engine must be discarded.
func (e *Engine) RestoreCheckpoint(c *Checkpoint) error {
	if c == nil {
		return errors.New("engine: nil checkpoint")
	}
	if c.Version != CheckpointVersion {
		return fmt.Errorf("engine: checkpoint version %d (want %d)", c.Version, CheckpointVersion)
	}
	if c.Learner != nil && e.dyn == nil {
		return fmt.Errorf("engine: checkpoint carries learner state: %w", ErrStaticRoadnet)
	}
	e.runMu.Lock()
	running := e.stopCh != nil
	e.runMu.Unlock()
	if running {
		return ErrEngineUsed
	}
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	e.statMu.Lock()
	rounds := e.stats.rounds
	e.statMu.Unlock()
	if rounds > 0 {
		return ErrEngineUsed
	}

	// ---- Validate structure before touching anything.
	nodes := e.g.NumNodes()
	byID := make(map[int64]*CheckpointOrder, len(c.Orders))
	for i := range c.Orders {
		co := &c.Orders[i]
		if byID[co.ID] != nil {
			return fmt.Errorf("engine: checkpoint order %d duplicated", co.ID)
		}
		if co.Restaurant < 0 || co.Restaurant >= int64(nodes) || co.Customer < 0 || co.Customer >= int64(nodes) {
			return fmt.Errorf("engine: checkpoint order %d has nodes outside the graph", co.ID)
		}
		if s := model.OrderState(co.State); s != model.OrderPlaced && s != model.OrderAssigned && s != model.OrderPickedUp {
			return fmt.Errorf("engine: checkpoint order %d in non-live state %d", co.ID, co.State)
		}
		byID[co.ID] = co
	}
	for _, id := range c.Future {
		if byID[id] == nil {
			return fmt.Errorf("engine: checkpoint future order %d not in order table", id)
		}
	}
	for _, id := range c.Pool {
		if byID[id] == nil {
			return fmt.Errorf("engine: checkpoint pool order %d not in order table", id)
		}
	}
	for _, d := range c.Demand {
		if d.Node < 0 || d.Node >= int64(nodes) || d.N < 0 {
			return fmt.Errorf("engine: checkpoint demand entry at node %d invalid", d.Node)
		}
	}
	for _, d := range c.PartDemand {
		if d.Node < 0 || d.Node >= int64(nodes) || d.N < 0 {
			return fmt.Errorf("engine: checkpoint partition demand entry at node %d invalid", d.Node)
		}
	}
	if len(c.Vehicles) != len(e.motions) {
		return fmt.Errorf("engine: checkpoint has %d vehicles, fleet has %d", len(c.Vehicles), len(e.motions))
	}
	for i := range c.Vehicles {
		cv := &c.Vehicles[i]
		if e.byID[model.VehicleID(cv.ID)] == nil {
			return fmt.Errorf("engine: checkpoint vehicle %d not in fleet", cv.ID)
		}
		if cv.Node < 0 || cv.Node >= int64(nodes) {
			return fmt.Errorf("engine: checkpoint vehicle %d at node %d outside the graph", cv.ID, cv.Node)
		}
		for _, id := range cv.Onboard {
			if byID[id] == nil {
				return fmt.Errorf("engine: checkpoint vehicle %d onboard order %d not in order table", cv.ID, id)
			}
		}
		for _, id := range cv.Pending {
			if byID[id] == nil {
				return fmt.Errorf("engine: checkpoint vehicle %d pending order %d not in order table", cv.ID, id)
			}
		}
		for _, st := range cv.Plan {
			if byID[st.Order] == nil {
				return fmt.Errorf("engine: checkpoint vehicle %d plan references order %d not in order table", cv.ID, st.Order)
			}
			if st.Node < 0 || st.Node >= int64(nodes) {
				return fmt.Errorf("engine: checkpoint vehicle %d plan stop at node %d outside the graph", cv.ID, st.Node)
			}
		}
	}

	// ---- Rebuild the world.
	// The elastic-sharding plane comes first: pools and vehicles below
	// re-home through e.sh.shardOf, so when the checkpointing engine had
	// re-split, the identical weighted partition must stand before they do
	// (demandWeights is pure and deterministic, so the same PartDemand
	// vector rebuilds the same zones; a post-restore re-split then composes
	// exactly as it would have uncrashed).
	for i := range e.demand {
		e.demand[i] = 0
	}
	e.demandTotal = 0
	for _, d := range c.Demand {
		e.demand[d.Node] = d.N
		e.demandTotal += d.N
	}
	e.partDemand = nil
	if len(c.PartDemand) > 0 {
		part := make([]int64, e.g.NumNodes())
		for _, d := range c.PartDemand {
			part[d.Node] = d.N
		}
		e.partDemand = part
		sh := newSharderWeighted(e.g, e.cfg.Shards, demandWeights(part))
		sh.relabelToMatch(e.canonSh)
		e.sh = sh
	}
	e.lastResplitT = math.Inf(-1)
	if c.LastResplit != nil {
		e.lastResplitT = float64(*c.LastResplit)
	}
	e.shardEpoch.Store(c.ShardEpoch)
	if e.eo != nil {
		e.eo.gShardEpoch.Set(float64(c.ShardEpoch))
	}

	orders := make(map[int64]*model.Order, len(byID))
	for id, co := range byID {
		orders[id] = &model.Order{
			ID:         model.OrderID(co.ID),
			Restaurant: roadnet.NodeID(co.Restaurant),
			Customer:   roadnet.NodeID(co.Customer),
			PlacedAt:   float64(co.PlacedAt),
			Items:      co.Items,
			Prep:       float64(co.Prep),
			SDT:        float64(co.SDT),
			State:      model.OrderState(co.State),
			AssignedTo: model.VehicleID(co.AssignedTo),
			AssignedAt: float64(co.AssignedAt),
			PickedUpAt: float64(co.PickedUpAt),
		}
	}

	e.future = e.future[:0]
	for _, id := range c.Future {
		e.future = append(e.future, orders[id])
	}
	e.futureLen.Store(int64(len(e.future)))

	for _, s := range e.shards {
		s.pool = s.pool[:0]
		s.newOrders = s.newOrders[:0]
	}
	for _, id := range c.Pool {
		o := orders[id]
		s := e.shards[e.sh.shardOf(o.Restaurant)]
		s.pool = append(s.pool, o)
	}
	for _, s := range e.shards {
		s.poolLen.Store(int64(len(s.pool)))
	}

	maxLoad := e.cfg.Pipeline.MaxO + 1
	for i := range c.Vehicles {
		cv := &c.Vehicles[i]
		mo := e.byID[model.VehicleID(cv.ID)]
		v := mo.V
		v.Node = roadnet.NodeID(cv.Node)
		v.EdgeTo = roadnet.NodeID(cv.EdgeTo)
		v.EdgeProgress = float64(cv.EdgeProgress)
		v.ActiveFrom = float64(cv.ActiveFrom)
		v.ActiveTo = float64(cv.ActiveTo)
		v.DistM = float64(cv.DistM)
		v.WaitSec = float64(cv.WaitSec)
		v.DistByLoad = make([]float64, maxLoad)
		for li, d := range cv.DistByLoad {
			if li < maxLoad {
				v.DistByLoad[li] = float64(d)
			}
		}
		v.Onboard = nil
		for _, id := range cv.Onboard {
			v.Onboard = append(v.Onboard, orders[id])
		}
		v.Pending = nil
		for _, id := range cv.Pending {
			v.Pending = append(v.Pending, orders[id])
		}
		v.Plan = nil
		if len(cv.Plan) > 0 {
			plan := &model.RoutePlan{}
			for _, st := range cv.Plan {
				plan.Stops = append(plan.Stops, model.Stop{
					Node:  roadnet.NodeID(st.Node),
					Order: orders[st.Order],
					Kind:  model.StopKind(st.Kind),
				})
			}
			v.Plan = plan
		}
		ms := sim.MotionState{
			EdgeRemaining: float64(cv.Motion.EdgeRemaining),
			EdgeTotal:     float64(cv.Motion.EdgeTotal),
			EdgeLenM:      float64(cv.Motion.EdgeLenM),
			EdgeFrom:      roadnet.NodeID(cv.Motion.EdgeFrom),
			EdgeEnterT:    float64(cv.Motion.EdgeEnterT),
		}
		for _, n := range cv.Motion.Path {
			ms.Path = append(ms.Path, roadnet.NodeID(n))
		}
		if err := mo.ImportState(ms, e.g); err != nil {
			return err
		}
		// Re-home to the zone the restored node belongs to (the sharder is a
		// pure function of the graph, but the restoring engine may run a
		// different shard count than the checkpointing one).
		rt := e.rtByID[v.ID]
		if target := e.sh.shardOf(v.Node); target != int(rt.shard) {
			e.unhomeMotion(rt)
			e.homeMotion(rt, target)
		}
	}

	e.clock = float64(c.Clock)
	e.clockBits.Store(math.Float64bits(e.clock))
	e.slot = c.Slot
	e.pingHandoffs = c.PingHandoffs
	e.walOrderSeq = c.WALOrderSeq
	e.walPingSeq = c.WALPingSeq

	e.statMu.Lock()
	e.stats = counters{
		ingested:      c.Counters.Ingested,
		admitted:      c.Counters.Admitted,
		shedOrders:    c.Counters.ShedOrders,
		pingsIngested: c.Counters.PingsIngested,
		shedPings:     c.Counters.ShedPings,
		assigned:      c.Counters.Assigned,
		reassigned:    c.Counters.Reassigned,
		rejected:      c.Counters.Rejected,
		handoffs:      c.Counters.Handoffs,
		vehHandoffs:   c.Counters.VehHandoffs,
		rounds:        c.Counters.Rounds,
		resplits:      c.Counters.Resplits,
		resplitMoves:  c.Counters.ResplitMoves,
		roundSecTotal: float64(c.Counters.RoundSecTotal),
		roundSecMax:   float64(c.Counters.RoundSecMax),
		simStart:      float64(c.Counters.SimStart),
	}
	e.statMu.Unlock()
	if len(e.shards) > 0 {
		s0 := e.shards[0]
		s0.hookMu.Lock()
		s0.hooks = hookCounters{
			delivered: c.Counters.Delivered,
			stranded:  c.Counters.Stranded,
			xdtSec:    float64(c.Counters.XDTSec),
			waitSec:   float64(c.Counters.WaitSec),
			distM:     float64(c.Counters.DistM),
		}
		s0.hookMu.Unlock()
	}

	if e.dyn != nil {
		if c.Learner != nil {
			if err := e.dyn.learner.RestoreState(c.Learner); err != nil {
				return err
			}
		}
		e.dyn.mu.Lock()
		// Epoch floor: restored shards must never serve an epoch number a
		// pre-crash subscriber already saw paired with different weights.
		if c.Epoch > e.dyn.epoch {
			e.dyn.epoch = c.Epoch
		}
		if c.Learner != nil {
			e.publishWeightsLocked(e.clock, true)
		}
		e.dyn.mu.Unlock()
	}
	return nil
}

// ReplayWAL applies recovered write-ahead-log records to a restored engine:
// every record whose sequence lies past the checkpoint's drained high-water
// for its kind is re-delivered — orders into the future buffer (the next
// round admits them exactly as a live drain would), pings through the same
// relocation/shift logic as the drain, at the restored clock. Records at or
// below the high-waters are already reflected in the checkpoint and are
// skipped, which is what makes replay idempotent: replaying the same log
// twice is a no-op.
//
// Call after RestoreCheckpoint (or on a fresh engine with no checkpoint, in
// which case every record replays). Returns how many orders and pings were
// applied.
func (e *Engine) ReplayWAL(recs []wal.Record) (orders, pings int, err error) {
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	nodes := int64(e.g.NumNodes())
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case wal.KindOrder:
			if rec.Seq <= e.walOrderSeq {
				continue
			}
			or := rec.Order
			if or.Restaurant < 0 || or.Restaurant >= nodes || or.Customer < 0 || or.Customer >= nodes {
				return orders, pings, fmt.Errorf("engine: wal order %d (seq %d) has nodes outside the graph", or.ID, rec.Seq)
			}
			o := &model.Order{
				ID:         model.OrderID(or.ID),
				Restaurant: roadnet.NodeID(or.Restaurant),
				Customer:   roadnet.NodeID(or.Customer),
				PlacedAt:   or.PlacedAt,
				Items:      or.Items,
				Prep:       or.PrepSec,
				AssignedTo: -1,
			}
			if o.PlacedAt <= 0 {
				// The live drain would have stamped the round clock; the
				// restored clock is the closest consistent stand-in.
				o.PlacedAt = e.clock
			}
			e.future = append(e.future, o)
			e.walOrderSeq = rec.Seq
			orders++
			e.countOrderAccepted()
		case wal.KindPing:
			if rec.Seq <= e.walPingSeq {
				continue
			}
			pr := rec.Ping
			node := roadnet.NodeID(pr.Node)
			if node != roadnet.Invalid && (pr.Node < 0 || pr.Node >= nodes) {
				return orders, pings, fmt.Errorf("engine: wal ping for vehicle %d (seq %d) at node %d outside the graph", pr.Vehicle, rec.Seq, pr.Node)
			}
			p := vehiclePing{
				id:         model.VehicleID(pr.Vehicle),
				node:       node,
				activeFrom: math.NaN(),
				activeTo:   math.NaN(),
				seq:        rec.Seq,
			}
			if pr.ActiveFrom != nil {
				p.activeFrom = *pr.ActiveFrom
			}
			if pr.ActiveTo != nil {
				p.activeTo = *pr.ActiveTo
			}
			e.applyPing(p, e.clock)
			e.walPingSeq = rec.Seq
			pings++
			e.countPingAccepted()
		default:
			return orders, pings, fmt.Errorf("engine: wal record seq %d has unknown kind %q", rec.Seq, rec.Kind)
		}
	}
	// admitFuture relies on the buffer being sorted by placement time
	// between drains; replayed arrivals land at the tail.
	sort.SliceStable(e.future, func(i, j int) bool {
		return e.future[i].PlacedAt < e.future[j].PlacedAt
	})
	e.futureLen.Store(int64(len(e.future)))
	return orders, pings, nil
}
