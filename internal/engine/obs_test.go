package engine

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// obsReplay drives a short CityB dinner slice through an engine built with
// the given config mutation and returns the engine (post-replay, idle).
func obsReplay(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	city := testCityB
	start, end := 18.0*3600, 18.25*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	if len(orders) == 0 {
		t.Fatal("no orders in the dinner slice")
	}
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	cfg := Config{Pipeline: testConfig(), Shards: 2, QueueSize: len(orders) + 16}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(city.G, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	delta := e.cfg.Pipeline.Delta
	next := 0
	for now := start + delta; now < end+7200; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		e.Step(now)
		if now >= end && next == len(orders) && e.Idle() {
			break
		}
	}
	return e
}

// TestEngineObsRoundTelemetry checks the tentpole wiring end to end: the
// round/phase/stage histograms populate, the span tree covers the phase
// vocabulary, lifecycle transitions record, and the Prometheus exposition
// of the live registry passes the checker.
func TestEngineObsRoundTelemetry(t *testing.T) {
	e := obsReplay(t, func(cfg *Config) { cfg.TraceRing = 1024 })
	reg := e.Obs()
	if reg == nil {
		t.Fatal("Obs() = nil with observability enabled")
	}
	points := reg.Gather()
	byName := map[string][]obs.MetricPoint{}
	for _, p := range points {
		byName[p.Name] = append(byName[p.Name], p)
	}

	snap := e.Snapshot()
	rounds := counterValue(t, byName, "foodmatch_rounds_total", nil)
	if rounds != float64(snap.Rounds) || rounds == 0 {
		t.Fatalf("foodmatch_rounds_total = %v, snapshot rounds %d", rounds, snap.Rounds)
	}
	lat := histPoint(t, byName, "foodmatch_round_latency_seconds", nil)
	if lat.Count != uint64(snap.Rounds) {
		t.Fatalf("round latency count %d != rounds %d", lat.Count, snap.Rounds)
	}
	if math.IsNaN(lat.P50) || math.IsNaN(lat.P95) || math.IsNaN(lat.P99) {
		t.Fatalf("round latency quantiles missing: %+v", lat)
	}
	for _, phase := range roundPhases {
		p := histPoint(t, byName, "foodmatch_round_phase_seconds", obs.Labels{"phase": phase})
		if p.Count != uint64(snap.Rounds) {
			t.Fatalf("phase %q count %d != rounds %d", phase, p.Count, snap.Rounds)
		}
	}
	// Stage histograms record once per shard-round that ran; at least the
	// matching stage must have samples on a loaded replay.
	if p := histPoint(t, byName, "foodmatch_pipeline_stage_seconds", obs.Labels{"stage": "match"}); p.Count == 0 {
		t.Fatal("pipeline match stage recorded no samples")
	}
	// Counter mirrors agree with the snapshot totals.
	for event, want := range map[string]int64{
		"ingested":  snap.OrdersIngested,
		"admitted":  snap.OrdersAdmitted,
		"assigned":  snap.Assigned,
		"delivered": snap.Delivered,
	} {
		got := counterValue(t, byName, "foodmatch_orders_total", obs.Labels{"event": event})
		if got != float64(want) {
			t.Fatalf("foodmatch_orders_total{event=%q} = %v, snapshot %d", event, got, want)
		}
	}

	// The last round's span tree spans the full phase vocabulary in order.
	phases := snap.LastRound.Phases
	if len(phases) != len(roundPhases) {
		t.Fatalf("span tree has %d phases, want %d: %+v", len(phases), len(roundPhases), phases)
	}
	for i, p := range phases {
		if p.Name != roundPhases[i] {
			t.Fatalf("phase[%d] = %q, want %q", i, p.Name, roundPhases[i])
		}
	}

	// Lifecycle: transitions recorded, ring tail readable, NDJSON-shaped.
	if p := histPoint(t, byName, "foodmatch_order_transition_sim_seconds",
		obs.Labels{"from": "admitted", "to": "assigned"}); p.Count == 0 {
		t.Fatal("no admitted->assigned transitions recorded")
	}
	// Ring order is append order, not strictly T order: a placed event is
	// stamped with the order's placement time, which precedes the round
	// clock the admission ran under. Check the entries are well-formed.
	tail := e.TraceTail(64)
	if len(tail) == 0 {
		t.Fatal("TraceTail empty with TraceRing enabled")
	}
	for i, ev := range tail {
		if ev.T < 0 || ev.To == "" || ev.GapSec < 0 {
			t.Fatalf("malformed ring entry %d: %+v", i, ev)
		}
	}

	// Exposition round-trips through the validator.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
}

// TestEngineDisableObs pins the opt-out: no registry, no ring, rounds run.
func TestEngineDisableObs(t *testing.T) {
	e := obsReplay(t, func(cfg *Config) { cfg.DisableObs = true; cfg.TraceRing = 1024 })
	if e.Obs() != nil {
		t.Fatal("Obs() non-nil with DisableObs")
	}
	if tail := e.TraceTail(8); tail != nil {
		t.Fatalf("TraceTail = %v with DisableObs", tail)
	}
	if e.Snapshot().Rounds == 0 {
		t.Fatal("no rounds ran with DisableObs")
	}
	if e.Snapshot().LastRound.Phases != nil {
		t.Fatal("span tree built with DisableObs")
	}
}

// TestEngineSnapshotConsistentUnderConcurrentStep hammers Snapshot, the
// Prometheus exposition and TraceTail from reader goroutines while rounds
// run, checking counters only move forward and cross-counter invariants
// hold in every observed snapshot. Run under -race this is also the torn-
// read guard for the whole metrics plane.
func TestEngineSnapshotConsistentUnderConcurrentStep(t *testing.T) {
	city := testCityB
	start, end := 18.0*3600, 18.25*3600
	orders := workload.OrderStreamWindow(city, 1, start, end)
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	e, err := New(city.G, fleet, Config{
		Pipeline: testConfig(), Shards: 2,
		QueueSize: len(orders) + 16, TraceRing: 512,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev Metrics
			for !stop.Load() {
				m := e.Snapshot()
				if m.OrdersIngested < prev.OrdersIngested || m.Rounds < prev.Rounds ||
					m.Assigned < prev.Assigned || m.Delivered < prev.Delivered ||
					m.PingsIngested < prev.PingsIngested {
					t.Errorf("counter went backwards: %+v then %+v", prev, m)
					return
				}
				if m.OrdersAdmitted > m.OrdersIngested {
					t.Errorf("admitted %d > ingested %d", m.OrdersAdmitted, m.OrdersIngested)
					return
				}
				if m.Delivered > m.Assigned {
					t.Errorf("delivered %d > assigned %d", m.Delivered, m.Assigned)
					return
				}
				var perShardDelivered int64
				for _, sm := range m.PerShard {
					perShardDelivered += sm.Delivered
				}
				if perShardDelivered != m.Delivered {
					t.Errorf("per-shard delivered %d != total %d", perShardDelivered, m.Delivered)
					return
				}
				e.TraceTail(16)
				var buf bytes.Buffer
				_ = e.Obs().WritePrometheus(&buf)
				prev = m
			}
		}()
	}

	delta := testConfig().Delta
	next := 0
	vid := fleet[0].ID
	for now := start + delta; now < end; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := e.PingVehicle(vid, fleet[0].Node); err != nil {
			t.Fatal(err)
		}
		e.Step(now)
	}
	stop.Store(true)
	wg.Wait()

	if got := e.Snapshot().PingsIngested; got == 0 {
		t.Fatal("PingsIngested never counted")
	}
}

func counterValue(t *testing.T, byName map[string][]obs.MetricPoint, name string, labels obs.Labels) float64 {
	t.Helper()
	p := findPoint(t, byName, name, labels)
	return p.Value
}

func histPoint(t *testing.T, byName map[string][]obs.MetricPoint, name string, labels obs.Labels) obs.MetricPoint {
	t.Helper()
	return findPoint(t, byName, name, labels)
}

func findPoint(t *testing.T, byName map[string][]obs.MetricPoint, name string, labels obs.Labels) obs.MetricPoint {
	t.Helper()
	for _, p := range byName[name] {
		if len(p.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if p.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return p
		}
	}
	t.Fatalf("metric %s%v not found", name, labels)
	return obs.MetricPoint{}
}
