package engine

import (
	"testing"

	"repro/internal/roadnet"
)

// TestGoldenTraceRouterBackends replays the CityB dinner golden scenario
// once per shortest-path backend at Workers=1/Shards=1 and requires the
// rendered decision trace to be byte-identical to the committed default
// (bounded-Dijkstra) fixture. Exact Dijkstra shares the bounded backend's
// arithmetic so it must reproduce the fixture bitwise; CCH and hub labels
// return distances within ulps of it (proved bitwise-equal on integer
// weights by the roadnet equivalence suite), and this test pins the
// stronger decision-level claim: those ulps never flip an admission
// threshold, a first-mile cutoff, or a KM assignment on the real workload.
func TestGoldenTraceRouterBackends(t *testing.T) {
	if raceEnabled {
		t.Skip("pure value-identity replay; skipped under -race to stay inside the package timeout")
	}
	backends := []struct {
		name    string
		mk      func(*roadnet.Graph) roadnet.Router
		fixture string
	}{
		{"dijkstra", func(g *roadnet.Graph) roadnet.Router { return roadnet.NewDijkstraRouter(g) },
			"golden_cityb_dinner.trace"},
		{"cch", NewCCHRouter(), "golden_cityb_dinner.trace"},
		// Hub labels store label distances as float32, and on the real CityB
		// weights that ~1e-4 relative error flips one KM assignment late in
		// the dinner peak. The backend is still deterministic, so it gets its
		// own byte-stable fixture rather than sharing the exact one.
		{"hublabel", NewHubLabelRouter(0, true), "golden_cityb_dinner_hublabel.trace"},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			got := goldenReplay(t, func(cfg *Config) {
				cfg.Workers = 1
				cfg.NewRouter = be.mk
			})
			checkGolden(t, got, be.fixture)
		})
	}
}
