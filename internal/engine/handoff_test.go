package engine

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// twoClusterCity builds a road network with two well-separated clusters (so
// a 2-way KD shard puts one cluster in each zone) joined by a fast corridor,
// and returns it with one node from each cluster.
func twoClusterCity(t *testing.T) (g *roadnet.Graph, left, right roadnet.NodeID) {
	t.Helper()
	b := roadnet.NewBuilder()
	const k = 4 // 4×4 grid per cluster
	add := func(lon0 float64) []roadnet.NodeID {
		ids := make([]roadnet.NodeID, 0, k*k)
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				ids = append(ids, b.AddNode(geo.Point{Lat: 12.90 + float64(r)*1e-3, Lon: lon0 + float64(c)*1e-3}))
			}
		}
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				if c+1 < k {
					b.AddEdge(ids[r*k+c], ids[r*k+c+1], 110, 20, 0)
					b.AddEdge(ids[r*k+c+1], ids[r*k+c], 110, 20, 0)
				}
				if r+1 < k {
					b.AddEdge(ids[r*k+c], ids[(r+1)*k+c], 110, 20, 0)
					b.AddEdge(ids[(r+1)*k+c], ids[r*k+c], 110, 20, 0)
				}
			}
		}
		return ids
	}
	lids := add(77.50)
	rids := add(77.60) // ~11 km east: a clean KD split line between clusters
	// Corridor joining the clusters (fast enough that cross-cluster
	// deliveries stay inside the first-mile bound).
	b.AddEdge(lids[k*k-1], rids[0], 11000, 120, 0)
	b.AddEdge(rids[0], lids[k*k-1], 11000, 120, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, lids[0], rids[k+1]
}

// TestVehicleCrossShardHandoffExactlyOnce drives one vehicle across the
// zone boundary mid-round (a delivery into the other cluster) and checks
// the shard-residency invariants: the vehicle is re-homed onto the zone its
// node landed in, it appears in exactly one shard's resident list, and an
// order matched after (and across) the crossing produces exactly one
// assignment decision.
func TestVehicleCrossShardHandoffExactlyOnce(t *testing.T) {
	g, left, right := twoClusterCity(t)
	v := model.NewVehicle(1, left, 3)
	e, err := New(g, []*model.Vehicle{v}, Config{Pipeline: testConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.sh.shardOf(left) == e.sh.shardOf(right) {
		t.Fatalf("clusters share a shard (%d); the fixture needs a boundary between them",
			e.sh.shardOf(left))
	}
	sub := e.Subscribe(64)
	defer sub.Cancel()

	homeOf := func() int { return int(e.rtByID[1].shard) }
	residency := func() int {
		n := 0
		for _, s := range e.shards {
			for _, rt := range s.motions {
				if rt.mo.V.ID == 1 {
					n++
					if int(rt.shard) != s.id {
						t.Fatalf("motion thinks it lives in shard %d but sits in shard %d's list", rt.shard, s.id)
					}
					if s.motions[rt.pos] != rt {
						t.Fatalf("stale residency index %d in shard %d", rt.pos, s.id)
					}
				}
			}
		}
		return n
	}

	if got := homeOf(); got != e.sh.shardOf(left) {
		t.Fatalf("initial home %d, want %d", got, e.sh.shardOf(left))
	}

	// An order picked up in the left cluster, delivered deep in the right
	// cluster: executing the plan drags the vehicle across the boundary.
	o1 := &model.Order{ID: 1, Restaurant: left, Customer: right, PlacedAt: 10, Items: 1, Prep: 1}
	if err := e.SubmitOrder(o1); err != nil {
		t.Fatal(err)
	}
	stats := e.Step(120)
	if stats.AssignedOrders != 1 {
		t.Fatalf("setup order not assigned: %+v", stats)
	}
	// Advance in ∆-sized rounds until the delivery lands.
	var crossed float64
	for now := 240.0; now < 7200; now += 120 {
		e.Step(now)
		if o1.State == model.OrderDelivered {
			crossed = now
			break
		}
	}
	if crossed == 0 {
		t.Fatalf("order never delivered (state %v, vehicle at %d)", o1.State, v.Node)
	}
	if got, want := homeOf(), e.sh.shardOf(v.Node); got != want {
		t.Fatalf("after crossing: homed in %d, node's zone is %d", got, want)
	}
	if homeOf() == e.sh.shardOf(left) {
		t.Fatalf("vehicle still homed in the departure zone after delivering at %d", v.Node)
	}
	if n := residency(); n != 1 {
		t.Fatalf("vehicle appears in %d resident lists, want exactly 1", n)
	}
	if snap := e.Snapshot(); snap.VehicleHandoffs == 0 {
		t.Fatal("no vehicle handoff counted")
	}

	// A fresh order in the right cluster must be matched by the vehicle's
	// NEW zone — and exactly once.
	o2 := &model.Order{ID: 2, Restaurant: v.Node, Customer: right, PlacedAt: crossed + 10, Items: 1, Prep: 1}
	if err := e.SubmitOrder(o2); err != nil {
		t.Fatal(err)
	}
	e.Step(crossed + 120)
	decisions := 0
	for {
		done := false
		select {
		case ev := <-sub.C:
			if ev.Decision != nil {
				for _, id := range ev.Decision.Orders {
					if id == 2 {
						decisions++
						if want := e.sh.shardOf(v.Node); ev.Decision.Shard != want {
							t.Fatalf("order 2 matched by shard %d, want the vehicle's new zone %d",
								ev.Decision.Shard, want)
						}
					}
				}
			}
		default:
			done = true
		}
		if done {
			break
		}
	}
	if decisions != 1 {
		t.Fatalf("order 2 produced %d assignment decisions, want exactly 1", decisions)
	}
}

// TestStepConcurrentCheckpoint is the weight-persistence race gauntlet the
// shard-resident refactor must keep safe: deterministic Steps race against
// concurrent CheckpointWeights / RestoreWeights / ImportWeights and metric
// readers. Every checkpoint taken mid-round must be a complete, parseable
// document (the learner's state is snapshotted under one lock — never a
// torn epoch), and every import must leave the engine serving a strictly
// newer epoch.
func TestStepConcurrentCheckpoint(t *testing.T) {
	city := testCityB
	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	fleet := city.Fleet(0.5, testConfig().MaxO, 1)
	start := 19.0 * 3600
	orders := workload.OrderStreamWindow(city, 1, start, start+900)
	e, err := New(city.G, fleet, Config{
		Pipeline: testConfig(), Shards: 2,
		QueueSize: len(orders) + 16,
		Learner:   learner, WeightRefreshSec: 240, MinSamples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Checkpoint reader: every snapshot must decode as a learner state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := e.CheckpointWeights(&buf); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			var doc struct {
				Version int `json:"version"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Errorf("checkpoint %d not parseable: %v", i, err)
				return
			}
			if doc.Version != 1 {
				t.Errorf("checkpoint %d version %d", i, doc.Version)
				return
			}
		}
	}()

	// Importer: external tables and checkpoint restores land mid-round.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e0 := city.G.OutEdges(0)[0]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w := roadnet.NewSlotWeights()
			if err := w.Set(0, e0.To, i%roadnet.SlotsPerDay, 30+float64(i%60)); err != nil {
				t.Errorf("set: %v", err)
				return
			}
			before := e.Roadnet().Epoch
			if ep, err := e.ImportWeights(w); err != nil {
				t.Errorf("import: %v", err)
				return
			} else if ep <= before {
				t.Errorf("import served epoch %d after %d", ep, before)
				return
			}
			// Self-restoring a checkpoint doubles every accumulator (merge
			// semantics), so cap the restore cycles well below the int32
			// overflow bound ImportState now enforces.
			if i < 16 {
				var buf bytes.Buffer
				if err := e.CheckpointWeights(&buf); err != nil {
					t.Errorf("checkpoint for restore: %v", err)
					return
				}
				if _, _, err := e.RestoreWeights(bytes.NewReader(buf.Bytes())); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
			}
		}
	}()

	// Metrics readers over the lock-free surfaces.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := e.Snapshot()
			if len(snap.PerShard) != 2 {
				t.Errorf("snapshot has %d shards", len(snap.PerShard))
				return
			}
			_ = e.Roadnet()
		}
	}()

	next := 0
	delta := e.cfg.Pipeline.Delta
	lastEpoch := uint64(0)
	for now := start + delta; now < start+2700; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		stats := e.Step(now)
		if stats.Epoch < lastEpoch {
			t.Fatalf("round epoch went backwards: %d after %d", stats.Epoch, lastEpoch)
		}
		lastEpoch = stats.Epoch
	}
	close(stop)
	wg.Wait()
	if lastEpoch == 0 {
		t.Fatal("no round ever pinned a published epoch")
	}
}
