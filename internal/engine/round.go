package engine

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/foodgraph"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Step advances the engine to simulation time `now` and runs one assignment
// round. It returns the round's statistics and is the deterministic entry
// point replay drivers and tests use; the Start loop calls it once per ∆
// tick.
//
// A round is structured around the shard-resident world state:
//
//	serial   drain queues (pings re-home idle vehicles, orders land in
//	         their restaurant's zone pool)
//	parallel per shard: advance movement, reject stale pool orders,
//	         strip reshuffleable orders, build the zone's vehicle set
//	serial   handoff barrier: publish due weight epochs, re-home vehicles
//	         that crossed a zone boundary, run a due demand-driven shard
//	         re-split (migrating residency exactly-once and warming the new
//	         zones' distance caches), partition the round's orders
//	         (pressure-based boundary handoff)
//	parallel per shard: the assignment pipeline (batching → FoodGraph →
//	         matching) on the shard's pinned weight epoch
//	serial   apply decisions, restore unplaced reshuffled orders
//	parallel per shard: replan restored/stripped vehicles
//	serial   rebuild zone pools, publish stats
func (e *Engine) Step(now float64) RoundStats {
	return e.StepContext(context.Background(), now)
}

// StepContext is Step with cancellation/deadline propagation into every
// zone shard's pipeline stages. A cancelled context makes the round apply
// only the decisions already made; world state stays consistent.
func (e *Engine) StepContext(ctx context.Context, now float64) RoundStats {
	if ctx == nil {
		ctx = context.Background()
	}
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	t0 := time.Now()

	if now < e.clock {
		now = e.clock // the clock never runs backwards
	}
	e.phase("drain")
	e.drainPings(now)
	e.drainOrders(now)
	drainSec := time.Since(t0).Seconds()

	// Slot boundary: weights changed, memoised distance rows are stale
	// (each shard resets its own caches lazily against this slot).
	if s := roadnet.Slot(now); s != e.slot {
		e.slot = s
	}

	prevClock := e.clock
	e.clock = now
	e.clockBits.Store(math.Float64bits(now))

	stats := e.runRound(ctx, prevClock, now, drainSec)
	stats.LatencySec = time.Since(t0).Seconds()
	stats.OrderQueueDepth = len(e.orderCh)
	stats.PingQueueDepth = len(e.pingCh)

	if eo := e.eo; eo != nil {
		eo.roundLatency.Observe(stats.LatencySec)
		eo.cRounds.Inc()
		eo.cAssigned.Add(int64(stats.AssignedOrders))
		eo.cRejected.Add(int64(stats.Rejected))
		eo.cHandoffs.Add(int64(stats.Handoffs))
		eo.cVehHandoffs.Add(int64(stats.VehicleHandoffs))
		eo.gOrderQueue.Set(float64(stats.OrderQueueDepth))
		eo.gPingQueue.Set(float64(stats.PingQueueDepth))
		eo.gPool.Set(float64(stats.PoolCarried))
		eo.gClock.Set(now)
	}

	e.statMu.Lock()
	if e.stats.rounds == 0 {
		e.stats.simStart = now - e.cfg.Pipeline.Delta
	}
	e.stats.rounds++
	e.stats.roundSecTotal += stats.LatencySec
	if stats.LatencySec > e.stats.roundSecMax {
		e.stats.roundSecMax = stats.LatencySec
	}
	e.stats.assigned += int64(stats.AssignedOrders)
	e.stats.rejected += int64(stats.Rejected)
	e.stats.handoffs += int64(stats.Handoffs)
	e.stats.vehHandoffs += int64(stats.VehicleHandoffs)
	e.stats.lastRound = stats
	e.statMu.Unlock()

	e.subs.publish(StreamEvent{Round: &stats})
	if e.cfg.SlowRoundSec > 0 && stats.LatencySec > e.cfg.SlowRoundSec && e.cfg.OnSlowRound != nil {
		// Threshold-triggered slow-round dump: the full stats — span tree
		// included — reach the callback after everything is final, outside
		// the stat mutex (roundMu is still held; the callback must not
		// re-enter the engine's round path).
		e.cfg.OnSlowRound(stats)
	}
	return stats
}

// drainOrders admits queued orders. Orders placed beyond `now` wait in the
// future buffer — the online analogue of the simulator injecting only
// orders with PlacedAt < window end.
func (e *Engine) drainOrders(now float64) {
	arrived := false
	for {
		select {
		case qo := <-e.orderCh:
			o := qo.o
			if o.PlacedAt <= 0 {
				o.PlacedAt = now
			}
			e.future = append(e.future, o)
			arrived = true
			if qo.seq > e.walOrderSeq {
				e.walOrderSeq = qo.seq
			}
		default:
			e.bumpHighWater(&e.walOrderSeq, func() bool { return len(e.orderCh) == 0 })
			e.admitFuture(now, arrived)
			return
		}
	}
}

// bumpHighWater advances a drained high-water to cover the whole log when
// the channel is verifiably empty: under walMu no append/enqueue is in
// flight, so an empty channel means every appended record of this kind has
// been drained — the high-water can jump to the newest assigned sequence
// even if the last drained record of this kind is older. This keeps both
// high-waters tight (and so WAL truncation effective) when one kind is idle.
func (e *Engine) bumpHighWater(hw *uint64, empty func() bool) {
	if e.cfg.WAL == nil {
		return
	}
	e.walMu.Lock()
	if empty() {
		if f := e.cfg.WAL.NextSeq() - 1; f > *hw {
			*hw = f
		}
	}
	e.walMu.Unlock()
}

// admitFuture moves matured orders from the future buffer into their
// restaurant's zone pool, computing their SDT lower bound at admission. The
// buffer is kept sorted by placement time; removal preserves that, so
// re-sorting is only needed when this round's drain appended new arrivals.
func (e *Engine) admitFuture(now float64, arrived bool) {
	if arrived {
		sort.SliceStable(e.future, func(i, j int) bool {
			return e.future[i].PlacedAt < e.future[j].PlacedAt
		})
	}
	n := 0
	for _, o := range e.future {
		if o.PlacedAt >= now {
			e.future[n] = o
			n++
			continue
		}
		o.State = model.OrderPlaced
		o.AssignedTo = -1
		// The SDT lower bound (a bounded single-source search) is computed
		// in the shard's parallel phase, not here on the serial drain path.
		s := e.shards[e.sh.shardOf(o.Restaurant)]
		s.pool = append(s.pool, o)
		s.newOrders = append(s.newOrders, o)
		s.poolLen.Store(int64(len(s.pool)))
		// Admission is the demand signal the elastic sharder re-splits on.
		e.demand[o.Restaurant]++
		e.demandTotal++
		e.statMu.Lock()
		e.stats.admitted++
		e.statMu.Unlock()
		if e.eo != nil {
			e.eo.cAdmitted.Inc()
		}
		e.cfg.Trace.Emit(trace.Event{Kind: trace.OrderPlaced, T: o.PlacedAt, Order: o.ID})
		// Admission is stamped with the round clock (OrderPlaced carries the
		// placement time): the gap between the two is the submit-queue plus
		// scheduled-order wait, the first lifecycle transition.
		e.cfg.Trace.Emit(trace.Event{Kind: trace.OrderAdmitted, T: now, Order: o.ID})
	}
	e.future = e.future[:n]
	e.futureLen.Store(int64(n))
}

// drainPings applies queued vehicle updates. Pings relocate only idle
// vehicles: while a plan is live, position comes from simulated movement.
// A relocation that lands in another zone re-homes the vehicle immediately.
// When the live traffic plane is on, every location ping also streams into
// the speed learner (stamped with the round clock — the drain is the first
// instant the engine observes it).
func (e *Engine) drainPings(now float64) {
	for {
		select {
		case p := <-e.pingCh:
			e.applyPing(p, now)
			if p.seq > e.walPingSeq {
				e.walPingSeq = p.seq
			}
		default:
			e.bumpHighWater(&e.walPingSeq, func() bool { return len(e.pingCh) == 0 })
			return
		}
	}
}

// applyPing is the drain-side effect of one vehicle update (shared with WAL
// replay, which applies recovered pings at the restored clock). roundMu held.
func (e *Engine) applyPing(p vehiclePing, now float64) {
	rt := e.rtByID[p.id]
	if rt == nil {
		return
	}
	mo := rt.mo
	if !math.IsNaN(p.activeFrom) {
		mo.V.ActiveFrom = p.activeFrom
	}
	if !math.IsNaN(p.activeTo) {
		mo.V.ActiveTo = p.activeTo
	}
	if p.node != roadnet.Invalid {
		if e.dyn != nil {
			e.dyn.learner.ObserveNode(int64(p.id), now, p.node)
		}
		if e.mover.Relocate(mo, p.node) {
			if s := e.sh.shardOf(mo.V.Node); s != int(rt.shard) {
				e.unhomeMotion(rt)
				e.homeMotion(rt, s)
				e.pingHandoffs++
			}
		}
	}
}

// phase1Out is what one shard's parallel pre-match phase hands to the
// barrier.
type phase1Out struct {
	advanceSec float64
	rejected   int
	// orders is the shard's contribution to O(ℓ): its pool (post-reject)
	// followed by the orders stripped from its resident vehicles.
	orders []*model.Order
	// incumbent / strippedVeh record the reshuffle release (order -> the
	// vehicle it was stripped from; vehicles that lost pending orders).
	incumbent   map[model.OrderID]model.VehicleID
	strippedVeh map[model.VehicleID]bool
	// vehicles is V(ℓ) for the shard's residents that did NOT cross a zone
	// boundary; emigrants carries the crossers with their target zone.
	vehicles  []*foodgraph.VehicleState
	emigrants []emigrant
}

type emigrant struct {
	rt     *motionRt
	target int
	vs     *foodgraph.VehicleState // nil when the vehicle is not available
}

// shardWork is the input/output of one zone's matching goroutine.
type shardWork struct {
	orders   []*model.Order
	vehicles []*foodgraph.VehicleState
	res      []policy.Assignment
	sec      float64
	epoch    uint64          // weight epoch the shard's round was pinned to
	pstats   *pipeline.Stats // non-nil iff the shard ran and records stats
}

// runRound executes the phased assignment round at time now. roundMu is
// held; ingestion keeps flowing into the channels, but the world state
// belongs to this round until it returns.
func (e *Engine) runRound(ctx context.Context, t0, now, drainSec float64) RoundStats {
	cfg := e.cfg.Pipeline
	eo := e.eo
	stats := RoundStats{T: now, Shards: make([]ShardRoundStats, len(e.shards))}
	reshuffle := cfg.Reshuffle && e.pol.Reshuffles()
	singleOrder := e.pol.SingleOrderMode(cfg)

	// ---- Parallel phase 1: advance / reject / strip / collect, each shard
	// on its own goroutine owning its own state. Workers=1 runs the shards
	// serially in id order instead: movement (and so the order of the
	// learner's float accumulations and of rejection events) stays fully
	// deterministic across runs, honouring the Config.Workers contract even
	// at Shards>1.
	e.phase("advance")
	phT := time.Now()
	// The movement-worker budget is allocated across shards serially, before
	// the fan-out, so the shares see a consistent fleet census.
	sizes := make([]int, len(e.shards))
	for i, s := range e.shards {
		sizes[i] = len(s.motions)
	}
	shares := advanceShares(e.cfg.Workers, sizes)
	ph := make([]phase1Out, len(e.shards))
	e.forEachShard(e.cfg.Workers > 1, func(s *shardState) {
		ph[s.id] = e.shardPhase1(s, shares[s.id], t0, now, reshuffle, singleOrder)
	})
	advanceSec := time.Since(phT).Seconds()

	// ---- Serial handoff barrier. A weight publish due this round lands
	// first, so the matching phase below already pins the fresh epoch (the
	// learner has seen all of this round's traversals by now).
	e.phase("handoff")
	phT = time.Now()
	pubSec := e.maybeRefreshWeights(now)
	stats.Epoch = e.currentEpoch()

	work := make([]shardWork, len(e.shards))
	var orders []*model.Order
	prevVehicle := make(map[model.OrderID]model.VehicleID)
	stripped := make(map[model.VehicleID]bool)
	stats.VehicleHandoffs += e.pingHandoffs // ping re-homes since last round
	e.pingHandoffs = 0
	for si := range ph {
		out := &ph[si]
		stats.Rejected += out.rejected
		orders = append(orders, out.orders...)
		for id, v := range out.incumbent {
			prevVehicle[id] = v
		}
		for id := range out.strippedVeh {
			stripped[id] = true
		}
	}
	// Re-home the boundary crossers: the vehicle leaves its old zone's
	// resident list for the zone its node is in — a crosser is matched by
	// exactly one shard. Counted against the pre-re-split partition.
	for si := range ph {
		for _, em := range ph[si].emigrants {
			e.unhomeMotion(em.rt)
			e.homeMotion(em.rt, em.target)
			stats.VehicleHandoffs++
		}
	}

	// A due demand-driven re-split executes here: after boundary re-homing,
	// before V(ℓ)/O(ℓ) bucketing — so the match phase below already runs on
	// the new zones and this round's pool rebuild re-buckets through the new
	// sharder (pools migrate without a dedicated pass).
	resplit, resplitMoves, resplitSec := e.maybeResplit(now)
	stats.ShardEpoch = e.shardEpoch.Load()
	stats.ResplitMoves = resplitMoves

	// Bucket V(ℓ) by each available vehicle's current zone: stay-homes in
	// shard order, then emigrants in shard order — identical slice contents
	// to the pre-elastic direct assignment whenever no re-split ran.
	availTotal := 0
	for si := range ph {
		for _, vs := range ph[si].vehicles {
			t := e.sh.shardOf(vs.Node)
			work[t].vehicles = append(work[t].vehicles, vs)
			availTotal++
		}
	}
	for si := range ph {
		for _, em := range ph[si].emigrants {
			if em.vs != nil {
				t := e.sh.shardOf(em.vs.Node)
				work[t].vehicles = append(work[t].vehicles, em.vs)
				availTotal++
			}
		}
	}
	stats.PoolSize = len(orders)
	stats.AvailableVehicles = availTotal

	// Partition O(ℓ) by restaurant zone with the cross-shard handoff rule.
	if len(orders) > 0 && availTotal > 0 {
		stats.Handoffs = e.partitionOrders(orders, work)
	}
	if resplit {
		// Fresh zones start with cold distance rows; warm them by parallel
		// bounded SSSP before the match phase queries them.
		e.warmShards(work, now)
	}
	handoffSec := time.Since(phT).Seconds()

	// ---- Parallel phase 2: every zone's pipeline on its own policy
	// instance, distance cache and pinned weight epoch.
	e.phase("match")
	phT = time.Now()
	var wg sync.WaitGroup
	for s := range e.shards {
		if len(work[s].orders) == 0 || len(work[s].vehicles) == 0 {
			continue
		}
		wg.Add(1)
		go func(sr *shardState, w *shardWork) {
			defer wg.Done()
			// Pin the current weight epoch for the whole round: the
			// snapshot's graph and Router stay mutually consistent even if
			// a weight publish lands mid-round (the next round picks the
			// new epoch up), and the per-query hot path pays no atomic
			// load at all.
			snap, router := sr.router.Acquire()
			w.epoch = snap.Epoch
			if sr.slot != e.slot {
				sr.slot = e.slot
				if r, ok := router.(roadnet.Resettable); ok {
					r.Reset()
				}
			}
			t0 := time.Now()
			w.res = sr.pol.Assign(ctx, &policy.WindowInput{
				G:         snap.Graph,
				Router:    router,
				Now:       now,
				Orders:    w.orders,
				Vehicles:  w.vehicles,
				Incumbent: prevVehicle,
				Cfg:       cfg,
			})
			w.sec = time.Since(t0).Seconds()
			if src, ok := sr.pol.(pipeline.StatsSource); ok {
				ps := src.LastStats()
				w.pstats = &ps
			}
		}(e.shards[s], &work[s])
	}
	wg.Wait()
	matchSec := time.Since(phT).Seconds()

	// ---- Serial application through the shared round logic (window.go —
	// the same code path the offline simulator runs). Zones hold disjoint
	// vehicles, so decisions never conflict; sequential application keeps
	// the world state single-writer.
	e.phase("apply")
	phT = time.Now()
	w := &sim.RoundWorld{
		ByID:    e.byID,
		Motions: e.motions,
		Mover:   e.mover,
		Cfg:     cfg,
		Trace:   e.cfg.Trace,
		SPFor:   e.shardCacheFor,
	}
	assignedVehicles := make(map[model.VehicleID]bool)
	assignedOrders := make(map[model.OrderID]bool)
	for s := range work {
		sw := &work[s]
		stats.Shards[s] = ShardRoundStats{
			Orders:      len(sw.orders),
			Vehicles:    len(sw.vehicles),
			Assignments: len(sw.res),
			AssignSec:   sw.sec,
			AdvanceSec:  ph[s].advanceSec,
			Epoch:       sw.epoch,
			Pipeline:    sw.pstats,
		}
		if sw.epoch > stats.Epoch {
			stats.Epoch = sw.epoch
		}
		if sw.pstats != nil {
			stats.Pipeline.Accumulate(*sw.pstats)
		}
		if sw.sec > stats.AssignSecMax {
			stats.AssignSecMax = sw.sec
		}
		for _, ap := range w.ApplyAssignments(now, sw.res, prevVehicle, assignedOrders, assignedVehicles) {
			if ap.ReassignedOrders > 0 {
				e.statMu.Lock()
				e.stats.reassigned += int64(ap.ReassignedOrders)
				e.statMu.Unlock()
				if eo != nil {
					eo.cReassigned.Add(int64(ap.ReassignedOrders))
				}
			}
			stats.AssignedOrders += len(ap.Orders)
			e.subs.publish(StreamEvent{Decision: &Decision{
				T: now, Vehicle: ap.Vehicle.ID, Orders: ap.Orders, Shard: s,
				Reassigned: ap.ReassignedOrders > 0,
			}})
		}
	}

	applySec := time.Since(phT).Seconds()

	// Give unplaced reshuffled orders back to their incumbents (decision is
	// serial and deterministic), then fan the expensive replanning out per
	// zone: each restored or stripped vehicle replans on the distance cache
	// of the zone its node is in, one goroutine per zone.
	e.phase("replan")
	phT = time.Now()
	restored := w.DecideRestores(now, orders, prevVehicle, assignedOrders)
	e.replanParallel(now, stripped, assignedVehicles, restored)
	replanSec := time.Since(phT).Seconds()

	// Rebuild the zone pools from the unassigned remainder (orders return
	// to their restaurant's home zone).
	e.phase("rebuild")
	phT = time.Now()
	for _, s := range e.shards {
		s.pool = s.pool[:0]
	}
	carried := 0
	for _, o := range orders {
		if sim.PoolCarry(o, assignedOrders) {
			s := e.shards[e.sh.shardOf(o.Restaurant)]
			s.pool = append(s.pool, o)
			carried++
		}
	}
	for _, s := range e.shards {
		s.poolLen.Store(int64(len(s.pool)))
	}
	stats.PoolCarried = carried

	// Shard-resident round timings for the metrics plane.
	for s := range e.shards {
		st := e.shards[s]
		st.hookMu.Lock()
		st.timing.rounds++
		st.timing.advanceSecTotal += ph[s].advanceSec
		st.timing.assignSecTotal += work[s].sec
		st.timing.lastAdvanceSec = ph[s].advanceSec
		st.timing.lastAssignSec = work[s].sec
		st.hookMu.Unlock()
	}
	rebuildSec := time.Since(phT).Seconds()

	if eo != nil {
		stats.Phases = eo.recordPhases(ph, work,
			drainSec, advanceSec, handoffSec, pubSec, resplitSec, matchSec, applySec, replanSec, rebuildSec)
	}

	e.cfg.Trace.Emit(trace.Event{
		Kind: trace.WindowClosed, T: now,
		PoolSize: stats.PoolSize, Vehicles: availTotal,
		Assignments: stats.AssignedOrders, AssignSec: stats.AssignSecMax,
	})
	return stats
}

// phase announces a round-phase boundary to the fault-injection hook (no-op
// in production: the hook is settable only from in-package tests).
func (e *Engine) phase(name string) {
	if e.cfg.phaseHook != nil {
		e.cfg.phaseHook(name)
	}
}

// forEachShard runs fn over every shard — one goroutine each when parallel,
// inline in shard-id order otherwise (single shard, or a caller that needs
// cross-shard determinism).
func (e *Engine) forEachShard(parallel bool, fn func(s *shardState)) {
	if !parallel || len(e.shards) == 1 {
		for _, s := range e.shards {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for _, s := range e.shards {
		go func(s *shardState) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// shardPhase1 is one zone's parallel pre-match phase: advance resident
// vehicles through [t0, t1), reject stale pool orders, strip reshuffleable
// pending orders, and classify residents into stay-home vehicle states vs
// boundary-crossing emigrants. It runs on the shard's own goroutine and
// touches only shard-resident state (trace sinks, stream subscribers and
// the learner synchronise internally).
func (e *Engine) shardPhase1(s *shardState, advWorkers int, t0, t1 float64, reshuffle, singleOrder bool) phase1Out {
	cfg := e.cfg.Pipeline
	var out phase1Out

	// SDT lower bounds for this round's freshly admitted orders, on the
	// shard's own bounded distance cache (values depend only on the static
	// true graph and the order's placement time, so computing them here —
	// in parallel, per shard — is exact).
	if s.sdtSlot != e.slot {
		s.sdtSlot = e.slot
		s.sdt.Reset()
	}
	// Group same-(restaurant, slot) orders so each group's SDTs resolve
	// through one batched row read. Values are identical to per-order point
	// queries (same memoised row); the grouping only collapses the lookups.
	s.sdtOrders = append(s.sdtOrders[:0], s.newOrders...)
	sort.SliceStable(s.sdtOrders, func(i, j int) bool {
		a, b := s.sdtOrders[i], s.sdtOrders[j]
		if a.Restaurant != b.Restaurant {
			return a.Restaurant < b.Restaurant
		}
		return roadnet.Slot(a.PlacedAt) < roadnet.Slot(b.PlacedAt)
	})
	for i := 0; i < len(s.sdtOrders); {
		o := s.sdtOrders[i]
		j := i + 1
		for j < len(s.sdtOrders) && s.sdtOrders[j].Restaurant == o.Restaurant &&
			roadnet.Slot(s.sdtOrders[j].PlacedAt) == roadnet.Slot(o.PlacedAt) {
			j++
		}
		if j-i == 1 {
			o.SDT = o.Prep + s.sdt.Dist(o.Restaurant, o.Customer, o.PlacedAt)
		} else {
			s.sdtTargets = s.sdtTargets[:0]
			for _, q := range s.sdtOrders[i:j] {
				s.sdtTargets = append(s.sdtTargets, q.Customer)
			}
			d := s.sdt.TravelMany(o.Restaurant, s.sdtTargets, o.PlacedAt)
			for k, q := range s.sdtOrders[i:j] {
				q.SDT = q.Prep + d[k]
			}
		}
		i = j
	}
	s.newOrders = s.newOrders[:0]

	adv := time.Now()
	e.advanceShard(s, advWorkers, t0, t1)
	out.advanceSec = time.Since(adv).Seconds()

	// Reject pool orders unallocated longer than RejectAfter.
	keep := s.pool[:0]
	for _, o := range s.pool {
		if t1-o.PlacedAt > cfg.RejectAfter {
			o.State = model.OrderRejected
			out.rejected++
			e.cfg.Trace.Emit(trace.Event{Kind: trace.OrderRejected, T: t1, Order: o.ID})
			e.subs.publish(StreamEvent{Rejection: &Rejection{T: t1, Order: o.ID}})
		} else {
			keep = append(keep, o)
		}
	}
	s.pool = keep
	s.poolLen.Store(int64(len(s.pool)))

	// O(ℓ) contribution: the zone pool, then — when reshuffling — every
	// resident vehicle's assigned-but-unpicked orders, released back to the
	// pool through the same sim.ReleasePending the offline round runs.
	out.orders = append(out.orders, s.pool...)
	if reshuffle {
		out.incumbent = make(map[model.OrderID]model.VehicleID)
		out.strippedVeh = make(map[model.VehicleID]bool)
		for _, rt := range s.motions {
			var released bool
			out.orders, released = sim.ReleasePending(rt.mo.V, t1, e.cfg.Trace, out.orders, out.incumbent)
			if released {
				out.strippedVeh[rt.mo.V.ID] = true
			}
		}
	}

	// V(ℓ) and emigrants: availability is judged post-strip (a stripped
	// vehicle's capacity is free again), zone membership by the node the
	// vehicle advanced to.
	for _, rt := range s.motions {
		v := rt.mo.V
		var vs *foodgraph.VehicleState
		if v.Active(t1) &&
			!(singleOrder && v.OrderCount() > 0) &&
			v.OrderCount() < cfg.MaxO && v.ItemCount() < cfg.MaxI {
			vs = &foodgraph.VehicleState{
				Vehicle: v,
				Node:    v.Node,
				Dest:    rt.mo.NextNode(),
				Onboard: v.Onboard,
				Keep:    v.Pending,
			}
		}
		if target := e.sh.shardOf(v.Node); target != s.id {
			out.emigrants = append(out.emigrants, emigrant{rt: rt, target: target, vs: vs})
			continue
		}
		if vs != nil {
			out.vehicles = append(out.vehicles, vs)
		}
	}
	return out
}

// advanceShares splits the movement-worker budget across shards in
// proportion to their resident fleets by largest remainder: integer quotas
// budget·sizeᵢ/Σsize floor first, then the leftover goes one-by-one to the
// largest fractional remainders (lowest shard id on ties), capped at each
// shard's fleet size. Shares always sum to min(budget, Σsize) — the old
// per-shard floor could silently sum to well under the budget on skewed
// fleets (e.g. budget 7 over fleets 3/3/3/3 ran only 4 workers).
func advanceShares(budget int, sizes []int) []int {
	shares := make([]int, len(sizes))
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total == 0 || budget <= 0 {
		return shares
	}
	if budget > total {
		budget = total
	}
	type rem struct{ frac, id int }
	rems := make([]rem, 0, len(sizes))
	allocated := 0
	for i, n := range sizes {
		q := budget * n / total
		shares[i] = q
		allocated += q
		rems = append(rems, rem{frac: budget*n - q*total, id: i})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].id < rems[b].id
	})
	for _, r := range rems {
		if allocated >= budget {
			break
		}
		if shares[r.id] < sizes[r.id] {
			shares[r.id]++
			allocated++
		}
	}
	return shares
}

// advanceShard moves the shard's resident vehicles through [t0, t1) on the
// shard's own mover, fanning its motions out over `workers` goroutines from
// the engine-wide budget (allocated by advanceShares at the top of the
// round: a dinner-peak hotspot zone gets the workers its fleet share
// warrants, not an even 1/K slice). Each vehicle is touched by exactly one
// goroutine; the graph is read-only; hooks and the trace sink synchronise
// internally. Shares of 0 or 1 run inline on the shard's own goroutine.
func (e *Engine) advanceShard(s *shardState, workers int, t0, t1 float64) {
	if t1 <= t0 || len(s.motions) == 0 {
		return
	}
	if workers > len(s.motions) {
		workers = len(s.motions)
	}
	if workers <= 1 {
		for _, rt := range s.motions {
			s.mover.Advance(rt.mo, t0, t1)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan *sim.Motion, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for mo := range next {
				s.mover.Advance(mo, t0, t1)
			}
		}()
	}
	for _, rt := range s.motions {
		next <- rt.mo
	}
	close(next)
	wg.Wait()
}

// replanParallel rebuilds plans for restored and stripped-but-unmatched
// vehicles — the Dijkstra-heavy tail of the round — fanned out per zone so
// each zone's distance cache is driven by exactly one goroutine. Per
// vehicle the logic matches sim.RoundWorld.RestoreToIncumbent/
// ReplanStripped; vehicles are grouped by the zone their node is in (the
// cache that can answer their queries).
func (e *Engine) replanParallel(now float64, stripped, assigned, restored map[model.VehicleID]bool) {
	if len(stripped) == 0 && len(restored) == 0 {
		return
	}
	buckets := make([][]*sim.Motion, len(e.shards))
	for _, mo := range e.motions {
		v := mo.V
		if !restored[v.ID] && !(stripped[v.ID] && !assigned[v.ID]) {
			continue
		}
		z := e.sh.shardOf(v.Node)
		buckets[z] = append(buckets[z], mo)
	}
	e.forEachShard(e.cfg.Workers > 1, func(s *shardState) {
		for _, mo := range buckets[s.id] {
			sim.ReplanAfterRound(s.router.Travel, e.mover, mo, now, restored[mo.V.ID])
		}
	})
}

// partitionOrders distributes O(ℓ) across the zone shards: every order goes
// to its restaurant's home zone unless it straddles a boundary (restaurant
// within BoundaryM of a neighbouring zone) and the neighbour is under less
// pressure — fewer orders queued per available vehicle — in which case it is
// handed off. Returns the handoff count.
//
// The pressure score feeds back on work[s].orders as the loop assigns, so
// the visit order must be canonical or an order's handoff decision would
// depend on its position in the pool slice (phase-1 collection order):
// orders are visited in ascending order id. Ties are explicit: the home
// zone wins at equal pressure (strict <), and among eligible neighbours the
// lowest shard id wins (nearShards iterates ascending; the first winner at
// a given pressure stands).
func (e *Engine) partitionOrders(orders []*model.Order, work []shardWork) int {
	if len(work) == 1 {
		work[0].orders = orders
		return 0
	}
	seq := make([]*model.Order, len(orders))
	copy(seq, orders)
	sort.Slice(seq, func(a, b int) bool { return seq[a].ID < seq[b].ID })
	handoffs := 0
	var near []int
	for _, o := range seq {
		home := e.sh.shardOf(o.Restaurant)
		best := home
		if len(work[home].vehicles) == 0 || len(work[home].orders) >= len(work[home].vehicles) {
			// Home zone is starved or saturated: consider neighbours the
			// restaurant can plausibly be served from.
			near = e.sh.nearShards(near[:0], e.g.Point(o.Restaurant), home, e.cfg.BoundaryM)
			bestScore := pressure(&work[home])
			for _, s := range near {
				if len(work[s].vehicles) == 0 {
					continue
				}
				if sc := pressure(&work[s]); sc < bestScore {
					best, bestScore = s, sc
				}
			}
		}
		if best != home {
			handoffs++
		}
		work[best].orders = append(work[best].orders, o)
	}
	return handoffs
}

// maybeResplit executes a demand-driven shard re-split when the cadence is
// due: it rebuilds the KD partition weighted by order arrivals per node
// (demandWeights) and migrates every vehicle onto the new zones
// exactly-once. It runs inside the serial handoff barrier — roundMu held,
// no parallel phase in flight — so residency moves need no synchronisation
// beyond the atomic length mirrors. Pools need no dedicated migration pass:
// this round's rebuild phase re-buckets the unassigned remainder through
// the new sharder, and admissions/replans route through shardOf from here
// on. Movers, DistCaches, routers and policy instances are zone-scoped (the
// zone's *meaning* changes, the instance stays), so they move with the
// shard slot; the caller warms the distance caches for the new zone
// geometry. Returns whether a re-split executed, how many vehicles changed
// zones, and the wall-clock cost.
func (e *Engine) maybeResplit(now float64) (bool, int, float64) {
	if e.cfg.ResplitSec <= 0 || len(e.shards) < 2 {
		return false, 0, 0
	}
	if now-e.lastResplitT < e.cfg.ResplitSec {
		return false, 0, 0
	}
	// Too little signal to beat the node-balanced prior: skip the churn and
	// wait out a full cadence period (mirrors maybeRefreshWeights's
	// quiet-period handling).
	if e.demandTotal < int64(4*len(e.shards)) {
		e.lastResplitT = now
		return false, 0, 0
	}
	e.phase("resplit")
	t0 := time.Now()
	e.lastResplitT = now
	part := make([]int64, len(e.demand))
	copy(part, e.demand)
	e.partDemand = part
	sh := newSharderWeighted(e.g, e.cfg.Shards, demandWeights(part))
	sh.relabelToMatch(e.canonSh)
	e.sh = sh
	// Halve (don't zero) the live counters: the next re-split sees an
	// exponentially decayed moving average of arrivals, not only the last
	// period's.
	var total int64
	for i, d := range e.demand {
		e.demand[i] = d >> 1
		total += d >> 1
	}
	e.demandTotal = total
	moves := e.rehomeAll()
	e.shardEpoch.Add(1)
	e.statMu.Lock()
	e.stats.resplits++
	e.stats.resplitMoves += int64(moves)
	e.statMu.Unlock()
	if e.eo != nil {
		e.eo.cResplits.Inc()
		e.eo.cResplitMoves.Add(int64(moves))
		e.eo.gShardEpoch.Set(float64(e.shardEpoch.Load()))
	}
	return true, moves, time.Since(t0).Seconds()
}

// demandWeights converts a per-node demand vector into KD split weights:
// raw counts plus a small uniform prior (total/(4n) per node) so
// zero-demand spans still carry weight — demand dominates once the city is
// warm, the prior keeps cold corners from collapsing into slivers. Pure
// and deterministic: checkpoint restore rebuilds the identical partition
// from the persisted vector.
func demandWeights(demand []int64) []float64 {
	var total int64
	for _, d := range demand {
		total += d
	}
	prior := float64(total) / float64(4*len(demand))
	w := make([]float64, len(demand))
	for i, d := range demand {
		w[i] = float64(d) + prior
	}
	return w
}

// rehomeAll rebuilds every shard's resident list against the current
// sharder in stable fleet order (deterministic regardless of the swap-
// removal history), returning how many vehicles changed zones.
func (e *Engine) rehomeAll() int {
	moves := 0
	for _, s := range e.shards {
		s.motions = s.motions[:0]
	}
	for _, mo := range e.motions {
		rt := e.rtByID[mo.V.ID]
		target := e.sh.shardOf(mo.V.Node)
		if target != int(rt.shard) {
			moves++
		}
		st := e.shards[target]
		rt.shard = int32(target)
		rt.pos = int32(len(st.motions))
		st.motions = append(st.motions, rt)
	}
	for _, s := range e.shards {
		s.vehLen.Store(int64(len(s.motions)))
	}
	return moves
}

// warmShards pre-builds the distance rows freshly re-split zones will need:
// one bounded SSSP per distinct restaurant in each zone's order partition,
// on both the zone's SDT admission cache and its router's memoised backend,
// in parallel across shards before the match phase reads them. Warming is
// pure cache fill — rows are exact, so no decision can change; the slot
// reset below replicates exactly what the match goroutine (router) and next
// round's phase 1 (SDT) would do, so the warmed rows are not dropped later.
func (e *Engine) warmShards(work []shardWork, now float64) {
	e.forEachShard(e.cfg.Workers > 1, func(s *shardState) {
		if s.sdtSlot != e.slot {
			s.sdtSlot = e.slot
			s.sdt.Reset()
		}
		_, router := s.router.Acquire()
		if s.slot != e.slot {
			s.slot = e.slot
			if r, ok := router.(roadnet.Resettable); ok {
				r.Reset()
			}
		}
		seen := make(map[roadnet.NodeID]bool, len(work[s.id].orders))
		for _, o := range work[s.id].orders {
			if seen[o.Restaurant] {
				continue
			}
			seen[o.Restaurant] = true
			s.sdt.Row(o.Restaurant, now)
			router.Travel(o.Restaurant, o.Restaurant, now)
		}
	})
}

// pressure scores a zone's load for the handoff rule: queued orders per
// available vehicle (+Inf when the zone has no vehicles).
func pressure(w *shardWork) float64 {
	if len(w.vehicles) == 0 {
		return math.Inf(1)
	}
	return float64(len(w.orders)+1) / float64(len(w.vehicles))
}

// shardCacheFor returns the distance oracle of a node's zone (used outside
// the parallel sections).
func (e *Engine) shardCacheFor(n roadnet.NodeID) roadnet.SPFunc {
	return e.shards[e.sh.shardOf(n)].router.Travel
}
