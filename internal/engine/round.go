package engine

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/foodgraph"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Step advances the engine to simulation time `now` and runs one assignment
// round: drain the ingestion queues, move every vehicle through
// [clock, now), reject stale orders, then shard the pool and match each
// zone in parallel. It returns the round's statistics and is the
// deterministic entry point replay drivers and tests use; the Start loop
// calls it once per ∆ tick.
func (e *Engine) Step(now float64) RoundStats {
	return e.StepContext(context.Background(), now)
}

// StepContext is Step with cancellation/deadline propagation into every
// zone shard's pipeline stages. A cancelled context makes the round apply
// only the decisions already made; world state stays consistent.
func (e *Engine) StepContext(ctx context.Context, now float64) RoundStats {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	t0 := time.Now()

	if now < e.clock {
		now = e.clock // the clock never runs backwards
	}
	e.drainPings(now)
	e.drainOrders(now)

	// Slot boundary: weights changed, memoised distance rows are stale.
	if s := roadnet.Slot(now); s != e.slot {
		e.slot = s
		e.sdtCache.Reset()
	}

	e.advanceAll(e.clock, now)
	e.clock = now
	e.clockBits.Store(math.Float64bits(now))
	// Weight-refresh due? Publish a new epoch before matching so this
	// round's decisions already see it.
	e.maybeRefreshWeights(now)
	rejected := e.rejectStale(now)

	stats := e.assignRound(ctx, now)
	stats.Rejected = rejected
	stats.LatencySec = time.Since(t0).Seconds()
	stats.OrderQueueDepth = len(e.orderCh)
	stats.PingQueueDepth = len(e.pingCh)

	e.statMu.Lock()
	if e.stats.rounds == 0 {
		e.stats.simStart = now - e.cfg.Pipeline.Delta
	}
	e.stats.rounds++
	e.stats.roundSecTotal += stats.LatencySec
	if stats.LatencySec > e.stats.roundSecMax {
		e.stats.roundSecMax = stats.LatencySec
	}
	e.stats.assigned += int64(stats.AssignedOrders)
	e.stats.rejected += int64(rejected)
	e.stats.handoffs += int64(stats.Handoffs)
	e.stats.lastRound = stats
	e.statMu.Unlock()

	e.subs.publish(StreamEvent{Round: &stats})
	return stats
}

// drainOrders admits queued orders. Orders placed beyond `now` wait in the
// future buffer — the online analogue of the simulator injecting only
// orders with PlacedAt < window end.
func (e *Engine) drainOrders(now float64) {
	arrived := false
	for {
		select {
		case o := <-e.orderCh:
			if o.PlacedAt <= 0 {
				o.PlacedAt = now
			}
			e.future = append(e.future, o)
			arrived = true
		default:
			e.admitFuture(now, arrived)
			return
		}
	}
}

// admitFuture moves matured orders from the future buffer into the pool,
// computing their SDT lower bound at admission. The buffer is kept sorted
// by placement time; removal preserves that, so re-sorting is only needed
// when this round's drain appended new arrivals.
func (e *Engine) admitFuture(now float64, arrived bool) {
	if arrived {
		sort.SliceStable(e.future, func(i, j int) bool {
			return e.future[i].PlacedAt < e.future[j].PlacedAt
		})
	}
	n := 0
	for _, o := range e.future {
		if o.PlacedAt >= now {
			e.future[n] = o
			n++
			continue
		}
		o.State = model.OrderPlaced
		o.AssignedTo = -1
		o.SDT = o.Prep + e.sdtCache.Dist(o.Restaurant, o.Customer, o.PlacedAt)
		e.pool = append(e.pool, o)
		e.statMu.Lock()
		e.stats.admitted++
		e.statMu.Unlock()
		e.cfg.Trace.Emit(trace.Event{Kind: trace.OrderPlaced, T: o.PlacedAt, Order: o.ID})
	}
	e.future = e.future[:n]
}

// drainPings applies queued vehicle updates. Pings relocate only idle
// vehicles: while a plan is live, position comes from simulated movement.
// When the live traffic plane is on, every location ping also streams into
// the speed learner (stamped with the round clock — the drain is the first
// instant the engine observes it).
func (e *Engine) drainPings(now float64) {
	for {
		select {
		case p := <-e.pingCh:
			mo := e.byID[p.id]
			if mo == nil {
				continue
			}
			if !math.IsNaN(p.activeFrom) {
				mo.V.ActiveFrom = p.activeFrom
			}
			if !math.IsNaN(p.activeTo) {
				mo.V.ActiveTo = p.activeTo
			}
			if p.node != roadnet.Invalid {
				if e.dyn != nil {
					e.dyn.learner.ObserveNode(int64(p.id), now, p.node)
				}
				e.mover.Relocate(mo, p.node)
			}
		default:
			return
		}
	}
}

// advanceAll moves every vehicle through [t0, t1), fanned out over the
// worker pool. Each vehicle's state is touched by exactly one worker; the
// graph is read-only; movement hooks and the trace sink synchronise
// internally.
func (e *Engine) advanceAll(t0, t1 float64) {
	if t1 <= t0 {
		return
	}
	workers := e.cfg.Workers
	if workers > len(e.motions) {
		workers = len(e.motions)
	}
	if workers <= 1 {
		for _, mo := range e.motions {
			e.mover.Advance(mo, t0, t1)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan *sim.Motion, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for mo := range next {
				e.mover.Advance(mo, t0, t1)
			}
		}()
	}
	for _, mo := range e.motions {
		next <- mo
	}
	close(next)
	wg.Wait()
}

// rejectStale drops pool orders unallocated longer than RejectAfter.
func (e *Engine) rejectStale(now float64) int {
	n := 0
	keep := e.pool[:0]
	for _, o := range e.pool {
		if now-o.PlacedAt > e.cfg.Pipeline.RejectAfter {
			o.State = model.OrderRejected
			n++
			e.cfg.Trace.Emit(trace.Event{Kind: trace.OrderRejected, T: now, Order: o.ID})
			e.subs.publish(StreamEvent{Rejection: &Rejection{T: now, Order: o.ID}})
		} else {
			keep = append(keep, o)
		}
	}
	e.pool = keep
	return n
}

// shardWork is the input/output of one zone's matching goroutine.
type shardWork struct {
	orders   []*model.Order
	vehicles []*foodgraph.VehicleState
	res      []policy.Assignment
	sec      float64
	epoch    uint64          // weight epoch the shard's round was pinned to
	pstats   *pipeline.Stats // non-nil iff the shard ran and records stats
}

// assignRound runs the sharded end-of-window assignment at time now.
// The world lock is held: ingestion keeps flowing into the channels, but
// vehicle and pool state belong to this round until it returns.
func (e *Engine) assignRound(ctx context.Context, now float64) RoundStats {
	cfg := e.cfg.Pipeline
	stats := RoundStats{T: now, Epoch: e.currentEpoch(), Shards: make([]ShardRoundStats, len(e.shards))}
	w := &sim.RoundWorld{
		ByID:    e.byID,
		Motions: e.motions,
		Mover:   e.mover,
		Cfg:     cfg,
		Trace:   e.cfg.Trace,
		SPFor:   e.shardCacheFor,
	}

	// Build O(ℓ): the pool plus — when reshuffling — every vehicle's
	// assigned-but-unpicked orders, returned to the pool.
	orders := make([]*model.Order, 0, len(e.pool))
	orders = append(orders, e.pool...)
	var stripped map[model.VehicleID]bool
	prevVehicle := make(map[model.OrderID]model.VehicleID)
	if cfg.Reshuffle && e.pol.Reshuffles() {
		orders, prevVehicle, stripped = w.StripPending(now, orders)
	}
	stats.PoolSize = len(orders)

	// Build V(ℓ) per shard, keyed by each vehicle's current zone.
	singleOrder := e.pol.SingleOrderMode(cfg)
	work := make([]shardWork, len(e.shards))
	availTotal := 0
	for _, mo := range e.motions {
		v := mo.V
		if !v.Active(now) {
			continue
		}
		if singleOrder && v.OrderCount() > 0 {
			continue
		}
		if v.OrderCount() >= cfg.MaxO || v.ItemCount() >= cfg.MaxI {
			continue
		}
		s := e.sh.shardOf(v.Node)
		work[s].vehicles = append(work[s].vehicles, &foodgraph.VehicleState{
			Vehicle: v,
			Node:    v.Node,
			Dest:    mo.NextNode(),
			Onboard: v.Onboard,
			Keep:    v.Pending,
		})
		availTotal++
	}
	stats.AvailableVehicles = availTotal

	// Partition O(ℓ) by restaurant zone with the cross-shard handoff rule.
	if len(orders) > 0 && availTotal > 0 {
		stats.Handoffs = e.partitionOrders(orders, work)
	}

	// Run every zone's pipeline in parallel on its own policy instance and
	// distance cache.
	var wg sync.WaitGroup
	for s := range e.shards {
		if len(work[s].orders) == 0 || len(work[s].vehicles) == 0 {
			continue
		}
		wg.Add(1)
		go func(sr *shardRt, w *shardWork) {
			defer wg.Done()
			// Pin the current weight epoch for the whole round: the
			// snapshot's graph and Router stay mutually consistent even if
			// a weight publish lands mid-round (the next round picks the
			// new epoch up), and the per-query hot path pays no atomic
			// load at all.
			snap, router := sr.router.Acquire()
			w.epoch = snap.Epoch
			if sr.slot != e.slot {
				sr.slot = e.slot
				if r, ok := router.(roadnet.Resettable); ok {
					r.Reset()
				}
			}
			t0 := time.Now()
			w.res = sr.pol.Assign(ctx, &policy.WindowInput{
				G:         snap.Graph,
				Router:    router,
				Now:       now,
				Orders:    w.orders,
				Vehicles:  w.vehicles,
				Incumbent: prevVehicle,
				Cfg:       cfg,
			})
			w.sec = time.Since(t0).Seconds()
			if src, ok := sr.pol.(pipeline.StatsSource); ok {
				ps := src.LastStats()
				w.pstats = &ps
			}
		}(e.shards[s], &work[s])
	}
	wg.Wait()

	// Apply the zones' decisions centrally through the shared round logic
	// (window.go — the same code path the offline simulator runs). Zones
	// hold disjoint vehicles, so decisions never conflict; sequential
	// application keeps the world state single-writer.
	assignedVehicles := make(map[model.VehicleID]bool)
	assignedOrders := make(map[model.OrderID]bool)
	for s := range work {
		sw := &work[s]
		stats.Shards[s] = ShardRoundStats{
			Orders:      len(sw.orders),
			Vehicles:    len(sw.vehicles),
			Assignments: len(sw.res),
			AssignSec:   sw.sec,
			Epoch:       sw.epoch,
			Pipeline:    sw.pstats,
		}
		if sw.epoch > stats.Epoch {
			stats.Epoch = sw.epoch
		}
		if sw.pstats != nil {
			stats.Pipeline.Accumulate(*sw.pstats)
		}
		if sw.sec > stats.AssignSecMax {
			stats.AssignSecMax = sw.sec
		}
		for _, ap := range w.ApplyAssignments(now, sw.res, prevVehicle, assignedOrders, assignedVehicles) {
			if ap.ReassignedOrders > 0 {
				e.statMu.Lock()
				e.stats.reassigned += int64(ap.ReassignedOrders)
				e.statMu.Unlock()
			}
			stats.AssignedOrders += len(ap.Orders)
			e.subs.publish(StreamEvent{Decision: &Decision{
				T: now, Vehicle: ap.Vehicle.ID, Orders: ap.Orders, Shard: s,
				Reassigned: ap.ReassignedOrders > 0,
			}})
		}
	}

	restored := w.RestoreToIncumbent(now, orders, prevVehicle, assignedOrders)
	e.pool = sim.RebuildPool(orders, assignedOrders, e.pool[:0])
	stats.PoolCarried = len(e.pool)
	w.ReplanStripped(now, stripped, assignedVehicles, restored)

	e.cfg.Trace.Emit(trace.Event{
		Kind: trace.WindowClosed, T: now,
		PoolSize: stats.PoolSize, Vehicles: availTotal,
		Assignments: stats.AssignedOrders, AssignSec: stats.AssignSecMax,
	})
	return stats
}

// partitionOrders distributes O(ℓ) across the zone shards: every order goes
// to its restaurant's home zone unless it straddles a boundary (restaurant
// within BoundaryM of a neighbouring zone) and the neighbour is under less
// pressure — fewer orders queued per available vehicle — in which case it is
// handed off. Returns the handoff count.
func (e *Engine) partitionOrders(orders []*model.Order, work []shardWork) int {
	if len(work) == 1 {
		work[0].orders = orders
		return 0
	}
	handoffs := 0
	var near []int
	for _, o := range orders {
		home := e.sh.shardOf(o.Restaurant)
		best := home
		if len(work[home].vehicles) == 0 || len(work[home].orders) >= len(work[home].vehicles) {
			// Home zone is starved or saturated: consider neighbours the
			// restaurant can plausibly be served from.
			near = e.sh.nearShards(near[:0], e.g.Point(o.Restaurant), home, e.cfg.BoundaryM)
			bestScore := pressure(&work[home])
			for _, s := range near {
				if len(work[s].vehicles) == 0 {
					continue
				}
				if sc := pressure(&work[s]); sc < bestScore {
					best, bestScore = s, sc
				}
			}
		}
		if best != home {
			handoffs++
		}
		work[best].orders = append(work[best].orders, o)
	}
	return handoffs
}

// pressure scores a zone's load for the handoff rule: queued orders per
// available vehicle (+Inf when the zone has no vehicles).
func pressure(w *shardWork) float64 {
	if len(w.vehicles) == 0 {
		return math.Inf(1)
	}
	return float64(len(w.orders)+1) / float64(len(w.vehicles))
}

// shardCacheFor returns the distance oracle of a node's zone (used outside
// the parallel section).
func (e *Engine) shardCacheFor(n roadnet.NodeID) roadnet.SPFunc {
	return e.shards[e.sh.shardOf(n)].router.Travel
}
