package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// TestEngineConcurrentIngestAndSwap is the engine's -race gauntlet: the
// real-time window clock runs under StartContext while producer goroutines
// hammer order submission and vehicle pings, a traffic goroutine forces
// mid-round weight-epoch swaps, and reader goroutines poll every metrics
// surface. No assertion beyond "the race detector stays quiet and the
// engine makes progress" — which is exactly the contract the lock-free
// snapshot plane must honour.
func TestEngineConcurrentIngestAndSwap(t *testing.T) {
	city := testCityB
	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	fleet := city.Fleet(1.0, testConfig().MaxO, 1)
	start := 19.0 * 3600
	orders := workload.OrderStreamWindow(city, 1, start, start+1800)
	if len(orders) == 0 {
		t.Skip("no orders in slice")
	}
	e, err := New(city.G, fleet, Config{
		Pipeline:         testConfig(),
		Shards:           4,
		QueueSize:        64, // small on purpose: exercise backpressure
		Learner:          learner,
		WeightRefreshSec: 120,
		MinSamples:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := e.VehicleIDs()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := e.StartContext(ctx, start, 30000); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Order producers (ErrQueueFull is expected backpressure, not failure).
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; ; i += 2 {
				select {
				case <-stop:
					return
				default:
				}
				o := orders[i%len(orders)]
				_ = e.SubmitOrder(&model.Order{
					ID:         model.OrderID(int(o.ID) + i*100000),
					Restaurant: o.Restaurant, Customer: o.Customer,
					Items: o.Items, Prep: o.Prep, AssignedTo: -1,
				})
				time.Sleep(200 * time.Microsecond)
			}
		}(p)
	}

	// Ping producers: relocations + shift updates feed drainPings and the
	// learner's ObserveNode plane.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[i%len(ids)]
				_ = e.PingVehicle(id, roadnet.NodeID(i%city.G.NumNodes()))
				if i%17 == 0 {
					_ = e.SetVehicleShift(id, start, start+4*3600)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}(p)
	}

	// Traffic plane: forced mid-round epoch swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			learner.ObserveEdge(roadnet.NodeID(i%16), city.G.OutEdges(roadnet.NodeID(i % 16))[0].To,
				start+float64(i), 30)
			e.RefreshWeights()
			time.Sleep(time.Millisecond)
		}
	}()

	// Readers over every concurrent surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub := e.Subscribe(64)
		defer sub.Cancel()
		for {
			select {
			case <-stop:
				return
			case <-sub.C:
			default:
				_ = e.Snapshot()
				_ = e.Roadnet()
				_ = e.Clock()
				_ = e.Idle()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	deadline := time.After(10 * time.Second)
	for e.Snapshot().Rounds < 8 {
		select {
		case <-deadline:
			t.Fatal("engine made no progress under concurrent load")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	e.Stop()

	snap := e.Snapshot()
	if snap.Rounds < 8 {
		t.Fatalf("rounds %d after stop", snap.Rounds)
	}
	if st := e.Roadnet(); !st.Dynamic {
		t.Fatal("dynamic plane lost")
	}
}

// TestEngineStepConcurrentRefresh drives deterministic Steps while another
// goroutine forces weight publishes — the mid-round swap path with no
// real-time clock involved (fast enough for -race on every CI run).
func TestEngineStepConcurrentRefresh(t *testing.T) {
	city := testCityB
	learner := gps.NewStreamLearner(city.G, gps.StreamOptions{})
	fleet := city.Fleet(0.5, testConfig().MaxO, 1)
	start := 19.0 * 3600
	orders := workload.OrderStreamWindow(city, 1, start, start+900)
	e, err := New(city.G, fleet, Config{
		Pipeline: testConfig(), Shards: 2,
		QueueSize: len(orders) + 16,
		Learner:   learner, WeightRefreshSec: 1e12, MinSamples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			learner.ObserveEdge(roadnet.NodeID(i%8), city.G.OutEdges(roadnet.NodeID(i % 8))[0].To,
				start+float64(i%600), 25)
			e.RefreshWeights()
		}
	}()
	next := 0
	delta := e.cfg.Pipeline.Delta
	for now := start + delta; now < start+3600; now += delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			if err := e.SubmitOrder(orders[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		e.Step(now)
	}
	close(stop)
	wg.Wait()
	if ep := e.Roadnet().Epoch; ep == 0 {
		t.Fatal("no epoch published during concurrent refresh")
	}
}
