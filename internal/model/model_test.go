package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/roadnet"
)

func mkOrder(id OrderID, r, c roadnet.NodeID) *Order {
	return &Order{ID: id, Restaurant: r, Customer: c, Items: 1, Prep: 300, PlacedAt: 100, SDT: 400}
}

func TestOrderStateString(t *testing.T) {
	states := map[OrderState]string{
		OrderPlaced:    "placed",
		OrderAssigned:  "assigned",
		OrderPickedUp:  "picked-up",
		OrderDelivered: "delivered",
		OrderRejected:  "rejected",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("state %d String() = %q, want %q", s, s.String(), want)
		}
	}
	if OrderState(99).String() == "" {
		t.Error("unknown state must still stringify")
	}
}

func TestOrderTimings(t *testing.T) {
	o := mkOrder(1, 2, 3)
	if got := o.ReadyAt(); got != 400 {
		t.Fatalf("ReadyAt = %v, want 400", got)
	}
	o.DeliveredAt = 1000
	if got := o.DeliveryTime(); got != 900 {
		t.Fatalf("DeliveryTime = %v, want 900", got)
	}
	if got := o.XDT(); got != 500 {
		t.Fatalf("XDT = %v, want 500", got)
	}
}

func TestRoutePlanValidateGood(t *testing.T) {
	o1 := mkOrder(1, 10, 20)
	o2 := mkOrder(2, 11, 21)
	rp := &RoutePlan{Stops: []Stop{
		{Node: 10, Order: o1, Kind: Pickup},
		{Node: 11, Order: o2, Kind: Pickup},
		{Node: 20, Order: o1, Kind: Dropoff},
		{Node: 21, Order: o2, Kind: Dropoff},
	}}
	if err := rp.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestRoutePlanValidateDropoffBeforePickup(t *testing.T) {
	o := mkOrder(1, 10, 20)
	rp := &RoutePlan{Stops: []Stop{
		{Node: 20, Order: o, Kind: Dropoff},
		{Node: 10, Order: o, Kind: Pickup},
	}}
	if err := rp.Validate(); err == nil {
		t.Fatal("dropoff-before-pickup plan accepted")
	}
}

func TestRoutePlanValidateOnboardDropoffOnly(t *testing.T) {
	o := mkOrder(1, 10, 20)
	o.State = OrderPickedUp
	rp := &RoutePlan{Stops: []Stop{{Node: 20, Order: o, Kind: Dropoff}}}
	if err := rp.Validate(); err != nil {
		t.Fatalf("dropoff-only plan for onboard order rejected: %v", err)
	}
}

func TestRoutePlanValidateMissingDropoff(t *testing.T) {
	o := mkOrder(1, 10, 20)
	rp := &RoutePlan{Stops: []Stop{{Node: 10, Order: o, Kind: Pickup}}}
	if err := rp.Validate(); err == nil {
		t.Fatal("pickup-without-dropoff plan accepted")
	}
}

func TestRoutePlanValidateWrongNodes(t *testing.T) {
	o := mkOrder(1, 10, 20)
	rp := &RoutePlan{Stops: []Stop{
		{Node: 99, Order: o, Kind: Pickup},
		{Node: 20, Order: o, Kind: Dropoff},
	}}
	if err := rp.Validate(); err == nil {
		t.Fatal("pickup at wrong node accepted")
	}
}

func TestRoutePlanOrdersAndClone(t *testing.T) {
	o1 := mkOrder(1, 10, 20)
	o2 := mkOrder(2, 11, 21)
	rp := &RoutePlan{Stops: []Stop{
		{Node: 10, Order: o1, Kind: Pickup},
		{Node: 11, Order: o2, Kind: Pickup},
		{Node: 20, Order: o1, Kind: Dropoff},
		{Node: 21, Order: o2, Kind: Dropoff},
	}}
	orders := rp.Orders()
	if len(orders) != 2 || orders[0].ID != 1 || orders[1].ID != 2 {
		t.Fatalf("Orders() = %v", orders)
	}
	c := rp.Clone()
	c.Stops[0].Node = 999
	if rp.Stops[0].Node == 999 {
		t.Fatal("Clone shares stop storage")
	}
	var nilPlan *RoutePlan
	if !nilPlan.Empty() || nilPlan.Clone() != nil || nilPlan.Orders() != nil {
		t.Fatal("nil plan helpers misbehave")
	}
}

func TestVehicleCapacity(t *testing.T) {
	cfg := DefaultConfig()
	v := NewVehicle(1, 5, cfg.MaxO)
	if v.OrderCount() != 0 || v.ItemCount() != 0 {
		t.Fatal("fresh vehicle not empty")
	}
	o1 := mkOrder(1, 10, 20)
	o1.Items = 4
	o2 := mkOrder(2, 11, 21)
	o2.Items = 4
	v.Onboard = append(v.Onboard, o1)
	v.Pending = append(v.Pending, o2)
	if v.OrderCount() != 2 || v.ItemCount() != 8 {
		t.Fatalf("count=%d items=%d", v.OrderCount(), v.ItemCount())
	}
	o3 := mkOrder(3, 12, 22)
	o3.Items = 4
	if CanCarry(v.OrderCount(), v.ItemCount(), []*Order{o3}, cfg) {
		t.Fatal("MAXI=10 violated but CanCarry accepted")
	}
	o3.Items = 2
	if !CanCarry(v.OrderCount(), v.ItemCount(), []*Order{o3}, cfg) {
		t.Fatal("feasible add rejected")
	}
	o4 := mkOrder(4, 13, 23)
	o4.Items = 1
	if CanCarry(v.OrderCount(), v.ItemCount(), []*Order{o3, o4}, cfg) {
		t.Fatal("MAXO=3 violated but CanCarry accepted")
	}
}

func TestVehicleActiveWindow(t *testing.T) {
	v := NewVehicle(1, 0, 3)
	if !v.Active(0) || !v.Active(1e9) {
		t.Fatal("default shift should be always-on")
	}
	v.ActiveFrom, v.ActiveTo = 100, 200
	if v.Active(99) || !v.Active(100) || !v.Active(199) || v.Active(200) {
		t.Fatal("shift boundaries wrong")
	}
}

func TestBatchFirstPickup(t *testing.T) {
	o1 := mkOrder(1, 10, 20)
	o2 := mkOrder(2, 11, 21)
	b := &Batch{
		Orders: []*Order{o1, o2},
		Plan: &RoutePlan{Stops: []Stop{
			{Node: 11, Order: o2, Kind: Pickup},
			{Node: 10, Order: o1, Kind: Pickup},
			{Node: 20, Order: o1, Kind: Dropoff},
			{Node: 21, Order: o2, Kind: Dropoff},
		}},
	}
	if b.First().ID != 2 {
		t.Fatalf("First = %d, want 2", b.First().ID)
	}
	if b.FirstPickupNode() != 11 {
		t.Fatalf("FirstPickupNode = %d, want 11", b.FirstPickupNode())
	}
	if b.Items() != 2 {
		t.Fatalf("Items = %d, want 2", b.Items())
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Delta != 180 {
		t.Errorf("Delta = %v, want 180 (3 min)", c.Delta)
	}
	if c.Eta != 60 {
		t.Errorf("Eta = %v, want 60 s", c.Eta)
	}
	if c.Gamma != 0.5 {
		t.Errorf("Gamma = %v, want 0.5", c.Gamma)
	}
	if c.KFactor != 200 {
		t.Errorf("KFactor = %v, want 200", c.KFactor)
	}
	if c.MaxO != 3 {
		t.Errorf("MaxO = %d, want 3", c.MaxO)
	}
	if c.MaxI != 10 {
		t.Errorf("MaxI = %d, want 10", c.MaxI)
	}
	if c.Omega != 7200 {
		t.Errorf("Omega = %v, want 7200 s (2 h)", c.Omega)
	}
	if c.RejectAfter != 1800 {
		t.Errorf("RejectAfter = %v, want 1800 s (30 min)", c.RejectAfter)
	}
	if c.MaxFirstMile != 2700 {
		t.Errorf("MaxFirstMile = %v, want 2700 s (45 min)", c.MaxFirstMile)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.Eta = -1 },
		func(c *Config) { c.Gamma = 1.5 },
		func(c *Config) { c.MaxO = 0 },
		func(c *Config) { c.MaxI = 0 },
		func(c *Config) { c.Omega = 0 },
		func(c *Config) { c.RejectAfter = 0 },
		func(c *Config) { c.MaxFirstMile = 0 },
		func(c *Config) { c.KFactor = 0 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted by Validate", i)
		}
	}
}

func TestConfigClone(t *testing.T) {
	c := DefaultConfig()
	d := c.Clone()
	d.Gamma = 0.9
	if c.Gamma == 0.9 {
		t.Fatal("Clone shares storage")
	}
	if !math.IsInf(c.BatchRadius, 1) {
		t.Fatal("default BatchRadius should be +Inf (full order graph)")
	}
}

func TestCanCarryProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(base uint8, items uint8, addN uint8, addItems uint8) bool {
		baseOrders := int(base % 4)
		baseItems := int(items % 11)
		n := int(addN%3) + 1
		var add []*Order
		total := 0
		for i := 0; i < n; i++ {
			it := int(addItems%4) + 1
			total += it
			add = append(add, &Order{ID: OrderID(i), Items: it})
		}
		got := CanCarry(baseOrders, baseItems, add, cfg)
		want := baseOrders+n <= cfg.MaxO && baseItems+total <= cfg.MaxI
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutePlanOrdersPreservesFirstTouchOrder(t *testing.T) {
	o1 := mkOrder(1, 10, 20)
	o2 := mkOrder(2, 11, 21)
	o3 := mkOrder(3, 12, 22)
	rp := &RoutePlan{Stops: []Stop{
		{Node: 11, Order: o2, Kind: Pickup},
		{Node: 10, Order: o1, Kind: Pickup},
		{Node: 12, Order: o3, Kind: Pickup},
		{Node: 21, Order: o2, Kind: Dropoff},
		{Node: 20, Order: o1, Kind: Dropoff},
		{Node: 22, Order: o3, Kind: Dropoff},
	}}
	got := rp.Orders()
	if len(got) != 3 || got[0].ID != 2 || got[1].ID != 1 || got[2].ID != 3 {
		t.Fatalf("first-touch order broken: %v", got)
	}
}
