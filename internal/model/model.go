// Package model defines the food-delivery domain objects shared by every
// layer of the pipeline: orders (Definition 2), delivery vehicles, order
// batches, and the operational configuration (MAXO, MAXI, Ω, the 45-minute
// delivery guarantee and the 30-minute rejection rule of Section V-B).
package model

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// OrderID identifies an order.
type OrderID int64

// VehicleID identifies a delivery vehicle.
type VehicleID int32

// OrderState tracks an order through its lifecycle.
type OrderState int8

// Order lifecycle states.
const (
	OrderPlaced    OrderState = iota // placed, not yet assigned
	OrderAssigned                    // assigned to a vehicle, not picked up (reshufflable)
	OrderPickedUp                    // on a vehicle
	OrderDelivered                   // dropped off
	OrderRejected                    // unassigned past the rejection deadline
)

// String implements fmt.Stringer.
func (s OrderState) String() string {
	switch s {
	case OrderPlaced:
		return "placed"
	case OrderAssigned:
		return "assigned"
	case OrderPickedUp:
		return "picked-up"
	case OrderDelivered:
		return "delivered"
	case OrderRejected:
		return "rejected"
	default:
		return fmt.Sprintf("OrderState(%d)", int8(s))
	}
}

// Order is a food order o = ⟨oʳ, oᶜ, oᵗ, oⁱ, oᵖ⟩ per Definition 2, plus
// lifecycle bookkeeping maintained by the simulator.
type Order struct {
	ID         OrderID
	Restaurant roadnet.NodeID // oʳ: pick-up node
	Customer   roadnet.NodeID // oᶜ: drop-off node
	PlacedAt   float64        // oᵗ: request time, seconds since midnight
	Items      int            // oⁱ: number of items
	Prep       float64        // oᵖ: expected preparation time, seconds

	// SDT caches the shortest delivery time oᵖ + SP(oʳ,oᶜ,oᵗ) (Definition 6),
	// the lower bound that XDT is measured against. Set once at admission.
	SDT float64

	// Lifecycle, maintained by the simulator.
	State       OrderState
	AssignedTo  VehicleID // valid when State ≥ OrderAssigned
	AssignedAt  float64
	PickedUpAt  float64
	DeliveredAt float64
}

// ReadyAt returns the time the food is ready for pickup.
func (o *Order) ReadyAt() float64 { return o.PlacedAt + o.Prep }

// DeliveryTime returns the realised delivery duration, valid once delivered.
func (o *Order) DeliveryTime() float64 { return o.DeliveredAt - o.PlacedAt }

// XDT returns the realised extra delivery time (Definition 7), valid once
// delivered.
func (o *Order) XDT() float64 { return o.DeliveryTime() - o.SDT }

// StopKind distinguishes route-plan stop types.
type StopKind int8

// Stop kinds.
const (
	Pickup StopKind = iota
	Dropoff
)

// Stop is one element of a route plan: visit Node and either pick up or drop
// off Order there.
type Stop struct {
	Node  roadnet.NodeID
	Order *Order
	Kind  StopKind
}

// RoutePlan is a sequence of pickup/dropoff stops (Definition 3). Invariant:
// each order's pickup appears before its dropoff; orders already picked up
// contribute a dropoff-only stop.
type RoutePlan struct {
	Stops []Stop
}

// Empty reports whether the plan has no stops.
func (rp *RoutePlan) Empty() bool { return rp == nil || len(rp.Stops) == 0 }

// Clone returns a deep copy of the stop sequence (Order pointers shared).
func (rp *RoutePlan) Clone() *RoutePlan {
	if rp == nil {
		return nil
	}
	c := &RoutePlan{Stops: make([]Stop, len(rp.Stops))}
	copy(c.Stops, rp.Stops)
	return c
}

// Orders returns the distinct orders touched by the plan, in first-touch
// order.
func (rp *RoutePlan) Orders() []*Order {
	if rp == nil {
		return nil
	}
	seen := make(map[OrderID]bool, len(rp.Stops))
	var out []*Order
	for _, s := range rp.Stops {
		if !seen[s.Order.ID] {
			seen[s.Order.ID] = true
			out = append(out, s.Order)
		}
	}
	return out
}

// Validate checks the pickup-before-dropoff invariant and that every dropoff
// has a pickup unless the order is already on board.
func (rp *RoutePlan) Validate() error {
	picked := make(map[OrderID]bool)
	dropped := make(map[OrderID]bool)
	for i, s := range rp.Stops {
		switch s.Kind {
		case Pickup:
			if s.Order.State == OrderPickedUp {
				return fmt.Errorf("stop %d: pickup of already picked-up order %d", i, s.Order.ID)
			}
			if picked[s.Order.ID] {
				return fmt.Errorf("stop %d: duplicate pickup of order %d", i, s.Order.ID)
			}
			if s.Node != s.Order.Restaurant {
				return fmt.Errorf("stop %d: pickup node %d != restaurant %d", i, s.Node, s.Order.Restaurant)
			}
			picked[s.Order.ID] = true
		case Dropoff:
			if dropped[s.Order.ID] {
				return fmt.Errorf("stop %d: duplicate dropoff of order %d", i, s.Order.ID)
			}
			if !picked[s.Order.ID] && s.Order.State != OrderPickedUp {
				return fmt.Errorf("stop %d: dropoff of order %d before pickup", i, s.Order.ID)
			}
			if s.Node != s.Order.Customer {
				return fmt.Errorf("stop %d: dropoff node %d != customer %d", i, s.Node, s.Order.Customer)
			}
			dropped[s.Order.ID] = true
		default:
			return fmt.Errorf("stop %d: unknown kind %d", i, s.Kind)
		}
	}
	for id := range picked {
		if !dropped[id] {
			return fmt.Errorf("order %d picked up but never dropped off", id)
		}
	}
	return nil
}

// Vehicle is a delivery vehicle with its runtime state.
type Vehicle struct {
	ID VehicleID

	// Node is the vehicle's current (approximated) road-network node; the
	// paper snaps off-network positions to the nearest node.
	Node roadnet.NodeID

	// EdgeTo / EdgeProgress describe mid-edge positions while moving:
	// the vehicle is EdgeProgress seconds of travel into the edge
	// Node -> EdgeTo. EdgeTo == roadnet.Invalid when exactly on Node.
	EdgeTo       roadnet.NodeID
	EdgeProgress float64

	// Plan is the active route plan; Leg is the precomputed node path for
	// the current leg (to Plan.Stops[0].Node), consumed by the simulator.
	Plan *RoutePlan

	// Onboard are picked-up, undelivered orders; Pending are assigned,
	// not-yet-picked-up orders (available for reshuffling).
	Onboard []*Order
	Pending []*Order

	// ActiveFrom/ActiveTo delimit the driver's shift in seconds since
	// midnight; outside it the vehicle accepts no work.
	ActiveFrom, ActiveTo float64

	// Statistics maintained by the simulator.
	DistM      float64   // total distance driven, metres
	DistByLoad []float64 // DistByLoad[k] = metres driven while carrying k orders
	WaitSec    float64   // total time waiting at restaurants
}

// NewVehicle creates an idle vehicle parked at node.
func NewVehicle(id VehicleID, node roadnet.NodeID, maxOrders int) *Vehicle {
	return &Vehicle{
		ID:         id,
		Node:       node,
		EdgeTo:     roadnet.Invalid,
		ActiveFrom: 0,
		ActiveTo:   math.Inf(1),
		DistByLoad: make([]float64, maxOrders+1),
	}
}

// Active reports whether the vehicle is on shift at time t.
func (v *Vehicle) Active(t float64) bool { return t >= v.ActiveFrom && t < v.ActiveTo }

// OrderCount returns |Oᵗᵥ|: orders currently tied to the vehicle (on board
// plus assigned-pending).
func (v *Vehicle) OrderCount() int { return len(v.Onboard) + len(v.Pending) }

// ItemCount returns the total items tied to the vehicle.
func (v *Vehicle) ItemCount() int {
	n := 0
	for _, o := range v.Onboard {
		n += o.Items
	}
	for _, o := range v.Pending {
		n += o.Items
	}
	return n
}

// CanCarry reports whether adding a set of orders respects MAXO and MAXI
// (the feasibility constraints of Definition 4). The base counts exclude
// pending orders when they are being reshuffled — callers pass the counts to
// measure against explicitly.
func CanCarry(baseOrders, baseItems int, add []*Order, cfg *Config) bool {
	items := baseItems
	for _, o := range add {
		items += o.Items
	}
	return baseOrders+len(add) <= cfg.MaxO && items <= cfg.MaxI
}

// Batch is a set of orders grouped for delivery by a single vehicle, with
// the quickest route plan for the set (starting at the plan's first pickup)
// and that plan's cost (Eq. 4 over the batch).
type Batch struct {
	Orders []*Order
	Plan   *RoutePlan
	Cost   float64
}

// First returns π[1]: the order picked up first in the batch's quickest
// route plan (Section IV-C1).
func (b *Batch) First() *Order {
	for _, s := range b.Plan.Stops {
		if s.Kind == Pickup {
			return s.Order
		}
	}
	// A batch of already-picked-up orders cannot occur (batches are built
	// from unpicked orders only), but fall back defensively.
	return b.Orders[0]
}

// FirstPickupNode returns π[1]ʳ, the node where the batch's route begins.
func (b *Batch) FirstPickupNode() roadnet.NodeID { return b.First().Restaurant }

// Items returns the batch's total item count.
func (b *Batch) Items() int {
	n := 0
	for _, o := range b.Orders {
		n += o.Items
	}
	return n
}

// Config carries every tunable of the system with the paper's defaults.
type Config struct {
	// Delta is the accumulation-window length ∆ in seconds (paper: 180 s for
	// Cities B/C, 60 s for City A).
	Delta float64
	// Eta is the batching quality cutoff η in seconds (paper: 60 s).
	Eta float64
	// Gamma weighs travel time against angular distance in Eq. 8 (paper: 0.5).
	Gamma float64
	// KFactor scales the FoodGraph degree bound: k = KFactor·|O(ℓ)|/|V(ℓ)|
	// (paper: 200).
	KFactor float64
	// KMin floors k so tiny windows still get a usable degree.
	KMin int
	// MaxO is MAXO, the max orders per vehicle (paper: 3).
	MaxO int
	// MaxI is MAXI, the max items per vehicle (paper: 10).
	MaxI int
	// Omega is the rejection penalty Ω in seconds (paper: 7200 s).
	Omega float64
	// RejectAfter is how long an order may stay unallocated before rejection
	// (paper: 30 min).
	RejectAfter float64
	// MaxFirstMile caps SP(loc(v,t), π[1]ʳ, t); beyond it the pairing cost is
	// Ω (paper: the 45-minute delivery guarantee).
	MaxFirstMile float64
	// BatchRadius prunes order-graph edges to pairs whose first pickups are
	// within this many seconds of travel; +Inf reproduces the paper's full
	// O(n²) order graph.
	BatchRadius float64

	// Optimization switches (Fig. 7(a) ablation): the full FOODMATCH enables
	// all four; vanilla KM disables all.
	Batching  bool
	Reshuffle bool
	BestFirst bool
	Angular   bool

	// AgeNeutralEdges subtracts sunk waiting age from FOODGRAPH edge
	// weights so overloaded windows defer by cost-to-serve instead of
	// starving the oldest orders (see foodgraph.Options.AgeNeutral).
	AgeNeutralEdges bool

	// ComputeBudget is the wall-clock budget per window used by the
	// overflown-window metric (Fig. 6(f-g)). The paper compares against
	// ∆ on a production-size city; scaled-down cities pair with a scaled
	// budget. Zero disables overflow accounting.
	ComputeBudget float64
}

// DefaultConfig returns the paper's operating point (Section V-B) for a
// metropolitan city.
func DefaultConfig() *Config {
	return &Config{
		Delta:           180,
		Eta:             60,
		Gamma:           0.5,
		KFactor:         200,
		KMin:            5,
		MaxO:            3,
		MaxI:            10,
		Omega:           7200,
		RejectAfter:     1800,
		MaxFirstMile:    2700,
		BatchRadius:     math.Inf(1),
		Batching:        true,
		Reshuffle:       true,
		BestFirst:       true,
		Angular:         true,
		AgeNeutralEdges: true,
		ComputeBudget:   0,
	}
}

// Validate sanity-checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Delta <= 0:
		return fmt.Errorf("config: Delta must be positive, got %v", c.Delta)
	case c.Eta < 0:
		return fmt.Errorf("config: Eta must be non-negative, got %v", c.Eta)
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("config: Gamma must lie in [0,1], got %v", c.Gamma)
	case c.MaxO < 1:
		return fmt.Errorf("config: MaxO must be at least 1, got %d", c.MaxO)
	case c.MaxI < 1:
		return fmt.Errorf("config: MaxI must be at least 1, got %d", c.MaxI)
	case c.Omega <= 0:
		return fmt.Errorf("config: Omega must be positive, got %v", c.Omega)
	case c.RejectAfter <= 0:
		return fmt.Errorf("config: RejectAfter must be positive, got %v", c.RejectAfter)
	case c.MaxFirstMile <= 0:
		return fmt.Errorf("config: MaxFirstMile must be positive, got %v", c.MaxFirstMile)
	case c.KFactor <= 0:
		return fmt.Errorf("config: KFactor must be positive, got %v", c.KFactor)
	}
	return nil
}

// Clone returns a copy of the config.
func (c *Config) Clone() *Config {
	d := *c
	return &d
}
