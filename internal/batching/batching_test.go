package batching

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// lineGraph builds a bidirectional path graph 0-1-2-...-(n-1) with unit edge
// time w seconds per hop.
func lineGraph(n int, w float64) (*roadnet.Graph, roadnet.SPFunc) {
	b := roadnet.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{Lat: float64(i) * 0.001})
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(roadnet.NodeID(i), roadnet.NodeID(i+1), w*10, w, 0)
		b.AddEdge(roadnet.NodeID(i+1), roadnet.NodeID(i), w*10, w, 0)
	}
	g := b.MustBuild()
	return g, roadnet.NewDistCache(g, math.Inf(1)).AsFunc()
}

func mkOrder(sp roadnet.SPFunc, id model.OrderID, r, c roadnet.NodeID, prep float64) *model.Order {
	o := &model.Order{ID: id, Restaurant: r, Customer: c, PlacedAt: 0, Items: 1, Prep: prep}
	o.SDT = routing.SDT(sp, o)
	return o
}

func defaultOpts() Options {
	return Options{Eta: 60, MaxO: 3, MaxI: 10, Radius: math.Inf(1), Now: 0}
}

func TestRunEmpty(t *testing.T) {
	_, sp := lineGraph(5, 10)
	res := Run(sp, nil, defaultOpts())
	if len(res.Batches) != 0 || res.Merges != 0 {
		t.Fatalf("empty run produced %+v", res)
	}
}

func TestRunSingleOrder(t *testing.T) {
	_, sp := lineGraph(5, 10)
	o := mkOrder(sp, 1, 0, 4, 60)
	res := Run(sp, []*model.Order{o}, defaultOpts())
	if len(res.Batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(res.Batches))
	}
	b := res.Batches[0]
	if len(b.Orders) != 1 || b.Orders[0].ID != 1 {
		t.Fatalf("batch = %+v", b)
	}
	if err := b.Plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
}

func TestRunMergesSameRestaurantOrders(t *testing.T) {
	// Two orders from node 0 to adjacent customers: a single vehicle barely
	// detours, so they must merge under a generous η.
	_, sp := lineGraph(10, 10)
	o1 := mkOrder(sp, 1, 0, 8, 0)
	o2 := mkOrder(sp, 2, 0, 9, 0)
	res := Run(sp, []*model.Order{o1, o2}, defaultOpts())
	if len(res.Batches) != 1 {
		t.Fatalf("got %d batches, want 1 (merged)", len(res.Batches))
	}
	if got := len(res.Batches[0].Orders); got != 2 {
		t.Fatalf("merged batch has %d orders", got)
	}
	if err := res.Batches[0].Plan.Validate(); err != nil {
		t.Fatalf("merged plan invalid: %v", err)
	}
}

func TestRunRespectsMaxO(t *testing.T) {
	_, sp := lineGraph(10, 1)
	var orders []*model.Order
	for i := 0; i < 5; i++ {
		orders = append(orders, mkOrder(sp, model.OrderID(i+1), 0, 9, 0))
	}
	opt := defaultOpts()
	opt.Eta = 1e9 // merge as much as allowed
	res := Run(sp, orders, opt)
	for _, b := range res.Batches {
		if len(b.Orders) > opt.MaxO {
			t.Fatalf("batch of %d orders exceeds MAXO=%d", len(b.Orders), opt.MaxO)
		}
	}
}

func TestRunRespectsMaxI(t *testing.T) {
	_, sp := lineGraph(10, 1)
	o1 := mkOrder(sp, 1, 0, 9, 0)
	o1.Items = 6
	o2 := mkOrder(sp, 2, 0, 9, 0)
	o2.Items = 6
	opt := defaultOpts()
	opt.Eta = 1e9
	res := Run(sp, []*model.Order{o1, o2}, opt)
	if len(res.Batches) != 2 {
		t.Fatalf("items 6+6 > MAXI=10 must not merge; got %d batches", len(res.Batches))
	}
}

func TestEtaStopsMergingWhenAvgAlreadyHigh(t *testing.T) {
	// Algorithm 1 checks AvgCost at the top of the loop: when the singleton
	// graph's average cost already exceeds η, no merge happens at all —
	// even for perfectly co-located orders. Orders placed long ago carry
	// assignment-delay XDT that puts the average above the cutoff.
	_, sp := lineGraph(10, 10)
	o1 := mkOrder(sp, 1, 0, 1, 0)
	o1.PlacedAt = -600
	o1.SDT = routing.SDT(sp, o1)
	o2 := mkOrder(sp, 2, 0, 2, 0)
	o2.PlacedAt = -600
	o2.SDT = routing.SDT(sp, o2)
	opt := defaultOpts()
	opt.Eta = 60 // singleton cost ≈ 600 s each ≫ η
	res := Run(sp, []*model.Order{o1, o2}, opt)
	if len(res.Batches) != 2 || res.Merges != 0 {
		t.Fatalf("merging proceeded with AvgCost above η: %d batches, %d merges",
			len(res.Batches), res.Merges)
	}
}

func TestEtaPeekAheadPreventsOvershootMerge(t *testing.T) {
	// The stopping rule peeks at the post-merge average: a merge that would
	// push AvgCost past η is not executed, even when the current average is
	// below the cutoff. (Algorithm 1 as printed checks before merging and
	// so always overshoots once; see the package comment for why we
	// deviate.)
	_, sp := lineGraph(40, 30)
	o1 := mkOrder(sp, 1, 0, 5, 0)
	o2 := mkOrder(sp, 2, 39, 34, 0)
	opt := defaultOpts()
	opt.Eta = 0.5
	res := Run(sp, []*model.Order{o1, o2}, opt)
	if len(res.Batches) != 2 || res.Merges != 0 {
		t.Fatalf("overshoot merge executed: %d batches, %d merges", len(res.Batches), res.Merges)
	}
}

func TestAgeNeutralIgnoresSunkDelay(t *testing.T) {
	// Two co-located old orders: their sunk queueing delay inflates the raw
	// AvgCost past η, but with AgeNeutral the tracked cost is detour-only
	// and the (cheap) merge proceeds.
	_, sp := lineGraph(10, 10)
	mk := func(id model.OrderID, c roadnet.NodeID) *model.Order {
		o := mkOrder(sp, id, 0, c, 0)
		o.PlacedAt = -600
		o.SDT = routing.SDT(sp, o)
		return o
	}
	o1, o2 := mk(1, 1), mk(2, 2)
	opt := defaultOpts()
	opt.Eta = 60
	res := Run(sp, []*model.Order{o1, o2}, opt)
	if res.Merges != 0 {
		t.Fatalf("raw costs should block merging (avg above η), got %d merges", res.Merges)
	}
	opt.AgeNeutral = true
	res = Run(sp, []*model.Order{o1, o2}, opt)
	if res.Merges != 1 {
		t.Fatalf("age-neutral costs should allow the cheap merge, got %d merges", res.Merges)
	}
}

func TestAvgCostMonotonic(t *testing.T) {
	// Theorem 2: AvgCost never decreases across iterations.
	rng := rand.New(rand.NewSource(77))
	_, sp := lineGraph(30, 15)
	for trial := 0; trial < 30; trial++ {
		var orders []*model.Order
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			r := roadnet.NodeID(rng.Intn(30))
			c := roadnet.NodeID(rng.Intn(30))
			orders = append(orders, mkOrder(sp, model.OrderID(i+1), r, c, float64(rng.Intn(300))))
		}
		opt := defaultOpts()
		opt.Eta = 1e9
		res := Run(sp, orders, opt)
		for i := 1; i < len(res.AvgCostTrace); i++ {
			if res.AvgCostTrace[i] < res.AvgCostTrace[i-1]-1e-6 {
				t.Fatalf("trial %d: AvgCost decreased %v -> %v (trace %v)",
					trial, res.AvgCostTrace[i-1], res.AvgCostTrace[i], res.AvgCostTrace)
			}
		}
	}
}

func TestBatchesPartitionOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, sp := lineGraph(25, 20)
	var orders []*model.Order
	for i := 0; i < 12; i++ {
		r := roadnet.NodeID(rng.Intn(25))
		c := roadnet.NodeID(rng.Intn(25))
		orders = append(orders, mkOrder(sp, model.OrderID(i+1), r, c, float64(rng.Intn(600))))
	}
	res := Run(sp, orders, defaultOpts())
	seen := make(map[model.OrderID]int)
	for _, b := range res.Batches {
		for _, o := range b.Orders {
			seen[o.ID]++
		}
		if err := b.Plan.Validate(); err != nil {
			t.Fatalf("batch plan invalid: %v", err)
		}
	}
	if len(seen) != len(orders) {
		t.Fatalf("batches cover %d of %d orders", len(seen), len(orders))
	}
	for id, k := range seen {
		if k != 1 {
			t.Fatalf("order %d appears in %d batches", id, k)
		}
	}
}

func TestRadiusPruning(t *testing.T) {
	// With a tight radius, only co-located orders merge even under huge η.
	_, sp := lineGraph(60, 30)
	o1 := mkOrder(sp, 1, 0, 2, 0)
	o2 := mkOrder(sp, 2, 1, 3, 0)
	o3 := mkOrder(sp, 3, 59, 57, 0)
	opt := defaultOpts()
	opt.Eta = 1e9
	opt.Radius = 60 // two hops
	res := Run(sp, []*model.Order{o1, o2, o3}, opt)
	if len(res.Batches) != 2 {
		t.Fatalf("want {o1,o2} + {o3}, got %d batches", len(res.Batches))
	}
	for _, b := range res.Batches {
		for _, o := range b.Orders {
			if o.ID == 3 && len(b.Orders) != 1 {
				t.Fatal("distant order merged despite radius pruning")
			}
		}
	}
}

func TestUnreachableOrderSurvivesAsDegenerateBatch(t *testing.T) {
	// One-way edge: customer can't be reached from restaurant.
	b := roadnet.NewBuilder()
	u := b.AddNode(geo.Point{})
	v := b.AddNode(geo.Point{Lat: 1})
	b.AddEdge(v, u, 10, 10, 0) // only v -> u
	g := b.MustBuild()
	sp := roadnet.NewDistCache(g, math.Inf(1)).AsFunc()
	o := &model.Order{ID: 1, Restaurant: u, Customer: v, PlacedAt: 0, Items: 1}
	o.SDT = math.Inf(1)
	res := Run(sp, []*model.Order{o}, defaultOpts())
	if len(res.Batches) != 1 {
		t.Fatalf("unreachable order dropped; batches = %d", len(res.Batches))
	}
	if !math.IsInf(res.Batches[0].Cost, 1) {
		t.Fatalf("degenerate batch cost = %v, want +Inf", res.Batches[0].Cost)
	}
}

func TestMergedCostIdentity(t *testing.T) {
	// Cost(π_ij) = Cost(π_i) + Cost(π_j) + w(i,j): checked implicitly by
	// sumCost bookkeeping; verify the final AvgCost equals a recomputation.
	rng := rand.New(rand.NewSource(11))
	_, sp := lineGraph(20, 10)
	var orders []*model.Order
	for i := 0; i < 8; i++ {
		orders = append(orders, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(rng.Intn(20)), roadnet.NodeID(rng.Intn(20)), float64(rng.Intn(120))))
	}
	res := Run(sp, orders, defaultOpts())
	sum := 0.0
	for _, b := range res.Batches {
		sum += b.Cost
	}
	want := sum / float64(len(res.Batches))
	if math.Abs(res.AvgCost-want) > 1e-6 {
		t.Fatalf("AvgCost = %v, recomputed = %v", res.AvgCost, want)
	}
}
