package batching

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/roadnet"
)

// benchOrders builds a reproducible pool of n orders on a line city.
func benchOrders(n int) (roadnet.SPFunc, []*model.Order) {
	_, sp := lineGraph(120, 20)
	rng := rand.New(rand.NewSource(99))
	var orders []*model.Order
	for i := 0; i < n; i++ {
		orders = append(orders, mkOrder(sp, model.OrderID(i+1),
			roadnet.NodeID(rng.Intn(120)), roadnet.NodeID(rng.Intn(120)),
			float64(rng.Intn(600))))
	}
	return sp, orders
}

func benchmarkRun(b *testing.B, n int, radius float64) {
	sp, orders := benchOrders(n)
	opt := defaultOpts()
	opt.Radius = radius
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(sp, orders, opt)
	}
}

func BenchmarkBatching30Full(b *testing.B)   { benchmarkRun(b, 30, math.Inf(1)) }
func BenchmarkBatching60Full(b *testing.B)   { benchmarkRun(b, 60, math.Inf(1)) }
func BenchmarkBatching60Radius(b *testing.B) { benchmarkRun(b, 60, 600) }
func BenchmarkBatching120Full(b *testing.B)  { benchmarkRun(b, 120, math.Inf(1)) }
