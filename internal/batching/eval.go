package batching

import (
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// evalPlan evaluates a fixed plan from a fixed start (thin wrapper around
// routing.Evaluate, kept local so the algorithm reads top-down).
func evalPlan(sp roadnet.SPFunc, start roadnet.NodeID, now float64, plan *model.RoutePlan) (float64, bool) {
	return routing.Evaluate(sp, start, now, plan)
}

// optimizeFixedStart finds the quickest route plan for the order set with
// the simulated vehicle parked at `start`.
func optimizeFixedStart(sp roadnet.SPFunc, start roadnet.NodeID, now float64, orders []*model.Order) (*model.RoutePlan, float64, bool) {
	return routing.Optimize(sp, start, now, nil, orders)
}
