// Package batching groups unassigned orders into batches by iterative
// clustering of the order graph (Section IV-B, Algorithm 1).
//
// Each node of the order graph is a batch π with the quickest route plan for
// its order set, the simulated vehicle starting at the plan's first pickup.
// Two batches are connected when merging them respects MAXO and MAXI; the
// edge weight w(i,j) = Cost(π_{ij}) − Cost(π_i) − Cost(π_j) (Eq. 5) is the
// extra delivery time the merge inflicts. The algorithm repeatedly merges
// the minimum-weight edge until the average batch cost (Eq. 6) exceeds the
// quality cutoff η or no mergeable edge remains.
//
// Theorem 2 guarantees w(i,j) ≥ 0, so AvgCost is non-decreasing and the
// process converges; the property is asserted under test.
//
// Note on the stopping rule: Algorithm 1 line 6 in the paper reads
// "AvgCost/|Π(r)| > η", dividing the already-averaged Eq. 6 by |Π| a second
// time; the surrounding prose ("stop when the average quality of batches
// falls below a certain threshold") and the η=60 s operating point only make
// sense for the single division, so we implement AvgCost > η.
package batching

import (
	"container/heap"
	"math"

	"repro/internal/model"
	"repro/internal/roadnet"
)

// Options configures a batching run.
type Options struct {
	// Eta is the AvgCost cutoff η in seconds.
	Eta float64
	// AgeNeutral removes each order's sunk queueing delay (the time it has
	// already waited beyond its prep time) from the tracked batch costs, so
	// that η budgets the *detour* a merge inflicts rather than history the
	// clustering cannot influence. Without it, a backlog of old orders
	// pushes AvgCost past η instantly and batching disables itself exactly
	// under the overload it exists to relieve. Merge weights w(i,j) are
	// unaffected (the constants cancel in Eq. 5), so Theorem 2 still holds.
	AgeNeutral bool
	// MaxO / MaxI are the vehicle capacity limits of Definition 4.
	MaxO, MaxI int
	// Radius prunes candidate pairs to those whose first-pickup nodes are
	// within Radius seconds of network travel; +Inf keeps the paper's full
	// O(n²) order graph.
	Radius float64
	// Now is the clock used for route-plan evaluation (window end).
	Now float64
}

// Result is the outcome of one batching run.
type Result struct {
	Batches []*model.Batch
	// Merges is the number of merge iterations performed.
	Merges int
	// AvgCost is the final average batch cost (Eq. 6).
	AvgCost float64
	// AvgCostTrace records AvgCost after each iteration (index 0 = initial
	// singleton graph); used to verify Theorem 2's monotonicity.
	AvgCostTrace []float64
}

// batchNode is a live node of the order graph.
type batchNode struct {
	batch   *model.Batch
	version int  // bumped on every mutation; stale heap entries are skipped
	dead    bool // merged away
}

// mergeEdge is a candidate merge in the lazy-deletion heap.
type mergeEdge struct {
	i, j   int // node indices
	vi, vj int // node versions at insertion
	w      float64
}

type edgeHeap []mergeEdge

func (h edgeHeap) Len() int            { return len(h) }
func (h edgeHeap) Less(a, b int) bool  { return h[a].w < h[b].w }
func (h edgeHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEdge)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run executes Algorithm 1 over the window's unassigned orders and returns
// the order partition U1 (batches with their route plans). Distances come
// from the injected Router (any roadnet.SPFunc is one).
func Run(rt roadnet.Router, orders []*model.Order, opt Options) *Result {
	sp := rt.Travel
	res := &Result{}
	if len(orders) == 0 {
		return res
	}

	agePenalty := func(orders []*model.Order) float64 {
		if !opt.AgeNeutral {
			return 0
		}
		p := 0.0
		for _, o := range orders {
			if d := opt.Now - o.ReadyAt(); d > 0 {
				p += d
			}
		}
		return p
	}

	nodes := make([]*batchNode, 0, len(orders))
	sumCost := 0.0 // tracked (possibly age-neutralised) total batch cost
	for _, o := range orders {
		b, ok := singleton(sp, o, opt.Now)
		if !ok {
			// An order whose own restaurant→customer leg is unreachable can
			// never be routed; emit it as a degenerate batch so the caller's
			// rejection machinery deals with it.
			b = &model.Batch{Orders: []*model.Order{o}, Plan: &model.RoutePlan{Stops: []model.Stop{
				{Node: o.Restaurant, Order: o, Kind: model.Pickup},
				{Node: o.Customer, Order: o, Kind: model.Dropoff},
			}}, Cost: math.Inf(1)}
		}
		nodes = append(nodes, &batchNode{batch: b})
		if !math.IsInf(b.Cost, 1) {
			sumCost += b.Cost - agePenalty(b.Orders)
		}
	}
	liveCount := len(nodes)
	res.AvgCostTrace = append(res.AvgCostTrace, sumCost/float64(liveCount))

	// With a finite radius the O(n²) candidate loop probes pairwise
	// first-pickup distances; precompute them with one many-to-many query
	// per distinct restaurant instead of one point query per ordered pair.
	// Merged batches always start at some member order's restaurant, so the
	// table stays closed under merges.
	var radii *radiusTable
	if !math.IsInf(opt.Radius, 1) {
		radii = newRadiusTable(rt, orders, opt.Now)
	}

	h := &edgeHeap{}
	// Initial candidate edges.
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			pushEdge(sp, radii, h, nodes, i, j, opt)
		}
	}

	for h.Len() > 0 && liveCount > 1 {
		e := heap.Pop(h).(mergeEdge)
		ni, nj := nodes[e.i], nodes[e.j]
		if ni.dead || nj.dead || ni.version != e.vi || nj.version != e.vj {
			continue // stale
		}
		// Stopping criterion: stop when even the cheapest merge would push
		// the average batch cost past η. (Algorithm 1 as printed checks the
		// *pre-merge* average, which always executes one overshoot merge —
		// systematically one bad merge per window; we peek ahead instead,
		// which is what the prose "stop when the average quality of batches
		// falls below a threshold" asks for.)
		if (sumCost+e.w)/float64(liveCount-1) > opt.Eta {
			break
		}
		merged, ok := mergeBatches(sp, ni.batch, nj.batch, opt.Now)
		if !ok {
			continue
		}
		// Cost(π_ij) = Cost(π_i) + Cost(π_j) + w(i,j); all known — O(1).
		ni.dead, nj.dead = true, true
		liveCount--
		sumCost += merged.Cost - agePenalty(merged.Orders) -
			(ni.batch.Cost - agePenalty(ni.batch.Orders)) -
			(nj.batch.Cost - agePenalty(nj.batch.Orders))
		nodes = append(nodes, &batchNode{batch: merged})
		mi := len(nodes) - 1
		res.Merges++
		res.AvgCostTrace = append(res.AvgCostTrace, sumCost/float64(liveCount))
		// Connect the merged node to all live nodes.
		for k := 0; k < mi; k++ {
			if !nodes[k].dead {
				pushEdge(sp, radii, h, nodes, k, mi, opt)
			}
		}
	}

	for _, n := range nodes {
		if !n.dead {
			res.Batches = append(res.Batches, n.batch)
		}
	}
	res.AvgCost = sumCost / float64(liveCount)
	return res
}

// singleton builds the batch {o} with its (trivial) optimal route plan; the
// simulated vehicle starts at the restaurant, so Cost is the wait-free XDT
// baseline of delivering o alone (0 when prep dominates).
func singleton(sp roadnet.SPFunc, o *model.Order, now float64) (*model.Batch, bool) {
	plan := &model.RoutePlan{Stops: []model.Stop{
		{Node: o.Restaurant, Order: o, Kind: model.Pickup},
		{Node: o.Customer, Order: o, Kind: model.Dropoff},
	}}
	cost, ok := evalPlan(sp, o.Restaurant, now, plan)
	if !ok {
		return nil, false
	}
	return &model.Batch{Orders: []*model.Order{o}, Plan: plan, Cost: cost}, true
}

// radiusTable memoises pairwise travel times between the window's distinct
// restaurant nodes — the universe every batch's first pickup is drawn from —
// with one many-to-many query per node instead of one point query per
// ordered candidate pair.
type radiusTable struct {
	rt   roadnet.Router
	now  float64
	pos  map[roadnet.NodeID]int32
	rows [][]float64
}

func newRadiusTable(rt roadnet.Router, orders []*model.Order, now float64) *radiusTable {
	t := &radiusTable{rt: rt, now: now, pos: make(map[roadnet.NodeID]int32)}
	var nodes []roadnet.NodeID
	for _, o := range orders {
		if _, ok := t.pos[o.Restaurant]; !ok {
			t.pos[o.Restaurant] = int32(len(nodes))
			nodes = append(nodes, o.Restaurant)
		}
	}
	t.rows = make([][]float64, len(nodes))
	for i, u := range nodes {
		t.rows[i] = roadnet.TravelMany(rt, u, nodes, now)
	}
	return t
}

// dist returns SP(u,v,now); nodes outside the table (impossible for batches
// built from this window's orders, but cheap to keep correct) fall back to a
// point query.
func (t *radiusTable) dist(u, v roadnet.NodeID) float64 {
	iu, uok := t.pos[u]
	iv, vok := t.pos[v]
	if uok && vok {
		return t.rows[iu][iv]
	}
	return t.rt.Travel(u, v, t.now)
}

// pushEdge evaluates the merge of nodes i and j and, when feasible, pushes
// the candidate edge onto the heap. radii is non-nil iff opt.Radius is
// finite.
func pushEdge(sp roadnet.SPFunc, radii *radiusTable, h *edgeHeap, nodes []*batchNode, i, j int, opt Options) {
	bi, bj := nodes[i].batch, nodes[j].batch
	if len(bi.Orders)+len(bj.Orders) > opt.MaxO {
		return
	}
	if bi.Items()+bj.Items() > opt.MaxI {
		return
	}
	if math.IsInf(bi.Cost, 1) || math.IsInf(bj.Cost, 1) {
		return
	}
	if radii != nil {
		d := radii.dist(bi.FirstPickupNode(), bj.FirstPickupNode())
		dr := radii.dist(bj.FirstPickupNode(), bi.FirstPickupNode())
		if d > opt.Radius && dr > opt.Radius {
			return
		}
	}
	merged, ok := mergeBatches(sp, bi, bj, opt.Now)
	if !ok {
		return
	}
	w := merged.Cost - bi.Cost - bj.Cost
	heap.Push(h, mergeEdge{i: i, j: j, vi: nodes[i].version, vj: nodes[j].version, w: w})
}

// mergeBatches computes the batch π_i ∪ π_j with its optimal route plan,
// the simulated vehicle starting at the merged plan's first pickup node.
func mergeBatches(sp roadnet.SPFunc, bi, bj *model.Batch, now float64) (*model.Batch, bool) {
	orders := make([]*model.Order, 0, len(bi.Orders)+len(bj.Orders))
	orders = append(orders, bi.Orders...)
	orders = append(orders, bj.Orders...)
	plan, cost, ok := optimizeFromFirstPickup(sp, now, orders)
	if !ok {
		return nil, false
	}
	return &model.Batch{Orders: orders, Plan: plan, Cost: cost}, true
}

// optimizeFromFirstPickup finds the quickest plan over all choices of
// starting restaurant: the simulated vehicle is placed at the first pickup
// of the plan (Section IV-B1: "the initial location of each simulated
// vehicle is the first location in the optimal route plan"), so every
// order's restaurant is tried as the start.
func optimizeFromFirstPickup(sp roadnet.SPFunc, now float64, orders []*model.Order) (*model.RoutePlan, float64, bool) {
	bestCost := math.Inf(1)
	var bestPlan *model.RoutePlan
	tried := make(map[roadnet.NodeID]bool, len(orders))
	for _, first := range orders {
		start := first.Restaurant
		if tried[start] {
			continue
		}
		tried[start] = true
		plan, cost, ok := optimizeFixedStart(sp, start, now, orders)
		if ok && cost < bestCost {
			bestCost = cost
			bestPlan = plan
		}
	}
	if bestPlan == nil {
		return nil, 0, false
	}
	return bestPlan, bestCost, true
}
