package obs

import (
	"io"
	"testing"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "bench", DurationBuckets, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "bench", DurationBuckets, nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkTracerTransition(b *testing.B) {
	tr := NewOrderTracer(NewRegistry(), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := int64(i % 4096)
		tr.Transition(id, 1, StageAdmitted, float64(i))
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, phase := range []string{"drain", "advance", "handoff", "match", "apply", "replan", "rebuild"} {
		h := r.Histogram("foodmatch_round_phase_seconds", "bench", DurationBuckets, Labels{"phase": phase})
		h.Observe(0.01)
	}
	r.Counter("foodmatch_rounds_total", "bench", nil).Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
