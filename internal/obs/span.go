package obs

// Phase is one timed span of a dispatch round, optionally nested: the
// engine's phased round produces a tree like
//
//	drain → advance{shard0..K} → handoff{publish} →
//	match{shardN{batch,sparsify,reshuffle,match}} → apply → replan → rebuild
//
// Phases ride on round stats (JSON-tagged), feed the slow-round structured
// log, and are exported per round by the experiments harness' -obs-out
// JSONL so offline runs produce the same telemetry as the online engine.
type Phase struct {
	Name     string  `json:"name"`
	DurSec   float64 `json:"dur_sec"`
	Children []Phase `json:"children,omitempty"`
}

// Sub appends a child span and returns the parent for chaining.
func (p *Phase) Sub(name string, durSec float64, children ...Phase) *Phase {
	p.Children = append(p.Children, Phase{Name: name, DurSec: durSec, Children: children})
	return p
}

// Find returns the first direct child with the given name, or nil.
func (p *Phase) Find(name string) *Phase {
	for i := range p.Children {
		if p.Children[i].Name == name {
			return &p.Children[i]
		}
	}
	return nil
}
