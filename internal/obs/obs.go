// Package obs is the engine's observability substrate: a dependency-free
// (stdlib-only) concurrent registry of counters, gauges and fixed-bucket
// histograms with Prometheus text-format exposition, plus the round-phase
// span and order-lifecycle trace types the dispatch plane records into.
//
// Recording is lock-free: counters and histogram buckets are atomics, so
// hot paths (assignment rounds, mover hooks, router queries) pay a handful
// of atomic adds per observation and never contend on a registry mutex —
// the registry lock is taken only at instrument registration and at
// exposition time. All record methods are nil-receiver-safe, so callers can
// keep unconditional call sites and disable telemetry by dropping the
// instrument.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Labels attaches constant key/value dimensions to an instrument (e.g.
// phase="match", shard="2"). Labels are fixed at registration: the registry
// returns one instrument per unique (name, labels) series.
type Labels map[string]string

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// labelPair is one sorted label dimension.
type labelPair struct{ k, v string }

// meta is the registration identity shared by every instrument kind.
type meta struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	labels []labelPair
	key    string // name + canonical label encoding (registry index)
}

// Counter is a monotonically increasing count (atomic).
type Counter struct {
	m meta
	v atomic.Int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters are monotonic). Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value (atomic float64 bits).
type Gauge struct {
	m    meta
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value. Nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: observations land in the first
// bucket whose upper bound is >= v (cumulative exposition adds the implicit
// +Inf bucket). Observe is lock-free — one atomic add on the bucket, one on
// the count and a CAS loop on the float sum — so it is safe on round hot
// paths and from parallel shard goroutines.
type Histogram struct {
	m      meta
	bounds []float64       // sorted finite upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	cnt    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.cnt.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations. Nil-safe (0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.cnt.Load()
}

// Sum returns the sum of observed values. Nil-safe (0).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket that covers it — the same estimate Prometheus's
// histogram_quantile computes. Returns NaN with no observations; values in
// the overflow bucket report the largest finite bound. Nil-safe (NaN).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.cnt.Load()
	if total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i == len(h.bounds) { // overflow bucket: no finite upper bound
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-cum)/n
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Default bucket layouts (upper bounds in seconds).
var (
	// DurationBuckets covers wall-clock phase/round latencies: 100 µs .. 10 s.
	DurationBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// QueryBuckets covers per-query router latencies: 250 ns .. 25 ms.
	QueryBuckets = []float64{
		2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025,
	}
	// SimBuckets covers simulation-time spans (order-lifecycle transitions):
	// 1 s .. 2 h of city time.
	SimBuckets = []float64{1, 5, 15, 30, 60, 120, 300, 600, 900, 1800, 3600, 7200}
)

// instrument is anything the registry holds.
type instrument interface{ getMeta() *meta }

func (c *Counter) getMeta() *meta   { return &c.m }
func (g *Gauge) getMeta() *meta     { return &g.m }
func (h *Histogram) getMeta() *meta { return &h.m }

// Registry is a concurrent instrument registry. Registration methods return
// the existing instrument when the (name, labels) series was already
// registered (so independent components can share series), and panic on a
// kind mismatch or invalid name — both programming errors.
type Registry struct {
	mu    sync.Mutex
	index map[string]instrument
	order []instrument
	help  map[string]string // family name -> first help text
	kind  map[string]string // family name -> kind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		index: make(map[string]instrument),
		help:  make(map[string]string),
		kind:  make(map[string]string),
	}
}

// buildMeta validates and canonicalises a registration.
func buildMeta(name, help, kind string, labels Labels) meta {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	m := meta{name: name, help: help, kind: kind}
	for k, v := range labels {
		if !labelRe.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", k, name))
		}
		m.labels = append(m.labels, labelPair{k: k, v: v})
	}
	sort.Slice(m.labels, func(i, j int) bool { return m.labels[i].k < m.labels[j].k })
	m.key = name
	for _, lp := range m.labels {
		m.key += "\x00" + lp.k + "\x01" + lp.v
	}
	return m
}

// register interns an instrument, returning the existing one on a key hit.
func (r *Registry) register(m meta, mk func(meta) instrument) instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.index[m.key]; ok {
		if got.getMeta().kind != m.kind {
			panic(fmt.Sprintf("obs: %q re-registered as %s (was %s)", m.name, m.kind, got.getMeta().kind))
		}
		return got
	}
	if k, ok := r.kind[m.name]; ok && k != m.kind {
		panic(fmt.Sprintf("obs: family %q holds %s series, cannot add %s", m.name, k, m.kind))
	}
	in := mk(m)
	r.index[m.key] = in
	r.order = append(r.order, in)
	if _, ok := r.help[m.name]; !ok {
		r.help[m.name] = m.help
		r.kind[m.name] = m.kind
	}
	return in
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.register(buildMeta(name, help, "counter", labels),
		func(m meta) instrument { return &Counter{m: m} }).(*Counter)
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.register(buildMeta(name, help, "gauge", labels),
		func(m meta) instrument { return &Gauge{m: m} }).(*Gauge)
}

// Histogram registers (or fetches) a histogram series with the given finite
// upper bounds (must be sorted ascending; the +Inf bucket is implicit).
// Re-registering an existing series returns it with its original buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	return r.register(buildMeta(name, help, "histogram", labels), func(m meta) instrument {
		b := make([]float64, len(buckets))
		copy(b, buckets)
		return &Histogram{m: m, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}).(*Histogram)
}

// MetricPoint is one series' point-in-time value — the machine-readable
// form of the registry (experiments JSONL summaries, tests).
type MetricPoint struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries the counter/gauge reading.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/P50/P95/P99 carry the histogram reading.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Gather snapshots every registered series, sorted by name then labels.
func (r *Registry) Gather() []MetricPoint {
	out := make([]MetricPoint, 0, len(r.order))
	for _, in := range r.sorted() {
		m := in.getMeta()
		p := MetricPoint{Name: m.name, Kind: m.kind}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels))
			for _, lp := range m.labels {
				p.Labels[lp.k] = lp.v
			}
		}
		switch v := in.(type) {
		case *Counter:
			p.Value = float64(v.Value())
		case *Gauge:
			p.Value = v.Value()
		case *Histogram:
			p.Count = v.Count()
			p.Sum = v.Sum()
			if p.Count > 0 {
				p.P50, p.P95, p.P99 = v.Quantile(0.5), v.Quantile(0.95), v.Quantile(0.99)
			}
		}
		out = append(out, p)
	}
	return out
}

// sorted returns the instruments ordered by (name, label key) under the
// registry lock — the stable exposition order.
func (r *Registry) sorted() []instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]instrument, len(r.order))
	copy(out, r.order)
	sort.Slice(out, func(i, j int) bool { return out[i].getMeta().key < out[j].getMeta().key })
	return out
}

// helpFor returns the family help/kind maps' entries under the lock.
func (r *Registry) helpFor(name string) (help, kind string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name], r.kind[name]
}
