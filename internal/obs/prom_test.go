package obs

import (
	"strings"
	"testing"
)

func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("foodmatch_rounds_total", "Completed assignment rounds.", nil).Add(12)
	r.Gauge("foodmatch_pool_depth", "Orders in the unassigned pool.", nil).Set(42)
	for _, phase := range []string{"drain", "match"} {
		h := r.Histogram("foodmatch_round_phase_seconds", "Per-phase round latency.",
			[]float64{0.001, 0.01, 0.1}, Labels{"phase": phase})
		h.Observe(0.0005)
		h.Observe(0.05)
		h.Observe(5)
	}
	return r
}

func TestWritePrometheusAndCheck(t *testing.T) {
	var sb strings.Builder
	if err := buildRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE foodmatch_rounds_total counter",
		"foodmatch_rounds_total 12",
		"# TYPE foodmatch_pool_depth gauge",
		"foodmatch_pool_depth 42",
		"# TYPE foodmatch_round_phase_seconds histogram",
		`foodmatch_round_phase_seconds_bucket{phase="drain",le="0.001"} 1`,
		`foodmatch_round_phase_seconds_bucket{phase="drain",le="+Inf"} 3`,
		`foodmatch_round_phase_seconds_count{phase="drain"} 3`,
		`foodmatch_round_phase_seconds_bucket{phase="match",le="0.1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// each family must declare TYPE exactly once
	if strings.Count(out, "# TYPE foodmatch_round_phase_seconds ") != 1 {
		t.Fatalf("TYPE declared more than once:\n%s", out)
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition failed validation: %v", err)
	}
}

func TestCheckExpositionRejectsBadPayloads(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no type":          "foo 1\n",
		"bad name":         "# TYPE 1bad counter\n1bad 1\n",
		"bad value":        "# TYPE foo counter\nfoo abc\n",
		"duplicate series": "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"duplicate type":   "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"unknown type":     "# TYPE foo widget\nfoo 1\n",
		"missing inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"non-monotonic buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 5\n",
		"unquoted label": "# TYPE foo counter\nfoo{a=1} 1\n",
	}
	for name, payload := range cases {
		if err := CheckExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected validation error, got nil", name)
		}
	}
}

func TestCheckExpositionAcceptsRealFormats(t *testing.T) {
	good := `# HELP go_goroutines Number of goroutines.
# TYPE go_goroutines gauge
go_goroutines 42
# TYPE http_requests_total counter
http_requests_total{code="200",path="/x"} 10 1700000000000
http_requests_total{code="500",path="/x"} 1
# TYPE rpc_seconds histogram
rpc_seconds_bucket{le="0.1"} 9
rpc_seconds_bucket{le="+Inf"} 10
rpc_seconds_sum 1.5
rpc_seconds_count 10
`
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "has \"quotes\" and \\slashes\\", Labels{"k": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `k="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped exposition failed validation: %v", err)
	}
}
