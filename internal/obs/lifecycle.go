package obs

import (
	"sync"
)

// Stage enumerates the order-lifecycle stages an order moves through:
//
//	placed → admitted → assigned ⇄ released → picked_up → delivered
//	                 ↘ rejected (from admitted or released)
//
// "pooled" coincides with admitted (admission inserts into the pool) and
// batch formation coincides with assignment (batching and matching happen
// inside one atomic round), so neither gets its own stage; the per-stage
// pipeline histograms cover the intra-round split instead.
type Stage uint8

// Lifecycle stages.
const (
	StagePlaced Stage = iota
	StageAdmitted
	StageAssigned
	StageReleased
	StagePickedUp
	StageDelivered
	StageRejected
	numStages
)

var stageNames = [numStages]string{
	"placed", "admitted", "assigned", "released", "picked_up", "delivered", "rejected",
}

func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// canonical transitions: the (from, to) pairs that get latency histograms.
// Anything else increments the other-transitions counter only.
var canonicalTransitions = [][2]Stage{
	{StagePlaced, StageAdmitted},    // submit-queue wait (wall-adjacent; sim clock)
	{StageAdmitted, StageAssigned},  // pool wait until first match
	{StagePlaced, StageAssigned},    // pool wait (offline sim: placement admits)
	{StagePlaced, StageRejected},    // never matched (offline sim)
	{StageAssigned, StageReleased},  // held before a reshuffle stripped it
	{StageReleased, StageAssigned},  // reshuffle turnaround
	{StageAssigned, StagePickedUp},  // en-route to pickup
	{StagePickedUp, StageDelivered}, // onboard
	{StageAdmitted, StageRejected},  // never matched before SLA breach
	{StageReleased, StageRejected},  // stripped, then SLA breached
}

// OrderEvent is one lifecycle transition, as exposed by the NDJSON ring
// (`GET /trace/orders` tail and experiments JSONL export). Times are in
// simulation seconds since midnight; GapSec is sim time since the order's
// previous stage.
type OrderEvent struct {
	T       float64 `json:"t"`
	Order   int64   `json:"order"`
	Vehicle int64   `json:"vehicle,omitempty"`
	From    string  `json:"from,omitempty"`
	To      string  `json:"to"`
	GapSec  float64 `json:"gap_sec"`
}

const tracerStripes = 64

type stageAt struct {
	stage Stage
	t     float64
}

type tracerStripe struct {
	mu   sync.Mutex
	last map[int64]stageAt
}

// OrderTracer follows every order through its lifecycle, recording a
// per-transition latency histogram (simulation seconds) and, when a ring
// size is given, a bounded NDJSON-able event ring. Transition is safe from
// parallel shard goroutines: order state lives in 64 lock-striped maps
// (orders hash to a stripe, so two movers never contend unless their orders
// collide), histograms are atomic, and the ring has its own mutex but is
// disabled by default. Terminal transitions (delivered/rejected) clear the
// order's entry; orders that silently vanish (end-of-day stranding) retain
// a map entry until the tracer is dropped — bounded by one day's orders.
type OrderTracer struct {
	hist    [numStages][numStages]*Histogram // nil = uncanonical pair
	other   *Counter
	stripes [tracerStripes]tracerStripe

	ringCap  int // immutable after construction; 0 = ring disabled
	ringMu   sync.Mutex
	ring     []OrderEvent // guarded by ringMu
	ringNext uint64       // total events ever appended; guarded by ringMu
}

// NewOrderTracer registers the transition histograms on reg and returns a
// tracer whose event ring holds ringSize events (0 disables the ring).
func NewOrderTracer(reg *Registry, ringSize int) *OrderTracer {
	t := &OrderTracer{}
	for _, tr := range canonicalTransitions {
		from, to := tr[0], tr[1]
		t.hist[from][to] = reg.Histogram(
			"foodmatch_order_transition_sim_seconds",
			"Order-lifecycle transition latency in simulation seconds, by (from, to) stage.",
			SimBuckets,
			Labels{"from": from.String(), "to": to.String()},
		)
	}
	t.other = reg.Counter("foodmatch_order_transitions_other_total",
		"Order-lifecycle transitions outside the canonical stage graph.", nil)
	if ringSize > 0 {
		t.ringCap = ringSize
		t.ring = make([]OrderEvent, 0, ringSize)
	}
	return t
}

// Transition records order reaching stage `to` at sim time `at` (vehicle 0
// when not applicable). Nil-safe.
func (t *OrderTracer) Transition(order, vehicle int64, to Stage, at float64) {
	if t == nil || to >= numStages {
		return
	}
	s := &t.stripes[uint64(order)%tracerStripes]
	s.mu.Lock()
	if s.last == nil {
		s.last = make(map[int64]stageAt)
	}
	prev, had := s.last[order]
	if to == StageDelivered || to == StageRejected {
		delete(s.last, order)
	} else {
		s.last[order] = stageAt{stage: to, t: at}
	}
	s.mu.Unlock()

	gap := 0.0
	from := ""
	if had {
		if gap = at - prev.t; gap < 0 {
			gap = 0
		}
		from = prev.stage.String()
		if h := t.hist[prev.stage][to]; h != nil {
			h.Observe(gap)
		} else {
			t.other.Inc()
		}
	}
	if t.ringCap > 0 {
		t.appendRing(OrderEvent{T: at, Order: order, Vehicle: vehicle, From: from, To: to.String(), GapSec: gap})
	}
}

func (t *OrderTracer) appendRing(e OrderEvent) {
	t.ringMu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.ringNext%uint64(cap(t.ring))] = e
	}
	t.ringNext++
	t.ringMu.Unlock()
}

// Tail returns up to n of the most recent ring events, oldest first.
// Nil-safe; returns nil when the ring is disabled.
func (t *OrderTracer) Tail(n int) []OrderEvent {
	if t == nil || t.ringCap == 0 || n <= 0 {
		return nil
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	size := len(t.ring)
	if n > size {
		n = size
	}
	out := make([]OrderEvent, 0, n)
	if size < t.ringCap {
		// ring not yet wrapped: chronological prefix
		out = append(out, t.ring[size-n:]...)
		return out
	}
	c := uint64(t.ringCap)
	start := t.ringNext - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, t.ring[(start+i)%c])
	}
	return out
}

// Pending counts orders currently tracked in a non-terminal stage.
func (t *OrderTracer) Pending() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		n += len(s.last)
		s.mu.Unlock()
	}
	return n
}
