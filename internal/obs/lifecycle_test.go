package obs

import (
	"strings"
	"sync"
	"testing"
)

// transitionHist fetches the canonical transition histogram for (from, to).
func transitionHist(r *Registry, from, to Stage) *Histogram {
	return r.Histogram("foodmatch_order_transition_sim_seconds", "",
		SimBuckets, Labels{"from": from.String(), "to": to.String()})
}

func TestOrderTracerTransitions(t *testing.T) {
	r := NewRegistry()
	tr := NewOrderTracer(r, 16)
	// full happy path for order 1
	tr.Transition(1, 0, StagePlaced, 100)
	tr.Transition(1, 0, StageAdmitted, 130)
	tr.Transition(1, 7, StageAssigned, 190)
	tr.Transition(1, 7, StagePickedUp, 400)
	tr.Transition(1, 7, StageDelivered, 900)

	checks := []struct {
		from, to Stage
		wantGap  float64
	}{
		{StagePlaced, StageAdmitted, 30},
		{StageAdmitted, StageAssigned, 60},
		{StageAssigned, StagePickedUp, 210},
		{StagePickedUp, StageDelivered, 500},
	}
	for _, c := range checks {
		h := transitionHist(r, c.from, c.to)
		if h.Count() != 1 {
			t.Fatalf("%s->%s count = %d, want 1", c.from, c.to, h.Count())
		}
		if h.Sum() != c.wantGap {
			t.Fatalf("%s->%s gap = %g, want %g", c.from, c.to, h.Sum(), c.wantGap)
		}
	}
	if tr.Pending() != 0 {
		t.Fatalf("delivered order still pending: %d", tr.Pending())
	}

	// reshuffle: assigned -> released -> assigned, then rejected
	tr.Transition(2, 0, StageAdmitted, 0)
	tr.Transition(2, 3, StageAssigned, 10)
	tr.Transition(2, 3, StageReleased, 70)
	tr.Transition(2, 5, StageAssigned, 70)
	if h := transitionHist(r, StageAssigned, StageReleased); h.Count() != 1 || h.Sum() != 60 {
		t.Fatalf("assigned->released = (%d, %g)", h.Count(), h.Sum())
	}
	if h := transitionHist(r, StageReleased, StageAssigned); h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("released->assigned = (%d, %g)", h.Count(), h.Sum())
	}
	if tr.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", tr.Pending())
	}

	// uncanonical pair (delivered has no entry; jump placed->delivered)
	tr.Transition(3, 0, StagePlaced, 0)
	tr.Transition(3, 0, StageDelivered, 5)
	if got := r.Counter("foodmatch_order_transitions_other_total", "", nil).Value(); got != 1 {
		t.Fatalf("other transitions = %d, want 1", got)
	}

	tail := tr.Tail(100)
	if len(tail) != 11 {
		t.Fatalf("tail holds %d events, want 11", len(tail))
	}
	last := tail[len(tail)-1]
	if last.Order != 3 || last.To != "delivered" || last.From != "placed" || last.GapSec != 5 {
		t.Fatalf("unexpected last event %+v", last)
	}
}

func TestOrderTracerRingWrap(t *testing.T) {
	r := NewRegistry()
	tr := NewOrderTracer(r, 4)
	for i := int64(0); i < 10; i++ {
		tr.Transition(i, 0, StagePlaced, float64(i))
	}
	tail := tr.Tail(100)
	if len(tail) != 4 {
		t.Fatalf("tail holds %d events, want ring cap 4", len(tail))
	}
	for i, e := range tail {
		if want := int64(6 + i); e.Order != want {
			t.Fatalf("tail[%d].Order = %d, want %d (oldest-first)", i, e.Order, want)
		}
	}
	if got := tr.Tail(2); len(got) != 2 || got[1].Order != 9 {
		t.Fatalf("tail(2) = %+v, want last two", got)
	}
}

func TestOrderTracerRingDisabled(t *testing.T) {
	tr := NewOrderTracer(NewRegistry(), 0)
	tr.Transition(1, 0, StagePlaced, 0)
	if tr.Tail(10) != nil {
		t.Fatal("disabled ring must return nil tail")
	}
}

func TestOrderTracerNegativeGapClamped(t *testing.T) {
	r := NewRegistry()
	tr := NewOrderTracer(r, 0)
	tr.Transition(1, 0, StagePlaced, 100)
	tr.Transition(1, 0, StageAdmitted, 50) // clock skew: placed stamped in the future
	if h := transitionHist(r, StagePlaced, StageAdmitted); h.Sum() != 0 {
		t.Fatalf("negative gap not clamped: %g", h.Sum())
	}
}

func TestOrderTracerConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := NewOrderTracer(r, 128)
	const goroutines, orders = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < orders; i++ {
				id := base*orders + i
				tr.Transition(id, 0, StagePlaced, 0)
				tr.Transition(id, 0, StageAdmitted, 1)
				tr.Transition(id, 1, StageAssigned, 2)
				tr.Transition(id, 1, StagePickedUp, 3)
				tr.Transition(id, 1, StageDelivered, 4)
			}
		}(int64(g))
	}
	wg.Wait()
	if tr.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", tr.Pending())
	}
	if h := transitionHist(r, StagePickedUp, StageDelivered); h.Count() != goroutines*orders {
		t.Fatalf("delivered count = %d, want %d", h.Count(), goroutines*orders)
	}
}

func TestStageString(t *testing.T) {
	if StagePlaced.String() != "placed" || StageRejected.String() != "rejected" {
		t.Fatal("stage names broken")
	}
	if !strings.Contains(Stage(200).String(), "unknown") {
		t.Fatal("out-of-range stage should be unknown")
	}
}
