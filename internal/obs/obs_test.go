package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help", Labels{"k": "v"})
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *OrderTracer
	c.Inc()
	c.Add(2)
	g.Set(1)
	h.Observe(1)
	tr.Transition(1, 0, StagePlaced, 0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile should be NaN")
	}
	if tr.Tail(10) != nil || tr.Pending() != 0 {
		t.Fatal("nil tracer should be inert")
	}
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"a": "1", "b": "2"})
	b := r.Counter("x_total", "ignored second help", Labels{"b": "2", "a": "1"})
	if a != b {
		t.Fatal("same (name, labels) must intern to one instrument")
	}
	c := r.Counter("x_total", "help", Labels{"a": "2", "b": "2"})
	if a == c {
		t.Fatal("different labels must be distinct series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "help", Labels{"x": "1"})
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid name")
		}
	}()
	r.Counter("bad-name", "help", nil)
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 2, 4, 8}, nil)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); math.Abs(got-119.5) > 1e-9 {
		t.Fatalf("sum = %g, want 119.5", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Fatalf("p50 = %g, want within (2,4]", p50)
	}
	// overflow bucket clamps to largest finite bound
	if got := h.Quantile(0.999); got != 8 {
		t.Fatalf("p99.9 = %g, want clamp to 8", got)
	}
	empty := r.Histogram("h2_seconds", "help", []float64{1}, nil)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramBadBucketsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending buckets")
		}
	}()
	r.Histogram("h", "help", []float64{2, 1}, nil)
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", DurationBuckets, nil)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if got := h.Sum(); math.Abs(got-float64(goroutines*per)*0.001) > 1e-6 {
		t.Fatalf("sum = %g", got)
	}
}

func TestGather(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "help", nil).Add(3)
	r.Gauge("a", "help", Labels{"x": "1"}).Set(7)
	h := r.Histogram("c_seconds", "help", []float64{1, 10}, nil)
	h.Observe(0.5)
	h.Observe(5)
	pts := r.Gather()
	if len(pts) != 3 {
		t.Fatalf("gather returned %d points, want 3", len(pts))
	}
	if pts[0].Name != "a" || pts[0].Value != 7 || pts[0].Labels["x"] != "1" {
		t.Fatalf("unexpected first point %+v", pts[0])
	}
	if pts[1].Name != "b_total" || pts[1].Value != 3 {
		t.Fatalf("unexpected second point %+v", pts[1])
	}
	if pts[2].Name != "c_seconds" || pts[2].Count != 2 || pts[2].Sum != 5.5 || pts[2].P50 == 0 {
		t.Fatalf("unexpected histogram point %+v", pts[2])
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}
