package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name with HELP/TYPE headers,
// series sorted by label set, histograms expanded to cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var prevFamily string
	for _, in := range r.sorted() {
		m := in.getMeta()
		if m.name != prevFamily {
			help, kind := r.helpFor(m.name)
			if help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, kind)
			prevFamily = m.name
		}
		switch v := in.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, labelBlock(m.labels, "", 0), formatFloat(float64(v.Value())))
		case *Gauge:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, labelBlock(m.labels, "", 0), formatFloat(v.Value()))
		case *Histogram:
			var cum uint64
			for i, b := range v.bounds {
				cum += v.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name, labelBlock(m.labels, "le", b), cum)
			}
			cum += v.counts[len(v.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name, labelBlock(m.labels, "le", math.Inf(1)), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.name, labelBlock(m.labels, "", 0), formatFloat(v.Sum()))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.name, labelBlock(m.labels, "", 0), v.Count())
		}
	}
	return bw.Flush()
}

// labelBlock renders `{k="v",...}` with the optional `le` bound appended,
// or "" when there are no labels at all.
func labelBlock(labels []labelPair, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, lp := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(lp.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(lp.v))
		sb.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(leKey)
		sb.WriteString(`="`)
		sb.WriteString(formatFloat(le))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// CheckExposition validates a Prometheus text-format payload: sample syntax,
// metric/label name legality, TYPE declarations preceding their samples, no
// duplicate series, and — for histograms — cumulative non-decreasing
// `le` buckets ending in a `+Inf` bucket that equals `_count`. It is the
// validator behind cmd/promlint and the CI scrape smoke; it returns the
// first problem found, annotated with its line number.
func CheckExposition(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)
	seen := make(map[string]int) // full series key -> line
	type histState struct {
		buckets  map[string]map[float64]float64 // sub-series (labels sans le) -> le -> cumulative
		count    map[string]float64
		hasCount map[string]bool
	}
	hists := make(map[string]*histState)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 {
					return fmt.Errorf("line %d: %s comment without metric name", line, fields[1])
				}
				name := fields[2]
				if !nameRe.MatchString(name) {
					return fmt.Errorf("line %d: invalid metric name %q", line, name)
				}
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return fmt.Errorf("line %d: TYPE without a type", line)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fmt.Errorf("line %d: unknown type %q", line, fields[3])
					}
					if _, dup := types[name]; dup {
						return fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
					}
					types[name] = fields[3]
				}
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && (types[base] == "histogram" || types[base] == "summary") {
				family = base
				break
			}
		}
		if typ, ok := types[family]; ok {
			if typ == "histogram" {
				if family == name {
					return fmt.Errorf("line %d: histogram %q exposes a bare sample (want _bucket/_sum/_count)", line, name)
				}
			}
		} else if family != name {
			// suffix matched but no TYPE registered under the base: treat as its own family
			family = name
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", line, name)
		}
		key := name + "{" + canonicalLabels(labels) + "}"
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s (first at line %d)", line, key, prev)
		}
		seen[key] = line
		if types[family] == "histogram" {
			hs := hists[family]
			if hs == nil {
				hs = &histState{
					buckets:  make(map[string]map[float64]float64),
					count:    make(map[string]float64),
					hasCount: make(map[string]bool),
				}
				hists[family] = hs
			}
			var le string
			rest := make([]string, 0, len(labels))
			for _, l := range labels {
				if strings.HasPrefix(l, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(l, `le="`), `"`)
				} else {
					rest = append(rest, l)
				}
			}
			sub := canonicalLabels(rest)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", line)
				}
				bound, err := parseLe(le)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", line, le, err)
				}
				if hs.buckets[sub] == nil {
					hs.buckets[sub] = make(map[float64]float64)
				}
				hs.buckets[sub][bound] = value
			case strings.HasSuffix(name, "_count"):
				hs.count[sub] = value
				hs.hasCount[sub] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("empty exposition")
	}
	for family, hs := range hists {
		for sub, buckets := range hs.buckets {
			bounds := make([]float64, 0, len(buckets))
			for b := range buckets {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			prevCum := -1.0
			hasInf := false
			for _, b := range bounds {
				cum := buckets[b]
				if cum < prevCum {
					return fmt.Errorf("histogram %s{%s}: bucket le=%g cumulative count %g < previous %g",
						family, sub, b, cum, prevCum)
				}
				prevCum = cum
				if math.IsInf(b, 1) {
					hasInf = true
				}
			}
			if !hasInf {
				return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", family, sub)
			}
			if hs.hasCount[sub] && buckets[math.Inf(1)] != hs.count[sub] {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g",
					family, sub, buckets[math.Inf(1)], hs.count[sub])
			}
		}
	}
	return nil
}

// parseSample splits `name{labels} value [timestamp]` into parts.
func parseSample(s string) (name string, labels []string, value float64, err error) {
	rest := s
	if i := strings.IndexByte(s, '{'); i >= 0 {
		name = s[:i]
		j := strings.LastIndexByte(s, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced label braces in %q", s)
		}
		labels, err = splitLabels(s[i+1 : j])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(s[j+1:])
	} else {
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("sample %q missing value", s)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !nameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp]", s)
	}
	value, err = parseLe(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on top-level commas, validating each
// `k="v"` pair (quotes required, escapes honoured).
func splitLabels(body string) ([]string, error) {
	var out []string
	for len(body) > 0 {
		body = strings.TrimLeft(body, ", ")
		if body == "" {
			break
		}
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label %q missing '='", body)
		}
		k := strings.TrimSpace(body[:eq])
		if !labelRe.MatchString(k) && k != "le" && k != "quantile" {
			return nil, fmt.Errorf("invalid label name %q", k)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", k)
		}
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("label %q value missing closing quote", k)
		}
		out = append(out, k+`="`+rest[1:i]+`"`)
		body = rest[i+1:]
	}
	return out, nil
}

func canonicalLabels(labels []string) string {
	s := append([]string(nil), labels...)
	sort.Strings(s)
	return strings.Join(s, ",")
}

func parseLe(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}
