package geo

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func TestHaversineZero(t *testing.T) {
	p := Point{Lat: 12.97, Lon: 77.59}
	if d := Haversine(p, p); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Bangalore city centre to Bangalore airport, roughly 31.7 km
	// great-circle.
	blr := Point{Lat: 12.9716, Lon: 77.5946}
	airport := Point{Lat: 13.1986, Lon: 77.7066}
	d := Haversine(blr, airport)
	if d < 27_000 || d > 30_000 {
		t.Fatalf("Haversine = %.0f m, want ~28.3 km", d)
	}
}

func TestHaversineOneDegreeLatitude(t *testing.T) {
	// One degree of latitude is ~111.19 km anywhere on the sphere.
	a := Point{Lat: 0, Lon: 0}
	b := Point{Lat: 1, Lon: 0}
	d := Haversine(a, b)
	want := 2 * math.Pi * EarthRadiusM / 360
	if math.Abs(d-want) > 1 {
		t.Fatalf("one degree latitude = %.1f m, want %.1f m", d, want)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		return math.Abs(Haversine(a, b)-Haversine(b, a)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineNonNegative(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		return Haversine(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		c := Point{Lat: clampLat(lat3), Lon: clampLon(lon3)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBearingCardinalDirections(t *testing.T) {
	origin := Point{Lat: 0, Lon: 0}
	cases := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lat: 1, Lon: 0}, 0},
		{"east", Point{Lat: 0, Lon: 1}, math.Pi / 2},
		{"south", Point{Lat: -1, Lon: 0}, math.Pi},
		{"west", Point{Lat: 0, Lon: -1}, 3 * math.Pi / 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Bearing(origin, tc.to)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Bearing = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBearingRange(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		th := Bearing(a, b)
		return th >= 0 && th < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAngularDistanceSameDirection(t *testing.T) {
	loc := Point{Lat: 0, Lon: 0}
	dest := Point{Lat: 1, Lon: 0}
	// A node further along the same heading has angular distance ~0.
	u := Point{Lat: 2, Lon: 0}
	if d := AngularDistance(loc, dest, u); d > eps {
		t.Fatalf("adist same direction = %v, want ~0", d)
	}
}

func TestAngularDistanceOppositeDirection(t *testing.T) {
	loc := Point{Lat: 0, Lon: 0}
	dest := Point{Lat: 1, Lon: 0}
	u := Point{Lat: -1, Lon: 0}
	if d := AngularDistance(loc, dest, u); math.Abs(d-1) > eps {
		t.Fatalf("adist opposite direction = %v, want 1", d)
	}
}

func TestAngularDistancePerpendicular(t *testing.T) {
	loc := Point{Lat: 0, Lon: 0}
	dest := Point{Lat: 1, Lon: 0}
	u := Point{Lat: 0, Lon: 1}
	if d := AngularDistance(loc, dest, u); math.Abs(d-0.5) > 1e-6 {
		t.Fatalf("adist perpendicular = %v, want 0.5", d)
	}
}

func TestAngularDistanceIdleVehicle(t *testing.T) {
	loc := Point{Lat: 10, Lon: 20}
	if d := AngularDistance(loc, loc, Point{Lat: 11, Lon: 21}); d != 0 {
		t.Fatalf("idle vehicle adist = %v, want 0", d)
	}
}

func TestAngularDistanceCandidateAtLocation(t *testing.T) {
	loc := Point{Lat: 10, Lon: 20}
	dest := Point{Lat: 11, Lon: 20}
	if d := AngularDistance(loc, dest, loc); d != 0 {
		t.Fatalf("candidate at vehicle location adist = %v, want 0", d)
	}
}

func TestAngularDistanceRange(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		loc := Point{Lat: clampLat(a), Lon: clampLon(b)}
		dest := Point{Lat: clampLat(c), Lon: clampLon(d)}
		u := Point{Lat: clampLat(e), Lon: clampLon(g)}
		v := AngularDistance(loc, dest, u)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	p := Point{Lat: 12.9716, Lon: 77.5946}
	q := Offset(p, 1000, 0)
	if d := Haversine(p, q); math.Abs(d-1000) > 1 {
		t.Fatalf("1 km north offset measured %.2f m", d)
	}
	r := Offset(p, 0, 1000)
	if d := Haversine(p, r); math.Abs(d-1000) > 1 {
		t.Fatalf("1 km east offset measured %.2f m", d)
	}
}

func TestMidpoint(t *testing.T) {
	a := Point{Lat: 0, Lon: 0}
	b := Point{Lat: 2, Lon: 4}
	m := Midpoint(a, b)
	if m.Lat != 1 || m.Lon != 2 {
		t.Fatalf("midpoint = %+v", m)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 80)
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 170)
}
