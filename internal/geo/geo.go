// Package geo provides the geodesic primitives used by the food-delivery
// pipeline: haversine great-circle distance, forward bearing between two
// points (Definition 10 of the paper) and the angular distance used to make
// road-network edge weights sensitive to the direction a vehicle is already
// travelling (Section IV-D1).
//
// All angles are radians internally; latitudes and longitudes are degrees at
// the public boundary because that is how map data is normally expressed.
package geo

import "math"

// EarthRadiusM is the mean Earth radius in metres used by Haversine.
const EarthRadiusM = 6_371_000.0

// Point is a WGS-84 coordinate in degrees.
type Point struct {
	Lat float64 // latitude, degrees
	Lon float64 // longitude, degrees
}

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Haversine returns the great-circle distance between a and b in metres.
func Haversine(a, b Point) float64 {
	la1, lo1 := Rad(a.Lat), Rad(a.Lon)
	la2, lo2 := Rad(b.Lat), Rad(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp against floating-point drift before the square roots.
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusM * math.Asin(math.Sqrt(s))
}

// Bearing returns the initial great-circle bearing Θ(s,t) from s towards t,
// per Definition 10, rendered in the range [0, 2π). A bearing of 0 points
// north, π/2 east.
func Bearing(s, t Point) float64 {
	phiS, lamS := Rad(s.Lat), Rad(s.Lon)
	phiT, lamT := Rad(t.Lat), Rad(t.Lon)
	x := math.Cos(phiT) * math.Sin(lamT-lamS)
	y := math.Cos(phiS)*math.Sin(phiT) - math.Sin(phiS)*math.Cos(phiT)*math.Cos(lamT-lamS)
	theta := math.Atan2(x, y)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	if theta >= 2*math.Pi { // tiny negatives round up to exactly 2π
		theta = 0
	}
	return theta
}

// AngularDistance computes adist(v,u,t) of Section IV-D1:
//
//	adist = (1 - cos(Θ(loc,dest) - Θ(loc,u))) / 2
//
// where loc is the vehicle's current position, dest the next destination in
// its route plan and u the candidate node. The result lies in [0,1]: 0 means
// u is in exactly the direction the vehicle is already heading, 1 means
// diametrically opposite.
//
// When the vehicle is idle (no destination, dest == loc) or the candidate
// coincides with loc the direction is undefined; the paper only defines
// adist for moving vehicles, so we return 0 (no directional penalty).
func AngularDistance(loc, dest, u Point) float64 {
	if loc == dest || loc == u {
		return 0
	}
	d := Bearing(loc, dest) - Bearing(loc, u)
	return (1 - math.Cos(d)) / 2
}

// Midpoint returns the coordinate midway between a and b. Good enough at
// city scale where curvature is negligible; used by the synthetic city
// generator.
func Midpoint(a, b Point) Point {
	return Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
}

// Offset displaces p by the given metres north and east using the local
// equirectangular approximation. Used by the synthetic city generator to lay
// out grids in metric units.
func Offset(p Point, northM, eastM float64) Point {
	dLat := northM / EarthRadiusM
	dLon := eastM / (EarthRadiusM * math.Cos(Rad(p.Lat)))
	return Point{Lat: p.Lat + Deg(dLat), Lon: p.Lon + Deg(dLon)}
}
