package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
)

func sampleStream() *Recorder {
	r := NewRecorder()
	r.Emit(Event{Kind: OrderPlaced, T: 100, Order: 1})
	r.Emit(Event{Kind: OrderPlaced, T: 110, Order: 2})
	r.Emit(Event{Kind: WindowClosed, T: 180, PoolSize: 2, Vehicles: 3, Assignments: 2, AssignSec: 0.01})
	r.Emit(Event{Kind: OrderAssigned, T: 180, Order: 1, Vehicle: 7})
	r.Emit(Event{Kind: OrderAssigned, T: 180, Order: 2, Vehicle: 8})
	r.Emit(Event{Kind: OrderReleased, T: 360, Order: 1, Vehicle: 7})
	r.Emit(Event{Kind: OrderAssigned, T: 360, Order: 1, Vehicle: 9}) // reassigned
	r.Emit(Event{Kind: OrderPickedUp, T: 700, Order: 1, Vehicle: 9})
	r.Emit(Event{Kind: OrderDelivered, T: 1500, Order: 1, Vehicle: 9})
	r.Emit(Event{Kind: OrderPickedUp, T: 800, Order: 2, Vehicle: 8})
	r.Emit(Event{Kind: OrderDelivered, T: 4000, Order: 2, Vehicle: 8})
	r.Emit(Event{Kind: OrderPlaced, T: 400, Order: 3})
	r.Emit(Event{Kind: OrderRejected, T: 2260, Order: 3})
	r.Emit(Event{Kind: WindowClosed, T: 360, PoolSize: 3, Vehicles: 2, Assignments: 1})
	return r
}

func TestTimelines(t *testing.T) {
	tls := sampleStream().Timelines()
	if len(tls) != 3 {
		t.Fatalf("timelines = %d, want 3", len(tls))
	}
	o1 := tls[0]
	if o1.Order != 1 || o1.PlacedAt != 100 || o1.PickedUpAt != 700 || o1.DeliveredAt != 1500 {
		t.Fatalf("order 1 timeline wrong: %+v", o1)
	}
	if o1.Reassignments() != 1 || o1.FinalVehicle() != 9 {
		t.Fatalf("order 1 reassignment tracking wrong: %+v", o1)
	}
	o3 := tls[2]
	if o3.RejectedAt != 2260 || o3.DeliveredAt != 0 {
		t.Fatalf("order 3 rejection wrong: %+v", o3)
	}
	var empty Timeline
	if empty.FinalVehicle() != 0 {
		t.Fatal("empty timeline FinalVehicle should be 0")
	}
}

func TestSummarise(t *testing.T) {
	s := sampleStream().Summarise(45 * 60)
	if s.Orders != 3 || s.Delivered != 2 || s.Rejected != 1 || s.Reassigned != 1 {
		t.Fatalf("summary = %+v", s)
	}
	// Order 1: delivered in 1400 s (within 2700); order 2: 3890 s (late).
	if s.WithinPromise != 0.5 {
		t.Fatalf("within-promise = %v, want 0.5", s.WithinPromise)
	}
	// Pickup delays: 600 and 690 -> mean 645 s = 10.75 min.
	if s.MeanPickupMin < 10.7 || s.MeanPickupMin > 10.8 {
		t.Fatalf("mean pickup = %v min", s.MeanPickupMin)
	}
}

func TestQueueDepth(t *testing.T) {
	qs := sampleStream().QueueDepth()
	if len(qs) != 2 {
		t.Fatalf("queue points = %d", len(qs))
	}
	if qs[0].Depth != 0 || qs[1].Depth != 2 {
		t.Fatalf("depths = %+v", qs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := sampleStream()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != r.Len() {
		t.Fatalf("jsonl lines = %d, want %d", lines, r.Len())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, got := r.Snapshot(), back.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d changed: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLBad(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed stream accepted")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Emit(Event{Kind: OrderPlaced}) // must not panic
}

func TestFilter(t *testing.T) {
	r := sampleStream()
	placed := r.Filter(OrderPlaced)
	if len(placed) != 3 {
		t.Fatalf("placed events = %d, want 3", len(placed))
	}
	for _, e := range placed {
		if e.Kind != OrderPlaced {
			t.Fatalf("filter leaked kind %q", e.Kind)
		}
	}
	both := r.Filter(OrderPlaced, WindowClosed)
	if len(both) != 5 {
		t.Fatalf("placed+window events = %d, want 5", len(both))
	}
	if n := len(r.Filter()); n != 0 {
		t.Fatalf("empty filter returned %d events", n)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: OrderPlaced, T: 1, Order: 1})
	snap := r.Snapshot()
	snap[0].Order = 99
	if r.Snapshot()[0].Order != 1 {
		t.Fatal("mutating a snapshot leaked into the recorder")
	}
}

func TestEmitOrdering(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Emit(Event{Kind: OrderPlaced, Order: model.OrderID(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 100 || r.Len() != 100 {
		t.Fatalf("len = %d / %d, want 100", len(snap), r.Len())
	}
	for i, e := range snap {
		if e.Order != model.OrderID(i) {
			t.Fatalf("event %d out of order: got order %d", i, e.Order)
		}
	}
}

// TestConcurrentEmit exercises the engine's emission pattern: several zone
// shards appending to one recorder at once. Run with -race to catch
// regressions in the locking.
func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder()
	const writers, per = 8, 500
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Event{Kind: OrderAssigned, Order: model.OrderID(w*per + i), Vehicle: model.VehicleID(w)})
				if i%100 == 0 {
					_ = r.Len()
					_ = r.Filter(OrderAssigned, WindowClosed)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // a concurrent reader, like a live metrics scraper
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = r.Timelines()
		}
	}()
	wg.Wait()
	<-done
	if r.Len() != writers*per {
		t.Fatalf("events = %d, want %d", r.Len(), writers*per)
	}
	// Per-writer subsequences must preserve each goroutine's emission order.
	last := make(map[model.VehicleID]model.OrderID)
	for _, e := range r.Snapshot() {
		if prev, ok := last[e.Vehicle]; ok && e.Order <= prev {
			t.Fatalf("writer %d order regressed: %d after %d", e.Vehicle, e.Order, prev)
		}
		last[e.Vehicle] = e.Order
	}
}
