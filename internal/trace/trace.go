// Package trace records the event stream of a delivery simulation — order
// placements, assignments, reassignments, rejections, pickups, dropoffs and
// per-window assignment rounds — and derives post-hoc analyses from it:
// per-order timelines, queue-depth series, vehicle utilisation and
// service-level (delivery within promise) statistics.
//
// The simulator emits events through the Sink interface; a Recorder stores
// them in memory and can stream them as JSON Lines for external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/model"
)

// Kind enumerates event types.
type Kind string

// Event kinds.
const (
	OrderPlaced Kind = "order_placed"
	// OrderAdmitted marks the order entering the dispatch pool. In the online
	// engine its T is the admission clock, so T(admitted) - T(placed) is the
	// submit-queue plus future-order wait; offline injection admits within the
	// window that covers placement.
	OrderAdmitted  Kind = "order_admitted"
	OrderAssigned  Kind = "order_assigned"
	OrderReleased  Kind = "order_released" // reshuffled back to the pool
	OrderRejected  Kind = "order_rejected"
	OrderPickedUp  Kind = "order_picked_up"
	OrderDelivered Kind = "order_delivered"
	WindowClosed   Kind = "window_closed"
)

// Event is one simulation event. Fields are populated per kind; zero values
// mean "not applicable".
type Event struct {
	Kind    Kind            `json:"kind"`
	T       float64         `json:"t"` // simulation clock, seconds since midnight
	Order   model.OrderID   `json:"order,omitempty"`
	Vehicle model.VehicleID `json:"vehicle,omitempty"`
	// Window metadata (WindowClosed).
	PoolSize    int     `json:"pool,omitempty"`
	Vehicles    int     `json:"vehicles,omitempty"`
	Assignments int     `json:"assignments,omitempty"`
	AssignSec   float64 `json:"assign_sec,omitempty"`
}

// Sink consumes events. Implementations must be cheap; the simulator calls
// them on its hot path.
type Sink interface {
	Emit(Event)
}

// Discard is a Sink that drops everything.
var Discard Sink = discard{}

type discard struct{}

func (discard) Emit(Event) {}

// Recorder stores events in memory in emission order. It is safe for
// concurrent use: the online engine's zone shards emit from their own
// goroutines, so appends are serialised by a mutex.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Snapshot returns a copy of the recorded events in emission order.
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Filter returns the recorded events of the given kinds, in emission order.
func (r *Recorder) Filter(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL streams the recorded events as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	events := r.Snapshot()
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSONL loads a JSON Lines event stream.
func ReadJSONL(rd io.Reader) (*Recorder, error) {
	dec := json.NewDecoder(rd)
	r := NewRecorder()
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return r, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", len(r.events), err)
		}
		r.events = append(r.events, e)
	}
}

// Timeline is the reconstructed lifecycle of one order.
type Timeline struct {
	Order       model.OrderID
	PlacedAt    float64
	Assignments []Assignment
	PickedUpAt  float64 // 0 if never
	DeliveredAt float64 // 0 if never
	RejectedAt  float64 // 0 if never
}

// Assignment is one (re)assignment hop in an order's lifecycle.
type Assignment struct {
	T       float64
	Vehicle model.VehicleID
}

// FinalVehicle returns the vehicle that ultimately served the order, or 0.
func (tl *Timeline) FinalVehicle() model.VehicleID {
	if len(tl.Assignments) == 0 {
		return 0
	}
	return tl.Assignments[len(tl.Assignments)-1].Vehicle
}

// Reassignments counts vehicle switches.
func (tl *Timeline) Reassignments() int {
	n := 0
	for i := 1; i < len(tl.Assignments); i++ {
		if tl.Assignments[i].Vehicle != tl.Assignments[i-1].Vehicle {
			n++
		}
	}
	return n
}

// Timelines reconstructs per-order lifecycles, sorted by order id.
func (r *Recorder) Timelines() []*Timeline {
	byOrder := make(map[model.OrderID]*Timeline)
	get := func(id model.OrderID) *Timeline {
		tl, ok := byOrder[id]
		if !ok {
			tl = &Timeline{Order: id}
			byOrder[id] = tl
		}
		return tl
	}
	for _, e := range r.Snapshot() {
		switch e.Kind {
		case OrderPlaced:
			get(e.Order).PlacedAt = e.T
		case OrderAssigned:
			tl := get(e.Order)
			tl.Assignments = append(tl.Assignments, Assignment{T: e.T, Vehicle: e.Vehicle})
		case OrderPickedUp:
			get(e.Order).PickedUpAt = e.T
		case OrderDelivered:
			get(e.Order).DeliveredAt = e.T
		case OrderRejected:
			get(e.Order).RejectedAt = e.T
		}
	}
	out := make([]*Timeline, 0, len(byOrder))
	for _, tl := range byOrder {
		out = append(out, tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// QueuePoint is one sample of the unassigned-order queue depth.
type QueuePoint struct {
	T     float64
	Depth int
}

// QueueDepth derives the end-of-window unassigned queue series.
func (r *Recorder) QueueDepth() []QueuePoint {
	var out []QueuePoint
	for _, e := range r.Snapshot() {
		if e.Kind == WindowClosed {
			out = append(out, QueuePoint{T: e.T, Depth: e.PoolSize - e.Assignments})
		}
	}
	return out
}

// Summary aggregates service-level statistics from the stream.
type Summary struct {
	Orders         int
	Delivered      int
	Rejected       int
	Reassigned     int     // orders that switched vehicles at least once
	MeanPickupMin  float64 // placement -> pickup, delivered orders
	MeanDeliverMin float64
	// WithinPromise is the fraction of delivered orders whose delivery time
	// was within the promise (caller supplies the bound).
	WithinPromise float64
}

// Summarise computes the service summary; promiseSec is the delivery-time
// promise (the paper's 45 minutes).
func (r *Recorder) Summarise(promiseSec float64) Summary {
	var s Summary
	var pickupSum, deliverSum float64
	within := 0
	for _, tl := range r.Timelines() {
		s.Orders++
		if tl.Reassignments() > 0 {
			s.Reassigned++
		}
		if tl.RejectedAt > 0 {
			s.Rejected++
		}
		if tl.DeliveredAt > 0 {
			s.Delivered++
			d := tl.DeliveredAt - tl.PlacedAt
			deliverSum += d
			if tl.PickedUpAt > 0 {
				pickupSum += tl.PickedUpAt - tl.PlacedAt
			}
			if d <= promiseSec {
				within++
			}
		}
	}
	if s.Delivered > 0 {
		s.MeanPickupMin = pickupSum / float64(s.Delivered) / 60
		s.MeanDeliverMin = deliverSum / float64(s.Delivered) / 60
		s.WithinPromise = float64(within) / float64(s.Delivered)
	}
	return s
}
