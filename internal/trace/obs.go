package trace

import (
	"repro/internal/obs"
)

// NewLifecycleSink bridges the event stream into an obs.OrderTracer,
// recording per-transition latency histograms and the optional event ring,
// then forwards each event to next (which may be nil). The online engine
// and the offline experiments harness both chain their user-facing sinks
// through this adapter so lifecycle telemetry is identical in both modes.
// The adapter only reads events — it can never perturb decisions.
func NewLifecycleSink(tr *obs.OrderTracer, next Sink) Sink {
	if next == nil {
		next = Discard
	}
	return lifecycleSink{tr: tr, next: next}
}

type lifecycleSink struct {
	tr   *obs.OrderTracer
	next Sink
}

func (s lifecycleSink) Emit(e Event) {
	if st, ok := stageFor(e.Kind); ok {
		s.tr.Transition(int64(e.Order), int64(e.Vehicle), st, e.T)
	}
	s.next.Emit(e)
}

func stageFor(k Kind) (obs.Stage, bool) {
	switch k {
	case OrderPlaced:
		return obs.StagePlaced, true
	case OrderAdmitted:
		return obs.StageAdmitted, true
	case OrderAssigned:
		return obs.StageAssigned, true
	case OrderReleased:
		return obs.StageReleased, true
	case OrderPickedUp:
		return obs.StagePickedUp, true
	case OrderDelivered:
		return obs.StageDelivered, true
	case OrderRejected:
		return obs.StageRejected, true
	}
	return 0, false
}
