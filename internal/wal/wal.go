// Package wal is the ingestion write-ahead log of the online dispatch
// engine: every accepted order placement and vehicle ping is appended to an
// on-disk segment before the producer is acknowledged, so a killed
// foodmatchd can rebuild exactly the ingestion backlog that had not yet
// reached a checkpointed world state.
//
// The format is deliberately boring — one record per line, a CRC32C of the
// JSON payload up front, segments named by the first sequence number they
// hold:
//
//	wal-00000000000000000001.log
//	  d1c5a3f7 {"seq":1,"k":"order","order":{...}}
//	  09ab44e0 {"seq":2,"k":"ping","ping":{...}}
//
// Sequence numbers are global and strictly increasing across both record
// kinds. A torn final line (the crash landed mid-write) is tolerated and
// dropped; corruption anywhere earlier is an error — silently skipping a
// record in the middle of the log would un-acknowledge an accepted order.
//
// Recovery protocol (see engine.ReplayWAL and cmd/foodmatchd):
//
//  1. Open reads every existing segment and hands the decoded records back
//     for replay; appending resumes after the highest recovered sequence.
//  2. The engine checkpoint stores, per record kind, the highest sequence
//     that had been drained into world state; replay applies only records
//     beyond it.
//  3. After a checkpoint is durably on disk, Rotate starts a fresh segment
//     and TruncateThrough deletes every segment whose records are all
//     covered by the checkpoint.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record kinds.
const (
	KindOrder = "order"
	KindPing  = "ping"
)

// OrderRecord is the durable form of one accepted order placement — the
// admission-time fields only; lifecycle state is the checkpoint's business.
type OrderRecord struct {
	ID         int64   `json:"id"`
	Restaurant int64   `json:"restaurant"`
	Customer   int64   `json:"customer"`
	PlacedAt   float64 `json:"placed_at"`
	Items      int     `json:"items"`
	PrepSec    float64 `json:"prep_sec"`
}

// PingRecord is the durable form of one vehicle location/shift update.
// Node -1 means "no relocation" (shift-only update); nil shift bounds mean
// "leave unchanged" (the NaN sentinel of the in-memory queue is not
// JSON-encodable).
type PingRecord struct {
	Vehicle    int64    `json:"vehicle"`
	Node       int64    `json:"node"`
	ActiveFrom *float64 `json:"active_from,omitempty"`
	ActiveTo   *float64 `json:"active_to,omitempty"`
}

// Record is one WAL entry. Exactly one of Order / Ping is non-nil,
// matching Kind.
type Record struct {
	Seq   uint64       `json:"seq"`
	Kind  string       `json:"k"`
	Order *OrderRecord `json:"order,omitempty"`
	Ping  *PingRecord  `json:"ping,omitempty"`
}

// Metrics receives the log's operational counters. Nil-safe: a nil Metrics
// records nothing. All methods must be safe for concurrent use (the obs
// package's instruments are).
type Metrics struct {
	// AppendsOrder / AppendsPing count appended records by kind.
	AppendsOrder func()
	AppendsPing  func()
	// Fsync observes one fsync's wall-clock seconds.
	Fsync func(sec float64)
	// Replayed counts records recovered by Open.
	Replayed func(n int)
	// Truncated counts segments deleted by TruncateThrough.
	Truncated func(n int)
}

// Options tunes a Log.
type Options struct {
	// SyncEvery fsyncs the active segment after every N appended records;
	// 1 (the default) syncs every record — an acknowledged ingest survives
	// an immediate power cut. Larger values batch syncs (a crash may lose
	// up to N-1 acknowledged records); <= 0 defaults to 1.
	SyncEvery int
	// Metrics receives operational counters (nil = none).
	Metrics *Metrics
}

// Log is an append-only segmented WAL rooted at one directory. Append,
// Rotate, TruncateThrough and Close are safe for concurrent use with each
// other.
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	nextSeq   uint64
	sinceSync int
	// segs maps the open order of on-disk segments: first seq -> last seq
	// written into it (the active segment's last updates on every append).
	segs   []segment
	closed bool
}

type segment struct {
	path  string
	first uint64
	last  uint64
}

const segPrefix = "wal-"

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d.log", segPrefix, first)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Open recovers the WAL at dir (created if missing), returning every intact
// record in sequence order for replay. Appending resumes at the highest
// recovered sequence + 1, into a freshly created segment. A torn final line
// in the newest segment is dropped; corruption elsewhere is an error.
func Open(dir string, opt Options) (*Log, []Record, error) {
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opt: opt, nextSeq: 1}
	var recovered []Record
	for i, name := range names {
		path := filepath.Join(dir, name)
		recs, validLen, err := readSegment(path, i == len(names)-1)
		if err != nil {
			return nil, nil, err
		}
		if fi, err := os.Stat(path); err == nil && fi.Size() > validLen {
			// Repair the torn tail in place: the next Open must not find the
			// partial record mid-file (where it would no longer be tolerable).
			if err := os.Truncate(path, validLen); err != nil {
				return nil, nil, fmt.Errorf("wal: %w", err)
			}
		}
		if len(recs) == 0 {
			// A crash can leave a freshly rotated segment empty (or holding
			// only a torn line). Remove it outright — keeping it around
			// would collide with the fresh active segment created below.
			if err := os.Remove(path); err != nil {
				return nil, nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		for _, r := range recs {
			if r.Seq < l.nextSeq {
				return nil, nil, fmt.Errorf("wal: %s: sequence %d not increasing (want >= %d)", name, r.Seq, l.nextSeq)
			}
			l.nextSeq = r.Seq + 1
		}
		l.segs = append(l.segs, segment{path: path, first: recs[0].Seq, last: recs[len(recs)-1].Seq})
		recovered = append(recovered, recs...)
	}
	if m := opt.Metrics; m != nil && m.Replayed != nil && len(recovered) > 0 {
		m.Replayed(len(recovered))
	}
	if err := l.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	return l, recovered, nil
}

// segmentNames lists wal-*.log files sorted by their embedded first
// sequence number.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, ".log") {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), ".log"), 10, 64); err != nil {
			return nil, fmt.Errorf("wal: unrecognised segment name %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names) // zero-padded first-seq names sort numerically
	return names, nil
}

// readSegment decodes one segment, returning the intact records and the
// byte length of the valid prefix. tolerateTail drops a torn or corrupt
// final line instead of failing — legal only for the newest segment, where
// a crash mid-append leaves exactly one partial record.
func readSegment(path string, tolerateTail bool) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var recs []Record
	var validLen int64
	rest := string(data)
	for lineNo := 1; len(rest) > 0; lineNo++ {
		line, tail, sawNL := strings.Cut(rest, "\n")
		rest = tail
		last := !sawNL || len(rest) == 0
		rec, err := decodeLine(line)
		if err != nil {
			if tolerateTail && last {
				break // torn tail from the crash: everything before it is intact
			}
			return nil, 0, fmt.Errorf("wal: %s line %d: %w", filepath.Base(path), lineNo, err)
		}
		if !sawNL {
			// A record without its newline may have lost trailing bytes that
			// happen to still checksum — only possible for a torn tail.
			if tolerateTail {
				break
			}
			return nil, 0, fmt.Errorf("wal: %s line %d: unterminated record", filepath.Base(path), lineNo)
		}
		recs = append(recs, rec)
		validLen += int64(len(line)) + 1
	}
	return recs, validLen, nil
}

func decodeLine(line string) (Record, error) {
	crcHex, payload, ok := strings.Cut(line, " ")
	if !ok || len(crcHex) != 8 {
		return Record{}, fmt.Errorf("malformed frame")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return Record{}, fmt.Errorf("malformed checksum: %w", err)
	}
	if got := crc32.Checksum([]byte(payload), crcTable); got != uint32(want) {
		return Record{}, fmt.Errorf("checksum mismatch (%08x != %08x)", got, want)
	}
	var rec Record
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return Record{}, fmt.Errorf("bad record: %w", err)
	}
	switch rec.Kind {
	case KindOrder:
		if rec.Order == nil {
			return Record{}, fmt.Errorf("order record %d without order body", rec.Seq)
		}
	case KindPing:
		if rec.Ping == nil {
			return Record{}, fmt.Errorf("ping record %d without ping body", rec.Seq)
		}
	default:
		return Record{}, fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return rec, nil
}

// openSegmentLocked creates and activates the segment starting at nextSeq.
func (l *Log) openSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segs = append(l.segs, segment{path: path, first: l.nextSeq, last: 0})
	l.sinceSync = 0
	return nil
}

// AppendOrder appends an order record and returns its sequence number. The
// record is durable per the SyncEvery policy before the call returns.
func (l *Log) AppendOrder(o OrderRecord) (uint64, error) {
	rec := Record{Kind: KindOrder, Order: &o}
	seq, err := l.append(&rec)
	if err == nil {
		if m := l.opt.Metrics; m != nil && m.AppendsOrder != nil {
			m.AppendsOrder()
		}
	}
	return seq, err
}

// AppendPing appends a ping record and returns its sequence number.
func (l *Log) AppendPing(p PingRecord) (uint64, error) {
	rec := Record{Kind: KindPing, Ping: &p}
	seq, err := l.append(&rec)
	if err == nil {
		if m := l.opt.Metrics; m != nil && m.AppendsPing != nil {
			m.AppendsPing()
		}
	}
	return seq, err
}

func (l *Log) append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	rec.Seq = l.nextSeq
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := fmt.Fprintf(l.w, "%08x %s\n", crc32.Checksum(payload, crcTable), payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.sinceSync++
	if l.sinceSync >= l.opt.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	l.nextSeq++
	l.segs[len(l.segs)-1].last = rec.Seq
	return rec.Seq, nil
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if m := l.opt.Metrics; m != nil && m.Fsync != nil {
		m.Fsync(time.Since(start).Seconds())
	}
	l.sinceSync = 0
	return nil
}

// Sync flushes and fsyncs the active segment regardless of the batching
// policy (shutdown path).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// Rotate closes the active segment and starts a new one at the next
// sequence. Called after a checkpoint lands so the pre-checkpoint segment
// becomes eligible for truncation.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.segs[len(l.segs)-1].last == 0 {
		// Nothing was ever appended to the active segment: reuse it instead
		// of stacking empty files (repeated checkpoints on a quiet engine).
		path := l.segs[len(l.segs)-1].path
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.sinceSync = 0
		return nil
	}
	return l.openSegmentLocked()
}

// TruncateThrough deletes every closed segment whose records all have
// sequence <= seq — they are covered by a durable checkpoint. The active
// segment is never deleted. Returns how many segments were removed.
func (l *Log) TruncateThrough(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	keep := l.segs[:0]
	for i, s := range l.segs {
		active := i == len(l.segs)-1
		empty := s.last == 0
		if !active && (empty || s.last <= seq) {
			if err := os.Remove(s.path); err != nil {
				// Keep the bookkeeping consistent with disk on failure.
				keep = append(keep, l.segs[i:]...)
				l.segs = keep
				return removed, fmt.Errorf("wal: %w", err)
			}
			removed++
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	if removed > 0 {
		if m := l.opt.Metrics; m != nil && m.Truncated != nil {
			m.Truncated(removed)
		}
	}
	return removed, nil
}

// NextSeq returns the sequence number the next append will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Segments returns how many on-disk segments the log currently tracks
// (including the active one).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs and closes the active segment. Further appends
// fail; the directory can be re-Opened.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.syncLocked(); err != nil {
		return err
	}
	return l.f.Close()
}
