package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustAppendOrder(t *testing.T, l *Log, id int64) uint64 {
	t.Helper()
	seq, err := l.AppendOrder(OrderRecord{ID: id, Restaurant: 1, Customer: 2, Items: 1, PrepSec: 480})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func mustAppendPing(t *testing.T, l *Log, vid int64) uint64 {
	t.Helper()
	seq, err := l.AppendPing(PingRecord{Vehicle: vid, Node: 7})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestWALRoundTrip pins the append → close → reopen → replay loop: every
// record comes back in order with its kind and payload intact.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(recs))
	}
	if seq := mustAppendOrder(t, l, 100); seq != 1 {
		t.Fatalf("first seq %d, want 1", seq)
	}
	if seq := mustAppendPing(t, l, 42); seq != 2 {
		t.Fatalf("second seq %d, want 2", seq)
	}
	mustAppendOrder(t, l, 101)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if recs[0].Kind != KindOrder || recs[0].Order.ID != 100 || recs[0].Seq != 1 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Kind != KindPing || recs[1].Ping.Vehicle != 42 || recs[1].Seq != 2 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Order.ID != 101 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	if next := l2.NextSeq(); next != 4 {
		t.Fatalf("NextSeq %d, want 4", next)
	}
	// New appends continue the sequence.
	if seq := mustAppendOrder(t, l2, 102); seq != 4 {
		t.Fatalf("post-recovery seq %d, want 4", seq)
	}
}

// TestWALTornTailTolerated drops a partial final line (the crash landed
// mid-write) and keeps everything before it — and repairs the file so the
// next recovery is clean too.
func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppendOrder(t, l, 1)
	mustAppendOrder(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":3,"k":"order"`); err != nil { // no newline: torn
		t.Fatal(err)
	}
	f.Close()

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Order.ID != 2 {
		t.Fatalf("recovered %d records after torn tail, want the 2 intact ones", len(recs))
	}

	// The tear was truncated away: a third recovery sees a clean log.
	l3, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after repair: %v", err)
	}
	defer l3.Close()
	if len(recs) != 2 {
		t.Fatalf("post-repair recovery found %d records, want 2", len(recs))
	}
}

// TestWALMidFileCorruptionRejected: a flipped byte anywhere before the tail
// must fail recovery loudly, not silently drop an acknowledged record.
func TestWALMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppendOrder(t, l, 1)
	mustAppendOrder(t, l, 2)
	mustAppendOrder(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"id":2`, `"id":9`, 1) // payload no longer matches CRC
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted middle record recovered without error (err=%v)", err)
	}
}

// TestWALRotateTruncate pins the checkpoint dance: rotate, truncate through
// the checkpointed sequence, and only covered segments disappear.
func TestWALRotateTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppendOrder(t, l, 1) // seq 1
	mustAppendOrder(t, l, 2) // seq 2
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	mustAppendOrder(t, l, 3) // seq 3, new segment
	if got := l.Segments(); got != 2 {
		t.Fatalf("%d segments after rotate, want 2", got)
	}

	// A checkpoint that drained through seq 1 covers no whole segment.
	if n, err := l.TruncateThrough(1); err != nil || n != 0 {
		t.Fatalf("TruncateThrough(1) = %d, %v; want 0 removed", n, err)
	}
	// Through seq 2: the first segment (1..2) is covered; the active one
	// survives.
	n, err := l.TruncateThrough(2)
	if err != nil || n != 1 {
		t.Fatalf("TruncateThrough(2) = %d, %v; want 1 removed", n, err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("%d segments after truncate, want 1", got)
	}
	// The surviving record is still recoverable.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 || recs[0].Order.ID != 3 {
		t.Fatalf("post-truncate recovery = %+v, want just seq 3", recs)
	}
}

// TestWALRotateEmptyReuses: rotating an empty active segment must not stack
// empty files (repeated checkpoints on a quiet engine).
func TestWALRotateEmptyReuses(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("%d segments after 5 empty rotates, want 1", got)
	}
	mustAppendOrder(t, l, 1)
}

// TestWALMetricsHooks exercises the counter callbacks.
func TestWALMetricsHooks(t *testing.T) {
	dir := t.TempDir()
	var orders, pings, fsyncs, replayed int
	m := &Metrics{
		AppendsOrder: func() { orders++ },
		AppendsPing:  func() { pings++ },
		Fsync:        func(float64) { fsyncs++ },
		Replayed:     func(n int) { replayed += n },
	}
	l, _, err := Open(dir, Options{Metrics: m, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustAppendOrder(t, l, 1)
	mustAppendPing(t, l, 2)
	mustAppendOrder(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if orders != 2 || pings != 1 {
		t.Fatalf("append counters = %d orders, %d pings", orders, pings)
	}
	if fsyncs < 2 { // one batched sync at seq 2, one on Close
		t.Fatalf("fsyncs = %d, want >= 2", fsyncs)
	}
	if _, _, err := Open(dir, Options{Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if replayed != 3 {
		t.Fatalf("replayed = %d, want 3", replayed)
	}
}
