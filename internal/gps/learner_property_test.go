package gps

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// TestWeightsProperties drives the learner with randomised (seeded) samples
// and checks the properties every published epoch must satisfy:
//
//  1. every exported cell is finite and positive;
//  2. cells below minSamples are withheld (sparsity respected);
//  3. a reweighted graph falls back to the prior weight wherever the table
//     has no cell, and reproduces the learned mean where it does;
//  4. the learned mean equals sum/count exactly.
func TestWeightsProperties(t *testing.T) {
	g := streamTestGraph(t)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := NewSpeedLearner(g)
		type cellKey struct {
			u, v roadnet.NodeID
			slot int
		}
		counts := make(map[cellKey]int)
		sums := make(map[cellKey]float64)
		for i := 0; i < 500; i++ {
			u := roadnet.NodeID(rng.Intn(g.NumNodes()))
			outs := g.OutEdges(u)
			if len(outs) == 0 {
				continue
			}
			v := outs[rng.Intn(len(outs))].To
			slot := rng.Intn(roadnet.SlotsPerDay)
			sec := 10 + rng.Float64()*300
			tEnter := float64(slot)*3600 + rng.Float64()*3000
			if n := l.ObserveDrive([]roadnet.NodeID{u, v}, []float64{tEnter, tEnter + sec}); n == 1 {
				k := cellKey{u, v, slot}
				counts[k]++
				sums[k] += sec
			}
		}

		const minSamples = 2
		w := l.Weights(minSamples)
		seen := 0
		for k, c := range counts {
			got, ok := w.Get(k.u, k.v, k.slot)
			if c < minSamples {
				if ok {
					t.Fatalf("seed %d: cell %+v with %d samples exported", seed, k, c)
				}
				continue
			}
			seen++
			if !ok {
				t.Fatalf("seed %d: cell %+v with %d samples missing", seed, k, c)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
				t.Fatalf("seed %d: cell %+v exported invalid weight %v", seed, k, got)
			}
			if want := sums[k] / float64(c); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: cell %+v weight %v want mean %v", seed, k, got, want)
			}
		}
		if w.Cells() != seen {
			t.Fatalf("seed %d: table has %d cells, counted %d", seed, w.Cells(), seen)
		}

		// Reweighted graph: learned cells reproduce the mean, everything
		// else keeps the prior.
		ng := g.Reweighted(w)
		for u := 0; u < g.NumNodes(); u++ {
			outs := g.OutEdges(roadnet.NodeID(u))
			nouts := ng.OutEdges(roadnet.NodeID(u))
			for i := range outs {
				for s := 0; s < roadnet.SlotsPerDay; s++ {
					prior := g.EdgeTimeSlot(outs[i], s)
					got := ng.EdgeTimeSlot(nouts[i], s)
					if learned, ok := w.Get(roadnet.NodeID(u), outs[i].To, s); ok {
						if math.Abs(got-learned) > 1e-6 {
							t.Fatalf("seed %d: learned cell %d->%d slot %d: %v want %v",
								seed, u, outs[i].To, s, got, learned)
						}
					} else if math.Abs(got-prior) > 1e-9 {
						t.Fatalf("seed %d: fallback cell %d->%d slot %d: %v want prior %v",
							seed, u, outs[i].To, s, got, prior)
					}
				}
			}
		}
	}
}

// TestSnapshotEpochMonotonicity publishes shuffled epochs at a SwapRouter
// and verifies the served epoch only ever increases — the property the
// engine's concurrent RefreshWeights relies on.
func TestSnapshotEpochMonotonicity(t *testing.T) {
	g := streamTestGraph(t)
	r := roadnet.NewSwapRouter(g, func(gr *roadnet.Graph) roadnet.Router {
		return roadnet.NewDijkstraRouter(gr)
	})
	rng := rand.New(rand.NewSource(3))
	epochs := rng.Perm(20)
	served := uint64(0)
	for _, e := range epochs {
		ep := uint64(e + 1)
		accepted := r.Publish(roadnet.Snapshot{Epoch: ep, Graph: g})
		if accepted != (ep > served) {
			t.Fatalf("publish epoch %d with served %d: accepted=%v", ep, served, accepted)
		}
		if accepted {
			served = ep
		}
		if got := r.Epoch(); got != served {
			t.Fatalf("served epoch %d want %d", got, served)
		}
	}
}
