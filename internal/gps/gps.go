// Package gps closes the paper's data pipeline loop: the Swiggy road
// networks carry edge weights "extracted from the GPS pings of vehicles",
// with "vehicle GPS pings map-matched to the road network to obtain
// network-aligned trajectories" (Newson–Krumm HMM map matching [22]) and
// "the weight of each road network edge set to the average travel time
// across all vehicles" per hourly slot (Section V-A).
//
// This package provides the three pieces of that pipeline over synthetic
// data: a trace generator that emits noisy GPS pings from a ground-truth
// drive, an HMM map-matcher that recovers the node path, and a speed
// learner that aggregates matched trajectories into per-edge per-slot
// travel-time estimates — so the whole learn-from-pings loop is testable
// end to end against known ground truth.
package gps

import (
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Ping is one GPS observation.
type Ping struct {
	T   float64 // seconds since midnight
	Pos geo.Point
}

// Drive is a ground-truth traversal: the node sequence with the arrival
// time at each node (as produced by roadnet.Path or the simulator).
type Drive struct {
	Nodes []roadnet.NodeID
	Times []float64
}

// Synthesize emits pings every intervalSec along the drive, interpolating
// linearly within edges and adding isotropic Gaussian position noise of
// sigmaM metres. Deterministic in rng.
func Synthesize(g *roadnet.Graph, d Drive, intervalSec, sigmaM float64, rng *rand.Rand) []Ping {
	if len(d.Nodes) == 0 {
		return nil
	}
	var pings []Ping
	emit := func(t float64, p geo.Point) {
		noisy := geo.Offset(p, rng.NormFloat64()*sigmaM, rng.NormFloat64()*sigmaM)
		pings = append(pings, Ping{T: t, Pos: noisy})
	}
	start, end := d.Times[0], d.Times[len(d.Times)-1]
	seg := 0
	for t := start; t <= end; t += intervalSec {
		for seg+1 < len(d.Times) && d.Times[seg+1] < t {
			seg++
		}
		if seg+1 >= len(d.Nodes) {
			emit(t, g.Point(d.Nodes[len(d.Nodes)-1]))
			break
		}
		a, b := d.Nodes[seg], d.Nodes[seg+1]
		ta, tb := d.Times[seg], d.Times[seg+1]
		frac := 0.0
		if tb > ta {
			frac = (t - ta) / (tb - ta)
		}
		pa, pb := g.Point(a), g.Point(b)
		emit(t, geo.Point{
			Lat: pa.Lat + frac*(pb.Lat-pa.Lat),
			Lon: pa.Lon + frac*(pb.Lon-pa.Lon),
		})
	}
	return pings
}

// MatchOptions tunes the HMM matcher.
type MatchOptions struct {
	// CandidateRadiusM bounds the candidate nodes considered per ping.
	CandidateRadiusM float64
	// MaxCandidates caps candidates per ping (nearest first).
	MaxCandidates int
	// SigmaM is the GPS noise scale of the Gaussian emission model
	// (Newson–Krumm fit ~4.07 for vehicle GPS; ours is configurable).
	SigmaM float64
	// BetaM is the exponential scale of the transition model's
	// route-vs-great-circle discrepancy.
	BetaM float64
}

// DefaultMatchOptions mirror the Newson–Krumm parameterisation adapted to
// node-based matching on dense urban grids.
func DefaultMatchOptions() MatchOptions {
	return MatchOptions{
		CandidateRadiusM: 250,
		MaxCandidates:    6,
		SigmaM:           35,
		BetaM:            80,
	}
}

// Matcher map-matches ping sequences onto one road network.
type Matcher struct {
	g    *roadnet.Graph
	opt  MatchOptions
	sssp *roadnet.SSSP
	// all node points, for candidate search.
	pts []geo.Point
}

// NewMatcher builds a matcher for g.
func NewMatcher(g *roadnet.Graph, opt MatchOptions) *Matcher {
	if opt.CandidateRadiusM <= 0 {
		opt = DefaultMatchOptions()
	}
	pts := make([]geo.Point, g.NumNodes())
	for i := range pts {
		pts[i] = g.Point(roadnet.NodeID(i))
	}
	return &Matcher{g: g, opt: opt, sssp: roadnet.NewSSSP(g), pts: pts}
}

// candidate is one (node, emission log-prob) pair for a ping.
type candidate struct {
	node roadnet.NodeID
	logE float64
	dist float64
}

// candidates returns nodes within the radius, nearest first.
func (m *Matcher) candidates(p geo.Point) []candidate {
	var cands []candidate
	for i, pt := range m.pts {
		d := geo.Haversine(p, pt)
		if d <= m.opt.CandidateRadiusM {
			// Gaussian emission: log N(d; 0, sigma).
			logE := -0.5 * (d / m.opt.SigmaM) * (d / m.opt.SigmaM)
			cands = append(cands, candidate{node: roadnet.NodeID(i), logE: logE, dist: d})
		}
	}
	// Partial selection sort for the top MaxCandidates nearest.
	k := m.opt.MaxCandidates
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dist < cands[best].dist {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	return cands[:k]
}

// Match runs Viterbi over the HMM and returns the most likely node path
// (one matched node per ping) plus the stitched road path through the
// network. Returns ok=false when any ping has no candidate or no feasible
// transition survives.
func (m *Matcher) Match(pings []Ping) (matched []roadnet.NodeID, ok bool) {
	if len(pings) == 0 {
		return nil, false
	}
	type cell struct {
		logP float64
		prev int
	}
	prevCands := m.candidates(pings[0].Pos)
	if len(prevCands) == 0 {
		return nil, false
	}
	prevCells := make([]cell, len(prevCands))
	for i, c := range prevCands {
		prevCells[i] = cell{logP: c.logE, prev: -1}
	}
	allCands := [][]candidate{prevCands}
	allCells := [][]cell{prevCells}

	for pi := 1; pi < len(pings); pi++ {
		cands := m.candidates(pings[pi].Pos)
		if len(cands) == 0 {
			return nil, false
		}
		cells := make([]cell, len(cands))
		gc := geo.Haversine(pings[pi-1].Pos, pings[pi].Pos)
		dt := pings[pi].T - pings[pi-1].T
		// Distance views from each previous candidate (bounded by a
		// generous multiple of the great-circle displacement).
		bound := 4*gc + 800
		for ci := range cells {
			cells[ci] = cell{logP: math.Inf(-1), prev: -1}
		}
		for pci, pc := range allCands[pi-1] {
			if math.IsInf(allCells[pi-1][pci].logP, -1) {
				continue
			}
			// One SSSP expansion serves every candidate of this ping.
			view := m.sssp.FromSource(pc.node, pings[pi-1].T, boundTime(bound, dt))
			for ci, c := range cands {
				routeTime := view.Get(c.node)
				if math.IsInf(routeTime, 1) && pc.node != c.node {
					continue
				}
				if pc.node == c.node {
					routeTime = 0
				}
				// Convert route time back to metres at a nominal urban
				// speed for the discrepancy term; exact speeds cancel in
				// ranking as long as the scale is consistent.
				routeM := routeTime * nominalSpeedMS
				diff := math.Abs(routeM - gc)
				logT := -diff / m.opt.BetaM
				if lp := allCells[pi-1][pci].logP + logT + c.logE; lp > cells[ci].logP {
					cells[ci] = cell{logP: lp, prev: pci}
				}
			}
		}
		feasible := false
		for _, c := range cells {
			if !math.IsInf(c.logP, -1) {
				feasible = true
				break
			}
		}
		if !feasible {
			return nil, false
		}
		allCands = append(allCands, cands)
		allCells = append(allCells, cells)
	}

	// Backtrack.
	last := len(allCells) - 1
	bi, bp := -1, math.Inf(-1)
	for i, c := range allCells[last] {
		if c.logP > bp {
			bp = c.logP
			bi = i
		}
	}
	matched = make([]roadnet.NodeID, len(pings))
	for pi := last; pi >= 0; pi-- {
		matched[pi] = allCands[pi][bi].node
		bi = allCells[pi][bi].prev
	}
	return matched, true
}

// nominalSpeedMS converts route times to comparable metres in the
// transition model.
const nominalSpeedMS = 5.0

func boundTime(boundM, dt float64) float64 {
	b := boundM / nominalSpeedMS
	if dt*3 > b {
		b = dt * 3
	}
	return b
}

// Accuracy scores a matched path against the ground-truth drive: the
// fraction of pings whose matched node lies within tolM metres of the true
// interpolated position.
func Accuracy(g *roadnet.Graph, d Drive, pings []Ping, matched []roadnet.NodeID, tolM float64) float64 {
	if len(pings) == 0 || len(matched) != len(pings) {
		return 0
	}
	hits := 0
	seg := 0
	for i, p := range pings {
		for seg+1 < len(d.Times) && d.Times[seg+1] < p.T {
			seg++
		}
		truth := g.Point(d.Nodes[seg])
		if seg+1 < len(d.Nodes) {
			a, b := g.Point(d.Nodes[seg]), g.Point(d.Nodes[seg+1])
			frac := 0.0
			if d.Times[seg+1] > d.Times[seg] {
				frac = (p.T - d.Times[seg]) / (d.Times[seg+1] - d.Times[seg])
			}
			truth = geo.Point{Lat: a.Lat + frac*(b.Lat-a.Lat), Lon: a.Lon + frac*(b.Lon-a.Lon)}
		}
		if geo.Haversine(g.Point(matched[i]), truth) <= tolM {
			hits++
		}
	}
	return float64(hits) / float64(len(pings))
}
