package gps

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// stateChainGraph builds a small path graph for accumulator tests.
func stateChainGraph(n int) *roadnet.Graph {
	b := roadnet.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{Lat: 12.9, Lon: 77.5 + float64(i)*0.001})
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(roadnet.NodeID(i), roadnet.NodeID(i+1), 100, 50, 0)
		b.AddEdge(roadnet.NodeID(i+1), roadnet.NodeID(i), 100, 50, 0)
	}
	return b.MustBuild()
}

func TestLearnerStateRoundTrip(t *testing.T) {
	g := stateChainGraph(5)
	l := NewStreamLearner(g, StreamOptions{})
	l.ObserveEdge(0, 1, 10*3600, 55)
	l.ObserveEdge(0, 1, 10*3600+300, 65)
	l.ObserveEdge(1, 2, 19*3600, 80)
	l.ObserveEdge(3, 4, 86390, 30) // slot 23, just before midnight

	var buf bytes.Buffer
	if err := l.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	l2 := NewStreamLearner(g, StreamOptions{})
	if err := l2.LoadState(strings.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	// The restored learner serves the same estimates…
	for _, tc := range []struct {
		u, v roadnet.NodeID
		slot int
		cnt  int
	}{{0, 1, 10, 2}, {1, 2, 19, 1}, {3, 4, 23, 1}} {
		if got := l2.Samples(tc.u, tc.v, tc.slot); got != tc.cnt {
			t.Fatalf("restored samples %d->%d slot %d = %d, want %d", tc.u, tc.v, tc.slot, got, tc.cnt)
		}
	}
	w1, w2 := l.Weights(1), l2.Weights(1)
	if w1.Cells() != w2.Cells() {
		t.Fatalf("restored weights: %d cells, want %d", w2.Cells(), w1.Cells())
	}
	if sec, ok := w2.Get(0, 1, 10); !ok || sec != 60 {
		t.Fatalf("restored mean = %v/%v, want 60", sec, ok)
	}
	// …and exports byte-identical state (determinism for golden pinning).
	var buf2 bytes.Buffer
	if err := l2.SaveState(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Fatalf("state export not deterministic:\n%s\nvs\n%s", buf2.String(), saved)
	}
}

// TestLearnerStateMerge pins the resume semantics: learning day 1, saving,
// restoring into a fresh learner and learning day 2 must equal one learner
// observing both days.
func TestLearnerStateMerge(t *testing.T) {
	g := stateChainGraph(4)
	day1 := func(l *StreamLearner) {
		l.ObserveEdge(0, 1, 12*3600, 40)
		l.ObserveEdge(1, 2, 12*3600+100, 60)
	}
	day2 := func(l *StreamLearner) {
		l.ObserveEdge(0, 1, 12*3600, 80)
		l.ObserveEdge(2, 3, 20*3600, 70)
	}

	straight := NewStreamLearner(g, StreamOptions{})
	day1(straight)
	day2(straight)

	a := NewStreamLearner(g, StreamOptions{})
	day1(a)
	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewStreamLearner(g, StreamOptions{})
	if err := b.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	day2(b)

	var wantB, gotB bytes.Buffer
	if err := straight.SaveState(&wantB); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveState(&gotB); err != nil {
		t.Fatal(err)
	}
	if gotB.String() != wantB.String() {
		t.Fatalf("save/load/resume diverges from continuous learning:\n%s\nvs\n%s", gotB.String(), wantB.String())
	}
}

func TestLearnerStateRejectsBadCheckpoints(t *testing.T) {
	g := stateChainGraph(3)
	for name, payload := range map[string]string{
		"not json":     `{`,
		"bad version":  `{"version":9,"cells":[]}`,
		"bad slot":     `{"version":1,"cells":[{"from":0,"to":1,"slot":24,"sum":10,"cnt":1}]}`,
		"neg slot":     `{"version":1,"cells":[{"from":0,"to":1,"slot":-1,"sum":10,"cnt":1}]}`,
		"zero count":   `{"version":1,"cells":[{"from":0,"to":1,"slot":3,"sum":10,"cnt":0}]}`,
		"neg sum":      `{"version":1,"cells":[{"from":0,"to":1,"slot":3,"sum":-10,"cnt":1}]}`,
		"null sum":     `{"version":1,"cells":[{"from":0,"to":1,"slot":3,"sum":null,"cnt":1}]}`,
		"unknown edge": `{"version":1,"cells":[{"from":0,"to":2,"slot":3,"sum":10,"cnt":1}]}`,
		"node range":   `{"version":1,"cells":[{"from":0,"to":99,"slot":3,"sum":10,"cnt":1}]}`,
	} {
		l := NewStreamLearner(g, StreamOptions{})
		if err := l.LoadState(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
		// Rejection must be atomic: nothing merged.
		if l.Weights(1).Cells() != 0 {
			t.Errorf("%s: partial merge after rejection", name)
		}
	}
}
