package gps

import (
	"testing"

	"repro/internal/roadnet"
)

// TestMidnightRolloverAttribution pins slot attribution across the 23 → 0
// boundary on a continuous multi-day clock: observations entered just
// before midnight belong to slot 23, observations entered after midnight —
// on any later day — belong to slot 0, and a node-ping pair straddling
// midnight splits its interpolated segments between the two slots instead
// of smearing everything into one.
func TestMidnightRolloverAttribution(t *testing.T) {
	g := stateChainGraph(4)
	l := NewStreamLearner(g, StreamOptions{})
	l.ObserveEdge(0, 1, 86390, 20)             // 23:59:50 day 1 → slot 23
	l.ObserveEdge(1, 2, 86410, 30)             // 00:00:10 day 2 → slot 0
	l.ObserveEdge(2, 3, 2*86400+100, 40)       // 00:01:40 day 3 → slot 0
	l.ObserveEdge(0, 1, 5*86400+23.5*3600, 25) // 23:30 day 6 → slot 23
	for _, tc := range []struct {
		u, v roadnet.NodeID
		slot int
		want int
	}{
		{0, 1, 23, 2}, {0, 1, 0, 0},
		{1, 2, 0, 1}, {1, 2, 23, 0},
		{2, 3, 0, 1},
	} {
		if got := l.Samples(tc.u, tc.v, tc.slot); got != tc.want {
			t.Errorf("samples %d->%d slot %d = %d, want %d", tc.u, tc.v, tc.slot, got, tc.want)
		}
	}

	// A node-ping pair straddling midnight: 100 s over two 50 s edges, the
	// first entered in slot 23, the second in slot 0.
	l2 := NewStreamLearner(g, StreamOptions{})
	l2.ObserveNode(1, 86380, 0)
	l2.ObserveNode(1, 86480, 2)
	if got := l2.Samples(0, 1, 23); got != 1 {
		t.Errorf("straddling pair: first edge slot 23 samples = %d, want 1", got)
	}
	if got := l2.Samples(1, 2, 0); got != 1 {
		t.Errorf("straddling pair: second edge slot 0 samples = %d, want 1", got)
	}
	if got := l2.Samples(1, 2, 23); got != 0 {
		t.Errorf("straddling pair smeared second edge into slot 23 (%d samples)", got)
	}
}

// TestEndDayStopsCrossDayPhantoms is the midnight-rollover regression for
// per-day replay clocks: vehicle ids are reused across daily rosters, so
// without EndDay a trail left at 23:40 by yesterday's rider pairs with a
// late-evening ping from today's (different) rider at a plausible-looking
// 300 s gap and interpolates a traversal that never happened — phantom
// samples smeared into the late-night slots. EndDay discards the trails and
// keeps the estimates.
func TestEndDayStopsCrossDayPhantoms(t *testing.T) {
	g := stateChainGraph(4)

	// Without EndDay: the phantom lands in slot 23.
	dirty := NewStreamLearner(g, StreamOptions{})
	dirty.ObserveNode(7, 85200, 0) // yesterday 23:40, rider parked at node 0
	dirty.ObserveNode(7, 85500, 2) // "today" 23:45 (clock reset), new rider at node 2
	if got := dirty.Samples(0, 1, 23) + dirty.Samples(1, 2, 23); got == 0 {
		t.Fatal("expected the unflushed trail to produce phantom slot-23 samples (did the admission rules change?)")
	}

	// With EndDay between days: no phantoms, and real estimates survive.
	l := NewStreamLearner(g, StreamOptions{})
	l.ObserveEdge(2, 3, 21*3600, 45) // genuine day-1 sample
	l.ObserveNode(7, 85200, 0)       // day-1 trail
	l.EndDay()
	l.ObserveNode(7, 85500, 2) // day-2 first ping: starts a fresh trail
	if got := l.Samples(0, 1, 23) + l.Samples(1, 2, 23); got != 0 {
		t.Fatalf("EndDay did not stop cross-day phantom samples (%d)", got)
	}
	if got := l.Samples(2, 3, 21); got != 1 {
		t.Fatalf("EndDay dropped learned estimates (slot-21 samples = %d, want 1)", got)
	}
	// The fresh trail still works within day 2.
	l.ObserveNode(7, 85600, 3)
	if got := l.Samples(2, 3, 23); got != 1 {
		t.Fatalf("post-EndDay trail broken: slot-23 samples = %d, want 1", got)
	}

	// Raw-chunk trails are flushed too.
	lr := NewStreamLearner(g, StreamOptions{ChunkSize: 4})
	lr.ObserveRaw(9, 86000, g.Point(0))
	lr.ObserveRaw(9, 86020, g.Point(1))
	lr.EndDay()
	// Day 2 restarts at a smaller clock; a surviving buffer would reject
	// these as out-of-order and restart mid-chunk.
	for i := 0; i < 4; i++ {
		lr.ObserveRaw(9, 100+float64(i)*20, g.Point(roadnet.NodeID(i)))
	}
	if st := lr.Stats(); st.Matched+st.Unmatched == 0 {
		t.Fatal("post-EndDay raw chunk never reached the matcher")
	}
}
