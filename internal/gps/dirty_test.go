package gps

import (
	"bytes"
	"testing"

	"repro/internal/roadnet"
)

// TestWeightsDirtyProtocol pins the incremental-publish contract between the
// learner and the engine: WeightsDirty hands over exactly the edges touched
// since the last take (with their full admissible rows) and resets the set;
// cells still below the sample floor are withheld but re-marked by the very
// sample that later tips them over, so no update is ever lost.
func TestWeightsDirtyProtocol(t *testing.T) {
	g := streamTestGraph(t)
	l := NewStreamLearner(g, StreamOptions{})
	e0 := g.OutEdges(0)[0]
	e1 := g.OutEdges(1)[0]

	l.ObserveEdge(0, e0.To, 10*3600, 100)
	l.ObserveEdge(1, e1.To, 11*3600, 50) // one sample: below minSamples=2

	w, d := l.WeightsDirty(2)
	if d.Edges() != 2 || d.Cells() != 2 {
		t.Fatalf("dirty after two observations: %d edges %d cells", d.Edges(), d.Cells())
	}
	if _, ok := w.Get(0, e0.To, 10); ok {
		t.Fatal("single-sample cell exported at minSamples=2")
	}

	// Nothing new: the dirty set is drained.
	w, d = l.WeightsDirty(2)
	if d.Cells() != 0 || w.Cells() != 0 {
		t.Fatalf("drained set not empty: %d dirty, %d cells", d.Cells(), w.Cells())
	}

	// The tipping sample re-marks the cell and the full row comes through.
	l.ObserveEdge(0, e0.To, 10*3600+60, 140)
	w, d = l.WeightsDirty(2)
	if d.Edges() != 1 {
		t.Fatalf("dirty edges after tipping sample: %d", d.Edges())
	}
	if got, ok := w.Get(0, e0.To, 10); !ok || got != 120 {
		t.Fatalf("tipped cell = %v (%v), want 120", got, ok)
	}

	// WeightsFull exports everything and restarts the chain.
	l.ObserveEdge(1, e1.To, 11*3600+30, 70)
	full := l.WeightsFull(2)
	if got, ok := full.Get(1, e1.To, 11); !ok || got != 60 {
		t.Fatalf("full export cell = %v (%v), want 60", got, ok)
	}
	if _, d = l.WeightsDirty(2); d.Cells() != 0 {
		t.Fatalf("WeightsFull left %d dirty cells", d.Cells())
	}

	// Restored checkpoints count as touched.
	var buf bytes.Buffer
	if err := l.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewStreamLearner(g, StreamOptions{})
	if err := fresh.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	w, d = fresh.WeightsDirty(2)
	if d.Edges() != 2 {
		t.Fatalf("restored learner dirty edges: %d, want 2", d.Edges())
	}
	if got, ok := w.Get(0, e0.To, 10); !ok || got != 120 {
		t.Fatalf("restored cell = %v (%v), want 120", got, ok)
	}
	if fresh.Stats().Cells != 2 || fresh.Stats().Edges != 2 {
		t.Fatalf("restored stats: %+v", fresh.Stats())
	}
}

// TestLearnedGraphDenseLayout pins the ROADMAP debt paydown: learned graphs
// carry their weights in the dense edge-indexed float32 table, with observed
// cells serving the learned mean and everything else the source prior.
func TestLearnedGraphDenseLayout(t *testing.T) {
	g := streamTestGraph(t)
	l := NewSpeedLearner(g)
	e0 := g.OutEdges(0)[0]
	l.ObserveDrive([]roadnet.NodeID{0, e0.To}, []float64{9 * 3600, 9*3600 + 77})

	lg, err := l.LearnedGraph(1)
	if err != nil {
		t.Fatal(err)
	}
	if !lg.DenseWeights() {
		t.Fatal("learned graph is not in dense weight mode")
	}
	if got := lg.EdgeTimeSlot(lg.OutEdges(0)[0], 9); got != float64(float32(77)) {
		t.Fatalf("observed cell serves %v, want 77", got)
	}
	want := g.EdgeTimeSlot(e0, 15)
	if got := lg.EdgeTimeSlot(lg.OutEdges(0)[0], 15); got != float64(float32(want)) {
		t.Fatalf("unobserved cell serves %v, want prior %v", got, want)
	}
}
