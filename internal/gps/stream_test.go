package gps

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// streamTestGraph builds a small strongly-connected grid.
func streamTestGraph(tb testing.TB) *roadnet.Graph {
	tb.Helper()
	b := roadnet.NewBuilder()
	const dim = 6
	origin := geo.Point{Lat: 12.90, Lon: 77.50}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*200, float64(c)*200))
		}
	}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*dim + c) }
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if c+1 < dim {
				b.AddEdge(id(r, c), id(r, c+1), 200, 40, 0)
				b.AddEdge(id(r, c+1), id(r, c), 200, 40, 0)
			}
			if r+1 < dim {
				b.AddEdge(id(r, c), id(r+1, c), 200, 40, 0)
				b.AddEdge(id(r+1, c), id(r, c), 200, 40, 0)
			}
		}
	}
	return b.MustBuild()
}

func TestStreamLearnerObserveEdge(t *testing.T) {
	g := streamTestGraph(t)
	l := NewStreamLearner(g, StreamOptions{})
	l.ObserveEdge(0, 1, 10*3600, 55)
	l.ObserveEdge(0, 1, 10*3600+100, 65)
	if got := l.Samples(0, 1, 10); got != 2 {
		t.Fatalf("samples = %d want 2", got)
	}
	w := l.Weights(1)
	sec, ok := w.Get(0, 1, 10)
	if !ok || math.Abs(sec-60) > 1e-9 {
		t.Fatalf("learned weight %v,%v want 60", sec, ok)
	}
	// Poisoned inputs never become samples.
	l.ObserveEdge(0, 1, math.NaN(), 50)
	l.ObserveEdge(0, 1, 10*3600, math.Inf(1))
	l.ObserveEdge(0, 1, 10*3600, -5)
	l.ObserveEdge(0, 99999, 10*3600, 50)
	if got := l.Samples(0, 1, 10); got != 2 {
		t.Fatalf("samples after poison = %d want 2", got)
	}
	st := l.Stats()
	if st.Dropped == 0 || st.Samples != 2 {
		t.Fatalf("stats %+v: want dropped>0, samples=2", st)
	}
}

func TestStreamLearnerObserveNodeInterpolates(t *testing.T) {
	g := streamTestGraph(t)
	l := NewStreamLearner(g, StreamOptions{})
	// Two pings three hops apart (0 -> 3 along the first row), 150 s apart:
	// each 40 s modelled edge should receive 50 s.
	l.ObserveNode(7, 12*3600, 0)
	l.ObserveNode(7, 12*3600+150, 3)
	w := l.Weights(1)
	for _, pair := range [][2]roadnet.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		sec, ok := w.Get(pair[0], pair[1], 12)
		if !ok {
			t.Fatalf("edge %v not learned", pair)
		}
		if math.Abs(sec-50) > 1e-6 {
			t.Fatalf("edge %v learned %v want 50", pair, sec)
		}
	}
	// A gap past MaxGapSec is dropped.
	l2 := NewStreamLearner(g, StreamOptions{MaxGapSec: 60})
	l2.ObserveNode(1, 1000, 0)
	l2.ObserveNode(1, 2000, 3)
	if got := l2.Weights(1).Cells(); got != 0 {
		t.Fatalf("over-gap pair learned %d cells", got)
	}
}

func TestStreamLearnerObserveRawMatchesChunks(t *testing.T) {
	g := streamTestGraph(t)
	rng := rand.New(rand.NewSource(7))
	// Ground truth drive along the first row, 40 s per edge.
	nodes := []roadnet.NodeID{0, 1, 2, 3, 4, 5}
	times := make([]float64, len(nodes))
	for i := range times {
		times[i] = 13*3600 + float64(i)*40
	}
	pings := Synthesize(g, Drive{Nodes: nodes, Times: times}, 10, 5, rng)
	l := NewStreamLearner(g, StreamOptions{ChunkSize: len(pings)})
	for _, p := range pings {
		l.ObserveRaw(42, p.T, p.Pos)
	}
	st := l.Stats()
	if st.Matched == 0 {
		t.Fatalf("no chunk matched (stats %+v)", st)
	}
	if st.Samples == 0 || st.Cells == 0 {
		t.Fatalf("raw pipeline learned nothing (stats %+v)", st)
	}
	// NaN positions are rejected at admission.
	before := l.Stats().Dropped
	l.ObserveRaw(42, 13*3600, geo.Point{Lat: math.NaN(), Lon: 77.5})
	if got := l.Stats().Dropped; got != before+1 {
		t.Fatalf("NaN position not dropped (%d -> %d)", before, got)
	}
}

// TestStreamLearnerConcurrent hammers all three observation planes plus
// Weights() from many goroutines; run under -race in CI.
func TestStreamLearnerConcurrent(t *testing.T) {
	g := streamTestGraph(t)
	l := NewStreamLearner(g, StreamOptions{ChunkSize: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					l.ObserveEdge(roadnet.NodeID(i%6), roadnet.NodeID(i%6+1), float64(i), 40)
				case 1:
					l.ObserveNode(int64(w), float64(i*60), roadnet.NodeID(i%g.NumNodes()))
				case 2:
					l.ObserveRaw(int64(100+w), float64(i*10), g.Point(roadnet.NodeID(i%g.NumNodes())))
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = l.Weights(1)
			_ = l.Stats()
		}
	}()
	wg.Wait()
	<-done
}
