package gps

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/roadnet"
)

// LearnerState is the serialisable form of a speed learner's accumulators —
// not the derived means but the raw (sum, count) per (edge, slot) cell, so a
// restored learner keeps averaging new observations into old ones exactly as
// if it had never stopped. This is what persists travel-time knowledge
// across the days of a multi-day replay (and across engine restarts, via
// Engine.CheckpointWeights).
type LearnerState struct {
	Version int                `json:"version"`
	Cells   []LearnerCellState `json:"cells"`
}

// LearnerCellState is one accumulator cell.
type LearnerCellState struct {
	From roadnet.NodeID `json:"from"`
	To   roadnet.NodeID `json:"to"`
	Slot int            `json:"slot"`
	Sum  float64        `json:"sum"`
	Cnt  int            `json:"cnt"`
}

// learnerStateVersion guards the checkpoint format.
const learnerStateVersion = 1

// ExportState snapshots the learner's accumulators, deterministically
// ordered by (from, to, slot) so identical learners export identical bytes.
func (l *SpeedLearner) ExportState() *LearnerState {
	st := &LearnerState{Version: learnerStateVersion}
	g := l.g
	for u := 0; u < g.NumNodes(); u++ {
		off := g.OutEdgeOffset(roadnet.NodeID(u))
		for i, e := range g.OutEdges(roadnet.NodeID(u)) {
			ei := off + i
			for slot := 0; slot < roadnet.SlotsPerDay; slot++ {
				c := ei*roadnet.SlotsPerDay + slot
				if l.cnt[c] <= 0 {
					continue
				}
				st.Cells = append(st.Cells, LearnerCellState{
					From: roadnet.NodeID(u), To: e.To, Slot: slot,
					Sum: l.sum[c], Cnt: int(l.cnt[c]),
				})
			}
		}
	}
	sort.Slice(st.Cells, func(i, j int) bool {
		a, b := st.Cells[i], st.Cells[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Slot < b.Slot
	})
	return st
}

// ImportState merges a snapshot into the learner: sums and counts add onto
// whatever is already accumulated, so importing day-1's state into a learner
// that then observes day 2 yields the same estimates as one learner running
// both days. Cells are validated — unknown edges, out-of-range slots and
// non-finite or non-positive accumulators are rejected before anything is
// merged, so a bad checkpoint cannot half-apply.
func (l *SpeedLearner) ImportState(st *LearnerState) error {
	if st == nil {
		return fmt.Errorf("gps: nil learner state")
	}
	if st.Version != learnerStateVersion {
		return fmt.Errorf("gps: learner state version %d (want %d)", st.Version, learnerStateVersion)
	}
	// Validate everything — including that the merged counts stay inside
	// the int32 accumulators, accumulated across duplicate cells and onto
	// whatever this learner already holds — before touching any state, so
	// a bad checkpoint cannot half-apply (and cannot silently wrap a count
	// negative, which would make the cell vanish from every later export).
	planned := make(map[int]int64, len(st.Cells))
	for _, c := range st.Cells {
		if c.Slot < 0 || c.Slot >= roadnet.SlotsPerDay {
			return fmt.Errorf("gps: learner state cell %d->%d: slot %d out of range", c.From, c.To, c.Slot)
		}
		if c.Cnt <= 0 || c.Sum <= 0 || math.IsNaN(c.Sum) || math.IsInf(c.Sum, 0) {
			return fmt.Errorf("gps: learner state cell %d->%d slot %d: invalid accumulator (sum=%v cnt=%d)",
				c.From, c.To, c.Slot, c.Sum, c.Cnt)
		}
		if c.From < 0 || int(c.From) >= l.g.NumNodes() || c.To < 0 || int(c.To) >= l.g.NumNodes() {
			return fmt.Errorf("gps: learner state cell %d->%d: node out of range", c.From, c.To)
		}
		ei := l.g.EdgeIndexOf(c.From, c.To)
		if ei < 0 {
			return fmt.Errorf("gps: learner state cell %d->%d: no such edge", c.From, c.To)
		}
		idx := ei*roadnet.SlotsPerDay + c.Slot
		planned[idx] += int64(c.Cnt)
		if int64(l.cnt[idx])+planned[idx] > math.MaxInt32 {
			return fmt.Errorf("gps: learner state cell %d->%d slot %d: merged count overflows (have %d, adding %d)",
				c.From, c.To, c.Slot, l.cnt[idx], planned[idx])
		}
	}
	// Restored cells count as touched: the next incremental publish must
	// carry them to the routers.
	for _, c := range st.Cells {
		ei := l.g.EdgeIndexOf(c.From, c.To)
		l.add(c.From, c.To, ei, c.Slot, c.Sum, int32(c.Cnt))
	}
	return nil
}

// SaveState writes the streaming learner's accumulated estimates as one
// JSON document (deterministic bytes for identical states). Safe to call
// concurrently with observation ingest.
func (l *StreamLearner) SaveState(w io.Writer) error {
	l.mu.Lock()
	st := l.base.ExportState()
	l.mu.Unlock()
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// LoadState merges a SaveState document into the learner (see
// SpeedLearner.ImportState for the merge and validation semantics).
func (l *StreamLearner) LoadState(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	var st LearnerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("gps: learner state: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.ImportState(&st)
}

// State snapshots the streaming learner's accumulators as a typed document
// (the in-memory form of SaveState) — what the engine embeds in its full
// checkpoint. Safe to call concurrently with observation ingest.
func (l *StreamLearner) State() *LearnerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.ExportState()
}

// RestoreState merges a State snapshot into the learner (the typed
// counterpart of LoadState; see SpeedLearner.ImportState for the merge and
// validation semantics).
func (l *StreamLearner) RestoreState(st *LearnerState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.ImportState(st)
}

// EndDay closes out one replay day: the per-vehicle ping trails (last
// node-aligned observation and buffered raw chunks) are discarded while the
// learned estimates are kept. Multi-day replays that restart each day's
// clock at midnight MUST call this between days — vehicle ids are reused
// across rosters, and a stale trail from the previous evening paired with a
// fresh late-night ping at a plausible-looking gap would otherwise be
// interpolated as a phantom traversal, smearing observations that never
// happened into the slot-23/slot-0 cells. (Replays on one continuous
// multi-day clock don't need it: roadnet.Slot wraps 23 → 0 on its own.)
func (l *StreamLearner) EndDay() {
	l.mu.Lock()
	defer l.mu.Unlock()
	clear(l.last)
	clear(l.raw)
}
