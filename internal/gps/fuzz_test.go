package gps

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// fuzzGraph is the shared map-matching substrate; built once — fuzzing
// rebuilds would dominate the iteration budget.
var fuzzGraph = func() *roadnet.Graph {
	b := roadnet.NewBuilder()
	const dim = 5
	origin := geo.Point{Lat: 12.90, Lon: 77.50}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*180, float64(c)*180))
		}
	}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*dim + c) }
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if c+1 < dim {
				b.AddEdge(id(r, c), id(r, c+1), 180, 30, 0)
				b.AddEdge(id(r, c+1), id(r, c), 180, 30, 0)
			}
			if r+1 < dim {
				b.AddEdge(id(r, c), id(r+1, c), 180, 30, 0)
				b.AddEdge(id(r+1, c), id(r, c), 180, 30, 0)
			}
		}
	}
	return b.MustBuild()
}()

// decodePings turns fuzz bytes into a ping sequence: 12 bytes per ping —
// 4 for a time offset, 4+4 for lat/lon offsets around the graph's extent.
// The decoder intentionally produces hostile values (huge offsets, zero
// and backwards time steps) while staying deterministic.
func decodePings(data []byte) []Ping {
	var pings []Ping
	origin := geo.Point{Lat: 12.90, Lon: 77.50}
	for len(data) >= 12 && len(pings) < 64 {
		dt := binary.LittleEndian.Uint32(data[0:4])
		dLat := int32(binary.LittleEndian.Uint32(data[4:8]))
		dLon := int32(binary.LittleEndian.Uint32(data[8:12]))
		data = data[12:]
		t := float64(dt % 172_800)
		pings = append(pings, Ping{
			T: t,
			Pos: geo.Point{
				Lat: origin.Lat + float64(dLat%10_000)/100_000,
				Lon: origin.Lon + float64(dLon%10_000)/100_000,
			},
		})
	}
	return pings
}

// FuzzMatch feeds arbitrary ping sequences through the HMM map-matcher: it
// must never panic, and when it reports ok the matched path must be sane
// (one in-range node per ping).
func FuzzMatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// A plausible straight-line trail.
	seed := make([]byte, 0, 12*6)
	for i := 0; i < 6; i++ {
		var rec [12]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(36000+30*i))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(160*i))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(10*i))
		seed = append(seed, rec[:]...)
	}
	f.Add(seed)

	g := fuzzGraph
	f.Fuzz(func(t *testing.T, data []byte) {
		pings := decodePings(data)
		m := NewMatcher(g, DefaultMatchOptions())
		matched, ok := m.Match(pings)
		if !ok {
			return
		}
		if len(matched) != len(pings) {
			t.Fatalf("matched %d nodes for %d pings", len(matched), len(pings))
		}
		for i, node := range matched {
			if node < 0 || int(node) >= g.NumNodes() {
				t.Fatalf("ping %d matched out-of-range node %d", i, node)
			}
		}
	})
}

// FuzzStreamLearner drives the full streaming surface with arbitrary
// observations: whatever arrives, the learner must neither panic nor let a
// non-finite or non-positive estimate into an exported weight table.
func FuzzStreamLearner(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	g := fuzzGraph
	f.Fuzz(func(t *testing.T, data []byte) {
		l := NewStreamLearner(g, StreamOptions{ChunkSize: 4})
		for len(data) >= 12 {
			kind := data[0] % 3
			vid := int64(data[1] % 4)
			tRaw := binary.LittleEndian.Uint32(data[2:6])
			a := binary.LittleEndian.Uint32(data[6:10])
			bb := binary.LittleEndian.Uint16(data[10:12])
			data = data[12:]
			tt := math.Float64frombits(uint64(tRaw) << 20) // often NaN/Inf/denormal
			switch kind {
			case 0:
				l.ObserveEdge(roadnet.NodeID(int32(a)), roadnet.NodeID(int32(bb)), tt, float64(int16(bb)))
			case 1:
				l.ObserveNode(vid, tt, roadnet.NodeID(int32(a%64)-4))
			case 2:
				l.ObserveRaw(vid, float64(tRaw%86400), geo.Point{
					Lat: 12.9 + float64(int32(a)%1000)/50_000,
					Lon: 77.5 + float64(int32(bb))/50_000,
				})
			}
		}
		w := l.Weights(1)
		for u := 0; u < g.NumNodes(); u++ {
			for _, e := range g.OutEdges(roadnet.NodeID(u)) {
				for s := 0; s < roadnet.SlotsPerDay; s++ {
					if sec, ok := w.Get(roadnet.NodeID(u), e.To, s); ok {
						if math.IsNaN(sec) || math.IsInf(sec, 0) || sec <= 0 {
							t.Fatalf("poisoned weight %v on edge %d->%d slot %d", sec, u, e.To, s)
						}
					}
				}
			}
		}
	})
}
