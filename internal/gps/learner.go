package gps

import (
	"math"

	"repro/internal/roadnet"
)

// SpeedLearner aggregates matched trajectories into per-edge per-slot
// travel-time estimates — the Section V-A procedure that produces β(e,t)
// from "the average travel time across all of Swiggy's vehicles in the
// corresponding road", per hourly slot.
//
// Accumulators live in one dense edge-indexed table (sum/cnt at
// edgeIndex·SlotsPerDay+slot) rather than per-slot hash maps: observation
// ingest is the hot path of the live traffic plane (one call per finished
// edge traversal), and the flat layout makes it an index computation plus
// two array writes, with no per-sample allocation. Parallel u→v edges share
// the leading edge's row — the same aggregation the (u, v)-keyed maps
// performed. The learner also tracks which cells changed since the last
// publish (a roadnet.DirtyCells), which is what lets the engine patch weight
// epochs incrementally instead of rebuilding O(|E|·slots) tables.
type SpeedLearner struct {
	g *roadnet.Graph
	// sum/cnt accumulate observations at cell edgeIndex*SlotsPerDay+slot.
	sum []float64
	cnt []int32
	// dirty marks cells touched since the last TakeDirty.
	dirty *roadnet.DirtyCells
	// obsCells / obsEdges count cells and edges with ≥1 sample (kept
	// incrementally so stats never need a table scan).
	obsCells, obsEdges int
}

// NewSpeedLearner returns an empty learner over g.
func NewSpeedLearner(g *roadnet.Graph) *SpeedLearner {
	m := g.NumEdges()
	return &SpeedLearner{
		g:     g,
		sum:   make([]float64, m*roadnet.SlotsPerDay),
		cnt:   make([]int32, m*roadnet.SlotsPerDay),
		dirty: roadnet.NewDirtyCells(),
	}
}

// cell returns the dense accumulator index for (u→v, slot), or -1 when the
// graph has no such edge.
func (l *SpeedLearner) cell(u, v roadnet.NodeID, slot int) int {
	ei := l.g.EdgeIndexOf(u, v)
	if ei < 0 {
		return -1
	}
	return ei*roadnet.SlotsPerDay + slot
}

// edgeObserved reports whether any slot of the edge's row has samples.
func (l *SpeedLearner) edgeObserved(ei int) bool {
	row := l.cnt[ei*roadnet.SlotsPerDay : (ei+1)*roadnet.SlotsPerDay]
	for _, c := range row {
		if c > 0 {
			return true
		}
	}
	return false
}

// add books one sample into a cell, keeping the dirty set and the
// observed-cell/edge counters consistent.
func (l *SpeedLearner) add(u, v roadnet.NodeID, ei, slot int, sum float64, n int32) {
	c := ei*roadnet.SlotsPerDay + slot
	if l.cnt[c] == 0 {
		if !l.edgeObserved(ei) {
			l.obsEdges++
		}
		l.obsCells++
	}
	l.sum[c] += sum
	l.cnt[c] += n
	l.dirty.Mark(u, v, slot)
}

// ObserveDrive records a ground-truth-timed traversal (typically the
// matched trajectory re-timed by ping timestamps): consecutive node pairs
// that are actual edges contribute a travel-time sample to the slot in
// which the edge was entered. Returns the number of samples admitted —
// malformed segments (non-edges, non-positive or implausible durations,
// NaN timestamps) are skipped, never recorded.
func (l *SpeedLearner) ObserveDrive(nodes []roadnet.NodeID, times []float64) int {
	n := 0
	for i := 0; i+1 < len(nodes) && i+1 < len(times); i++ {
		u, v := nodes[i], nodes[i+1]
		if u == v {
			continue
		}
		if u < 0 || int(u) >= l.g.NumNodes() || v < 0 || int(v) >= l.g.NumNodes() {
			continue
		}
		ei := l.g.EdgeIndexOf(u, v)
		if ei < 0 {
			continue
		}
		dt := times[i+1] - times[i]
		if math.IsNaN(times[i]) || math.IsNaN(dt) || dt <= 0 || dt > 3600 {
			continue // implausible sample
		}
		l.add(u, v, ei, roadnet.Slot(times[i]), dt, 1)
		n++
	}
	return n
}

// Samples returns the observation count for an edge and slot.
func (l *SpeedLearner) Samples(u, v roadnet.NodeID, slot int) int {
	c := l.cell(u, v, slot)
	if c < 0 {
		return 0
	}
	return int(l.cnt[c])
}

// Estimate returns the learned mean traversal time for an edge in a slot,
// or fallback when unobserved.
func (l *SpeedLearner) Estimate(u, v roadnet.NodeID, slot int, fallback float64) float64 {
	c := l.cell(u, v, slot)
	if c >= 0 && l.cnt[c] > 0 {
		return l.sum[c] / float64(l.cnt[c])
	}
	return fallback
}

// ObservedCells / ObservedEdges report how many (edge, slot) cells and
// edges hold at least one sample (maintained incrementally — O(1)).
func (l *SpeedLearner) ObservedCells() int { return l.obsCells }
func (l *SpeedLearner) ObservedEdges() int { return l.obsEdges }

// Weights exports the learned estimates as a sparse roadnet.SlotWeights
// table: one cell per (edge, slot) with at least minSamples observations,
// everything else left to the consuming graph's prior. This is the live
// pipeline's publish format — cheap to build, cheap to apply with
// Graph.Reweighted — where LearnedGraph below is the offline batch form.
func (l *SpeedLearner) Weights(minSamples int) *roadnet.SlotWeights {
	if minSamples < 1 {
		minSamples = 1
	}
	w := roadnet.NewSlotWeights()
	g := l.g
	for u := 0; u < g.NumNodes(); u++ {
		off := g.OutEdgeOffset(roadnet.NodeID(u))
		for i, e := range g.OutEdges(roadnet.NodeID(u)) {
			l.exportRow(w, roadnet.NodeID(u), e.To, off+i, minSamples)
		}
	}
	return w
}

// exportRow writes edge ei's admissible cells into w (no-op for non-leading
// parallel edges, whose rows are empty by construction).
func (l *SpeedLearner) exportRow(w *roadnet.SlotWeights, u, v roadnet.NodeID, ei, minSamples int) {
	row := l.cnt[ei*roadnet.SlotsPerDay : (ei+1)*roadnet.SlotsPerDay]
	for s, c := range row {
		if int(c) < minSamples {
			continue
		}
		// Set rejects non-finite/non-positive means; ObserveDrive's
		// admission filter makes that unreachable, but the guard keeps a
		// poisoned accumulator out of a published epoch regardless.
		_ = w.Set(u, v, s, l.sum[ei*roadnet.SlotsPerDay+s]/float64(c))
	}
}

// DirtyCellCount reports how many cells are currently marked dirty (O(1)).
func (l *SpeedLearner) DirtyCellCount() int { return l.dirty.Cells() }

// TakeDirty returns the set of cells touched since the last TakeDirty (or
// learner creation) and resets it — one half of the incremental publish
// protocol; WeightsForDirty is the other.
func (l *SpeedLearner) TakeDirty() *roadnet.DirtyCells {
	d := l.dirty
	l.dirty = roadnet.NewDirtyCells()
	return d
}

// WeightsForDirty exports the complete current rows of every edge in the
// dirty set (cells below minSamples withheld, exactly like Weights) — the
// O(dirty) delta table Graph.PatchReweighted consumes.
func (l *SpeedLearner) WeightsForDirty(minSamples int, dirty *roadnet.DirtyCells) *roadnet.SlotWeights {
	if minSamples < 1 {
		minSamples = 1
	}
	w := roadnet.NewSlotWeights()
	dirty.Range(func(u, v roadnet.NodeID, _ uint32) {
		if ei := l.g.EdgeIndexOf(u, v); ei >= 0 {
			l.exportRow(w, u, v, ei, minSamples)
		}
	})
	return w
}

// LearnedGraph materialises a new road network whose edge weights are the
// learned per-slot estimates, with unobserved cells falling back to the
// source graph's β. The result uses the dense edge-indexed slot-seconds
// layout (one float32 per cell) rather than a dedicated 24-float64
// congestion row per edge — at city scale that is the difference between a
// learned graph costing ~4× and ~0.5× the base graph's weight storage.
//
// MinSamples guards against overfitting single noisy observations.
func (l *SpeedLearner) LearnedGraph(minSamples int) (*roadnet.Graph, error) {
	if minSamples < 1 {
		minSamples = 1
	}
	g := l.g
	secs := make([]float32, g.NumEdges()*roadnet.SlotsPerDay)
	for u := 0; u < g.NumNodes(); u++ {
		off := g.OutEdgeOffset(roadnet.NodeID(u))
		for i, e := range g.OutEdges(roadnet.NodeID(u)) {
			ei := off + i
			// Parallel u→v edges aggregate on the leading edge's row.
			lead := g.EdgeIndexOf(roadnet.NodeID(u), e.To)
			for s := 0; s < roadnet.SlotsPerDay; s++ {
				c := lead*roadnet.SlotsPerDay + s
				if int(l.cnt[c]) >= minSamples {
					secs[ei*roadnet.SlotsPerDay+s] = float32(l.sum[c] / float64(l.cnt[c]))
				} else {
					secs[ei*roadnet.SlotsPerDay+s] = float32(g.EdgeTimeSlot(e, s))
				}
			}
		}
	}
	return g.WithDenseWeights(secs)
}

// MeanAbsErrorSec compares learned estimates to the source graph's true
// β(e, slot) over all (edge, slot) cells with at least minSamples
// observations; returns the mean absolute error in seconds and the number
// of cells compared.
func (l *SpeedLearner) MeanAbsErrorSec(minSamples int) (mae float64, cells int) {
	g := l.g
	for u := 0; u < g.NumNodes(); u++ {
		off := g.OutEdgeOffset(roadnet.NodeID(u))
		for i, e := range g.OutEdges(roadnet.NodeID(u)) {
			ei := off + i
			for s := 0; s < roadnet.SlotsPerDay; s++ {
				c := ei*roadnet.SlotsPerDay + s
				if int(l.cnt[c]) < minSamples {
					continue
				}
				est := l.sum[c] / float64(l.cnt[c])
				mae += math.Abs(est - g.EdgeTimeSlot(e, s))
				cells++
			}
		}
	}
	if cells > 0 {
		mae /= float64(cells)
	}
	return mae, cells
}
