package gps

import (
	"math"

	"repro/internal/roadnet"
)

// SpeedLearner aggregates matched trajectories into per-edge per-slot
// travel-time estimates — the Section V-A procedure that produces β(e,t)
// from "the average travel time across all of Swiggy's vehicles in the
// corresponding road", per hourly slot.
type SpeedLearner struct {
	g *roadnet.Graph
	// sum[slot][edgeKey] / cnt[slot][edgeKey] accumulate observations.
	sum []map[int64]float64
	cnt []map[int64]int
}

// NewSpeedLearner returns an empty learner over g.
func NewSpeedLearner(g *roadnet.Graph) *SpeedLearner {
	l := &SpeedLearner{
		g:   g,
		sum: make([]map[int64]float64, roadnet.SlotsPerDay),
		cnt: make([]map[int64]int, roadnet.SlotsPerDay),
	}
	for s := range l.sum {
		l.sum[s] = make(map[int64]float64)
		l.cnt[s] = make(map[int64]int)
	}
	return l
}

func edgeKey(u, v roadnet.NodeID) int64 { return roadnet.EdgeKey(u, v) }

// ObserveDrive records a ground-truth-timed traversal (typically the
// matched trajectory re-timed by ping timestamps): consecutive node pairs
// that are actual edges contribute a travel-time sample to the slot in
// which the edge was entered. Returns the number of samples admitted —
// malformed segments (non-edges, non-positive or implausible durations,
// NaN timestamps) are skipped, never recorded.
func (l *SpeedLearner) ObserveDrive(nodes []roadnet.NodeID, times []float64) int {
	n := 0
	for i := 0; i+1 < len(nodes) && i+1 < len(times); i++ {
		u, v := nodes[i], nodes[i+1]
		if u == v {
			continue
		}
		if u < 0 || int(u) >= l.g.NumNodes() || v < 0 || int(v) >= l.g.NumNodes() {
			continue
		}
		if !l.hasEdge(u, v) {
			continue
		}
		dt := times[i+1] - times[i]
		if math.IsNaN(times[i]) || math.IsNaN(dt) || dt <= 0 || dt > 3600 {
			continue // implausible sample
		}
		slot := roadnet.Slot(times[i])
		k := edgeKey(u, v)
		l.sum[slot][k] += dt
		l.cnt[slot][k]++
		n++
	}
	return n
}

func (l *SpeedLearner) hasEdge(u, v roadnet.NodeID) bool {
	for _, e := range l.g.OutEdges(u) {
		if e.To == v {
			return true
		}
	}
	return false
}

// Samples returns the observation count for an edge and slot.
func (l *SpeedLearner) Samples(u, v roadnet.NodeID, slot int) int {
	return l.cnt[slot][edgeKey(u, v)]
}

// Estimate returns the learned mean traversal time for an edge in a slot,
// or fallback when unobserved.
func (l *SpeedLearner) Estimate(u, v roadnet.NodeID, slot int, fallback float64) float64 {
	k := edgeKey(u, v)
	if c := l.cnt[slot][k]; c > 0 {
		return l.sum[slot][k] / float64(c)
	}
	return fallback
}

// Weights exports the learned estimates as a sparse roadnet.SlotWeights
// table: one cell per (edge, slot) with at least minSamples observations,
// everything else left to the consuming graph's prior. This is the live
// pipeline's publish format — cheap to build, cheap to apply with
// Graph.Reweighted — where LearnedGraph below is the offline batch form.
func (l *SpeedLearner) Weights(minSamples int) *roadnet.SlotWeights {
	if minSamples < 1 {
		minSamples = 1
	}
	w := roadnet.NewSlotWeights()
	for slot := 0; slot < roadnet.SlotsPerDay; slot++ {
		for k, c := range l.cnt[slot] {
			if c < minSamples {
				continue
			}
			u, v := roadnet.EdgeKeyNodes(k)
			// Set rejects non-finite/non-positive means; ObserveDrive's
			// admission filter makes that unreachable, but the guard keeps
			// a poisoned accumulator out of a published epoch regardless.
			_ = w.Set(u, v, slot, l.sum[slot][k]/float64(c))
		}
	}
	return w
}

// LearnedGraph materialises a new road network whose edge weights are the
// learned per-slot estimates: each (edge, slot) cell gets its own learned
// time (realised through one zone per edge with per-slot multipliers over
// the edge's observed mean), unobserved cells falling back to the source
// graph's β. The geometry is copied unchanged.
//
// MinSamples guards against overfitting single noisy observations.
func (l *SpeedLearner) LearnedGraph(minSamples int) (*roadnet.Graph, error) {
	g := l.g
	b := roadnet.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNode(g.Point(roadnet.NodeID(i)))
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, e := range g.OutEdges(roadnet.NodeID(u)) {
			base := math.Inf(1)
			var mult [roadnet.SlotsPerDay]float64
			// Learned base = mean over observed slots; multipliers express
			// slot variation around it.
			observed := 0
			sum := 0.0
			for s := 0; s < roadnet.SlotsPerDay; s++ {
				if l.cnt[s][edgeKey(roadnet.NodeID(u), e.To)] >= minSamples {
					sum += l.Estimate(roadnet.NodeID(u), e.To, s, 0)
					observed++
				}
			}
			if observed > 0 {
				base = sum / float64(observed)
			}
			for s := 0; s < roadnet.SlotsPerDay; s++ {
				trueBeta := g.EdgeTimeSlot(e, s)
				if l.cnt[s][edgeKey(roadnet.NodeID(u), e.To)] >= minSamples && !math.IsInf(base, 1) && base > 0 {
					mult[s] = l.Estimate(roadnet.NodeID(u), e.To, s, trueBeta) / base
				} else if !math.IsInf(base, 1) && base > 0 {
					// Unobserved slot on an observed edge: keep the source
					// graph's relative profile.
					mult[s] = trueBeta / float64(e.BaseSec) * float64(e.BaseSec) / base
				} else {
					mult[s] = 1
				}
				if mult[s] <= 0 {
					mult[s] = 1
				}
			}
			zone := b.AddZone(mult)
			if math.IsInf(base, 1) {
				// Fully unobserved edge: copy the source free-flow time and
				// its own profile via a dedicated zone.
				var srcMult [roadnet.SlotsPerDay]float64
				for s := range srcMult {
					srcMult[s] = g.EdgeTimeSlot(e, s) / float64(e.BaseSec)
				}
				zone = b.AddZone(srcMult)
				base = float64(e.BaseSec)
			}
			b.AddEdge(roadnet.NodeID(u), e.To, float64(e.LenM), base, zone)
		}
	}
	return b.Build()
}

// MeanAbsErrorSec compares learned estimates to the source graph's true
// β(e, slot) over all (edge, slot) cells with at least minSamples
// observations; returns the mean absolute error in seconds and the number
// of cells compared.
func (l *SpeedLearner) MeanAbsErrorSec(minSamples int) (mae float64, cells int) {
	g := l.g
	for u := 0; u < g.NumNodes(); u++ {
		for _, e := range g.OutEdges(roadnet.NodeID(u)) {
			for s := 0; s < roadnet.SlotsPerDay; s++ {
				k := edgeKey(roadnet.NodeID(u), e.To)
				if l.cnt[s][k] < minSamples {
					continue
				}
				est := l.sum[s][k] / float64(l.cnt[s][k])
				mae += math.Abs(est - g.EdgeTimeSlot(e, s))
				cells++
			}
		}
	}
	if cells > 0 {
		mae /= float64(cells)
	}
	return mae, cells
}
