package gps

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// testGrid builds an n×n grid, hop time w seconds, blocks 200 m.
func testGrid(n int, w float64) *roadnet.Graph {
	b := roadnet.NewBuilder()
	origin := geo.Point{Lat: 12.9, Lon: 77.5}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*200, float64(c)*200))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				b.AddEdge(id(r, c), id(r, c+1), 200, w, 0)
				b.AddEdge(id(r, c+1), id(r, c), 200, w, 0)
			}
			if r+1 < n {
				b.AddEdge(id(r, c), id(r+1, c), 200, w, 0)
				b.AddEdge(id(r+1, c), id(r, c), 200, w, 0)
			}
		}
	}
	return b.MustBuild()
}

// groundTruthDrive picks a shortest path and returns the timed drive.
func groundTruthDrive(g *roadnet.Graph, from, to roadnet.NodeID, t0 float64) Drive {
	p := roadnet.Path(g, from, to, t0)
	if p == nil {
		panic("disconnected test graph")
	}
	return Drive{Nodes: p.Nodes, Times: p.Times}
}

func TestSynthesizePingCountAndSpread(t *testing.T) {
	g := testGrid(10, 40)
	d := groundTruthDrive(g, 0, 99, 0)
	rng := rand.New(rand.NewSource(1))
	pings := Synthesize(g, d, 10, 20, rng)
	if len(pings) < 10 {
		t.Fatalf("too few pings: %d", len(pings))
	}
	// Pings must be near the path corridor.
	for _, p := range pings {
		nearest := math.Inf(1)
		for _, u := range d.Nodes {
			if dd := geo.Haversine(p.Pos, g.Point(u)); dd < nearest {
				nearest = dd
			}
		}
		if nearest > 400 {
			t.Fatalf("ping %v strayed %f m from the path", p, nearest)
		}
	}
	// Timestamps strictly increasing.
	for i := 1; i < len(pings); i++ {
		if pings[i].T <= pings[i-1].T {
			t.Fatal("ping timestamps not increasing")
		}
	}
}

func TestMatchRecoverStraightDrive(t *testing.T) {
	g := testGrid(12, 40)
	d := groundTruthDrive(g, 0, 143, 0)
	rng := rand.New(rand.NewSource(3))
	pings := Synthesize(g, d, 15, 25, rng)
	m := NewMatcher(g, DefaultMatchOptions())
	matched, ok := m.Match(pings)
	if !ok {
		t.Fatal("match failed")
	}
	acc := Accuracy(g, d, pings, matched, 150)
	if acc < 0.85 {
		t.Fatalf("matching accuracy %.2f below 0.85", acc)
	}
}

func TestMatchRobustToHeavyNoise(t *testing.T) {
	g := testGrid(12, 40)
	d := groundTruthDrive(g, 5, 138, 0)
	rng := rand.New(rand.NewSource(7))
	pings := Synthesize(g, d, 15, 60, rng) // heavy noise
	opt := DefaultMatchOptions()
	opt.SigmaM = 60
	m := NewMatcher(g, opt)
	matched, ok := m.Match(pings)
	if !ok {
		t.Fatal("match failed under noise")
	}
	acc := Accuracy(g, d, pings, matched, 220)
	if acc < 0.7 {
		t.Fatalf("noisy matching accuracy %.2f below 0.7", acc)
	}
}

func TestMatchEmptyAndIsolated(t *testing.T) {
	g := testGrid(5, 40)
	m := NewMatcher(g, DefaultMatchOptions())
	if _, ok := m.Match(nil); ok {
		t.Fatal("empty ping list matched")
	}
	// A ping far outside the city has no candidates.
	far := geo.Offset(g.Point(0), 50_000, 50_000)
	if _, ok := m.Match([]Ping{{T: 0, Pos: far}}); ok {
		t.Fatal("off-map ping matched")
	}
}

func TestSpeedLearnerRecoversEdgeTimes(t *testing.T) {
	// Congested grid: slot multipliers vary; drives at two different hours
	// must recover the slot-specific times.
	b := roadnet.NewBuilder()
	var mult [roadnet.SlotsPerDay]float64
	for i := range mult {
		mult[i] = 1
	}
	mult[12] = 2.0 // lunch doubles times
	zone := b.AddZone(mult)
	origin := geo.Point{Lat: 12.9, Lon: 77.5}
	const n = 6
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*200, float64(c)*200))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				b.AddEdge(id(r, c), id(r, c+1), 200, 40, zone)
				b.AddEdge(id(r, c+1), id(r, c), 200, 40, zone)
			}
			if r+1 < n {
				b.AddEdge(id(r, c), id(r+1, c), 200, 40, zone)
				b.AddEdge(id(r+1, c), id(r, c), 200, 40, zone)
			}
		}
	}
	g := b.MustBuild()

	l := NewSpeedLearner(g)
	// Observe drives at 3 AM (free flow) and noon (doubled).
	for trial := 0; trial < 10; trial++ {
		from := roadnet.NodeID(trial % 36)
		to := roadnet.NodeID((trial*17 + 5) % 36)
		if from == to {
			continue
		}
		for _, hour := range []float64{3, 12} {
			p := roadnet.Path(g, from, to, hour*3600)
			if p == nil {
				t.Fatal("disconnected")
			}
			l.ObserveDrive(p.Nodes, p.Times)
		}
	}
	mae, cells := l.MeanAbsErrorSec(1)
	if cells == 0 {
		t.Fatal("no cells observed")
	}
	if mae > 1 {
		t.Fatalf("MAE %.2f s on noiseless drives, want ~0", mae)
	}
	// Spot-check a specific edge in both slots.
	u, v := id(0, 0), id(0, 1)
	if l.Samples(u, v, 3) > 0 {
		if got := l.Estimate(u, v, 3, 0); math.Abs(got-40) > 1e-6 {
			t.Fatalf("free-flow estimate = %v, want 40", got)
		}
	}
	if l.Samples(u, v, 12) > 0 {
		if got := l.Estimate(u, v, 12, 0); math.Abs(got-80) > 1e-6 {
			t.Fatalf("lunch estimate = %v, want 80", got)
		}
	}
}

func TestLearnedGraphReproducesObservedTravelTimes(t *testing.T) {
	g := testGrid(8, 40)
	l := NewSpeedLearner(g)
	// Cover the graph densely with noiseless drives at hour 9.
	for from := 0; from < 64; from += 3 {
		p := roadnet.Path(g, roadnet.NodeID(from), roadnet.NodeID((from+37)%64), 9*3600)
		if p != nil {
			l.ObserveDrive(p.Nodes, p.Times)
		}
	}
	lg, err := l.LearnedGraph(1)
	if err != nil {
		t.Fatal(err)
	}
	if lg.NumNodes() != g.NumNodes() || lg.NumEdges() != g.NumEdges() {
		t.Fatal("learned graph changed topology")
	}
	// Learned SP times at hour 9 should match the source for covered pairs.
	for trial := 0; trial < 10; trial++ {
		from := roadnet.NodeID(trial * 5 % 64)
		to := roadnet.NodeID((trial*11 + 3) % 64)
		want := roadnet.ShortestPath(g, from, to, 9*3600)
		got := roadnet.ShortestPath(lg, from, to, 9*3600)
		if math.Abs(got-want) > 0.1*want+1 {
			t.Fatalf("learned SP(%d,%d) = %v, true %v", from, to, got, want)
		}
	}
}

func TestEndToEndPingPipeline(t *testing.T) {
	// Full loop: drive -> noisy pings -> map-match -> learn -> compare.
	g := testGrid(10, 40)
	rng := rand.New(rand.NewSource(11))
	m := NewMatcher(g, DefaultMatchOptions())
	l := NewSpeedLearner(g)
	drives := 0
	for trial := 0; trial < 15; trial++ {
		from := roadnet.NodeID(rng.Intn(100))
		to := roadnet.NodeID(rng.Intn(100))
		if from == to {
			continue
		}
		d := groundTruthDrive(g, from, to, 9*3600)
		pings := Synthesize(g, d, 20, 20, rng)
		if len(pings) < 3 {
			continue
		}
		matched, ok := m.Match(pings)
		if !ok {
			continue
		}
		times := make([]float64, len(pings))
		for i := range pings {
			times[i] = pings[i].T
		}
		l.ObserveDrive(matched, times)
		drives++
	}
	if drives < 8 {
		t.Fatalf("only %d drives matched", drives)
	}
	mae, cells := l.MeanAbsErrorSec(2)
	if cells == 0 {
		t.Fatal("no multi-sample cells")
	}
	// Matched-and-noisy estimates should still land near the 40 s truth.
	if mae > 25 {
		t.Fatalf("end-to-end MAE %.1f s too high", mae)
	}
}
