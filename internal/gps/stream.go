package gps

import (
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// StreamOptions tunes the streaming learner.
type StreamOptions struct {
	// Match configures the HMM matcher behind ObserveRaw (zero value =
	// DefaultMatchOptions).
	Match MatchOptions
	// ChunkSize is how many raw pings accumulate per vehicle before one
	// map-matching pass runs (0 = 12). Larger chunks give the Viterbi pass
	// more context; smaller chunks learn with less latency.
	ChunkSize int
	// MaxGapSec drops node-aligned observations further apart than this
	// (0 = 600): a vehicle silent for ten minutes did not necessarily drive
	// the shortest path between its pings.
	MaxGapSec float64
	// MaxHops bounds the interpolated path between two node-aligned
	// observations (0 = 16); longer routes are too ambiguous to attribute
	// per-edge times to.
	MaxHops int
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Match.CandidateRadiusM <= 0 {
		o.Match = DefaultMatchOptions()
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 12
	}
	if o.MaxGapSec <= 0 {
		o.MaxGapSec = 600
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 16
	}
	return o
}

// StreamStats is a point-in-time snapshot of learner throughput.
type StreamStats struct {
	// Pings counts every observation offered (edge, node and raw).
	Pings int64 `json:"pings"`
	// Samples counts (edge, slot) travel-time samples admitted.
	Samples int64 `json:"samples"`
	// Matched counts raw-chunk map-matching passes that succeeded; Unmatched
	// counts passes the HMM rejected.
	Matched   int64 `json:"matched"`
	Unmatched int64 `json:"unmatched"`
	// Dropped counts observations rejected at admission (non-finite time or
	// position, out-of-range node, over-gap pairs).
	Dropped int64 `json:"dropped"`
	// Edges / Cells describe the current estimate table.
	Edges int `json:"edges"`
	Cells int `json:"cells"`
}

// nodeObs is the last node-aligned observation of one vehicle.
type nodeObs struct {
	t    float64
	node roadnet.NodeID
}

// StreamLearner is the online form of the Section V-A weight pipeline: it
// ingests live vehicle observations — exact edge traversals from the
// engine's mover, node-snapped pings, or raw GPS positions that get HMM
// map-matched in chunks — and maintains per-edge per-slot travel-time
// estimates that can be published as a roadnet.SlotWeights table at any
// moment.
//
// All methods are safe for concurrent use: the engine's movement hooks fire
// from several worker goroutines and HTTP ping handlers from arbitrary
// ones, while the weight-publish loop reads estimates concurrently.
type StreamLearner struct {
	mu      sync.Mutex
	g       *roadnet.Graph
	opt     StreamOptions
	base    *SpeedLearner
	matcher *Matcher
	last    map[int64]nodeObs
	raw     map[int64][]Ping
	stats   StreamStats
}

// NewStreamLearner returns an empty streaming learner over g.
func NewStreamLearner(g *roadnet.Graph, opt StreamOptions) *StreamLearner {
	return &StreamLearner{
		g:    g,
		opt:  opt.withDefaults(),
		base: NewSpeedLearner(g),
		last: make(map[int64]nodeObs),
		raw:  make(map[int64][]Ping),
	}
}

// Graph returns the road network the learner observes.
func (l *StreamLearner) Graph() *roadnet.Graph { return l.g }

// ObserveEdge records one exact edge traversal: u→v entered at tEnter,
// taking sec seconds. This is the engine's movement plane — simulated
// vehicles traverse real edges, which is the in-process analogue of a
// perfectly map-matched GPS trail.
func (l *StreamLearner) ObserveEdge(u, v roadnet.NodeID, tEnter, sec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Pings++
	if math.IsNaN(tEnter) || math.IsInf(tEnter, 0) || math.IsNaN(sec) || math.IsInf(sec, 0) {
		l.stats.Dropped++
		return
	}
	if n := l.base.ObserveDrive([]roadnet.NodeID{u, v}, []float64{tEnter, tEnter + sec}); n > 0 {
		l.stats.Samples += int64(n)
	} else {
		l.stats.Dropped++
	}
}

// ObserveNode records a node-snapped ping for a vehicle at simulation time
// t. Consecutive observations of the same vehicle are interpolated along
// the quickest path between the two nodes, the observed wall time spread
// proportionally over the path's modelled segment times — the standard
// trick for attributing a multi-edge gap to its constituent edges.
func (l *StreamLearner) ObserveNode(vid int64, t float64, node roadnet.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Pings++
	if math.IsNaN(t) || math.IsInf(t, 0) || node < 0 || int(node) >= l.g.NumNodes() {
		l.stats.Dropped++
		return
	}
	prev, ok := l.last[vid]
	l.last[vid] = nodeObs{t: t, node: node}
	if !ok || node == prev.node {
		return
	}
	dt := t - prev.t
	if dt <= 0 || dt > l.opt.MaxGapSec {
		l.stats.Dropped++
		return
	}
	p := roadnet.Path(l.g, prev.node, node, prev.t)
	if p == nil || len(p.Nodes) < 2 || len(p.Nodes)-1 > l.opt.MaxHops {
		l.stats.Dropped++
		return
	}
	modelled := p.Times[len(p.Times)-1] - p.Times[0]
	if modelled <= 0 {
		l.stats.Dropped++
		return
	}
	// Re-time the path so its total equals the observed gap.
	scale := dt / modelled
	times := make([]float64, len(p.Times))
	for i := range times {
		times[i] = prev.t + (p.Times[i]-p.Times[0])*scale
	}
	if n := l.base.ObserveDrive(p.Nodes, times); n > 0 {
		l.stats.Samples += int64(n)
	}
}

// ObserveRaw buffers a raw GPS position for a vehicle; every ChunkSize
// pings the buffered trail is HMM map-matched (Newson–Krumm) and the
// matched trajectory, re-timed by the ping timestamps, feeds the estimate
// table. This is the path real driver GPS takes in the paper's pipeline.
func (l *StreamLearner) ObserveRaw(vid int64, t float64, pos geo.Point) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Pings++
	if math.IsNaN(t) || math.IsInf(t, 0) ||
		math.IsNaN(pos.Lat) || math.IsInf(pos.Lat, 0) ||
		math.IsNaN(pos.Lon) || math.IsInf(pos.Lon, 0) {
		l.stats.Dropped++
		return
	}
	buf := l.raw[vid]
	if n := len(buf); n > 0 {
		if t == buf[n-1].T {
			// Duplicate timestamp (clients stamped with a round-quantized
			// clock send these routinely): skip the ping, keep the trail.
			l.stats.Dropped++
			return
		}
		if t < buf[n-1].T {
			// Genuinely out-of-order: restart the trail rather than feed
			// the HMM a non-monotonic sequence.
			buf = buf[:0]
			l.stats.Dropped++
		}
	}
	buf = append(buf, Ping{T: t, Pos: pos})
	if len(buf) < l.opt.ChunkSize {
		l.raw[vid] = buf
		return
	}
	if l.matcher == nil {
		l.matcher = NewMatcher(l.g, l.opt.Match)
	}
	matched, ok := l.matcher.Match(buf)
	if ok {
		l.stats.Matched++
		times := make([]float64, len(buf))
		for i := range buf {
			times[i] = buf[i].T
		}
		if n := l.base.ObserveDrive(matched, times); n > 0 {
			l.stats.Samples += int64(n)
		}
	} else {
		l.stats.Unmatched++
	}
	// Keep the last ping so the next chunk's trail is continuous.
	l.raw[vid] = append(buf[:0], buf[len(buf)-1])
}

// Weights exports the current estimates as a publishable SlotWeights table
// (cells with fewer than minSamples observations are withheld).
func (l *StreamLearner) Weights(minSamples int) *roadnet.SlotWeights {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.Weights(minSamples)
}

// WeightsDirty atomically takes the dirty set accumulated since the last
// WeightsDirty/WeightsFull call (or learner creation) together with the
// complete current rows of every dirty edge — the O(changed) delta the
// engine feeds to Graph.PatchReweighted. Cells below minSamples are
// withheld exactly like Weights; a withheld cell is re-marked dirty by the
// very sample that tips it over the floor, so nothing is ever lost between
// publishes.
func (l *StreamLearner) WeightsDirty(minSamples int) (*roadnet.SlotWeights, *roadnet.DirtyCells) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.base.TakeDirty()
	return l.base.WeightsForDirty(minSamples, d), d
}

// DirtyCells reports how many (edge, slot) cells have been touched since
// the last WeightsDirty/WeightsFull take — the cheap "is there anything to
// publish?" probe the engine's periodic refresh uses to skip weight-
// identical epochs.
func (l *StreamLearner) DirtyCells() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.DirtyCellCount()
}

// WeightsFull atomically exports the full admissible table AND resets the
// dirty set — the publish that (re)starts an incremental patch chain, e.g.
// the engine's first epoch or the first learner publish after an external
// ImportWeights replaced the served table wholesale.
func (l *StreamLearner) WeightsFull(minSamples int) *roadnet.SlotWeights {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base.TakeDirty()
	return l.base.Weights(minSamples)
}

// Samples returns the observation count for one edge and slot.
func (l *StreamLearner) Samples(u, v roadnet.NodeID, slot int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.Samples(u, v, slot)
}

// Stats snapshots learner throughput, including the current table size.
func (l *StreamLearner) Stats() StreamStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Edges = l.base.ObservedEdges()
	s.Cells = l.base.ObservedCells()
	return s
}
