package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce finds the minimum-cost assignment of min(n,m) pairs by
// exhaustive enumeration. Only finite-cost pairings are allowed.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	if n == 0 {
		return 0
	}
	m := len(cost[0])
	k := n
	if m < k {
		k = m
	}
	best := math.Inf(1)
	usedCol := make([]bool, m)
	var rec func(row int, assigned int, total float64, skipped int)
	rec = func(row, assigned int, total float64, skipped int) {
		// Pruning-free exhaustive search; allow skipping rows only when
		// unavoidable (forbidden edges).
		if assigned == k {
			if total < best {
				best = total
			}
			return
		}
		if row == n {
			return
		}
		// Assign row to some free finite column.
		for j := 0; j < m; j++ {
			if usedCol[j] || math.IsInf(cost[row][j], 1) {
				continue
			}
			usedCol[j] = true
			rec(row+1, assigned+1, total+cost[row][j], skipped)
			usedCol[j] = false
		}
		// Or skip the row (needed when full matching impossible, or when
		// n > m).
		if n-row-1+assigned >= k-1 || true {
			rec(row+1, assigned, total, skipped+1)
		}
	}
	rec(0, 0, 0, 0)
	return best
}

func TestSolveTrivial(t *testing.T) {
	if got := Solve(nil); got != nil {
		t.Fatalf("Solve(nil) = %v", got)
	}
	got := Solve([][]float64{{5}})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("1x1 = %v", got)
	}
}

func TestSolveZeroColumns(t *testing.T) {
	got := Solve([][]float64{{}, {}})
	if len(got) != 2 {
		t.Fatalf("zero-column result = %v", got)
	}
}

func TestSolvePaperFigure2(t *testing.T) {
	// Fig. 2 bipartite graph: rows o1,o2,o3; cols v1,v2,v3.
	// Edge costs: o1: v1=3, v2=1, v3=7; o2: v1=17, v2=0, v3=1;
	// o3: v1=3, v2=5, v3=7.
	// Wait — the figure lists o1:(3,1,7)? The minimum matching selects
	// o1->v2(1), o2->v3(1), o3->v1(3) = 5 units, matching Example 6's
	// "cumulative cost 5, 1 unit better than Greedy".
	cost := [][]float64{
		{3, 1, 7},
		{17, 0, 1},
		{3, 5, 7},
	}
	mate := Solve(cost)
	if got := TotalCost(cost, mate); got != 5 {
		t.Fatalf("Fig. 2 matching cost = %v, want 5", got)
	}
	if Matched(mate) != 3 {
		t.Fatalf("matched %d of 3", Matched(mate))
	}
}

func TestSolveSquareKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	mate := Solve(cost)
	if got := TotalCost(cost, mate); got != 5 { // 1 + 2 + 2
		t.Fatalf("cost = %v, want 5", got)
	}
}

func TestSolveRectangularWide(t *testing.T) {
	// 2 rows, 4 cols: both rows must be matched.
	cost := [][]float64{
		{9, 2, 7, 8},
		{6, 4, 3, 7},
	}
	mate := Solve(cost)
	if Matched(mate) != 2 {
		t.Fatalf("matched = %d, want 2", Matched(mate))
	}
	if got := TotalCost(cost, mate); got != 5 { // 2 + 3
		t.Fatalf("cost = %v, want 5", got)
	}
}

func TestSolveRectangularTall(t *testing.T) {
	// 4 rows, 2 cols: exactly 2 rows matched, minimum total.
	cost := [][]float64{
		{10, 10},
		{1, 10},
		{10, 1},
		{10, 10},
	}
	mate := Solve(cost)
	if Matched(mate) != 2 {
		t.Fatalf("matched = %d, want 2", Matched(mate))
	}
	if got := TotalCost(cost, mate); got != 2 {
		t.Fatalf("cost = %v, want 2", got)
	}
	if mate[1] != 0 || mate[2] != 1 {
		t.Fatalf("assignment = %v, want rows 1,2 matched", mate)
	}
}

func TestSolveForbiddenEdges(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1},
		{inf, inf},
	}
	mate := Solve(cost)
	if mate[0] != 1 {
		t.Fatalf("row 0 should take col 1, got %v", mate)
	}
	if mate[1] != -1 {
		t.Fatalf("row 1 has only forbidden edges, must be unmatched, got %v", mate)
	}
}

func TestSolveAllForbidden(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{{inf, inf}, {inf, inf}}
	mate := Solve(cost)
	for i, j := range mate {
		if j != -1 {
			t.Fatalf("row %d matched to %d in all-forbidden matrix", i, j)
		}
	}
}

func TestSolveNegativeWeights(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	mate := Solve(cost)
	if got := TotalCost(cost, mate); got != -10 {
		t.Fatalf("cost = %v, want -10", got)
	}
}

func TestSolveMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if rng.Float64() < 0.1 {
					cost[i][j] = math.Inf(1)
				} else {
					cost[i][j] = math.Floor(rng.Float64() * 100)
				}
			}
		}
		mate := Solve(cost)
		got := TotalCost(cost, mate)
		want := bruteForce(cost)
		// When a full min(n,m) matching is impossible (forbidden edges) the
		// brute force may be Inf while Solve matched fewer rows. Compare
		// only when brute force found a full matching and Solve matched
		// fully too.
		k := n
		if m < k {
			k = m
		}
		if !math.IsInf(want, 1) && Matched(mate) == k {
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("trial %d (%dx%d): solve = %v, brute = %v\nmatrix: %v", trial, n, m, got, want, cost)
			}
		}
	}
}

func TestSolveQuickProperty(t *testing.T) {
	// Property: Solve never assigns two rows to one column and never uses a
	// forbidden edge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if rng.Float64() < 0.2 {
					cost[i][j] = math.Inf(1)
				} else {
					cost[i][j] = rng.Float64() * 50
				}
			}
		}
		mate := Solve(cost)
		seen := make(map[int]bool)
		for i, j := range mate {
			if j < 0 {
				continue
			}
			if j >= m || seen[j] {
				return false
			}
			if math.IsInf(cost[i][j], 1) {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLargeUniform(t *testing.T) {
	// Identity-like matrix: diagonal is cheapest; optimal = trace.
	const n = 50
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = 1
			} else {
				cost[i][j] = 100
			}
		}
	}
	mate := Solve(cost)
	if got := TotalCost(cost, mate); got != n {
		t.Fatalf("diagonal matrix cost = %v, want %d", got, n)
	}
}

func BenchmarkSolve100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 100
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 1000
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(cost)
	}
}
