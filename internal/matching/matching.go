// Package matching implements minimum-weight perfect matching on a bipartite
// graph — the Kuhn–Munkres assignment step at the heart of FOODMATCH — using
// the shortest-augmenting-path formulation with dual potentials
// (Jonker–Volgenant), O(n²·m) for an n×m cost matrix.
//
// Rectangular matrices are handled per the Bourgeois–Lassalle extension [19]
// the paper cites: when rows outnumber columns the matrix is transposed, so
// exactly min(n, m) pairs are produced, which is the constraint
// Σ x_{o,v} = min(|U1|, |U2|) of the paper's minimisation problem.
package matching

import "math"

// Solve computes a minimum-total-weight assignment for the given cost
// matrix. cost[i][j] is the weight of pairing row i with column j; +Inf
// forbids the pairing outright. It returns rowMate, where rowMate[i] is the
// column assigned to row i or -1, with exactly min(rows, cols) rows matched
// (fewer if forbidden entries make a full matching impossible).
//
// All rows must have equal length. Weights may be negative as long as they
// are finite; the implementation shifts internally.
func Solve(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	if m == 0 {
		return make([]int, n)
	}
	if n <= m {
		return solveRect(cost, n, m)
	}
	// More rows than columns: transpose, solve, invert.
	tr := make([][]float64, m)
	for j := 0; j < m; j++ {
		tr[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			tr[j][i] = cost[i][j]
		}
	}
	colMate := solveRect(tr, m, n)
	rowMate := make([]int, n)
	for i := range rowMate {
		rowMate[i] = -1
	}
	for j, i := range colMate {
		if i >= 0 {
			rowMate[i] = j
		}
	}
	return rowMate
}

// solveRect solves for n ≤ m using successive shortest augmenting paths.
// Infinite entries are replaced by a large finite sentinel so the dual
// machinery stays finite; augmenting paths that can only reach a row via a
// sentinel edge are rejected afterwards.
func solveRect(cost [][]float64, n, m int) []int {
	// big: strictly larger than any achievable finite path cost.
	maxFinite := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if c := cost[i][j]; !math.IsInf(c, 1) && math.Abs(c) > maxFinite {
				maxFinite = math.Abs(c)
			}
		}
	}
	big := (maxFinite + 1) * float64(n+1) * 4

	get := func(i, j int) float64 {
		if c := cost[i][j]; !math.IsInf(c, 1) {
			return c
		}
		return big
	}

	// Potentials: u over rows, v over columns. matchCol[j] = row matched to
	// column j (or -1).
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	matchCol := make([]int, m+1)
	for j := range matchCol {
		matchCol[j] = -1
	}

	// way[j] = previous column on the alternating path to column j.
	way := make([]int, m+1)
	minv := make([]float64, m+1)
	used := make([]bool, m+1)

	for i := 0; i < n; i++ {
		// Dummy column m anchors the augmenting path for row i.
		matchCol[m] = i
		j0 := m
		for j := 0; j <= m; j++ {
			minv[j] = math.Inf(1)
			used[j] = false
			way[j] = -1
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 0; j < m; j++ {
				if used[j] {
					continue
				}
				cur := get(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 {
				// No reachable free column; leave row unmatched (possible
				// only if every edge is forbidden — callers see -1).
				break
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == -1 {
				break
			}
		}
		if j0 == m || matchCol[j0] != -1 {
			// Augmentation failed; undo the dummy anchor.
			matchCol[m] = -1
			continue
		}
		// Unwind the alternating path.
		for j0 != m {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
		matchCol[m] = -1
	}

	rowMate := make([]int, n)
	for i := range rowMate {
		rowMate[i] = -1
	}
	for j := 0; j < m; j++ {
		if i := matchCol[j]; i >= 0 {
			rowMate[i] = j
		}
	}
	// Reject pairings that exist only through sentinel (forbidden) edges.
	for i := 0; i < n; i++ {
		if j := rowMate[i]; j >= 0 && math.IsInf(cost[i][j], 1) {
			rowMate[i] = -1
		}
	}
	return rowMate
}

// TotalCost sums the cost of an assignment produced by Solve, skipping
// unmatched rows.
func TotalCost(cost [][]float64, rowMate []int) float64 {
	total := 0.0
	for i, j := range rowMate {
		if j >= 0 {
			total += cost[i][j]
		}
	}
	return total
}

// Matched counts assigned rows.
func Matched(rowMate []int) int {
	n := 0
	for _, j := range rowMate {
		if j >= 0 {
			n++
		}
	}
	return n
}
