package experiments

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
	"repro/internal/sim"
)

// Fig6b reproduces Fig. 6(b): extra delivery time of FOODMATCH vs the Reyes
// et al. baseline across all four datasets. The paper reports roughly an
// order of magnitude advantage for FOODMATCH on the Swiggy cities and a
// smaller gap on GrubHub.
func Fig6b(st Setup) (*Table, error) {
	t := &Table{
		ID:      "F6b",
		Title:   "XDT (hours) — FoodMatch vs Reyes",
		Columns: []string{"FoodMatch", "Reyes", "ratio"},
		Notes: []string{
			"paper shape: Reyes ~10x worse on Swiggy cities; smaller gap on GrubHub",
			"XDT includes the Omega penalty for rejected orders (Problem 1 objective)",
		},
	}
	datasets := []string{"CityB", "CityC", "CityA", "GrubHub"}
	if len(st.Cities) > 0 {
		datasets = st.Cities
	}
	for _, name := range datasets {
		fm, err := cellMetrics(name, "foodmatch", st)
		if err != nil {
			return nil, err
		}
		ry, err := cellMetrics(name, "reyes", st)
		if err != nil {
			return nil, err
		}
		a, b := fm.ObjectiveHours(), ry.ObjectiveHours()
		// Guard the ratio against (near-)zero denominators on unloaded
		// datasets (GrubHub off-peak XDT can round to ~0 hours).
		ratio := b / math.Max(a, 0.05)
		t.Rows = append(t.Rows, Row{Label: name, Values: []float64{a, b, ratio}})
	}
	return t, nil
}

// Fig6cde reproduces Fig. 6(c–e): FOODMATCH vs Greedy on XDT, orders per km
// and vehicle waiting time across the three cities. The paper's headline: 30 %
// lower XDT, ~20 % better O/Km, thousands of driver-hours less waiting.
func Fig6cde(st Setup) ([]*Table, error) {
	xdt := &Table{ID: "F6c", Title: "XDT (hours) — FoodMatch vs Greedy",
		Columns: []string{"FoodMatch", "Greedy", "improv(%)"},
		Notes:   []string{"paper shape: FoodMatch ~30% lower"}}
	okm := &Table{ID: "F6d", Title: "Orders per km — FoodMatch vs Greedy",
		Columns: []string{"FoodMatch", "Greedy", "improv(%)"},
		Notes:   []string{"paper shape: FoodMatch ~20% higher"}}
	wt := &Table{ID: "F6e", Title: "Waiting time (hours) — FoodMatch vs Greedy",
		Columns: []string{"FoodMatch", "Greedy", "improv(%)"},
		Notes:   []string{"paper shape: FoodMatch substantially lower (~40% at city scale)"}}
	for _, name := range st.cities() {
		fm, err := cellMetrics(name, "foodmatch", st)
		if err != nil {
			return nil, err
		}
		gr, err := cellMetrics(name, "greedy", st)
		if err != nil {
			return nil, err
		}
		xdt.Rows = append(xdt.Rows, Row{Label: name, Values: []float64{
			fm.ObjectiveHours(), gr.ObjectiveHours(),
			sim.Improvement(gr.ObjectiveHours(), fm.ObjectiveHours())}})
		okm.Rows = append(okm.Rows, Row{Label: name, Values: []float64{
			fm.OrdersPerKm(), gr.OrdersPerKm(),
			sim.ImprovementHigherBetter(gr.OrdersPerKm(), fm.OrdersPerKm())}})
		wt.Rows = append(wt.Rows, Row{Label: name, Values: []float64{
			fm.WaitHours(), gr.WaitHours(),
			sim.Improvement(gr.WaitHours(), fm.WaitHours())}})
	}
	return []*Table{xdt, okm, wt}, nil
}

// Fig6fgh reproduces Fig. 6(f–h): scalability. Percentage of overflown
// windows (assignment wall time above the compute budget) across all and
// peak slots, plus mean per-window assignment time, for Greedy, vanilla KM
// and FOODMATCH. The paper's shape: FOODMATCH is the only algorithm with 0 %
// overflows; Greedy and KM overflow heavily at peak in the big cities.
func Fig6fgh(st Setup) ([]*Table, error) {
	if st.ComputeBudget <= 0 {
		st.ComputeBudget = 0.5 // seconds; scaled stand-in for ∆, see notes
	}
	all := &Table{ID: "F6f", Title: "Overflown windows, all slots (%)",
		Columns: []string{"Greedy", "KM", "FoodMatch"},
		Notes: []string{
			fmt.Sprintf("compute budget %.2fs per window (scaled stand-in for the paper's 3-minute ∆)", st.ComputeBudget),
			"paper shape: FoodMatch 0%; Greedy/KM overflow in big cities",
		}}
	peak := &Table{ID: "F6g", Title: "Overflown windows, peak slots (%)",
		Columns: []string{"Greedy", "KM", "FoodMatch"},
		Notes:   []string{"peak = lunch (12-15) and dinner (19-22) slots within the simulated window"}}
	rt := &Table{ID: "F6h", Title: "Mean assignment time per window (ms)",
		Columns: []string{"Greedy", "KM", "FoodMatch"},
		Notes:   []string{"paper shape: FoodMatch fastest, Greedy slowest"}}
	for _, name := range st.cities() {
		vals := map[string]*sim.Metrics{}
		for _, pn := range []string{"greedy", "km", "foodmatch"} {
			m, err := cellMetrics(name, pn, st)
			if err != nil {
				return nil, err
			}
			vals[pn] = m
		}
		all.Rows = append(all.Rows, Row{Label: name, Values: []float64{
			100 * vals["greedy"].OverflowRate(), 100 * vals["km"].OverflowRate(), 100 * vals["foodmatch"].OverflowRate()}})
		peak.Rows = append(peak.Rows, Row{Label: name, Values: []float64{
			100 * vals["greedy"].PeakOverflowRate(), 100 * vals["km"].PeakOverflowRate(), 100 * vals["foodmatch"].PeakOverflowRate()}})
		rt.Rows = append(rt.Rows, Row{Label: name, Values: []float64{
			1000 * vals["greedy"].MeanAssignSec(), 1000 * vals["km"].MeanAssignSec(), 1000 * vals["foodmatch"].MeanAssignSec()}})
	}
	return []*Table{all, peak, rt}, nil
}

// Fig6ijk reproduces Fig. 6(i–k): FOODMATCH's improvement over vanilla KM
// per timeslot on XDT, O/Km and WT. The paper's shape: positive improvements
// with pronounced peaks at lunch and dinner.
func Fig6ijk(st Setup) ([]*Table, error) {
	slots := activeSlots(st)
	cols := make([]string, len(slots))
	for i, s := range slots {
		cols[i] = fmt.Sprintf("%02dh", s)
	}
	ix := &Table{ID: "F6i", Title: "Objective (XDT+rejections) improvement over KM per slot (%)", Columns: cols,
		Notes: []string{"paper shape: positive, peaking at lunch/dinner"}}
	jo := &Table{ID: "F6j", Title: "O/Km improvement over KM per slot (%)", Columns: cols}
	kw := &Table{ID: "F6k", Title: "WT improvement over KM per slot (%)", Columns: cols}
	for _, name := range st.cities() {
		fm, err := cellMetrics(name, "foodmatch", st)
		if err != nil {
			return nil, err
		}
		km, err := cellMetrics(name, "km", st)
		if err != nil {
			return nil, err
		}
		xi := make([]float64, len(slots))
		ji := make([]float64, len(slots))
		ki := make([]float64, len(slots))
		for i, s := range slots {
			xi[i] = sim.Improvement(km.SlotObjectiveSec(s), fm.SlotObjectiveSec(s))
			ji[i] = sim.ImprovementHigherBetter(km.SlotOrdersPerKm(s), fm.SlotOrdersPerKm(s))
			ki[i] = sim.Improvement(km.SlotWaitSec[s], fm.SlotWaitSec[s])
		}
		ix.Rows = append(ix.Rows, Row{Label: name, Values: xi})
		jo.Rows = append(jo.Rows, Row{Label: name, Values: ji})
		kw.Rows = append(kw.Rows, Row{Label: name, Values: ki})
	}
	return []*Table{ix, jo, kw}, nil
}

// activeSlots lists the hourly slots covered by the setup's window.
func activeSlots(st Setup) []int {
	var slots []int
	for h := int(st.StartHour); h < int(st.EndHour) && h < roadnet.SlotsPerDay; h++ {
		slots = append(slots, h)
	}
	if len(slots) == 0 {
		slots = []int{int(st.StartHour)}
	}
	return slots
}
