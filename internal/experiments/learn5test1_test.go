package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

// smallProtocolSetup keeps the acceptance tests fast: City A (the small
// Table II city), three learning days, a two-hour dinner window.
func smallProtocolSetup() (Setup, ProtocolOptions) {
	st := DefaultSetup()
	st.StartHour, st.EndHour = 18, 20
	return st, ProtocolOptions{
		City:      "CityA",
		LearnDays: 3,
		Scenarios: []workload.Scenario{workload.Rain(1.6), workload.DinnerRush(1.8)},
	}
}

// TestLearn5Test1Recovery is the protocol's acceptance check: on every
// scenario the learned-weight test day lands strictly between the stale
// and oracle regimes — the scenario must hurt (oracle < stale), and the
// weights learned across the replayed days must recover a real fraction of
// that gap (recovery ratio > 0) without beating the truth.
func TestLearn5Test1Recovery(t *testing.T) {
	st, opt := smallProtocolSetup()
	runs, err := RunLearn5Test1(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("want 2 protocol cells, got %d", len(runs))
	}
	for _, pr := range runs {
		stale := pr.ObjectiveHours(RegimeStale)
		learned := pr.ObjectiveHours(RegimeLearned)
		oracle := pr.ObjectiveHours(RegimeOracle)
		t.Logf("%s: obj stale=%.2fh learned=%.2fh oracle=%.2fh recovery=%.3f meanXDT=%.1f/%.1f/%.1fmin (cells=%d samples=%d)",
			pr.Scenario.Name, stale, learned, oracle, pr.RecoveryRatio(),
			pr.MeanXDTMin(RegimeStale), pr.MeanXDTMin(RegimeLearned), pr.MeanXDTMin(RegimeOracle),
			pr.LearnedCells, pr.LearnerSamples)
		if pr.Metrics[RegimeStale].Delivered == 0 || pr.Metrics[RegimeLearned].Delivered == 0 {
			t.Fatalf("%s: degenerate test day", pr.Scenario.Name)
		}
		if !(oracle < stale) {
			t.Fatalf("%s: scenario opened no objective gap (oracle %.2f, stale %.2f)", pr.Scenario.Name, oracle, stale)
		}
		if !(learned < stale) || !(learned > oracle) {
			t.Fatalf("%s: learned objective %.2fh not strictly between oracle %.2fh and stale %.2fh",
				pr.Scenario.Name, learned, oracle, stale)
		}
		if r := pr.RecoveryRatio(); math.IsNaN(r) || r <= 0 || r >= 1 {
			t.Fatalf("%s: recovery ratio %v out of (0, 1)", pr.Scenario.Name, r)
		}
		// Mean per-order XDT tells the same story without composition bias.
		if !(pr.MeanXDTMin(RegimeLearned) < pr.MeanXDTMin(RegimeStale)) {
			t.Fatalf("%s: learned mean XDT %.2f not below stale %.2f", pr.Scenario.Name,
				pr.MeanXDTMin(RegimeLearned), pr.MeanXDTMin(RegimeStale))
		}
		if pr.LearnedCells == 0 || pr.CheckpointBytes == 0 {
			t.Fatalf("%s: no learned weights persisted (%d cells, %d bytes)",
				pr.Scenario.Name, pr.LearnedCells, pr.CheckpointBytes)
		}
		// Service levels should not get worse when weights get better.
		if pr.Metrics[RegimeLearned].SLAViolations > pr.Metrics[RegimeStale].SLAViolations {
			t.Fatalf("%s: learned weights raised SLA violations (%d > %d)", pr.Scenario.Name,
				pr.Metrics[RegimeLearned].SLAViolations, pr.Metrics[RegimeStale].SLAViolations)
		}
	}
}

// TestLearn5Test1Deterministic pins the persistence loop: the whole
// protocol — learning days, weight export, re-import, test-day replay — is
// a pure function of (setup, options). Two runs must agree to the byte.
func TestLearn5Test1Deterministic(t *testing.T) {
	st, opt := smallProtocolSetup()
	opt.Scenarios = opt.Scenarios[:1]
	a, err := RunLearn5Test1(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLearn5Test1(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		pa, pb := a[i], b[i]
		if pa.LearnedCells != pb.LearnedCells || pa.CheckpointBytes != pb.CheckpointBytes ||
			pa.LearnerSamples != pb.LearnerSamples {
			t.Fatalf("learning phase not deterministic: %+v vs %+v", pa, pb)
		}
		for r := range pa.Metrics {
			ma, mb := pa.Metrics[r], pb.Metrics[r]
			if ma.XDTSec != mb.XDTSec || ma.Delivered != mb.Delivered ||
				ma.Rejected != mb.Rejected || ma.SLAViolations != mb.SLAViolations {
				t.Fatalf("regime %s replay not deterministic: xdt %v/%v delivered %d/%d rejected %d/%d sla %d/%d",
					ProtocolRegime(r), ma.XDTSec, mb.XDTSec, ma.Delivered, mb.Delivered,
					ma.Rejected, mb.Rejected, ma.SLAViolations, mb.SLAViolations)
			}
		}
	}
}

// TestLearn5Test1Tables checks the rendered artefact: one table per
// scenario with the full column set, JSONL-encodable, and a recovery cell
// that is a real number.
func TestLearn5Test1Tables(t *testing.T) {
	st, opt := smallProtocolSetup()
	tables, err := Learn5Test1(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	for _, tab := range tables {
		if !strings.HasPrefix(tab.ID, "L5T1-") {
			t.Fatalf("table id %q", tab.ID)
		}
		if len(tab.Columns) != 10 || len(tab.Rows) != 1 {
			t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
		}
		rec := tab.Rows[0].Values[3]
		if math.IsNaN(rec) || rec <= 0 {
			t.Fatalf("%s: recovery cell %v", tab.ID, rec)
		}
		if _, err := tab.JSON(); err != nil {
			t.Fatalf("%s: JSON render: %v", tab.ID, err)
		}
		out := tab.Render()
		for _, want := range []string{"obj-stale(h)", "obj-learned(h)", "recovery", "xdt-learned(m)", "sla-learned"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: rendered table missing %q:\n%s", tab.ID, want, out)
			}
		}
	}
}
