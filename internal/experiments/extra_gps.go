package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// X7LearnedWeights reproduces the paper's evaluation *protocol* (Section
// V-B): travel times are learned from GPS pings — synthesize drives, add
// noise, map-match with the Newson–Krumm HMM, aggregate per-edge per-slot
// averages — and the test day is then driven on reality while the policy
// decides on the learned weights. The table compares FOODMATCH with
// perfect weights against FOODMATCH with learned weights at two training
// volumes.
func X7LearnedWeights(st Setup) (*Table, error) {
	city, err := workload.Preset("CityB", st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	g := city.G
	cfg := ConfigForScale("CityB", st.Scale)

	t := &Table{
		ID:      "X7",
		Title:   "Decisions on GPS-learned weights vs perfect weights (City B, FoodMatch)",
		Columns: []string{"objective(h)", "delivered", "rejected", "MAE(s/edge-slot)"},
		Notes: []string{
			"learned = synthetic pings -> HMM map-matching -> per-edge per-slot averages (Section V-A pipeline)",
			"execution always runs on the true network; only the policy's oracle changes",
		},
	}

	run := func(label string, dec *roadnet.Graph, mae float64) error {
		m, err2 := runWithDecisionGraph(city, cfg, st, dec)
		if err2 != nil {
			return err2
		}
		t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
			m.ObjectiveHours(), float64(m.Delivered), float64(m.Rejected), mae,
		}})
		return nil
	}
	if err := run("perfect weights", nil, 0); err != nil {
		return nil, err
	}

	for _, drives := range []int{150, 600} {
		learner := gps.NewSpeedLearner(g)
		matcher := gps.NewMatcher(g, gps.DefaultMatchOptions())
		rng := rand.New(rand.NewSource(st.Seed ^ 0x6b5))
		matchedDrives := 0
		for i := 0; i < drives; i++ {
			ri := rng.Intn(len(city.Restaurants))
			from := city.Restaurants[ri]
			to := roadnet.NodeID(rng.Intn(g.NumNodes()))
			if from == to {
				continue
			}
			hour := []float64{9, 12, 13, 19, 20, 21}[rng.Intn(6)]
			p := roadnet.Path(g, from, to, hour*3600)
			if p == nil || len(p.Nodes) < 3 {
				continue
			}
			pings := gps.Synthesize(g, gps.Drive{Nodes: p.Nodes, Times: p.Times}, 20, 20, rng)
			if len(pings) < 3 {
				continue
			}
			matched, ok := matcher.Match(pings)
			if !ok {
				continue
			}
			times := make([]float64, len(pings))
			for j := range pings {
				times[j] = pings[j].T
			}
			learner.ObserveDrive(matched, times)
			matchedDrives++
		}
		mae, cells := learner.MeanAbsErrorSec(2)
		lg, err := learner.LearnedGraph(2)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("learned (%d drives, %d cells)", matchedDrives, cells)
		if err := run(label, lg, mae); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// runWithDecisionGraph runs FOODMATCH on the city with an optional
// learned decision graph.
func runWithDecisionGraph(city *workload.City, cfg *model.Config, st Setup, dec *roadnet.Graph) (*sim.Metrics, error) {
	start := st.StartHour * 3600
	end := st.EndHour * 3600
	orders := workload.OrderStreamWindow(city, st.Seed, start, end)
	fleet := city.Fleet(st.FleetFrac, cfg.MaxO, st.Seed)
	s, err := sim.New(city.G, orders, fleet, policy.NewFoodMatch(), cfg.Clone(),
		st.obsOptions(sim.Options{Quiet: true, DecisionGraph: dec}))
	if err != nil {
		return nil, err
	}
	return s.Run(start, end), nil
}
