package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "r1", Values: []float64{1.5, 1234}},
			{Label: "r2", Values: []float64{math.NaN(), 42}},
		},
		Notes: []string{"a note"},
	}
	out := tab.Render()
	for _, want := range []string{"T0", "demo", "r1", "1234", "a note", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "label,a,b\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "r1,1.5,1234") {
		t.Fatalf("csv row wrong: %q", csv)
	}
}

func TestPercentiles(t *testing.T) {
	got := percentiles([]float64{5, 1, 3, 2, 4}, []float64{0, 50, 100})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("percentiles = %v", got)
	}
	empty := percentiles(nil, []float64{50})
	if !math.IsNaN(empty[0]) {
		t.Fatalf("empty sample percentile = %v, want NaN", empty[0])
	}
}

func TestPolicyByName(t *testing.T) {
	cases := []struct {
		name     string
		wantName string
		wantErr  bool
	}{
		// The four canonical names.
		{name: "foodmatch", wantName: "FoodMatch"},
		{name: "km", wantName: "KM"},
		{name: "greedy", wantName: "Greedy"},
		{name: "reyes", wantName: "Reyes"},
		// Documented aliases.
		{name: "fm", wantName: "FoodMatch"},
		{name: "kuhn-munkres", wantName: "KM"},
		// Case-insensitivity.
		{name: "FOODMATCH", wantName: "FoodMatch"},
		{name: "FM", wantName: "FoodMatch"},
		{name: "Kuhn-Munkres", wantName: "KM"},
		{name: "GREEDY", wantName: "Greedy"},
		{name: "Reyes", wantName: "Reyes"},
		// Unknown inputs.
		{name: "dijkstra", wantErr: true},
		{name: "", wantErr: true},
		{name: "food match", wantErr: true},
	}
	for _, tc := range cases {
		t.Run("input="+tc.name, func(t *testing.T) {
			pol, err := PolicyByName(tc.name)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("PolicyByName(%q) accepted, want error", tc.name)
				}
				// The error must help: it should list every valid name.
				for _, valid := range []string{"foodmatch", "km", "greedy", "reyes"} {
					if !strings.Contains(err.Error(), valid) {
						t.Fatalf("error %q does not mention valid name %q", err, valid)
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("PolicyByName(%q): %v", tc.name, err)
			}
			if got := pol.Name(); got != tc.wantName {
				t.Fatalf("PolicyByName(%q).Name() = %q, want %q", tc.name, got, tc.wantName)
			}
		})
	}
}

func TestPolicyByNameReturnsFreshInstances(t *testing.T) {
	// The engine constructs one policy per zone shard via a factory;
	// PolicyByName must never hand out a shared instance.
	a, _ := PolicyByName("foodmatch")
	b, _ := PolicyByName("foodmatch")
	if a == b {
		t.Fatal("PolicyByName returned a shared instance")
	}
}

func TestConfigForScaleKFactor(t *testing.T) {
	full := ConfigForScale("CityB", 1.0)
	if full.KFactor != 200 {
		t.Fatalf("paper-scale KFactor = %v, want 200", full.KFactor)
	}
	small := ConfigForScale("CityB", 0.01)
	if small.KFactor >= 200 || small.KFactor < 20 {
		t.Fatalf("scaled KFactor = %v, want in [20, 200)", small.KFactor)
	}
	a := ConfigForScale("CityA", 0.02)
	if a.Delta != 60 {
		t.Fatalf("CityA delta = %v, want 60 (1 min, Section V-B)", a.Delta)
	}
}

func TestSetupCitiesSelector(t *testing.T) {
	st := DefaultSetup()
	if got := st.cities(); len(got) != 3 || got[0] != "CityB" {
		t.Fatalf("default cities = %v", got)
	}
	st.Cities = []string{"CityA"}
	if got := st.cities(); len(got) != 1 || got[0] != "CityA" {
		t.Fatalf("restricted cities = %v", got)
	}
}

func TestGenerateUnknownID(t *testing.T) {
	if _, err := Generate("F99", DefaultSetup()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRegistryIDsStable(t *testing.T) {
	a, b := IDs(), IDs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("IDs() not stable")
		}
	}
	if len(a) < 14 {
		t.Fatalf("registry too small: %v", a)
	}
}

// TestTinyExperimentsEndToEnd runs the cheap experiment drivers at a very
// small scale to keep the full registry exercised under `go test`.
func TestTinyExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	st := Setup{Scale: 0.005, Seed: 1, StartHour: 20, EndHour: 21, FleetFrac: 1, Cities: []string{"CityA"}}
	for _, id := range []string{"T2", "F6a", "F4a", "F6cde", "X2", "X4"} {
		tables, err := Generate(id, st)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s/%s: empty table", id, tab.ID)
			}
			if out := tab.Render(); len(out) == 0 {
				t.Fatalf("%s/%s: empty render", id, tab.ID)
			}
		}
	}
}
