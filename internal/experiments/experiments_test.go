package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "r1", Values: []float64{1.5, 1234}},
			{Label: "r2", Values: []float64{math.NaN(), 42}},
		},
		Notes: []string{"a note"},
	}
	out := tab.Render()
	for _, want := range []string{"T0", "demo", "r1", "1234", "a note", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "label,a,b\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "r1,1.5,1234") {
		t.Fatalf("csv row wrong: %q", csv)
	}
}

func TestPercentiles(t *testing.T) {
	got := percentiles([]float64{5, 1, 3, 2, 4}, []float64{0, 50, 100})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("percentiles = %v", got)
	}
	empty := percentiles(nil, []float64{50})
	if !math.IsNaN(empty[0]) {
		t.Fatalf("empty sample percentile = %v, want NaN", empty[0])
	}
}

func TestPolicyByNameAliases(t *testing.T) {
	for _, name := range []string{"foodmatch", "FM", "km", "Kuhn-Munkres", "GREEDY", "Reyes"} {
		if _, err := PolicyByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := PolicyByName("dijkstra"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestConfigForScaleKFactor(t *testing.T) {
	full := ConfigForScale("CityB", 1.0)
	if full.KFactor != 200 {
		t.Fatalf("paper-scale KFactor = %v, want 200", full.KFactor)
	}
	small := ConfigForScale("CityB", 0.01)
	if small.KFactor >= 200 || small.KFactor < 20 {
		t.Fatalf("scaled KFactor = %v, want in [20, 200)", small.KFactor)
	}
	a := ConfigForScale("CityA", 0.02)
	if a.Delta != 60 {
		t.Fatalf("CityA delta = %v, want 60 (1 min, Section V-B)", a.Delta)
	}
}

func TestSetupCitiesSelector(t *testing.T) {
	st := DefaultSetup()
	if got := st.cities(); len(got) != 3 || got[0] != "CityB" {
		t.Fatalf("default cities = %v", got)
	}
	st.Cities = []string{"CityA"}
	if got := st.cities(); len(got) != 1 || got[0] != "CityA" {
		t.Fatalf("restricted cities = %v", got)
	}
}

func TestGenerateUnknownID(t *testing.T) {
	if _, err := Generate("F99", DefaultSetup()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRegistryIDsStable(t *testing.T) {
	a, b := IDs(), IDs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("IDs() not stable")
		}
	}
	if len(a) < 14 {
		t.Fatalf("registry too small: %v", a)
	}
}

// TestTinyExperimentsEndToEnd runs the cheap experiment drivers at a very
// small scale to keep the full registry exercised under `go test`.
func TestTinyExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	st := Setup{Scale: 0.005, Seed: 1, StartHour: 20, EndHour: 21, FleetFrac: 1, Cities: []string{"CityA"}}
	for _, id := range []string{"T2", "F6a", "F4a", "F6cde", "X2", "X4"} {
		tables, err := Generate(id, st)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s/%s: empty table", id, tab.ID)
			}
			if out := tab.Render(); len(out) == 0 {
				t.Fatalf("%s/%s: empty render", id, tab.ID)
			}
		}
	}
}
