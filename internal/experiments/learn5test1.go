package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"repro/internal/gps"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ProtocolOptions tunes the learn5test1 driver beyond the shared Setup.
type ProtocolOptions struct {
	// City is the Table II preset to replay (default CityB — the paper's
	// headline city).
	City string
	// Policies are the assignment policies evaluated on the test day
	// (default FoodMatch).
	Policies []string
	// Scenarios are the traffic regimes, one protocol run each (default
	// rain:1.6 and rush:1.8 — the paper's "weather and peak" stressors).
	Scenarios []workload.Scenario
	// LearnDays is the number of learning days before the held-out test
	// day (default 5, the paper's protocol).
	LearnDays int
	// SLASec is the delivery-time threshold counted as a service-level
	// violation on the test day (default 2700 — 45 min).
	SLASec float64
	// MinSamples withholds learned cells below this observation count from
	// the exported weights (default 2).
	MinSamples int
}

func (o ProtocolOptions) withDefaults() ProtocolOptions {
	if o.City == "" {
		o.City = "CityB"
	}
	if len(o.Policies) == 0 {
		o.Policies = []string{"foodmatch"}
	}
	if len(o.Scenarios) == 0 {
		o.Scenarios = []workload.Scenario{workload.Rain(1.6), workload.DinnerRush(1.8)}
	}
	if o.LearnDays < 1 {
		o.LearnDays = 5
	}
	if o.SLASec <= 0 {
		o.SLASec = 2700
	}
	if o.MinSamples < 1 {
		o.MinSamples = 2
	}
	return o
}

// ProtocolRegime labels the three decision-plane weight regimes of the test
// day.
type ProtocolRegime int

// The test-day regimes: Stale plans on the unperturbed prior weights (what
// operating blind through the scenario looks like), Learned plans on the
// weights exported after the learning days, Oracle plans on the true
// scenario graph itself (the unachievable upper bound on weight quality).
const (
	RegimeStale ProtocolRegime = iota
	RegimeLearned
	RegimeOracle
)

func (r ProtocolRegime) String() string {
	switch r {
	case RegimeStale:
		return "stale"
	case RegimeLearned:
		return "learned"
	case RegimeOracle:
		return "oracle"
	}
	return fmt.Sprintf("regime(%d)", int(r))
}

// ProtocolRun is the outcome of one (scenario, policy) protocol cell:
// test-day metrics under each weight regime plus the learned-weight
// provenance.
type ProtocolRun struct {
	Scenario workload.Scenario
	Policy   string
	// Metrics per regime, indexed by ProtocolRegime.
	Metrics [3]*sim.Metrics
	// LearnedCells / LearnedEdges describe the exported weight table;
	// CheckpointBytes is the size of its JSON form (the artefact that
	// persisted between day 5 and day 6).
	LearnedCells, LearnedEdges int
	CheckpointBytes            int
	// LearnerSamples counts travel-time samples admitted over the learning
	// days.
	LearnerSamples int64
}

// XDTHours returns a regime's total XDT in hours (delivered orders only —
// composition-sensitive when regimes deliver different order counts; prefer
// ObjectiveHours or MeanXDTMin for cross-regime comparisons).
func (pr *ProtocolRun) XDTHours(r ProtocolRegime) float64 { return pr.Metrics[r].XDTHours() }

// ObjectiveHours returns a regime's Problem 1 objective (XDT + Ω per
// rejection) in hours — the paper's actual optimisation target, and the
// comparator that stays honest when a regime sheds hard orders instead of
// delivering them slowly.
func (pr *ProtocolRun) ObjectiveHours(r ProtocolRegime) float64 {
	return pr.Metrics[r].ObjectiveHours()
}

// MeanXDTMin returns a regime's mean per-delivered-order XDT in minutes.
func (pr *ProtocolRun) MeanXDTMin(r ProtocolRegime) float64 { return pr.Metrics[r].MeanXDTMin() }

// RecoveryRatio quantifies how much of the stale→oracle objective gap the
// learned weights recovered: 0 = no better than stale, 1 = all the way to
// the oracle, NaN when the scenario opened no gap to recover. Measured on
// the Problem 1 objective so that converting rejections into deliveries
// counts as recovery rather than (through delivered-only XDT sums) as
// regression.
func (pr *ProtocolRun) RecoveryRatio() float64 {
	stale := pr.Metrics[RegimeStale].XDTSec + pr.Metrics[RegimeStale].RejectionPenaltySec
	learned := pr.Metrics[RegimeLearned].XDTSec + pr.Metrics[RegimeLearned].RejectionPenaltySec
	oracle := pr.Metrics[RegimeOracle].XDTSec + pr.Metrics[RegimeOracle].RejectionPenaltySec
	gap := stale - oracle
	if gap <= 0 {
		return math.NaN()
	}
	return (stale - learned) / gap
}

// Learn5Test1 runs the paper's evaluation protocol (Section V-B): travel
// times are learned from LearnDays days of replayed traffic under a
// scenario — rosters churn and order volume surges day to day, while the
// policy plans on stale prior weights — then the learner's exported table
// is serialised, re-imported (the persistence leg a production system would
// exercise across the day boundary), applied to the prior graph, and a
// held-out test day is driven on the true scenario reality once per policy
// per weight regime. One table per scenario reports XDT, SLA violations,
// rejections and the recovery ratio.
func Learn5Test1(st Setup, opt ProtocolOptions) ([]*Table, error) {
	opt = opt.withDefaults()
	runs, err := RunLearn5Test1(st, opt)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	var cur *Table
	for _, pr := range runs {
		if cur == nil || cur.Title != protocolTitle(opt, pr.Scenario) {
			cur = &Table{
				ID:      "L5T1-" + sanitizeID(pr.Scenario.Name),
				Title:   protocolTitle(opt, pr.Scenario),
				Columns: []string{"obj-stale(h)", "obj-learned(h)", "obj-oracle(h)", "recovery", "xdt-stale(m)", "xdt-learned(m)", "xdt-oracle(m)", "sla-stale", "sla-learned", "sla-oracle"},
				Notes: []string{
					fmt.Sprintf("%d learning days, 1 test day; weights exported after learning (JSON, %d cells) and re-imported for the test day", opt.LearnDays, pr.LearnedCells),
					"obj = Problem 1 objective (XDT + Ω per rejection) in hours; xdt = mean per-delivered-order XDT in minutes",
					fmt.Sprintf("SLA threshold %.0f min; recovery = (stale-learned)/(stale-oracle) on the objective", opt.SLASec/60),
					"stale = prior weights, learned = GPS-learned weights, oracle = true scenario weights; movement always on the true graph",
					"unobserved cells fall back to the prior scaled by a shrunk city-wide per-slot slowdown estimated from the observed cells",
				},
			}
			tables = append(tables, cur)
		}
		cur.Rows = append(cur.Rows, Row{
			Label: pr.Policy,
			Values: []float64{
				pr.ObjectiveHours(RegimeStale),
				pr.ObjectiveHours(RegimeLearned),
				pr.ObjectiveHours(RegimeOracle),
				pr.RecoveryRatio(),
				pr.MeanXDTMin(RegimeStale),
				pr.MeanXDTMin(RegimeLearned),
				pr.MeanXDTMin(RegimeOracle),
				float64(pr.Metrics[RegimeStale].SLAViolations),
				float64(pr.Metrics[RegimeLearned].SLAViolations),
				float64(pr.Metrics[RegimeOracle].SLAViolations),
			},
		})
	}
	return tables, nil
}

func protocolTitle(opt ProtocolOptions, sc workload.Scenario) string {
	return fmt.Sprintf("learn%dtest1 on %s, scenario %s: XDT recovery from learned weights",
		opt.LearnDays, opt.City, sc.Name)
}

func sanitizeID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
}

// RunLearn5Test1 is Learn5Test1 returning the structured per-cell results
// (the form the acceptance tests and programmatic callers consume).
func RunLearn5Test1(st Setup, opt ProtocolOptions) ([]*ProtocolRun, error) {
	opt = opt.withDefaults()
	city, err := workload.Preset(opt.City, st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	var runs []*ProtocolRun
	for _, sc := range opt.Scenarios {
		weights, prov, err := learnWeights(city, sc, st, opt)
		if err != nil {
			return nil, fmt.Errorf("learn phase (%s): %w", sc.Name, err)
		}
		learnedG := learnedDecisionGraph(city.G, weights)
		trueG := sc.Apply(city.G)
		sched := workload.Learn5Test1(city, sc, opt.LearnDays, st.Seed)
		test, err := sched.TestDay()
		if err != nil {
			return nil, err
		}
		for _, polName := range opt.Policies {
			pr := &ProtocolRun{
				Scenario:        sc,
				Policy:          polName,
				LearnedCells:    weights.Cells(),
				LearnedEdges:    weights.Edges(),
				CheckpointBytes: prov.checkpointBytes,
				LearnerSamples:  prov.samples,
			}
			decisionGraphs := [3]*roadnet.Graph{
				RegimeStale:   city.G,
				RegimeLearned: learnedG,
				RegimeOracle:  trueG,
			}
			for regime, dec := range decisionGraphs {
				m, err := runTestDay(sched, test, trueG, dec, polName, st, opt)
				if err != nil {
					return nil, fmt.Errorf("test day (%s, %s, %s): %w", sc.Name, polName, ProtocolRegime(regime), err)
				}
				pr.Metrics[regime] = m
			}
			runs = append(runs, pr)
		}
	}
	return runs, nil
}

// fallbackShrinkage blends the city-wide slowdown into unobserved cells:
// 0 would leave them on the dry prior, 1 would trust the global estimate
// outright. Halfway reflects genuine uncertainty about roads nobody drove.
const fallbackShrinkage = 0.5

// learnedDecisionGraph materialises the decision plane of the learned
// regime. Observed (edge, slot) cells serve their exact learned times;
// unobserved cells fall back to the prior scaled by a *shrunk city-wide
// slowdown* estimated per slot from the observed cells. Without the global
// fallback a partially observed scenario is poisonous: learned edges are
// believed slow, unobserved edges believed dry-fast, and the router herds
// traffic onto exactly the roads nobody has measured — on supply-tight
// cities that mixture realises worse XDT than uniformly stale weights.
// Estimating the city-level congestion factor for unmeasured roads is what
// production traffic stacks do for the same reason.
func learnedDecisionGraph(base *roadnet.Graph, w *roadnet.SlotWeights) *roadnet.Graph {
	var sum, cnt [roadnet.SlotsPerDay]float64
	w.Range(func(u, v roadnet.NodeID, slot int, sec float64) {
		for _, e := range base.OutEdges(u) {
			if e.To == v {
				if prior := base.EdgeTimeSlot(e, slot); prior > 0 {
					sum[slot] += sec / prior
					cnt[slot]++
				}
				break
			}
		}
	})
	scaled := base.ScaleSlotMultipliers(func(slot int) float64 {
		if cnt[slot] == 0 {
			return 1
		}
		return 1 + fallbackShrinkage*(sum[slot]/cnt[slot]-1)
	})
	return scaled.Reweighted(w)
}

// learnProvenance carries bookkeeping from the learning phase.
type learnProvenance struct {
	samples         int64
	checkpointBytes int
}

// learnWeights replays the learning days and returns the exported weight
// table — after a serialise/re-import round trip, so the table the test day
// plans on is exactly what a persisted checkpoint would have restored.
func learnWeights(city *workload.City, sc workload.Scenario, st Setup, opt ProtocolOptions) (*roadnet.SlotWeights, learnProvenance, error) {
	var prov learnProvenance
	sched := workload.Learn5Test1(city, sc, opt.LearnDays, st.Seed)
	trueG := sched.TrueGraph(sched.Days[0])
	learner := gps.NewStreamLearner(trueG, gps.StreamOptions{})
	cfg := ConfigForScale(opt.City, st.Scale)
	start, end := st.StartHour*3600, st.EndHour*3600
	for _, day := range sched.LearnDays() {
		orders := sched.Orders(day, start, end)
		fleet := sched.Fleet(day, st.FleetFrac, cfg.MaxO)
		s, err := sim.New(trueG, orders, fleet, policy.NewFoodMatch(), cfg.Clone(),
			st.obsOptions(sim.Options{Quiet: true, DecisionGraph: city.G, Learner: learner}))
		if err != nil {
			return nil, prov, err
		}
		s.Run(start, end)
		// Per-day clocks restart at midnight: flush the ping trails so
		// yesterday's riders cannot pair with today's (see gps.EndDay).
		learner.EndDay()
	}
	prov.samples = learner.Stats().Samples

	// The persistence leg: export the learned table to its JSON checkpoint
	// form and re-import it, exactly as a day-6 process restart would.
	var buf bytes.Buffer
	if err := learner.Weights(opt.MinSamples).WriteJSON(&buf); err != nil {
		return nil, prov, err
	}
	prov.checkpointBytes = buf.Len()
	weights, err := roadnet.ReadSlotWeightsJSON(&buf)
	if err != nil {
		return nil, prov, err
	}
	if weights.Cells() == 0 {
		return nil, prov, fmt.Errorf("learning days produced no weight cells above %d samples", opt.MinSamples)
	}
	return weights, prov, nil
}

// runTestDay replays the held-out day: movement on the true scenario graph,
// decisions on the regime's graph. Every regime runs the same code path —
// same orders, same fleet, same config; only the decision plane's weights
// differ — so metric deltas are attributable to weight quality alone.
func runTestDay(sched workload.DaySchedule, day workload.DayPlan,
	trueG, decG *roadnet.Graph, polName string, st Setup, opt ProtocolOptions) (*sim.Metrics, error) {
	pol, cfg, err := PolicyConfig(polName, opt.City)
	if err != nil {
		return nil, err
	}
	cfg.KFactor = ConfigForScale(opt.City, st.Scale).KFactor
	if st.ComputeBudget > 0 {
		cfg.ComputeBudget = st.ComputeBudget
	}
	start, end := st.StartHour*3600, st.EndHour*3600
	orders := sched.Orders(day, start, end)
	fleet := sched.Fleet(day, st.FleetFrac, cfg.MaxO)
	s, err := sim.New(trueG, orders, fleet, pol, cfg,
		st.obsOptions(sim.Options{Quiet: true, SLASec: opt.SLASec, DecisionGraph: decG}))
	if err != nil {
		return nil, err
	}
	return s.Run(start, end), nil
}
