package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/sim"
)

// ablationVariant describes one layer of the Fig. 7(a) stack.
type ablationVariant struct {
	label string
	conf  func(*model.Config)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"B&R", func(c *model.Config) { // batching + reshuffling on KM
			c.Batching, c.Reshuffle, c.BestFirst, c.Angular = true, true, false, false
		}},
		{"B&R+BFS", func(c *model.Config) {
			c.Batching, c.Reshuffle, c.BestFirst, c.Angular = true, true, true, false
		}},
		{"B&R+BFS+A", func(c *model.Config) { // full FOODMATCH
			c.Batching, c.Reshuffle, c.BestFirst, c.Angular = true, true, true, true
		}},
	}
}

// Fig7a reproduces Fig. 7(a): the XDT improvement over vanilla KM as the
// optimisations are layered on — Batching & Reshuffling, then best-first
// sparsification, then angular distance. The paper's shape: every layer
// helps, batching most.
func Fig7a(st Setup) (*Table, error) {
	t := &Table{
		ID:      "F7a",
		Title:   "XDT improvement over KM by optimisation layer (%)",
		Columns: []string{"B&R", "B&R+BFS", "B&R+BFS+A"},
		Notes: []string{
			"paper shape: all positive; batching contributes the most; BFS helps despite sparsifying",
		},
	}
	for _, name := range st.cities() {
		km, err := cellMetrics(name, "km", st)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, v := range ablationVariants() {
			cfg := ConfigFor(name)
			v.conf(cfg)
			pol := &policy.FoodMatch{Label: v.label}
			m, err := RunPreset(name, pol, cfg, st)
			if err != nil {
				return nil, err
			}
			vals = append(vals, sim.Improvement(km.ObjectiveHours(), m.ObjectiveHours()))
		}
		t.Rows = append(t.Rows, Row{Label: name, Values: vals})
	}
	return t, nil
}

// FleetFractions is the Fig. 7(b–e) sweep grid.
var FleetFractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// Fig7bcde reproduces Fig. 7(b–e): the impact of fleet size on XDT, O/Km,
// WT and the rejection rate under FOODMATCH. The paper's shape: XDT falls
// steeply up to ~40 % fleet then flattens; at 20 % fleet rejections explode
// (~30 %), producing the anomalous O/Km and WT readings.
func Fig7bcde(st Setup) ([]*Table, error) {
	cols := make([]string, len(FleetFractions))
	for i, f := range FleetFractions {
		cols[i] = fmt.Sprintf("%.0f%%", f*100)
	}
	xdt := &Table{ID: "F7b", Title: "XDT (hours) vs fleet size", Columns: cols,
		Notes: []string{"paper shape: falls with fleet, flat beyond ~40%"}}
	okm := &Table{ID: "F7c", Title: "O/Km vs fleet size", Columns: cols,
		Notes: []string{"paper shape: decreases with fleet in [40%,100%]; anomalous at 20% due to rejections"}}
	wt := &Table{ID: "F7d", Title: "WT (hours) vs fleet size", Columns: cols,
		Notes: []string{"paper shape: rises with fleet in [40%,100%]"}}
	rej := &Table{ID: "F7e", Title: "Order rejections (%) vs fleet size", Columns: cols,
		Notes: []string{"paper shape: ~30% rejected at 20% fleet, near zero from 60%"}}
	for _, name := range st.cities() {
		var vx, vo, vw, vr []float64
		for _, frac := range FleetFractions {
			s2 := st
			s2.FleetFrac = frac
			m, err := cellMetrics(name, "foodmatch", s2)
			if err != nil {
				return nil, err
			}
			vx = append(vx, m.ObjectiveHours())
			vo = append(vo, m.OrdersPerKm())
			vw = append(vw, m.WaitHours())
			vr = append(vr, 100*m.RejectionRate())
		}
		xdt.Rows = append(xdt.Rows, Row{Label: name, Values: vx})
		okm.Rows = append(okm.Rows, Row{Label: name, Values: vo})
		wt.Rows = append(wt.Rows, Row{Label: name, Values: vw})
		rej.Rows = append(rej.Rows, Row{Label: name, Values: vr})
	}
	return []*Table{xdt, okm, wt, rej}, nil
}
