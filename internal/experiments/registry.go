package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Generator produces one or more tables for an experiment id.
type Generator func(Setup) ([]*Table, error)

// wrap1 lifts a single-table driver.
func wrap1(f func(Setup) (*Table, error)) Generator {
	return func(st Setup) ([]*Table, error) {
		t, err := f(st)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// registry maps experiment group ids to their drivers. Groups correspond to
// the paper's figures; multi-panel figures regenerate together because they
// share simulation runs.
var registry = map[string]Generator{
	"T2":     wrap1(Table2),
	"F4a":    wrap1(Fig4a),
	"F6a":    wrap1(Fig6a),
	"F6b":    wrap1(Fig6b),
	"F6cde":  Fig6cde,
	"F6fgh":  Fig6fgh,
	"F6ijk":  Fig6ijk,
	"F7a":    wrap1(Fig7a),
	"F7bcde": Fig7bcde,
	"F8ac":   Fig8ac,
	"F8dg":   Fig8dg,
	"F8hk":   Fig8hk,
	"F9ac":   Fig9ac,
	"F9d":    wrap1(Fig9d),
	// Beyond-paper ablations (DESIGN.md 2.10-2.11 design choices).
	"X1": wrap1(X1SupplyCalibration),
	"X2": wrap1(X2AgeNeutral),
	"X3": wrap1(X3BatchRadius),
	"X4": wrap1(X4SPEngines),
	"X5": wrap1(X5HeuristicPlanner),
	"X6": wrap1(X6TimeDependence),
	"X7": wrap1(X7LearnedWeights),
}

// IDs returns the registered experiment group ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Generate runs one experiment group by id (case-insensitive).
func Generate(id string, st Setup) ([]*Table, error) {
	for key, gen := range registry {
		if strings.EqualFold(key, id) {
			return gen(st)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (available: %s)", id, strings.Join(IDs(), ", "))
}

// GenerateAll runs every experiment group, invoking sink after each so
// long runs stream output.
func GenerateAll(st Setup, sink func(*Table)) error {
	for _, id := range IDs() {
		tables, err := registry[id](st)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		for _, t := range tables {
			sink(t)
		}
	}
	return nil
}
