package experiments

import (
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// optimizeExact plans a batch with the exhaustive branch-and-bound planner.
func optimizeExact(sp roadnet.SPFunc, start roadnet.NodeID, now float64, orders []*model.Order) (*model.RoutePlan, float64, bool) {
	return routing.Optimize(sp, start, now, nil, orders)
}

// optimizeHeuristic plans a batch with the cheapest-insertion heuristic.
func optimizeHeuristic(sp roadnet.SPFunc, start roadnet.NodeID, now float64, orders []*model.Order) (*model.RoutePlan, float64, bool) {
	return routing.OptimizeHeuristic(sp, start, now, nil, orders)
}
