package experiments

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ObsLog collects observability telemetry from offline simulator runs: one
// JSONL line per window (the span tree from sim.RoundTelemetry), lifecycle
// transition histograms fed from the trace stream, and a final
// `{"kind":"obs_summary"}` line with every metric point — counts, sums and
// p50/p95/p99 — gathered from its private registry. cmd/experiments wires
// one in with -obs-out; Setup.Obs threads it through every sim.New the
// drivers construct.
//
// Safe for concurrent use: drivers that replay several days or regimes may
// interleave rounds from different simulators; the line stream is
// serialised, the histograms are atomic.
type ObsLog struct {
	mu     sync.Mutex
	enc    *json.Encoder
	closer io.Closer

	reg          *obs.Registry
	tracer       *obs.OrderTracer
	roundLatency *obs.Histogram
	phase        map[string]*obs.Histogram
	stage        map[string]*obs.Histogram
	rounds       int64
}

// simPhases is the offline window's phase vocabulary (sim.RoundTelemetry).
var simPhases = []string{"inject", "advance", "assign", "apply", "replan"}

// NewObsLog returns a collector writing JSONL to w (which may be nil to
// collect aggregates only). If w also implements io.Closer, Close closes it.
func NewObsLog(w io.Writer) *ObsLog {
	l := &ObsLog{
		reg:   obs.NewRegistry(),
		phase: make(map[string]*obs.Histogram, len(simPhases)),
		stage: make(map[string]*obs.Histogram, len(pipelineStageNames)),
	}
	if w != nil {
		l.enc = json.NewEncoder(w)
		if c, ok := w.(io.Closer); ok {
			l.closer = c
		}
	}
	l.tracer = obs.NewOrderTracer(l.reg, 0)
	l.roundLatency = l.reg.Histogram("foodmatch_round_latency_seconds",
		"Policy assignment wall time per window.", obs.DurationBuckets, nil)
	for _, p := range simPhases {
		l.phase[p] = l.reg.Histogram("foodmatch_round_phase_seconds",
			"Wall-clock latency of one phase of the offline window.",
			obs.DurationBuckets, obs.Labels{"phase": p})
	}
	for _, st := range pipelineStageNames {
		l.stage[st] = l.reg.Histogram("foodmatch_pipeline_stage_seconds",
			"Wall-clock latency of one assignment-pipeline stage.",
			obs.DurationBuckets, obs.Labels{"stage": st})
	}
	return l
}

var pipelineStageNames = []string{"batch", "sparsify", "reshuffle", "match"}

// Registry exposes the collector's metric registry (tests, Prometheus dumps).
func (l *ObsLog) Registry() *obs.Registry { return l.reg }

// OnRound implements sim.Options.OnRound: record the window's phase tree
// into the histograms and append one JSONL line.
func (l *ObsLog) OnRound(rt sim.RoundTelemetry) {
	if l == nil {
		return
	}
	l.roundLatency.Observe(rt.LatencySec)
	for _, ph := range rt.Phases {
		if h := l.phase[ph.Name]; h != nil {
			h.Observe(ph.DurSec)
		}
		if ph.Name == "assign" {
			for _, st := range ph.Children {
				if h := l.stage[st.Name]; h != nil {
					h.Observe(st.DurSec)
				}
			}
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rounds++
	if l.enc != nil {
		l.enc.Encode(struct {
			Kind string `json:"kind"`
			sim.RoundTelemetry
		}{Kind: "round", RoundTelemetry: rt})
	}
}

// TraceSink chains the lifecycle tracer in front of next (nil = discard):
// pass the result as sim.Options.Trace so order transitions feed the
// per-transition latency histograms.
func (l *ObsLog) TraceSink(next trace.Sink) trace.Sink {
	if l == nil {
		return next
	}
	return trace.NewLifecycleSink(l.tracer, next)
}

// Rounds reports how many windows have been recorded.
func (l *ObsLog) Rounds() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rounds
}

// Close writes the final obs_summary line (every metric point with
// count/sum/quantiles) and closes the underlying writer when it owns one.
func (l *ObsLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.enc != nil {
		l.enc.Encode(struct {
			Kind    string            `json:"kind"`
			Rounds  int64             `json:"rounds"`
			Metrics []obs.MetricPoint `json:"metrics"`
		}{Kind: "obs_summary", Rounds: l.rounds, Metrics: l.reg.Gather()})
	}
	if l.closer != nil {
		return l.closer.Close()
	}
	return nil
}

// obsOptions decorates base sim options with the Setup's collector (no-op
// when the setup carries none) — every driver's sim.New goes through this.
func (st Setup) obsOptions(base sim.Options) sim.Options {
	if st.Obs == nil {
		return base
	}
	base.OnRound = st.Obs.OnRound
	base.Trace = st.Obs.TraceSink(base.Trace)
	return base
}
