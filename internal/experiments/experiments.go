// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (Section V). Each driver returns a
// structured result that renders to the same rows/series the paper reports;
// cmd/experiments and the root bench harness both call into this package.
//
// Absolute numbers differ from the paper — the substrate is a synthetic
// laptop-scale city, not Swiggy's production logs on a 252 GB server — but
// every driver is written so the paper's *shape* (who wins, by what rough
// factor, where crossovers fall) is reproduced. EXPERIMENTS.md records
// paper-vs-measured values per experiment.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Setup fixes the workload scale and time window shared by the experiments.
type Setup struct {
	// Scale shrinks Table II city sizes (1.0 = paper scale).
	Scale float64
	// Seed drives city generation and order streams.
	Seed int64
	// StartHour/EndHour bound the simulated slice of the day. The default
	// covers the dinner peak (18:00–22:00), the day's most loaded period
	// and the one the paper's peak analysis keys on; use 0/24 for full
	// days.
	StartHour, EndHour float64
	// FleetFrac subsamples vehicles (Fig. 7 sweeps).
	FleetFrac float64
	// ComputeBudget, when positive, marks windows whose assignment exceeds
	// it as overflown (scaled stand-in for the paper's ∆ budget).
	ComputeBudget float64
	// Cities restricts multi-city experiments to a subset (nil = the
	// paper's City B, City C, City A ordering). The bench harness uses a
	// single city to keep -bench runs short.
	Cities []string
	// Obs, when set, collects per-window observability telemetry (span
	// trees, phase/stage latency histograms, order-lifecycle transitions)
	// from every simulator the drivers run — see ObsLog and
	// cmd/experiments' -obs-out flag. Nil collects nothing and costs
	// nothing.
	Obs *ObsLog
}

// cities returns the city list the drivers should sweep.
func (st Setup) cities() []string {
	if len(st.Cities) > 0 {
		return st.Cities
	}
	return []string{"CityB", "CityC", "CityA"}
}

// DefaultSetup is the bench-harness operating point.
func DefaultSetup() Setup {
	return Setup{
		Scale:     workload.DefaultScale,
		Seed:      1,
		StartHour: 18,
		EndHour:   22,
		FleetFrac: 1.0,
	}
}

// Run simulates one (city, policy, config) cell and returns its metrics.
func Run(city *workload.City, pol policy.Policy, cfg *model.Config, st Setup) (*sim.Metrics, error) {
	start := st.StartHour * 3600
	end := st.EndHour * 3600
	orders := workload.OrderStreamWindow(city, st.Seed, start, end)
	fleet := city.Fleet(st.FleetFrac, cfg.MaxO, st.Seed)
	if st.ComputeBudget > 0 {
		cfg = cfg.Clone()
		cfg.ComputeBudget = st.ComputeBudget
	}
	s, err := sim.New(city.G, orders, fleet, pol, cfg, st.obsOptions(sim.Options{Quiet: true}))
	if err != nil {
		return nil, err
	}
	return s.Run(start, end), nil
}

// RunPreset is Run on a named Table II city.
func RunPreset(cityName string, pol policy.Policy, cfg *model.Config, st Setup) (*sim.Metrics, error) {
	city, err := workload.Preset(cityName, st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	return Run(city, pol, cfg, st)
}

// ConfigFor returns the per-city default configuration: the paper uses
// ∆ = 3 min for the big cities and 1 min for City A (Section V-B).
//
// KFactor scales with the fleet: the paper's k = 200·|O|/|V| yields a
// per-vehicle degree around 7 % of the batch count on a 13k-vehicle fleet;
// keeping KFactor at 200 against a laptop-scale fleet would make k exceed
// the batch count and silently disable sparsification, so we scale it by
// the same factor as the fleet (floored so tiny fleets stay usable).
func ConfigFor(cityName string) *model.Config {
	return ConfigForScale(cityName, workload.DefaultScale)
}

// ConfigForScale is ConfigFor with an explicit workload scale.
func ConfigForScale(cityName string, scale float64) *model.Config {
	cfg := model.DefaultConfig()
	if cityName == "CityA" || cityName == "GrubHub" {
		cfg.Delta = 60
	}
	if scale > 0 && scale < 1 {
		// Square-root scaling keeps the sparsified graph useful: linear
		// scaling collapses k below the handful of edges a vehicle needs,
		// while no scaling disables sparsification outright (k ≥ #batches).
		cfg.KFactor = math.Max(20, cfg.KFactor*math.Sqrt(scale))
	}
	return cfg
}

// PolicyByName constructs a policy; KM also needs ConfigureVanillaKM on the
// config, which callers get via PolicyConfig.
func PolicyByName(name string) (policy.Policy, error) {
	switch strings.ToLower(name) {
	case "foodmatch", "fm":
		return policy.NewFoodMatch(), nil
	case "km", "kuhn-munkres":
		return policy.NewVanillaKM(), nil
	case "greedy":
		return policy.NewGreedy(), nil
	case "reyes":
		return policy.NewReyes(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q (want foodmatch|km|greedy|reyes)", name)
	}
}

// PolicyConfig pairs a policy with the correctly switched config for a city.
func PolicyConfig(policyName, cityName string) (policy.Policy, *model.Config, error) {
	pol, err := PolicyByName(policyName)
	if err != nil {
		return nil, nil, err
	}
	cfg := ConfigFor(cityName)
	if strings.EqualFold(policyName, "km") {
		policy.ConfigureVanillaKM(cfg)
	}
	return pol, cfg, nil
}

// Row is one labelled series of values, rendered as a table row.
type Row struct {
	Label  string
	Values []float64
}

// Table is a rendered experiment artefact.
type Table struct {
	ID      string // experiment id, e.g. "F6c"
	Title   string
	Columns []string
	Rows    []Row
	// Notes records shape expectations and caveats.
	Notes []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := 12
	for _, c := range t.Columns {
		if len(c)+1 > width {
			width = len(c) + 1
		}
	}
	fmt.Fprintf(&b, "%-24s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-24s", r.Label)
		for _, v := range r.Values {
			switch {
			case math.IsNaN(v):
				fmt.Fprintf(&b, "%*s", width, "-")
			case math.Abs(v) >= 1000:
				fmt.Fprintf(&b, "%*.0f", width, v)
			case math.Abs(v) >= 10:
				fmt.Fprintf(&b, "%*.1f", width, v)
			default:
				fmt.Fprintf(&b, "%*.3f", width, v)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("label")
	for _, c := range t.Columns {
		b.WriteString(",")
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as a machine-readable object (one line), the shape
// CI fidelity tracking consumes: {"id","title","columns","rows":[{"label",
// "values"}],"notes"}. Non-finite values (NaN/±Inf placeholders) become
// null, since JSON has no encoding for them.
func (t *Table) JSON() ([]byte, error) {
	type jsonRow struct {
		Label  string `json:"label"`
		Values []any  `json:"values"`
	}
	rows := make([]jsonRow, 0, len(t.Rows))
	for _, r := range t.Rows {
		vals := make([]any, len(r.Values))
		for i, v := range r.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = nil
			} else {
				vals[i] = v
			}
		}
		rows = append(rows, jsonRow{Label: r.Label, Values: vals})
	}
	return json.Marshal(struct {
		ID      string    `json:"id"`
		Title   string    `json:"title"`
		Columns []string  `json:"columns"`
		Rows    []jsonRow `json:"rows"`
		Notes   []string  `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, rows, t.Notes})
}

// percentiles summarises a sample at the requested percentiles (0–100).
func percentiles(sample []float64, ps []float64) []float64 {
	if len(sample) == 0 {
		out := make([]float64, len(ps))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	out := make([]float64, len(ps))
	for i, p := range ps {
		idx := int(p / 100 * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}
