package experiments

import (
	"encoding/json"
	"math"
	"testing"
)

func TestTableJSON(t *testing.T) {
	tbl := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "r1", Values: []float64{1.5, math.NaN()}},
			{Label: "r2", Values: []float64{math.Inf(1), -2}},
		},
		Notes: []string{"note"},
	}
	line, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		ID      string   `json:"id"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Label  string `json:"label"`
			Values []any  `json:"values"`
		} `json:"rows"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatalf("JSON() emitted invalid JSON: %v\n%s", err, line)
	}
	if back.ID != "T0" || len(back.Columns) != 2 || len(back.Rows) != 2 || len(back.Notes) != 1 {
		t.Fatalf("round trip mangled the table: %+v", back)
	}
	if back.Rows[0].Values[1] != nil || back.Rows[1].Values[0] != nil {
		t.Fatalf("non-finite values must encode as null: %+v", back.Rows)
	}
	if v, ok := back.Rows[0].Values[0].(float64); !ok || v != 1.5 {
		t.Fatalf("finite value lost: %+v", back.Rows[0])
	}
}
