package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/policy"
)

// sweep runs FOODMATCH over a parameter grid for the three cities and
// returns one table per metric extractor.
func sweep(st Setup, id, param string, values []float64, apply func(*model.Config, float64),
	metricDefs []sweepMetric) ([]*Table, error) {
	cols := make([]string, len(values))
	for i, v := range values {
		cols[i] = fmt.Sprintf("%s=%g", param, v)
	}
	tables := make([]*Table, len(metricDefs))
	for i, md := range metricDefs {
		tables[i] = &Table{ID: fmt.Sprintf("%s%s", id, md.suffix), Title: md.title, Columns: cols, Notes: md.notes}
	}
	for _, name := range st.cities() {
		series := make([][]float64, len(metricDefs))
		for _, v := range values {
			cfg := ConfigFor(name)
			apply(cfg, v)
			m, err := RunPreset(name, policy.NewFoodMatch(), cfg, st)
			if err != nil {
				return nil, err
			}
			for i, md := range metricDefs {
				series[i] = append(series[i], md.extract(m))
			}
		}
		for i := range metricDefs {
			tables[i].Rows = append(tables[i].Rows, Row{Label: name, Values: series[i]})
		}
	}
	return tables, nil
}

type sweepMetric struct {
	suffix  string
	title   string
	notes   []string
	extract func(m metricSource) float64
}

// metricSource is the subset of sim.Metrics the sweeps read; declared as an
// interface so the extractors are self-documenting.
type metricSource interface {
	ObjectiveHours() float64
	OrdersPerKm() float64
	WaitHours() float64
	MeanAssignSec() float64
	RejectionRate() float64
}

// EtaValues is the Fig. 8(a–c) grid (seconds).
var EtaValues = []float64{30, 60, 90, 120, 150}

// Fig8ac reproduces Fig. 8(a–c): impact of the batching cutoff η on XDT,
// O/Km and WT. Paper shape: XDT rises with η (Theorem 2), O/Km rises, WT
// falls; gradients flatten past η = 60 s.
func Fig8ac(st Setup) ([]*Table, error) {
	return sweep(st, "F8", "eta", EtaValues,
		func(c *model.Config, v float64) { c.Eta = v },
		[]sweepMetric{
			{"a", "XDT (hours) vs eta", []string{"paper shape: non-decreasing in eta"},
				func(m metricSource) float64 { return m.ObjectiveHours() }},
			{"b", "O/Km vs eta", []string{"paper shape: increasing, flattening past 60s"},
				func(m metricSource) float64 { return m.OrdersPerKm() }},
			{"c", "WT (hours) vs eta", []string{"paper shape: decreasing, flattening past 60s"},
				func(m metricSource) float64 { return m.WaitHours() }},
		})
}

// DeltaValues is the Fig. 8(d–g) grid (seconds).
var DeltaValues = []float64{60, 120, 180, 240}

// Fig8dg reproduces Fig. 8(d–g): impact of the accumulation window ∆.
// Paper shape: XDT rises with ∆, WT falls, O/Km improves, running time per
// window grows while window count shrinks.
func Fig8dg(st Setup) ([]*Table, error) {
	return sweep(st, "F8", "delta", DeltaValues,
		func(c *model.Config, v float64) { c.Delta = v },
		[]sweepMetric{
			{"d", "XDT (hours) vs delta", []string{"paper shape: increasing in delta"},
				func(m metricSource) float64 { return m.ObjectiveHours() }},
			{"e", "O/Km vs delta", []string{"paper shape: increasing in delta"},
				func(m metricSource) float64 { return m.OrdersPerKm() }},
			{"f", "WT (hours) vs delta", []string{"paper shape: decreasing in delta"},
				func(m metricSource) float64 { return m.WaitHours() }},
			{"g", "Assignment time per window (ms) vs delta", []string{"paper shape: increasing per-window cost"},
				func(m metricSource) float64 { return 1000 * m.MeanAssignSec() }},
		})
}

// KFactorValues is the Fig. 8(h–k) grid.
var KFactorValues = []float64{50, 100, 200, 300}

// Fig8hk reproduces Fig. 8(h–k): impact of the FoodGraph degree bound k.
// Paper shape: quality metrics barely move with k; running time grows
// significantly in the big cities — k ∈ [100, 200) balances both.
func Fig8hk(st Setup) ([]*Table, error) {
	return sweep(st, "F8", "k", KFactorValues,
		func(c *model.Config, v float64) { c.KFactor = v },
		[]sweepMetric{
			{"h", "XDT (hours) vs k", []string{"paper shape: nearly flat"},
				func(m metricSource) float64 { return m.ObjectiveHours() }},
			{"i", "O/Km vs k", []string{"paper shape: nearly flat"},
				func(m metricSource) float64 { return m.OrdersPerKm() }},
			{"j", "WT (hours) vs k", []string{"paper shape: nearly flat"},
				func(m metricSource) float64 { return m.WaitHours() }},
			{"k", "Assignment time per window (ms) vs k", []string{"paper shape: increasing in k"},
				func(m metricSource) float64 { return 1000 * m.MeanAssignSec() }},
		})
}

// GammaValues is the Fig. 9(a–c) grid.
var GammaValues = []float64{0.1, 0.25, 0.5, 0.75, 0.9}

// Fig9ac reproduces Fig. 9(a–c): impact of the angular/travel-time blend γ.
// Paper shape: XDT almost flat (slight decrease); O/Km and WT deteriorate
// sharply as γ → 1 kills batching opportunities.
func Fig9ac(st Setup) ([]*Table, error) {
	return sweep(st, "F9", "gamma", GammaValues,
		func(c *model.Config, v float64) { c.Gamma = v },
		[]sweepMetric{
			{"a", "XDT (hours) vs gamma", []string{"paper shape: nearly flat, slight decrease"},
				func(m metricSource) float64 { return m.ObjectiveHours() }},
			{"b", "O/Km vs gamma", []string{"paper shape: decreasing for large gamma"},
				func(m metricSource) float64 { return m.OrdersPerKm() }},
			{"c", "WT (hours) vs gamma", []string{"paper shape: increasing for large gamma"},
				func(m metricSource) float64 { return m.WaitHours() }},
		})
}

// Fig9dFleetFractions and Fig9dGammas define the Fig. 9(d) grid.
var (
	Fig9dFleetFractions = []float64{0.1, 0.2, 0.3}
	Fig9dGammas         = []float64{0.1, 0.5, 0.9}
)

// Fig9d reproduces Fig. 9(d): rejection rate in City B at small fleets for
// three γ settings. Paper shape: with few vehicles, large γ (less batching)
// rejects many more orders.
func Fig9d(st Setup) (*Table, error) {
	cols := make([]string, len(Fig9dFleetFractions))
	for i, f := range Fig9dFleetFractions {
		cols[i] = fmt.Sprintf("%.0f%% fleet", f*100)
	}
	t := &Table{
		ID:      "F9d",
		Title:   "Rejected orders (%) in City B by gamma and fleet size",
		Columns: cols,
		Notes: []string{
			"paper shape: rejections grow as gamma rises and fleet shrinks",
			"k pinned low so the direction-aware search stays active; once k covers every batch, gamma cannot matter by construction",
		},
	}
	for _, gamma := range Fig9dGammas {
		var vals []float64
		for _, frac := range Fig9dFleetFractions {
			cfg := ConfigFor("CityB")
			cfg.KFactor = 4
			cfg.KMin = 2
			cfg.Gamma = gamma
			s2 := st
			s2.FleetFrac = frac
			m, err := RunPreset("CityB", policy.NewFoodMatch(), cfg, s2)
			if err != nil {
				return nil, err
			}
			vals = append(vals, 100*m.RejectionRate())
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("gamma=%.1f", gamma), Values: vals})
	}
	return t, nil
}
