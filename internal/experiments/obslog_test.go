package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestObsLogCollectsRunTelemetry runs one small experiment cell with an
// ObsLog attached and pins the JSONL contract: per-window round lines with
// span trees, a final obs_summary carrying quantiles for round latency,
// every offline phase, the pipeline stages and lifecycle transitions.
func TestObsLogCollectsRunTelemetry(t *testing.T) {
	var buf bytes.Buffer
	st := DefaultSetup()
	st.Scale = 0.01
	st.EndHour = st.StartHour + 0.5
	st.Obs = NewObsLog(&buf)

	city, err := workload.Preset("CityB", st.Scale, st.Seed)
	if err != nil {
		t.Fatal(err)
	}
	pol, cfg, err := PolicyConfig("foodmatch", "CityB")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(city, pol, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("run delivered nothing; telemetry would be vacuous")
	}
	if st.Obs.Rounds() == 0 {
		t.Fatal("ObsLog saw no rounds")
	}
	if err := st.Obs.Close(); err != nil {
		t.Fatal(err)
	}

	var roundLines, summaries int
	var summary struct {
		Kind    string            `json:"kind"`
		Rounds  int64             `json:"rounds"`
		Metrics []obs.MetricPoint `json:"metrics"`
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Kind   string      `json:"kind"`
			T      float64     `json:"t"`
			Phases []obs.Phase `json:"phases"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch probe.Kind {
		case "round":
			roundLines++
			if len(probe.Phases) == 0 || probe.Phases[0].Name != "inject" {
				t.Fatalf("round line without a span tree: %s", sc.Text())
			}
		case "obs_summary":
			summaries++
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown line kind %q", probe.Kind)
		}
	}
	if roundLines == 0 || summaries != 1 {
		t.Fatalf("got %d round lines, %d summaries", roundLines, summaries)
	}
	if summary.Rounds != st.Obs.Rounds() {
		t.Fatalf("summary rounds %d != collector %d", summary.Rounds, st.Obs.Rounds())
	}

	// Quantiles present for the latency planes the issue names.
	wantHists := map[string]bool{
		"foodmatch_round_latency_seconds|":                               false,
		"foodmatch_round_phase_seconds|phase=assign":                     false,
		"foodmatch_round_phase_seconds|phase=advance":                    false,
		"foodmatch_pipeline_stage_seconds|stage=match":                   false,
		"foodmatch_order_transition_sim_seconds|from=placed,to=assigned": false,
	}
	for _, p := range summary.Metrics {
		var lbl []string
		for _, k := range []string{"from", "phase", "stage", "to"} {
			if v, ok := p.Labels[k]; ok {
				lbl = append(lbl, k+"="+v)
			}
		}
		key := p.Name + "|" + strings.Join(lbl, ",")
		if _, tracked := wantHists[key]; tracked && p.Count > 0 && p.P50 != 0 {
			wantHists[key] = true
		}
	}
	for key, seen := range wantHists {
		if !seen {
			t.Errorf("summary missing populated quantiles for %s", key)
		}
	}
}
