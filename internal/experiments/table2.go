package experiments

import (
	"repro/internal/workload"
)

// Table2 regenerates Table II — the dataset summary — for the synthetic
// presets at the setup's scale: restaurants, vehicles, orders per day,
// average food prep time (minutes, measured from a generated stream), and
// road-network size.
func Table2(st Setup) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "Dataset summary (synthetic presets, scaled from Table II)",
		Columns: []string{"#Rest", "#Vehicles", "#Orders", "Prep(min)", "#Nodes", "#Edges"},
		Notes: []string{
			"counts scale Table II by the setup scale; prep averages are measured from the generated stream",
			"paper: CityA 2085/2454/23442/8.45, CityB 6777/13429/159160/9.34, CityC 8116/10608/112745/10.22, GrubHub 159/183/1046/19.55",
		},
	}
	for _, name := range workload.CityNames() {
		city, err := workload.Preset(name, st.Scale, st.Seed)
		if err != nil {
			return nil, err
		}
		orders := workload.OrderStream(city, st.Seed)
		prepSum := 0.0
		for _, o := range orders {
			prepSum += o.Prep
		}
		prepMin := 0.0
		if len(orders) > 0 {
			prepMin = prepSum / float64(len(orders)) / 60
		}
		t.Rows = append(t.Rows, Row{Label: name, Values: []float64{
			float64(len(city.Restaurants)),
			float64(city.Params.Vehicles),
			float64(len(orders)),
			prepMin,
			float64(city.G.NumNodes()),
			float64(city.G.NumEdges()),
		}})
	}
	return t, nil
}
