package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/spindex"
	"repro/internal/workload"
)

// The X-series experiments go beyond the paper: they ablate the design
// decisions this reproduction had to make (DESIGN.md §2.10–2.11) and
// characterise the substrate substitutions, so a reader can see how much
// each choice matters.

// X1SupplyCalibration sweeps the shift plan's target peak order-to-vehicle
// ratio on City B and reports the FOODMATCH-vs-Greedy objective gap: the
// calibration study behind the preset ratios (DESIGN.md §2.11). The
// crossover where FOODMATCH overtakes Greedy marks the scarcity regime the
// paper's evaluation lives in.
func X1SupplyCalibration(st Setup) (*Table, error) {
	ratios := []float64{2.0, 3.5, 5.5, 7.0}
	cols := make([]string, len(ratios))
	for i, r := range ratios {
		cols[i] = fmt.Sprintf("ratio=%.1f", r)
	}
	t := &Table{
		ID:      "X1",
		Title:   "FoodMatch objective improvement over Greedy vs supply scarcity (City B, %)",
		Columns: cols,
		Notes: []string{
			"positive = FoodMatch better; the paper's regime is the scarce right side",
			"beyond-paper calibration study (DESIGN.md 2.11)",
		},
	}
	var vals []float64
	for _, ratio := range ratios {
		city, err := presetWithRatio("CityB", st, ratio)
		if err != nil {
			return nil, err
		}
		cfg := ConfigForScale("CityB", st.Scale)
		fm, err := Run(city, policy.NewFoodMatch(), cfg, st)
		if err != nil {
			return nil, err
		}
		gr, err := Run(city, policy.NewGreedy(), cfg.Clone(), st)
		if err != nil {
			return nil, err
		}
		if gr.ObjectiveHours() != 0 {
			vals = append(vals, 100*(gr.ObjectiveHours()-fm.ObjectiveHours())/gr.ObjectiveHours())
		} else {
			vals = append(vals, 0)
		}
	}
	t.Rows = append(t.Rows, Row{Label: "improv(%)", Values: vals})
	return t, nil
}

// presetWithRatio rebuilds a preset with an overridden TargetPeakRatio.
func presetWithRatio(name string, st Setup, ratio float64) (*workload.City, error) {
	base, err := workload.Preset(name, st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	p := base.Params
	p.TargetPeakRatio = ratio
	return workload.Generate(p)
}

// X2AgeNeutral ablates the age-neutral edge-weight correction
// (DESIGN.md §2.10 item 2) on City B: with raw Eq. 7 weights, overloaded
// windows starve the oldest orders into rejection and batching disables
// itself; the table shows rejections and the objective with the correction
// on and off.
func X2AgeNeutral(st Setup) (*Table, error) {
	t := &Table{
		ID:      "X2",
		Title:   "Age-neutral weight correction ablation (City B, FoodMatch)",
		Columns: []string{"rejected", "objective(h)", "wait(h)", "o/km"},
		Notes: []string{
			"raw Eq.7 weights embed sunk waiting age; under overload the matching then starves the oldest orders",
		},
	}
	for _, on := range []bool{true, false} {
		cfg := ConfigForScale("CityB", st.Scale)
		cfg.AgeNeutralEdges = on
		m, err := RunPreset("CityB", policy.NewFoodMatch(), cfg, st)
		if err != nil {
			return nil, err
		}
		label := "age-neutral on"
		if !on {
			label = "age-neutral off"
		}
		t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
			float64(m.Rejected), m.ObjectiveHours(), m.WaitHours(), m.OrdersPerKm(),
		}})
	}
	return t, nil
}

// X3BatchRadius ablates the order-graph candidate radius (DESIGN.md §2.5):
// the paper computes the full O(n²) order graph; a travel-time radius
// prunes candidate pairs. The table shows quality vs assignment time.
func X3BatchRadius(st Setup) (*Table, error) {
	radii := []float64{300, 600, 1200, math.Inf(1)}
	t := &Table{
		ID:      "X3",
		Title:   "Batching candidate-radius ablation (City B, FoodMatch)",
		Columns: []string{"objective(h)", "o/km", "assign(ms)"},
		Notes: []string{
			"radius prunes order-graph pairs by first-pickup travel time; Inf = paper's full order graph",
		},
	}
	for _, r := range radii {
		cfg := ConfigForScale("CityB", st.Scale)
		cfg.BatchRadius = r
		m, err := RunPreset("CityB", policy.NewFoodMatch(), cfg, st)
		if err != nil {
			return nil, err
		}
		label := "radius=inf"
		if !math.IsInf(r, 1) {
			label = fmt.Sprintf("radius=%.0fs", r)
		}
		t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
			m.ObjectiveHours(), m.OrdersPerKm(), 1000 * m.MeanAssignSec(),
		}})
	}
	return t, nil
}

// X4SPEngines compares the shortest-path engines on a preset road network:
// pruned landmark labels (the hub-label stand-in), the bounded SSSP cache,
// and plain pairwise Dijkstra — the paper's "index structures make this
// cost significantly lower in practice" claim, measured.
func X4SPEngines(st Setup) (*Table, error) {
	city, err := workload.Preset("CityB", st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	g := city.G
	const queries = 5000
	// Deterministic query mix biased to restaurant sources, like real
	// marginal-cost workloads.
	srcs := make([]roadnet.NodeID, queries)
	dsts := make([]roadnet.NodeID, queries)
	for i := range srcs {
		srcs[i] = city.Restaurants[i%len(city.Restaurants)]
		dsts[i] = roadnet.NodeID((i * 7919) % g.NumNodes())
	}
	tt := 12.5 * 3600

	timeIt := func(f func()) float64 {
		t0 := time.Now()
		f()
		return time.Since(t0).Seconds()
	}

	var sink float64
	ix := spindex.New(g)
	buildSec := timeIt(func() { ix.BuildSlot(roadnet.Slot(tt)) })
	pllSec := timeIt(func() {
		for i := 0; i < queries; i++ {
			sink += ix.Dist(srcs[i], dsts[i], tt)
		}
	})
	cache := roadnet.NewDistCache(g, math.Inf(1))
	cacheSec := timeIt(func() {
		for i := 0; i < queries; i++ {
			sink += cache.Dist(srcs[i], dsts[i], tt)
		}
	})
	engine := roadnet.NewSSSP(g)
	dijkstraN := queries / 10 // pairwise Dijkstra is slow; sample
	dijSec := timeIt(func() {
		for i := 0; i < dijkstraN; i++ {
			sink += engine.Distance(srcs[i], dsts[i], tt)
		}
	})
	_ = sink

	t := &Table{
		ID:      "X4",
		Title:   fmt.Sprintf("Shortest-path engines on City B (%d nodes), µs/query", g.NumNodes()),
		Columns: []string{"us/query", "build(ms)"},
		Notes: []string{
			"hub labels answer point queries fastest once built; the SSSP cache wins when queries share sources (the marginal-cost pattern)",
		},
	}
	t.Rows = append(t.Rows,
		Row{Label: "hub labels (PLL)", Values: []float64{1e6 * pllSec / queries, 1000 * buildSec}},
		Row{Label: "SSSP cache", Values: []float64{1e6 * cacheSec / queries, 0}},
		Row{Label: "pairwise Dijkstra", Values: []float64{1e6 * dijSec / float64(dijkstraN), 0}},
	)
	return t, nil
}

// X5HeuristicPlanner compares the exact branch-and-bound route planner with
// the cheapest-insertion heuristic on MAXO=4 batches (the paper's
// "batch size 3 or more" extension): quality gap and speed.
func X5HeuristicPlanner(st Setup) (*Table, error) {
	city, err := workload.Preset("CityB", st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	cache := roadnet.NewDistCache(city.G, math.Inf(1))
	sp := cache.AsFunc()
	orders := workload.OrderStreamWindow(city, st.Seed, 12*3600, 13*3600)
	if len(orders) < 8 {
		return nil, fmt.Errorf("X5: not enough orders (%d)", len(orders))
	}
	for _, o := range orders {
		o.SDT = o.Prep + sp(o.Restaurant, o.Customer, o.PlacedAt)
	}

	const batchSize = 4
	trials := len(orders) / batchSize
	if trials > 40 {
		trials = 40
	}
	var exactCost, heurCost, exactSec, heurSec float64
	for i := 0; i < trials; i++ {
		batch := orders[i*batchSize : (i+1)*batchSize]
		start := batch[0].Restaurant
		t0 := time.Now()
		_, ec, ok := routingOptimize(sp, start, 12*3600, batch)
		exactSec += time.Since(t0).Seconds()
		if !ok {
			continue
		}
		t0 = time.Now()
		_, hc, ok := routingHeuristic(sp, start, 12*3600, batch)
		heurSec += time.Since(t0).Seconds()
		if !ok {
			continue
		}
		exactCost += ec
		heurCost += hc
	}
	gap := 0.0
	if exactCost != 0 {
		gap = 100 * (heurCost - exactCost) / math.Abs(exactCost)
	}
	t := &Table{
		ID:      "X5",
		Title:   fmt.Sprintf("Route planner: exact vs insertion heuristic (batches of %d)", batchSize),
		Columns: []string{"sum cost(s)", "ms total"},
		Notes: []string{
			fmt.Sprintf("heuristic cost gap vs exact: %+.2f%%", gap),
			"beyond-paper extension: MAXO>3 batches need a polynomial planner",
		},
	}
	t.Rows = append(t.Rows,
		Row{Label: "exact B&B", Values: []float64{exactCost, 1000 * exactSec}},
		Row{Label: "cheapest insertion", Values: []float64{heurCost, 1000 * heurSec}},
	)
	return t, nil
}

// X6TimeDependence ablates the time-dependent edge weights: the same
// workload run with β(e,t) versus free-flow-only weights, measuring how
// much congestion modelling changes the outcome (the dynamic-road-network
// premise of the title).
func X6TimeDependence(st Setup) (*Table, error) {
	base, err := workload.Preset("CityB", st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "X6",
		Title:   "Time-dependent congestion ablation (City B, FoodMatch)",
		Columns: []string{"objective(h)", "mean delivery(min)", "wait(h)"},
		Notes:   []string{"free-flow removes the per-slot congestion multipliers from every zone"},
	}
	cfg := ConfigForScale("CityB", st.Scale)
	m, err := Run(base, policy.NewFoodMatch(), cfg, st)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "congested (paper)", Values: []float64{
		m.ObjectiveHours(), m.MeanDeliveryMin(), m.WaitHours()}})

	flat, err := freeFlowCity(base)
	if err != nil {
		return nil, err
	}
	m2, err := Run(flat, policy.NewFoodMatch(), cfg.Clone(), st)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "free-flow", Values: []float64{
		m2.ObjectiveHours(), m2.MeanDeliveryMin(), m2.WaitHours()}})
	return t, nil
}

// freeFlowCity rebuilds a city's graph with identity congestion (zone 0)
// on every edge, keeping geometry, restaurants and demand identical.
func freeFlowCity(c *workload.City) (*workload.City, error) {
	b := roadnet.NewBuilder()
	g := c.G
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNode(g.Point(roadnet.NodeID(i)))
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.OutEdges(roadnet.NodeID(i)) {
			b.AddEdge(roadnet.NodeID(i), e.To, float64(e.LenM), float64(e.BaseSec), 0)
		}
	}
	ng, err := b.Build()
	if err != nil {
		return nil, err
	}
	clone := *c
	clone.G = ng
	return &clone, nil
}

// adapter indirection so extra.go does not import routing directly at the
// top (keeps the experiment file self-describing about which planner runs).
var (
	routingOptimize  = optimizeExact
	routingHeuristic = optimizeHeuristic
)
