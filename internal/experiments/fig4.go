package experiments

import (
	"fmt"
	"sort"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig4a reproduces Fig. 4(a): the cumulative distribution of the percentile
// rank, by network distance, of the batch each vehicle is actually assigned.
// The paper's reading — ~95 % of assignments land inside the closest 10 % —
// justifies the best-first sparsification. The instrumentation hooks the
// matching step of FOODMATCH on City B; the full (non-sparsified) graph is
// used so ranks are unbiased.
func Fig4a(st Setup) (*Table, error) {
	city, err := workload.Preset("CityB", st.Scale, st.Seed)
	if err != nil {
		return nil, err
	}
	var ranks []float64
	pol := &policy.FoodMatch{
		Label:        "FoodMatch-rank",
		RankObserver: func(r float64) { ranks = append(ranks, r) },
	}
	cfg := ConfigFor("CityB")
	// Unbiased ranks need the full bipartite graph.
	cfg.BestFirst = false
	cfg.Angular = false
	if _, err := Run(city, pol, cfg, st); err != nil {
		return nil, err
	}
	sort.Float64s(ranks)
	t := &Table{
		ID:      "F4a",
		Title:   "CDF of percentile rank of assigned batch (City B)",
		Columns: []string{"assignments<=rank(%)"},
		Notes: []string{
			fmt.Sprintf("%d assignments observed", len(ranks)),
			"paper shape: ~95%% of assignments fall within the closest 10%% of batches",
		},
	}
	for _, cut := range []float64{5, 10, 20, 30, 50, 75, 100} {
		frac := 0.0
		if len(ranks) > 0 {
			i := sort.SearchFloat64s(ranks, cut+1e-9)
			frac = 100 * float64(i) / float64(len(ranks))
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("rank <= %.0f%%", cut), Values: []float64{frac}})
	}
	return t, nil
}

// Fig6a reproduces Fig. 6(a): the order-to-vehicle ratio per hourly slot for
// the three Swiggy cities. Ratios above 1 signal vehicle scarcity; the
// lunch/dinner peaks and City B's dominance are the shapes to match.
func Fig6a(st Setup) (*Table, error) {
	t := &Table{
		ID:      "F6a",
		Title:   "Order/vehicle ratio per timeslot",
		Columns: make([]string, 24),
		Notes: []string{
			"paper shape: peaks at lunch (12-15) and dinner (19-22); City B highest",
		},
	}
	for s := 0; s < 24; s++ {
		t.Columns[s] = fmt.Sprintf("%02dh", s)
	}
	for _, name := range []string{"CityB", "CityC", "CityA"} {
		city, err := workload.Preset(name, st.Scale, st.Seed)
		if err != nil {
			return nil, err
		}
		orders := workload.OrderStream(city, st.Seed)
		ratio := workload.OrderVehicleRatio(city, orders)
		t.Rows = append(t.Rows, Row{Label: name, Values: ratio[:]})
	}
	return t, nil
}

// cellMetrics runs one (city, policy) cell with that policy's canonical
// config and returns the metrics.
func cellMetrics(cityName, policyName string, st Setup) (*sim.Metrics, error) {
	pol, cfg, err := PolicyConfig(policyName, cityName)
	if err != nil {
		return nil, err
	}
	return RunPreset(cityName, pol, cfg, st)
}
