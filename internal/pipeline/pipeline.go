// Package pipeline decomposes the assignment round into the four separable
// stages the paper's Section V ablations attribute speedups to — batching,
// sparsified FoodGraph construction, minimum-weight matching, and
// reshuffling — behind small interfaces, and recomposes them with a
// functional-options Pipeline.
//
// A Pipeline is a policy: it receives one accumulation window (orders O(ℓ),
// vehicles V(ℓ)) and returns assignments. The canned policies — FOODMATCH,
// vanilla KM, Greedy, Reyes — are fixed stage compositions (see
// internal/policy); callers can swap any stage (a different batcher, a
// custom sparsifier, another matcher) without forking the others:
//
//	p := pipeline.New(
//		pipeline.WithBatcher(&pipeline.GreedyBatcher{}),
//		pipeline.WithMatcher(&pipeline.KMMatcher{}),
//	)
//
// Every stage call takes a context.Context for cancellation/deadline
// propagation, and consumes network distances exclusively through the
// injected roadnet.Router, so shortest-path backends (Dijkstra, bounded
// SSSP, hub labels, caching decorators) are swappable per workload. The
// Pipeline records per-stage wall time and sizes (Stats) on every Assign;
// the online engine surfaces them on its round-stats path.
//
// # Concurrency contract
//
// A Policy instance is driven by one window loop at a time: Assign is never
// called concurrently on the same instance, so implementations may keep
// per-call scratch state without synchronisation. The online engine runs K
// zone shards in parallel by constructing one instance per shard through a
// factory (engine.Config.NewPolicy) — implementations must therefore not
// share mutable package-level state across instances, and everything
// reachable from Input (graph, Router, config) is read-only during Assign.
// Observer callbacks are invoked on the calling shard's goroutine and must
// synchronise internally if they aggregate across shards.
package pipeline

import (
	"context"
	"time"

	"repro/internal/foodgraph"
	"repro/internal/model"
	"repro/internal/roadnet"
)

// Input is everything a policy may look at for one window.
type Input struct {
	G *roadnet.Graph
	// Router answers every network-distance query of the window (injected:
	// bounded SSSP by default; hub labels, plain Dijkstra or a caching
	// decorator are drop-in).
	Router roadnet.Router
	// Now is the window-end clock (assignment time).
	Now float64
	// Orders is O(ℓ): unassigned orders plus — when the policy reshuffles —
	// assigned-but-unpicked orders returned to the pool.
	Orders []*model.Order
	// Vehicles is V(ℓ): available vehicles with spare capacity. VehicleState
	// reflects reshuffling: pooled pending orders do not appear in Keep.
	Vehicles []*foodgraph.VehicleState
	// Incumbent maps reshuffled orders to the vehicle they were assigned to
	// before being pooled. While food is still cooking, many vehicles tie at
	// near-zero marginal cost; policies use this to break such ties toward
	// the incumbent instead of churning assignments every window.
	Incumbent map[model.OrderID]model.VehicleID
	Cfg       *model.Config
}

// SPFunc adapts the injected Router to the closure signature the routing
// helpers consume.
func (in *Input) SPFunc() roadnet.SPFunc {
	if in.Router == nil {
		return nil
	}
	return in.Router.Travel
}

// Assignment is one policy decision: attach Orders to Vehicle and replace
// its route plan with Plan (which also covers the vehicle's onboard and
// kept orders).
type Assignment struct {
	Vehicle *model.Vehicle
	Orders  []*model.Order
	Plan    *model.RoutePlan
}

// Policy is an assignment strategy — the interface the simulator and the
// online engine drive. Instances are confined to a single window loop; see
// the package comment for the full concurrency contract.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reshuffles reports whether assigned-but-unpicked orders should be
	// returned to the pool each window (Section IV-D2).
	Reshuffles() bool
	// SingleOrderMode reports whether vehicles serve one order at a time
	// under this policy and config. The paper's vanilla KM baseline cannot
	// batch ("no two edges will be incident on the same node... hence,
	// batching is not feasible", Section IV-A): a vehicle re-enters V(ℓ)
	// only once empty.
	SingleOrderMode(cfg *model.Config) bool
	// Assign decides the window's assignments. A cancelled ctx makes the
	// policy return early (possibly with no decisions); it must never
	// return a half-applied decision.
	Assign(ctx context.Context, in *Input) []Assignment
}

// Batcher groups O(ℓ) into batches — stage 1 (Section IV-B).
type Batcher interface {
	// Name identifies the stage in reports.
	Name() string
	// Batch partitions in.Orders into batches, each carrying a feasible
	// route plan. Orders it cannot plan may be wrapped in infeasible
	// singleton batches which no vehicle will accept.
	Batch(ctx context.Context, in *Input) []*model.Batch
}

// GraphSparsifier constructs the bipartite batch×vehicle cost graph —
// stage 2 (Section IV-C, Algorithm 2 when sparsifying).
type GraphSparsifier interface {
	Name() string
	// Sparsify returns the FoodGraph: Cost[i][j] = mCost(π_i, v_j) or the
	// rejection penalty Ω, with Plan[i][j] the vehicle's route plan for
	// accepted edges (nil on Ω edges when the matcher replans itself).
	Sparsify(ctx context.Context, in *Input, batches []*model.Batch) *foodgraph.Bipartite
}

// Reshuffler adjusts the constructed graph's edge weights using incumbent
// information — stage 3 of the reshuffling mechanism (Section IV-D2). The
// pool release/restore half lives in the window loop (sim.RoundWorld).
type Reshuffler interface {
	Name() string
	// Adjust mutates bp.Cost in place (true edges only).
	Adjust(ctx context.Context, in *Input, batches []*model.Batch, bp *foodgraph.Bipartite)
}

// Matcher turns the (possibly nil) bipartite graph into assignments —
// stage 4 (Section IV-A). Matchers that compute their own costs (Greedy)
// ignore bp.
type Matcher interface {
	Name() string
	Match(ctx context.Context, in *Input, batches []*model.Batch, bp *foodgraph.Bipartite) []Assignment
}

// Stats records per-stage wall time and sizes for one Assign call — the
// instrumentation the paper's Section V ablations need, emitted on the
// engine's round-stats path.
type Stats struct {
	// Sizes: window input, intermediate and output cardinalities.
	Orders    int `json:"orders"`
	Vehicles  int `json:"vehicles"`
	Batches   int `json:"batches"`
	TrueEdges int `json:"true_edges"`
	Assigned  int `json:"assigned"`

	// Per-stage wall time in seconds.
	BatchSec     float64 `json:"batch_sec"`
	SparsifySec  float64 `json:"sparsify_sec"`
	ReshuffleSec float64 `json:"reshuffle_sec"`
	MatchSec     float64 `json:"match_sec"`
}

// TotalSec is the summed stage time.
func (s Stats) TotalSec() float64 {
	return s.BatchSec + s.SparsifySec + s.ReshuffleSec + s.MatchSec
}

// Accumulate folds another run's stats into s (sizes and times sum; used by
// the engine to aggregate across zone shards).
func (s *Stats) Accumulate(o Stats) {
	s.Orders += o.Orders
	s.Vehicles += o.Vehicles
	s.Batches += o.Batches
	s.TrueEdges += o.TrueEdges
	s.Assigned += o.Assigned
	s.BatchSec += o.BatchSec
	s.SparsifySec += o.SparsifySec
	s.ReshuffleSec += o.ReshuffleSec
	s.MatchSec += o.MatchSec
}

// StatsSource is implemented by policies that record per-stage statistics;
// the engine type-asserts against it to publish PipelineStats per round.
type StatsSource interface {
	LastStats() Stats
}

// Pipeline is a composed assignment policy: batch → sparsify → reshuffle →
// match, each stage swappable. The zero option set is the full FOODMATCH
// composition of Section IV.
type Pipeline struct {
	label       string
	batcher     Batcher
	sparsifier  GraphSparsifier
	reshuffler  Reshuffler
	matcher     Matcher
	singleOrder func(*model.Config) bool

	last Stats
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithLabel overrides the pipeline's report name.
func WithLabel(label string) Option { return func(p *Pipeline) { p.label = label } }

// WithBatcher swaps stage 1. Nil is invalid: every window needs batches.
func WithBatcher(b Batcher) Option { return func(p *Pipeline) { p.batcher = b } }

// WithSparsifier swaps stage 2; nil skips graph construction entirely (for
// matchers that compute their own costs, e.g. GreedyMatcher).
func WithSparsifier(s GraphSparsifier) Option { return func(p *Pipeline) { p.sparsifier = s } }

// WithReshuffler swaps stage 3; nil disables reshuffling — the window loop
// then never strips pending orders for this policy (Reshuffles reports it).
func WithReshuffler(r Reshuffler) Option { return func(p *Pipeline) { p.reshuffler = r } }

// WithMatcher swaps stage 4.
func WithMatcher(m Matcher) Option { return func(p *Pipeline) { p.matcher = m } }

// WithSingleOrderWhen installs the SingleOrderMode predicate (nil = never:
// availability stays capacity-based).
func WithSingleOrderWhen(f func(*model.Config) bool) Option {
	return func(p *Pipeline) { p.singleOrder = f }
}

// New composes a pipeline. Defaults reproduce full FOODMATCH (Section IV):
// iterative-clustering batcher, best-first sparsifier, incumbent
// reshuffler, Kuhn–Munkres matcher, single-order mode when batching is
// switched off.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{
		label:       "FoodMatch",
		batcher:     ClusterBatcher{},
		sparsifier:  BestFirstSparsifier{},
		reshuffler:  IncumbentReshuffler{},
		matcher:     &KMMatcher{},
		singleOrder: func(cfg *model.Config) bool { return !cfg.Batching },
	}
	for _, o := range opts {
		o(p)
	}
	// Miscomposition is a programming error; fail at construction with a
	// named cause rather than as a nil dereference inside a shard
	// goroutine mid-run.
	if p.batcher == nil {
		panic("pipeline: a Batcher stage is required (WithBatcher(nil) is invalid)")
	}
	if p.matcher == nil {
		panic("pipeline: a Matcher stage is required (WithMatcher(nil) is invalid)")
	}
	return p
}

// Name implements Policy.
func (p *Pipeline) Name() string { return p.label }

// Reshuffles implements Policy: a pipeline reshuffles exactly when a
// reshuffler stage is installed *and* can run — the reshuffler adjusts the
// constructed graph, so without a sparsifier it never fires, and asking
// the window loop to strip pending orders it cannot re-prioritise would
// strand them (the config switch still gates reshuffling at the window
// loop).
func (p *Pipeline) Reshuffles() bool { return p.reshuffler != nil && p.sparsifier != nil }

// SingleOrderMode implements Policy.
func (p *Pipeline) SingleOrderMode(cfg *model.Config) bool {
	return p.singleOrder != nil && p.singleOrder(cfg)
}

// LastStats implements StatsSource: per-stage timings and sizes of the most
// recent Assign on this instance.
func (p *Pipeline) LastStats() Stats { return p.last }

// Assign implements Policy: run the composed stages in order, recording
// per-stage statistics. A cancelled ctx aborts between stages.
func (p *Pipeline) Assign(ctx context.Context, in *Input) []Assignment {
	p.last = Stats{Orders: len(in.Orders), Vehicles: len(in.Vehicles)}
	if len(in.Orders) == 0 || len(in.Vehicles) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil
	}

	t0 := time.Now()
	batches := p.batcher.Batch(ctx, in)
	p.last.BatchSec = time.Since(t0).Seconds()
	p.last.Batches = len(batches)
	if len(batches) == 0 || ctx.Err() != nil {
		return nil
	}

	var bp *foodgraph.Bipartite
	if p.sparsifier != nil {
		t0 = time.Now()
		bp = p.sparsifier.Sparsify(ctx, in, batches)
		p.last.SparsifySec = time.Since(t0).Seconds()
		p.last.TrueEdges = bp.TrueEdges
		if ctx.Err() != nil {
			return nil
		}
	}

	if p.reshuffler != nil && bp != nil && len(in.Incumbent) > 0 {
		t0 = time.Now()
		p.reshuffler.Adjust(ctx, in, batches, bp)
		p.last.ReshuffleSec = time.Since(t0).Seconds()
		if ctx.Err() != nil {
			return nil
		}
	}

	t0 = time.Now()
	out := p.matcher.Match(ctx, in, batches, bp)
	p.last.MatchSec = time.Since(t0).Seconds()
	for _, a := range out {
		p.last.Assigned += len(a.Orders)
	}
	return out
}

var _ Policy = (*Pipeline)(nil)
var _ StatsSource = (*Pipeline)(nil)
