package pipeline

import (
	"context"
	"math"

	"repro/internal/foodgraph"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// BestFirstSparsifier is the paper's stage 2: FOODGRAPH construction via
// best-first search with angular distance (Section IV-C, Algorithm 2),
// honouring every Config ablation switch (BestFirst, Angular, Gamma, the
// k = KFactor·|O|/|V| degree bound). With BestFirst off it computes the full
// quadratic graph.
type BestFirstSparsifier struct{}

// Name implements GraphSparsifier.
func (BestFirstSparsifier) Name() string { return "best-first" }

// Sparsify implements GraphSparsifier.
func (BestFirstSparsifier) Sparsify(_ context.Context, in *Input, batches []*model.Batch) *foodgraph.Bipartite {
	cfg := in.Cfg
	k := foodgraph.KFor(cfg.KFactor, cfg.KMin, len(batches), len(in.Vehicles))
	return foodgraph.Build(in.G, in.Router, batches, in.Vehicles, foodgraph.Options{
		K:            k,
		Gamma:        cfg.Gamma,
		Angular:      cfg.Angular,
		BestFirst:    cfg.BestFirst,
		Omega:        cfg.Omega,
		MaxFirstMile: cfg.MaxFirstMile,
		MaxO:         cfg.MaxO,
		MaxI:         cfg.MaxI,
		Now:          in.Now,
		AgeNeutral:   cfg.AgeNeutralEdges,
	})
}

// HaversineSparsifier builds the batch×vehicle cost graph under the Reyes
// et al. [5] distance model: straight-line Haversine metres at an assumed
// constant speed, ignoring the road network (the first simplification the
// paper criticises in Section I-A). Costs are +Inf for infeasible pairs
// and NO plans are attached — it must be paired with a matcher that
// replans on the true network (ReyesMatcher). The plain KMMatcher drops
// every plan-less edge, so composing it with this sparsifier yields zero
// assignments each window.
type HaversineSparsifier struct {
	// SpeedMS is the assumed straight-line travel speed (m/s) used to turn
	// Haversine metres into seconds. Zero defaults to 8.33 m/s (30 km/h).
	SpeedMS float64
}

// Name implements GraphSparsifier.
func (HaversineSparsifier) Name() string { return "haversine" }

// Sparsify implements GraphSparsifier.
func (h HaversineSparsifier) Sparsify(_ context.Context, in *Input, batches []*model.Batch) *foodgraph.Bipartite {
	cfg := in.Cfg
	speed := h.SpeedMS
	if speed <= 0 {
		speed = 8.33
	}
	// Haversine pseudo-shortest-path: straight-line seconds between nodes.
	hsp := func(from, to roadnet.NodeID, _ float64) float64 {
		return geo.Haversine(in.G.Point(from), in.G.Point(to)) / speed
	}

	nb, nv := len(batches), len(in.Vehicles)
	bp := &foodgraph.Bipartite{
		Cost: make([][]float64, nb),
		Plan: make([][]*model.RoutePlan, nb),
	}
	for i, b := range batches {
		bp.Cost[i] = make([]float64, nv)
		bp.Plan[i] = make([]*model.RoutePlan, nv)
		grp := b.Orders
		for j, vs := range in.Vehicles {
			bp.Cost[i][j] = math.Inf(1)
			if vs.BaseOrders()+len(grp) > cfg.MaxO {
				continue
			}
			if vs.BaseItems()+b.Items() > cfg.MaxI {
				continue
			}
			if hsp(vs.Node, grp[0].Restaurant, in.Now) > cfg.MaxFirstMile {
				continue
			}
			// Marginal cost in the Haversine world. SDTs cached on orders
			// are network-based; the decision rule only needs relative
			// costs, and constant offsets cancel inside the matching.
			_, mc, ok := routing.MarginalCost(hsp, vs.Node, in.Now, vs.Onboard, vs.Keep, grp)
			if !ok || mc >= cfg.Omega {
				continue
			}
			bp.Cost[i][j] = mc
			bp.TrueEdges++
		}
	}
	return bp
}

var (
	_ GraphSparsifier = BestFirstSparsifier{}
	_ GraphSparsifier = HaversineSparsifier{}
)
