package pipeline

import (
	"context"
	"sort"

	"repro/internal/batching"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// SingletonBatches wraps each order in its own batch (used when batching is
// disabled). Orders whose own delivery leg is unreachable get an infeasible
// batch which no vehicle will accept.
func SingletonBatches(orders []*model.Order) []*model.Batch {
	batches := make([]*model.Batch, 0, len(orders))
	for _, o := range orders {
		plan := &model.RoutePlan{Stops: []model.Stop{
			{Node: o.Restaurant, Order: o, Kind: model.Pickup},
			{Node: o.Customer, Order: o, Kind: model.Dropoff},
		}}
		batches = append(batches, &model.Batch{Orders: []*model.Order{o}, Plan: plan})
	}
	return batches
}

// ClusterBatcher is the paper's stage 1: batching by iterative clustering of
// the order graph (Section IV-B, Algorithm 1), honouring the Config ablation
// switch — with cfg.Batching off it degrades to singleton batches, which is
// what turns the pipeline into the vanilla KM baseline.
type ClusterBatcher struct{}

// Name implements Batcher.
func (ClusterBatcher) Name() string { return "cluster" }

// Batch implements Batcher.
func (ClusterBatcher) Batch(_ context.Context, in *Input) []*model.Batch {
	cfg := in.Cfg
	if !cfg.Batching {
		return SingletonBatches(in.Orders)
	}
	res := batching.Run(in.Router, in.Orders, batching.Options{
		Eta:        cfg.Eta,
		AgeNeutral: cfg.AgeNeutralEdges,
		MaxO:       cfg.MaxO,
		MaxI:       cfg.MaxI,
		Radius:     cfg.BatchRadius,
		Now:        in.Now,
	})
	return res.Batches
}

// SingletonBatcher always produces one batch per order — no grouping at all.
type SingletonBatcher struct{}

// Name implements Batcher.
func (SingletonBatcher) Name() string { return "singleton" }

// Batch implements Batcher.
func (SingletonBatcher) Batch(_ context.Context, in *Input) []*model.Batch {
	return SingletonBatches(in.Orders)
}

// SameRestaurantBatcher groups orders exactly the way Reyes et al. [5] do:
// only orders from the same restaurant may share a batch, greedily filled in
// placement order up to the MAXO/MAXI capacity limits (the restriction the
// paper criticises in Section I-A).
type SameRestaurantBatcher struct{}

// Name implements Batcher.
func (SameRestaurantBatcher) Name() string { return "same-restaurant" }

// Batch implements Batcher.
func (SameRestaurantBatcher) Batch(_ context.Context, in *Input) []*model.Batch {
	cfg := in.Cfg
	byRest := make(map[roadnet.NodeID][]*model.Order)
	var restaurants []roadnet.NodeID
	for _, o := range in.Orders {
		if len(byRest[o.Restaurant]) == 0 {
			restaurants = append(restaurants, o.Restaurant)
		}
		byRest[o.Restaurant] = append(byRest[o.Restaurant], o)
	}
	sort.Slice(restaurants, func(a, b int) bool { return restaurants[a] < restaurants[b] })
	var batches []*model.Batch
	flush := func(cur []*model.Order) {
		if len(cur) == 0 {
			return
		}
		// All pickups share one restaurant; the straw plan (pickups then
		// dropoffs in order) is only used for FirstPickupNode — Reyes
		// replans on the true network at emission.
		plan := &model.RoutePlan{}
		for _, o := range cur {
			plan.Stops = append(plan.Stops, model.Stop{Node: o.Restaurant, Order: o, Kind: model.Pickup})
		}
		for _, o := range cur {
			plan.Stops = append(plan.Stops, model.Stop{Node: o.Customer, Order: o, Kind: model.Dropoff})
		}
		batches = append(batches, &model.Batch{Orders: cur, Plan: plan})
	}
	for _, r := range restaurants {
		orders := byRest[r]
		sort.Slice(orders, func(a, b int) bool { return orders[a].PlacedAt < orders[b].PlacedAt })
		var cur []*model.Order
		items := 0
		for _, o := range orders {
			if len(cur) >= cfg.MaxO || (len(cur) > 0 && items+o.Items > cfg.MaxI) {
				flush(cur)
				cur, items = nil, 0
			}
			cur = append(cur, o)
			items += o.Items
		}
		flush(cur)
	}
	return batches
}

// GreedyBatcher is a cheap alternative to ClusterBatcher: seed a batch with
// the earliest unbatched order, then repeatedly fold in the nearest
// unbatched order (network travel between first pickups) while the capacity
// limits and a join radius allow. No Eq. 5 merge-cost machinery — a single
// nearest-neighbour sweep, O(n²) distance lookups worst case — so batch
// quality is lower but the stage is fast and simple. Useful composed with
// KMMatcher when batching latency dominates a window.
type GreedyBatcher struct {
	// RadiusSec caps restaurant-to-restaurant travel for joining a batch;
	// 0 defaults to the config's BatchRadius.
	RadiusSec float64
}

// Name implements Batcher.
func (GreedyBatcher) Name() string { return "greedy" }

// Batch implements Batcher.
func (b GreedyBatcher) Batch(ctx context.Context, in *Input) []*model.Batch {
	cfg := in.Cfg
	sp := in.SPFunc()
	radius := b.RadiusSec
	if radius <= 0 {
		radius = cfg.BatchRadius
	}
	remaining := make([]*model.Order, len(in.Orders))
	copy(remaining, in.Orders)
	sort.SliceStable(remaining, func(i, j int) bool {
		return remaining[i].PlacedAt < remaining[j].PlacedAt
	})

	var batches []*model.Batch
	used := make([]bool, len(remaining))
	for seedIdx := range remaining {
		if used[seedIdx] {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		seed := remaining[seedIdx]
		used[seedIdx] = true
		group := []*model.Order{seed}
		items := seed.Items
		plan, cost, ok := routing.Optimize(sp, seed.Restaurant, in.Now, nil, group)
		if !ok {
			// Unreachable even alone: an infeasible singleton no vehicle
			// will accept.
			batches = append(batches, SingletonBatches(group)...)
			continue
		}
		for len(group) < cfg.MaxO {
			// Nearest unbatched order by network travel between restaurants.
			best, bestD := -1, radius
			for i := seedIdx + 1; i < len(remaining); i++ {
				o := remaining[i]
				if used[i] || items+o.Items > cfg.MaxI {
					continue
				}
				if d := sp(seed.Restaurant, o.Restaurant, in.Now); d <= bestD {
					best, bestD = i, d
				}
			}
			if best < 0 {
				break
			}
			// Accept the join only if a feasible combined plan exists,
			// keeping that plan so it is not recomputed at emission.
			cand := append(append([]*model.Order{}, group...), remaining[best])
			candPlan, candCost, candOK := routing.Optimize(sp, seed.Restaurant, in.Now, nil, cand)
			if !candOK {
				break
			}
			used[best] = true
			group = cand
			items += remaining[best].Items
			plan, cost = candPlan, candCost
		}
		batches = append(batches, &model.Batch{Orders: group, Plan: plan, Cost: cost})
	}
	return batches
}

var (
	_ Batcher = ClusterBatcher{}
	_ Batcher = SingletonBatcher{}
	_ Batcher = SameRestaurantBatcher{}
	_ Batcher = GreedyBatcher{}
)
