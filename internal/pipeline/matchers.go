package pipeline

import (
	"context"
	"math"

	"repro/internal/foodgraph"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/routing"
)

// IncumbentReshuffler applies the reshuffling weight adjustments of
// Section IV-D2 to the constructed graph, true edges only:
//
//  1. Priority tier: every order that already had a vehicle discounts its
//     batch's edges by a constant ≫ Ω. Serviceability is non-negotiable
//     (Section I); when batches outnumber vehicles the matching's leave-out
//     decision must fall on never-assigned orders, not strand one that had
//     a ride. Being a row constant, the discount never changes *which*
//     vehicle a covered batch gets.
//  2. Incumbent tie-break: an infinitesimal extra discount when the order
//     would stay on its previous vehicle, so equal-cost alternatives don't
//     churn assignments window after window.
type IncumbentReshuffler struct{}

// Name implements Reshuffler.
func (IncumbentReshuffler) Name() string { return "incumbent" }

// Adjust implements Reshuffler.
func (IncumbentReshuffler) Adjust(_ context.Context, in *Input, batches []*model.Batch, bp *foodgraph.Bipartite) {
	priority := 10 * in.Cfg.Omega
	for bi, b := range batches {
		for vj, vs := range in.Vehicles {
			if bp.Plan[bi][vj] == nil {
				continue
			}
			for _, o := range b.Orders {
				if prev, had := in.Incumbent[o.ID]; had {
					bp.Cost[bi][vj] -= priority
					if prev == vs.Vehicle.ID {
						bp.Cost[bi][vj] -= 0.001
					}
				}
			}
		}
	}
}

// KMMatcher is the paper's stage 4: minimum-weight perfect matching by
// Kuhn–Munkres over the constructed graph, emitting the graph's
// precomputed plans; Ω-weight matches mean "leave unassigned for the next
// window".
type KMMatcher struct {
	// PairObserver, when set, receives each matched (batch, vehicle) index
	// pair before its assignment is emitted (Fig. 4(a) instrumentation).
	PairObserver func(in *Input, batches []*model.Batch, bi, vj int)
}

// Name implements Matcher.
func (*KMMatcher) Name() string { return "kuhn-munkres" }

// Match implements Matcher.
func (m *KMMatcher) Match(_ context.Context, in *Input, batches []*model.Batch, bp *foodgraph.Bipartite) []Assignment {
	if bp == nil {
		return nil
	}
	mate := matching.Solve(bp.Cost)
	var out []Assignment
	for bi, vj := range mate {
		if vj < 0 || bp.Cost[bi][vj] >= in.Cfg.Omega || bp.Plan[bi][vj] == nil {
			continue
		}
		out = append(out, Assignment{
			Vehicle: in.Vehicles[vj].Vehicle,
			Orders:  batches[bi].Orders,
			Plan:    bp.Plan[bi][vj],
		})
		if m.PairObserver != nil {
			m.PairObserver(in, batches, bi, vj)
		}
	}
	return out
}

// ReyesMatcher completes the Reyes et al. [5] composition: Kuhn–Munkres
// over the Haversine cost graph, then — because that graph carries no
// executable plans — each matched batch is replanned on the true road
// network at emission. The *decision* stays distance-naive (exactly the
// deficiency Fig. 6(b) exposes); only execution is real.
type ReyesMatcher struct{}

// Name implements Matcher.
func (ReyesMatcher) Name() string { return "km+replan" }

// Match implements Matcher.
func (ReyesMatcher) Match(_ context.Context, in *Input, batches []*model.Batch, bp *foodgraph.Bipartite) []Assignment {
	if bp == nil {
		return nil
	}
	sp := in.SPFunc()
	mate := matching.Solve(bp.Cost)
	var out []Assignment
	for bi, vj := range mate {
		if vj < 0 {
			continue
		}
		vs := in.Vehicles[vj]
		// Execute on the real network: recompute the optimal plan with the
		// true shortest-path oracle.
		plan, _, ok := routing.MarginalCost(sp, vs.Node, in.Now, vs.Onboard, vs.Keep, batches[bi].Orders)
		if !ok {
			continue
		}
		out = append(out, Assignment{
			Vehicle: vs.Vehicle,
			Orders:  batches[bi].Orders,
			Plan:    plan,
		})
	}
	return out
}

// greedyWork tracks a vehicle's evolving workload during the greedy rounds.
type greedyWork struct {
	onboard []*model.Order
	pending []*model.Order
	items   int
	plan    *model.RoutePlan
	touched bool
}

// GreedyMatcher is the Section III baseline as a matcher stage: at each
// round it picks the unassigned batch–vehicle pair with the minimum
// marginal cost (Eq. 3) and assigns it, until no feasible pair remains. A
// vehicle may accumulate several batches across rounds (implicit batching,
// Example 5). It computes its own costs — compose it with a nil sparsifier
// (bp is ignored). Over singleton batches this is exactly the paper's
// Greedy; over clustered batches it greedily places whole batches.
type GreedyMatcher struct{}

// Name implements Matcher.
func (GreedyMatcher) Name() string { return "greedy" }

// Match implements Matcher.
func (GreedyMatcher) Match(ctx context.Context, in *Input, batches []*model.Batch, _ *foodgraph.Bipartite) []Assignment {
	cfg := in.Cfg
	sp := in.SPFunc()
	n := len(batches)
	m := len(in.Vehicles)
	if n == 0 || m == 0 {
		return nil
	}

	works := make([]*greedyWork, m)
	for j, vs := range in.Vehicles {
		w := &greedyWork{onboard: vs.Onboard, items: vs.BaseItems()}
		w.pending = append(w.pending, vs.Keep...)
		works[j] = w
	}

	// cost[i][j] is the cached mCost of batch i on vehicle j under the
	// vehicle's *current* workload; plans[i][j] the corresponding plan.
	// A column is recomputed after its vehicle wins an assignment.
	cost := make([][]float64, n)
	plans := make([][]*model.RoutePlan, n)
	assigned := make([]bool, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		plans[i] = make([]*model.RoutePlan, m)
	}

	compute := func(i, j int) {
		b := batches[i]
		vs := in.Vehicles[j]
		w := works[j]
		cost[i][j] = math.Inf(1)
		plans[i][j] = nil
		if len(w.onboard)+len(w.pending)+len(b.Orders) > cfg.MaxO {
			return
		}
		if w.items+b.Items() > cfg.MaxI {
			return
		}
		if fm := sp(vs.Node, b.FirstPickupNode(), in.Now); fm > cfg.MaxFirstMile {
			return
		}
		plan, mc, ok := routing.MarginalCost(sp, vs.Node, in.Now, w.onboard, w.pending, b.Orders)
		if !ok || mc >= cfg.Omega {
			return
		}
		cost[i][j] = mc
		plans[i][j] = plan
	}

	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			compute(i, j)
		}
	}

	for ctx.Err() == nil {
		// Find the global minimum pair.
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			for j := 0; j < m; j++ {
				if cost[i][j] < best {
					best = cost[i][j]
					bi, bj = i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		b := batches[bi]
		w := works[bj]
		assigned[bi] = true
		w.pending = append(w.pending, b.Orders...)
		w.items += b.Items()
		w.plan = plans[bi][bj]
		w.touched = true
		// The winning vehicle's workload changed: refresh its column.
		for i := 0; i < n; i++ {
			if !assigned[i] {
				compute(i, bj)
			}
		}
	}

	var out []Assignment
	for j, w := range works {
		if !w.touched {
			continue
		}
		newOrders := w.pending[len(in.Vehicles[j].Keep):]
		out = append(out, Assignment{
			Vehicle: in.Vehicles[j].Vehicle,
			Orders:  newOrders,
			Plan:    w.plan,
		})
	}
	return out
}

var (
	_ Reshuffler = IncumbentReshuffler{}
	_ Matcher    = (*KMMatcher)(nil)
	_ Matcher    = ReyesMatcher{}
	_ Matcher    = GreedyMatcher{}
)
