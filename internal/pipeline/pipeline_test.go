package pipeline

import (
	"context"
	"math"
	"testing"

	"repro/internal/foodgraph"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/roadnet"
	"repro/internal/routing"
)

// gridCity builds an n×n grid, w seconds per hop.
func gridCity(n int, w float64) (*roadnet.Graph, roadnet.Router) {
	b := roadnet.NewBuilder()
	origin := geo.Point{Lat: 12.9, Lon: 77.5}
	id := func(r, c int) roadnet.NodeID { return roadnet.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(origin, float64(r)*250, float64(c)*250))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				b.AddEdge(id(r, c), id(r, c+1), 250, w, 0)
				b.AddEdge(id(r, c+1), id(r, c), 250, w, 0)
			}
			if r+1 < n {
				b.AddEdge(id(r, c), id(r+1, c), 250, w, 0)
				b.AddEdge(id(r+1, c), id(r, c), 250, w, 0)
			}
		}
	}
	g := b.MustBuild()
	return g, roadnet.NewBoundedRouter(g, math.Inf(1))
}

func mkOrder(rt roadnet.Router, id model.OrderID, r, c roadnet.NodeID, prep float64) *model.Order {
	o := &model.Order{ID: id, Restaurant: r, Customer: c, PlacedAt: 0, Items: 1, Prep: prep, AssignedTo: -1}
	o.SDT = routing.SDT(rt.Travel, o)
	return o
}

func vehicleAt(id model.VehicleID, node roadnet.NodeID) *foodgraph.VehicleState {
	return &foodgraph.VehicleState{
		Vehicle: model.NewVehicle(id, node, 3),
		Node:    node,
		Dest:    roadnet.Invalid,
	}
}

func window(g *roadnet.Graph, rt roadnet.Router, orders []*model.Order, vehicles []*foodgraph.VehicleState) *Input {
	return &Input{G: g, Router: rt, Now: 0, Orders: orders, Vehicles: vehicles, Cfg: model.DefaultConfig()}
}

// checkAssignments validates the structural sanity of a pipeline's output.
func checkAssignments(t *testing.T, asg []Assignment) {
	t.Helper()
	seenOrder := make(map[model.OrderID]bool)
	seenVehicle := make(map[model.VehicleID]bool)
	for _, a := range asg {
		if seenVehicle[a.Vehicle.ID] {
			t.Fatalf("vehicle %d assigned twice in one window", a.Vehicle.ID)
		}
		seenVehicle[a.Vehicle.ID] = true
		if len(a.Orders) == 0 {
			t.Fatal("assignment with no orders")
		}
		for _, o := range a.Orders {
			if seenOrder[o.ID] {
				t.Fatalf("order %d assigned twice", o.ID)
			}
			seenOrder[o.ID] = true
		}
		if a.Plan.Empty() {
			t.Fatal("assignment with empty plan")
		}
		if err := a.Plan.Validate(); err != nil {
			t.Fatalf("invalid plan: %v", err)
		}
	}
}

func someOrders(rt roadnet.Router, n int) []*model.Order {
	var orders []*model.Order
	for i := 0; i < n; i++ {
		orders = append(orders, mkOrder(rt, model.OrderID(i+1),
			roadnet.NodeID(i*9%64), roadnet.NodeID((i*13+5)%64), 300))
	}
	return orders
}

// TestMixAndMatchCompositions runs several stage mixes over one window and
// checks each yields structurally valid assignments — the point of the
// composable API.
func TestMixAndMatchCompositions(t *testing.T) {
	g, rt := gridCity(8, 30)
	vehicles := []*foodgraph.VehicleState{vehicleAt(1, 0), vehicleAt(2, 63), vehicleAt(3, 32), vehicleAt(4, 7)}
	mixes := map[string]*Pipeline{
		"default-foodmatch": New(),
		"greedybatch+km": New(
			WithBatcher(GreedyBatcher{}),
			WithMatcher(&KMMatcher{}),
		),
		"cluster+greedymatch": New(
			WithSparsifier(nil),
			WithReshuffler(nil),
			WithMatcher(GreedyMatcher{}),
		),
		"singleton+km": New(
			WithBatcher(SingletonBatcher{}),
		),
		"samerest+haversine+replan": New(
			WithBatcher(SameRestaurantBatcher{}),
			WithSparsifier(HaversineSparsifier{}),
			WithReshuffler(nil),
			WithMatcher(ReyesMatcher{}),
		),
	}
	for name, p := range mixes {
		t.Run(name, func(t *testing.T) {
			in := window(g, rt, someOrders(rt, 6), vehicles)
			asg := p.Assign(context.Background(), in)
			if len(asg) == 0 {
				t.Fatal("no assignments")
			}
			checkAssignments(t, asg)
			st := p.LastStats()
			if st.Orders != 6 || st.Vehicles != 4 {
				t.Fatalf("stats sizes wrong: %+v", st)
			}
			if st.Batches == 0 {
				t.Fatalf("stats missed batch stage: %+v", st)
			}
			if st.Assigned == 0 {
				t.Fatalf("stats missed assignments: %+v", st)
			}
			if st.MatchSec < 0 || st.BatchSec < 0 {
				t.Fatalf("negative stage time: %+v", st)
			}
		})
	}
}

// TestPipelineContextCancellation: a cancelled context aborts before any
// stage runs.
func TestPipelineContextCancellation(t *testing.T) {
	g, rt := gridCity(8, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New()
	in := window(g, rt, someOrders(rt, 4), []*foodgraph.VehicleState{vehicleAt(1, 0)})
	if asg := p.Assign(ctx, in); asg != nil {
		t.Fatalf("cancelled context still assigned: %+v", asg)
	}
	if st := p.LastStats(); st.Batches != 0 {
		t.Fatalf("cancelled context ran stages: %+v", st)
	}
}

// TestPipelineReportsComposition pins Reshuffles/SingleOrderMode semantics:
// they derive from the composed stages, not hard-coded policy names.
func TestPipelineReportsComposition(t *testing.T) {
	cfg := model.DefaultConfig()
	full := New()
	if !full.Reshuffles() {
		t.Error("default composition must reshuffle")
	}
	if full.SingleOrderMode(cfg) {
		t.Error("batching on => capacity-based availability")
	}
	cfg2 := model.DefaultConfig()
	cfg2.Batching = false
	if !full.SingleOrderMode(cfg2) {
		t.Error("batching off => single-order mode (vanilla KM)")
	}
	bare := New(WithReshuffler(nil), WithSingleOrderWhen(nil))
	if bare.Reshuffles() {
		t.Error("nil reshuffler must not reshuffle")
	}
	// A reshuffler without a sparsifier can never adjust the graph: the
	// pipeline must not ask the window loop to strip pending orders it
	// cannot re-prioritise.
	if New(WithSparsifier(nil), WithMatcher(GreedyMatcher{})).Reshuffles() {
		t.Error("nil sparsifier must disable reshuffling even with a reshuffler installed")
	}
	if bare.SingleOrderMode(cfg2) {
		t.Error("nil predicate must never enter single-order mode")
	}
	if got := New(WithLabel("X")).Name(); got != "X" {
		t.Errorf("label = %q", got)
	}
}

// TestSameRestaurantBatcherGroups pins the Reyes batching restriction.
func TestSameRestaurantBatcherGroups(t *testing.T) {
	g, rt := gridCity(8, 30)
	orders := []*model.Order{
		mkOrder(rt, 1, 10, 50, 300),
		mkOrder(rt, 2, 10, 51, 300),
		mkOrder(rt, 3, 11, 52, 300),
	}
	in := window(g, rt, orders, nil)
	batches := SameRestaurantBatcher{}.Batch(context.Background(), in)
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2 (same-restaurant pair + singleton)", len(batches))
	}
	for _, b := range batches {
		rest := b.Orders[0].Restaurant
		for _, o := range b.Orders {
			if o.Restaurant != rest {
				t.Fatal("cross-restaurant batch")
			}
		}
		if b.FirstPickupNode() != rest {
			t.Fatal("straw plan must start at the shared restaurant")
		}
	}
}

// TestGreedyBatcherRespectsCapacity: joins stop at MAXO/MAXI and the join
// radius.
func TestGreedyBatcherRespectsCapacity(t *testing.T) {
	g, rt := gridCity(8, 30)
	var orders []*model.Order
	for i := 0; i < 7; i++ {
		orders = append(orders, mkOrder(rt, model.OrderID(i+1), 10, roadnet.NodeID(50+i), 600))
	}
	in := window(g, rt, orders, nil)
	batches := GreedyBatcher{}.Batch(context.Background(), in)
	covered := 0
	for _, b := range batches {
		if len(b.Orders) > in.Cfg.MaxO {
			t.Fatalf("batch of %d exceeds MAXO %d", len(b.Orders), in.Cfg.MaxO)
		}
		if b.Items() > in.Cfg.MaxI {
			t.Fatalf("batch items %d exceed MAXI %d", b.Items(), in.Cfg.MaxI)
		}
		covered += len(b.Orders)
	}
	if covered != len(orders) {
		t.Fatalf("batcher covered %d of %d orders", covered, len(orders))
	}
}

// TestStatsAccumulate checks the engine-side aggregation helper.
func TestStatsAccumulate(t *testing.T) {
	a := Stats{Orders: 2, Batches: 1, BatchSec: 0.5, MatchSec: 1, Assigned: 1, TrueEdges: 3}
	a.Accumulate(Stats{Orders: 3, Batches: 2, BatchSec: 0.25, SparsifySec: 2, Assigned: 2, TrueEdges: 4})
	if a.Orders != 5 || a.Batches != 3 || a.Assigned != 3 || a.TrueEdges != 7 {
		t.Fatalf("sizes wrong: %+v", a)
	}
	if a.BatchSec != 0.75 || a.SparsifySec != 2 || a.MatchSec != 1 {
		t.Fatalf("times wrong: %+v", a)
	}
	if got := a.TotalSec(); got != 3.75 {
		t.Fatalf("TotalSec = %v", got)
	}
}
