package roadnet

import (
	"fmt"
	"math"
)

// WithDenseWeights returns a graph sharing g's topology whose β is read from
// a dense per-edge per-slot table: secs[i*SlotsPerDay+slot] is the traversal
// time in seconds of the edge with index i (the numbering of OutEdgeOffset /
// EdgeIndexOf). This is the compact layout for fully-materialised learned
// graphs — one float32 per cell instead of a dedicated 24-float64 congestion
// row per edge — at the cost of one extra branch in EdgeTime.
//
// Every cell must be finite and positive; the table is owned by the returned
// graph and must not be mutated afterwards.
func (g *Graph) WithDenseWeights(secs []float32) (*Graph, error) {
	m := g.NumEdges()
	if len(secs) != m*SlotsPerDay {
		return nil, fmt.Errorf("roadnet: dense weight table has %d cells, want %d edges × %d slots",
			len(secs), m, SlotsPerDay)
	}
	for i, sec := range secs {
		if f := float64(sec); math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			return nil, fmt.Errorf("roadnet: dense weight cell %d (edge %d slot %d) invalid: %v",
				i, i/SlotsPerDay, i%SlotsPerDay, sec)
		}
	}
	ng := &Graph{
		pts:     g.pts,
		off:     g.off,
		roff:    g.roff,
		edg:     make([]Edge, m),
		redg:    make([]Edge, m),
		slotSec: secs,
	}
	// In dense mode Edge.Zone carries the edge's own index so EdgeTimeSlot
	// can reach its table row without an offset lookup.
	copy(ng.edg, g.edg)
	for i := range ng.edg {
		ng.edg[i].Zone = uint32(i)
	}
	rebuildReverse(ng, g)
	ng.recomputeMaxBeta()
	return ng, nil
}

// DenseWeights reports whether the graph stores its weights as a dense
// edge-indexed slot-seconds table (see WithDenseWeights).
func (g *Graph) DenseWeights() bool { return g.slotSec != nil }
