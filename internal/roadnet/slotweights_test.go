package roadnet

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// weightsTestGraph builds a 4-node directed cycle with distinct base times
// and a congestion zone on one edge.
func weightsTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	pts := []geo.Point{
		{Lat: 12.90, Lon: 77.50},
		{Lat: 12.91, Lon: 77.50},
		{Lat: 12.91, Lon: 77.51},
		{Lat: 12.90, Lon: 77.51},
	}
	for _, p := range pts {
		b.AddNode(p)
	}
	var peak [SlotsPerDay]float64
	for s := range peak {
		peak[s] = 1
	}
	peak[18], peak[19] = 2.0, 2.0
	z := b.AddZone(peak)
	b.AddEdge(0, 1, 1000, 100, 0)
	b.AddEdge(1, 2, 1000, 200, z)
	b.AddEdge(2, 3, 1000, 300, 0)
	b.AddEdge(3, 0, 1000, 400, 0)
	return b.MustBuild()
}

func TestSlotWeightsSetValidation(t *testing.T) {
	w := NewSlotWeights()
	if err := w.Set(0, 1, 3, 120); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -5} {
		if err := w.Set(0, 1, 3, bad); err == nil {
			t.Fatalf("Set accepted invalid weight %v", bad)
		}
	}
	if err := w.Set(0, 1, -1, 120); err == nil {
		t.Fatal("Set accepted negative slot")
	}
	if err := w.Set(0, 1, SlotsPerDay, 120); err == nil {
		t.Fatal("Set accepted out-of-range slot")
	}
	if w.Cells() != 1 || w.Edges() != 1 {
		t.Fatalf("cells=%d edges=%d after one valid set", w.Cells(), w.Edges())
	}
	// Overwriting a cell does not double-count it.
	if err := w.Set(0, 1, 3, 150); err != nil {
		t.Fatal(err)
	}
	if w.Cells() != 1 {
		t.Fatalf("cells=%d after overwrite, want 1", w.Cells())
	}
	if got, ok := w.Get(0, 1, 3); !ok || got != 150 {
		t.Fatalf("Get = %v,%v want 150,true", got, ok)
	}
}

func TestReweightedOverridesAndFallsBack(t *testing.T) {
	g := weightsTestGraph(t)
	w := NewSlotWeights()
	// Override edge 1->2 (zoned) in slot 18 only and edge 2->3 in slot 3.
	if err := w.Set(1, 2, 18, 250); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(2, 3, 3, 111); err != nil {
		t.Fatal(err)
	}
	ng := g.Reweighted(w)

	edgeTime := func(gr *Graph, u, v NodeID, slot int) float64 {
		for _, e := range gr.OutEdges(u) {
			if e.To == v {
				return gr.EdgeTimeSlot(e, slot)
			}
		}
		t.Fatalf("edge %d->%d missing", u, v)
		return 0
	}

	if got := edgeTime(ng, 1, 2, 18); math.Abs(got-250) > 1e-9 {
		t.Fatalf("overridden cell: %v want 250", got)
	}
	// Unset slot on an overridden edge keeps the prior profile (zone peak
	// multiplier 2.0 over base 200 in slot 19).
	if got := edgeTime(ng, 1, 2, 19); math.Abs(got-400) > 1e-9 {
		t.Fatalf("prior fallback on overridden edge: %v want 400", got)
	}
	if got := edgeTime(ng, 2, 3, 3); math.Abs(got-111) > 1e-9 {
		t.Fatalf("overridden cell: %v want 111", got)
	}
	// Untouched edges keep every slot exactly.
	for s := 0; s < SlotsPerDay; s++ {
		if got, want := edgeTime(ng, 0, 1, s), edgeTime(g, 0, 1, s); got != want {
			t.Fatalf("untouched edge slot %d: %v want %v", s, got, want)
		}
		if got, want := edgeTime(ng, 3, 0, s), edgeTime(g, 3, 0, s); got != want {
			t.Fatalf("untouched edge slot %d: %v want %v", s, got, want)
		}
	}
	// The source graph is untouched.
	if got := edgeTime(g, 1, 2, 18); math.Abs(got-400) > 1e-9 {
		t.Fatalf("source graph mutated: %v want 400", got)
	}
	// Reverse adjacency mirrors the overridden attributes.
	found := false
	for _, e := range ng.InEdges(2) {
		if e.To == 1 {
			found = true
			if got := ng.EdgeTimeSlot(e, 18); math.Abs(got-250) > 1e-9 {
				t.Fatalf("reverse edge weight %v want 250", got)
			}
		}
	}
	if !found {
		t.Fatal("reverse edge 1->2 missing after reweight")
	}
	// maxBeta recomputed for the overridden profile.
	if got := ng.MaxBeta(3.5 * 3600); got < 400 {
		t.Fatalf("maxBeta slot 3 = %v, want >= 400", got)
	}
}

// TestReweightedShortestPathsShift checks the end-to-end effect: a learned
// slowdown on one edge reroutes/retimes shortest paths in that slot only.
func TestReweightedShortestPathsShift(t *testing.T) {
	g := weightsTestGraph(t)
	w := NewSlotWeights()
	if err := w.Set(0, 1, 6, 5000); err != nil { // off-peak slot, huge slowdown
		t.Fatal(err)
	}
	ng := g.Reweighted(w)
	tAt := 6.5 * 3600
	before := ShortestPath(g, 0, 1, tAt)
	after := ShortestPath(ng, 0, 1, tAt)
	if after <= before {
		t.Fatalf("slowdown not visible: before %v after %v", before, after)
	}
	// Other slots unchanged.
	otherT := 10.5 * 3600
	if b, a := ShortestPath(g, 0, 1, otherT), ShortestPath(ng, 0, 1, otherT); a != b {
		t.Fatalf("unrelated slot changed: before %v after %v", b, a)
	}
}

func TestScaleSlotMultipliers(t *testing.T) {
	g := weightsTestGraph(t)
	rain := g.ScaleSlotMultipliers(func(int) float64 { return 1.5 })
	for _, e := range g.OutEdges(0) {
		for s := 0; s < SlotsPerDay; s++ {
			want := g.EdgeTimeSlot(e, s) * 1.5
			var got float64
			for _, ne := range rain.OutEdges(0) {
				if ne.To == e.To {
					got = rain.EdgeTimeSlot(ne, s)
				}
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("slot %d: %v want %v", s, got, want)
			}
		}
	}
	if got, want := rain.MaxBeta(18.5*3600), g.MaxBeta(18.5*3600)*1.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("maxBeta not rescaled: %v want %v", got, want)
	}
	// Invalid scale factors are ignored (treated as 1).
	same := g.ScaleSlotMultipliers(func(int) float64 { return math.NaN() })
	if got, want := same.ZoneMultiplier(0, 12), g.ZoneMultiplier(0, 12); got != want {
		t.Fatalf("NaN scale applied: %v want %v", got, want)
	}
}
