package roadnet

import (
	"fmt"
	"math"
	"sort"
)

// SlotWeights is a sparse per-edge per-slot travel-time table: the learned
// β(e, slot) of Section V-A, decoupled from any Graph instance so one table
// can reweight several graphs (or successive epochs of the same graph).
// Cells are keyed by the edge's (from, to) node pair; a zero cell means "no
// estimate — fall back to the graph's prior weight for that slot".
//
// A SlotWeights is a value under construction: build it single-threaded (or
// externally synchronised), then treat it as immutable once handed to
// Reweighted. The gps.SpeedLearner produces one per publish under its own
// lock.
type SlotWeights struct {
	cells map[int64]*[SlotsPerDay]float64
	n     int // set (edge, slot) cell count
}

// NewSlotWeights returns an empty table.
func NewSlotWeights() *SlotWeights {
	return &SlotWeights{cells: make(map[int64]*[SlotsPerDay]float64)}
}

// EdgeKey packs an edge's (from, to) node pair into one map key — the
// shared key format of the learner's accumulators and SlotWeights cells.
func EdgeKey(u, v NodeID) int64 { return int64(u)<<32 | int64(uint32(v)) }

// EdgeKeyNodes unpacks an EdgeKey.
func EdgeKeyNodes(k int64) (u, v NodeID) { return NodeID(k >> 32), NodeID(uint32(k)) }

// Set records a learned traversal time in seconds for edge u→v in a slot.
// Non-finite or non-positive times and out-of-range slots are rejected —
// one poisoned sample must not corrupt a whole published epoch.
func (w *SlotWeights) Set(u, v NodeID, slot int, sec float64) error {
	if slot < 0 || slot >= SlotsPerDay {
		return fmt.Errorf("roadnet: slot %d out of range", slot)
	}
	if math.IsNaN(sec) || math.IsInf(sec, 0) || sec <= 0 {
		return fmt.Errorf("roadnet: invalid weight %v for edge %d->%d slot %d", sec, u, v, slot)
	}
	row := w.cells[EdgeKey(u, v)]
	if row == nil {
		row = new([SlotsPerDay]float64)
		w.cells[EdgeKey(u, v)] = row
	}
	if row[slot] == 0 {
		w.n++
	}
	row[slot] = sec
	return nil
}

// Get returns the learned time for an edge and slot, reporting whether a
// cell is set.
func (w *SlotWeights) Get(u, v NodeID, slot int) (float64, bool) {
	if w == nil || slot < 0 || slot >= SlotsPerDay {
		return 0, false
	}
	if row := w.cells[EdgeKey(u, v)]; row != nil && row[slot] > 0 {
		return row[slot], true
	}
	return 0, false
}

// Cells returns the number of set (edge, slot) cells.
func (w *SlotWeights) Cells() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Edges returns the number of edges with at least one set cell.
func (w *SlotWeights) Edges() int {
	if w == nil {
		return 0
	}
	return len(w.cells)
}

// Range calls f for every set (edge, slot) cell in deterministic order
// (edges by packed key ascending, slots ascending) — deterministic so that
// float aggregations over the cells reproduce bit-for-bit across runs.
func (w *SlotWeights) Range(f func(u, v NodeID, slot int, sec float64)) {
	if w == nil {
		return
	}
	keys := make([]int64, 0, len(w.cells))
	for k := range w.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		u, v := EdgeKeyNodes(k)
		row := w.cells[k]
		for s := 0; s < SlotsPerDay; s++ {
			if row[s] > 0 {
				f(u, v, s, row[s])
			}
		}
	}
}

// PutRow replaces the full slot row of one edge (validating every set cell
// like Set), keeping the cell count consistent. The engine's dynamic plane
// uses it to fold a publish's dirty-edge rows into the cumulative published
// table in O(dirty) instead of rebuilding the table.
func (w *SlotWeights) PutRow(u, v NodeID, row [SlotsPerDay]float64) error {
	for s := 0; s < SlotsPerDay; s++ {
		if sec := row[s]; sec != 0 && (math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0) {
			return fmt.Errorf("roadnet: invalid weight %v for edge %d->%d slot %d", sec, u, v, s)
		}
	}
	k := EdgeKey(u, v)
	if old := w.cells[k]; old != nil {
		for s := 0; s < SlotsPerDay; s++ {
			if old[s] > 0 {
				w.n--
			}
		}
	}
	set := 0
	for s := 0; s < SlotsPerDay; s++ {
		if row[s] > 0 {
			set++
		}
	}
	if set == 0 {
		delete(w.cells, k)
		return nil
	}
	r := row
	w.cells[k] = &r
	w.n += set
	return nil
}

// Row returns a copy of an edge's full slot row (zero cells = unset) and
// whether the edge has any set cell — one map lookup instead of 24 Gets
// when a consumer folds whole rows (the engine's incremental publish).
func (w *SlotWeights) Row(u, v NodeID) ([SlotsPerDay]float64, bool) {
	if r := w.row(u, v); r != nil {
		return *r, true
	}
	return [SlotsPerDay]float64{}, false
}

// row exposes the raw slot row for Reweighted (nil when absent).
func (w *SlotWeights) row(u, v NodeID) *[SlotsPerDay]float64 {
	if w == nil {
		return nil
	}
	return w.cells[EdgeKey(u, v)]
}

// Reweighted returns a new Graph that shares g's topology (node coordinates
// and CSR layout) but whose per-edge per-slot weights are overridden by w
// wherever it has cells; unset cells keep g's β for that slot — the sparse
// fallback that lets a thin stream of GPS samples refine only the edges it
// has actually observed. Edges with any override get a dedicated congestion
// zone, so the override is exact per (edge, slot).
//
// The rebuild is cheap — O(|E|·slots) with no Dijkstra and no re-validation.
// For frequent publishes at city scale the engine goes further: only the
// first epoch pays the full rebuild, every later one goes through
// PatchReweighted, which copies only the slot rows the learner actually
// touched since the previous publish.
func (g *Graph) Reweighted(w *SlotWeights) *Graph {
	if g.slotSec != nil {
		return g.reweightedDense(w)
	}
	n := g.NumNodes()
	ng := &Graph{
		pts:    g.pts,
		off:    g.off,
		roff:   g.roff,
		edg:    make([]Edge, len(g.edg)),
		redg:   make([]Edge, len(g.redg)),
		rwBase: g,
	}
	copy(ng.edg, g.edg)
	ng.zoneMult = make([]*[SlotsPerDay]float64, len(g.zoneMult), len(g.zoneMult)+w.Edges())
	copy(ng.zoneMult, g.zoneMult)

	for u := 0; u < n; u++ {
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			e := &ng.edg[ei]
			row := w.row(NodeID(u), e.To)
			if row == nil {
				continue
			}
			base := float64(e.BaseSec)
			mult := new([SlotsPerDay]float64)
			for s := 0; s < SlotsPerDay; s++ {
				if row[s] > 0 {
					mult[s] = row[s] / base
				} else {
					mult[s] = g.zoneMult[e.Zone][s] // prior profile fallback
				}
			}
			e.Zone = uint32(len(ng.zoneMult))
			ng.zoneMult = append(ng.zoneMult, mult)
		}
	}

	// Rebuild the reverse CSR from the reweighted forward edges so both
	// views carry identical attributes. Iteration in forward-CSR order is
	// deterministic; within-list ordering may differ from Builder.Build's
	// insertion order, which no consumer depends on (reverse traversal only
	// relaxes distances).
	rebuildReverse(ng, g)
	ng.recomputeMaxBeta()
	return ng
}

// rebuildReverse recomputes ng's reverse CSR from its forward edges, using
// the (topology-identical) offsets of g.
func rebuildReverse(ng, g *Graph) {
	n := g.NumNodes()
	cursor := make([]int32, n)
	for u := 0; u < n; u++ {
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			e := ng.edg[ei]
			rev := e
			rev.To = NodeID(u)
			ng.redg[g.roff[e.To]+cursor[e.To]] = rev
			cursor[e.To]++
		}
	}
}

// reweightedDense overrides cells of a dense-weight graph: the slot-seconds
// table is cloned and learned cells written straight into it.
func (g *Graph) reweightedDense(w *SlotWeights) *Graph {
	ng := &Graph{
		pts:     g.pts,
		off:     g.off,
		roff:    g.roff,
		edg:     g.edg,
		redg:    g.redg,
		slotSec: append([]float32(nil), g.slotSec...),
		rwBase:  g,
	}
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			row := w.row(NodeID(u), g.edg[ei].To)
			if row == nil {
				continue
			}
			for s := 0; s < SlotsPerDay; s++ {
				if row[s] > 0 {
					ng.slotSec[int(ei)*SlotsPerDay+s] = float32(row[s])
				}
			}
		}
	}
	ng.recomputeMaxBeta()
	return ng
}

// ScaleSlotMultipliers returns a graph sharing g's full edge storage whose
// congestion-multiplier rows are scaled by f(slot) — the cheap transform
// behind scenario weather/rush profiles (a uniform slowdown touches every
// zone the same way, so only the zone table and β maxima change).
func (g *Graph) ScaleSlotMultipliers(f func(slot int) float64) *Graph {
	ng := &Graph{
		pts:  g.pts,
		off:  g.off,
		edg:  g.edg,
		roff: g.roff,
		redg: g.redg,
	}
	if g.slotSec != nil {
		// Dense weight mode has no zone table: scale the cells directly
		// (scales sanitised once per slot, not once per cell).
		var scale [SlotsPerDay]float32
		for s := 0; s < SlotsPerDay; s++ {
			sc := f(s)
			if math.IsNaN(sc) || math.IsInf(sc, 0) || sc <= 0 {
				sc = 1
			}
			scale[s] = float32(sc)
		}
		ng.slotSec = make([]float32, len(g.slotSec))
		for i := range g.slotSec {
			ng.slotSec[i] = g.slotSec[i] * scale[i%SlotsPerDay]
		}
		ng.recomputeMaxBeta()
		return ng
	}
	ng.zoneMult = make([]*[SlotsPerDay]float64, len(g.zoneMult))
	for z := range g.zoneMult {
		row := new([SlotsPerDay]float64)
		for s := 0; s < SlotsPerDay; s++ {
			scale := f(s)
			if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
				scale = 1
			}
			row[s] = g.zoneMult[z][s] * scale
		}
		ng.zoneMult[z] = row
	}
	ng.recomputeMaxBeta()
	return ng
}
