package roadnet

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// benchGrid builds a w×w grid road network (bidirectional streets, a few
// congestion zones) — big enough that the O(|E|·slots) full rebuild visibly
// dwarfs an O(dirty) patch.
func benchGrid(b *testing.B, w int) *Graph {
	b.Helper()
	bld := NewBuilder()
	var rush [SlotsPerDay]float64
	for s := range rush {
		rush[s] = 1 + 0.05*float64(s%7)
	}
	z := bld.AddZone(rush)
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			bld.AddNode(geo.Point{Lat: 12.9 + float64(r)*4e-4, Lon: 77.5 + float64(c)*4e-4})
		}
	}
	id := func(r, c int) NodeID { return NodeID(r*w + c) }
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			zone := uint32(0)
			if (r+c)%3 == 0 {
				zone = z
			}
			if c+1 < w {
				bld.AddEdge(id(r, c), id(r, c+1), 45, 6+float64((r+c)%5), zone)
				bld.AddEdge(id(r, c+1), id(r, c), 45, 6+float64((r+c)%5), zone)
			}
			if r+1 < w {
				bld.AddEdge(id(r, c), id(r+1, c), 45, 7+float64((r*c)%4), zone)
				bld.AddEdge(id(r+1, c), id(r, c), 7, 7+float64((r*c)%4), zone)
			}
		}
	}
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkWeightPublish compares the two publish paths of the dynamic
// road-network plane: a full Graph.Reweighted over the cumulative learned
// table (what every epoch used to cost) against PatchReweighted with dirty
// sets of increasing size (what steady-state epochs cost now). The patched
// cost should track the dirty-cell count, not |E|·slots.
//
//	go test ./internal/roadnet -bench WeightPublish -benchtime 10x
func BenchmarkWeightPublish(b *testing.B) {
	g := benchGrid(b, 60) // 3 600 nodes, ~14k edges
	rng := rand.New(rand.NewSource(7))

	// A learner-shaped cumulative table: ~30% of edges observed across a
	// handful of slots each.
	cum := NewSlotWeights()
	type cell struct {
		u, v NodeID
		slot int
	}
	var observed []cell
	for u := 0; u < g.NumNodes(); u++ {
		for _, e := range g.OutEdges(NodeID(u)) {
			if rng.Intn(10) >= 3 {
				continue
			}
			for k := 0; k < 4; k++ {
				slot := rng.Intn(SlotsPerDay)
				sec := 5 + rng.Float64()*120
				if err := cum.Set(NodeID(u), e.To, slot, sec); err != nil {
					b.Fatal(err)
				}
				observed = append(observed, cell{NodeID(u), e.To, slot})
			}
		}
	}
	prev := g.Reweighted(cum)
	b.Logf("graph: %d edges; cumulative table: %d cells on %d edges",
		g.NumEdges(), cum.Cells(), cum.Edges())

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rw := g.Reweighted(cum); rw.NumEdges() != g.NumEdges() {
				b.Fatal("bad rebuild")
			}
		}
	})

	for _, nDirty := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("patched/dirty=%d", nDirty), func(b *testing.B) {
			// Build the delta outside the timer: nDirty observed cells get
			// fresh samples (the learner hands the engine exactly this).
			dirty := NewDirtyCells()
			delta := NewSlotWeights()
			for k := 0; k < nDirty; k++ {
				c := observed[rng.Intn(len(observed))]
				sec := 5 + rng.Float64()*120
				if err := cum.Set(c.u, c.v, c.slot, sec); err != nil {
					b.Fatal(err)
				}
				dirty.Mark(c.u, c.v, c.slot)
			}
			dirty.Range(func(u, v NodeID, _ uint32) {
				if row := cum.row(u, v); row != nil {
					if err := delta.PutRow(u, v, *row); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ng, err := g.PatchReweighted(prev, delta, dirty)
				if err != nil {
					b.Fatal(err)
				}
				if ng.NumEdges() != g.NumEdges() {
					b.Fatal("bad patch")
				}
			}
		})
	}
}
