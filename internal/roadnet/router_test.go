package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestRouterBackendsAgree checks that every Router backend returns the same
// distances on random graphs: per-query Dijkstra, the unbounded bounded
// router, an LRU-decorated Dijkstra, and the raw SPFunc adapter.
func TestRouterBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 60, 120)
	dij := NewDijkstraRouter(g)
	bounded := NewBoundedRouter(g, math.Inf(1))
	lru := NewLRURouter(NewDijkstraRouter(g), 64)
	raw := SPFunc(func(from, to NodeID, tt float64) float64 { return ShortestPath(g, from, to, tt) })

	for q := 0; q < 200; q++ {
		from := NodeID(rng.Intn(g.NumNodes()))
		to := NodeID(rng.Intn(g.NumNodes()))
		tt := float64(rng.Intn(24)) * 3600
		want := raw.Travel(from, to, tt)
		for name, r := range map[string]Router{"dijkstra": dij, "bounded": bounded, "lru": lru} {
			got := r.Travel(from, to, tt)
			if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("%s(%d->%d @%v) = %v, want %v", name, from, to, tt, got, want)
			}
		}
	}
}

// TestBoundedRouterTruncates pins the bounded backend's contract: targets
// beyond the expansion bound report +Inf (callers translate that into Ω).
func TestBoundedRouterTruncates(t *testing.T) {
	g := paperGraph(t)
	full := NewDijkstraRouter(g)
	d := full.Travel(0, 9, 0)
	if math.IsInf(d, 1) {
		t.Fatal("paper graph disconnected")
	}
	tight := NewBoundedRouter(g, d/2)
	if got := tight.Travel(0, 9, 0); !math.IsInf(got, 1) {
		t.Fatalf("bounded router beyond bound = %v, want +Inf", got)
	}
}

// TestLRURouterMemoisesAndEvicts exercises hit accounting, the capacity
// bound, and slot-keyed entries.
func TestLRURouterMemoisesAndEvicts(t *testing.T) {
	g := paperGraph(t)
	lru := NewLRURouter(NewDijkstraRouter(g), 2)

	a := lru.Travel(0, 5, 0)
	if h, m := lru.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first query: hits=%d misses=%d", h, m)
	}
	if b := lru.Travel(0, 5, 60); b != a { // same slot, same key
		t.Fatalf("same-slot repeat = %v, want %v", b, a)
	}
	if h, _ := lru.Stats(); h != 1 {
		t.Fatalf("same-slot repeat not a hit")
	}
	// A different slot is a different key.
	lru.Travel(0, 5, 2*3600)
	if _, m := lru.Stats(); m != 2 {
		t.Fatalf("cross-slot query should miss")
	}
	// Capacity 2: inserting a third key evicts the least recently used.
	lru.Travel(1, 5, 0)
	if n := lru.Len(); n != 2 {
		t.Fatalf("resident entries = %d, want 2", n)
	}
	lru.Reset()
	if n := lru.Len(); n != 0 {
		t.Fatalf("Reset left %d entries", n)
	}
	if h, m := lru.Stats(); h != 0 || m != 0 {
		t.Fatalf("Reset left counters hits=%d misses=%d", h, m)
	}
}

// TestConcurrentRouters hammers the concurrency-safe backends from many
// goroutines (run with -race).
func TestConcurrentRouters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 40, 80)
	for name, r := range map[string]Router{
		"dijkstra": NewDijkstraRouter(g),
		"lru":      NewLRURouter(NewDijkstraRouter(g), 128),
	} {
		r := r
		t.Run(name, func(t *testing.T) {
			ref := NewDijkstraRouter(g)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					lr := rand.New(rand.NewSource(seed))
					for q := 0; q < 50; q++ {
						from := NodeID(lr.Intn(g.NumNodes()))
						to := NodeID(lr.Intn(g.NumNodes()))
						want := ref.Travel(from, to, 0)
						if got := r.Travel(from, to, 0); got != want {
							t.Errorf("%d->%d = %v, want %v", from, to, got, want)
							return
						}
					}
				}(int64(w))
			}
			wg.Wait()
		})
	}
}
