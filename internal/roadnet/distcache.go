package roadnet

// DistCache memoises bounded single-source expansions within one
// accumulation window. Both batching (restaurant-to-restaurant and
// restaurant-to-customer queries) and FoodGraph construction
// (vehicle-to-restaurant queries) issue many queries that share a source
// node and a time slot; the cache runs the single-source search once per
// (source, slot) and answers every subsequent query in O(1).
//
// Distances returned are travel times in seconds in the weight profile of
// the slot; sources expanded past the bound report +Inf for unreached
// targets, which callers translate into the rejection penalty Ω.
//
// A DistCache is not safe for concurrent use.
type DistCache struct {
	g      *Graph
	engine *SSSP
	bound  float64
	// entries[slot] maps source -> dense distance slice (len = n).
	entries map[int]map[NodeID][]float64
	// Stats.
	hits, misses int64
}

// NewDistCache creates a cache over g whose single-source expansions stop at
// `bound` seconds of travel. The paper bounds useful distances by the 45-min
// delivery guarantee; pass that (plus slack) here.
func NewDistCache(g *Graph, bound float64) *DistCache {
	return &DistCache{
		g:       g,
		engine:  NewSSSP(g),
		bound:   bound,
		entries: make(map[int]map[NodeID][]float64),
	}
}

// Bound returns the expansion bound in seconds.
func (c *DistCache) Bound() float64 { return c.bound }

// Dist returns SP(from, to, t) or +Inf when `to` is farther than the bound.
func (c *DistCache) Dist(from, to NodeID, t float64) float64 {
	return c.row(from, Slot(t))[to]
}

// Travel implements Router (the bounded-SSSP backend of the unified
// shortest-path substrate).
func (c *DistCache) Travel(from, to NodeID, t float64) float64 {
	return c.Dist(from, to, t)
}

// RouterKind implements Kinded.
func (c *DistCache) RouterKind() string { return "bounded" }

// TravelMany implements ManyRouter: one memoised row read serves every
// target (the row itself is built by a single bounded expansion on first
// touch, exactly as per-target Travel would).
func (c *DistCache) TravelMany(from NodeID, targets []NodeID, t float64) []float64 {
	row := c.row(from, Slot(t))
	out := make([]float64, len(targets))
	for i, to := range targets {
		out[i] = row[to]
	}
	return out
}

// Settles reports the cumulative node settles of the cache's SSSP engine —
// row builds only; memoised reads settle nothing.
func (c *DistCache) Settles() int64 { return int64(c.engine.Settles()) }

// Row returns the full distance slice from `from` in the slot of t. The
// slice is owned by the cache; callers must not mutate it.
func (c *DistCache) Row(from NodeID, t float64) []float64 {
	return c.row(from, Slot(t))
}

func (c *DistCache) row(from NodeID, slot int) []float64 {
	bySource, ok := c.entries[slot]
	if !ok {
		bySource = make(map[NodeID][]float64)
		c.entries[slot] = bySource
	}
	if row, ok := bySource[from]; ok {
		c.hits++
		return row
	}
	c.misses++
	view := c.engine.FromSource(from, float64(slot)*3600, c.bound)
	row := make([]float64, c.g.NumNodes())
	for i := range row {
		row[i] = view.Get(NodeID(i)) // +Inf for nodes outside the bound
	}
	bySource[from] = row
	return row
}

// Reset drops all memoised rows (call between accumulation windows if memory
// pressure matters; rows keyed by slot stay valid across windows otherwise
// since weights are static within a slot).
func (c *DistCache) Reset() {
	c.entries = make(map[int]map[NodeID][]float64)
}

// Stats reports cache hits and misses since construction.
func (c *DistCache) Stats() (hits, misses int64) { return c.hits, c.misses }

// SPFunc is the shortest-path oracle signature consumed by the routing,
// batching and policy layers: travel seconds from->to departing at t.
type SPFunc func(from, to NodeID, t float64) float64

// AsFunc adapts the cache to the SPFunc interface.
func (c *DistCache) AsFunc() SPFunc {
	return func(from, to NodeID, t float64) float64 { return c.Dist(from, to, t) }
}
