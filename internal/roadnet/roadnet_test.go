package roadnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// paperGraph builds the road network of Fig. 1 in the paper (10 nodes,
// undirected edges realised as directed pairs, weights in minutes).
func paperGraph(t testing.TB) *Graph {
	b := NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode(geo.Point{Lat: float64(i) * 0.01, Lon: 0})
	}
	und := func(u, v NodeID, w float64) {
		b.AddEdge(u, v, w*500, w, 0)
		b.AddEdge(v, u, w*500, w, 0)
	}
	// Edges transcribed from Fig. 1 (0-indexed: u1 -> 0, ..., u10 -> 9).
	und(0, 1, 8)  // u1-u2
	und(0, 4, 5)  // u1-u5
	und(1, 2, 5)  // u2-u3
	und(1, 3, 6)  // u2-u4
	und(2, 6, 8)  // u3-u7
	und(3, 4, 3)  // u4-u5
	und(3, 5, 4)  // u4-u6
	und(4, 5, 7)  // u5-u6
	und(5, 8, 7)  // u6-u9
	und(6, 8, 5)  // u7-u9
	und(6, 7, 12) // u7-u8
	und(7, 8, 3)  // u8-u9
	und(7, 9, 3)  // u8-u10
	und(8, 9, 2)  // u9-u10
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// randomGraph builds a random strongly connected graph by overlaying a
// directed cycle with random extra edges.
func randomGraph(rng *rand.Rand, n, extra int) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{Lat: rng.Float64(), Lon: rng.Float64()})
	}
	for i := 0; i < n; i++ {
		w := 1 + rng.Float64()*10
		b.AddEdge(NodeID(i), NodeID((i+1)%n), w*10, w, 0)
	}
	for i := 0; i < extra; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		w := 1 + rng.Float64()*10
		b.AddEdge(u, v, w*10, w, 0)
	}
	return b.MustBuild()
}

func TestSlot(t *testing.T) {
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {3599, 0}, {3600, 1}, {12 * 3600, 12},
		{86399, 23}, {86400, 0}, {90000, 1}, {-1, 23},
	}
	for _, c := range cases {
		if got := Slot(c.t); got != c.want {
			t.Errorf("Slot(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode(geo.Point{})
	b.AddEdge(u, 5, 10, 10, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for dangling edge target")
	}

	b2 := NewBuilder()
	u2 := b2.AddNode(geo.Point{})
	v2 := b2.AddNode(geo.Point{})
	b2.AddEdge(u2, v2, 10, 10, 7)
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for unknown zone")
	}

	b3 := NewBuilder()
	u3 := b3.AddNode(geo.Point{})
	v3 := b3.AddNode(geo.Point{})
	b3.AddEdge(u3, v3, 10, 0, 0)
	if _, err := b3.Build(); err == nil {
		t.Fatal("expected error for zero traversal time")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder().MustBuild()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph has nodes/edges")
	}
	if !StronglyConnected(g) {
		t.Fatal("empty graph should count as strongly connected")
	}
	if g.MaxBeta(0) <= 0 {
		t.Fatal("MaxBeta must stay positive on empty graph")
	}
}

func TestShortestPathPaperExamples(t *testing.T) {
	g := paperGraph(t)
	// Example 1: quickest route u1 -> u2 is 8, u2 -> u7 via u3 is 13.
	if d := ShortestPath(g, 0, 1, 0); d != 8 {
		t.Fatalf("SP(u1,u2) = %v, want 8", d)
	}
	if d := ShortestPath(g, 1, 6, 0); d != 13 {
		t.Fatalf("SP(u2,u7) = %v, want 13", d)
	}
	// Example 2: v2 at u4 to restaurant u6 is 4, u6 -> u9 is 7.
	if d := ShortestPath(g, 3, 5, 0); d != 4 {
		t.Fatalf("SP(u4,u6) = %v, want 4", d)
	}
	if d := ShortestPath(g, 5, 8, 0); d != 7 {
		t.Fatalf("SP(u6,u9) = %v, want 7", d)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := paperGraph(t)
	if d := ShortestPath(g, 4, 4, 0); d != 0 {
		t.Fatalf("SP(u,u) = %v, want 0", d)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode(geo.Point{})
	v := b.AddNode(geo.Point{Lat: 1})
	w := b.AddNode(geo.Point{Lat: 2})
	b.AddEdge(u, v, 10, 10, 0)
	g := b.MustBuild()
	if d := ShortestPath(g, u, w, 0); !math.IsInf(d, 1) {
		t.Fatalf("SP to unreachable = %v, want +Inf", d)
	}
	if p := Path(g, u, w, 0); p != nil {
		t.Fatalf("Path to unreachable = %+v, want nil", p)
	}
}

func TestPathMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 200)
	for trial := 0; trial < 50; trial++ {
		from := NodeID(rng.Intn(60))
		to := NodeID(rng.Intn(60))
		d := ShortestPath(g, from, to, 0)
		p := Path(g, from, to, 0)
		if p == nil {
			t.Fatalf("path nil for connected graph %d->%d", from, to)
		}
		if math.Abs(p.TravelTime()-d) > 1e-9 {
			t.Fatalf("path time %v != distance %v", p.TravelTime(), d)
		}
		if p.Nodes[0] != from || p.Nodes[len(p.Nodes)-1] != to {
			t.Fatalf("path endpoints wrong: %v", p.Nodes)
		}
	}
}

func TestPathDepartureTimePropagates(t *testing.T) {
	// Two-edge path crossing a slot boundary must use the entry-time slot of
	// each edge.
	b := NewBuilder()
	var congested [SlotsPerDay]float64
	for i := range congested {
		congested[i] = 1
	}
	congested[1] = 2 // slot 1 doubles traversal time
	z := b.AddZone(congested)
	a := b.AddNode(geo.Point{})
	c := b.AddNode(geo.Point{Lat: 0.01})
	d := b.AddNode(geo.Point{Lat: 0.02})
	b.AddEdge(a, c, 100, 1800, z) // 30 min free flow
	b.AddEdge(c, d, 100, 1800, z)
	g := b.MustBuild()

	// Depart at 00:45: first edge in slot 0 (30 min), arrive 01:15, second
	// edge entered in slot 1 → 60 min. Total 90 min.
	p := Path(g, a, d, 2700)
	if p == nil {
		t.Fatal("nil path")
	}
	if got := p.TravelTime(); math.Abs(got-5400) > 1e-6 {
		t.Fatalf("time-dependent travel = %v s, want 5400", got)
	}
}

func TestSSSPMatchesPairwiseDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 80, 300)
	e := NewSSSP(g)
	for trial := 0; trial < 20; trial++ {
		src := NodeID(rng.Intn(80))
		view := e.FromSource(src, 0, math.Inf(1))
		e2 := NewSSSP(g)
		for to := 0; to < 80; to++ {
			want := e2.Distance(src, NodeID(to), 0)
			got := view.Get(NodeID(to))
			if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("SSSP(%d->%d) = %v, pairwise = %v", src, to, got, want)
			}
		}
	}
}

func TestSSSPBoundTruncates(t *testing.T) {
	g := paperGraph(t)
	e := NewSSSP(g)
	view := e.FromSource(0, 0, 6) // only u1(0), u5(5) are within 6 minutes... plus u2 at 8? no.
	if d := view.Get(0); d != 0 {
		t.Fatalf("source dist = %v", d)
	}
	if d := view.Get(4); d != 5 {
		t.Fatalf("u5 dist = %v, want 5", d)
	}
	if d := view.Get(6); !math.IsInf(d, 1) {
		t.Fatalf("u7 should be beyond bound, got %v", d)
	}
}

func TestSSSPEpochReuse(t *testing.T) {
	g := paperGraph(t)
	e := NewSSSP(g)
	for i := 0; i < 100; i++ {
		from := NodeID(i % g.NumNodes())
		to := NodeID((i * 3) % g.NumNodes())
		d1 := e.Distance(from, to, 0)
		d2 := ShortestPath(g, from, to, 0)
		if d1 != d2 {
			t.Fatalf("epoch-reused engine diverged: %v vs %v", d1, d2)
		}
	}
}

func TestDistCacheCorrectAndMemoised(t *testing.T) {
	g := paperGraph(t)
	c := NewDistCache(g, math.Inf(1))
	d1 := c.Dist(0, 6, 0)
	if want := ShortestPath(g, 0, 6, 0); d1 != want {
		t.Fatalf("cache dist = %v, want %v", d1, want)
	}
	_ = c.Dist(0, 8, 0) // same source+slot: must hit
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	_ = c.Dist(0, 8, 7200) // different slot (slot 2): new expansion
	_, misses = c.Stats()
	if misses != 2 {
		t.Fatalf("misses=%d, want 2 after new slot", misses)
	}
	c.Reset()
	_ = c.Dist(0, 8, 0)
	_, misses = c.Stats()
	if misses != 3 {
		t.Fatalf("misses=%d, want 3 after reset", misses)
	}
}

func TestDistCacheBound(t *testing.T) {
	g := paperGraph(t)
	c := NewDistCache(g, 6)
	if d := c.Dist(0, 6, 0); !math.IsInf(d, 1) {
		t.Fatalf("beyond-bound dist = %v, want +Inf", d)
	}
	if d := c.Dist(0, 4, 0); d != 5 {
		t.Fatalf("within-bound dist = %v, want 5", d)
	}
}

func TestStronglyConnected(t *testing.T) {
	g := paperGraph(t)
	if !StronglyConnected(g) {
		t.Fatal("paper graph (undirected) should be strongly connected")
	}
	b := NewBuilder()
	u := b.AddNode(geo.Point{})
	v := b.AddNode(geo.Point{Lat: 1})
	b.AddEdge(u, v, 10, 10, 0)
	if StronglyConnected(b.MustBuild()) {
		t.Fatal("one-way pair should not be strongly connected")
	}
}

func TestInEdgesMirrorOutEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 120)
	// Every out-edge (u,v) must appear as an in-edge at v with source u.
	for u := 0; u < g.NumNodes(); u++ {
		for _, e := range g.OutEdges(NodeID(u)) {
			found := false
			for _, re := range g.InEdges(e.To) {
				if re.To == NodeID(u) && re.BaseSec == e.BaseSec && re.LenM == e.LenM {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from reverse adjacency", u, e.To)
			}
		}
	}
}

func TestMaxBetaIsMaximum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30, 60)
	for slot := 0; slot < SlotsPerDay; slot++ {
		mx := 0.0
		for u := 0; u < g.NumNodes(); u++ {
			for _, e := range g.OutEdges(NodeID(u)) {
				if bt := g.EdgeTimeSlot(e, slot); bt > mx {
					mx = bt
				}
			}
		}
		if g.MaxBeta(float64(slot)*3600) != mx {
			t.Fatalf("MaxBeta slot %d = %v, want %v", slot, g.MaxBeta(float64(slot)*3600), mx)
		}
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 50, 150)
	e := NewSSSP(g)
	f := func(a, b, c uint8) bool {
		u := NodeID(int(a) % 50)
		v := NodeID(int(b) % 50)
		w := NodeID(int(c) % 50)
		duw := e.Distance(u, w, 0)
		duv := e.Distance(u, v, 0)
		dvw := e.Distance(v, w, 0)
		return duw <= duv+dvw+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestNode(t *testing.T) {
	g := paperGraph(t)
	// Node coordinates are (0.01*i, 0); a point near (0.031, 0) snaps to node 3.
	got := g.NearestNode(geo.Point{Lat: 0.031, Lon: 0})
	if got != 3 {
		t.Fatalf("NearestNode = %d, want 3", got)
	}
}
