package roadnet

import (
	"encoding/json"
	"fmt"
	"io"
)

// slotWeightsJSON is the wire form of a SlotWeights table: one record per
// edge with its set slots, edges sorted by (from, to) and slots ascending,
// so the same table always serialises to the same bytes — what lets tests
// pin a weight checkpoint and lets a diff of two checkpoints mean something.
type slotWeightsJSON struct {
	Version int             `json:"version"`
	Cells   int             `json:"cells"`
	Edges   []slotEdgeCells `json:"edges"`
}

type slotEdgeCells struct {
	From NodeID    `json:"from"`
	To   NodeID    `json:"to"`
	Slot []int     `json:"slot"`
	Sec  []float64 `json:"sec"`
}

// slotWeightsVersion guards the checkpoint format.
const slotWeightsVersion = 1

// MarshalJSON serialises the table deterministically (sorted edges, sorted
// slots — Range's iteration order, so serialised bytes and Range-based
// aggregations can never disagree about cell order).
func (w *SlotWeights) MarshalJSON() ([]byte, error) {
	out := slotWeightsJSON{Version: slotWeightsVersion, Cells: w.Cells()}
	w.Range(func(u, v NodeID, slot int, sec float64) {
		n := len(out.Edges)
		if n == 0 || out.Edges[n-1].From != u || out.Edges[n-1].To != v {
			out.Edges = append(out.Edges, slotEdgeCells{From: u, To: v})
			n++
		}
		out.Edges[n-1].Slot = append(out.Edges[n-1].Slot, slot)
		out.Edges[n-1].Sec = append(out.Edges[n-1].Sec, sec)
	})
	return json.Marshal(out)
}

// UnmarshalJSON loads a table serialised by MarshalJSON, validating every
// cell through Set — a checkpoint from an untrusted or corrupted source
// cannot inject NaN/Inf/non-positive weights or out-of-range slots. The
// decode is atomic: cells land in a scratch table first, so a corrupt
// checkpoint cannot half-apply into a table already holding cells.
func (w *SlotWeights) UnmarshalJSON(data []byte) error {
	var in slotWeightsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("roadnet: slot weights: %w", err)
	}
	if in.Version != slotWeightsVersion {
		return fmt.Errorf("roadnet: slot weights version %d (want %d)", in.Version, slotWeightsVersion)
	}
	tmp := NewSlotWeights()
	for _, ec := range in.Edges {
		if len(ec.Slot) != len(ec.Sec) {
			return fmt.Errorf("roadnet: slot weights edge %d->%d: %d slots vs %d values",
				ec.From, ec.To, len(ec.Slot), len(ec.Sec))
		}
		for i, s := range ec.Slot {
			if err := tmp.Set(ec.From, ec.To, s, ec.Sec[i]); err != nil {
				return err
			}
		}
	}
	if in.Cells != tmp.Cells() {
		return fmt.Errorf("roadnet: slot weights checkpoint claims %d cells, decoded %d", in.Cells, tmp.Cells())
	}
	if w.cells == nil {
		w.cells = make(map[int64]*[SlotsPerDay]float64)
	}
	tmp.Range(func(u, v NodeID, slot int, sec float64) {
		_ = w.Set(u, v, slot, sec) // validated above; Set cannot fail here
	})
	return nil
}

// WriteJSON streams the table's deterministic JSON form, newline-terminated
// (one checkpoint per line composes with JSONL logs).
func (w *SlotWeights) WriteJSON(out io.Writer) error {
	b, err := w.MarshalJSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = out.Write(b)
	return err
}

// ReadSlotWeightsJSON loads one table written by WriteJSON (or any
// MarshalJSON payload).
func ReadSlotWeightsJSON(in io.Reader) (*SlotWeights, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	w := NewSlotWeights()
	if err := w.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return w, nil
}
