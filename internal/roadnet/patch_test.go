package roadnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// patchTestGraph builds a randomized strongly-connected-ish graph with a few
// congestion zones and (crucially) one pair of parallel edges, which the
// per-(u,v) override semantics must treat as one key.
func patchTestGraph(t testing.TB, n int, rng *rand.Rand) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{Lat: 12.9 + float64(i)*1e-3, Lon: 77.5 + float64(i%7)*1e-3})
	}
	var rush [SlotsPerDay]float64
	for s := range rush {
		rush[s] = 1 + 0.1*float64(s%5)
	}
	z := b.AddZone(rush)
	for i := 0; i < n; i++ {
		u := NodeID(i)
		v := NodeID((i + 1) % n)
		zone := uint32(0)
		if i%3 == 0 {
			zone = z
		}
		b.AddEdge(u, v, 500+float64(i), 60+10*float64(i%9), zone)
		if i%4 == 0 {
			b.AddEdge(u, NodeID((i+2)%n), 900, 120+float64(i), 0)
		}
	}
	b.AddEdge(0, 1, 777, 250, z) // parallel to the 0→1 ring edge
	return b.MustBuild()
}

// requireGraphsEqual asserts two graphs serve bit-identical β for every
// (edge, slot) cell and identical per-slot maxima.
func requireGraphsEqual(t *testing.T, got, want *Graph, tag string) {
	t.Helper()
	for u := 0; u < want.NumNodes(); u++ {
		ge, we := got.OutEdges(NodeID(u)), want.OutEdges(NodeID(u))
		if len(ge) != len(we) {
			t.Fatalf("%s: node %d has %d edges, want %d", tag, u, len(ge), len(we))
		}
		for i := range we {
			for s := 0; s < SlotsPerDay; s++ {
				if g, w := got.EdgeTimeSlot(ge[i], s), want.EdgeTimeSlot(we[i], s); g != w {
					t.Fatalf("%s: edge %d->%d slot %d: patched β %v, full rebuild %v",
						tag, u, we[i].To, s, g, w)
				}
			}
		}
	}
	for s := 0; s < SlotsPerDay; s++ {
		if g, w := got.maxBeta[s], want.maxBeta[s]; g != w {
			t.Fatalf("%s: maxBeta[%d] = %v, full rebuild %v", tag, s, g, w)
		}
	}
}

// TestPatchReweightedMatchesFull evolves a weight table over many publish
// rounds — cells rising, shrinking, edges joining — and pins the patched
// publish chain bit-identical to a full Reweighted of the cumulative table
// at every round. This is the invariant that keeps the engine's golden
// traces stable when its dynamic plane publishes incrementally.
func TestPatchReweightedMatchesFull(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := patchTestGraph(t, 24, rng)

			cum := NewSlotWeights() // cumulative published table
			var patched *Graph
			for round := 0; round < 12; round++ {
				dirty := NewDirtyCells()
				delta := NewSlotWeights() // full rows of dirty edges only
				nTouch := 1 + rng.Intn(6)
				for k := 0; k < nTouch; k++ {
					u := NodeID(rng.Intn(g.NumNodes()))
					outs := g.OutEdges(u)
					if len(outs) == 0 {
						continue
					}
					v := outs[rng.Intn(len(outs))].To
					slot := rng.Intn(SlotsPerDay)
					sec := 20 + rng.Float64()*400
					if err := cum.Set(u, v, slot, sec); err != nil {
						t.Fatal(err)
					}
					dirty.Mark(u, v, slot)
				}
				// Occasionally mark a dirty edge that has no admissible
				// cells at all (the learner touched it but everything is
				// still below the sample floor).
				if round%3 == 0 {
					dirty.Mark(NodeID(rng.Intn(g.NumNodes())), NodeID(rng.Intn(g.NumNodes())), rng.Intn(SlotsPerDay))
				}
				dirty.Range(func(u, v NodeID, _ uint32) {
					if row := cum.row(u, v); row != nil {
						if err := delta.PutRow(u, v, *row); err != nil {
							t.Fatal(err)
						}
					}
				})

				full := g.Reweighted(cum)
				if patched == nil {
					patched = full
				} else {
					var err error
					patched, err = g.PatchReweighted(patched, delta, dirty)
					if err != nil {
						t.Fatal(err)
					}
				}
				requireGraphsEqual(t, patched, full, fmt.Sprintf("round %d", round))
			}

			// An empty dirty set is a valid "nothing changed" publish that
			// shares everything with its predecessor.
			same, err := g.PatchReweighted(patched, NewSlotWeights(), NewDirtyCells())
			if err != nil {
				t.Fatal(err)
			}
			requireGraphsEqual(t, same, patched, "empty dirty")
		})
	}
}

// TestPatchReweightedDenseMatchesFull runs the evolving-table equivalence
// over a dense-weight base graph (the LearnedGraph layout): the patch chain
// must stay bit-identical to a full Reweighted of the cumulative table, and
// must share the edge arrays with its predecessor (dense mode never
// re-homes zones).
func TestPatchReweightedDenseMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	zg := patchTestGraph(t, 24, rng)
	secs := make([]float32, zg.NumEdges()*SlotsPerDay)
	for i := range secs {
		secs[i] = float32(10 + rng.Intn(200))
	}
	g, err := zg.WithDenseWeights(secs)
	if err != nil {
		t.Fatal(err)
	}

	cum := NewSlotWeights()
	var patched *Graph
	for round := 0; round < 10; round++ {
		dirty := NewDirtyCells()
		delta := NewSlotWeights()
		for k := 0; k < 1+rng.Intn(5); k++ {
			u := NodeID(rng.Intn(g.NumNodes()))
			outs := g.OutEdges(u)
			if len(outs) == 0 {
				continue
			}
			v := outs[rng.Intn(len(outs))].To
			slot := rng.Intn(SlotsPerDay)
			if err := cum.Set(u, v, slot, 20+rng.Float64()*400); err != nil {
				t.Fatal(err)
			}
			dirty.Mark(u, v, slot)
		}
		dirty.Range(func(u, v NodeID, _ uint32) {
			if row := cum.row(u, v); row != nil {
				if err := delta.PutRow(u, v, *row); err != nil {
					t.Fatal(err)
				}
			}
		})
		full := g.Reweighted(cum)
		if patched == nil {
			patched = full
		} else {
			var err error
			patched, err = g.PatchReweighted(patched, delta, dirty)
			if err != nil {
				t.Fatal(err)
			}
			if !patched.DenseWeights() {
				t.Fatal("dense patch lost dense mode")
			}
			if &patched.edg[0] != &full.edg[0] {
				// Both share g's edge array? full Reweighted-dense shares
				// edg with g; the patch must share it too.
				t.Fatal("dense patch copied the edge arrays")
			}
		}
		requireGraphsEqual(t, patched, full, fmt.Sprintf("dense round %d", round))
	}
}

// TestPatchReweightedShrinkingMaximum forces the ex-maximum edge of a slot to
// shrink, which exercises the one-slot rescan path of the incremental maxima.
func TestPatchReweightedShrinkingMaximum(t *testing.T) {
	g := weightsTestGraph(t)
	w := NewSlotWeights()
	// Edge 3→0 (base 400 s) is the slot-5 maximum; blow it up, then shrink it
	// below every other edge.
	if err := w.Set(3, 0, 5, 5000); err != nil {
		t.Fatal(err)
	}
	prev := g.Reweighted(w)
	if prev.MaxBeta(5*3600) != 5000 {
		t.Fatalf("inflated maxBeta = %v, want 5000", prev.MaxBeta(5*3600))
	}

	if err := w.Set(3, 0, 5, 10); err != nil {
		t.Fatal(err)
	}
	dirty := NewDirtyCells()
	dirty.Mark(3, 0, 5)
	delta := NewSlotWeights()
	if err := delta.PutRow(3, 0, *w.row(3, 0)); err != nil {
		t.Fatal(err)
	}
	patched, err := g.PatchReweighted(prev, delta, dirty)
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsEqual(t, patched, g.Reweighted(w), "shrunk maximum")
}

func TestPatchReweightedRejectsForeignPrev(t *testing.T) {
	g := weightsTestGraph(t)
	other := weightsTestGraph(t)
	if _, err := g.PatchReweighted(other, NewSlotWeights(), NewDirtyCells()); err == nil {
		t.Fatal("patch accepted a prev graph not derived from the base")
	}
	if _, err := g.PatchReweighted(nil, NewSlotWeights(), NewDirtyCells()); err == nil {
		t.Fatal("patch accepted a nil prev graph")
	}
}

func TestDirtyCellsAccounting(t *testing.T) {
	d := NewDirtyCells()
	if d.Cells() != 0 || d.Edges() != 0 {
		t.Fatalf("fresh set: %d cells %d edges", d.Cells(), d.Edges())
	}
	d.Mark(1, 2, 5)
	d.Mark(1, 2, 5) // idempotent
	d.Mark(1, 2, 9)
	d.Mark(3, 4, 0)
	d.Mark(3, 4, -1)          // ignored
	d.Mark(3, 4, SlotsPerDay) // ignored
	if d.Cells() != 3 || d.Edges() != 2 {
		t.Fatalf("got %d cells %d edges, want 3/2", d.Cells(), d.Edges())
	}
	var order []int64
	d.Range(func(u, v NodeID, slots uint32) {
		order = append(order, EdgeKey(u, v))
		if u == 1 && slots != (1<<5|1<<9) {
			t.Fatalf("edge 1->2 mask %b", slots)
		}
	})
	if len(order) != 2 || order[0] >= order[1] {
		t.Fatalf("Range order not deterministic ascending: %v", order)
	}
}

func TestSlotWeightsPutRow(t *testing.T) {
	w := NewSlotWeights()
	var row [SlotsPerDay]float64
	row[3], row[7] = 100, 200
	if err := w.PutRow(0, 1, row); err != nil {
		t.Fatal(err)
	}
	if w.Cells() != 2 || w.Edges() != 1 {
		t.Fatalf("after put: %d cells %d edges", w.Cells(), w.Edges())
	}
	row[7] = 0
	row[9] = 50
	if err := w.PutRow(0, 1, row); err != nil {
		t.Fatal(err)
	}
	if got, ok := w.Get(0, 1, 7); ok {
		t.Fatalf("replaced row still serves slot 7: %v", got)
	}
	if got, ok := w.Get(0, 1, 9); !ok || got != 50 {
		t.Fatalf("slot 9 = %v (%v), want 50", got, ok)
	}
	if w.Cells() != 2 {
		t.Fatalf("cells = %d, want 2", w.Cells())
	}
	if err := w.PutRow(0, 1, [SlotsPerDay]float64{}); err != nil {
		t.Fatal(err)
	}
	if w.Cells() != 0 || w.Edges() != 0 {
		t.Fatalf("empty row did not clear: %d cells %d edges", w.Cells(), w.Edges())
	}
	bad := [SlotsPerDay]float64{math.NaN()}
	if err := w.PutRow(0, 1, bad); err == nil {
		t.Fatal("NaN cell accepted")
	}
}

func TestWithDenseWeights(t *testing.T) {
	g := weightsTestGraph(t)
	m := g.NumEdges()
	secs := make([]float32, m*SlotsPerDay)
	for i := range secs {
		secs[i] = float32(10 + i%97)
	}
	dg, err := g.WithDenseWeights(secs)
	if err != nil {
		t.Fatal(err)
	}
	if !dg.DenseWeights() || g.DenseWeights() {
		t.Fatal("dense flag wrong")
	}
	for u := 0; u < g.NumNodes(); u++ {
		off := g.OutEdgeOffset(NodeID(u))
		for i, e := range dg.OutEdges(NodeID(u)) {
			for s := 0; s < SlotsPerDay; s++ {
				want := float64(secs[(off+i)*SlotsPerDay+s])
				if got := dg.EdgeTimeSlot(e, s); got != want {
					t.Fatalf("dense edge %d slot %d: %v want %v", off+i, s, got, want)
				}
			}
		}
	}
	// Reverse edges carry the same dense attribution.
	for u := 0; u < g.NumNodes(); u++ {
		for _, e := range dg.InEdges(NodeID(u)) {
			if got := dg.EdgeTimeSlot(e, 0); got <= 0 {
				t.Fatalf("in-edge of %d serves β %v", u, got)
			}
		}
	}
	// maxBeta over the dense table is exact.
	for s := 0; s < SlotsPerDay; s++ {
		mx := 0.0
		for ei := 0; ei < m; ei++ {
			if v := float64(secs[ei*SlotsPerDay+s]); v > mx {
				mx = v
			}
		}
		if dg.maxBeta[s] != mx {
			t.Fatalf("dense maxBeta[%d] = %v, want %v", s, dg.maxBeta[s], mx)
		}
	}
	// Scenario scaling stays in dense mode.
	scaled := dg.ScaleSlotMultipliers(func(slot int) float64 {
		if slot == 3 {
			return 2
		}
		return 1
	})
	if !scaled.DenseWeights() {
		t.Fatal("scaled dense graph lost dense mode")
	}
	e0 := scaled.OutEdges(0)[0]
	if got, want := scaled.EdgeTimeSlot(e0, 3), dg.EdgeTimeSlot(dg.OutEdges(0)[0], 3)*2; math.Abs(got-want) > 1e-4 {
		t.Fatalf("scaled slot 3: %v want %v", got, want)
	}
	// Dense graphs can be reweighted (cells land directly in the table).
	w := NewSlotWeights()
	if err := w.Set(0, 1, 4, 999); err != nil {
		t.Fatal(err)
	}
	rw := dg.Reweighted(w)
	if got := rw.EdgeTimeSlot(rw.OutEdges(0)[0], 4); got != float64(float32(999)) {
		t.Fatalf("dense reweight serves %v, want 999", got)
	}
	// Validation: wrong length and non-finite cells are rejected.
	if _, err := g.WithDenseWeights(secs[:5]); err == nil {
		t.Fatal("short table accepted")
	}
	secs[0] = float32(math.NaN())
	if _, err := g.WithDenseWeights(secs); err == nil {
		t.Fatal("NaN cell accepted")
	}
}
