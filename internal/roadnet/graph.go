// Package roadnet implements the time-dependent road network of Definition 1:
// a weighted directed graph G = (V, E, β) whose edge weight β(e,t) is the
// traversal time of the road segment e at time-of-day t. Weights are resolved
// through 24 one-hour slots, mirroring the paper's per-slot averaging of
// Swiggy GPS pings.
//
// The package also provides the shortest-path machinery the rest of the
// pipeline is built on: a plain time-sliced Dijkstra (with path extraction,
// used when vehicles physically move), a bounded single-source engine with
// epoch-stamped scratch arrays, and a per-window distance cache that memoises
// source expansions so that marginal-cost computation performs each
// single-source search at most once.
package roadnet

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geo"
)

// NodeID identifies a node (road intersection) in a Graph.
type NodeID int32

// Invalid is the sentinel for "no node".
const Invalid NodeID = -1

// SlotsPerDay is the number of time slots used for time-dependent weights;
// one per hour, per Section V-A.
const SlotsPerDay = 24

// SecondsPerDay is the length of one simulated day.
const SecondsPerDay = 86_400.0

// Slot maps a simulation time (seconds since midnight) to an hourly slot.
func Slot(t float64) int {
	s := int(math.Floor(t/3600)) % SlotsPerDay
	if s < 0 {
		s += SlotsPerDay
	}
	return s
}

// Edge is a directed road segment as seen through the adjacency lists.
type Edge struct {
	To      NodeID
	LenM    float32 // segment length in metres
	BaseSec float32 // free-flow traversal time in seconds
	Zone    uint32  // congestion zone selecting the slot multiplier row
}

// Graph is a compact (CSR) directed road network. Construct with
// NewBuilder/Build; a built Graph is immutable and safe for concurrent reads.
type Graph struct {
	pts  []geo.Point
	off  []int32 // out-edge offsets, len = n+1
	edg  []Edge  // out-edges, len = m
	roff []int32 // in-edge offsets (reverse graph), len = n+1
	redg []Edge  // in-edges; Edge.To holds the *source* of the original edge

	// zoneMult[zone][slot] is the congestion multiplier applied to BaseSec.
	// Rows are pointers so derived graphs (Reweighted / PatchReweighted)
	// share untouched rows with their predecessor: an incremental weight
	// publish copies the row-pointer spine and replaces only dirty rows.
	zoneMult []*[SlotsPerDay]float64

	// slotSec, when non-nil, switches the graph to dense weight mode: β is
	// read directly from slotSec[edgeIndex*SlotsPerDay+slot] (each Edge.Zone
	// then holds the edge's own index) instead of BaseSec×zone multiplier.
	// This is the compact edge-indexed layout learned graphs use — one
	// float32 per (edge, slot) cell rather than a dedicated 24-float64 zone
	// row per edge.
	slotSec []float32

	// maxBeta[slot] caches max_e β(e, slot), the normaliser of Eq. 8;
	// maxBetaEdge[slot] remembers an edge index attaining it, which is what
	// lets PatchReweighted keep the maxima exact without a full rescan.
	maxBeta     [SlotsPerDay]float64
	maxBetaEdge [SlotsPerDay]int32

	// rwBase is the graph Reweighted/PatchReweighted derived this one from
	// (nil for a built or scaled graph): the prior that unset weight cells
	// fall back to, and the anchor PatchReweighted validates against.
	rwBase *Graph

	// gid lazily assigns a process-unique identity (see ID). patchPrevGID
	// and patchDirty record PatchReweighted provenance by that identity —
	// an ID rather than a *Graph so a provenance record never pins the whole
	// chain of predecessor epochs in memory.
	gid          atomic.Uint64
	patchPrevGID uint64
	patchDirty   *DirtyCells
}

// graphIDSeq mints process-unique graph identities; 0 is reserved for
// "not yet assigned".
var graphIDSeq atomic.Uint64

// ID returns a process-unique identity for this graph value, assigned
// lazily on first call. Safe for concurrent use.
func (g *Graph) ID() uint64 {
	if id := g.gid.Load(); id != 0 {
		return id
	}
	g.gid.CompareAndSwap(0, graphIDSeq.Add(1))
	return g.gid.Load()
}

// PatchProvenance reports how this graph was derived when it came from
// PatchReweighted: the ID() of the epoch graph it patched and the dirty
// set the patch consumed. ok is false for built, scaled or fully
// reweighted graphs. Incremental router customization (the CCH backend)
// keys on this to re-customize only the touched cells — the routing
// analogue of the patch itself.
func (g *Graph) PatchProvenance() (prevID uint64, dirty *DirtyCells, ok bool) {
	if g.patchPrevGID == 0 {
		return 0, nil, false
	}
	return g.patchPrevGID, g.patchDirty, true
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edg) }

// Point returns the coordinate of node u.
func (g *Graph) Point(u NodeID) geo.Point { return g.pts[u] }

// OutEdges returns the out-adjacency slice of u. The slice aliases internal
// storage and must not be mutated.
func (g *Graph) OutEdges(u NodeID) []Edge {
	return g.edg[g.off[u]:g.off[u+1]]
}

// InEdges returns the in-adjacency of u; each Edge.To is the source node of
// an edge pointing at u, with that edge's length/time attributes.
func (g *Graph) InEdges(u NodeID) []Edge {
	return g.redg[g.roff[u]:g.roff[u+1]]
}

// EdgeTime returns β(e,t) in seconds for edge e entered at time t.
func (g *Graph) EdgeTime(e Edge, t float64) float64 {
	return g.EdgeTimeSlot(e, Slot(t))
}

// EdgeTimeSlot returns β(e,·) for an explicit slot.
func (g *Graph) EdgeTimeSlot(e Edge, slot int) float64 {
	if g.slotSec != nil {
		return float64(g.slotSec[int(e.Zone)*SlotsPerDay+slot])
	}
	return float64(e.BaseSec) * g.zoneMult[e.Zone][slot]
}

// MaxBeta returns max over all edges of β(e,t) for the slot containing t,
// the normalising denominator of the vehicle-sensitive weight (Eq. 8).
func (g *Graph) MaxBeta(t float64) float64 { return g.maxBeta[Slot(t)] }

// NumZones returns the number of congestion zones.
func (g *Graph) NumZones() int { return len(g.zoneMult) }

// ZoneMultiplier returns the congestion multiplier for a zone and slot.
func (g *Graph) ZoneMultiplier(zone uint32, slot int) float64 {
	return g.zoneMult[zone][slot]
}

// OutEdgeOffset returns the index of u's first out-edge in the graph's edge
// numbering: the edge OutEdges(u)[i] has index OutEdgeOffset(u)+i. Edge
// indices are stable for the life of the graph and shared by every derived
// graph (Reweighted, dense learned graphs), which is what dense edge-indexed
// tables key on.
func (g *Graph) OutEdgeOffset(u NodeID) int { return int(g.off[u]) }

// EdgeIndexOf returns the index of the first edge u→v (parallel edges share
// their leading index when aggregating per (u, v) pair), or -1 when no such
// edge exists.
func (g *Graph) EdgeIndexOf(u, v NodeID) int {
	if u < 0 || int(u) >= len(g.pts) {
		return -1
	}
	base := int(g.off[u])
	for i, e := range g.edg[g.off[u]:g.off[u+1]] {
		if e.To == v {
			return base + i
		}
	}
	return -1
}

// recomputeMaxBeta rebuilds the per-slot β maxima (and the edge attaining
// each) with one full scan.
func (g *Graph) recomputeMaxBeta() {
	for slot := 0; slot < SlotsPerDay; slot++ {
		g.recomputeMaxBetaSlot(slot)
	}
}

func (g *Graph) recomputeMaxBetaSlot(slot int) {
	mx, arg := 0.0, int32(-1)
	for i := range g.edg {
		if bt := g.EdgeTimeSlot(g.edg[i], slot); bt > mx {
			mx, arg = bt, int32(i)
		}
	}
	if mx == 0 {
		mx = 1 // empty graph; avoid division by zero in Eq. 8
	}
	g.maxBeta[slot] = mx
	g.maxBetaEdge[slot] = arg
}

// NearestNode returns the node closest (haversine) to p. The paper
// approximates off-network vehicle positions to the closest road node; this
// is that operation. Linear scan — callers that need many lookups should use
// the workload package's grid index instead.
func (g *Graph) NearestNode(p geo.Point) NodeID {
	best := Invalid
	bestD := math.Inf(1)
	for i := range g.pts {
		if d := geo.Haversine(p, g.pts[i]); d < bestD {
			bestD = d
			best = NodeID(i)
		}
	}
	return best
}

// Builder accumulates nodes and edges and produces an immutable Graph.
type Builder struct {
	pts   []geo.Point
	from  []NodeID
	edges []Edge
	zones [][SlotsPerDay]float64
}

// NewBuilder returns a Builder with a single identity congestion zone
// (multiplier 1.0 in every slot); add more with AddZone.
func NewBuilder() *Builder {
	b := &Builder{}
	var ident [SlotsPerDay]float64
	for i := range ident {
		ident[i] = 1
	}
	b.zones = append(b.zones, ident)
	return b
}

// AddNode appends a node and returns its id.
func (b *Builder) AddNode(p geo.Point) NodeID {
	b.pts = append(b.pts, p)
	return NodeID(len(b.pts) - 1)
}

// AddZone registers a congestion-multiplier row and returns its zone id.
// Zone ids are 32-bit so per-edge congestion profiles (one zone per edge, as
// the GPS speed learner produces) fit on city-scale graphs.
func (b *Builder) AddZone(mult [SlotsPerDay]float64) uint32 {
	b.zones = append(b.zones, mult)
	return uint32(len(b.zones) - 1)
}

// AddEdge appends a directed edge from u to v.
func (b *Builder) AddEdge(u, v NodeID, lenM, baseSec float64, zone uint32) {
	b.from = append(b.from, u)
	b.edges = append(b.edges, Edge{To: v, LenM: float32(lenM), BaseSec: float32(baseSec), Zone: zone})
}

// Build finalises the graph. It validates ids and zone references and
// computes the CSR layout plus per-slot β maxima.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.pts)
	m := len(b.edges)
	for i, u := range b.from {
		v := b.edges[i].To
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("roadnet: edge %d references invalid node (%d -> %d, n=%d)", i, u, v, n)
		}
		if int(b.edges[i].Zone) >= len(b.zones) {
			return nil, fmt.Errorf("roadnet: edge %d references unknown zone %d", i, b.edges[i].Zone)
		}
		if b.edges[i].BaseSec <= 0 {
			return nil, fmt.Errorf("roadnet: edge %d has non-positive traversal time", i)
		}
	}

	g := &Graph{
		pts:      b.pts,
		zoneMult: make([]*[SlotsPerDay]float64, len(b.zones)),
	}
	for z := range b.zones {
		row := b.zones[z]
		g.zoneMult[z] = &row
	}

	// Forward CSR.
	g.off = make([]int32, n+1)
	for _, u := range b.from {
		g.off[u+1]++
	}
	for i := 0; i < n; i++ {
		g.off[i+1] += g.off[i]
	}
	g.edg = make([]Edge, m)
	cursor := make([]int32, n)
	for i, u := range b.from {
		g.edg[g.off[u]+cursor[u]] = b.edges[i]
		cursor[u]++
	}

	// Reverse CSR.
	g.roff = make([]int32, n+1)
	for i := range b.edges {
		g.roff[b.edges[i].To+1]++
	}
	for i := 0; i < n; i++ {
		g.roff[i+1] += g.roff[i]
	}
	g.redg = make([]Edge, m)
	rcursor := make([]int32, n)
	for i, u := range b.from {
		e := b.edges[i]
		v := e.To
		rev := e
		rev.To = u
		g.redg[g.roff[v]+rcursor[v]] = rev
		rcursor[v]++
	}

	g.recomputeMaxBeta()
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// input is known valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
