package roadnet

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Customizable contraction hierarchies (CCH) split shortest-path work into
// three phases with sharply different costs:
//
//   - preprocess: metric-independent. Contract the road topology in
//     min-degree order, record the chordal supergraph's up-arcs and the
//     elimination tree. Runs once per graph topology — weight epochs never
//     touch it.
//   - customize: metric-dependent. Resolve each up-arc's U (lower→upper) and
//     D (upper→lower) travel time for one weight slot by relaxing lower
//     triangles in contraction order. Runs per (epoch, slot), and — the
//     point of this backend — incrementally: when an epoch was produced by
//     Graph.PatchReweighted, only arcs reachable from the dirty cells are
//     re-resolved, so steady-state publish cost scales with |dirty|, not
//     |E|. The routing analogue of the patch itself.
//   - query: two elimination-tree chain walks (no priority queue, no
//     termination heuristics). TravelMany shares the forward walk across
//     the whole target set.
//
// Determinism: customization is a pure min-fold over triangle relaxations;
// the closed-form value of each arc does not depend on relaxation order, so
// the incremental path lands bitwise-identical arrays to a full customize.

// cchPrep is the metric-independent preprocessing product: immutable after
// construction, shared by every metric built over the same topology.
type cchPrep struct {
	n    int
	rank []int32 // contraction position per node
	// Up-arc CSR keyed by lower endpoint; heads sorted by node id so
	// findArc can binary-search.
	upOff   []int32
	upHead  []NodeID
	arcFrom []NodeID // lower endpoint per arc
	// Down CSR: for each node, the arcs it is the *upper* endpoint of.
	downOff  []int32
	downArcs []int32
	// parent is the elimination tree: the minimum-rank up-neighbour.
	parent []NodeID
	// arcSeq lists arcs ascending by (rank[lower], rank[upper]) — the order
	// in which triangle dependencies resolve.
	arcSeq []int32
	// Original-edge inputs per arc (CSR over arc index): baseU holds edge
	// indices lower→upper, baseD upper→lower.
	baseUOff, baseU []int32
	baseDOff, baseD []int32

	scratch sync.Pool // *cchScratch query state
}

type cchScratch struct {
	fdist, bdist   []float64
	fstamp, bstamp []uint32
	// fwdEpoch stamps the forward chain (relaxed once per TravelMany and
	// shared by every target); epoch stamps each backward walk.
	fwdEpoch, epoch uint32
}

// cchSlotMetric holds one slot's customized arc weights.
type cchSlotMetric struct {
	up, down []float64
}

// cchStats is shared across every metric a CCHFactory produces, so
// customization counts survive epoch swaps.
type cchStats struct {
	full, incremental atomic.Int64
}

// CCHMetric binds prep to one weight epoch's graph. Slots customize lazily
// (first query builds, under a per-slot mutex) and are immutable once
// published through the atomic pointer.
type CCHMetric struct {
	prep  *cchPrep
	g     *Graph
	stats *cchStats
	slots [SlotsPerDay]atomic.Pointer[cchSlotMetric]
	mu    [SlotsPerDay]sync.Mutex
}

// newCCHPrep contracts g's undirected skeleton in min-degree order and
// assembles the chordal up-arc structure.
func newCCHPrep(g *Graph) *cchPrep {
	n := g.NumNodes()
	adj := make([]map[NodeID]struct{}, n)
	for u := 0; u < n; u++ {
		adj[u] = make(map[NodeID]struct{})
	}
	for u := NodeID(0); int(u) < n; u++ {
		for _, e := range g.OutEdges(u) {
			if e.To != u {
				adj[u][e.To] = struct{}{}
				adj[e.To][u] = struct{}{}
			}
		}
	}

	// Lazy min-degree heap: entries carry the degree observed at push time
	// and are dropped when stale.
	type hent struct {
		deg  int32
		node NodeID
	}
	h := make([]hent, 0, n)
	less := func(a, b hent) bool {
		if a.deg != b.deg {
			return a.deg < b.deg
		}
		return a.node < b.node
	}
	push := func(e hent) {
		h = append(h, e)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	pop := func() hent {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			c := 2*i + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && less(h[c+1], h[c]) {
				c++
			}
			if !less(h[c], h[i]) {
				break
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
		return top
	}
	for u := 0; u < n; u++ {
		push(hent{deg: int32(len(adj[u])), node: NodeID(u)})
	}

	rank := make([]int32, n)
	contracted := make([]bool, n)
	upNbrs := make([][]NodeID, n)
	next := int32(0)
	var ns []NodeID
	for len(h) > 0 {
		e := pop()
		v := e.node
		if contracted[v] || int(e.deg) != len(adj[v]) {
			if !contracted[v] {
				push(hent{deg: int32(len(adj[v])), node: v})
			}
			continue
		}
		contracted[v] = true
		rank[v] = next
		next++
		ns = ns[:0]
		for u := range adj[v] {
			ns = append(ns, u)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		upNbrs[v] = append([]NodeID(nil), ns...)
		// Elimination fill: v's remaining neighbours become a clique.
		for i, a := range ns {
			delete(adj[a], v)
			for _, b := range ns[i+1:] {
				if _, ok := adj[a][b]; !ok {
					adj[a][b] = struct{}{}
					adj[b][a] = struct{}{}
				}
			}
		}
	}

	p := &cchPrep{n: n, rank: rank}
	p.upOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		p.upOff[u+1] = p.upOff[u] + int32(len(upNbrs[u]))
	}
	nArcs := int(p.upOff[n])
	p.upHead = make([]NodeID, 0, nArcs)
	p.arcFrom = make([]NodeID, 0, nArcs)
	p.parent = make([]NodeID, n)
	for u := 0; u < n; u++ {
		p.parent[u] = Invalid
		best := int32(math.MaxInt32)
		for _, w := range upNbrs[u] {
			p.upHead = append(p.upHead, w)
			p.arcFrom = append(p.arcFrom, NodeID(u))
			if rank[w] < best {
				best = rank[w]
				p.parent[u] = w
			}
		}
	}

	// Down CSR (arcs grouped by upper endpoint).
	p.downOff = make([]int32, n+1)
	for _, w := range p.upHead {
		p.downOff[w+1]++
	}
	for u := 0; u < n; u++ {
		p.downOff[u+1] += p.downOff[u]
	}
	p.downArcs = make([]int32, nArcs)
	fill := append([]int32(nil), p.downOff[:n]...)
	for a := 0; a < nArcs; a++ {
		w := p.upHead[a]
		p.downArcs[fill[w]] = int32(a)
		fill[w]++
	}

	// Arc processing order: ascending (rank[lower], rank[upper]) so every
	// lower-triangle dependency resolves first.
	p.arcSeq = make([]int32, nArcs)
	for a := range p.arcSeq {
		p.arcSeq[a] = int32(a)
	}
	sort.Slice(p.arcSeq, func(i, j int) bool {
		return p.arcKey(p.arcSeq[i]) < p.arcKey(p.arcSeq[j])
	})

	// Original-edge inputs per arc.
	cntU := make([]int32, nArcs)
	cntD := make([]int32, nArcs)
	for u := NodeID(0); int(u) < n; u++ {
		for _, e := range g.OutEdges(u) {
			if e.To == u {
				continue
			}
			if rank[u] < rank[e.To] {
				cntU[p.findArc(u, e.To)]++
			} else {
				cntD[p.findArc(e.To, u)]++
			}
		}
	}
	p.baseUOff = make([]int32, nArcs+1)
	p.baseDOff = make([]int32, nArcs+1)
	for a := 0; a < nArcs; a++ {
		p.baseUOff[a+1] = p.baseUOff[a] + cntU[a]
		p.baseDOff[a+1] = p.baseDOff[a] + cntD[a]
	}
	p.baseU = make([]int32, p.baseUOff[nArcs])
	p.baseD = make([]int32, p.baseDOff[nArcs])
	fu := append([]int32(nil), p.baseUOff[:nArcs]...)
	fd := append([]int32(nil), p.baseDOff[:nArcs]...)
	for u := NodeID(0); int(u) < n; u++ {
		base := g.OutEdgeOffset(u)
		for i, e := range g.OutEdges(u) {
			if e.To == u {
				continue
			}
			ei := int32(base + i)
			if rank[u] < rank[e.To] {
				a := p.findArc(u, e.To)
				p.baseU[fu[a]] = ei
				fu[a]++
			} else {
				a := p.findArc(e.To, u)
				p.baseD[fd[a]] = ei
				fd[a]++
			}
		}
	}

	p.scratch.New = func() any {
		return &cchScratch{
			fdist:  make([]float64, n),
			bdist:  make([]float64, n),
			fstamp: make([]uint32, n),
			bstamp: make([]uint32, n),
		}
	}
	return p
}

// arcKey orders arcs by (rank[lower], rank[upper]); triangle dependencies of
// an arc always carry strictly smaller keys.
func (p *cchPrep) arcKey(a int32) uint64 {
	return uint64(uint32(p.rank[p.arcFrom[a]]))<<32 | uint64(uint32(p.rank[p.upHead[a]]))
}

// findArc returns the arc index for (lower, upper), or -1. Heads are
// id-sorted per lower endpoint.
func (p *cchPrep) findArc(lower, upper NodeID) int32 {
	lo, hi := p.upOff[lower], p.upOff[lower+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if p.upHead[mid] < upper {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < p.upOff[lower+1] && p.upHead[lo] == upper {
		return lo
	}
	return -1
}

func newCCHMetric(prep *cchPrep, g *Graph, stats *cchStats) *CCHMetric {
	return &CCHMetric{prep: prep, g: g, stats: stats}
}

// slot returns slot s's customized arc weights, building them on first use.
func (m *CCHMetric) slot(s int) *cchSlotMetric {
	if sm := m.slots[s].Load(); sm != nil {
		return sm
	}
	m.mu[s].Lock()
	defer m.mu[s].Unlock()
	if sm := m.slots[s].Load(); sm != nil {
		return sm
	}
	sm := m.customizeFull(s)
	m.slots[s].Store(sm)
	return sm
}

// baseArc resolves an arc's original-edge minima for one slot.
func (m *CCHMetric) baseArc(a int32, s int) (u, d float64) {
	p := m.prep
	u, d = math.Inf(1), math.Inf(1)
	for _, ei := range p.baseU[p.baseUOff[a]:p.baseUOff[a+1]] {
		if w := m.g.EdgeTimeSlot(m.g.edg[ei], s); w < u {
			u = w
		}
	}
	for _, ei := range p.baseD[p.baseDOff[a]:p.baseDOff[a+1]] {
		if w := m.g.EdgeTimeSlot(m.g.edg[ei], s); w < d {
			d = w
		}
	}
	return u, d
}

// recomputeArc resolves arc a=(x,y) from its original edges and lower
// triangles (z,x),(z,y). Every dependency carries a smaller arcKey, so both
// the full in-order sweep and the key-ordered incremental pass see final
// values — and since the result is a closed-form min over the same operand
// set either way, both land the exact same floats.
func (m *CCHMetric) recomputeArc(sm *cchSlotMetric, a int32, s int) (up, down float64) {
	p := m.prep
	x, y := p.arcFrom[a], p.upHead[a]
	up, down = m.baseArc(a, s)
	for _, a1 := range p.downArcs[p.downOff[x]:p.downOff[x+1]] {
		z := p.arcFrom[a1]
		a2 := p.findArc(z, y)
		if a2 < 0 {
			continue
		}
		// x→z→y and y→z→x through the lower triangle.
		if v := sm.down[a1] + sm.up[a2]; v < up {
			up = v
		}
		if v := sm.down[a2] + sm.up[a1]; v < down {
			down = v
		}
	}
	return up, down
}

// customizeFull resolves every arc for one slot in dependency order.
func (m *CCHMetric) customizeFull(s int) *cchSlotMetric {
	p := m.prep
	nArcs := len(p.upHead)
	sm := &cchSlotMetric{
		up:   make([]float64, nArcs),
		down: make([]float64, nArcs),
	}
	for _, a := range p.arcSeq {
		sm.up[a], sm.down[a] = m.recomputeArc(sm, a, s)
	}
	if m.stats != nil {
		m.stats.full.Add(1)
	}
	return sm
}

// customizeIncremental clones prev's arrays and re-resolves only the seeded
// arcs plus whatever their changes reach. Arcs drain from a min-heap keyed
// by arcKey; a change to arc (p,q) can only affect arcs between p's other
// up-neighbours and q (which exist by the clique property) — all with
// strictly larger keys, so the pass terminates and respects dependencies.
func (m *CCHMetric) customizeIncremental(prev *cchSlotMetric, seeds []int32, s int) *cchSlotMetric {
	p := m.prep
	sm := &cchSlotMetric{
		up:   append([]float64(nil), prev.up...),
		down: append([]float64(nil), prev.down...),
	}
	queued := make(map[int32]bool, len(seeds)*4)
	h := make([]int32, 0, len(seeds)*4)
	less := func(a, b int32) bool { return p.arcKey(a) < p.arcKey(b) }
	push := func(a int32) {
		if queued[a] {
			return
		}
		queued[a] = true
		h = append(h, a)
		for i := len(h) - 1; i > 0; {
			pi := (i - 1) / 2
			if !less(h[i], h[pi]) {
				break
			}
			h[i], h[pi] = h[pi], h[i]
			i = pi
		}
	}
	pop := func() int32 {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			c := 2*i + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && less(h[c+1], h[c]) {
				c++
			}
			if !less(h[c], h[i]) {
				break
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
		return top
	}
	for _, a := range seeds {
		push(a)
	}
	for len(h) > 0 {
		a := pop()
		queued[a] = false
		ou, od := sm.up[a], sm.down[a]
		nu, nd := m.recomputeArc(sm, a, s)
		if nu == ou && nd == od {
			continue
		}
		sm.up[a], sm.down[a] = nu, nd
		lo, q := p.arcFrom[a], p.upHead[a]
		for _, w := range p.upHead[p.upOff[lo]:p.upOff[lo+1]] {
			if w == q {
				continue
			}
			var dep int32
			if p.rank[q] < p.rank[w] {
				dep = p.findArc(q, w)
			} else {
				dep = p.findArc(w, q)
			}
			if dep >= 0 {
				push(dep)
			}
		}
	}
	if m.stats != nil {
		m.stats.incremental.Add(1)
	}
	return sm
}

// patched derives the metric for a PatchReweighted successor epoch: built
// slots with dirty cells re-customize incrementally, built slots the patch
// never touched share their arrays outright, and unbuilt slots stay lazy.
func (m *CCHMetric) patched(g *Graph, dirty *DirtyCells) *CCHMetric {
	nm := newCCHMetric(m.prep, g, m.stats)
	// Seed arcs per slot from the dirty (edge, slot) cells.
	p := m.prep
	var seeds [SlotsPerDay][]int32
	dirty.Range(func(u, v NodeID, slots uint32) {
		if u == v {
			return
		}
		var a int32
		if p.rank[u] < p.rank[v] {
			a = p.findArc(u, v)
		} else {
			a = p.findArc(v, u)
		}
		if a < 0 {
			return
		}
		for s := 0; s < SlotsPerDay; s++ {
			if slots&(1<<uint(s)) != 0 {
				seeds[s] = append(seeds[s], a)
			}
		}
	})
	for s := 0; s < SlotsPerDay; s++ {
		prev := m.slots[s].Load()
		if prev == nil {
			continue // never customized: first query full-builds off g
		}
		if len(seeds[s]) == 0 {
			nm.slots[s].Store(prev) // untouched slot: weights identical
			continue
		}
		nm.slots[s].Store(nm.customizeIncremental(prev, seeds[s], s))
	}
	return nm
}

// travel answers one (s, t) pair given an already-relaxed forward chain for
// the source (fstamp marks chain nodes reached in sc.epoch).
func (m *CCHMetric) travel(sc *cchScratch, sm *cchSlotMetric, from, to NodeID) float64 {
	if from == to {
		return 0
	}
	p := m.prep
	sc.epoch++
	ep := sc.epoch
	sc.bdist[to] = 0
	sc.bstamp[to] = ep
	best := math.Inf(1)
	for x := to; x != Invalid; x = p.parent[x] {
		if sc.bstamp[x] != ep {
			continue // unreachable so far; lower chain nodes all processed
		}
		dx := sc.bdist[x]
		if sc.fstamp[x] == sc.fwdEpoch {
			if v := sc.fdist[x] + dx; v < best {
				best = v
			}
		}
		for a := p.upOff[x]; a < p.upOff[x+1]; a++ {
			nd := dx + sm.down[a]
			if math.IsInf(nd, 1) {
				continue
			}
			y := p.upHead[a]
			if sc.bstamp[y] != ep || nd < sc.bdist[y] {
				sc.bdist[y] = nd
				sc.bstamp[y] = ep
			}
		}
	}
	return best
}

// forward relaxes the source's elimination-tree chain into fdist/fstamp.
func (m *CCHMetric) forward(sc *cchScratch, sm *cchSlotMetric, from NodeID) {
	p := m.prep
	sc.fwdEpoch++
	ep := sc.fwdEpoch
	sc.fdist[from] = 0
	sc.fstamp[from] = ep
	for x := from; x != Invalid; x = p.parent[x] {
		if sc.fstamp[x] != ep {
			continue
		}
		dx := sc.fdist[x]
		for a := p.upOff[x]; a < p.upOff[x+1]; a++ {
			nd := dx + sm.up[a]
			if math.IsInf(nd, 1) {
				continue
			}
			y := p.upHead[a]
			if sc.fstamp[y] != ep || nd < sc.fdist[y] {
				sc.fdist[y] = nd
				sc.fstamp[y] = ep
			}
		}
	}
}

// Travel answers one time-dependent shortest-path query.
func (m *CCHMetric) Travel(from, to NodeID, t float64) float64 {
	if from == to {
		return 0
	}
	sm := m.slot(Slot(t))
	sc := m.prep.scratch.Get().(*cchScratch)
	m.forward(sc, sm, from)
	d := m.travel(sc, sm, from, to)
	m.prep.scratch.Put(sc)
	return d
}

// TravelMany shares one forward chain relaxation across the target set.
func (m *CCHMetric) TravelMany(from NodeID, targets []NodeID, t float64) []float64 {
	out := make([]float64, len(targets))
	if len(targets) == 0 {
		return out
	}
	sm := m.slot(Slot(t))
	sc := m.prep.scratch.Get().(*cchScratch)
	m.forward(sc, sm, from)
	for i, to := range targets {
		out[i] = m.travel(sc, sm, from, to)
	}
	m.prep.scratch.Put(sc)
	return out
}

// Stats reports customization counts accumulated by the owning factory.
func (m *CCHMetric) Stats() MetricStats {
	if m.stats == nil {
		return MetricStats{}
	}
	return MetricStats{
		FullCustomizations:        m.stats.full.Load(),
		IncrementalCustomizations: m.stats.incremental.Load(),
	}
}

// CCHRouter adapts a CCHMetric to the Router interfaces. Safe for concurrent
// use: query scratch is pooled and slot builds are mutex-guarded, so one
// router (and one metric) can serve every engine shard.
type CCHRouter struct {
	m *CCHMetric
}

// Travel implements Router.
func (r *CCHRouter) Travel(from, to NodeID, t float64) float64 {
	return r.m.Travel(from, to, t)
}

// TravelMany implements ManyRouter.
func (r *CCHRouter) TravelMany(from NodeID, targets []NodeID, t float64) []float64 {
	return r.m.TravelMany(from, targets, t)
}

// RouterKind implements Kinded.
func (r *CCHRouter) RouterKind() string { return "cch" }

// Reset implements Resettable as a no-op: slot metrics are keyed by slot
// already, so slot boundaries need no invalidation.
func (r *CCHRouter) Reset() {}

// MetricStats implements MetricStatser.
func (r *CCHRouter) MetricStats() MetricStats { return r.m.Stats() }

// CCHFactory builds CCH routers across weight epochs: preprocessing is done
// once per topology, and each NewRouter call customizes the new epoch's
// metric — incrementally when the epoch's PatchProvenance chains off the
// metric the factory built last, from scratch otherwise. Hand its NewRouter
// to engine.Config so every SwapRouter publish flows through it.
type CCHFactory struct {
	mu    sync.Mutex
	prep  *cchPrep
	cur   *CCHMetric
	curID uint64
	stats cchStats
}

// NewCCHFactory returns an empty factory; preprocessing happens on the
// first NewRouter call.
func NewCCHFactory() *CCHFactory { return &CCHFactory{} }

// NewRouter returns a Router over g, reusing preprocessing and — when g was
// patched off the previous epoch — prior customization work. Routers for
// the same graph share one metric, so the engine's per-shard SwapRouters
// publishing the same snapshot customize once, not once per shard.
func (f *CCHFactory) NewRouter(g *Graph) Router {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prep == nil {
		f.prep = newCCHPrep(g)
	}
	id := g.ID()
	if f.cur != nil && f.curID == id {
		return &CCHRouter{m: f.cur}
	}
	var m *CCHMetric
	if prevID, dirty, ok := g.PatchProvenance(); ok && f.cur != nil && f.curID == prevID {
		m = f.cur.patched(g, dirty)
	} else {
		m = newCCHMetric(f.prep, g, &f.stats)
	}
	f.cur = m
	f.curID = id
	return &CCHRouter{m: m}
}

// Interface conformance.
var (
	_ Router        = (*CCHRouter)(nil)
	_ ManyRouter    = (*CCHRouter)(nil)
	_ Kinded        = (*CCHRouter)(nil)
	_ Resettable    = (*CCHRouter)(nil)
	_ MetricStatser = (*CCHRouter)(nil)
)
