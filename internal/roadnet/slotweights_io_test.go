package roadnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestSlotWeightsJSONRoundTrip(t *testing.T) {
	w := NewSlotWeights()
	// Include the midnight-rollover slots explicitly: cells written from a
	// multi-day replay clock (t ≥ 86400) land in slot 23 and slot 0 and must
	// survive the checkpoint unchanged.
	if err := w.Set(3, 7, Slot(86390), 55.5); err != nil { // 23:59:50 → slot 23
		t.Fatal(err)
	}
	if err := w.Set(3, 7, Slot(86410), 44.25); err != nil { // day 2, 00:00:10 → slot 0
		t.Fatal(err)
	}
	if err := w.Set(1, 2, 12, 123.0); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(1<<20, 9, 5, 9.75); err != nil { // large node ids pack fine
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSlotWeightsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells() != w.Cells() || got.Edges() != w.Edges() {
		t.Fatalf("round trip: %d/%d cells/edges, want %d/%d", got.Cells(), got.Edges(), w.Cells(), w.Edges())
	}
	for _, tc := range []struct {
		u, v NodeID
		slot int
		sec  float64
	}{{3, 7, 23, 55.5}, {3, 7, 0, 44.25}, {1, 2, 12, 123.0}, {1 << 20, 9, 5, 9.75}} {
		sec, ok := got.Get(tc.u, tc.v, tc.slot)
		if !ok || sec != tc.sec {
			t.Fatalf("cell %d->%d slot %d: got %v/%v, want %v", tc.u, tc.v, tc.slot, sec, ok, tc.sec)
		}
	}

	// Determinism: two exports of the same table are byte-identical.
	var buf2 bytes.Buffer
	if err := w.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	again, err := got.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if b1 := buf2.String(); b1 != string(again)+"\n" {
		t.Fatalf("export not deterministic:\n%s\nvs\n%s", b1, again)
	}
}

func TestSlotWeightsJSONRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewSlotWeights().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSlotWeightsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells() != 0 || got.Edges() != 0 {
		t.Fatalf("empty round trip: %d cells %d edges", got.Cells(), got.Edges())
	}
}

func TestSlotWeightsJSONRejectsBadPayloads(t *testing.T) {
	for name, payload := range map[string]string{
		"not json":       `{`,
		"wrong version":  `{"version":99,"cells":0,"edges":null}`,
		"nan weight":     `{"version":1,"cells":1,"edges":[{"from":1,"to":2,"slot":[3],"sec":[null]}]}`,
		"negative":       `{"version":1,"cells":1,"edges":[{"from":1,"to":2,"slot":[3],"sec":[-5]}]}`,
		"zero weight":    `{"version":1,"cells":1,"edges":[{"from":1,"to":2,"slot":[3],"sec":[0]}]}`,
		"slot 24":        `{"version":1,"cells":1,"edges":[{"from":1,"to":2,"slot":[24],"sec":[9]}]}`,
		"negative slot":  `{"version":1,"cells":1,"edges":[{"from":1,"to":2,"slot":[-1],"sec":[9]}]}`,
		"length mism":    `{"version":1,"cells":1,"edges":[{"from":1,"to":2,"slot":[3,4],"sec":[9]}]}`,
		"cell count lie": `{"version":1,"cells":7,"edges":[{"from":1,"to":2,"slot":[3],"sec":[9]}]}`,
	} {
		if _, err := ReadSlotWeightsJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSlotWeightsMidnightRolloverSlots pins the slot arithmetic multi-day
// replays rely on: a continuous clock crossing midnight maps into slot 23
// then slot 0 (never slot 24), for any number of days out.
func TestSlotWeightsMidnightRolloverSlots(t *testing.T) {
	for day := 0; day < 4; day++ {
		base := float64(day) * SecondsPerDay
		if s := Slot(base + 86399.5); s != 23 {
			t.Fatalf("day %d 23:59:59.5 → slot %d, want 23", day, s)
		}
		if s := Slot(base + SecondsPerDay); s != 0 {
			t.Fatalf("day %d midnight → slot %d, want 0", day, s)
		}
		if s := Slot(base + SecondsPerDay + 1); s != 0 {
			t.Fatalf("day %d 00:00:01 → slot %d, want 0", day, s)
		}
	}
	w := NewSlotWeights()
	if err := w.Set(0, 1, SlotsPerDay, 10); err == nil {
		t.Fatal("slot 24 accepted — 23→0 rollover must wrap, not extend")
	}
	if err := w.Set(0, 1, Slot(5*SecondsPerDay+3600*23.5), 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Get(0, 1, 23); !ok {
		t.Fatal("multi-day late-night cell not in slot 23")
	}
}
