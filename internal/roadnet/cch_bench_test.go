package roadnet

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkCCHCustomize measures metric customization on a CityB-sized
// topology: a full arc sweep versus the incremental pass seeded from small
// dirty-cell sets — the steady-state publish cost after a learner epoch. The
// incremental arm includes the O(arcs) array clone the real publish pays,
// so the ratio reported here is the end-to-end one.
func BenchmarkCCHCustomize(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 784, 2300) // CityB density: 784 nodes, ~3k edges
	prep := newCCHPrep(g)
	m := newCCHMetric(prep, g, nil)
	prev := m.slot(0)

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.customizeFull(0)
		}
	})
	for _, nDirty := range []int{8, 32} {
		// Seed from nDirty random original edges, mapped to their arcs the
		// same way patched() maps dirty cells.
		seeds := make([]int32, 0, nDirty)
		seen := make(map[int32]bool, nDirty)
		for len(seeds) < nDirty {
			u := NodeID(rng.Intn(g.NumNodes()))
			outs := g.OutEdges(u)
			if len(outs) == 0 {
				continue
			}
			v := outs[rng.Intn(len(outs))].To
			if u == v {
				continue
			}
			var a int32
			if prep.rank[u] < prep.rank[v] {
				a = prep.findArc(u, v)
			} else {
				a = prep.findArc(v, u)
			}
			if a < 0 || seen[a] {
				continue
			}
			seen[a] = true
			seeds = append(seeds, a)
		}
		b.Run(fmt.Sprintf("incremental/dirty=%d", nDirty), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.customizeIncremental(prev, seeds, 0)
			}
		})
	}
}
