package roadnet

import (
	"fmt"
	"sort"
)

// DirtyCells is a sparse set of (edge, slot) weight cells touched since the
// last publish — the incremental-publish currency between the GPS speed
// learner and PatchReweighted. Each edge carries a 24-bit slot mask, so the
// whole set costs one map entry per touched edge.
//
// A DirtyCells is built single-threaded (the learner accumulates one under
// its own lock) and treated as immutable once handed to PatchReweighted.
type DirtyCells struct {
	m map[int64]uint32
	n int
}

// NewDirtyCells returns an empty dirty set.
func NewDirtyCells() *DirtyCells {
	return &DirtyCells{m: make(map[int64]uint32)}
}

// Mark records that the (u→v, slot) cell changed. Out-of-range slots are
// ignored (SlotsPerDay ≤ 32 keeps the mask in one uint32).
func (d *DirtyCells) Mark(u, v NodeID, slot int) {
	if slot < 0 || slot >= SlotsPerDay {
		return
	}
	k := EdgeKey(u, v)
	old := d.m[k]
	bit := uint32(1) << uint(slot)
	if old&bit == 0 {
		d.n++
	}
	d.m[k] = old | bit
}

// Cells returns the number of marked (edge, slot) cells.
func (d *DirtyCells) Cells() int {
	if d == nil {
		return 0
	}
	return d.n
}

// Edges returns the number of edges with at least one marked cell.
func (d *DirtyCells) Edges() int {
	if d == nil {
		return 0
	}
	return len(d.m)
}

// Range calls f for every dirty edge in deterministic order (packed edge key
// ascending) with its slot mask.
func (d *DirtyCells) Range(f func(u, v NodeID, slots uint32)) {
	if d == nil {
		return
	}
	keys := make([]int64, 0, len(d.m))
	for k := range d.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		u, v := EdgeKeyNodes(k)
		f(u, v, d.m[k])
	}
}

// PatchReweighted is the incremental form of Reweighted: given prev — a
// graph previously produced by g.Reweighted or g.PatchReweighted — a table w
// holding the *complete current rows* of every dirty edge, and the dirty set
// itself, it returns a graph value-identical to a full g.Reweighted over the
// cumulative table, at O(dirty) row cost instead of O(|E|·slots):
//
//   - the congestion-row spine is copied (pointer-sized per zone) and only
//     dirty edges get freshly computed rows; every other row is shared with
//     prev;
//   - the edge arrays are shared outright unless a dirty edge is overridden
//     for the first time (then one O(|E|) copy re-homes it onto a dedicated
//     zone, exactly as Reweighted would);
//   - the per-slot β maxima stay exact without a full rescan: each graph
//     remembers an edge attaining its maximum, so only a shrinking
//     ex-maximum forces rescanning that one slot.
//
// Dirty edges with no admissible cells in w that were never overridden
// before are skipped — the prior still serves them. An empty dirty set is
// valid and returns a graph sharing everything with prev (the cheap
// "nothing changed, new epoch" publish).
func (g *Graph) PatchReweighted(prev *Graph, w *SlotWeights, dirty *DirtyCells) (*Graph, error) {
	if prev == nil || prev.rwBase != g {
		return nil, fmt.Errorf("roadnet: PatchReweighted prev was not derived from this graph")
	}
	if g.slotSec != nil {
		return g.patchReweightedDense(prev, w, dirty)
	}
	baseZones := len(g.zoneMult)
	ng := &Graph{
		pts:         g.pts,
		off:         g.off,
		roff:        g.roff,
		edg:         prev.edg,
		redg:        prev.redg,
		zoneMult:    append([]*[SlotsPerDay]float64(nil), prev.zoneMult...),
		maxBeta:     prev.maxBeta,
		maxBetaEdge: prev.maxBetaEdge,
		rwBase:      g,
	}

	// Collect the edge indices this patch rewrites (with their current w
	// row). An edge key covers every parallel u→v edge, mirroring
	// Reweighted's per-(u,v) row lookup.
	type patchEdge struct {
		ei  int32
		row *[SlotsPerDay]float64
	}
	var touched []patchEdge
	newEdges := false
	dirty.Range(func(u, v NodeID, _ uint32) {
		row := w.row(u, v)
		base := int(g.off[u])
		for i, e := range g.edg[g.off[u]:g.off[u+1]] {
			if e.To != v {
				continue
			}
			ei := int32(base + i)
			dedicated := int(prev.edg[ei].Zone) >= baseZones
			if row == nil && !dedicated {
				continue // never admissible, never overridden: prior serves
			}
			touched = append(touched, patchEdge{ei: ei, row: row})
			if !dedicated {
				newEdges = true
			}
		}
	})

	if newEdges {
		// First-time overrides need their own zone ids: re-home them on a
		// private copy of the edge arrays (one O(|E|) memcpy, no row math).
		ng.edg = append([]Edge(nil), prev.edg...)
		ng.redg = make([]Edge, len(prev.redg))
	}

	for _, pe := range touched {
		e := &ng.edg[pe.ei]
		orig := g.edg[pe.ei]
		base := float64(e.BaseSec)
		mult := new([SlotsPerDay]float64)
		for s := 0; s < SlotsPerDay; s++ {
			if pe.row != nil && pe.row[s] > 0 {
				mult[s] = pe.row[s] / base
			} else {
				mult[s] = g.zoneMult[orig.Zone][s] // prior profile fallback
			}
		}
		if int(e.Zone) < baseZones {
			e.Zone = uint32(len(ng.zoneMult))
			ng.zoneMult = append(ng.zoneMult, mult)
		} else {
			ng.zoneMult[e.Zone] = mult
		}
	}
	if newEdges {
		rebuildReverse(ng, g)
	}

	eis := make([]int32, len(touched))
	for i, pe := range touched {
		eis[i] = pe.ei
	}
	patchMaxBeta(ng, prev, eis)
	ng.patchPrevGID = prev.ID()
	ng.patchDirty = dirty
	return ng, nil
}

// patchReweightedDense is the patch path for dense-weight bases (learned
// graphs): the slot-seconds table is cloned (one flat float32 memcpy, no
// row math) and only the dirty edges' admissible cells rewritten. Dense
// mode never re-homes zones — Edge.Zone already carries the edge's own
// index — so the edge arrays are always shared with prev.
func (g *Graph) patchReweightedDense(prev *Graph, w *SlotWeights, dirty *DirtyCells) (*Graph, error) {
	if prev.slotSec == nil {
		return nil, fmt.Errorf("roadnet: dense PatchReweighted prev is not a dense-weight graph")
	}
	ng := &Graph{
		pts:         g.pts,
		off:         g.off,
		roff:        g.roff,
		edg:         prev.edg,
		redg:        prev.redg,
		slotSec:     append([]float32(nil), prev.slotSec...),
		maxBeta:     prev.maxBeta,
		maxBetaEdge: prev.maxBetaEdge,
		rwBase:      g,
	}
	var touched []int32
	dirty.Range(func(u, v NodeID, _ uint32) {
		row := w.row(u, v)
		if row == nil {
			return // never admissible: the prior already in the table serves
		}
		base := int(g.off[u])
		for i, e := range g.edg[g.off[u]:g.off[u+1]] {
			if e.To != v {
				continue
			}
			ei := base + i
			for s := 0; s < SlotsPerDay; s++ {
				if row[s] > 0 {
					ng.slotSec[ei*SlotsPerDay+s] = float32(row[s])
				}
			}
			touched = append(touched, int32(ei))
		}
	})
	patchMaxBeta(ng, prev, touched)
	ng.patchPrevGID = prev.ID()
	ng.patchDirty = dirty
	return ng, nil
}

// patchMaxBeta keeps the per-slot β maxima exact after a patch: a touched
// ex-maximum that shrank forces one slot rescan; everything else is a
// running max over the touched edges.
func patchMaxBeta(ng, prev *Graph, touched []int32) {
	for s := 0; s < SlotsPerDay; s++ {
		mx, arg := prev.maxBeta[s], prev.maxBetaEdge[s]
		rescan := false
		for _, ei := range touched {
			nb := ng.EdgeTimeSlot(ng.edg[ei], s)
			if ei == arg && nb < prev.EdgeTimeSlot(prev.edg[ei], s) {
				rescan = true
				break
			}
			if nb > mx {
				mx, arg = nb, ei
			}
		}
		if rescan {
			ng.recomputeMaxBetaSlot(s)
		} else {
			ng.maxBeta[s], ng.maxBetaEdge[s] = mx, arg
		}
	}
}
