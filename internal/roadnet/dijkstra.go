package roadnet

import (
	"math"
)

// heapEntry packs one Dijkstra frontier entry; keeping node and distance in
// one 16-byte struct halves the stores per sift step and keeps each
// comparison's operands on one cache line.
type heapEntry struct {
	dist float64
	node NodeID
}

// nodeHeap is a binary min-heap of (node, dist) pairs specialised for
// Dijkstra. We avoid container/heap's interface indirection on the hot
// path. The comparison sequence is identical to the classic two-array
// sift (strict < on children, <= stops the up-sift), so equal-distance
// entries pop in exactly the same order — tie-breaking stability the
// golden traces rely on.
type nodeHeap struct {
	e []heapEntry
}

func (h *nodeHeap) push(u NodeID, d float64) {
	h.e = append(h.e, heapEntry{dist: d, node: u})
	i := len(h.e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.e[parent].dist <= h.e[i].dist {
			break
		}
		h.e[parent], h.e[i] = h.e[i], h.e[parent]
		i = parent
	}
}

func (h *nodeHeap) pop() (NodeID, float64) {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.e[l].dist < h.e[small].dist {
			small = l
		}
		if r < last && h.e[r].dist < h.e[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.e[i], h.e[small] = h.e[small], h.e[i]
		i = small
	}
	return top.node, top.dist
}

func (h *nodeHeap) empty() bool { return len(h.e) == 0 }

func (h *nodeHeap) reset() {
	h.e = h.e[:0]
}

// indexedHeap4 is a 4-ary min-heap with an in-place decrease-key: half the
// levels of a binary heap with all four children adjacent in memory, and at
// most one entry per node (pos tracks it), so the frontier never
// accumulates the duplicate entries a lazy-insertion heap pays to pop back
// off. Its tie order differs from nodeHeap's, so it serves ONLY the bounded
// SSSP engine, whose distance-table output is settle-order-independent;
// Path() keeps the binary heap — its predecessor reconstruction is
// tie-sensitive and pinned by golden traces.
type indexedHeap4 struct {
	e   []heapEntry
	pos []int32 // node -> index in e; valid only while the node is queued
}

func (h *indexedHeap4) swap(a, b int) {
	h.e[a], h.e[b] = h.e[b], h.e[a]
	h.pos[h.e[a].node] = int32(a)
	h.pos[h.e[b].node] = int32(b)
}

func (h *indexedHeap4) siftUp(i int) {
	for i > 0 {
		p := (i - 1) >> 2
		if h.e[p].dist <= h.e[i].dist {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *indexedHeap4) siftDown(i int) {
	last := len(h.e)
	for {
		c := i<<2 + 1
		if c >= last {
			break
		}
		end := c + 4
		if end > last {
			end = last
		}
		small := c
		for j := c + 1; j < end; j++ {
			if h.e[j].dist < h.e[small].dist {
				small = j
			}
		}
		if h.e[small].dist >= h.e[i].dist {
			break
		}
		h.swap(i, small)
		i = small
	}
}

func (h *indexedHeap4) push(u NodeID, d float64) {
	h.e = append(h.e, heapEntry{dist: d, node: u})
	i := len(h.e) - 1
	h.pos[u] = int32(i)
	h.siftUp(i)
}

// decrease lowers the key of a queued node and restores heap order.
func (h *indexedHeap4) decrease(u NodeID, d float64) {
	i := int(h.pos[u])
	h.e[i].dist = d
	h.siftUp(i)
}

func (h *indexedHeap4) pop() (NodeID, float64) {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.pos[h.e[0].node] = 0
	h.e = h.e[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top.node, top.dist
}

func (h *indexedHeap4) empty() bool { return len(h.e) == 0 }

func (h *indexedHeap4) reset() { h.e = h.e[:0] }

// ShortestPath returns SP(from, to, t): the quickest travel time in seconds
// departing `from` at time t, using the single slot containing t (weights are
// static within a slot, matching the paper's per-slot averaging). Returns
// +Inf if `to` is unreachable.
func ShortestPath(g *Graph, from, to NodeID, t float64) float64 {
	e := NewSSSP(g)
	return e.Distance(from, to, t)
}

// PathResult is a shortest path with its per-node arrival times.
type PathResult struct {
	Nodes []NodeID  // node sequence, Nodes[0] == from
	Times []float64 // arrival time at each node; Times[0] == departure time
	DistM float64   // total length in metres
}

// TravelTime returns the total traversal time of the path in seconds.
func (p *PathResult) TravelTime() float64 {
	if len(p.Times) == 0 {
		return 0
	}
	return p.Times[len(p.Times)-1] - p.Times[0]
}

// Path computes the quickest path from->to departing at time t, advancing the
// clock edge by edge so that each edge's weight is taken from the slot in
// which it is entered (true time-dependent traversal — used when vehicles
// physically move through the network). Returns nil if unreachable.
func Path(g *Graph, from, to NodeID, t float64) *PathResult {
	n := g.NumNodes()
	if int(from) >= n || int(to) >= n || from < 0 || to < 0 {
		return nil
	}
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = Invalid
	}
	dist[from] = t
	var h nodeHeap
	h.push(from, t)
	for !h.empty() {
		u, du := h.pop()
		if done[u] {
			continue
		}
		done[u] = true
		if u == to {
			break
		}
		for _, e := range g.OutEdges(u) {
			if done[e.To] {
				continue
			}
			// du is the arrival (absolute) time at u; the edge is entered at du.
			nd := du + g.EdgeTime(e, du)
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				h.push(e.To, nd)
			}
		}
	}
	if !done[to] {
		return nil
	}
	// Reconstruct.
	var rev []NodeID
	for u := to; u != Invalid; u = prev[u] {
		rev = append(rev, u)
	}
	res := &PathResult{
		Nodes: make([]NodeID, len(rev)),
		Times: make([]float64, len(rev)),
	}
	for i := range rev {
		u := rev[len(rev)-1-i]
		res.Nodes[i] = u
		res.Times[i] = dist[u]
	}
	for i := 0; i+1 < len(res.Nodes); i++ {
		u, v := res.Nodes[i], res.Nodes[i+1]
		for _, e := range g.OutEdges(u) {
			if e.To == v {
				res.DistM += float64(e.LenM)
				break
			}
		}
	}
	return res
}

// SSSP is a reusable bounded single-source Dijkstra engine. Scratch arrays
// are epoch-stamped so consecutive searches cost O(visited), not O(n).
// An SSSP instance is not safe for concurrent use; create one per goroutine.
type SSSP struct {
	g     *Graph
	dist  []float64
	stamp []uint32
	done  []uint32
	epoch uint32
	heap  indexedHeap4
	// wslot memoises the resolved β(e, slot) of every edge, two slots wide
	// (queries around a slot boundary alternate between the old and new
	// profile): weights are static within a slot, so the relaxation loop
	// reads one flat float64 instead of chasing the zone-multiplier (or
	// dense-table) representation per edge. Values are the exact
	// EdgeTimeSlot products — representation changes nothing downstream.
	wslot   [2][]float64
	wslotID [2]int // slot+1 of each way; 0 = empty
	wnext   int    // way to evict next
	// tmark stamps the outstanding-target set of a DistanceMany run; lazily
	// allocated so point-query-only engines never pay for it.
	tmark []uint32
	// settled counts node settles across every run of this engine — the
	// search-work measure the batched-routing benches report.
	settled uint64
}

// NewSSSP returns an engine bound to g.
func NewSSSP(g *Graph) *SSSP {
	n := g.NumNodes()
	s := &SSSP{
		g:     g,
		dist:  make([]float64, n),
		stamp: make([]uint32, n),
		done:  make([]uint32, n),
	}
	s.heap.pos = make([]int32, n)
	return s
}

// Distance returns SP(from,to,t) using the slot containing t.
func (s *SSSP) Distance(from, to NodeID, t float64) float64 {
	res := s.run(from, Slot(t), math.Inf(1), to)
	return res.get(to)
}

// Settles reports the cumulative node settles across every run of this
// engine since construction.
func (s *SSSP) Settles() uint64 { return s.settled }

// DistanceMany computes SP(from, target, t) for every target with one
// Dijkstra expansion, terminating as soon as the last outstanding target
// settles. out is reused when it has capacity for len(targets) values and
// reallocated otherwise; the returned slice aligns with targets (+Inf for
// targets the expansion never reached). Distances are identical to
// per-target Distance calls: a Dijkstra distance table does not depend on
// how far past a target the frontier drains.
func (s *SSSP) DistanceMany(from NodeID, targets []NodeID, t float64, out []float64) []float64 {
	if cap(out) < len(targets) {
		out = make([]float64, len(targets))
	}
	out = out[:len(targets)]
	if len(targets) == 0 {
		return out
	}
	slot := Slot(t)
	s.epoch++
	ep := s.epoch
	if s.tmark == nil {
		s.tmark = make([]uint32, s.g.NumNodes())
	}
	remaining := 0
	for _, u := range targets {
		if s.tmark[u] != ep {
			s.tmark[u] = ep
			remaining++
		}
	}
	s.heap.reset()
	s.dist[from] = 0
	s.stamp[from] = ep
	s.heap.push(from, 0)
	g := s.g
	// A multi-target expansion settles enough of the graph to amortise the
	// flat per-slot weight table (rebuilt at most once per slot per engine),
	// unlike the one-shot point query which resolves per edge.
	w := s.weights(slot)
	for !s.heap.empty() && remaining > 0 {
		u, du := s.heap.pop()
		s.done[u] = ep
		s.settled++
		if s.tmark[u] == ep {
			s.tmark[u] = 0 // epochs start at 1: 0 never matches
			remaining--
		}
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			to := g.edg[ei].To
			if s.done[to] == ep {
				continue
			}
			nd := du + w[ei]
			if s.stamp[to] != ep {
				s.dist[to] = nd
				s.stamp[to] = ep
				s.heap.push(to, nd)
			} else if nd < s.dist[to] {
				s.dist[to] = nd
				s.heap.decrease(to, nd)
			}
		}
	}
	for i, u := range targets {
		if s.done[u] == ep {
			out[i] = s.dist[u]
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}

// FromSource runs a bounded single-source search from `from` in the slot of
// t, exploring only nodes whose travel time is ≤ bound (seconds). The
// returned view is valid until the next call on this engine.
func (s *SSSP) FromSource(from NodeID, t, bound float64) DistView {
	return s.run(from, Slot(t), bound, Invalid)
}

// DistView is a read-only view of the distances computed by one SSSP run.
type DistView struct {
	s     *SSSP
	epoch uint32
}

// Get returns the travel time from the run's source to u, or +Inf if u was
// not settled within the bound.
func (v DistView) Get(u NodeID) float64 { return v.get(u) }

func (v DistView) get(u NodeID) float64 {
	if v.s.done[u] != v.epoch {
		return math.Inf(1)
	}
	return v.s.dist[u]
}

// weights returns the flat resolved edge-weight table for a slot,
// rebuilding it only when the slot is in neither cached way (amortised over
// the many runs a distance cache issues within one slot).
func (s *SSSP) weights(slot int) []float64 {
	for way := 0; way < 2; way++ {
		if s.wslotID[way] == slot+1 {
			return s.wslot[way]
		}
	}
	g := s.g
	way := s.wnext
	s.wnext = 1 - way
	if s.wslot[way] == nil {
		s.wslot[way] = make([]float64, g.NumEdges())
	}
	w := s.wslot[way]
	for i := range g.edg {
		w[i] = g.EdgeTimeSlot(g.edg[i], slot)
	}
	s.wslotID[way] = slot + 1
	return w
}

func (s *SSSP) run(from NodeID, slot int, bound float64, target NodeID) DistView {
	s.epoch++
	ep := s.epoch
	s.heap.reset()
	s.dist[from] = 0
	s.stamp[from] = ep
	s.heap.push(from, 0)
	g := s.g
	// Bulk single-source runs (DistCache rows) amortise a flat resolved
	// weight table; a one-shot point query with target early-exit touches
	// too few edges to pay the O(|E|) build, so it resolves per edge.
	var w []float64
	if target == Invalid {
		w = s.weights(slot)
	}
	for !s.heap.empty() {
		u, du := s.heap.pop()
		if du > bound {
			break
		}
		s.done[u] = ep
		s.settled++
		if u == target {
			break
		}
		for ei := g.off[u]; ei < g.off[u+1]; ei++ {
			to := g.edg[ei].To
			if s.done[to] == ep {
				continue
			}
			var nd float64
			if w != nil {
				nd = du + w[ei]
			} else {
				nd = du + g.EdgeTimeSlot(g.edg[ei], slot)
			}
			if nd > bound {
				continue
			}
			if s.stamp[to] != ep {
				s.dist[to] = nd
				s.stamp[to] = ep
				s.heap.push(to, nd)
			} else if nd < s.dist[to] {
				s.dist[to] = nd
				s.heap.decrease(to, nd)
			}
		}
	}
	return DistView{s: s, epoch: ep}
}

// StronglyConnected reports whether the graph is strongly connected — a
// sanity invariant for synthetic cities (every restaurant must be able to
// reach every customer).
func StronglyConnected(g *Graph) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	reach := func(adj func(NodeID) []Edge) int {
		seen := make([]bool, n)
		stack := []NodeID{0}
		seen[0] = true
		count := 0
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for _, e := range adj(u) {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		return count
	}
	return reach(g.OutEdges) == n && reach(g.InEdges) == n
}
